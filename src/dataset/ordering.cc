#include "dataset/ordering.h"

#include <algorithm>

#include "util/rng.h"

namespace corgipile {

const char* DataOrderToString(DataOrder order) {
  switch (order) {
    case DataOrder::kClustered: return "clustered";
    case DataOrder::kShuffled: return "shuffled";
    case DataOrder::kFeatureOrdered: return "feature_ordered";
  }
  return "?";
}

void OrderClusteredByLabel(std::vector<Tuple>* tuples) {
  std::stable_sort(tuples->begin(), tuples->end(),
                   [](const Tuple& a, const Tuple& b) {
                     return a.label < b.label;
                   });
}

void OrderShuffled(std::vector<Tuple>* tuples, uint64_t seed) {
  Rng rng(seed);
  rng.Shuffle(*tuples);
}

namespace {
float FeatureValue(const Tuple& t, uint32_t feature_idx) {
  if (!t.sparse()) {
    return feature_idx < t.feature_values.size() ? t.feature_values[feature_idx]
                                                 : 0.0f;
  }
  auto it = std::lower_bound(t.feature_keys.begin(), t.feature_keys.end(),
                             feature_idx);
  if (it != t.feature_keys.end() && *it == feature_idx) {
    return t.feature_values[static_cast<size_t>(
        std::distance(t.feature_keys.begin(), it))];
  }
  return 0.0f;
}
}  // namespace

void OrderByFeature(std::vector<Tuple>* tuples, uint32_t feature_idx) {
  std::stable_sort(tuples->begin(), tuples->end(),
                   [feature_idx](const Tuple& a, const Tuple& b) {
                     return FeatureValue(a, feature_idx) <
                            FeatureValue(b, feature_idx);
                   });
}

void RenumberIds(std::vector<Tuple>* tuples) {
  for (size_t i = 0; i < tuples->size(); ++i) {
    (*tuples)[i].id = i;
  }
}

void ApplyOrder(std::vector<Tuple>* tuples, DataOrder order, uint64_t seed,
                uint32_t feature_idx) {
  switch (order) {
    case DataOrder::kClustered:
      OrderClusteredByLabel(tuples);
      break;
    case DataOrder::kShuffled:
      OrderShuffled(tuples, seed);
      break;
    case DataOrder::kFeatureOrdered:
      OrderByFeature(tuples, feature_idx);
      break;
  }
  RenumberIds(tuples);
}

}  // namespace corgipile
