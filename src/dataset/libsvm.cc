#include "dataset/libsvm.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace corgipile {

Result<LibsvmParseResult> ParseLibsvm(std::istream& in, bool binarize_labels) {
  LibsvmParseResult result;
  std::string line;
  uint64_t line_no = 0;
  uint64_t id = 0;
  uint32_t max_index = 0;
  bool all_dense = true;

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and blank lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string label_text;
    if (!(ls >> label_text)) continue;  // blank

    char* end = nullptr;
    double label = std::strtod(label_text.c_str(), &end);
    if (end == label_text.c_str() || *end != '\0') {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": bad label '" + label_text + "'");
    }
    if (binarize_labels && (label == 0.0)) label = -1.0;

    std::vector<uint32_t> keys;
    std::vector<float> values;
    std::string feat;
    long long prev_index = -1;
    while (ls >> feat) {
      const auto colon = feat.find(':');
      if (colon == std::string::npos) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": expected k:v, got '" + feat + "'");
      }
      char* iend = nullptr;
      const long long index_1based =
          std::strtoll(feat.c_str(), &iend, 10);
      if (iend != feat.c_str() + colon || index_1based < 1) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": bad index in '" + feat + "'");
      }
      char* vend = nullptr;
      const double v = std::strtod(feat.c_str() + colon + 1, &vend);
      if (vend == feat.c_str() + colon + 1 || *vend != '\0') {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": bad value in '" + feat + "'");
      }
      if (index_1based <= prev_index) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": indices not strictly increasing");
      }
      prev_index = index_1based;
      keys.push_back(static_cast<uint32_t>(index_1based - 1));
      values.push_back(static_cast<float>(v));
    }
    if (!keys.empty()) {
      max_index = std::max(max_index, keys.back() + 1);
      // Dense lines enumerate 1..d contiguously.
      all_dense = all_dense && keys.front() == 0 &&
                  keys.back() + 1 == keys.size();
    }
    result.tuples.push_back(
        MakeSparseTuple(id++, label, std::move(keys), std::move(values)));
  }
  result.inferred_dim = max_index;
  result.looks_dense = all_dense && !result.tuples.empty();
  // Dense data: strip the key arrays.
  if (result.looks_dense) {
    for (Tuple& t : result.tuples) {
      if (t.feature_keys.size() != result.inferred_dim) {
        result.looks_dense = false;
        break;
      }
    }
  }
  if (result.looks_dense) {
    for (Tuple& t : result.tuples) t.feature_keys.clear();
  }
  return result;
}

Result<LibsvmParseResult> ReadLibsvmFile(const std::string& path,
                                         bool binarize_labels) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  return ParseLibsvm(f, binarize_labels);
}

Status WriteLibsvm(const std::vector<Tuple>& tuples, std::ostream& out) {
  // Full float round-trip precision.
  out << std::setprecision(std::numeric_limits<float>::max_digits10);
  for (const Tuple& t : tuples) {
    out << t.label;
    if (t.sparse()) {
      for (size_t i = 0; i < t.feature_keys.size(); ++i) {
        out << ' ' << (t.feature_keys[i] + 1) << ':' << t.feature_values[i];
      }
    } else {
      for (size_t d = 0; d < t.feature_values.size(); ++d) {
        if (t.feature_values[d] != 0.0f) {
          out << ' ' << (d + 1) << ':' << t.feature_values[d];
        }
      }
    }
    out << '\n';
    if (!out.good()) return Status::IoError("write failed");
  }
  return Status::OK();
}

Status WriteLibsvmFile(const std::vector<Tuple>& tuples,
                       const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open " + path);
  return WriteLibsvm(tuples, f);
}

}  // namespace corgipile
