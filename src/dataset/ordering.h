// Storage orderings for experiment datasets.
//
// The paper evaluates each dataset in a "shuffled" version (tuples in random
// order) and a "clustered" version (tuples ordered by label, negatives
// before positives — the worst case for SGD). §7.4.3 additionally orders by
// a feature column. After reordering we renumber tuple ids by storage
// position, which is what the paper's Figures 3/4 plot.

#pragma once

#include <cstdint>
#include <vector>

#include "storage/tuple.h"

namespace corgipile {

enum class DataOrder {
  kClustered,       ///< sorted by label (ascending: -1 before +1)
  kShuffled,        ///< uniformly random order
  kFeatureOrdered,  ///< sorted by one feature's value
};

const char* DataOrderToString(DataOrder order);

/// Sorts by label ascending (stable). Binary: all -1 before all +1;
/// multiclass: class 0, 1, 2, ...
void OrderClusteredByLabel(std::vector<Tuple>* tuples);

/// Uniform random permutation.
void OrderShuffled(std::vector<Tuple>* tuples, uint64_t seed);

/// Sorts by the value of feature `feature_idx` ascending (dense: the
/// component; sparse: the stored value if present else 0).
void OrderByFeature(std::vector<Tuple>* tuples, uint32_t feature_idx);

/// Applies `order` and renumbers ids to storage positions 0..n-1.
void ApplyOrder(std::vector<Tuple>* tuples, DataOrder order, uint64_t seed,
                uint32_t feature_idx = 0);

/// Renumbers ids to storage positions (also done by ApplyOrder).
void RenumberIds(std::vector<Tuple>* tuples);

}  // namespace corgipile
