// Materializing in-memory datasets as on-disk tables.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dataset/catalog.h"
#include "storage/table.h"
#include "util/status.h"

namespace corgipile {

/// Writes `tuples` into a heap-file table at `path` in their current order.
Result<std::unique_ptr<Table>> MaterializeTable(
    const Schema& schema, const std::vector<Tuple>& tuples,
    const std::string& path, const TableOptions& options = {});

/// Convenience: materializes a generated dataset's train split, honoring the
/// spec's compress_in_db flag.
Result<std::unique_ptr<Table>> MaterializeTrainTable(
    const Dataset& dataset, const std::string& path,
    uint32_t page_size = Page::kDefaultSize);

}  // namespace corgipile
