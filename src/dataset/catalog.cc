#include "dataset/catalog.h"

#include <algorithm>
#include <cmath>

namespace corgipile {

const char* TaskKindToString(TaskKind kind) {
  switch (kind) {
    case TaskKind::kBinaryDense: return "binary_dense";
    case TaskKind::kBinarySparse: return "binary_sparse";
    case TaskKind::kMulticlass: return "multiclass";
    case TaskKind::kRegression: return "regression";
  }
  return "?";
}

Schema DatasetSpec::MakeSchema() const {
  Schema s;
  s.name = name;
  s.dim = dim;
  s.sparse = (task == TaskKind::kBinarySparse);
  switch (task) {
    case TaskKind::kBinaryDense:
    case TaskKind::kBinarySparse:
      s.label_type = LabelType::kBinary;
      s.num_classes = 2;
      break;
    case TaskKind::kMulticlass:
      s.label_type = LabelType::kMulticlass;
      s.num_classes = num_classes;
      break;
    case TaskKind::kRegression:
      s.label_type = LabelType::kContinuous;
      s.num_classes = 0;
      break;
  }
  return s;
}

namespace {

// Laptop-scale stand-ins for the paper's Table 2 datasets. Tuple counts are
// ~1/100 of the originals; dims are kept exactly where feasible and scaled
// down for the two extreme cases (criteo 1M → 10k features, yfcc 4096 →
// 1024). Label noise is tuned so converged accuracy lands near the paper's
// Table 3 values (higgs ≈ 64%, susy ≈ 79%, epsilon ≈ 90%, criteo ≈ 78%,
// yfcc ≈ 96%).
std::vector<DatasetSpec> BuildCatalog() {
  std::vector<DatasetSpec> cat;
  cat.push_back(DatasetSpec{"higgs", TaskKind::kBinaryDense, 100000, 10000, 28,
                            0, 2, 0.355, 0.0, 3.0, false, 11});
  cat.push_back(DatasetSpec{"susy", TaskKind::kBinaryDense, 45000, 5000, 18, 0,
                            2, 0.21, 0.0, 3.0, false, 12});
  cat.push_back(DatasetSpec{"epsilon", TaskKind::kBinaryDense, 8000, 2000,
                            2000, 0, 2, 0.095, 0.35, 3.0, true, 13});
  cat.push_back(DatasetSpec{"criteo", TaskKind::kBinarySparse, 200000, 13000,
                            10000, 39, 2, 0.21, 0.0, 3.0, false, 14});
  cat.push_back(DatasetSpec{"yfcc", TaskKind::kBinaryDense, 20000, 2000, 1024,
                            0, 2, 0.035, 0.45, 3.0, true, 15});
  // Deep-learning stand-ins (multiclass, trained with the MLP).
  cat.push_back(DatasetSpec{"cifar10", TaskKind::kMulticlass, 20000, 4000, 128,
                            0, 10, 0.06, 0.0, 2.5, false, 16});
  cat.push_back(DatasetSpec{"imagenet", TaskKind::kMulticlass, 50000, 5000,
                            256, 0, 100, 0.05, 0.3, 4.0, false, 17});
  cat.push_back(DatasetSpec{"yelp", TaskKind::kMulticlass, 30000, 5000, 64, 0,
                            5, 0.12, 0.0, 2.0, false, 18});
  // §7.4.2 datasets.
  cat.push_back(DatasetSpec{"yearpred", TaskKind::kRegression, 50000, 5000, 90,
                            0, 2, 0.35, 0.0, 3.0, false, 19});
  cat.push_back(DatasetSpec{"mnist8m", TaskKind::kMulticlass, 50000, 5000, 100,
                            0, 10, 0.04, 0.0, 3.0, false, 20});
  return cat;
}

}  // namespace

std::vector<std::string> CatalogNames() {
  std::vector<std::string> names;
  for (const auto& spec : BuildCatalog()) names.push_back(spec.name);
  return names;
}

Result<DatasetSpec> CatalogLookup(const std::string& name, double scale) {
  for (auto& spec : BuildCatalog()) {
    if (spec.name == name) {
      if (scale != 1.0) {
        spec.train_tuples = static_cast<uint64_t>(
            std::max(1.0, std::round(spec.train_tuples * scale)));
        spec.test_tuples = static_cast<uint64_t>(
            std::max(1.0, std::round(spec.test_tuples * scale)));
      }
      return spec;
    }
  }
  return Status::NotFound("no catalog dataset named '" + name + "'");
}

Dataset GenerateDataset(const DatasetSpec& spec, DataOrder order,
                        uint32_t feature_idx) {
  SyntheticSpec gen;
  gen.num_tuples = spec.train_tuples + spec.test_tuples;
  gen.dim = spec.dim;
  gen.nnz = spec.nnz;
  gen.label_noise = spec.label_noise;
  gen.zero_fraction = spec.zero_fraction;
  gen.num_classes = spec.num_classes;
  gen.class_separation = spec.class_separation;

  SyntheticData raw;
  switch (spec.task) {
    case TaskKind::kBinaryDense:
      raw = GenerateDenseBinary(gen, spec.seed);
      break;
    case TaskKind::kBinarySparse:
      raw = GenerateSparseBinary(gen, spec.seed);
      break;
    case TaskKind::kMulticlass:
      raw = GenerateMulticlass(gen, spec.seed);
      break;
    case TaskKind::kRegression:
      raw = GenerateRegression(gen, spec.seed);
      break;
  }

  Dataset out;
  out.spec = spec;
  out.order = order;
  out.ground_truth = std::move(raw.ground_truth);

  auto train = std::make_shared<std::vector<Tuple>>();
  auto test = std::make_shared<std::vector<Tuple>>();
  train->assign(raw.tuples.begin(),
                raw.tuples.begin() + static_cast<long>(spec.train_tuples));
  test->assign(raw.tuples.begin() + static_cast<long>(spec.train_tuples),
               raw.tuples.end());

  ApplyOrder(train.get(), order, spec.seed ^ 0xABCDEF, feature_idx);
  OrderShuffled(test.get(), spec.seed ^ 0x123456);
  RenumberIds(test.get());

  out.train = std::move(train);
  out.test = std::move(test);
  return out;
}

}  // namespace corgipile
