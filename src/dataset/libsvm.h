// LIBSVM text format reader/writer.
//
// The paper's GLM datasets (higgs, susy, epsilon, criteo) ship in LIBSVM
// format: one tuple per line, "<label> <k>:<v> <k>:<v> ...", with 1-based
// feature indices. This module lets the library ingest the real datasets
// when they are available and round-trip its synthetic ones.

#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace corgipile {

struct LibsvmParseResult {
  std::vector<Tuple> tuples;
  /// Maximum 0-based feature index seen + 1.
  uint32_t inferred_dim = 0;
  /// True if every tuple's nonzero count equals the inferred dim (then the
  /// data is effectively dense).
  bool looks_dense = false;
};

/// Parses LIBSVM text. Labels may be {-1, +1}, {0, 1} (mapped to ±1 when
/// `binarize_labels`), class ids, or continuous values. Indices are
/// converted to 0-based. Ids are assigned by line order.
Result<LibsvmParseResult> ParseLibsvm(std::istream& in,
                                      bool binarize_labels = true);

/// Convenience: parse from a file path.
Result<LibsvmParseResult> ReadLibsvmFile(const std::string& path,
                                         bool binarize_labels = true);

/// Writes tuples in LIBSVM format (1-based indices; dense tuples emit every
/// nonzero coordinate).
Status WriteLibsvm(const std::vector<Tuple>& tuples, std::ostream& out);
Status WriteLibsvmFile(const std::vector<Tuple>& tuples,
                       const std::string& path);

}  // namespace corgipile
