// Catalog of experiment datasets mirroring the paper's Table 2 (plus the
// deep-learning and §7.4 datasets), at laptop scale. A scale factor
// multiplies tuple counts for larger runs.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dataset/ordering.h"
#include "dataset/synthetic.h"
#include "storage/schema.h"
#include "util/status.h"

namespace corgipile {

/// Model family a dataset targets (drives which generator runs).
enum class TaskKind {
  kBinaryDense,
  kBinarySparse,
  kMulticlass,
  kRegression,
};

const char* TaskKindToString(TaskKind kind);

/// A named dataset configuration.
struct DatasetSpec {
  std::string name;          ///< e.g. "higgs"
  TaskKind task = TaskKind::kBinaryDense;
  uint64_t train_tuples = 0;
  uint64_t test_tuples = 0;
  uint32_t dim = 0;
  uint32_t nnz = 0;          ///< sparse only
  uint32_t num_classes = 2;  ///< multiclass only
  double label_noise = 0.05;
  double zero_fraction = 0.0;
  double class_separation = 3.0;
  /// Whether the in-DB table stores tuples TOAST-compressed (epsilon, yfcc).
  bool compress_in_db = false;
  uint64_t seed = 0;

  Schema MakeSchema() const;
};

/// A generated train/test pair. Train tuples carry the requested storage
/// order (ids renumbered by position); test tuples are always shuffled.
struct Dataset {
  DatasetSpec spec;
  DataOrder order = DataOrder::kClustered;
  std::shared_ptr<std::vector<Tuple>> train;
  std::shared_ptr<std::vector<Tuple>> test;
  std::vector<double> ground_truth;

  Schema MakeSchema() const { return spec.MakeSchema(); }
};

/// Names available in the catalog: higgs, susy, epsilon, criteo, yfcc,
/// cifar10, imagenet, yelp, yearpred, mnist8m.
std::vector<std::string> CatalogNames();

/// Looks up a catalog entry; `scale` multiplies tuple counts (default
/// sizes are laptop-friendly: 10^4–10^5 train tuples).
Result<DatasetSpec> CatalogLookup(const std::string& name, double scale = 1.0);

/// Runs the right generator for the spec and applies the storage order.
Dataset GenerateDataset(const DatasetSpec& spec, DataOrder order,
                        uint32_t feature_idx = 0);

}  // namespace corgipile
