#include "dataset/synthetic.h"

#include <algorithm>
#include <cmath>

namespace corgipile {

namespace {

// Margin-noise scale s so that P(sign(m) != sign(m + s·g)) = bayes_error
// for m ~ N(0, margin_var), g ~ N(0, 1):  s = sqrt(margin_var)·tan(π·e).
double MarginNoiseScale(double bayes_error, double margin_var) {
  const double e = std::clamp(bayes_error, 0.0, 0.499);
  return std::sqrt(std::max(margin_var, 1e-12)) * std::tan(M_PI * e);
}

// Draws a unit-norm ground-truth weight vector with a heavy-tailed weight
// profile: coordinate 0 dominates (8x) and every 10th coordinate is strong
// (3x). Real tabular datasets have a few highly predictive features and
// many weak ones; this is what makes ordering the data *by a feature*
// (§7.4.3) nearly as harmful as ordering by the label when the ordering
// feature is a dominant one, while orderings by weak features stay benign.
std::vector<double> DrawGroundTruth(uint32_t dim, Rng* rng) {
  std::vector<double> w(dim);
  double norm2 = 0.0;
  for (uint32_t d = 0; d < dim; ++d) {
    const double scale = d == 0 ? 8.0 : (d % 10 == 0 ? 3.0 : 1.0);
    double g = rng->NextGaussian();
    if (d == 0 && std::abs(g) < 0.5) g = g < 0 ? -0.5 : 0.5;  // keep dominant
    w[d] = g * scale;
    norm2 += w[d] * w[d];
  }
  const double inv = norm2 > 0 ? 1.0 / std::sqrt(norm2) : 1.0;
  for (auto& v : w) v *= inv;
  return w;
}

std::vector<float> DrawDenseFeatures(const SyntheticSpec& spec, Rng* rng) {
  std::vector<float> x(spec.dim);
  for (auto& v : x) {
    if (spec.zero_fraction > 0.0 && rng->NextBool(spec.zero_fraction)) {
      v = 0.0f;
    } else {
      v = static_cast<float>(rng->NextGaussian());
    }
  }
  return x;
}

}  // namespace

SyntheticData GenerateDenseBinary(const SyntheticSpec& spec, uint64_t seed) {
  Rng rng(seed);
  SyntheticData data;
  data.ground_truth = DrawGroundTruth(spec.dim, &rng);
  // For unit w* and x ~ N(0, I) with a zero_fraction of coordinates zeroed,
  // the margin variance is ≈ (1 − zero_fraction).
  const double noise_scale =
      MarginNoiseScale(spec.label_noise, 1.0 - spec.zero_fraction);
  data.tuples.reserve(spec.num_tuples);
  for (uint64_t i = 0; i < spec.num_tuples; ++i) {
    std::vector<float> x = DrawDenseFeatures(spec, &rng);
    double margin = 0.0;
    for (uint32_t d = 0; d < spec.dim; ++d) {
      margin += data.ground_truth[d] * static_cast<double>(x[d]);
    }
    const double noisy = margin + noise_scale * rng.NextGaussian();
    data.tuples.push_back(
        MakeDenseTuple(i, noisy >= 0 ? 1.0 : -1.0, std::move(x)));
  }
  return data;
}

SyntheticData GenerateSparseBinary(const SyntheticSpec& spec, uint64_t seed) {
  Rng rng(seed);
  SyntheticData data;
  data.ground_truth = DrawGroundTruth(spec.dim, &rng);
  data.tuples.reserve(spec.num_tuples);
  const uint32_t nnz = std::min(spec.nnz, spec.dim);
  // Margin variance for unit w*: E[Σ_{k∈keys} w_k²] = nnz / dim.
  const double noise_scale = MarginNoiseScale(
      spec.label_noise, static_cast<double>(nnz) / spec.dim);
  for (uint64_t i = 0; i < spec.num_tuples; ++i) {
    std::vector<uint32_t> keys = rng.SampleWithoutReplacement(spec.dim, nnz);
    std::sort(keys.begin(), keys.end());
    std::vector<float> vals(nnz);
    double margin = 0.0;
    for (uint32_t j = 0; j < nnz; ++j) {
      vals[j] = static_cast<float>(rng.NextGaussian());
      margin += data.ground_truth[keys[j]] * static_cast<double>(vals[j]);
    }
    const double noisy = margin + noise_scale * rng.NextGaussian();
    data.tuples.push_back(MakeSparseTuple(i, noisy >= 0 ? 1.0 : -1.0,
                                          std::move(keys), std::move(vals)));
  }
  return data;
}

SyntheticData GenerateMulticlass(const SyntheticSpec& spec, uint64_t seed) {
  Rng rng(seed);
  SyntheticData data;
  // Class means: random directions scaled to class_separation. Stored
  // flattened in ground_truth (C × dim).
  const uint32_t c_count = std::max<uint32_t>(2, spec.num_classes);
  data.ground_truth.resize(static_cast<size_t>(c_count) * spec.dim);
  for (uint32_t c = 0; c < c_count; ++c) {
    std::vector<double> dir = DrawGroundTruth(spec.dim, &rng);
    for (uint32_t d = 0; d < spec.dim; ++d) {
      data.ground_truth[static_cast<size_t>(c) * spec.dim + d] =
          dir[d] * spec.class_separation;
    }
  }
  data.tuples.reserve(spec.num_tuples);
  for (uint64_t i = 0; i < spec.num_tuples; ++i) {
    uint32_t c = static_cast<uint32_t>(rng.Uniform(c_count));
    std::vector<float> x(spec.dim);
    for (uint32_t d = 0; d < spec.dim; ++d) {
      double v = data.ground_truth[static_cast<size_t>(c) * spec.dim + d] +
                 rng.NextGaussian();
      if (spec.zero_fraction > 0.0 && rng.NextBool(spec.zero_fraction)) {
        v = 0.0;
      }
      x[d] = static_cast<float>(v);
    }
    uint32_t label = c;
    if (rng.NextBool(spec.label_noise)) {
      label = static_cast<uint32_t>(rng.Uniform(c_count));
    }
    data.tuples.push_back(
        MakeDenseTuple(i, static_cast<double>(label), std::move(x)));
  }
  return data;
}

SyntheticData GenerateRegression(const SyntheticSpec& spec, uint64_t seed) {
  Rng rng(seed);
  SyntheticData data;
  data.ground_truth = DrawGroundTruth(spec.dim, &rng);
  data.tuples.reserve(spec.num_tuples);
  for (uint64_t i = 0; i < spec.num_tuples; ++i) {
    std::vector<float> x = DrawDenseFeatures(spec, &rng);
    double y = 0.0;
    for (uint32_t d = 0; d < spec.dim; ++d) {
      y += data.ground_truth[d] * static_cast<double>(x[d]);
    }
    y += spec.label_noise * rng.NextGaussian();
    data.tuples.push_back(MakeDenseTuple(i, y, std::move(x)));
  }
  return data;
}

}  // namespace corgipile
