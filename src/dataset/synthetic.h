// Synthetic dataset generators.
//
// The paper evaluates on LIBSVM datasets (higgs, susy, epsilon, criteo),
// yfcc100m, ImageNet, cifar-10 and yelp-review-full. Those are not available
// offline, so we generate datasets with the same *type* (dense/sparse,
// binary/multiclass/continuous), dimensionality profile and label balance,
// built from a known ground-truth model plus controlled label noise. This
// preserves the behaviour the experiments measure: clustered-by-label
// ordering hurts SGD in the same way, and converged accuracy has a
// well-defined ceiling (≈ 1 - label_noise) to compare strategies against.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/rng.h"

namespace corgipile {

/// Parameters for a synthetic generation run.
struct SyntheticSpec {
  uint64_t num_tuples = 0;
  uint32_t dim = 0;
  /// Sparse datasets: nonzeros per tuple (0 = dense).
  uint32_t nnz = 0;
  /// Difficulty of the task.
  ///  * Binary: Bayes error of the optimal linear classifier. Labels are
  ///    sign(w*·x + s·g) with Gaussian margin noise g and s chosen so the
  ///    classifier sign(w*·x) disagrees with the label with exactly this
  ///    probability. Unlike uniform label flips, errors concentrate near
  ///    the decision boundary — the geometry real datasets (higgs, criteo)
  ///    exhibit, and what keeps per-tuple gradient noise realistic.
  ///  * Multiclass: probability a label is replaced by a random class.
  ///  * Continuous: stddev of additive Gaussian noise on the target.
  double label_noise = 0.05;
  /// Dense only: fraction of features forced to exactly 0 (makes the TOAST
  /// codec effective, mimicking ReLU-style image features).
  double zero_fraction = 0.0;
  /// Multiclass only.
  uint32_t num_classes = 2;
  /// Distance of class means from the origin (multiclass separability).
  double class_separation = 3.0;
};

/// Output of a generator: tuples in generation order (label-balanced
/// interleaved for binary/multiclass), plus the ground-truth parameters.
struct SyntheticData {
  std::vector<Tuple> tuples;
  std::vector<double> ground_truth;  ///< model used to produce the labels
};

/// Binary classification, dense features, labels in {-1, +1}.
/// x ~ N(0, I) (with optional zeroing), label = sign(w*·x) with noise.
SyntheticData GenerateDenseBinary(const SyntheticSpec& spec, uint64_t seed);

/// Binary classification, sparse features (spec.nnz nonzeros per tuple).
SyntheticData GenerateSparseBinary(const SyntheticSpec& spec, uint64_t seed);

/// Multiclass classification, dense features, labels in {0..C-1}.
/// Gaussian mixture: x = mu_c + N(0, I); mu_c on a sphere of radius
/// spec.class_separation.
SyntheticData GenerateMulticlass(const SyntheticSpec& spec, uint64_t seed);

/// Regression, dense features, continuous label y = w*·x + N(0, noise²).
SyntheticData GenerateRegression(const SyntheticSpec& spec, uint64_t seed);

}  // namespace corgipile
