#include "dataset/loader.h"

namespace corgipile {

Result<std::unique_ptr<Table>> MaterializeTable(const Schema& schema,
                                                const std::vector<Tuple>& tuples,
                                                const std::string& path,
                                                const TableOptions& options) {
  TableBuilder builder(schema, path, options);
  for (const Tuple& t : tuples) {
    CORGI_RETURN_NOT_OK(builder.Append(t));
  }
  return builder.Finish();
}

Result<std::unique_ptr<Table>> MaterializeTrainTable(const Dataset& dataset,
                                                     const std::string& path,
                                                     uint32_t page_size) {
  TableOptions options;
  options.page_size = page_size;
  options.compress_tuples = dataset.spec.compress_in_db;
  return MaterializeTable(dataset.MakeSchema(), *dataset.train, path, options);
}

}  // namespace corgipile
