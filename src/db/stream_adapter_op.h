// Adapts any shuffle-strategy TupleStream into a Volcano physical operator,
// so the Sliding-Window and MRS baselines (which the paper implements
// outside the database) can also be executed through the engine for
// apples-to-apples comparisons.

#pragma once

#include <memory>

#include "db/operator.h"
#include "shuffle/tuple_stream.h"
#include "storage/block_source.h"

namespace corgipile {

class StreamAdapterOp : public PhysicalOperator {
 public:
  /// Owns both the stream and (optionally) the block source it reads.
  StreamAdapterOp(std::unique_ptr<TupleStream> stream,
                  std::unique_ptr<BlockSource> source = nullptr);

  const char* name() const override { return "StreamAdapter"; }
  Status Init() override;
  const Tuple* Next() override;
  /// Forwards to the wrapped stream's native batched fill.
  bool NextBatch(TupleBatch* out) override { return stream_->NextBatch(out); }
  Status ReScan() override;
  void Close() override;
  Status status() const override { return stream_->status(); }
  uint64_t QuarantinedBlocks() const override {
    return stream_->QuarantinedBlocks();
  }
  uint64_t SkippedTuples() const override { return stream_->SkippedTuples(); }

  TupleStream* stream() { return stream_.get(); }

 private:
  std::unique_ptr<TupleStream> stream_;
  std::unique_ptr<BlockSource> source_;
  uint64_t epoch_ = 0;
};

}  // namespace corgipile
