#include "db/model_store.h"

namespace corgipile {

std::string ModelStore::Put(std::unique_ptr<Model> model) {
  std::string id =
      std::string(model->name()) + "_" + std::to_string(next_id_++);
  models_[id] = std::move(model);
  return id;
}

Result<Model*> ModelStore::Get(const std::string& id) const {
  auto it = models_.find(id);
  if (it == models_.end()) return Status::NotFound("no model '" + id + "'");
  return it->second.get();
}

Status ModelStore::Remove(const std::string& id) {
  if (models_.erase(id) == 0) {
    return Status::NotFound("no model '" + id + "'");
  }
  return Status::OK();
}

std::vector<std::string> ModelStore::Ids() const {
  std::vector<std::string> ids;
  ids.reserve(models_.size());
  for (const auto& [id, _] : models_) ids.push_back(id);
  return ids;
}

}  // namespace corgipile
