#include "db/model_store.h"

#include <utility>

#include "iosim/fault_plane.h"

namespace corgipile {

const char* LifecycleActionToString(LifecycleAction a) {
  switch (a) {
    case LifecycleAction::kPublished:
      return "published";
    case LifecycleAction::kStaged:
      return "staged";
    case LifecycleAction::kPromoted:
      return "promoted";
    case LifecycleAction::kAborted:
      return "aborted";
    case LifecycleAction::kRolledBack:
      return "rolled_back";
    case LifecycleAction::kEvicted:
      return "evicted";
  }
  return "unknown";
}

std::string ModelStore::Put(std::unique_ptr<Model> model) {
  MutexLock lock(mu_);
  std::string id =
      std::string(model->name()) + "_" + std::to_string(next_id_++);
  Entry entry;
  entry.model = std::shared_ptr<const Model>(std::move(model));
  entry.events.push_back({LifecycleAction::kPublished, 1});
  models_[id] = std::move(entry);
  return id;
}

Result<std::shared_ptr<const Model>> ModelStore::Get(
    const std::string& id) const {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Status::NotFound("no model '" + id + "'");
  return it->second.model;
}

Result<ModelSnapshot> ModelStore::GetSnapshot(const std::string& id) const {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Status::NotFound("no model '" + id + "'");
  return ModelSnapshot{it->second.model, it->second.version};
}

Result<ModelSnapshot> ModelStore::GetVersionSnapshot(const std::string& id,
                                                     uint64_t version) const {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Status::NotFound("no model '" + id + "'");
  const Entry& entry = it->second;
  if (version == entry.version) {
    return ModelSnapshot{entry.model, entry.version};
  }
  auto hist = entry.history.find(version);
  if (hist == entry.history.end()) {
    return Status::NotFound("model '" + id + "' has no retained version " +
                            std::to_string(version));
  }
  return ModelSnapshot{hist->second, version};
}

void ModelStore::RetireCurrentLocked(Entry* entry) {
  entry->history.emplace(entry->version, std::move(entry->model));
  while (entry->history.size() > history_limit_) {
    const uint64_t evicted = entry->history.begin()->first;
    entry->history.erase(entry->history.begin());
    entry->events.push_back({LifecycleAction::kEvicted, evicted});
  }
}

Result<uint64_t> ModelStore::Publish(const std::string& id,
                                     std::unique_ptr<Model> model) {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) {
    // First publish: nothing to retire, nothing torn if we die before the
    // insert — the id simply does not exist yet.
    CORGI_INJECT_POINT("lifecycle.publish");
    Entry entry;
    entry.model = std::shared_ptr<const Model>(std::move(model));
    entry.events.push_back({LifecycleAction::kPublished, 1});
    models_[id] = std::move(entry);
    return uint64_t{1};
  }
  Entry& entry = it->second;
  // Staging: everything that can fail happens on locals, before the crash
  // point. A kill here unwinds with the entry untouched.
  std::shared_ptr<const Model> staged(std::move(model));
  const uint64_t new_version = entry.next_version;
  CORGI_INJECT_POINT("lifecycle.publish");
  // Commit: the entry flips to the new state in one locked sequence.
  RetireCurrentLocked(&entry);
  entry.model = std::move(staged);
  entry.version = new_version;
  entry.next_version = new_version + 1;
  entry.events.push_back({LifecycleAction::kPublished, new_version});
  return new_version;
}

Status ModelStore::Rollback(const std::string& id, uint64_t version) {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Status::NotFound("no model '" + id + "'");
  Entry& entry = it->second;
  if (version == entry.version) {
    return Status::InvalidArgument("model '" + id + "' is already at version " +
                                   std::to_string(version));
  }
  auto hist = entry.history.find(version);
  if (hist == entry.history.end()) {
    return Status::NotFound("model '" + id + "' has no retained version " +
                            std::to_string(version) +
                            " (evicted or never published)");
  }
  // Staging done (both lookups resolved); a kill at the point leaves the
  // incumbent serving.
  std::shared_ptr<const Model> target = hist->second;
  CORGI_INJECT_POINT("lifecycle.rollback");
  // Commit: target leaves the history, the displaced current joins it.
  entry.history.erase(hist);
  RetireCurrentLocked(&entry);
  entry.model = std::move(target);
  entry.version = version;
  entry.events.push_back({LifecycleAction::kRolledBack, version});
  return Status::OK();
}

Result<uint64_t> ModelStore::StageCanary(const std::string& id,
                                         std::unique_ptr<Model> model,
                                         const CanaryPolicy& policy) {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) {
    return Status::InvalidArgument(
        "cannot stage a canary for unknown model '" + id +
        "' (no incumbent; use Publish for the first version)");
  }
  if (policy.fraction <= 0.0 || policy.fraction >= 1.0) {
    return Status::InvalidArgument(
        "canary fraction must be in (0, 1), got " +
        std::to_string(policy.fraction));
  }
  Entry& entry = it->second;
  CanarySnapshot staged;
  staged.model = std::shared_ptr<const Model>(std::move(model));
  staged.version = entry.next_version;
  staged.policy = policy;
  entry.canary = std::move(staged);
  entry.next_version += 1;
  entry.events.push_back(
      {LifecycleAction::kStaged, entry.canary->version});
  return entry.canary->version;
}

std::optional<CanarySnapshot> ModelStore::GetCanary(
    const std::string& id) const {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return std::nullopt;
  return it->second.canary;
}

Status ModelStore::PromoteCanary(const std::string& id) {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Status::NotFound("no model '" + id + "'");
  Entry& entry = it->second;
  if (!entry.canary.has_value()) {
    return Status::InvalidArgument("no canary staged for model '" + id +
                                      "'");
  }
  // Staging: pull the candidate onto locals; a kill at the point leaves
  // both the incumbent and the staged canary exactly as they were.
  std::shared_ptr<const Model> candidate = entry.canary->model;
  const uint64_t candidate_version = entry.canary->version;
  CORGI_INJECT_POINT("lifecycle.canary_promote");
  // Commit.
  RetireCurrentLocked(&entry);
  entry.model = std::move(candidate);
  entry.version = candidate_version;
  entry.canary.reset();
  entry.events.push_back({LifecycleAction::kPromoted, candidate_version});
  return Status::OK();
}

Status ModelStore::AbortCanary(const std::string& id) {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Status::NotFound("no model '" + id + "'");
  Entry& entry = it->second;
  if (!entry.canary.has_value()) {
    return Status::InvalidArgument("no canary staged for model '" + id +
                                      "'");
  }
  const uint64_t burned = entry.canary->version;
  CORGI_INJECT_POINT("lifecycle.canary_abort");
  entry.canary.reset();
  entry.events.push_back({LifecycleAction::kAborted, burned});
  return Status::OK();
}

Result<uint64_t> ModelStore::GetVersion(const std::string& id) const {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Status::NotFound("no model '" + id + "'");
  return it->second.version;
}

Result<std::vector<uint64_t>> ModelStore::History(const std::string& id) const {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Status::NotFound("no model '" + id + "'");
  std::vector<uint64_t> versions;
  versions.reserve(it->second.history.size());
  for (const auto& [version, _] : it->second.history) {
    versions.push_back(version);
  }
  return versions;
}

Result<std::vector<LifecycleEvent>> ModelStore::Events(
    const std::string& id) const {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Status::NotFound("no model '" + id + "'");
  return it->second.events;
}

Status ModelStore::Remove(const std::string& id) {
  MutexLock lock(mu_);
  if (models_.erase(id) == 0) {
    return Status::NotFound("no model '" + id + "'");
  }
  return Status::OK();
}

size_t ModelStore::size() const {
  MutexLock lock(mu_);
  return models_.size();
}

std::vector<std::string> ModelStore::Ids() const {
  MutexLock lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(models_.size());
  for (const auto& [id, _] : models_) ids.push_back(id);
  return ids;
}

size_t ModelStore::history_limit() const {
  MutexLock lock(mu_);
  return history_limit_;
}

void ModelStore::set_history_limit(size_t limit) {
  MutexLock lock(mu_);
  history_limit_ = limit;
}

}  // namespace corgipile
