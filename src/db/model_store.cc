#include "db/model_store.h"

namespace corgipile {

std::string ModelStore::Put(std::unique_ptr<Model> model) {
  MutexLock lock(mu_);
  std::string id =
      std::string(model->name()) + "_" + std::to_string(next_id_++);
  models_[id] = Entry{std::shared_ptr<const Model>(std::move(model)), 1};
  return id;
}

Result<std::shared_ptr<const Model>> ModelStore::Get(
    const std::string& id) const {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Status::NotFound("no model '" + id + "'");
  return it->second.model;
}

Result<ModelSnapshot> ModelStore::GetSnapshot(const std::string& id) const {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Status::NotFound("no model '" + id + "'");
  return ModelSnapshot{it->second.model, it->second.version};
}

Result<uint64_t> ModelStore::Publish(const std::string& id,
                                     std::unique_ptr<Model> model) {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) {
    models_[id] = Entry{std::shared_ptr<const Model>(std::move(model)), 1};
    return uint64_t{1};
  }
  it->second.model = std::shared_ptr<const Model>(std::move(model));
  return ++it->second.version;
}

Result<uint64_t> ModelStore::GetVersion(const std::string& id) const {
  MutexLock lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) return Status::NotFound("no model '" + id + "'");
  return it->second.version;
}

Status ModelStore::Remove(const std::string& id) {
  MutexLock lock(mu_);
  if (models_.erase(id) == 0) {
    return Status::NotFound("no model '" + id + "'");
  }
  return Status::OK();
}

size_t ModelStore::size() const {
  MutexLock lock(mu_);
  return models_.size();
}

std::vector<std::string> ModelStore::Ids() const {
  MutexLock lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(models_.size());
  for (const auto& [id, _] : models_) ids.push_back(id);
  return ids;
}

}  // namespace corgipile
