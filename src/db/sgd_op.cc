#include "db/sgd_op.h"

#include <algorithm>

#include "iosim/fault_plane.h"
#include "ml/checkpoint.h"
#include "util/timer.h"

namespace corgipile {

SgdOp::SgdOp(Model* model, PhysicalOperator* child, Options options)
    : model_(model), child_(child), options_(options) {}

Status SgdOp::Init() {
  if (model_ == nullptr || child_ == nullptr) {
    return Status::InvalidArgument("null model or child");
  }
  if (options_.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (!options_.checkpoint_path.empty() &&
      options_.checkpoint_every_epochs == 0) {
    return Status::InvalidArgument("checkpoint_every must be >= 1");
  }
  CORGI_RETURN_NOT_OK(child_->Init());
  model_->InitParams(options_.init_seed);
  batched_ = options_.batch_size > 1 ||
             options_.optimizer != OptimizerKind::kSgd;
  if (batched_) {
    opt_ = MakeOptimizer(options_.optimizer);
    opt_->Reset(model_->num_params());
    grad_.assign(model_->num_params(), 0.0);
  }
  epoch_ = 0;
  start_epoch_ = 0;
  total_tuples_ = 0;
  best_test_metric_ = 0.0;
  base_quarantined_ = 0;
  base_skipped_ = 0;

  // Resume from the last durable checkpoint, if asked for and present. The
  // shuffle pipeline's epoch state is a pure function of (seed, epoch), so
  // fast-forwarding it with SkipEpochs replays the remaining epochs
  // exactly as the uninterrupted run would have.
  if (options_.resume && !options_.checkpoint_path.empty()) {
    auto loaded = LoadCheckpoint(options_.checkpoint_path);
    if (loaded.ok()) {
      TrainCheckpoint ckpt = std::move(loaded).ValueOrDie();
      if (ckpt.model_name != model_->name()) {
        return Status::InvalidArgument(
            "checkpoint model '" + ckpt.model_name + "' does not match '" +
            model_->name() + "'");
      }
      if (ckpt.params.size() != model_->num_params()) {
        return Status::InvalidArgument(
            "checkpoint has " + std::to_string(ckpt.params.size()) +
            " params, model expects " +
            std::to_string(model_->num_params()));
      }
      model_->params() = ckpt.params;
      epoch_ = static_cast<uint32_t>(
          std::min<uint64_t>(ckpt.next_epoch, options_.max_epochs));
      start_epoch_ = epoch_;
      total_tuples_ = ckpt.total_tuples;
      best_test_metric_ = ckpt.best_test_metric;
      base_quarantined_ = ckpt.total_quarantined_blocks;
      base_skipped_ = ckpt.total_skipped_tuples;
      if (epoch_ > 0) {
        CORGI_RETURN_NOT_OK(child_->SkipEpochs(epoch_));
      }
    } else if (!loaded.status().IsNotFound()) {
      return loaded.status();  // corrupt/unreadable checkpoint: surface it
    }
  }
  initialized_ = true;
  return Status::OK();
}

Status SgdOp::SaveProgress() {
  TrainCheckpoint ckpt;
  ckpt.model_name = model_->name();
  ckpt.next_epoch = epoch_;
  ckpt.params = model_->params();
  ckpt.total_tuples = total_tuples_;
  ckpt.best_test_metric = best_test_metric_;
  ckpt.total_quarantined_blocks = total_quarantined_blocks();
  ckpt.total_skipped_tuples = total_skipped_tuples();
  return SaveCheckpoint(ckpt, options_.checkpoint_path);
}

Result<bool> SgdOp::NextEpoch(EpochLog* log) {
  if (!initialized_) return Status::Internal("NextEpoch before Init");
  if (epoch_ >= options_.max_epochs) return false;
  CORGI_INJECT_POINT("db.sgd.epoch_begin");

  const double lr = options_.lr.LrAtEpoch(epoch_);
  const uint64_t quarantined_before = child_->QuarantinedBlocks();
  const uint64_t skipped_before = child_->SkippedTuples();
  WallTimer timer;
  double loss_sum = 0.0;
  uint64_t seen = 0;

  uint32_t in_batch = 0;
  auto flush = [&] {
    if (in_batch == 0) return;
    const double inv = 1.0 / static_cast<double>(in_batch);
    for (double& g : grad_) g *= inv;
    opt_->Apply(&model_->params(), grad_, lr);
    std::fill(grad_.begin(), grad_.end(), 0.0);
    in_batch = 0;
  };
  if (options_.exec_batch_tuples == 0) {
    // Legacy per-tuple pull — the golden reference for the batched path.
    if (!batched_) {
      while (const Tuple* t = child_->Next()) {
        loss_sum += model_->SgdStep(*t, lr);
        ++seen;
      }
    } else {
      while (const Tuple* t = child_->Next()) {
        loss_sum += model_->AccumulateGrad(*t, &grad_);
        ++seen;
        if (++in_batch == options_.batch_size) flush();
      }
      flush();
    }
  } else {
    // Batched pipeline: one child->NextBatch per exec_batch_tuples tuples,
    // with the optimizer's mini-batch grouping re-chunked across transport
    // boundaries so the flush cadence matches the legacy loop exactly.
    exec_batch_.set_target_tuples(options_.exec_batch_tuples);
    while (child_->NextBatch(&exec_batch_)) {
      if (!batched_) {
        model_->BatchGradientStep(exec_batch_, lr, &loss_sum);
        seen += exec_batch_.size();
      } else {
        size_t i = 0;
        while (i < exec_batch_.size()) {
          const size_t take = std::min<size_t>(
              exec_batch_.size() - i, options_.batch_size - in_batch);
          model_->BatchAccumulateGrad(exec_batch_, i, i + take, &grad_,
                                      &loss_sum);
          i += take;
          seen += take;
          in_batch += static_cast<uint32_t>(take);
          if (in_batch == options_.batch_size) flush();
        }
      }
    }
    if (batched_) flush();
  }
  CORGI_RETURN_NOT_OK(child_->status());

  log->epoch = epoch_;
  log->lr = lr;
  log->tuples_seen = seen;
  log->epoch_wall_seconds = timer.ElapsedSeconds();
  log->train_loss = seen > 0 ? loss_sum / static_cast<double>(seen) : 0.0;
  log->quarantined_blocks = child_->QuarantinedBlocks() - quarantined_before;
  log->skipped_tuples = child_->SkippedTuples() - skipped_before;
  if (options_.clock != nullptr) {
    options_.clock->Advance(TimeCategory::kCompute, log->epoch_wall_seconds);
  }
  if (options_.test_set != nullptr && !options_.test_set->empty()) {
    const EvalResult eval =
        Evaluate(*model_, *options_.test_set, options_.label_type);
    log->test_loss = eval.mean_loss;
    log->test_metric = eval.metric;
  }
  log->cumulative_sim_seconds =
      options_.clock != nullptr ? options_.clock->TotalElapsed() : 0.0;

  total_tuples_ += seen;
  best_test_metric_ = std::max(best_test_metric_, log->test_metric);
  ++epoch_;
  // Chaos point: a kill here dies after the epoch's updates but before its
  // checkpoint — the restarted run replays the epoch from the previous
  // checkpoint and must land on identical parameters.
  CORGI_INJECT_POINT("db.sgd.epoch_end");
  if (!options_.checkpoint_path.empty() &&
      (epoch_ == options_.max_epochs ||
       (epoch_ - start_epoch_) % options_.checkpoint_every_epochs == 0)) {
    CORGI_RETURN_NOT_OK(SaveProgress());
  }
  if (epoch_ < options_.max_epochs) {
    // The paper's re-scan mechanism: reshuffle + reread for the next epoch.
    CORGI_RETURN_NOT_OK(child_->ReScan());
  }
  return true;
}

Result<std::vector<EpochLog>> SgdOp::RunToCompletion() {
  std::vector<EpochLog> logs;
  for (;;) {
    EpochLog log;
    CORGI_ASSIGN_OR_RETURN(bool more, NextEpoch(&log));
    if (!more) break;
    logs.push_back(log);
  }
  return logs;
}

void SgdOp::Close() {
  if (child_ != nullptr) child_->Close();
}

}  // namespace corgipile
