// The miniature database engine hosting CorgiPile (paper §6).
//
// Owns tables (heap files under a data directory), a buffer-manager-style
// device/clock configuration, and the in-memory model store. Executes the
// SQL-ish TRAIN BY / PREDICT BY statements by building Volcano pipelines
// out of BlockShuffleOp → TupleShuffleOp → SgdOp.

#pragma once

#include <map>
#include <memory>
#include <string>

#include "db/model_store.h"
#include "ml/metrics.h"
#include "db/query.h"
#include "db/run_result.h"
#include "dataset/catalog.h"
#include "iosim/device.h"
#include "iosim/sim_clock.h"
#include "serve/inference_engine.h"
#include "serve/serve_stats.h"
#include "storage/table.h"
#include "util/mutex.h"
#include "util/status.h"

namespace corgipile {

/// Outcome of a PREDICT BY statement.
struct InDbPredictResult {
  uint64_t count = 0;
  double metric = 0.0;  ///< accuracy or R²
  double mean_loss = 0.0;
  /// Serving-side accounting: PREDICT BY routes every tuple through the
  /// micro-batched InferenceEngine, so batching/latency stats come along.
  ServeStats serve;
};

class Database {
 public:
  /// Tables are created under `data_dir`; all I/O is billed against
  /// `device` on the internal SimClock. Pages read by any operator pass
  /// through a shared buffer manager of `buffer_pool_bytes` (the paper's
  /// setup tunes shared_buffers / relies on the OS cache; datasets smaller
  /// than the pool run at memory speed after their first epoch). Pass 0 to
  /// disable caching.
  Database(std::string data_dir, DeviceProfile device,
           uint64_t buffer_pool_bytes = 32ull << 20);

  // --- catalog ---

  /// Materializes `tuples` as a heap table. `compress` enables the TOAST
  /// analog. Fails with AlreadyExists on duplicate names.
  Status CreateTable(const std::string& name, const Schema& schema,
                     const std::vector<Tuple>& tuples, bool compress = false,
                     uint32_t page_size = Page::kDefaultSize);

  /// Convenience: creates the train table of a generated dataset and
  /// registers its test split for post-epoch evaluation.
  Status RegisterDataset(const std::string& name, const Dataset& dataset);

  Result<Table*> GetTable(const std::string& name);

  // --- execution ---

  /// Parses and runs one statement; returns a printable summary.
  Result<std::string> Execute(const std::string& sql);

  Result<InDbTrainResult> Train(const TrainStatement& stmt);
  Result<InDbPredictResult> Predict(const PredictStatement& stmt);

  /// Detailed binary evaluation of a stored model over a table (accuracy,
  /// precision/recall/F1, AUC). Binary tables only.
  Result<BinaryReport> EvaluateModel(const EvaluateStatement& stmt);

  /// Ingests a LIBSVM file as a table. Params: order=clustered|shuffled
  /// (default: keep file order), compress=true|false, dim=<override>,
  /// seed=<shuffle seed>. Returns the tuple count loaded.
  Result<uint64_t> Load(const LoadStatement& stmt);

  /// Reattaches a table created by a previous session in this data
  /// directory (the engine writes a `<name>.schema` sidecar next to each
  /// heap file). Test splits are not persisted.
  Status Attach(const std::string& name);

  /// Streaming ingest (INSERT analog): appends `tuples` to an existing
  /// table as fresh heap-file pages, serialized against concurrent scans.
  /// The continual-learning loop feeds on this (src/lifecycle/continual.h).
  Status Insert(const std::string& table, const std::vector<Tuple>& tuples);

  /// ROLLBACK MODEL <id> TO <version>: re-points the published model at a
  /// retained prior version (ModelStore::Rollback; in-flight predicts keep
  /// their snapshot).
  Status RollbackModel(const RollbackStatement& stmt);

  // --- introspection ---

  /// Attaches a fault injector to every table (current and future) for
  /// robustness testing; null detaches. Not owned; must outlive the
  /// database.
  void SetFaultInjection(FaultInjector* injector);

  /// Serving policy for PREDICT BY (batch size, deadline, workers, queue
  /// depth, service-time model). The defaults never shed: a table scan is
  /// an offline batch workload, not an open-loop arrival process.
  void set_serve_options(const ServeOptions& opts) { serve_options_ = opts; }
  const ServeOptions& serve_options() const { return serve_options_; }

  SimClock& clock() { return clock_; }
  IoStats& io_stats() { return io_stats_; }
  ModelStore& models() { return models_; }
  const DeviceProfile& device() const { return device_; }
  BufferManager* buffer_pool() { return buffer_pool_.get(); }

  /// Resets the clock and I/O stats (tables keep their data).
  void ResetAccounting();

 private:
  struct TableEntry {
    std::unique_ptr<Table> table;
    std::shared_ptr<const std::vector<Tuple>> test_set;
    LabelType label_type = LabelType::kBinary;
    uint32_t num_classes = 2;
  };

  Result<std::unique_ptr<Model>> MakeModel(const std::string& kind,
                                           const Schema& schema,
                                           const Params& params) const;

  std::string data_dir_;
  DeviceProfile device_;
  /// Serializes heap-file scans (shared read cursor) across the concurrent
  /// PREDICT sessions the serving path allows. Guards the tables' read
  /// cursors (external state), not a member field — so no GUARDED_BY; the
  /// capability still makes lock/unlock balance machine-checked.
  mutable Mutex scan_mu_;
  FaultInjector* fault_ = nullptr;
  std::unique_ptr<BufferManager> buffer_pool_;
  SimClock clock_;
  IoStats io_stats_;
  std::map<std::string, TableEntry> tables_;
  /// Shuffled copies created by strategy=shuffle_once, kept alive per table.
  std::map<std::string, std::unique_ptr<Table>> shuffled_copies_;
  ModelStore models_;
  ServeOptions serve_options_ = [] {
    ServeOptions o;
    o.max_queue_depth = 0;  // offline scan: admit everything
    return o;
  }();
};

}  // namespace corgipile
