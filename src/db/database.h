// The miniature database engine hosting CorgiPile (paper §6).
//
// Owns sharded tables (heap files under a data directory), a
// buffer-manager-style device/clock configuration, the in-memory model
// store, and the session registry (DESIGN.md §14). Executes the SQL-ish
// TRAIN BY / PREDICT BY statements by building Volcano pipelines out of
// BlockShuffleOp → TupleShuffleOp → SgdOp.
//
// Concurrency model: there is no global scan lock. Reads capture immutable
// cross-shard snapshots (ShardedTable::Snapshot) and never block Insert;
// Insert publishes a new snapshot atomically after its pages are durable.
// Sessions (src/session/session.h) are the concurrency unit: statements
// from different sessions run concurrently; Database::Execute is a compat
// shim over an implicit default session.

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "db/model_store.h"
#include "ml/metrics.h"
#include "db/query.h"
#include "db/run_result.h"
#include "dataset/catalog.h"
#include "iosim/device.h"
#include "iosim/sim_clock.h"
#include "serve/inference_engine.h"
#include "serve/serve_stats.h"
#include "session/session.h"
#include "storage/sharded_table.h"
#include "storage/table.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/threadpool.h"

namespace corgipile {

/// Outcome of a PREDICT BY statement.
struct InDbPredictResult {
  uint64_t count = 0;
  double metric = 0.0;  ///< accuracy or R²
  double mean_loss = 0.0;
  /// Serving-side accounting: PREDICT BY routes every tuple through the
  /// micro-batched InferenceEngine, so batching/latency stats come along.
  ServeStats serve;
};

class Database {
 public:
  /// Tables are created under `data_dir`; all I/O is billed against
  /// `device` on the internal SimClock. Pages read by any operator pass
  /// through a shared buffer manager of `buffer_pool_bytes` (the paper's
  /// setup tunes shared_buffers / relies on the OS cache; datasets smaller
  /// than the pool run at memory speed after their first epoch). Pass 0 to
  /// disable caching.
  Database(std::string data_dir, DeviceProfile device,
           uint64_t buffer_pool_bytes = 32ull << 20);
  ~Database();

  // --- sessions ---

  /// Opens a new session. The session must not outlive the database; its
  /// destructor unregisters it. Statements on different sessions run
  /// concurrently (each individual session is single-threaded).
  std::unique_ptr<Session> CreateSession(SessionOptions options = {});

  /// The implicit session behind the Database::Execute compat shim
  /// (id 1, seed 42, label "default").
  Session& default_session() { return *default_session_; }

  /// One row per live session, ordered by id (SHOW SESSIONS).
  std::vector<SessionInfo> DescribeSessions() const;

  // --- catalog ---

  /// Materializes `tuples` as a heap table partitioned round-robin across
  /// `num_shards` shard files. `compress` enables the TOAST analog. Fails
  /// with AlreadyExists on duplicate names.
  Status CreateTable(const std::string& name, const Schema& schema,
                     const std::vector<Tuple>& tuples, bool compress = false,
                     uint32_t page_size = Page::kDefaultSize,
                     uint32_t num_shards = 1);

  /// Convenience: creates the train table of a generated dataset and
  /// registers its test split for post-epoch evaluation. `num_shards`
  /// partitions the train table round-robin.
  Status RegisterDataset(const std::string& name, const Dataset& dataset,
                         uint32_t num_shards = 1);

  /// Compat accessor: shard 0 of the named table (the whole table when
  /// num_shards == 1).
  Result<Table*> GetTable(const std::string& name);

  Result<ShardedTable*> GetShardedTable(const std::string& name);

  // --- execution ---

  /// Compat shim: parses and runs one statement on the implicit default
  /// session; returns a printable summary.
  Result<std::string> Execute(const std::string& sql);

  Result<InDbTrainResult> Train(const TrainStatement& stmt);
  Result<InDbPredictResult> Predict(const PredictStatement& stmt);

  /// Detailed binary evaluation of a stored model over a table (accuracy,
  /// precision/recall/F1, AUC). Binary tables only.
  Result<BinaryReport> EvaluateModel(const EvaluateStatement& stmt);

  /// Ingests a LIBSVM file as a table. Params: order=clustered|shuffled
  /// (default: keep file order), compress=true|false, dim=<override>,
  /// seed=<shuffle seed>, shards=<partition count>. Returns the tuple
  /// count loaded.
  Result<uint64_t> Load(const LoadStatement& stmt);

  /// Reattaches a table created by a previous session in this data
  /// directory (the engine writes a `<name>.schema` sidecar next to each
  /// heap file; sharded tables record their shard count there). Test
  /// splits are not persisted.
  Status Attach(const std::string& name);

  /// Streaming ingest (INSERT analog): appends `tuples` round-robin to the
  /// table's shards and atomically publishes a new snapshot. In-flight
  /// scans keep their snapshots; nothing blocks on them. The
  /// continual-learning loop feeds on this (src/lifecycle/continual.h).
  Status Insert(const std::string& table, const std::vector<Tuple>& tuples);

  /// ROLLBACK MODEL <id> TO <version>: re-points the published model at a
  /// retained prior version (ModelStore::Rollback; in-flight predicts keep
  /// their snapshot).
  Status RollbackModel(const RollbackStatement& stmt);

  // --- introspection ---

  /// Attaches a fault injector to every table (current and future) for
  /// robustness testing; null detaches. Not owned; must outlive the
  /// database.
  void SetFaultInjection(FaultInjector* injector);

  /// Serving policy for PREDICT BY (batch size, deadline, workers, queue
  /// depth, service-time model). The defaults never shed: a table scan is
  /// an offline batch workload, not an open-loop arrival process.
  void set_serve_options(const ServeOptions& opts) { serve_options_ = opts; }
  const ServeOptions& serve_options() const { return serve_options_; }

  /// Benchmark baseline: when true, every table scan and insert funnels
  /// through one mutex and merge scans run sequentially — the old
  /// `scan_mu_` behavior bench_session_sweep compares the snapshot engine
  /// against. Off by default.
  void set_serialize_scans(bool on) {
    serialize_scans_.store(on, std::memory_order_release);
  }
  bool serialize_scans() const {
    return serialize_scans_.load(std::memory_order_acquire);
  }

  SimClock& clock() { return clock_; }
  IoStats& io_stats() { return io_stats_; }
  ModelStore& models() { return models_; }
  const DeviceProfile& device() const { return device_; }
  BufferManager* buffer_pool() { return buffer_pool_.get(); }

  /// Resets the clock and I/O stats (tables keep their data).
  void ResetAccounting();

 private:
  friend class Session;

  struct TableEntry {
    std::unique_ptr<ShardedTable> table;
    std::shared_ptr<const std::vector<Tuple>> test_set;
    LabelType label_type = LabelType::kBinary;
    uint32_t num_classes = 2;
  };

  Result<std::unique_ptr<Model>> MakeModel(const std::string& kind,
                                           const Schema& schema,
                                           const Params& params) const;

  /// Catalog lookup under catalog_mu_. The returned entry pointer stays
  /// valid for the database's lifetime (std::map nodes are stable and
  /// tables are never dropped).
  Result<TableEntry*> FindTable(const std::string& name);

  /// Registers a freshly created table: sidecar, accounting, fault
  /// injection, buffer pool. Called under catalog_mu_.
  Status InstallTable(const std::string& name, const Schema& schema,
                      bool compress, uint32_t page_size, TableEntry entry)
      CORGI_REQUIRES(catalog_mu_);

  /// Scans a snapshot into a tuple vector, honoring the serialize-scans
  /// baseline and using the shared scan pool for multi-shard snapshots.
  Status CollectForRead(const ShardedSnapshot& snap, std::vector<Tuple>* out);

  /// Lazily built pool shared by all multi-shard merge scans.
  ThreadPool* scan_pool();

  void UnregisterSession(const Session* session);

  std::string data_dir_;
  DeviceProfile device_;
  FaultInjector* fault_ = nullptr;
  std::unique_ptr<BufferManager> buffer_pool_;
  SimClock clock_;
  IoStats io_stats_;

  /// Guards the catalog maps (entries themselves have their own locking).
  mutable Mutex catalog_mu_;
  std::map<std::string, TableEntry> tables_ CORGI_GUARDED_BY(catalog_mu_);
  /// Shuffled copies created by strategy=shuffle_once, kept alive per table.
  std::map<std::string, std::unique_ptr<Table>> shuffled_copies_
      CORGI_GUARDED_BY(catalog_mu_);

  /// Session registry. Sessions unregister in their destructor; the map is
  /// ordered so SHOW SESSIONS output is deterministic.
  mutable Mutex session_mu_;
  uint64_t next_session_id_ CORGI_GUARDED_BY(session_mu_) = 1;
  std::map<uint64_t, Session*> sessions_ CORGI_GUARDED_BY(session_mu_);
  std::unique_ptr<Session> default_session_;

  /// Built on first multi-shard scan; guarded by pool_mu_.
  mutable Mutex pool_mu_;
  std::unique_ptr<ThreadPool> scan_pool_ CORGI_GUARDED_BY(pool_mu_);

  std::atomic<bool> serialize_scans_{false};
  /// Engaged only when serialize_scans() — the legacy global-scan-lock
  /// baseline, kept for A/B measurement, not correctness.
  mutable Mutex baseline_scan_mu_;

  ModelStore models_;
  ServeOptions serve_options_ = [] {
    ServeOptions o;
    o.max_queue_depth = 0;  // offline scan: admit everything
    return o;
  }();
};

}  // namespace corgipile
