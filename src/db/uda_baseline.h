// UDA-based in-DB ML baselines: Apache MADlib and Bismarck (paper §2.3,
// §7.3).
//
// Both systems implement SGD as a User-Defined Aggregate driven by a plain
// sequential scan — one UDA invocation per epoch, the model as aggregate
// state. Neither shuffles inside the scan; their two supported disciplines
// are No Shuffle and Shuffle Once (an offline ORDER BY random() copy).
//
// Flavor differences reproduced from the paper's measurements:
//  * MADlib spends extra per-tuple work on auxiliary statistical metrics
//    (it is consistently slower than Bismarck; we charge a constant
//    compute factor).
//  * MADlib's LR computes a stderr metric with dense matrix work that makes
//    wide dense datasets (epsilon, yfcc) not finish within hours — runs on
//    such inputs return timed_out = true.
//  * MADlib does not support sparse LR/SVM input (criteo) — NotImplemented.

#pragma once

#include <memory>
#include <string>

#include "db/run_result.h"
#include "iosim/device.h"
#include "iosim/sim_clock.h"
#include "ml/model.h"
#include "ml/optimizer.h"
#include "storage/table.h"
#include "util/status.h"

namespace corgipile {

enum class UdaFlavor { kMadlib, kBismarck };

const char* UdaFlavorToString(UdaFlavor flavor);

struct UdaEngineOptions {
  UdaFlavor flavor = UdaFlavor::kBismarck;
  /// true = Shuffle Once (offline shuffled copy first); false = No Shuffle.
  bool shuffle_once = false;
  LrSchedule lr;
  uint32_t max_epochs = 20;
  const std::vector<Tuple>* test_set = nullptr;
  LabelType label_type = LabelType::kBinary;
  SimClock* clock = nullptr;
  IoStats* io_stats = nullptr;
  DeviceProfile device = DeviceProfile::Memory();
  /// Directory for the Shuffle Once copy; empty = the platform temp dir
  /// (std::filesystem::temp_directory_path).
  std::string scratch_dir;
  uint64_t seed = 42;
  uint64_t init_seed = 7;
  /// Extra per-tuple compute multiplier for MADlib's auxiliary metrics.
  double madlib_compute_factor = 2.5;
};

/// Trains `model` over `table` the way the UDA systems do. The model is
/// updated in place; per-epoch logs and timing are returned.
Result<InDbTrainResult> RunUdaBaseline(Table* table, Model* model,
                                       const UdaEngineOptions& options);

}  // namespace corgipile
