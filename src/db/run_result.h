// Result record shared by the CorgiPile engine and the UDA baselines.
//
// Concurrency: InDbTrainResult is a plain value type with no internal
// synchronization. Engines populate one instance on the driver thread after
// their worker/producer threads have been joined (TupleShuffleOp and
// TrainDistributed both barrier before reporting), so results may be read
// freely once the producing call returns.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/trainer.h"

namespace corgipile {

/// Outcome of one in-database training run.
struct InDbTrainResult {
  std::string model_id;  ///< id in the model store (when stored)
  /// Registry version under model_id; > 1 when `publish=<id>` hot-swapped
  /// an earlier generation.
  uint64_t model_version = 1;
  std::vector<EpochLog> epochs;

  /// Pre-training preparation (Shuffle Once's offline shuffle), simulated
  /// seconds. Included in end_to_end_seconds.
  double prep_seconds = 0.0;
  uint64_t extra_disk_bytes = 0;

  /// Simulated time decomposition over the whole run.
  double sim_io_seconds = 0.0;
  double sim_compute_seconds = 0.0;

  /// End-to-end simulated time assuming loading and compute serialize
  /// (single buffering) vs overlap (double buffering). For pipelines
  /// without a TupleShuffle stage the two are equal.
  double end_to_end_single_seconds = 0.0;
  double end_to_end_double_seconds = 0.0;

  double final_metric = 0.0;
  double final_loss = 0.0;

  /// Graceful-degradation totals: corrupt/unreadable blocks quarantined
  /// across all epochs, and the tuples lost with them.
  uint64_t total_quarantined_blocks = 0;
  uint64_t total_skipped_tuples = 0;

  /// Epoch the run resumed from (`WITH checkpoint=..., resume=true`);
  /// 0 when the run started fresh.
  uint32_t resumed_from_epoch = 0;

  // --- guarded lifecycle (DESIGN.md §13) ---
  /// How the trained candidate left the statement:
  ///   "published" — stored/hot-swapped as the current version
  ///   "canary"    — staged behind the incumbent (see canary_version)
  ///   "rejected"  — failed the validation gate; never stored
  /// Empty when the statement used the plain ungated path.
  std::string lifecycle_state;
  /// Validation-gate outcome (`WITH validate=true`).
  bool validated = false;
  double validation_metric = 0.0;
  double validation_loss = 0.0;
  /// Why the gate rejected the candidate; empty when it passed.
  std::string validation_reason;
  /// Version reserved for the staged canary (lifecycle_state == "canary").
  uint64_t canary_version = 0;

  /// Set when the engine refuses/cannot finish (e.g. MADlib LR on wide
  /// dense data, which the paper reports as not finishing in 4 hours).
  bool timed_out = false;

  double AvgEpochSingleSeconds() const {
    return epochs.empty() ? 0.0
                          : end_to_end_epochs_single() / epochs.size();
  }
  double AvgEpochDoubleSeconds() const {
    return epochs.empty() ? 0.0
                          : end_to_end_epochs_double() / epochs.size();
  }
  double end_to_end_epochs_single() const {
    return end_to_end_single_seconds - prep_seconds;
  }
  double end_to_end_epochs_double() const {
    return end_to_end_double_seconds - prep_seconds;
  }
};

}  // namespace corgipile
