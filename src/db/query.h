// SQL-ish query interface (paper §6):
//   SELECT * FROM <table> TRAIN BY <model> [WITH k=v, k=v, ...]
//   SELECT * FROM <table> PREDICT BY <model_id>
//   SELECT * FROM <table> EVALUATE BY <model_id>   (detailed report)
//   LOAD TABLE <table> FROM '<libsvm_path>' [WITH order=clustered, ...]
//   ROLLBACK MODEL <model_id> TO <version>         (lifecycle, DESIGN.md §13)
//   SHOW SESSIONS                                  (sessions, DESIGN.md §14)

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/config.h"
#include "util/status.h"

namespace corgipile {

struct TrainStatement {
  std::string table_name;
  std::string model_kind;  ///< lr | svm | linreg | softmax | mlp
  Params params;           ///< learning_rate, max_epoch_num, block_size, ...
};

struct PredictStatement {
  std::string table_name;
  std::string model_id;
};

struct EvaluateStatement {
  std::string table_name;
  std::string model_id;
};

struct LoadStatement {
  std::string table_name;
  std::string path;  ///< LIBSVM file
  Params params;     ///< order=clustered|shuffled, compress=true, dim=, seed=
};

/// ROLLBACK MODEL <id> TO <version>: re-point a published model at a
/// retained prior version (ModelStore::Rollback).
struct RollbackStatement {
  std::string model_id;
  uint64_t version = 0;
};

/// SHOW SESSIONS: one row per live session (id, label, statements run,
/// sim-time consumed). DESIGN.md §14.
struct ShowSessionsStatement {};

using Statement = std::variant<TrainStatement, PredictStatement,
                               EvaluateStatement, LoadStatement,
                               RollbackStatement, ShowSessionsStatement>;

/// Parses one statement. Keywords are case-insensitive; identifiers are
/// case-sensitive. Trailing semicolon optional.
Result<Statement> ParseQuery(const std::string& sql);

/// Parses sizes like "8192", "64KB", "10MB", "1GB" (case-insensitive).
Result<uint64_t> ParseByteSize(const std::string& text);

}  // namespace corgipile
