#include "db/stream_adapter_op.h"

namespace corgipile {

StreamAdapterOp::StreamAdapterOp(std::unique_ptr<TupleStream> stream,
                                 std::unique_ptr<BlockSource> source)
    : stream_(std::move(stream)), source_(std::move(source)) {}

Status StreamAdapterOp::Init() {
  if (stream_ == nullptr) return Status::InvalidArgument("null stream");
  epoch_ = 0;
  return stream_->StartEpoch(epoch_);
}

const Tuple* StreamAdapterOp::Next() { return stream_->Next(); }

Status StreamAdapterOp::ReScan() { return stream_->StartEpoch(++epoch_); }

void StreamAdapterOp::Close() {}

}  // namespace corgipile
