// Volcano-style physical operator interface (paper §6.2).
//
// Mirrors PostgreSQL's executor protocol: ExecInit → getNext* → ExecReScan
// (per epoch) → Close. Operators stream Tuple pointers; nullptr signals end
// of the current scan.

#pragma once

#include <memory>

#include "storage/tuple.h"
#include "util/status.h"

namespace corgipile {

class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  virtual const char* name() const = 0;

  /// One-time initialization (buffers, model state, ...).
  virtual Status Init() = 0;

  /// Produces the next tuple or nullptr at end-of-scan / on error; after
  /// nullptr, check status().
  virtual const Tuple* Next() = 0;

  /// Resets the scan for the next epoch (PostgreSQL's re-scan mechanism):
  /// reshuffle block ids, reset buffers, and recurse into children.
  virtual Status ReScan() = 0;

  /// Releases resources. Idempotent.
  virtual void Close() = 0;

  virtual Status status() const { return Status::OK(); }

  /// Unreadable/corrupt blocks skipped so far under a BlockReadTolerance
  /// policy, and the tuples lost with them. Operators with children should
  /// aggregate their subtree.
  virtual uint64_t QuarantinedBlocks() const { return 0; }
  virtual uint64_t SkippedTuples() const { return 0; }
};

}  // namespace corgipile
