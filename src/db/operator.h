// Volcano-style physical operator interface (paper §6.2), extended with the
// batched transport of DESIGN.md §9.
//
// Mirrors PostgreSQL's executor protocol: ExecInit → getNext* → ExecReScan
// (per epoch) → Close. Operators move whole TupleBatches (NextBatch, the
// hot path); the per-tuple Next() is retained as the golden-reference
// protocol and for compatibility. As with BatchStream, the two must not be
// interleaved within one scan.

#pragma once

#include <memory>

#include "exec/tuple_batch.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace corgipile {

class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  virtual const char* name() const = 0;

  /// One-time initialization (buffers, model state, ...).
  virtual Status Init() = 0;

  /// Produces the next tuple or nullptr at end-of-scan / on error; after
  /// nullptr, check status().
  virtual const Tuple* Next() = 0;

  /// Clears *out and fills it with up to out->target_tuples() tuples in
  /// scan order; returns true iff at least one was appended. The
  /// concatenation of batches equals the Next() emission order exactly.
  /// Default drains Next(); operators with block or staged buffers
  /// override it to fill from their arenas directly.
  virtual bool NextBatch(TupleBatch* out) {
    out->Clear();
    while (!out->full()) {
      const Tuple* t = Next();
      if (t == nullptr) break;
      out->Append(*t);
    }
    return !out->empty();
  }

  /// Resets the scan for the next epoch (PostgreSQL's re-scan mechanism):
  /// reshuffle block ids, reset buffers, and recurse into children.
  virtual Status ReScan() = 0;

  /// Advances the scan by `n` epochs without serving their tuples, so a
  /// checkpoint-resumed run aligns every per-epoch RNG stream with where
  /// the original run would be. Every operator's epoch state is a pure
  /// function of (seed, epoch), so the default — n re-scans — is always
  /// correct; operators that buffer or prefetch data override it to skip
  /// without reading.
  virtual Status SkipEpochs(uint64_t n) {
    for (; n > 0; --n) CORGI_RETURN_NOT_OK(ReScan());
    return Status::OK();
  }

  /// Releases resources. Idempotent.
  virtual void Close() = 0;

  virtual Status status() const { return Status::OK(); }

  /// Unreadable/corrupt blocks skipped so far under a BlockReadTolerance
  /// policy, and the tuples lost with them. Operators with children should
  /// aggregate their subtree.
  virtual uint64_t QuarantinedBlocks() const { return 0; }
  virtual uint64_t SkippedTuples() const { return 0; }
};

}  // namespace corgipile
