#include "db/uda_baseline.h"

#include <cstring>

#include "ml/metrics.h"
#include "shuffle/tuple_stream.h"
#include "storage/table_shuffle.h"
#include "util/timer.h"

namespace corgipile {

const char* UdaFlavorToString(UdaFlavor flavor) {
  switch (flavor) {
    case UdaFlavor::kMadlib: return "madlib";
    case UdaFlavor::kBismarck: return "bismarck";
  }
  return "?";
}

namespace {

// MADlib-specific feasibility rules observed in the paper (§7.3.1).
Status CheckMadlibSupport(const Table& table, const Model& model) {
  if (table.schema().sparse &&
      (std::strcmp(model.name(), "lr") == 0 ||
       std::strcmp(model.name(), "svm") == 0)) {
    return Status::NotImplemented(
        "MADlib does not support sparse input for LR/SVM");
  }
  return Status::OK();
}

bool MadlibLrTimesOut(const Table& table, const Model& model) {
  // "MADlib LR cannot finish a single epoch within 4 hours" on wide dense
  // data, due to dense matrix work on the stderr metric.
  return std::strcmp(model.name(), "lr") == 0 && !table.schema().sparse &&
         table.schema().dim >= 1000;
}

}  // namespace

Result<InDbTrainResult> RunUdaBaseline(Table* table, Model* model,
                                       const UdaEngineOptions& options) {
  if (table == nullptr || model == nullptr) {
    return Status::InvalidArgument("null table or model");
  }
  InDbTrainResult result;
  if (options.flavor == UdaFlavor::kMadlib) {
    CORGI_RETURN_NOT_OK(CheckMadlibSupport(*table, *model));
    if (MadlibLrTimesOut(*table, *model)) {
      result.timed_out = true;
      return result;
    }
  }

  SimClock* clock = options.clock;
  const double sim_before = clock != nullptr ? clock->TotalElapsed() : 0.0;
  const double io_before =
      clock != nullptr ? clock->Elapsed(TimeCategory::kIoRead) +
                             clock->Elapsed(TimeCategory::kIoWrite) +
                             clock->Elapsed(TimeCategory::kDecompress)
                       : 0.0;

  // Shuffle Once: offline ORDER BY random() copy (random reads + copy).
  Table* scan_table = table;
  std::unique_ptr<Table> copy_holder;
  if (options.shuffle_once) {
    CORGI_ASSIGN_OR_RETURN(
        ShuffledCopyResult copy,
        BuildShuffledCopy(table,
                          ResolveScratchDir(options.scratch_dir) + "/" +
                              table->schema().name +
                              ".uda_shuffled.tbl",
                          options.seed ^ 0xDA0B50FF, options.device,
                          options.clock, options.io_stats));
    result.prep_seconds = copy.sim_seconds;
    result.extra_disk_bytes = copy.extra_disk_bytes;
    copy_holder = std::move(copy.table);
    scan_table = copy_holder.get();
  }

  model->InitParams(options.init_seed);
  const double compute_factor =
      options.flavor == UdaFlavor::kMadlib ? options.madlib_compute_factor
                                           : 1.0;

  for (uint32_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    const double lr = options.lr.LrAtEpoch(epoch);
    WallTimer timer;
    double loss_sum = 0.0;
    uint64_t seen = 0;
    // One UDA invocation: a sequential scan feeding the aggregate's
    // transition function (per-tuple SGD update on the model state).
    scan_table->ResetReadCursor();
    CORGI_RETURN_NOT_OK(scan_table->Scan([&](const Tuple& t) {
      loss_sum += model->SgdStep(t, lr);
      ++seen;
      return Status::OK();
    }));

    EpochLog log;
    log.epoch = epoch;
    log.lr = lr;
    log.tuples_seen = seen;
    log.epoch_wall_seconds = timer.ElapsedSeconds() * compute_factor;
    log.train_loss = seen > 0 ? loss_sum / static_cast<double>(seen) : 0.0;
    if (clock != nullptr) {
      clock->Advance(TimeCategory::kCompute, log.epoch_wall_seconds);
    }
    if (options.test_set != nullptr && !options.test_set->empty()) {
      const EvalResult eval =
          Evaluate(*model, *options.test_set, options.label_type);
      log.test_loss = eval.mean_loss;
      log.test_metric = eval.metric;
    }
    log.cumulative_sim_seconds =
        clock != nullptr ? clock->TotalElapsed() : 0.0;
    result.epochs.push_back(log);
  }

  const double sim_after = clock != nullptr ? clock->TotalElapsed() : 0.0;
  const double io_after =
      clock != nullptr ? clock->Elapsed(TimeCategory::kIoRead) +
                             clock->Elapsed(TimeCategory::kIoWrite) +
                             clock->Elapsed(TimeCategory::kDecompress)
                       : 0.0;
  result.sim_io_seconds = io_after - io_before;
  result.sim_compute_seconds = (sim_after - sim_before) - result.sim_io_seconds;
  result.end_to_end_single_seconds = sim_after - sim_before;
  result.end_to_end_double_seconds = result.end_to_end_single_seconds;
  if (!result.epochs.empty()) {
    result.final_metric = result.epochs.back().test_metric;
    result.final_loss = result.epochs.back().test_loss;
  }
  return result;
}

}  // namespace corgipile
