#include "db/database.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "db/block_shuffle_op.h"
#include "db/sgd_op.h"
#include "db/stream_adapter_op.h"
#include "db/tuple_shuffle_op.h"
#include "exec/shard_scan.h"
#include "shuffle/tuple_stream.h"
#include "storage/block_source.h"
#include "ml/linear_models.h"
#include "ml/mlp.h"
#include "dataset/libsvm.h"
#include "dataset/ordering.h"
#include "iosim/fault_plane.h"
#include "lifecycle/validation_gate.h"
#include "storage/table_shuffle.h"

namespace corgipile {

Database::Database(std::string data_dir, DeviceProfile device,
                   uint64_t buffer_pool_bytes)
    : data_dir_(std::move(data_dir)), device_(std::move(device)) {
  if (buffer_pool_bytes > 0) {
    buffer_pool_ = std::make_unique<BufferManager>(buffer_pool_bytes);
  }
  SessionOptions defaults;
  defaults.label = "default";
  default_session_ = CreateSession(std::move(defaults));
}

Database::~Database() = default;

std::unique_ptr<Session> Database::CreateSession(SessionOptions options) {
  MutexLock lock(session_mu_);
  const uint64_t id = next_session_id_++;
  std::unique_ptr<Session> session(new Session(this, id, std::move(options)));
  sessions_[id] = session.get();
  return session;
}

void Database::UnregisterSession(const Session* session) {
  MutexLock lock(session_mu_);
  sessions_.erase(session->id());
}

std::vector<SessionInfo> Database::DescribeSessions() const {
  MutexLock lock(session_mu_);
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    SessionInfo info;
    info.id = id;
    info.label = session->options().label;
    info.stats = session->stats();
    out.push_back(std::move(info));
  }
  return out;
}

ThreadPool* Database::scan_pool() {
  MutexLock lock(pool_mu_);
  if (scan_pool_ == nullptr) {
    scan_pool_ = std::make_unique<ThreadPool>(4);
  }
  return scan_pool_.get();
}

Status Database::InstallTable(const std::string& name, const Schema& schema,
                              bool compress, uint32_t page_size,
                              TableEntry entry) {
  // Sidecar so a later session can Attach() the table. Trailing shard
  // count is new; old 7-field sidecars read back as num_shards = 1.
  {
    std::ofstream side(data_dir_ + "/" + name + ".schema", std::ios::trunc);
    side << schema.name << ' ' << schema.dim << ' ' << (schema.sparse ? 1 : 0)
         << ' ' << static_cast<int>(schema.label_type) << ' '
         << schema.num_classes << ' ' << (compress ? 1 : 0) << ' '
         << page_size << ' ' << entry.table->num_shards() << '\n';
    if (!side.good()) {
      return Status::IoError("cannot write schema sidecar for " + name);
    }
  }
  entry.table->SetIoAccounting(device_, &clock_, &io_stats_);
  if (fault_ != nullptr) entry.table->SetFaultInjection(fault_);
  // Scan-resistant OS-cache model: only files that fit in the pool are
  // cached; larger files cannot retain a working set under repeated scans,
  // so neither access pattern benefits (§7.3.4's small-vs-large split).
  if (buffer_pool_ != nullptr &&
      entry.table->size_bytes() <= buffer_pool_->capacity_bytes()) {
    entry.table->SetBufferManager(buffer_pool_.get());
  }
  entry.label_type = schema.label_type;
  entry.num_classes = schema.num_classes;
  tables_[name] = std::move(entry);
  return Status::OK();
}

Status Database::CreateTable(const std::string& name, const Schema& schema,
                             const std::vector<Tuple>& tuples, bool compress,
                             uint32_t page_size, uint32_t num_shards) {
  {
    MutexLock lock(catalog_mu_);
    if (tables_.count(name)) {
      return Status::AlreadyExists("table '" + name + "' exists");
    }
  }
  TableOptions options;
  options.page_size = page_size;
  options.compress_tuples = compress;
  Schema named = schema;
  named.name = name;
  TableEntry entry;
  CORGI_ASSIGN_OR_RETURN(
      entry.table, ShardedTable::Create(data_dir_ + "/" + name, named,
                                        options, tuples, num_shards));
  MutexLock lock(catalog_mu_);
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' exists");
  }
  return InstallTable(name, named, compress, page_size, std::move(entry));
}

Status Database::RegisterDataset(const std::string& name,
                                 const Dataset& dataset,
                                 uint32_t num_shards) {
  CORGI_RETURN_NOT_OK(CreateTable(name, dataset.MakeSchema(), *dataset.train,
                                  dataset.spec.compress_in_db,
                                  Page::kDefaultSize, num_shards));
  MutexLock lock(catalog_mu_);
  tables_[name].test_set = dataset.test;
  return Status::OK();
}

Status Database::Attach(const std::string& name) {
  {
    MutexLock lock(catalog_mu_);
    if (tables_.count(name)) {
      return Status::AlreadyExists("table '" + name + "' already attached");
    }
  }
  std::ifstream side(data_dir_ + "/" + name + ".schema");
  if (!side) return Status::NotFound("no schema sidecar for '" + name + "'");
  Schema schema;
  int sparse = 0, label_type = 0, compress = 0;
  uint32_t page_size = 0;
  if (!(side >> schema.name >> schema.dim >> sparse >> label_type >>
        schema.num_classes >> compress >> page_size)) {
    return Status::Corruption("malformed schema sidecar for '" + name + "'");
  }
  uint32_t num_shards = 1;
  if (!(side >> num_shards)) num_shards = 1;  // pre-sharding sidecar
  schema.sparse = sparse != 0;
  schema.label_type = static_cast<LabelType>(label_type);
  TableOptions options;
  options.page_size = page_size;
  options.compress_tuples = compress != 0;
  TableEntry entry;
  CORGI_ASSIGN_OR_RETURN(
      entry.table, ShardedTable::Open(data_dir_ + "/" + name, schema, options,
                                      num_shards));
  MutexLock lock(catalog_mu_);
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already attached");
  }
  return InstallTable(name, schema, compress != 0, page_size,
                      std::move(entry));
}

Result<Database::TableEntry*> Database::FindTable(const std::string& name) {
  MutexLock lock(catalog_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  // std::map nodes are stable and tables are never dropped, so the entry
  // pointer stays valid after the lock is released.
  return &it->second;
}

Status Database::Insert(const std::string& table,
                        const std::vector<Tuple>& tuples) {
  CORGI_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(table));
  // No scan lock: the append becomes visible to future snapshots only via
  // the atomic publish inside ShardedTable::AppendTuples; scans in flight
  // keep reading their captured snapshots.
  if (serialize_scans()) {
    MutexLock lock(baseline_scan_mu_);
    return entry->table->AppendTuples(tuples);
  }
  return entry->table->AppendTuples(tuples);
}

Status Database::RollbackModel(const RollbackStatement& stmt) {
  return models_.Rollback(stmt.model_id, stmt.version);
}

void Database::SetFaultInjection(FaultInjector* injector) {
  MutexLock lock(catalog_mu_);
  fault_ = injector;
  for (auto& [name, entry] : tables_) {
    entry.table->SetFaultInjection(injector);
  }
  for (auto& [name, table] : shuffled_copies_) {
    table->SetFaultInjection(injector);
  }
}

Result<Table*> Database::GetTable(const std::string& name) {
  CORGI_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(name));
  return entry->table->shard(0);
}

Result<ShardedTable*> Database::GetShardedTable(const std::string& name) {
  CORGI_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(name));
  return entry->table.get();
}

Status Database::CollectForRead(const ShardedSnapshot& snap,
                                std::vector<Tuple>* out) {
  ShardScanOptions opts;
  if (serialize_scans()) {
    // Baseline A/B mode: the old global-scan-lock behavior, sequential
    // merge under one mutex (see set_serialize_scans).
    MutexLock lock(baseline_scan_mu_);
    snap.ResetReadCursors();
    return CollectSnapshot(snap, opts, out);
  }
  if (snap.num_shards() > 1) opts.pool = scan_pool();
  snap.ResetReadCursors();
  return CollectSnapshot(snap, opts, out);
}

Result<std::unique_ptr<Model>> Database::MakeModel(const std::string& kind,
                                                   const Schema& schema,
                                                   const Params& params) const {
  if (kind == "lr") {
    return std::unique_ptr<Model>(
        std::make_unique<LogisticRegression>(schema.dim));
  }
  if (kind == "svm") {
    return std::unique_ptr<Model>(std::make_unique<SvmModel>(schema.dim));
  }
  if (kind == "linreg") {
    return std::unique_ptr<Model>(
        std::make_unique<LinearRegressionModel>(schema.dim));
  }
  if (kind == "softmax") {
    return std::unique_ptr<Model>(
        std::make_unique<SoftmaxRegression>(schema.dim, schema.num_classes));
  }
  if (kind == "mlp") {
    CORGI_ASSIGN_OR_RETURN(int64_t hidden, params.GetInt("hidden", 32));
    return std::unique_ptr<Model>(std::make_unique<MlpModel>(
        schema.dim, static_cast<uint32_t>(hidden), schema.num_classes));
  }
  return Status::InvalidArgument("unknown model kind '" + kind + "'");
}

Result<InDbTrainResult> Database::Train(const TrainStatement& stmt) {
  CORGI_ASSIGN_OR_RETURN(TableEntry* entry_ptr, FindTable(stmt.table_name));
  TableEntry& entry = *entry_ptr;
  ShardedTable* table = entry.table.get();

  const Params& p = stmt.params;
  CORGI_ASSIGN_OR_RETURN(double learning_rate, p.GetDouble("learning_rate", 0.01));
  CORGI_ASSIGN_OR_RETURN(double decay, p.GetDouble("decay", 0.95));
  CORGI_ASSIGN_OR_RETURN(int64_t max_epochs, p.GetInt("max_epoch_num", 20));
  CORGI_ASSIGN_OR_RETURN(std::string block_size_text,
                         p.GetString("block_size", "10MB"));
  CORGI_ASSIGN_OR_RETURN(uint64_t block_size, ParseByteSize(block_size_text));
  CORGI_ASSIGN_OR_RETURN(double buffer_fraction,
                         p.GetDouble("buffer_fraction", 0.1));
  CORGI_ASSIGN_OR_RETURN(int64_t batch_size, p.GetInt("batch_size", 1));
  CORGI_ASSIGN_OR_RETURN(std::string strategy,
                         p.GetString("strategy", "corgipile"));
  CORGI_ASSIGN_OR_RETURN(bool double_buffer, p.GetBool("double_buffer", true));
  CORGI_ASSIGN_OR_RETURN(int64_t seed, p.GetInt("seed", 42));
  CORGI_ASSIGN_OR_RETURN(std::string opt_name, p.GetString("optimizer", "sgd"));
  CORGI_ASSIGN_OR_RETURN(std::string publish_id, p.GetString("publish", ""));
  CORGI_ASSIGN_OR_RETURN(bool tolerate_corruption,
                         p.GetBool("tolerate_corruption", false));
  CORGI_ASSIGN_OR_RETURN(double max_bad_fraction,
                         p.GetDouble("max_bad_fraction", 0.05));
  CORGI_ASSIGN_OR_RETURN(std::string checkpoint_path,
                         p.GetString("checkpoint", ""));
  CORGI_ASSIGN_OR_RETURN(int64_t checkpoint_every,
                         p.GetInt("checkpoint_every", 1));
  CORGI_ASSIGN_OR_RETURN(bool resume, p.GetBool("resume", false));
  // Guarded lifecycle (DESIGN.md §13).
  CORGI_ASSIGN_OR_RETURN(bool validate, p.GetBool("validate", false));
  CORGI_ASSIGN_OR_RETURN(double holdout_fraction,
                         p.GetDouble("holdout_fraction", 0.2));
  CORGI_ASSIGN_OR_RETURN(double validate_min_metric,
                         p.GetDouble("validate_min_metric", 0.0));
  CORGI_ASSIGN_OR_RETURN(double validate_max_loss,
                         p.GetDouble("validate_max_loss", 0.0));
  CORGI_ASSIGN_OR_RETURN(double validate_max_regression,
                         p.GetDouble("validate_max_regression", 0.0));
  CORGI_ASSIGN_OR_RETURN(double canary_fraction,
                         p.GetDouble("canary_fraction", 0.0));
  CORGI_ASSIGN_OR_RETURN(int64_t canary_batches,
                         p.GetInt("canary_batches", 8));
  CORGI_ASSIGN_OR_RETURN(bool auto_rollback, p.GetBool("auto_rollback", true));
  if (canary_fraction < 0.0 || canary_fraction >= 1.0) {
    return Status::InvalidArgument(
        "canary_fraction must be in [0, 1), got " +
        std::to_string(canary_fraction));
  }
  if (canary_fraction > 0.0 && publish_id.empty()) {
    return Status::InvalidArgument(
        "canary_fraction requires publish=<id> (a canary needs an incumbent "
        "to compare against)");
  }
  if (validate && (holdout_fraction <= 0.0 || holdout_fraction > 1.0)) {
    return Status::InvalidArgument(
        "holdout_fraction must be in (0, 1], got " +
        std::to_string(holdout_fraction));
  }
  if (canary_batches < 0) {
    return Status::InvalidArgument("canary_batches must be >= 0, got " +
                                   std::to_string(canary_batches));
  }
  if (opt_name != "sgd" && opt_name != "adam") {
    return Status::InvalidArgument("optimizer must be sgd|adam (got '" +
                                   opt_name + "')");
  }
  if (checkpoint_every < 1) {
    return Status::InvalidArgument("checkpoint_every must be >= 1, got " +
                                   std::to_string(checkpoint_every));
  }
  if (resume && checkpoint_path.empty()) {
    return Status::InvalidArgument("resume=true requires checkpoint='...'");
  }
  if (!checkpoint_path.empty() && strategy == "shuffle_once_inplace") {
    // The prep pass rewrites the base table in place; re-running it on a
    // restart would permute already-permuted data, so a resumed run could
    // not replay the original epoch order.
    return Status::InvalidArgument(
        "checkpointing is not supported with strategy=shuffle_once_inplace");
  }
  if (max_bad_fraction < 0.0 || max_bad_fraction > 1.0) {
    return Status::InvalidArgument(
        "max_bad_fraction must be in [0, 1], got " +
        std::to_string(max_bad_fraction));
  }
  const bool consumes_table =
      (strategy == "shuffle_once" || strategy == "shuffle_once_inplace");
  if (consumes_table && table->num_shards() != 1) {
    // Both prep passes rewrite/copy one physical heap file; a sharded
    // table has K of them. CorgiPile itself needs no such pass — that is
    // the point of the paper.
    return Status::InvalidArgument(
        "strategy=" + strategy + " requires an unsharded table (shards=1); '" +
        stmt.table_name + "' has " + std::to_string(table->num_shards()));
  }
  BlockReadTolerance tolerance;
  tolerance.quarantine_corrupt_blocks = tolerate_corruption;
  tolerance.max_bad_block_fraction = max_bad_fraction;

  CORGI_ASSIGN_OR_RETURN(std::unique_ptr<Model> model,
                         MakeModel(stmt.model_kind, table->schema(), p));

  InDbTrainResult result;
  const double sim_before = clock_.TotalElapsed();
  const double io_before = clock_.Elapsed(TimeCategory::kIoRead) +
                           clock_.Elapsed(TimeCategory::kIoWrite) +
                           clock_.Elapsed(TimeCategory::kDecompress);

  // --- strategy-specific preparation ---
  // The pipeline below always reads through a ShardedSnapshot captured
  // once, here: concurrent inserts land in later snapshots and never shift
  // this run's block geometry mid-epoch.
  ShardedSnapshot scan_snap;
  if (strategy == "shuffle_once_inplace") {
    // No 2x disk copy: the base table itself is rewritten in random order
    // (which is why it can break clustered indexes; §1). Storage is
    // rewritten in place, so this is a single-session operation: snapshots
    // captured before it dangle, which is why it is gated to K=1 and
    // documented as incompatible with concurrent readers (DESIGN.md §14).
    CORGI_ASSIGN_OR_RETURN(std::unique_ptr<Table> sole,
                           table->ReleaseSoleShard());
    CORGI_ASSIGN_OR_RETURN(
        InPlaceShuffleResult shuffled,
        ShuffleTableInPlace(std::move(sole),
                            static_cast<uint64_t>(seed) ^ 0x1A9B,
                            device_, &clock_, &io_stats_,
                            buffer_pool_.get()));
    result.prep_seconds = shuffled.sim_seconds;
    CORGI_RETURN_NOT_OK(table->AdoptSoleShard(std::move(shuffled.table)));
    scan_snap = table->Snapshot();
  } else if (strategy == "shuffle_once") {
    CORGI_ASSIGN_OR_RETURN(
        ShuffledCopyResult copy,
        BuildShuffledCopy(table->shard(0),
                          data_dir_ + "/" + stmt.table_name + ".shuffled.tbl",
                          static_cast<uint64_t>(seed) ^ 0x50FF1E, device_,
                          &clock_, &io_stats_));
    result.prep_seconds = copy.sim_seconds;
    result.extra_disk_bytes = copy.extra_disk_bytes;
    if (buffer_pool_ != nullptr &&
        copy.table->size_bytes() <= buffer_pool_->capacity_bytes()) {
      copy.table->SetBufferManager(buffer_pool_.get());
    }
    MutexLock lock(catalog_mu_);
    shuffled_copies_[stmt.table_name] = std::move(copy.table);
    scan_snap = ShardedSnapshot(
        {shuffled_copies_[stmt.table_name]->Snapshot()});
  } else {
    scan_snap = table->Snapshot();
  }

  // --- pipeline construction ---
  const bool stream_strategy =
      (strategy == "sliding_window" || strategy == "mrs");
  if (strategy != "corgipile" && strategy != "block_only" &&
      strategy != "no_shuffle" && strategy != "shuffle_once" &&
      strategy != "shuffle_once_inplace" && !stream_strategy) {
    return Status::InvalidArgument(
        "in-DB strategies: corgipile | block_only | no_shuffle | "
        "shuffle_once | shuffle_once_inplace | sliding_window | mrs (got '" +
        strategy + "')");
  }
  BlockShuffleOp::Options bopts;
  bopts.block_size_bytes = block_size;
  bopts.seed = static_cast<uint64_t>(seed);
  bopts.shuffle_blocks =
      (strategy == "corgipile" || strategy == "block_only");
  bopts.tolerance = tolerance;
  std::unique_ptr<BlockShuffleOp> block_op;
  std::unique_ptr<TupleShuffleOp> tuple_op;
  std::unique_ptr<StreamAdapterOp> adapter_op;
  PhysicalOperator* top = nullptr;
  if (stream_strategy) {
    // Sliding-Window / MRS hosted through the stream adapter.
    auto source =
        std::make_unique<SnapshotBlockSource>(scan_snap, block_size);
    ShuffleOptions sopts;
    sopts.buffer_fraction = buffer_fraction;
    sopts.seed = static_cast<uint64_t>(seed);
    sopts.tolerance = tolerance;
    CORGI_ASSIGN_OR_RETURN(ShuffleStrategy parsed,
                           ShuffleStrategyFromString(strategy));
    CORGI_ASSIGN_OR_RETURN(std::unique_ptr<TupleStream> stream,
                           MakeTupleStream(parsed, source.get(), sopts));
    adapter_op = std::make_unique<StreamAdapterOp>(std::move(stream),
                                                   std::move(source));
    top = adapter_op.get();
  } else {
    block_op = std::make_unique<BlockShuffleOp>(scan_snap, bopts);
    top = block_op.get();
    if (strategy == "corgipile") {
      TupleShuffleOp::Options topts;
      topts.buffer_tuples = std::max<uint64_t>(
          1, static_cast<uint64_t>(
                 buffer_fraction * static_cast<double>(scan_snap.num_tuples())));
      topts.double_buffer = double_buffer;
      topts.seed = static_cast<uint64_t>(seed) ^ 0x7F;
      topts.clock = &clock_;
      tuple_op = std::make_unique<TupleShuffleOp>(block_op.get(), topts);
      top = tuple_op.get();
    }
  }

  SgdOp::Options sopts;
  sopts.lr.initial = learning_rate;
  sopts.lr.decay = decay;
  sopts.max_epochs = static_cast<uint32_t>(max_epochs);
  sopts.batch_size = static_cast<uint32_t>(batch_size);
  sopts.optimizer =
      opt_name == "adam" ? OptimizerKind::kAdam : OptimizerKind::kSgd;
  sopts.test_set = entry.test_set.get();
  sopts.label_type = entry.label_type;
  sopts.clock = &clock_;
  sopts.init_seed = static_cast<uint64_t>(seed) ^ 0x11;
  sopts.checkpoint_path = checkpoint_path;
  sopts.checkpoint_every_epochs = static_cast<uint32_t>(checkpoint_every);
  sopts.resume = resume;

  CORGI_INJECT_POINT("db.train.begin");
  SgdOp sgd(model.get(), top, sopts);
  CORGI_RETURN_NOT_OK(sgd.Init());
  CORGI_ASSIGN_OR_RETURN(result.epochs, sgd.RunToCompletion());
  result.resumed_from_epoch = sgd.resumed_from_epoch();
  result.total_quarantined_blocks = sgd.total_quarantined_blocks();
  result.total_skipped_tuples = sgd.total_skipped_tuples();
  sgd.Close();

  const double sim_after = clock_.TotalElapsed();
  const double io_after = clock_.Elapsed(TimeCategory::kIoRead) +
                          clock_.Elapsed(TimeCategory::kIoWrite) +
                          clock_.Elapsed(TimeCategory::kDecompress);
  result.sim_io_seconds = io_after - io_before;
  result.sim_compute_seconds = (sim_after - sim_before) - result.sim_io_seconds;

  if (tuple_op != nullptr) {
    // CorgiPile: derive both buffering disciplines from the recorded
    // fill/consume timeline.
    const PipelineTimeline& tl = tuple_op->timeline();
    result.end_to_end_single_seconds =
        result.prep_seconds + tl.SingleBufferedDuration();
    result.end_to_end_double_seconds =
        result.prep_seconds + tl.DoubleBufferedDuration();
  } else {
    // Scan-based pipelines: loading and compute serialize.
    result.end_to_end_single_seconds = sim_after - sim_before;
    result.end_to_end_double_seconds = sim_after - sim_before;
  }

  if (!result.epochs.empty()) {
    result.final_metric = result.epochs.back().test_metric;
    result.final_loss = result.epochs.back().test_loss;
  }
  // --- guarded publish (DESIGN.md §13) ---
  // The candidate still lives on the local `model`; nothing below stores it
  // until the gate has passed, so a rejected candidate is never reachable
  // through ModelStore::GetSnapshot under any servable id.
  if (validate) {
    std::vector<Tuple> holdout;
    if (entry.test_set != nullptr && !entry.test_set->empty()) {
      holdout = *entry.test_set;
    } else {
      // No registered test split: seeded sample from the training table
      // (this run's snapshot, so a concurrent insert cannot skew the gate).
      std::vector<Tuple> pool;
      CORGI_RETURN_NOT_OK(CollectForRead(table->Snapshot(), &pool));
      holdout = SampleHoldout(pool, holdout_fraction,
                              static_cast<uint64_t>(seed) ^ 0x401D07);
    }
    std::shared_ptr<const Model> incumbent;
    if (!publish_id.empty()) {
      auto current = models_.Get(publish_id);
      if (current.ok()) incumbent = std::move(current).ValueOrDie();
    }
    ValidationThresholds thresholds;
    thresholds.min_metric = validate_min_metric;
    thresholds.max_loss = validate_max_loss;
    thresholds.max_regression = validate_max_regression;
    const ValidationReport report = EvaluateCandidate(
        *model, incumbent.get(), holdout, entry.label_type, thresholds);
    result.validated = report.passed;
    result.validation_metric = report.candidate.metric;
    result.validation_loss = report.candidate.mean_loss;
    result.validation_reason = report.reason;
    if (!report.passed) {
      result.lifecycle_state = "rejected";
      result.model_id = publish_id;
      return result;  // candidate dies with this scope; incumbent unchanged
    }
  }
  const bool lifecycle = validate || canary_fraction > 0.0;
  if (canary_fraction > 0.0 && models_.GetVersion(publish_id).ok()) {
    CanaryPolicy policy;
    policy.fraction = canary_fraction;
    policy.seed = static_cast<uint64_t>(seed) ^ 0xCA11A;
    policy.promote_after_batches = static_cast<uint32_t>(canary_batches);
    policy.auto_rollback = auto_rollback;
    CORGI_ASSIGN_OR_RETURN(
        result.canary_version,
        models_.StageCanary(publish_id, std::move(model), policy));
    result.model_id = publish_id;
    result.lifecycle_state = "canary";
  } else if (publish_id.empty()) {
    result.model_id = models_.Put(std::move(model));
    if (lifecycle) result.lifecycle_state = "published";
  } else {
    // Stable alias: the first train creates it, retrains hot-swap it while
    // in-flight predicts keep their snapshot (see ModelStore::Publish).
    // A canary_fraction on the *first* train lands here too: with no
    // incumbent there is nothing to canary against.
    CORGI_ASSIGN_OR_RETURN(result.model_version,
                           models_.Publish(publish_id, std::move(model)));
    result.model_id = publish_id;
    if (lifecycle) result.lifecycle_state = "published";
  }
  return result;
}

Result<InDbPredictResult> Database::Predict(const PredictStatement& stmt) {
  CORGI_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(stmt.table_name));
  ShardedTable* table = entry->table.get();
  // Validate before a single tuple is submitted: missing models and
  // feature-dimensionality mismatches fail the statement, not N futures.
  CORGI_ASSIGN_OR_RETURN(ModelSnapshot snap,
                         models_.GetSnapshot(stmt.model_id));
  const uint32_t model_dim = snap.model->input_dim();
  if (model_dim != 0 && table->schema().dim != model_dim) {
    return Status::InvalidArgument(
        "table '" + stmt.table_name + "' has dim " +
        std::to_string(table->schema().dim) + " but model '" +
        stmt.model_id + "' expects " + std::to_string(model_dim));
  }

  // Route the scan through the serving engine: the table is replayed as a
  // generated all-at-once arrival schedule, so the resulting ServeStats
  // are deterministic and batching/queueing are exercised on every
  // PREDICT BY — not just in bench_serve_sweep.
  ServeOptions opts = serve_options_;
  opts.flush_on_idle = false;  // scheduler timing from arrival stamps only
  opts.clock = &clock_;
  InferenceEngine engine(&models_, opts);
  CORGI_RETURN_NOT_OK(engine.Start());

  // Snapshot scan — no global lock. Concurrent TRAIN/INSERT sessions never
  // block this read and never change what it sees.
  std::vector<Tuple> tuples;
  CORGI_RETURN_NOT_OK(CollectForRead(table->Snapshot(), &tuples));

  std::vector<std::future<ServeReply>> futures;
  futures.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    ServeRequest req;
    req.tuple = t;
    req.model_id = stmt.model_id;
    req.arrival_s = 0.0;
    futures.push_back(engine.Submit(std::move(req)));
  }
  CORGI_RETURN_NOT_OK(engine.Drain());

  EvalAccumulator acc;
  for (size_t i = 0; i < futures.size(); ++i) {
    ServeReply reply = futures[i].get();
    CORGI_RETURN_NOT_OK(reply.status);
    acc.Add(tuples[i].label, reply.value, reply.loss, reply.correct);
  }
  const EvalResult eval = acc.Finalize(entry->label_type);

  InDbPredictResult out;
  out.count = eval.count;
  out.metric = eval.metric;
  out.mean_loss = eval.mean_loss;
  out.serve = engine.stats();
  return out;
}

Result<BinaryReport> Database::EvaluateModel(const EvaluateStatement& stmt) {
  CORGI_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(stmt.table_name));
  if (entry->label_type != LabelType::kBinary) {
    return Status::InvalidArgument(
        "EVALUATE BY requires a binary-labelled table");
  }
  CORGI_ASSIGN_OR_RETURN(std::shared_ptr<const Model> model,
                         models_.Get(stmt.model_id));
  std::vector<Tuple> all;
  CORGI_RETURN_NOT_OK(CollectForRead(entry->table->Snapshot(), &all));
  return EvaluateBinaryDetailed(*model, all);
}

Result<uint64_t> Database::Load(const LoadStatement& stmt) {
  CORGI_ASSIGN_OR_RETURN(LibsvmParseResult parsed, ReadLibsvmFile(stmt.path));
  if (parsed.tuples.empty()) {
    return Status::InvalidArgument("no tuples in " + stmt.path);
  }
  CORGI_ASSIGN_OR_RETURN(int64_t dim_override,
                         stmt.params.GetInt("dim", 0));
  CORGI_ASSIGN_OR_RETURN(bool compress,
                         stmt.params.GetBool("compress", false));
  CORGI_ASSIGN_OR_RETURN(std::string order,
                         stmt.params.GetString("order", "file"));
  CORGI_ASSIGN_OR_RETURN(int64_t seed, stmt.params.GetInt("seed", 42));
  CORGI_ASSIGN_OR_RETURN(int64_t shards, stmt.params.GetInt("shards", 1));
  if (shards < 1 || shards > 64) {
    return Status::InvalidArgument("shards must be in [1, 64], got " +
                                   std::to_string(shards));
  }

  Schema schema;
  schema.name = stmt.table_name;
  schema.dim = dim_override > 0 ? static_cast<uint32_t>(dim_override)
                                : parsed.inferred_dim;
  schema.sparse = !parsed.looks_dense;
  schema.label_type = LabelType::kBinary;
  schema.num_classes = 2;

  if (order == "clustered") {
    ApplyOrder(&parsed.tuples, DataOrder::kClustered,
               static_cast<uint64_t>(seed));
  } else if (order == "shuffled") {
    ApplyOrder(&parsed.tuples, DataOrder::kShuffled,
               static_cast<uint64_t>(seed));
  } else if (order != "file") {
    return Status::InvalidArgument("order must be file|clustered|shuffled");
  }
  CORGI_RETURN_NOT_OK(CreateTable(stmt.table_name, schema, parsed.tuples,
                                  compress, Page::kDefaultSize,
                                  static_cast<uint32_t>(shards)));
  return static_cast<uint64_t>(parsed.tuples.size());
}

Result<std::string> Database::Execute(const std::string& sql) {
  return default_session().Execute(sql);
}

void Database::ResetAccounting() {
  clock_.Reset();
  io_stats_.Clear();
}

}  // namespace corgipile
