// BlockShuffle operator (paper §6.2 (1)).
//
// Computes BN = page_num · page_size / block_size, shuffles the block ids,
// and streams the tuples of each block by reading its contiguous pages
// (the heapgetpage() analog is Table::ReadTuplesFromPages). With
// shuffle_blocks = false it degenerates into PostgreSQL's sequential Scan.

#pragma once

#include <vector>

#include "db/operator.h"
#include "storage/block_source.h"
#include "storage/table.h"
#include "util/rng.h"
#include "util/stream_base.h"

namespace corgipile {

class BlockShuffleOp : public WithStreamState<PhysicalOperator> {
 public:
  struct Options {
    uint64_t block_size_bytes = 10 * 1024 * 1024;
    bool shuffle_blocks = true;
    uint64_t seed = 42;
    /// Degradation policy: skip blocks whose pages fail checksum/structure
    /// verification (or permanently fail to read) instead of aborting.
    BlockReadTolerance tolerance;
  };

  BlockShuffleOp(Table* table, Options options);

  Status Init() override;
  const Tuple* Next() override;
  /// Native batched fill: copies whole runs of the decoded block into the
  /// batch arena.
  bool NextBatch(TupleBatch* out) override;
  Status ReScan() override;
  /// Epoch jump without data reads: the block order of epoch e is a pure
  /// function of (seed, e), so skipping is one re-shuffle at the target
  /// epoch, not n.
  Status SkipEpochs(uint64_t n) override;
  void Close() override;

  uint32_t num_blocks() const { return num_blocks_; }
  uint64_t pages_per_block() const { return pages_per_block_; }

 private:
  bool LoadNextBlock();

  Table* table_;
  Options options_;
  Rng rng_;
  uint64_t pages_per_block_ = 1;
  uint32_t num_blocks_ = 0;
  std::vector<uint32_t> block_order_;
  size_t next_block_ = 0;
  std::vector<Tuple> current_block_;
  size_t pos_ = 0;
  uint64_t epoch_ = 0;
  bool initialized_ = false;
};

}  // namespace corgipile
