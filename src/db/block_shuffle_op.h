// BlockShuffle operator (paper §6.2 (1)).
//
// Computes BN = page_num · page_size / block_size, shuffles the block ids,
// and streams the tuples of each block by reading its contiguous pages
// (the heapgetpage() analog is TableSnapshot::ReadTuplesFromPages). With
// shuffle_blocks = false it degenerates into PostgreSQL's sequential Scan.
//
// Sharded tables (DESIGN.md §14): the op reads through a ShardedSnapshot
// captured before the epoch loop, so concurrent inserts never shift its
// block geometry. Global block ids enumerate shard-major — all of shard
// 0's blocks, then shard 1's, … — which makes the id space (and hence the
// seeded shuffle order) at shards=1 bit-identical to the pre-sharding
// operator.

#pragma once

#include <vector>

#include "db/operator.h"
#include "storage/block_source.h"
#include "storage/sharded_table.h"
#include "storage/table.h"
#include "util/rng.h"
#include "util/stream_base.h"

namespace corgipile {

class BlockShuffleOp : public WithStreamState<PhysicalOperator> {
 public:
  struct Options {
    uint64_t block_size_bytes = 10 * 1024 * 1024;
    bool shuffle_blocks = true;
    uint64_t seed = 42;
    /// Degradation policy: skip blocks whose pages fail checksum/structure
    /// verification (or permanently fail to read) instead of aborting.
    BlockReadTolerance tolerance;
  };

  BlockShuffleOp(ShardedSnapshot snapshot, Options options);

  /// Compat form: captures a fresh snapshot of `table` as a one-shard view.
  BlockShuffleOp(Table* table, Options options);

  Status Init() override;
  const Tuple* Next() override;
  /// Native batched fill: copies whole runs of the decoded block into the
  /// batch arena.
  bool NextBatch(TupleBatch* out) override;
  Status ReScan() override;
  /// Epoch jump without data reads: the block order of epoch e is a pure
  /// function of (seed, e), so skipping is one re-shuffle at the target
  /// epoch, not n.
  Status SkipEpochs(uint64_t n) override;
  void Close() override;

  uint32_t num_blocks() const { return num_blocks_; }
  uint64_t pages_per_block() const { return pages_per_block_; }

 private:
  /// One block = `page_count` contiguous pages of one shard.
  struct BlockRef {
    uint32_t shard = 0;
    uint64_t first_page = 0;
    uint64_t page_count = 0;
  };

  bool LoadNextBlock();

  ShardedSnapshot snapshot_;
  Options options_;
  Rng rng_;
  uint64_t pages_per_block_ = 1;
  uint32_t num_blocks_ = 0;
  std::vector<BlockRef> blocks_;
  std::vector<uint32_t> block_order_;
  size_t next_block_ = 0;
  std::vector<Tuple> current_block_;
  size_t pos_ = 0;
  uint64_t epoch_ = 0;
  bool initialized_ = false;
};

}  // namespace corgipile
