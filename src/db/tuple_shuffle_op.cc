#include "db/tuple_shuffle_op.h"

#include <algorithm>
#include <numeric>

#include "iosim/fault_plane.h"
#include "util/timer.h"

namespace corgipile {

TupleShuffleOp::TupleShuffleOp(PhysicalOperator* child, Options options)
    : child_(child), options_(options), rng_(options.seed),
      epoch_rng_(rng_.Fork(0)) {
  if (options_.buffer_tuples == 0) options_.buffer_tuples = 1;
}

TupleShuffleOp::~TupleShuffleOp() { Close(); }

double TupleShuffleOp::IoElapsed() const {
  if (options_.clock == nullptr) return 0.0;
  return options_.clock->Elapsed(TimeCategory::kIoRead) +
         options_.clock->Elapsed(TimeCategory::kDecompress);
}

Status TupleShuffleOp::Init() {
  if (child_ == nullptr) return Status::InvalidArgument("null child");
  CORGI_RETURN_NOT_OK(child_->Init());
  epoch_ = 0;
  epoch_rng_ = rng_.Fork(epoch_);
  if (options_.double_buffer) StartProducer();
  return Status::OK();
}

std::optional<TupleShuffleOp::Batch> TupleShuffleOp::FillBatch() {
  // Chaos point modelling a staging-buffer allocation failure: a kFail
  // rule surfaces through status() exactly like a child error would.
  if (FaultPlane::ProcessArmed()) {
    Status injected =
        FaultPlane::Process()->OnPoint("db.tuple_shuffle.fill");
    if (!injected.ok()) {
      MutexLock lock(status_mu_);
      if (status_.ok()) status_ = std::move(injected);
      return std::nullopt;
    }
  }
  Batch batch;
  batch.tuples.set_target_tuples(options_.buffer_tuples);
  const double io_before = IoElapsed();
  WallTimer timer;
  const bool got = child_->NextBatch(&batch.tuples);
  if (batch.tuples.size() < options_.buffer_tuples) {
    // A short (or empty) fill means the child ended its scan; surface its
    // error, if any, exactly where the per-tuple loop did.
    Status st = child_->status();
    if (!st.ok()) {
      MutexLock lock(status_mu_);
      status_ = st;
    }
  }
  if (!got) return std::nullopt;
  if (options_.shuffle_tuples) {
    batch.perm.resize(batch.tuples.size());
    std::iota(batch.perm.begin(), batch.perm.end(), 0u);
    // Fisher–Yates over indices: consumes the same RNG draws as shuffling
    // the tuples themselves, so emission order matches the legacy buffer.
    epoch_rng_.Shuffle(batch.perm);
  }
  batch.fill_seconds = (IoElapsed() - io_before) + timer.ElapsedSeconds();
  uint64_t prev = peak_buffer_.load();
  while (prev < batch.tuples.size() &&
         !peak_buffer_.compare_exchange_weak(prev, batch.tuples.size())) {
  }
  return batch;
}

void TupleShuffleOp::StartProducer() {
  if (producer_.joinable()) return;  // already running
  channel_ = std::make_unique<Channel<Batch>>(1);
  channel_->set_chaos_point("channel.tuple_shuffle.push");
  producer_ = std::thread([this] { ProducerLoop(); });
}

void TupleShuffleOp::StopProducer() {
  if (!producer_.joinable()) return;
  // Wakes a producer blocked on a full channel (and poisons any further
  // pushes); joining hands child_/rng_ ownership back to this thread.
  channel_->Cancel(Status::Cancelled("TupleShuffleOp consumer closed"));
  producer_.join();
  producer_ = std::thread();
  channel_.reset();
}

void TupleShuffleOp::ProducerLoop() {
  for (;;) {
    // Wait for a free slot *before* filling, so at most one finished batch
    // sits in the channel while the consumer drains another — the §6.3
    // two-buffer memory budget.
    if (!channel_->WaitWritable().ok()) return;  // consumer cancelled
    std::optional<Batch> batch = FillBatch();
    if (!batch.has_value()) {
      // End of scan, clean or not: deliver the child's error (if any) to
      // the consumer once the buffered batches drain.
      channel_->Close(status());
      return;
    }
    Status pushed = channel_->Push(std::move(*batch));
    if (!pushed.ok()) {
      // Cancelled by the consumer (Close on an already-cancelled channel is
      // a no-op) — or an injected channel-send failure, which must reach
      // the consumer as the stream's error instead of hanging it.
      channel_->Close(std::move(pushed));
      return;
    }
  }
}

bool TupleShuffleOp::AdvanceBatch() {
  // Record the finished batch's timings.
  if (have_batch_) {
    timeline_.AddBatch(current_.fill_seconds, consume_acc_);
    consume_acc_ = 0.0;
    have_batch_ = false;
  }
  if (options_.double_buffer) {
    Batch next;
    auto popped = channel_->Pop(&next);
    if (!popped.ok()) {
      // Producer failed (or the channel was cancelled): surface through
      // status() like the single-buffered path does.
      MutexLock lock(status_mu_);
      if (status_.ok()) status_ = popped.status();
      return false;
    }
    if (!*popped) return false;  // clean end of stream
    current_ = std::move(next);
  } else {
    std::optional<Batch> batch = FillBatch();
    if (!batch.has_value()) return false;
    current_ = std::move(*batch);
  }
  pos_ = 0;
  have_batch_ = true;
  return true;
}

const Tuple* TupleShuffleOp::Next() {
  if (consume_timer_.has_value() && have_batch_) {
    consume_acc_ += consume_timer_->ElapsedSeconds();
  }
  if (!have_batch_ || pos_ >= current_.tuples.size()) {
    if (!AdvanceBatch()) {
      consume_timer_.reset();
      return nullptr;
    }
  }
  const size_t row = current_.perm.empty() ? pos_ : current_.perm[pos_];
  current_.tuples.MaterializeTo(row, &scratch_);
  ++pos_;
  consume_timer_.emplace();
  return &scratch_;
}

bool TupleShuffleOp::NextBatch(TupleBatch* out) {
  out->Clear();
  if (consume_timer_.has_value() && have_batch_) {
    consume_acc_ += consume_timer_->ElapsedSeconds();
  }
  while (!out->full()) {
    if (!have_batch_ || pos_ >= current_.tuples.size()) {
      if (!AdvanceBatch()) break;
    }
    const size_t take = std::min(current_.tuples.size() - pos_,
                                 out->target_tuples() - out->size());
    for (size_t i = 0; i < take; ++i) {
      const size_t row =
          current_.perm.empty() ? pos_ + i : current_.perm[pos_ + i];
      out->AppendFrom(current_.tuples, row);
    }
    pos_ += take;
  }
  if (out->empty()) {
    consume_timer_.reset();
    return false;
  }
  consume_timer_.emplace();
  return true;
}

Status TupleShuffleOp::ReScan() {
  StopProducer();
  // Flush the in-flight batch's timing record.
  if (have_batch_) {
    timeline_.AddBatch(current_.fill_seconds, consume_acc_);
    have_batch_ = false;
  }
  consume_acc_ = 0.0;
  consume_timer_.reset();
  current_ = Batch{};
  pos_ = 0;
  CORGI_RETURN_NOT_OK(child_->ReScan());
  ++epoch_;
  epoch_rng_ = rng_.Fork(epoch_);
  {
    MutexLock lock(status_mu_);
    status_ = Status::OK();
  }
  if (options_.double_buffer) StartProducer();
  return Status::OK();
}

Status TupleShuffleOp::SkipEpochs(uint64_t n) {
  if (n == 0) return Status::OK();
  // Joining the producer discards any epoch-state batches it pre-filled
  // and hands child_/epoch_rng_ ownership back to this thread.
  StopProducer();
  have_batch_ = false;
  consume_acc_ = 0.0;
  consume_timer_.reset();
  current_ = Batch{};
  pos_ = 0;
  CORGI_RETURN_NOT_OK(child_->SkipEpochs(n));
  epoch_ += n;
  epoch_rng_ = rng_.Fork(epoch_);
  {
    MutexLock lock(status_mu_);
    status_ = Status::OK();
  }
  if (options_.double_buffer) StartProducer();
  return Status::OK();
}

void TupleShuffleOp::Close() {
  StopProducer();
  current_ = Batch{};
  have_batch_ = false;
  if (child_ != nullptr) child_->Close();
}

Status TupleShuffleOp::status() const {
  MutexLock lock(status_mu_);
  return status_;
}

}  // namespace corgipile
