#include "db/tuple_shuffle_op.h"

#include <algorithm>

#include "util/timer.h"

namespace corgipile {

TupleShuffleOp::TupleShuffleOp(PhysicalOperator* child, Options options)
    : child_(child), options_(options), rng_(options.seed) {
  if (options_.buffer_tuples == 0) options_.buffer_tuples = 1;
}

TupleShuffleOp::~TupleShuffleOp() { Close(); }

double TupleShuffleOp::IoElapsed() const {
  if (options_.clock == nullptr) return 0.0;
  return options_.clock->Elapsed(TimeCategory::kIoRead) +
         options_.clock->Elapsed(TimeCategory::kDecompress);
}

Status TupleShuffleOp::Init() {
  if (child_ == nullptr) return Status::InvalidArgument("null child");
  CORGI_RETURN_NOT_OK(child_->Init());
  if (options_.double_buffer) StartProducer();
  return Status::OK();
}

std::optional<TupleShuffleOp::Batch> TupleShuffleOp::FillBatch() {
  Batch batch;
  batch.tuples.reserve(options_.buffer_tuples);
  const double io_before = IoElapsed();
  WallTimer timer;
  while (batch.tuples.size() < options_.buffer_tuples) {
    const Tuple* t = child_->Next();
    if (t == nullptr) {
      Status st = child_->status();
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(status_mu_);
        status_ = st;
      }
      break;
    }
    batch.tuples.push_back(*t);
  }
  if (batch.tuples.empty()) return std::nullopt;
  if (options_.shuffle_tuples) {
    std::lock_guard<std::mutex> lock(mu_);  // rng_ is also reseeded in ReScan
    rng_.Shuffle(batch.tuples);
  }
  batch.fill_seconds = (IoElapsed() - io_before) + timer.ElapsedSeconds();
  peak_buffer_ = std::max<uint64_t>(peak_buffer_, batch.tuples.size());
  return batch;
}

void TupleShuffleOp::StartProducer() {
  std::lock_guard<std::mutex> lock(mu_);
  if (producer_running_) return;
  stop_producer_ = false;
  producer_done_ = false;
  producer_running_ = true;
  producer_ = std::thread([this] { ProducerLoop(); });
}

void TupleShuffleOp::StopProducer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!producer_running_) return;
    stop_producer_ = true;
  }
  cv_.notify_all();
  producer_.join();
  std::lock_guard<std::mutex> lock(mu_);
  producer_running_ = false;
  ready_.clear();
}

void TupleShuffleOp::ProducerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_producer_ || ready_.empty(); });
      if (stop_producer_) return;
    }
    std::optional<Batch> batch = FillBatch();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!batch.has_value()) {
        producer_done_ = true;
      } else {
        ready_.push_back(std::move(*batch));
      }
    }
    cv_.notify_all();
    if (!batch.has_value()) return;
  }
}

bool TupleShuffleOp::AdvanceBatch() {
  // Record the finished batch's timings.
  if (have_batch_) {
    timeline_.AddBatch(current_.fill_seconds, consume_acc_);
    consume_acc_ = 0.0;
    have_batch_ = false;
  }
  if (options_.double_buffer) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !ready_.empty() || producer_done_; });
    if (ready_.empty()) return false;
    current_ = std::move(ready_.front());
    ready_.pop_front();
    lock.unlock();
    cv_.notify_all();  // wake producer to fill the next buffer
  } else {
    std::optional<Batch> batch = FillBatch();
    if (!batch.has_value()) return false;
    current_ = std::move(*batch);
  }
  pos_ = 0;
  have_batch_ = true;
  return true;
}

const Tuple* TupleShuffleOp::Next() {
  const auto now = std::chrono::steady_clock::now();
  if (last_emit_.has_value() && have_batch_) {
    consume_acc_ += std::chrono::duration<double>(now - *last_emit_).count();
  }
  if (!have_batch_ || pos_ >= current_.tuples.size()) {
    if (!AdvanceBatch()) {
      last_emit_.reset();
      return nullptr;
    }
  }
  const Tuple* t = &current_.tuples[pos_++];
  last_emit_ = std::chrono::steady_clock::now();
  return t;
}

Status TupleShuffleOp::ReScan() {
  if (options_.double_buffer) StopProducer();
  // Flush the in-flight batch's timing record.
  if (have_batch_) {
    timeline_.AddBatch(current_.fill_seconds, consume_acc_);
    have_batch_ = false;
  }
  consume_acc_ = 0.0;
  last_emit_.reset();
  current_ = Batch{};
  pos_ = 0;
  CORGI_RETURN_NOT_OK(child_->ReScan());
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    status_ = Status::OK();
  }
  if (options_.double_buffer) StartProducer();
  return Status::OK();
}

void TupleShuffleOp::Close() {
  if (options_.double_buffer) StopProducer();
  current_ = Batch{};
  have_batch_ = false;
  if (child_ != nullptr) child_->Close();
}

Status TupleShuffleOp::status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return status_;
}

}  // namespace corgipile
