#include "db/block_shuffle_op.h"

#include <algorithm>
#include <numeric>

namespace corgipile {

BlockShuffleOp::BlockShuffleOp(Table* table, Options options)
    : table_(table), options_(options), rng_(options.seed) {}

Status BlockShuffleOp::Init() {
  if (table_ == nullptr) return Status::InvalidArgument("null table");
  pages_per_block_ = std::max<uint64_t>(
      1, options_.block_size_bytes / table_->options().page_size);
  num_blocks_ = static_cast<uint32_t>(
      (table_->num_pages() + pages_per_block_ - 1) / pages_per_block_);
  initialized_ = true;
  epoch_ = 0;
  return ReScan();
}

Status BlockShuffleOp::ReScan() {
  if (!initialized_) return Status::Internal("ReScan before Init");
  status_ = Status::OK();
  block_order_.resize(num_blocks_);
  std::iota(block_order_.begin(), block_order_.end(), 0u);
  if (options_.shuffle_blocks) {
    Rng epoch_rng = rng_.Fork(epoch_);
    epoch_rng.Shuffle(block_order_);
  }
  ++epoch_;
  next_block_ = 0;
  current_block_.clear();
  pos_ = 0;
  epoch_quarantined_ = 0;
  table_->ResetReadCursor();
  return Status::OK();
}

bool BlockShuffleOp::LoadNextBlock() {
  while (next_block_ < block_order_.size()) {
    const uint32_t b = block_order_[next_block_++];
    const uint64_t first = static_cast<uint64_t>(b) * pages_per_block_;
    const uint64_t count =
        std::min<uint64_t>(pages_per_block_, table_->num_pages() - first);
    current_block_.clear();
    pos_ = 0;
    Status st = table_->ReadTuplesFromPages(first, count, &current_block_);
    if (!st.ok()) {
      const bool skippable = st.code() == StatusCode::kCorruption ||
                             st.code() == StatusCode::kIoError;
      if (!options_.tolerance.quarantine_corrupt_blocks || !skippable) {
        status_ = st;
        return false;
      }
      // Quarantine: drop whatever the partial read produced and move on.
      current_block_.clear();
      ++quarantined_blocks_;
      ++epoch_quarantined_;
      for (uint64_t p = first; p < first + count; ++p) {
        skipped_tuples_ += table_->TuplesInPage(p);
      }
      const double bad_fraction =
          static_cast<double>(epoch_quarantined_) /
          static_cast<double>(std::max<uint32_t>(1, num_blocks_));
      if (bad_fraction > options_.tolerance.max_bad_block_fraction) {
        status_ = Status::Corruption(
            "quarantined " + std::to_string(epoch_quarantined_) + "/" +
            std::to_string(num_blocks_) +
            " blocks this epoch, over the tolerated fraction " +
            std::to_string(options_.tolerance.max_bad_block_fraction) +
            " (last error: " + st.message() + ")");
        return false;
      }
      continue;
    }
    if (!current_block_.empty()) return true;
  }
  return false;
}

const Tuple* BlockShuffleOp::Next() {
  if (pos_ >= current_block_.size()) {
    if (!LoadNextBlock()) return nullptr;
  }
  return &current_block_[pos_++];
}

void BlockShuffleOp::Close() {
  current_block_.clear();
  block_order_.clear();
}

}  // namespace corgipile
