#include "db/block_shuffle_op.h"

#include <algorithm>
#include <numeric>

namespace corgipile {

BlockShuffleOp::BlockShuffleOp(ShardedSnapshot snapshot, Options options)
    : WithStreamState("BlockShuffle"), snapshot_(std::move(snapshot)),
      options_(options), rng_(options.seed) {}

BlockShuffleOp::BlockShuffleOp(Table* table, Options options)
    : BlockShuffleOp(table == nullptr
                         ? ShardedSnapshot()
                         : ShardedSnapshot({table->Snapshot()}),
                     options) {}

Status BlockShuffleOp::Init() {
  if (!snapshot_.valid()) return Status::InvalidArgument("empty snapshot");
  pages_per_block_ = std::max<uint64_t>(
      1, options_.block_size_bytes / snapshot_.options().page_size);
  // Shard-major block enumeration: at shards=1 the ids and geometry are
  // exactly the pre-sharding ones, so a given seed replays the same order.
  blocks_.clear();
  for (size_t s = 0; s < snapshot_.num_shards(); ++s) {
    const uint64_t pages = snapshot_.shard(s).num_pages();
    for (uint64_t first = 0; first < pages; first += pages_per_block_) {
      BlockRef ref;
      ref.shard = static_cast<uint32_t>(s);
      ref.first_page = first;
      ref.page_count = std::min<uint64_t>(pages_per_block_, pages - first);
      blocks_.push_back(ref);
    }
  }
  num_blocks_ = static_cast<uint32_t>(blocks_.size());
  initialized_ = true;
  epoch_ = 0;
  return ReScan();
}

Status BlockShuffleOp::ReScan() {
  if (!initialized_) return Status::Internal("ReScan before Init");
  clear_status();
  block_order_.resize(num_blocks_);
  std::iota(block_order_.begin(), block_order_.end(), 0u);
  if (options_.shuffle_blocks) {
    Rng epoch_rng = rng_.Fork(epoch_);
    epoch_rng.Shuffle(block_order_);
  }
  ++epoch_;
  next_block_ = 0;
  current_block_.clear();
  pos_ = 0;
  quarantine().BeginEpoch();
  snapshot_.ResetReadCursors();
  return Status::OK();
}

Status BlockShuffleOp::SkipEpochs(uint64_t n) {
  if (n == 0) return Status::OK();
  if (!initialized_) return Status::Internal("SkipEpochs before Init");
  // After Init/ReScan the op serves epoch_ - 1; land on (epoch_ - 1) + n.
  epoch_ += n - 1;
  return ReScan();
}

bool BlockShuffleOp::LoadNextBlock() {
  while (next_block_ < block_order_.size()) {
    const BlockRef& ref = blocks_[block_order_[next_block_++]];
    const TableSnapshot& shard = snapshot_.shard(ref.shard);
    current_block_.clear();
    pos_ = 0;
    Status st = shard.ReadTuplesFromPages(ref.first_page, ref.page_count,
                                          &current_block_);
    if (!st.ok()) {
      // Quarantine: drop whatever the partial read produced and move on.
      current_block_.clear();
      uint64_t lost = 0;
      for (uint64_t p = ref.first_page; p < ref.first_page + ref.page_count;
           ++p) {
        lost += shard.TuplesInPage(p);
      }
      Status admitted =
          quarantine().Admit(st, options_.tolerance, lost, num_blocks_);
      if (!admitted.ok()) {
        set_status(std::move(admitted));
        return false;
      }
      continue;
    }
    if (!current_block_.empty()) return true;
  }
  return false;
}

const Tuple* BlockShuffleOp::Next() {
  if (pos_ >= current_block_.size()) {
    if (!LoadNextBlock()) return nullptr;
  }
  return &current_block_[pos_++];
}

bool BlockShuffleOp::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full()) {
    if (pos_ >= current_block_.size()) {
      if (!LoadNextBlock()) break;
    }
    const size_t take = std::min(current_block_.size() - pos_,
                                 out->target_tuples() - out->size());
    for (size_t i = 0; i < take; ++i) out->Append(current_block_[pos_ + i]);
    pos_ += take;
  }
  return !out->empty();
}

void BlockShuffleOp::Close() {
  current_block_.clear();
  block_order_.clear();
}

}  // namespace corgipile
