// SGD operator (paper §6.2 (3)).
//
// Sits on top of the TupleShuffle/BlockShuffle pipeline. Each call to
// NextEpoch() pulls every tuple of the scan, performs the SGD update(s),
// then drives PostgreSQL's re-scan mechanism (child->ReScan()) so the next
// epoch sees freshly shuffled data. Per-epoch metrics are produced the way
// the paper's implementation reports loss/accuracy/time after each epoch.

#pragma once

#include <memory>

#include "db/operator.h"
#include "iosim/sim_clock.h"
#include "ml/metrics.h"
#include "ml/model.h"
#include "ml/optimizer.h"
#include "ml/trainer.h"
#include "storage/schema.h"
#include "util/status.h"

namespace corgipile {

class SgdOp {
 public:
  struct Options {
    LrSchedule lr;
    uint32_t max_epochs = 20;
    uint32_t batch_size = 1;  ///< 1 = per-tuple SGD
    OptimizerKind optimizer = OptimizerKind::kSgd;
    const std::vector<Tuple>* test_set = nullptr;
    LabelType label_type = LabelType::kBinary;
    SimClock* clock = nullptr;  ///< compute time charged here
    uint64_t init_seed = 7;
    /// Transport batch size: tuples pulled per child->NextBatch call.
    /// Purely a transport knob (seeded results are bit-identical at every
    /// value); 0 = legacy per-tuple Next() pull, the golden reference.
    uint32_t exec_batch_tuples = TupleBatch::kDefaultTargetTuples;

    /// Crash safety (DESIGN.md §12): with a non-empty checkpoint_path the
    /// operator durably checkpoints the model after every
    /// checkpoint_every_epochs-th epoch; with resume=true Init() loads the
    /// checkpoint (kNotFound = start fresh) and fast-forwards the child
    /// pipeline via SkipEpochs, so the resumed run replays the remaining
    /// epochs bit-identically to an uninterrupted one.
    std::string checkpoint_path;
    uint32_t checkpoint_every_epochs = 1;
    bool resume = false;
  };

  /// `model` and `child` are borrowed; both must outlive the operator.
  SgdOp(Model* model, PhysicalOperator* child, Options options);

  /// ExecInitSGD: initializes the model and the child pipeline.
  Status Init();

  /// Runs one epoch; fills *log. Returns false when max_epochs reached.
  Result<bool> NextEpoch(EpochLog* log);

  /// Runs all remaining epochs, collecting the logs.
  Result<std::vector<EpochLog>> RunToCompletion();

  void Close();

  Model* model() { return model_; }
  uint32_t epochs_run() const { return epoch_; }
  /// Epoch the run resumed from (0 when fresh).
  uint32_t resumed_from_epoch() const { return start_epoch_; }
  /// Progress counters across the whole logical run, including the epochs
  /// a resumed checkpoint already covered.
  uint64_t total_tuples() const { return total_tuples_; }
  uint64_t total_quarantined_blocks() const {
    return base_quarantined_ + child_->QuarantinedBlocks();
  }
  uint64_t total_skipped_tuples() const {
    return base_skipped_ + child_->SkippedTuples();
  }

 private:
  Status SaveProgress();

  Model* model_;
  PhysicalOperator* child_;
  Options options_;
  TupleBatch exec_batch_;  // transport buffer, arena reused across epochs
  uint32_t epoch_ = 0;
  uint32_t start_epoch_ = 0;
  uint64_t total_tuples_ = 0;
  double best_test_metric_ = 0.0;
  uint64_t base_quarantined_ = 0;
  uint64_t base_skipped_ = 0;
  std::unique_ptr<Optimizer> opt_;
  std::vector<double> grad_;
  bool batched_ = false;
  bool initialized_ = false;
};

}  // namespace corgipile
