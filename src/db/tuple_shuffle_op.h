// TupleShuffle operator (paper §6.2 (2), §6.3).
//
// Pulls tuples from its child into an in-memory staging TupleBatch; when
// the buffer is full (or the child is exhausted) an index permutation over
// it is shuffled and the buffered tuples are served in permuted order —
// PostgreSQL's Sort-operator pattern. Shuffling indices instead of tuples
// consumes the same Fisher–Yates RNG draws as shuffling the tuple vector
// did (the shuffle is content-independent), so emission order is unchanged
// from the per-tuple implementation.
//
// Two execution modes:
//  * single buffering: fills happen inline, serializing I/O and SGD;
//  * double buffering (§6.3): a producer thread fills and shuffles the next
//    buffer while the consumer drains the current one — data loading and
//    SGD computation overlap. The two threads are joined by a bounded
//    Status-carrying Channel<Batch>: a producer-side error (e.g. a corrupt
//    block past max_bad_fraction) is delivered to the consumer after the
//    already-produced batches drain — exactly the order the single-buffered
//    execution would surface it — and an early consumer Close() cancels the
//    channel, which unblocks and stops the producer without deadlock.
//
// Thread-safety / ownership: the operator is single-consumer; Next/ReScan/
// Close must be called from one thread. The producer thread is the only
// FillBatch caller while it runs (it owns child_ and rng_); ReScan/Close/
// the destructor cancel + join it before touching any of that state, which
// is also the synchronization point handing child_/rng_ back to the
// consumer thread. status_ is the only state shared while both threads are
// live (guarded by status_mu_); peak_buffer_ is atomic.
//
// The operator also records a PipelineTimeline: per buffer, the fill cost
// (simulated I/O + decompression read through the child, plus real
// fill/shuffle CPU) and the consume cost (real time the consumer spent
// between Next() calls). Benches derive single- and double-buffered epoch
// durations from the same run. The timeline is a *benchmarking* artifact —
// it never feeds back into shuffling, RNG draws, or training results, so
// seeded reruns stay bit-identical. All real-time measurement goes through
// WallTimer (util/timer.h, the one allowlisted wall-clock site of the
// determinism linter); no raw clock primitives appear in db code.

#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "db/operator.h"
#include "iosim/sim_clock.h"
#include "util/channel.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/timer.h"

namespace corgipile {

class TupleShuffleOp : public PhysicalOperator {
 public:
  struct Options {
    uint64_t buffer_tuples = 1;
    bool shuffle_tuples = true;
    bool double_buffer = false;
    uint64_t seed = 42;
    /// Clock whose kIoRead/kDecompress categories the child charges; used
    /// to attribute simulated fill time. May be null.
    SimClock* clock = nullptr;
  };

  TupleShuffleOp(PhysicalOperator* child, Options options);
  ~TupleShuffleOp() override;

  const char* name() const override { return "TupleShuffle"; }
  Status Init() override;
  const Tuple* Next() override;
  /// Native batched fill: copies permuted runs of the staging buffer into
  /// the output arena; one channel op per staging buffer, not per tuple.
  bool NextBatch(TupleBatch* out) override;
  Status ReScan() override;
  /// Epoch jump without data reads: stops the producer, jumps the epoch
  /// counter (the buffer-shuffle RNG of epoch e is a pure function of
  /// (seed, e)), and skips the child. Resumed runs replay exactly.
  Status SkipEpochs(uint64_t n) override;
  /// Stops and joins the producer thread (if any) before releasing the
  /// child, so abandoning the operator mid-epoch neither leaks the thread
  /// nor deadlocks. Idempotent; also run by the destructor.
  void Close() override;
  Status status() const override;

  /// Fill/consume timings accumulated since the last ResetTimeline().
  const PipelineTimeline& timeline() const { return timeline_; }
  void ResetTimeline() { timeline_ = PipelineTimeline(); }

  uint64_t peak_buffer_tuples() const { return peak_buffer_.load(); }

  /// Forwarded from the child. With double buffering these are only stable
  /// once the producer has drained (end of epoch / after Next() returned
  /// nullptr), which is when SgdOp reads them.
  uint64_t QuarantinedBlocks() const override {
    return child_->QuarantinedBlocks();
  }
  uint64_t SkippedTuples() const override { return child_->SkippedTuples(); }

 private:
  struct Batch {
    TupleBatch tuples;
    /// Emission order: serve tuples[perm[i]]. Empty when shuffling is off
    /// (identity order).
    std::vector<uint32_t> perm;
    double fill_seconds = 0.0;
  };

  double IoElapsed() const;
  /// Pulls from the child until `buffer_tuples` tuples or end; returns an
  /// empty optional at end-of-scan. Must only be called by the thread that
  /// currently owns child_/rng_ (see the ownership note above).
  std::optional<Batch> FillBatch();

  void StartProducer();
  /// Cancels the channel and joins the producer. Safe to call when no
  /// producer is running.
  void StopProducer();
  void ProducerLoop();

  /// Finishes the current batch bookkeeping and fetches the next one.
  bool AdvanceBatch();

  PhysicalOperator* child_;
  Options options_;
  /// Base stream, never drawn from directly: each epoch's buffer shuffles
  /// use epoch_rng_ = rng_.Fork(epoch_), a pure function of (seed, epoch),
  /// so a checkpoint-resumed epoch replays the exact same permutations.
  Rng rng_;
  Rng epoch_rng_;
  uint64_t epoch_ = 0;

  // Current batch being served (consumer thread only).
  Batch current_;
  size_t pos_ = 0;  // emission index into current_ (via perm when shuffled)
  Tuple scratch_;   // materialization target for the per-tuple Next()
  bool have_batch_ = false;
  double consume_acc_ = 0.0;
  /// Restarted at every emission; its elapsed time on the next call is the
  /// consumer's real compute between pulls (the timeline's consume cost).
  /// Empty between epochs / before the first emission.
  std::optional<WallTimer> consume_timer_;

  // Double-buffer machinery: one buffer ahead via a capacity-1 channel.
  std::thread producer_;
  std::unique_ptr<Channel<Batch>> channel_;

  PipelineTimeline timeline_;
  std::atomic<uint64_t> peak_buffer_{0};
  mutable Mutex status_mu_;
  Status status_ CORGI_GUARDED_BY(status_mu_);
};

}  // namespace corgipile
