// In-memory model store (paper §6.1): learned models live as in-kernel
// objects with an ID; inference queries reference them by that ID.
//
// The store is a versioned, thread-safe registry designed for the serving
// path (src/serve/): Get() hands out copy-on-write
// `shared_ptr<const Model>` snapshots instead of borrowed raw pointers, so
// a concurrent Remove() or Publish() (hot-swap) can never invalidate a
// model an in-flight predict is using — the old version stays alive until
// its last holder drops it, while new lookups immediately see the new
// version. All mutating and reading members take the registry mutex; the
// Model objects themselves are immutable once stored (const access only).
//
// Guarded model lifecycle (DESIGN.md §13). Publish() is no longer the only
// way a version changes hands:
//
//   candidate --StageCanary--> canary --PromoteCanary--> promoted (current)
//        \                        \--AbortCanary--> dropped
//         \--Publish--> promoted (current)
//   current --Rollback(version)--> a retained prior version is current again
//
// Every prior current version is pushed into a bounded per-id history
// (`history_limit` versions; oldest evicted first), which is what Rollback
// serves from. Eviction only drops the registry's reference: snapshots
// pinned by in-flight Get() holders stay alive until released — the bound
// caps registry memory, never correctness.
//
// Crash atomicity: the lifecycle mutations declare FaultPlane crash points
// (lifecycle.publish / lifecycle.rollback / lifecycle.canary_promote /
// lifecycle.canary_abort) placed between *staging* (all allocation and
// lookup work, done on locals) and *commit* (a short sequence of noexcept
// moves under the registry mutex). A scripted kill at any of these points
// unwinds with the entry either fully in the old state or fully in the new
// one — never torn, never a half-published model (tests/chaos_test.cc).

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ml/model.h"
#include "util/mutex.h"
#include "util/status.h"

namespace corgipile {

/// One Get() result: an immutable model snapshot plus the version it
/// carries. Versions start at 1 and bump on every Publish()/StageCanary().
struct ModelSnapshot {
  std::shared_ptr<const Model> model;
  uint64_t version = 0;
};

/// Routing/guard policy for a staged canary version, carried with the
/// candidate so every InferenceEngine serving the id applies the same
/// deterministic rules (src/serve/inference_engine.h).
struct CanaryPolicy {
  /// Seeded fraction of batches routed to the candidate (0, 1).
  double fraction = 0.1;
  /// Seed for the engine's routing draws; derive from the TRAIN seed so
  /// the canary split replays bit-for-bit.
  uint64_t seed = 42;
  /// Candidate batch loss may exceed the incumbent's paired loss on the
  /// same batch by at most this relative margin before the batch counts as
  /// a breach.
  double loss_tolerance = 0.1;
  /// Consecutive clean canary batches before the engine promotes the
  /// candidate. 0 = never auto-promote (an external controller decides).
  uint32_t promote_after_batches = 8;
  /// Breach handling: true aborts the canary (incumbent resumes 100% of
  /// traffic) when the breach breaker trips; false only counts breaches.
  bool auto_rollback = true;
  /// Breaker translating per-batch breach outcomes into the trip decision
  /// (reuses the PR 6 circuit-breaker machinery; engine-side).
  uint32_t breaker_window = 4;
  uint32_t breaker_min_samples = 2;
  double breaker_error_threshold = 0.5;
};

/// A staged-but-not-promoted candidate, visible only to serving paths that
/// explicitly ask for it (GetCanary); GetSnapshot never returns it.
struct CanarySnapshot {
  std::shared_ptr<const Model> model;
  uint64_t version = 0;
  CanaryPolicy policy;
};

/// Audit trail of one id's lifecycle transitions, in commit order. The
/// sequence is deterministic for a deterministic workload, which the
/// lifecycle tests assert across seeds.
enum class LifecycleAction : int {
  kPublished = 0,  ///< Publish() made `version` current
  kStaged,         ///< StageCanary() reserved `version` for canary traffic
  kPromoted,       ///< PromoteCanary() made the staged `version` current
  kAborted,        ///< AbortCanary() dropped the staged `version`
  kRolledBack,     ///< Rollback() made retained `version` current again
  kEvicted,        ///< history bound dropped `version` from the registry
};

const char* LifecycleActionToString(LifecycleAction a);

struct LifecycleEvent {
  LifecycleAction action = LifecycleAction::kPublished;
  uint64_t version = 0;

  bool operator==(const LifecycleEvent&) const = default;
};

class ModelStore {
 public:
  /// Prior (non-current) versions retained per id for Rollback. In-flight
  /// snapshot holders are unaffected by the bound (see header comment).
  static constexpr size_t kDefaultHistoryLimit = 3;

  /// Stores a model under a generated id ("<name>_<n>") at version 1.
  std::string Put(std::unique_ptr<Model> model);

  /// Snapshot of the current version; NotFound if absent. The returned
  /// shared_ptr keeps that version alive across concurrent Remove/Publish.
  Result<std::shared_ptr<const Model>> Get(const std::string& id) const;

  /// Snapshot plus its version number (for serving-side attribution).
  /// Never returns a staged canary or a failed candidate.
  Result<ModelSnapshot> GetSnapshot(const std::string& id) const;

  /// Retained version `version` of `id`: the current version or any
  /// history entry. NotFound once the bound evicted it.
  Result<ModelSnapshot> GetVersionSnapshot(const std::string& id,
                                           uint64_t version) const;

  /// Hot-swap: atomically replaces the model stored under `id` and
  /// returns the new version number (upsert: a fresh id starts at
  /// version 1, so `TRAIN ... publish=<id>` works for first train and
  /// retrain alike). The displaced current version is retained in the
  /// bounded history; in-flight holders of any snapshot keep serving it.
  /// Crash point: lifecycle.publish (all-or-nothing, see header).
  Result<uint64_t> Publish(const std::string& id,
                           std::unique_ptr<Model> model);

  /// Atomically re-points `id` at retained `version`. The displaced
  /// current version joins the history (roll-forward stays possible).
  /// NotFound when the id is unknown or the version was evicted;
  /// InvalidArgument when `version` is already current.
  /// Crash point: lifecycle.rollback.
  Status Rollback(const std::string& id, uint64_t version);

  // --- canary staging (DESIGN.md §13) ---

  /// Reserves the next version number for `model` and stages it as the
  /// id's canary candidate; GetSnapshot keeps returning the incumbent.
  /// The id must already exist (a first publish has no incumbent to canary
  /// against — use Publish). One canary per id; a second stage replaces
  /// the first (its version number is burned).
  Result<uint64_t> StageCanary(const std::string& id,
                               std::unique_ptr<Model> model,
                               const CanaryPolicy& policy);

  /// The staged candidate, if any (serving engines poll this at batch
  /// close).
  std::optional<CanarySnapshot> GetCanary(const std::string& id) const;

  /// Makes the staged candidate current (the incumbent joins the
  /// history). InvalidArgument when no canary is staged.
  /// Crash point: lifecycle.canary_promote.
  Status PromoteCanary(const std::string& id);

  /// Drops the staged candidate; the incumbent resumes 100% of traffic.
  /// InvalidArgument when no canary is staged.
  /// Crash point: lifecycle.canary_abort.
  Status AbortCanary(const std::string& id);

  // --- introspection ---

  /// Current version of `id`; NotFound if absent.
  Result<uint64_t> GetVersion(const std::string& id) const;

  /// Retained non-current versions of `id`, ascending (what Rollback can
  /// reach). Empty vector when the id exists with no history.
  Result<std::vector<uint64_t>> History(const std::string& id) const;

  /// Lifecycle transitions of `id` in commit order.
  Result<std::vector<LifecycleEvent>> Events(const std::string& id) const;

  Status Remove(const std::string& id);

  size_t size() const;
  std::vector<std::string> Ids() const;

  size_t history_limit() const;
  /// Bounds retained prior versions per id; takes effect on the next
  /// mutation of each entry (0 = keep no history, Rollback always fails).
  void set_history_limit(size_t limit);

 private:
  struct Entry {
    std::shared_ptr<const Model> model;
    uint64_t version = 1;
    /// Monotone per-id version counter; never reused, even by rollback.
    uint64_t next_version = 2;
    /// Retained prior versions, ascending; bounded by history_limit_.
    std::map<uint64_t, std::shared_ptr<const Model>> history;
    std::optional<CanarySnapshot> canary;
    std::vector<LifecycleEvent> events;
  };

  /// Pushes the displaced current version into `entry`'s history and
  /// evicts past the bound, recording kEvicted events. noexcept mutations
  /// only (map::erase, vector::pop); the map node for the insert is
  /// allocated by the caller during staging.
  void RetireCurrentLocked(Entry* entry) CORGI_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Entry> models_ CORGI_GUARDED_BY(mu_);
  uint64_t next_id_ CORGI_GUARDED_BY(mu_) = 0;
  size_t history_limit_ CORGI_GUARDED_BY(mu_) = kDefaultHistoryLimit;
};

}  // namespace corgipile
