// In-memory model store (paper §6.1): learned models live as in-kernel
// objects with an ID; inference queries reference them by that ID.

#pragma once

#include <map>
#include <memory>
#include <string>

#include "ml/model.h"
#include "util/status.h"

namespace corgipile {

class ModelStore {
 public:
  /// Stores a model, returning its generated id ("<name>_<n>").
  std::string Put(std::unique_ptr<Model> model);

  /// Borrowed pointer; NotFound if absent.
  Result<Model*> Get(const std::string& id) const;

  Status Remove(const std::string& id);

  size_t size() const { return models_.size(); }
  std::vector<std::string> Ids() const;

 private:
  std::map<std::string, std::unique_ptr<Model>> models_;
  uint64_t next_id_ = 0;
};

}  // namespace corgipile
