// In-memory model store (paper §6.1): learned models live as in-kernel
// objects with an ID; inference queries reference them by that ID.
//
// The store is a versioned, thread-safe registry designed for the serving
// path (src/serve/): Get() hands out copy-on-write
// `shared_ptr<const Model>` snapshots instead of borrowed raw pointers, so
// a concurrent Remove() or Publish() (hot-swap) can never invalidate a
// model an in-flight predict is using — the old version stays alive until
// its last holder drops it, while new lookups immediately see the new
// version. All mutating and reading members take the registry mutex; the
// Model objects themselves are immutable once stored (const access only).

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"
#include "util/mutex.h"
#include "util/status.h"

namespace corgipile {

/// One Get() result: an immutable model snapshot plus the version it
/// carries. Versions start at 1 and bump on every Publish().
struct ModelSnapshot {
  std::shared_ptr<const Model> model;
  uint64_t version = 0;
};

class ModelStore {
 public:
  /// Stores a model under a generated id ("<name>_<n>") at version 1.
  std::string Put(std::unique_ptr<Model> model);

  /// Snapshot of the current version; NotFound if absent. The returned
  /// shared_ptr keeps that version alive across concurrent Remove/Publish.
  Result<std::shared_ptr<const Model>> Get(const std::string& id) const;

  /// Snapshot plus its version number (for serving-side attribution).
  Result<ModelSnapshot> GetSnapshot(const std::string& id) const;

  /// Hot-swap: atomically replaces the model stored under `id` and
  /// returns the new version number (upsert: a fresh id starts at
  /// version 1, so `TRAIN ... publish=<id>` works for first train and
  /// retrain alike). In-flight holders of the previous snapshot keep
  /// serving it; new Get()s see the replacement.
  Result<uint64_t> Publish(const std::string& id,
                           std::unique_ptr<Model> model);

  /// Current version of `id`; NotFound if absent.
  Result<uint64_t> GetVersion(const std::string& id) const;

  Status Remove(const std::string& id);

  size_t size() const;
  std::vector<std::string> Ids() const;

 private:
  struct Entry {
    std::shared_ptr<const Model> model;
    uint64_t version = 1;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry> models_ CORGI_GUARDED_BY(mu_);
  uint64_t next_id_ CORGI_GUARDED_BY(mu_) = 0;
};

}  // namespace corgipile
