#include "db/query.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace corgipile {

namespace {

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

// Splits on whitespace, keeping everything after WITH as one blob.
struct Tokens {
  std::vector<std::string> words;
  std::string with_clause;
};

// Option whitelists for the WITH clauses. Every key a statement handler
// reads must be listed here; anything else is rejected up front with
// kInvalidArgument (never silently ignored, and never surfacing later as a
// confusing kInternal from a half-configured pipeline).
const char* const kTrainOptionKeys[] = {
    "learning_rate", "decay", "max_epoch_num", "block_size",
    "buffer_fraction", "batch_size", "strategy", "double_buffer", "seed",
    "optimizer", "publish", "tolerate_corruption", "max_bad_fraction",
    "hidden", "checkpoint", "checkpoint_every", "resume",
    // Guarded lifecycle (DESIGN.md §13): validation gate + canary staging.
    "validate", "holdout_fraction", "validate_min_metric",
    "validate_max_loss", "validate_max_regression", "canary_fraction",
    "canary_batches", "auto_rollback",
};
const char* const kLoadOptionKeys[] = {"dim", "compress", "order", "seed",
                                       "shards"};

template <size_t N>
Status ValidateOptionKeys(const Params& params, const char* verb,
                          const char* const (&allowed)[N]) {
  for (const std::string& key : params.Keys()) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::ostringstream os;
      os << "unknown " << verb << " option '" << key << "'; valid options: ";
      for (size_t i = 0; i < N; ++i) {
        if (i) os << ", ";
        os << allowed[i];
      }
      return Status::InvalidArgument(os.str());
    }
  }
  return Status::OK();
}

Tokens Tokenize(std::string sql) {
  // Strip trailing semicolon.
  while (!sql.empty() && (sql.back() == ';' || std::isspace(
                              static_cast<unsigned char>(sql.back())))) {
    sql.pop_back();
  }
  Tokens out;
  std::istringstream in(sql);
  std::string w;
  while (in >> w) {
    if (Upper(w) == "WITH") {
      std::getline(in, out.with_clause);
      break;
    }
    out.words.push_back(w);
  }
  return out;
}

}  // namespace

Result<Statement> ParseQuery(const std::string& sql) {
  Tokens t = Tokenize(sql);
  const auto& w = t.words;
  // LOAD TABLE <name> FROM '<path>' [WITH ...]
  if (!w.empty() && Upper(w[0]) == "LOAD") {
    if (w.size() != 5 || Upper(w[1]) != "TABLE" || Upper(w[3]) != "FROM") {
      return Status::InvalidArgument(
          "expected: LOAD TABLE <name> FROM '<path>' [WITH ...]");
    }
    LoadStatement stmt;
    stmt.table_name = w[2];
    stmt.path = w[4];
    // Strip optional single quotes.
    if (stmt.path.size() >= 2 && stmt.path.front() == '\'' &&
        stmt.path.back() == '\'') {
      stmt.path = stmt.path.substr(1, stmt.path.size() - 2);
    }
    CORGI_ASSIGN_OR_RETURN(stmt.params, Params::Parse(t.with_clause));
    CORGI_RETURN_NOT_OK(ValidateOptionKeys(stmt.params, "LOAD",
                                           kLoadOptionKeys));
    return Statement{std::move(stmt)};
  }
  // SHOW SESSIONS
  if (!w.empty() && Upper(w[0]) == "SHOW") {
    if (w.size() != 2 || Upper(w[1]) != "SESSIONS" ||
        !t.with_clause.empty()) {
      return Status::InvalidArgument("expected: SHOW SESSIONS");
    }
    return Statement{ShowSessionsStatement{}};
  }
  // ROLLBACK MODEL <id> TO <version>
  if (!w.empty() && Upper(w[0]) == "ROLLBACK") {
    if (w.size() != 5 || Upper(w[1]) != "MODEL" || Upper(w[3]) != "TO") {
      return Status::InvalidArgument(
          "expected: ROLLBACK MODEL <model_id> TO <version>");
    }
    if (!t.with_clause.empty()) {
      return Status::InvalidArgument("ROLLBACK takes no WITH clause");
    }
    char* end = nullptr;
    const unsigned long long v = std::strtoull(w[4].c_str(), &end, 10);
    // strtoull wraps a leading '-' instead of failing; reject signs
    // explicitly so "-1" is a parse error, not version 2^64-1.
    if (w[4].empty() || !std::isdigit(static_cast<unsigned char>(w[4][0])) ||
        end == w[4].c_str() || *end != '\0' || v == 0) {
      return Status::InvalidArgument("bad version '" + w[4] +
                                     "' (want a positive integer)");
    }
    RollbackStatement stmt;
    stmt.model_id = w[2];
    stmt.version = static_cast<uint64_t>(v);
    return Statement{std::move(stmt)};
  }
  // Expected: SELECT * FROM <table> (TRAIN|PREDICT|EVALUATE) BY <name>
  if (w.size() != 7 || Upper(w[0]) != "SELECT" || w[1] != "*" ||
      Upper(w[2]) != "FROM" || Upper(w[5]) != "BY") {
    return Status::InvalidArgument(
        "expected: SELECT * FROM <table> TRAIN BY <model> [WITH ...] | "
        "SELECT * FROM <table> PREDICT BY <model_id>");
  }
  const std::string verb = Upper(w[4]);
  if (verb == "TRAIN") {
    TrainStatement stmt;
    stmt.table_name = w[3];
    stmt.model_kind = w[6];
    CORGI_ASSIGN_OR_RETURN(stmt.params, Params::Parse(t.with_clause));
    CORGI_RETURN_NOT_OK(ValidateOptionKeys(stmt.params, "TRAIN",
                                           kTrainOptionKeys));
    return Statement{std::move(stmt)};
  }
  if (verb == "PREDICT") {
    if (!t.with_clause.empty()) {
      return Status::InvalidArgument("PREDICT takes no WITH clause");
    }
    PredictStatement stmt;
    stmt.table_name = w[3];
    stmt.model_id = w[6];
    return Statement{std::move(stmt)};
  }
  if (verb == "EVALUATE") {
    if (!t.with_clause.empty()) {
      return Status::InvalidArgument("EVALUATE takes no WITH clause");
    }
    EvaluateStatement stmt;
    stmt.table_name = w[3];
    stmt.model_id = w[6];
    return Statement{std::move(stmt)};
  }
  return Status::InvalidArgument("unknown verb '" + w[4] + "'");
}

Result<uint64_t> ParseByteSize(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty size");
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || v < 0) {
    return Status::InvalidArgument("bad size '" + text + "'");
  }
  std::string unit = Upper(std::string(end));
  // Trim whitespace.
  unit.erase(std::remove_if(unit.begin(), unit.end(),
                            [](unsigned char c) { return std::isspace(c); }),
             unit.end());
  double mult = 1.0;
  if (unit.empty() || unit == "B") {
    mult = 1.0;
  } else if (unit == "KB" || unit == "K") {
    mult = 1024.0;
  } else if (unit == "MB" || unit == "M") {
    mult = 1024.0 * 1024;
  } else if (unit == "GB" || unit == "G") {
    mult = 1024.0 * 1024 * 1024;
  } else {
    return Status::InvalidArgument("bad size unit '" + unit + "'");
  }
  return static_cast<uint64_t>(v * mult);
}

}  // namespace corgipile
