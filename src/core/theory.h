// Convergence-theory helpers (paper §4.2).
//
// Implements the measurable quantities of Theorem 1/2: the block-variance
// factor h_D, the α/β/γ factors, the bound's leading terms, and the
// physical-time comparison between vanilla SGD and CorgiPile.

#pragma once

#include <cstdint>

#include "iosim/device.h"
#include "ml/model.h"
#include "storage/block_source.h"
#include "util/status.h"

namespace corgipile {

/// Empirical gradient-variance profile of a dataset at a model point x.
struct GradientVariance {
  /// σ²: mean over tuples of ‖∇f_i(x) − ∇F(x)‖².
  double tuple_variance = 0.0;
  /// (1/N) Σ_l ‖∇f_{B_l}(x) − ∇F(x)‖², with ∇f_{B_l} the block-mean
  /// gradient.
  double block_variance = 0.0;
  /// h_D = b · block_variance / σ² — the paper's cluster factor. 1 for
  /// fully shuffled data; up to b when every block is pure.
  double h_d = 0.0;
  uint64_t num_tuples = 0;
  uint32_t num_blocks = 0;
  double tuples_per_block = 0.0;
};

/// Measures the gradient variances of `source` at the current parameters of
/// `model`. Reads every block once.
Result<GradientVariance> MeasureGradientVariance(const Model& model,
                                                 BlockSource* source);

/// The factors of Theorem 1 (strongly convex case).
struct TheoremFactors {
  double alpha = 0.0;  ///< (n−1)/(N−1)
  double beta = 0.0;   ///< α² + (1−α)²(b−1)²
  double gamma = 0.0;  ///< n³/N³
};

TheoremFactors ComputeTheoremFactors(uint32_t n_buffered_blocks,
                                     uint32_t total_blocks,
                                     uint64_t tuples_per_block);

/// Leading terms of Theorem 1's bound at T processed tuples (constants
/// dropped):  (1−α)·h_D·σ²/T + β/T² + γ·m³/T³.
double TheoremOneBound(const TheoremFactors& f, double h_d, double sigma_sq,
                       uint64_t m_total_tuples, uint64_t t_tuples_processed);

/// Leading terms of Theorem 2 (smooth non-convex case, α ≤ (N−2)/(N−1)):
///   √((1−α)·h_D)·σ/√T + β'/T + γ'·m³/T^{3/2}
/// with β' = α²/((1−α)h_Dσ²) + (1−α)(b−1)²/(h_Dσ²) and
/// γ' = n³/((1−α)N³). At α = 1 the rate degenerates to the full-shuffle
/// 1/T^{2/3} + (n³/N³)·m³/T form; this helper returns that branch too.
double TheoremTwoBound(uint32_t n_buffered_blocks, uint32_t total_blocks,
                       uint64_t tuples_per_block, double h_d, double sigma_sq,
                       uint64_t m_total_tuples, uint64_t t_tuples_processed);

/// Physical-time cost factors from §4.2's "Comparison to vanilla SGD":
/// vanilla SGD reaches error ε in  O(σ²/ε · (t_lat + t_t)) while CorgiPile
/// needs O((1−α)·h_D/b·σ²/ε·t_lat + (1−α)·h_D·σ²/ε·t_t).
struct PhysicalTimeComparison {
  double vanilla_seconds = 0.0;
  double corgipile_seconds = 0.0;
  double speedup = 0.0;  ///< vanilla / corgipile
};

/// `tuple_bytes` is the average serialized tuple size; t_lat and t_t are
/// derived from `device` (latency, and transfer time per tuple).
PhysicalTimeComparison CompareToVanillaSgd(const TheoremFactors& f,
                                           double h_d, double sigma_sq,
                                           double epsilon,
                                           uint64_t tuple_bytes,
                                           uint64_t block_tuples,
                                           const DeviceProfile& device);

}  // namespace corgipile
