// CorgiPile public entry points.
//
// Two layers:
//  * RunCorgiPileAlgorithm — Algorithm 1 verbatim: each epoch samples n of
//    N blocks without replacement into the buffer, shuffles the buffered
//    tuples, and performs per-tuple SGD over them.
//  * TrainWithStrategy — the system view used throughout the evaluation:
//    train any Model over any BlockSource with any shuffling strategy.

#pragma once

#include <memory>

#include "ml/trainer.h"
#include "shuffle/tuple_stream.h"
#include "storage/block_source.h"

namespace corgipile {

/// Options for the paper's Algorithm 1.
struct CorgiPileAlgorithmOptions {
  /// n — blocks sampled into the buffer per epoch. 0 means "all blocks",
  /// which is the system behaviour (and α = 1: full-shuffle SGD).
  uint32_t blocks_per_epoch = 0;
  /// S — number of epochs.
  uint32_t epochs = 20;
  LrSchedule lr;
  uint64_t seed = 42;
  const std::vector<Tuple>* test_set = nullptr;
  LabelType label_type = LabelType::kBinary;
};

/// Runs Algorithm 1. The buffer holds exactly the sampled blocks.
Result<TrainResult> RunCorgiPileAlgorithm(
    Model* model, BlockSource* source,
    const CorgiPileAlgorithmOptions& options);

/// Convenience wrapper: builds the requested strategy's stream over
/// `source` and trains `model` with `trainer_options`.
Result<TrainResult> TrainWithStrategy(Model* model, BlockSource* source,
                                      ShuffleStrategy strategy,
                                      const ShuffleOptions& shuffle_options,
                                      const TrainerOptions& trainer_options);

}  // namespace corgipile
