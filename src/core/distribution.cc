#include "core/distribution.h"

#include <cmath>

#include "util/stats.h"

namespace corgipile {

Result<EmissionTrace> TraceEpoch(TupleStream* stream, uint64_t epoch) {
  if (stream == nullptr) return Status::InvalidArgument("null stream");
  CORGI_RETURN_NOT_OK(stream->StartEpoch(epoch));
  EmissionTrace trace;
  while (const Tuple* t = stream->Next()) {
    trace.ids.push_back(t->id);
    trace.labels.push_back(t->label);
  }
  CORGI_RETURN_NOT_OK(stream->status());
  return trace;
}

WindowLabelCounts CountLabelsPerWindow(const EmissionTrace& trace,
                                       uint64_t window) {
  WindowLabelCounts counts;
  if (window == 0) return counts;
  const size_t n = trace.labels.size();
  for (size_t start = 0; start < n; start += window) {
    uint64_t neg = 0, pos = 0;
    const size_t end = std::min(n, start + static_cast<size_t>(window));
    for (size_t i = start; i < end; ++i) {
      if (trace.labels[i] < 0) {
        ++neg;
      } else {
        ++pos;
      }
    }
    counts.negatives.push_back(neg);
    counts.positives.push_back(pos);
  }
  return counts;
}

RandomnessStats ComputeRandomnessStats(const EmissionTrace& trace,
                                       uint64_t window) {
  RandomnessStats stats;
  const size_t n = trace.ids.size();
  if (n < 2) return stats;

  std::vector<double> pos(n), ids(n);
  double disp = 0.0;
  for (size_t i = 0; i < n; ++i) {
    pos[i] = static_cast<double>(i);
    ids[i] = static_cast<double>(trace.ids[i]);
    disp += std::abs(pos[i] - ids[i]);
  }
  stats.position_id_correlation = PearsonCorrelation(pos, ids);
  stats.mean_normalized_displacement =
      disp / (static_cast<double>(n) * static_cast<double>(n));

  const WindowLabelCounts counts = CountLabelsPerWindow(trace, window);
  if (!counts.negatives.empty() && window > 0) {
    double imbalance = 0.0;
    for (size_t w = 0; w < counts.negatives.size(); ++w) {
      const double total =
          static_cast<double>(counts.negatives[w] + counts.positives[w]);
      if (total == 0) continue;
      imbalance += std::abs(static_cast<double>(counts.negatives[w]) -
                            static_cast<double>(counts.positives[w])) /
                   total;
    }
    stats.mean_window_label_imbalance =
        imbalance / static_cast<double>(counts.negatives.size());
  }
  return stats;
}

}  // namespace corgipile
