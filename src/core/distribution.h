// Order-statistics analysis of shuffled streams (the paper's Figures 3/4).
//
// Given the sequence of tuple ids a strategy emits over one epoch of a
// clustered dataset, these helpers compute:
//  * the tuple-id scatter (position → original id),
//  * the label distribution per window of W consecutive emissions, and
//  * scalar randomness measures used by tests and Table-1-style summaries.

#pragma once

#include <cstdint>
#include <vector>

#include "shuffle/tuple_stream.h"
#include "util/status.h"

namespace corgipile {

/// Raw emission record of one epoch.
struct EmissionTrace {
  std::vector<uint64_t> ids;     ///< tuple id per emission position
  std::vector<double> labels;    ///< label per emission position
};

/// Runs one epoch of `stream` and records what it emits.
Result<EmissionTrace> TraceEpoch(TupleStream* stream, uint64_t epoch);

/// Per-window label counts: for every window of `window` consecutive
/// emissions, how many tuples carried each of the two binary labels.
struct WindowLabelCounts {
  std::vector<uint64_t> negatives;  ///< count of -1 per window
  std::vector<uint64_t> positives;  ///< count of +1 per window
};

WindowLabelCounts CountLabelsPerWindow(const EmissionTrace& trace,
                                       uint64_t window);

/// Scalar randomness measures over an id trace of a dataset whose storage
/// ids are 0..n-1.
struct RandomnessStats {
  /// Pearson correlation between emission position and tuple id.
  /// ~1 for No Shuffle / Sliding-Window, ~0 for a full shuffle.
  double position_id_correlation = 0.0;
  /// Mean |position − id| / n. ~0 unshuffled, → 1/3 for a uniform
  /// permutation.
  double mean_normalized_displacement = 0.0;
  /// Mean over windows of |#neg − #pos| / window ("label imbalance").
  /// ~1 on clustered data left unshuffled, ~small for a full shuffle.
  double mean_window_label_imbalance = 0.0;
};

RandomnessStats ComputeRandomnessStats(const EmissionTrace& trace,
                                       uint64_t window);

}  // namespace corgipile
