#include "core/corgipile.h"

#include "shuffle/hierarchical.h"

namespace corgipile {

Result<TrainResult> RunCorgiPileAlgorithm(
    Model* model, BlockSource* source,
    const CorgiPileAlgorithmOptions& options) {
  if (model == nullptr || source == nullptr) {
    return Status::InvalidArgument("null model or source");
  }
  const uint32_t total = source->num_blocks();
  const uint32_t n = options.blocks_per_epoch == 0
                         ? total
                         : std::min(options.blocks_per_epoch, total);
  // Buffer sized to hold exactly the n sampled blocks.
  uint64_t buffer_tuples = 0;
  for (uint32_t b = 0; b < n; ++b) buffer_tuples += source->TuplesInBlock(b);

  auto stream = MakeCorgiPileStream(source, buffer_tuples, options.seed,
                                    options.blocks_per_epoch);
  TrainerOptions topts;
  topts.epochs = options.epochs;
  topts.lr = options.lr;
  topts.test_set = options.test_set;
  topts.label_type = options.label_type;
  return Train(model, stream.get(), topts);
}

Result<TrainResult> TrainWithStrategy(Model* model, BlockSource* source,
                                      ShuffleStrategy strategy,
                                      const ShuffleOptions& shuffle_options,
                                      const TrainerOptions& trainer_options) {
  CORGI_ASSIGN_OR_RETURN(std::unique_ptr<TupleStream> stream,
                         MakeTupleStream(strategy, source, shuffle_options));
  return Train(model, stream.get(), trainer_options);
}

}  // namespace corgipile
