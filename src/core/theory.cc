#include "core/theory.h"

#include <cmath>
#include <vector>

namespace corgipile {

Result<GradientVariance> MeasureGradientVariance(const Model& model,
                                                 BlockSource* source) {
  if (source == nullptr) return Status::InvalidArgument("null source");
  const size_t p = model.num_params();
  const uint32_t num_blocks = source->num_blocks();
  const uint64_t m = source->num_tuples();
  if (m == 0 || num_blocks == 0) {
    return Status::InvalidArgument("empty source");
  }

  // Pass 1: full gradient and per-block mean gradients. We hold one block's
  // tuples plus N block-gradients in memory.
  std::vector<std::vector<double>> block_grads(
      num_blocks, std::vector<double>(p, 0.0));
  std::vector<double> full_grad(p, 0.0);
  std::vector<double> scratch(p, 0.0);
  std::vector<Tuple> block;
  std::unique_ptr<Model> probe = model.Clone();

  for (uint32_t b = 0; b < num_blocks; ++b) {
    block.clear();
    CORGI_RETURN_NOT_OK(source->ReadBlock(b, &block));
    auto& bg = block_grads[b];
    for (const Tuple& t : block) {
      std::fill(scratch.begin(), scratch.end(), 0.0);
      probe->AccumulateGrad(t, &scratch);
      for (size_t i = 0; i < p; ++i) {
        bg[i] += scratch[i];
        full_grad[i] += scratch[i];
      }
    }
    const double inv = block.empty() ? 0.0 : 1.0 / static_cast<double>(block.size());
    for (double& g : bg) g *= inv;
  }
  for (double& g : full_grad) g /= static_cast<double>(m);

  // Pass 2: tuple-level variance σ².
  double tuple_var = 0.0;
  for (uint32_t b = 0; b < num_blocks; ++b) {
    block.clear();
    CORGI_RETURN_NOT_OK(source->ReadBlock(b, &block));
    for (const Tuple& t : block) {
      std::fill(scratch.begin(), scratch.end(), 0.0);
      probe->AccumulateGrad(t, &scratch);
      double d2 = 0.0;
      for (size_t i = 0; i < p; ++i) {
        const double d = scratch[i] - full_grad[i];
        d2 += d * d;
      }
      tuple_var += d2;
    }
  }
  tuple_var /= static_cast<double>(m);

  double block_var = 0.0;
  for (const auto& bg : block_grads) {
    double d2 = 0.0;
    for (size_t i = 0; i < p; ++i) {
      const double d = bg[i] - full_grad[i];
      d2 += d * d;
    }
    block_var += d2;
  }
  block_var /= static_cast<double>(num_blocks);

  GradientVariance out;
  out.tuple_variance = tuple_var;
  out.block_variance = block_var;
  out.num_tuples = m;
  out.num_blocks = num_blocks;
  out.tuples_per_block = static_cast<double>(m) / num_blocks;
  out.h_d = tuple_var > 0.0
                ? out.tuples_per_block * block_var / tuple_var
                : 0.0;
  return out;
}

TheoremFactors ComputeTheoremFactors(uint32_t n_buffered_blocks,
                                     uint32_t total_blocks,
                                     uint64_t tuples_per_block) {
  TheoremFactors f;
  const double n = n_buffered_blocks;
  const double N = total_blocks;
  const double b = static_cast<double>(tuples_per_block);
  f.alpha = N > 1 ? (n - 1.0) / (N - 1.0) : 1.0;
  f.beta = f.alpha * f.alpha +
           (1.0 - f.alpha) * (1.0 - f.alpha) * (b - 1.0) * (b - 1.0);
  f.gamma = (n / N) * (n / N) * (n / N);
  return f;
}

double TheoremOneBound(const TheoremFactors& f, double h_d, double sigma_sq,
                       uint64_t m_total_tuples, uint64_t t_tuples_processed) {
  const double T = static_cast<double>(t_tuples_processed);
  const double m = static_cast<double>(m_total_tuples);
  if (T <= 0) return 0.0;
  return (1.0 - f.alpha) * h_d * sigma_sq / T + f.beta / (T * T) +
         f.gamma * m * m * m / (T * T * T);
}

double TheoremTwoBound(uint32_t n_buffered_blocks, uint32_t total_blocks,
                       uint64_t tuples_per_block, double h_d, double sigma_sq,
                       uint64_t m_total_tuples, uint64_t t_tuples_processed) {
  const double T = static_cast<double>(t_tuples_processed);
  if (T <= 0) return 0.0;
  const double m = static_cast<double>(m_total_tuples);
  const double n = n_buffered_blocks;
  const double N = total_blocks;
  const double b = static_cast<double>(tuples_per_block);
  const double alpha = N > 1 ? (n - 1.0) / (N - 1.0) : 1.0;
  if (alpha >= (N - 2.0) / (N - 1.0) || N <= 2) {
    // α = 1 branch: full-shuffle non-convex rate.
    const double gamma_p = (n / N) * (n / N) * (n / N);
    return std::pow(T, -2.0 / 3.0) + gamma_p * m * m * m / T;
  }
  const double hs2 = std::max(h_d * sigma_sq, 1e-12);
  const double beta_p = alpha * alpha / ((1.0 - alpha) * hs2) +
                        (1.0 - alpha) * (b - 1.0) * (b - 1.0) / hs2;
  const double gamma_p = (n * n * n) / ((1.0 - alpha) * N * N * N);
  return std::sqrt((1.0 - alpha) * h_d) * std::sqrt(sigma_sq) / std::sqrt(T) +
         beta_p / T + gamma_p * m * m * m / std::pow(T, 1.5);
}

PhysicalTimeComparison CompareToVanillaSgd(const TheoremFactors& f,
                                           double h_d, double sigma_sq,
                                           double epsilon,
                                           uint64_t tuple_bytes,
                                           uint64_t block_tuples,
                                           const DeviceProfile& device) {
  PhysicalTimeComparison cmp;
  const double t_lat = device.random_access_latency_s;
  const double t_t =
      static_cast<double>(tuple_bytes) / device.bandwidth_bytes_per_s;
  const double samples = sigma_sq / epsilon;
  const double b = static_cast<double>(block_tuples);
  cmp.vanilla_seconds = samples * (t_lat + t_t);
  cmp.corgipile_seconds = (1.0 - f.alpha) * h_d / b * samples * t_lat +
                          (1.0 - f.alpha) * h_d * samples * t_t;
  cmp.speedup = cmp.corgipile_seconds > 0.0
                    ? cmp.vanilla_seconds / cmp.corgipile_seconds
                    : 0.0;
  return cmp;
}

}  // namespace corgipile
