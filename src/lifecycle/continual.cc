#include "lifecycle/continual.h"

#include <utility>

namespace corgipile {

ContinualController::ContinualController(Database* db,
                                         ContinualOptions options)
    : db_(db), options_(std::move(options)), monitor_(options_.drift) {}

Result<bool> ContinualController::Ingest(const std::vector<Tuple>& tuples) {
  if (tuples.empty()) return false;
  CORGI_RETURN_NOT_OK(db_->Insert(options_.table, tuples));
  bool drifted = false;
  for (const Tuple& t : tuples) {
    ++ingested_;
    if (monitor_.Observe(TupleDriftSignal(t))) drifted = true;
  }
  if (!drifted) return false;
  if (ingested_ - last_retrain_at_ < options_.min_tuples_between_retrains) {
    return false;
  }
  CORGI_ASSIGN_OR_RETURN(last_result_, db_->Train(options_.retrain));
  ++retrains_;
  last_retrain_at_ = ingested_;
  // The retrained model saw the drifted data; the next full window is the
  // new normal.
  monitor_.Rebaseline();
  return true;
}

}  // namespace corgipile
