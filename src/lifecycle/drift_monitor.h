// Streaming drift detection over ingested tuples (DESIGN.md §13).
//
// The monitor folds a scalar signal per observation into fixed-size
// windows. The first completed window becomes the *reference*; every later
// completed window is compared against it with a mean-shift test: drift
// fires when |window mean − reference mean| exceeds `threshold` reference
// standard deviations. After a retrain the caller Rebaseline()s so the
// next window (drawn from the post-shift distribution) becomes the new
// reference.
//
// Deterministic by construction: state is a pure fold over the observation
// sequence — no clocks, no sampling — so the same ingest stream fires
// drift at the same tuple on every run, which the lifecycle tests assert
// across seeds.

#pragma once

#include <cstdint>

#include "storage/tuple.h"

namespace corgipile {

struct DriftMonitorOptions {
  /// Observations per window; a window must fill completely before it is
  /// tested (or adopted as reference).
  uint32_t window = 128;
  /// Mean-shift trigger, in reference standard deviations.
  double threshold = 3.0;
  /// Floor on the reference std so a near-constant reference window does
  /// not make the test fire on noise-level shifts.
  double min_std = 1e-3;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftMonitorOptions options = {});

  /// Folds one observation. Returns true when this observation completes a
  /// window whose mean has drifted from the reference.
  bool Observe(double value);

  /// Drops the reference (and the partial window); the next completed
  /// window re-baselines. Call after acting on a drift event.
  void Rebaseline();

  bool has_reference() const { return has_reference_; }
  double reference_mean() const { return ref_mean_; }
  double reference_std() const { return ref_std_; }
  uint64_t windows() const { return windows_; }
  uint64_t drift_events() const { return drift_events_; }
  const DriftMonitorOptions& options() const { return options_; }

 private:
  const DriftMonitorOptions options_;
  bool has_reference_ = false;
  double ref_mean_ = 0.0;
  double ref_std_ = 0.0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  uint32_t count_ = 0;
  uint64_t windows_ = 0;
  uint64_t drift_events_ = 0;
};

/// Canonical per-tuple signal for ingest streams: label plus mean feature
/// value, so both label shift and covariate shift move it.
double TupleDriftSignal(const Tuple& t);

}  // namespace corgipile
