// Continual-learning controller: the loop that closes the lifecycle
// (DESIGN.md §13, ROADMAP "train-while-serving").
//
//   streaming ingest (Database::Insert, heap-file appends)
//     → DriftMonitor over the ingested tuples
//       → drift event: retrain through the database's *gated* TRAIN path
//         (validate= / canary_fraction= options on the statement)
//         → ValidationGate → canary serving → promote or auto-rollback
//
// The controller itself is deliberately thin: it appends, observes, and —
// when a completed window drifts — replays one pre-configured
// TrainStatement. All gating/canary policy lives in that statement's WITH
// options, so the controller needs no knowledge of thresholds or serving.
//
// Concurrency: the controller is single-caller (drive it from one ingest
// thread). The Database calls it makes are safe against concurrent
// serving — Insert serializes against table scans, and the gated TRAIN
// publishes through the thread-safe ModelStore that live InferenceEngines
// resolve from.

#pragma once

#include <cstdint>
#include <vector>

#include "db/database.h"
#include "db/query.h"
#include "db/run_result.h"
#include "lifecycle/drift_monitor.h"
#include "storage/tuple.h"

namespace corgipile {

struct ContinualOptions {
  /// Table receiving the ingest stream (must exist).
  std::string table;
  /// Gated retrain statement replayed on each drift event; configure
  /// publish=<id>, validate=..., canary_fraction=... here.
  TrainStatement retrain;
  DriftMonitorOptions drift;
  /// Damper: ignore drift events until this many tuples arrived after the
  /// previous retrain (0 = retrain on every event).
  uint64_t min_tuples_between_retrains = 0;
};

class ContinualController {
 public:
  ContinualController(Database* db, ContinualOptions options);

  /// Appends `tuples` to the table, feeds the drift monitor, and — when a
  /// window drifts past the damper — runs one gated retrain. Returns true
  /// when a retrain ran (its outcome is in last_result()).
  Result<bool> Ingest(const std::vector<Tuple>& tuples);

  uint64_t ingested() const { return ingested_; }
  uint64_t retrains() const { return retrains_; }
  /// Outcome of the most recent retrain (lifecycle_state says whether it
  /// was published, staged as canary, or rejected by the gate).
  const InDbTrainResult& last_result() const { return last_result_; }
  const DriftMonitor& monitor() const { return monitor_; }

 private:
  Database* db_;
  ContinualOptions options_;
  DriftMonitor monitor_;
  uint64_t ingested_ = 0;
  uint64_t retrains_ = 0;
  uint64_t last_retrain_at_ = 0;
  InDbTrainResult last_result_;
};

}  // namespace corgipile
