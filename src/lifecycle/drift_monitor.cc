#include "lifecycle/drift_monitor.h"

#include <algorithm>
#include <cmath>

namespace corgipile {

DriftMonitor::DriftMonitor(DriftMonitorOptions options) : options_(options) {}

bool DriftMonitor::Observe(double value) {
  sum_ += value;
  sum_sq_ += value * value;
  if (++count_ < std::max<uint32_t>(1, options_.window)) return false;

  const auto n = static_cast<double>(count_);
  const double mean = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - mean * mean);
  sum_ = sum_sq_ = 0.0;
  count_ = 0;
  ++windows_;

  if (!has_reference_) {
    has_reference_ = true;
    ref_mean_ = mean;
    ref_std_ = std::sqrt(var);
    return false;
  }
  const double scale = std::max(ref_std_, options_.min_std);
  if (std::abs(mean - ref_mean_) > options_.threshold * scale) {
    ++drift_events_;
    return true;
  }
  return false;
}

void DriftMonitor::Rebaseline() {
  has_reference_ = false;
  ref_mean_ = 0.0;
  ref_std_ = 0.0;
  sum_ = sum_sq_ = 0.0;
  count_ = 0;
}

double TupleDriftSignal(const Tuple& t) {
  double feature_mean = 0.0;
  if (!t.feature_values.empty()) {
    double sum = 0.0;
    for (double v : t.feature_values) sum += v;
    feature_mean = sum / static_cast<double>(t.feature_values.size());
  }
  return t.label + feature_mean;
}

}  // namespace corgipile
