#include "lifecycle/validation_gate.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/rng.h"

namespace corgipile {

std::vector<Tuple> SampleHoldout(const std::vector<Tuple>& pool,
                                 double fraction, uint64_t seed) {
  if (pool.empty() || fraction <= 0.0) return {};
  const double clamped = std::min(fraction, 1.0);
  const auto n = pool.size();
  auto k = static_cast<uint32_t>(
      std::ceil(clamped * static_cast<double>(n)));
  k = std::min<uint32_t>(k, static_cast<uint32_t>(n));
  Rng rng(seed);
  std::vector<uint32_t> picked =
      rng.SampleWithoutReplacement(static_cast<uint32_t>(n), k);
  // Pool order, not draw order: the holdout is a set, and a stable order
  // keeps the two-pass evaluation's FP sums reproducible.
  std::sort(picked.begin(), picked.end());
  std::vector<Tuple> out;
  out.reserve(picked.size());
  for (uint32_t idx : picked) out.push_back(pool[idx]);
  return out;
}

ValidationReport EvaluateCandidate(const Model& candidate,
                                   const Model* incumbent,
                                   const std::vector<Tuple>& holdout,
                                   LabelType label_type,
                                   const ValidationThresholds& thresholds) {
  ValidationReport report;
  if (holdout.empty()) {
    report.reason = "empty holdout: nothing to validate against";
    return report;
  }
  report.candidate = Evaluate(candidate, holdout, label_type);
  if (incumbent != nullptr) {
    report.has_incumbent = true;
    report.incumbent = Evaluate(*incumbent, holdout, label_type);
  }

  std::ostringstream why;
  // Tiny slack so a candidate sitting exactly on a bound is not rejected
  // by FP rounding.
  constexpr double kSlack = 1e-12;
  if (thresholds.min_metric > 0.0 &&
      report.candidate.metric + kSlack < thresholds.min_metric) {
    why << "metric " << report.candidate.metric << " below floor "
        << thresholds.min_metric;
  } else if (thresholds.max_loss > 0.0 &&
             report.candidate.mean_loss > thresholds.max_loss + kSlack) {
    why << "mean loss " << report.candidate.mean_loss << " above ceiling "
        << thresholds.max_loss;
  } else if (thresholds.max_regression > 0.0 && report.has_incumbent) {
    if (report.candidate.mean_loss >
        report.incumbent.mean_loss * (1.0 + thresholds.max_regression) +
            kSlack) {
      why << "mean loss " << report.candidate.mean_loss << " regresses >"
          << thresholds.max_regression * 100 << "% vs incumbent "
          << report.incumbent.mean_loss;
    } else if (report.candidate.metric + thresholds.max_regression + kSlack <
               report.incumbent.metric) {
      why << "metric " << report.candidate.metric << " drops >"
          << thresholds.max_regression << " vs incumbent "
          << report.incumbent.metric;
    }
  }
  report.reason = why.str();
  report.passed = report.reason.empty();
  return report;
}

}  // namespace corgipile
