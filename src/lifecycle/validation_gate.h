// Validation gate: the first guard in the model lifecycle (DESIGN.md §13).
//
// A freshly trained candidate is evaluated on a held-out split *before* it
// becomes visible to any serving path — Database::Train keeps the candidate
// on a local unique_ptr until the gate passes, so a rejected model is never
// stored under a servable id and ModelStore::GetSnapshot can never return
// it. The gate checks absolute thresholds (metric floor, loss ceiling) and
// relative-regression bounds against the incumbent currently serving the
// target id.
//
// Everything here is deterministic: the holdout is either the dataset's
// registered test split or a seeded without-replacement sample, and the
// evaluation is the same two-pass Evaluate() the trainer logs per epoch.

#pragma once

#include <string>
#include <vector>

#include "ml/metrics.h"
#include "ml/model.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace corgipile {

/// Pass/fail policy for a candidate. A bound set to 0 is disabled, so the
/// default-constructed thresholds accept everything (the gate still runs
/// and reports the numbers).
struct ValidationThresholds {
  /// Absolute floor on the holdout metric (accuracy or R²).
  double min_metric = 0.0;
  /// Absolute ceiling on the holdout mean loss.
  double max_loss = 0.0;
  /// Relative-regression bound vs the incumbent: the candidate fails when
  /// its mean loss exceeds the incumbent's by more than this fraction, or
  /// its metric drops below the incumbent's by more than this amount.
  /// Ignored when there is no incumbent (first publish).
  double max_regression = 0.0;
};

/// Outcome of one gate evaluation; `reason` is empty iff `passed`.
struct ValidationReport {
  bool passed = false;
  EvalResult candidate;
  EvalResult incumbent;
  bool has_incumbent = false;
  std::string reason;
};

/// Seeded without-replacement sample of ceil(fraction * pool.size())
/// tuples, in pool order (deterministic in `seed`). Used when a table has
/// no registered test split to validate against.
std::vector<Tuple> SampleHoldout(const std::vector<Tuple>& pool,
                                 double fraction, uint64_t seed);

/// Evaluates `candidate` (and `incumbent`, when non-null) on `holdout` and
/// applies `thresholds`. An empty holdout fails the gate: a candidate that
/// cannot be validated must not be published by a validating train.
ValidationReport EvaluateCandidate(const Model& candidate,
                                   const Model* incumbent,
                                   const std::vector<Tuple>& holdout,
                                   LabelType label_type,
                                   const ValidationThresholds& thresholds);

}  // namespace corgipile
