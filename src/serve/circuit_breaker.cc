#include "serve/circuit_breaker.h"

#include <algorithm>

namespace corgipile {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options),
      outcomes_(std::max<uint32_t>(1, options.window), false) {}

bool CircuitBreaker::AllowRequest(double now_s) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_s - opened_at_s_ >= options_.cooldown_s) {
        state_ = State::kHalfOpen;
        return true;  // the single probe
      }
      return false;
    case State::kHalfOpen:
      // A probe is already outstanding this instant; the scheduler thread
      // reports its outcome before asking again, so this only triggers if
      // a caller skipped RecordSuccess/RecordFailure.
      return false;
  }
  return false;  // unreachable
}

void CircuitBreaker::RecordSuccess() {
  if (state_ == State::kHalfOpen) {
    // Probe succeeded: close and start from a clean window so one stale
    // failure burst cannot immediately re-trip.
    Reset();
    return;
  }
  outcomes_[next_slot_] = false;
  next_slot_ = (next_slot_ + 1) % outcomes_.size();
  filled_ = std::min(filled_ + 1, outcomes_.size());
}

void CircuitBreaker::RecordFailure(double now_s) {
  if (state_ == State::kHalfOpen) {
    state_ = State::kOpen;
    opened_at_s_ = now_s;
    ++opens_;
    return;
  }
  outcomes_[next_slot_] = true;
  next_slot_ = (next_slot_ + 1) % outcomes_.size();
  filled_ = std::min(filled_ + 1, outcomes_.size());
  if (state_ == State::kClosed && WindowTrips()) {
    state_ = State::kOpen;
    opened_at_s_ = now_s;
    ++opens_;
  }
}

void CircuitBreaker::Reset() {
  state_ = State::kClosed;
  std::fill(outcomes_.begin(), outcomes_.end(), false);
  next_slot_ = 0;
  filled_ = 0;
  opened_at_s_ = 0.0;
}

bool CircuitBreaker::WindowTrips() const {
  if (filled_ < options_.min_samples) return false;
  size_t failures = 0;
  for (size_t i = 0; i < filled_; ++i) {
    if (outcomes_[i]) ++failures;
  }
  return static_cast<double>(failures) >=
         options_.error_threshold * static_cast<double>(filled_);
}

}  // namespace corgipile
