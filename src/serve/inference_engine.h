// Micro-batched in-database model serving (the online half of the paper's
// §6.1 in-kernel models; ROADMAP "heavy traffic" north star).
//
// Architecture — three stages connected by Channels, mirroring DESIGN.md §8:
//
//   sessions --Submit()--> intake Channel --> scheduler thread
//       --Batch Channel--> ThreadPool workers --promise--> sessions
//
// The *scheduler* is the deterministic heart: a single thread that pops
// requests in FIFO order, advances a virtual timeline (simulated seconds,
// same convention as SimClock/Deadline), forms micro-batches (close when
// `max_batch` tuples are buffered or when the next arrival shows the
// `batch_deadline_s` has passed, whichever first), applies admission
// control (shed with kResourceExhausted once the modeled queue holds
// `max_queue_depth` requests), per-request deadlines and cancellation
// (util/cancellation.h tokens), resolves the model snapshot from the
// versioned ModelStore (hot-swap boundary: a batch formed before a
// Publish() keeps serving the old version), and assigns each batch to the
// first-free of `num_workers` simulated service slots with
// service = per_batch_overhead_s + n · per_tuple_s.
//
// Because every timing decision reads only generated arrival stamps and
// this deterministic service model — never the wall clock — the ServeStats
// produced for a given (schedule, options, store) are bit-identical across
// reruns. The *execution* of a batch (Model::Predict/Loss/Correct) runs
// for real on the ThreadPool workers; their wall-time interleaving cannot
// affect the stats, only when each promise is fulfilled.
//
// Liveness modes:
//  * flush_on_idle = false (generated schedules, the SQL PREDICT path):
//    the scheduler blocks for the next request before deciding whether the
//    open batch's deadline passed — fully deterministic, but a partial
//    batch only closes on the next arrival or Drain().
//  * flush_on_idle = true (live concurrent sessions): an empty intake
//    queue closes the open batch immediately, so a session that submits
//    one request and waits on its future is never stalled behind an open
//    batch. Stats remain internally consistent but depend on arrival
//    interleaving.

#pragma once

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/model_store.h"
#include "exec/tuple_batch.h"
#include "iosim/sim_clock.h"
#include "serve/circuit_breaker.h"
#include "serve/serve_stats.h"
#include "storage/tuple.h"
#include "util/cancellation.h"
#include "util/channel.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/threadpool.h"

namespace corgipile {

struct ServeOptions {
  /// Close the open batch once it holds this many requests.
  uint32_t max_batch = 32;
  /// ...or once the next arrival is this many simulated seconds past the
  /// batch's first request (adaptive micro-batching: low load pays at most
  /// this much extra latency, high load fills batches before it expires).
  double batch_deadline_s = 2e-3;
  /// Simulated service slots AND real ThreadPool executor threads.
  uint32_t num_workers = 4;
  /// Admission control: shed arrivals once this many accepted requests are
  /// waiting to start service. 0 = unbounded (never shed).
  uint64_t max_queue_depth = 256;
  /// Deterministic service-time model for one batch of n tuples:
  /// per_batch_overhead_s + n * per_tuple_s. The overhead is what
  /// micro-batching amortizes.
  double per_batch_overhead_s = 1e-3;
  double per_tuple_s = 5e-5;
  /// See the header comment; false for bit-identical generated schedules.
  bool flush_on_idle = true;
  /// Optional: batch service time is charged here under kServe. Borrowed.
  SimClock* clock = nullptr;

  // --- graceful degradation (DESIGN.md §12) ---
  // Snapshot resolution (ModelStore::GetSnapshot at batch close, the
  // FaultPlane point "serve.resolve") degrades in three layers: bounded
  // retry with exponential backoff, a per-model circuit breaker that
  // short-circuits resolves while failures persist, and a brownout mode
  // that answers from the last successfully resolved snapshot. kNotFound
  // is permanent (model never stored) and bypasses all three.
  /// Retries after the first failed resolve; each retry is preceded by a
  /// backoff charged to `clock` under kRetryBackoff.
  uint32_t resolve_max_retries = 2;
  double resolve_backoff_s = 1e-3;
  /// Backoff grows by this factor per retry (>= 1).
  double resolve_backoff_multiplier = 2.0;
  CircuitBreakerOptions breaker;
  /// Serve the last-good snapshot (possibly an older version — the
  /// hot-swap degradation story) when resolution fails; false fails the
  /// batch with the resolve error instead.
  bool enable_brownout = true;

  // --- canary lifecycle (DESIGN.md §13) ---
  // When the ModelStore has a canary staged for a batch's model id, the
  // scheduler routes a seeded fraction of batches (granularity: whole
  // micro-batches, so a batch is served by exactly one version) to the
  // candidate, pairs each canary batch's loss against the incumbent's loss
  // on the same tuples, feeds the outcome into a per-canary CircuitBreaker,
  // and — all on the deterministic virtual timeline — promotes the
  // candidate after `promote_after_batches` clean canary batches or aborts
  // it (auto-rollback) when the breach breaker trips. All knobs live in
  // the staged CanaryPolicy so every engine applies the same rules.
  /// Master switch: false ignores staged canaries entirely (the incumbent
  /// serves 100% of traffic).
  bool serve_canary = true;
};

struct ServeRequest {
  Tuple tuple;
  std::string model_id;
  /// Arrival stamp on the engine's virtual timeline (simulated seconds).
  /// Schedules are generated, not wall-clock (see workload.h).
  double arrival_s = 0.0;
  /// Fail with kDeadlineExceeded if service has not *started* within this
  /// many simulated seconds of arrival. 0 = no deadline.
  double deadline_s = 0.0;
  /// Cooperative cancellation; checked at admission and batch formation.
  CancellationToken token;
  /// Optional control hook, run on the scheduler thread when it processes
  /// this arrival (before any batching decision). Because the scheduler
  /// serializes arrivals in submission order, a side effect here — e.g. a
  /// ModelStore::Publish hot-swap drill — lands at a deterministic point
  /// in the timeline instead of racing batch formation from the submitter
  /// thread. Keep it cheap; it runs inside the batching loop.
  std::function<void()> on_arrival;
};

struct ServeReply {
  Status status;  ///< OK, or why the request was not served
  double value = 0.0;     ///< Model::Predict
  double loss = 0.0;      ///< Model::Loss
  bool correct = false;   ///< Model::Correct
  uint64_t model_version = 0;  ///< which hot-swap version served it
  double latency_s = 0.0;      ///< simulated completion − arrival
};

class InferenceEngine {
 public:
  /// `store` is borrowed and must outlive the engine.
  InferenceEngine(ModelStore* store, ServeOptions options);
  /// Drains if the caller has not; pending promises are always fulfilled.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Spawns the scheduler thread and worker loops. Call once.
  Status Start();

  /// Thread-safe; callable from any number of session threads. The reply
  /// arrives through the returned future (possibly with a non-OK status:
  /// kResourceExhausted when shed, kDeadlineExceeded, kCancelled, ...).
  /// Blocks only for intake-channel flow control, never on service time.
  std::future<ServeReply> Submit(ServeRequest req);

  /// Closes intake, waits until every submitted request has been answered
  /// and all threads have stopped. Idempotent.
  Status Drain();

  /// Snapshot; stable after Drain().
  ServeStats stats() const;

  const ServeOptions& options() const { return options_; }

 private:
  struct Pending {
    ServeRequest req;
    std::promise<ServeReply> promise;
  };
  struct Batch {
    std::shared_ptr<const Model> model;
    std::string model_id;
    uint64_t version = 0;
    /// Dispatch sequence number; keys the worker's quality report so
    /// Finalize can fold contributions in a deterministic order.
    uint64_t seq = 0;
    /// Served by a staged canary candidate instead of the incumbent.
    bool canary = false;
    double completion_s = 0.0;
    /// Admitted tuples packed into one arena; row i belongs to items[i].
    /// Workers evaluate the whole batch with Model::BatchEvaluate instead
    /// of per-item Predict/Loss/Correct calls.
    TupleBatch tuples;
    std::vector<Pending> items;
  };

  void SchedulerLoop();
  void ProcessArrival(Pending&& p);
  /// Dispatches the open batch; `close_s` is the simulated close time.
  void CloseOpenBatch(double close_s, bool by_deadline);
  void WorkerLoop();
  void Fail(Pending&& p, Status status);
  /// Resolves the snapshot serving the open batch, applying the breaker /
  /// bounded-retry layers (scheduler thread only). On success also updates
  /// the last-good map and resets the model's breaker on a version change.
  Result<ModelSnapshot> ResolveSnapshot(double close_s);
  /// Canary stage at batch close (scheduler thread only): seeded routing
  /// draw, paired candidate-vs-incumbent loss on the batch tuples, breach
  /// breaker, promote / auto-rollback. `incumbent` is the resolved current
  /// snapshot; on a canary draw *snapshot is replaced by the candidate.
  /// Returns true when the batch is served by the candidate.
  bool ApplyCanary(const ModelSnapshot& incumbent, const TupleBatch& tuples,
                   uint64_t served, double close_s, ModelSnapshot* snapshot);

  ModelStore* store_;
  const ServeOptions options_;

  Channel<Pending> intake_;
  Channel<Batch> batches_;
  ThreadPool pool_;
  std::thread scheduler_;
  std::vector<std::future<void>> worker_done_;
  bool started_ = false;
  bool drained_ = false;

  // --- scheduler-thread state (unsynchronized by design) ---
  double now_s_ = 0.0;  ///< virtual timeline, monotone
  std::vector<Pending> open_items_;
  std::string open_model_id_;
  double open_time_ = 0.0;
  std::vector<double> worker_free_s_;  ///< simulated service slots
  /// Dispatched batches whose service has not started yet at the current
  /// timeline position: (service_start_s, size). Front-pruned as arrivals
  /// advance time; the summed sizes are the modeled queue occupancy that
  /// admission control bounds.
  std::vector<std::pair<double, uint64_t>> backlog_;
  size_t backlog_head_ = 0;  ///< pruned prefix
  uint64_t backlog_count_ = 0;
  /// Per-model degradation state (ordered maps: the determinism linter
  /// forbids unordered iteration, and these are tiny).
  std::map<std::string, CircuitBreaker> breakers_;
  std::map<std::string, ModelSnapshot> last_good_;
  uint64_t next_batch_seq_ = 0;
  /// Per-model canary runtime: routing RNG, breach breaker, clean streak.
  /// Keyed by staged version so a re-staged candidate gets a cold start.
  struct CanaryRuntime {
    uint64_t version = 0;
    Rng rng;
    CircuitBreaker breaker{CircuitBreakerOptions{}};
    uint32_t clean_streak = 0;
  };
  std::map<std::string, CanaryRuntime> canaries_;

  mutable Mutex stats_mu_;
  ServeStatsBuilder stats_ CORGI_GUARDED_BY(stats_mu_);
};

}  // namespace corgipile
