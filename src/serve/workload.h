// Deterministic serving workloads: seeded Poisson arrival schedules and a
// closed-form driver that replays one against an InferenceEngine.
//
// The driver is the serving counterpart of the CorgiPile training runner:
// the arrival schedule is generated up front from (seed, rate) — never
// from the wall clock — so the engine's ServeStats for a given
// (schedule, ServeOptions, store) are bit-identical across reruns, which
// bench_serve_sweep and serve_test assert.

#pragma once

#include <string>
#include <vector>

#include "db/model_store.h"
#include "serve/inference_engine.h"
#include "serve/serve_stats.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace corgipile {

struct WorkloadOptions {
  uint64_t num_requests = 1000;
  /// Mean Poisson arrival rate (requests per simulated second).
  double offered_load_rps = 1000.0;
  uint64_t seed = 42;
  /// Per-request service-start deadline passed through to ServeRequest.
  /// 0 = none.
  double deadline_s = 0.0;
  /// Hot-swap drill: just before submitting request with this index,
  /// Publish() a clone of the model under the same id (version bump).
  /// In-flight batches must keep the old version and nothing may fail.
  /// 0 = no swap.
  uint64_t swap_at_request = 0;
};

/// `n` nondecreasing arrival stamps with Exp(rate) interarrival gaps,
/// deterministic in `seed`.
std::vector<double> PoissonSchedule(uint64_t n, double rate_rps,
                                    uint64_t seed);

/// Reply-side tallies, accumulated from the futures independently of the
/// engine's own ServeStats — a cross-check that promises and stats agree.
struct WorkloadResult {
  ServeStats stats;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t expired = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;  ///< any other non-OK reply
  /// Distinct model versions observed among OK replies (hot-swap ⇒ ≥ 2).
  uint64_t versions_seen = 0;
};

/// Builds an engine over `store` (flush_on_idle forced off — generated
/// schedules drive all timing), submits `num_requests` requests against
/// `model_id` cycling through `tuples`, drains, and reconciles replies
/// against the engine stats.
Result<WorkloadResult> RunGeneratedWorkload(ModelStore* store,
                                            const std::string& model_id,
                                            const std::vector<Tuple>& tuples,
                                            ServeOptions serve,
                                            const WorkloadOptions& workload);

}  // namespace corgipile
