#include "serve/inference_engine.h"

#include <algorithm>
#include <utility>

#include "iosim/fault_plane.h"

namespace corgipile {

namespace {

/// Does `t`'s feature space fit a model built for `model.input_dim()`
/// inputs? (0 = unknown dimensionality, accept.) Guards the Dot() contract
/// instead of reading past the weight vector.
bool TupleFits(const Tuple& t, const Model& model) {
  const uint32_t dim = model.input_dim();
  if (dim == 0) return true;
  if (t.sparse()) return t.feature_keys.empty() || t.feature_keys.back() < dim;
  return t.nnz() <= dim;
}

/// Blocking push that leaves `p` intact when the channel refuses it, so
/// the caller can still fulfill the promise with the failure.
template <typename T>
Status PushBlocking(Channel<T>& ch, T& p) {
  for (;;) {
    auto pushed = ch.TryPush(p);
    if (!pushed.ok()) return pushed.status();
    if (*pushed) return Status::OK();
    CORGI_RETURN_NOT_OK(ch.WaitWritable());
  }
}

}  // namespace

InferenceEngine::InferenceEngine(ModelStore* store, ServeOptions options)
    : store_(store),
      options_(std::move(options)),
      intake_(std::max<uint64_t>(
          64, options_.max_queue_depth == 0 ? 1024
                                            : 2 * options_.max_queue_depth)),
      batches_(2 * std::max<uint32_t>(1, options_.num_workers)),
      pool_(std::max<uint32_t>(1, options_.num_workers)),
      worker_free_s_(std::max<uint32_t>(1, options_.num_workers), 0.0) {
  // Chaos hook: scripted send failures on the scheduler→worker channel
  // surface as per-item errors, never as wrong answers (tests/chaos_test).
  batches_.set_chaos_point("channel.serve.batches");
}

InferenceEngine::~InferenceEngine() {
  // Destructor cannot propagate the Status; Drain() here only exists to
  // fulfill pending promises, and its failure modes (never started /
  // already drained) are exactly the states the guard excludes.
  if (started_ && !drained_) (void)Drain();
}

Status InferenceEngine::Start() {
  if (started_) return Status::Internal("InferenceEngine started twice");
  started_ = true;
  scheduler_ = std::thread([this] { SchedulerLoop(); });
  const size_t workers = worker_free_s_.size();
  worker_done_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    worker_done_.push_back(pool_.Submit([this] { WorkerLoop(); }));
  }
  return Status::OK();
}

std::future<ServeReply> InferenceEngine::Submit(ServeRequest req) {
  Pending p;
  p.req = std::move(req);
  std::future<ServeReply> fut = p.promise.get_future();
  Status st = PushBlocking(intake_, p);
  if (!st.ok()) Fail(std::move(p), std::move(st));
  return fut;
}

Status InferenceEngine::Drain() {
  if (!started_) return Status::Internal("InferenceEngine never started");
  if (drained_) return Status::OK();
  drained_ = true;
  intake_.Close();
  if (scheduler_.joinable()) scheduler_.join();
  for (auto& done : worker_done_) done.wait();
  return Status::OK();
}

ServeStats InferenceEngine::stats() const {
  MutexLock lock(stats_mu_);
  return stats_.Finalize();
}

void InferenceEngine::Fail(Pending&& p, Status status) {
  ServeReply reply;
  reply.status = std::move(status);
  p.promise.set_value(std::move(reply));
}

void InferenceEngine::SchedulerLoop() {
  for (;;) {
    Pending p;
    if (options_.flush_on_idle && !open_items_.empty()) {
      auto popped = intake_.TryPop(&p);
      if (!popped.ok()) break;  // cancelled; open batch failed below
      if (!*popped) {
        if (intake_.closed()) break;  // final flush below
        // Idle: no session is waiting to join this batch — the deadline
        // effectively expires now.
        CloseOpenBatch(now_s_, /*by_deadline=*/true);
        continue;
      }
    } else {
      auto popped = intake_.Pop(&p);
      if (!popped.ok() || !*popped) break;
    }
    ProcessArrival(std::move(p));
  }
  // End of stream: the open batch waits out its deadline with no further
  // arrivals to fill it.
  if (!open_items_.empty()) {
    CloseOpenBatch(options_.flush_on_idle
                       ? now_s_
                       : open_time_ + options_.batch_deadline_s,
                   /*by_deadline=*/true);
  }
  batches_.Close();
}

void InferenceEngine::ProcessArrival(Pending&& p) {
  if (p.req.on_arrival) p.req.on_arrival();
  const double arrival = std::max(p.req.arrival_s, 0.0);
  now_s_ = std::max(now_s_, arrival);
  {
    MutexLock lock(stats_mu_);
    stats_.RecordArrival(arrival);
  }

  // A deadline that fell before this arrival closed the open batch first.
  if (!open_items_.empty() &&
      arrival > open_time_ + options_.batch_deadline_s) {
    CloseOpenBatch(open_time_ + options_.batch_deadline_s,
                   /*by_deadline=*/true);
  }

  if (p.req.token.cancelled()) {
    {
      MutexLock lock(stats_mu_);
      stats_.RecordCancelled();
    }
    Fail(std::move(p), p.req.token.status());
    return;
  }

  // Admission control against the modeled queue: requests whose service
  // has not started by `arrival` plus the open batch.
  while (backlog_head_ < backlog_.size() &&
         backlog_[backlog_head_].first <= arrival) {
    backlog_count_ -= backlog_[backlog_head_].second;
    ++backlog_head_;
  }
  if (backlog_head_ > 64 && backlog_head_ * 2 > backlog_.size()) {
    backlog_.erase(backlog_.begin(),
                   backlog_.begin() + static_cast<ptrdiff_t>(backlog_head_));
    backlog_head_ = 0;
  }
  const uint64_t occupancy = backlog_count_ + open_items_.size();
  if (options_.max_queue_depth > 0 &&
      occupancy >= options_.max_queue_depth) {
    {
      MutexLock lock(stats_mu_);
      stats_.RecordShed();
    }
    Fail(std::move(p),
         Status::ResourceExhausted(
             "serve queue full (" + std::to_string(occupancy) + " waiting)"));
    return;
  }

  // Batches are per model id; a switch closes the open batch early.
  if (!open_items_.empty() && p.req.model_id != open_model_id_) {
    CloseOpenBatch(arrival, /*by_deadline=*/false);
  }
  if (open_items_.empty()) {
    open_model_id_ = p.req.model_id;
    open_time_ = arrival;
  }
  open_items_.push_back(std::move(p));
  if (open_items_.size() >= options_.max_batch) {
    CloseOpenBatch(arrival, /*by_deadline=*/false);
  }
}

Result<ModelSnapshot> InferenceEngine::ResolveSnapshot(double close_s) {
  CircuitBreaker& breaker =
      breakers_.try_emplace(open_model_id_, options_.breaker).first->second;

  if (!breaker.AllowRequest(close_s)) {
    MutexLock lock(stats_mu_);
    stats_.RecordBreakerShortCircuit();
    return Status::ResourceExhausted("circuit breaker open for model '" +
                                     open_model_id_ + "'");
  }

  double backoff = options_.resolve_backoff_s;
  Status last = Status::OK();
  for (uint32_t attempt = 0;; ++attempt) {
    Result<ModelSnapshot> snap = [&]() -> Result<ModelSnapshot> {
      CORGI_INJECT_POINT("serve.resolve");
      return store_->GetSnapshot(open_model_id_);
    }();
    if (snap.ok()) {
      // A re-published model deserves a cold breaker: stale failures from
      // the previous version must not trip against the new one.
      auto prev = last_good_.find(open_model_id_);
      if (prev != last_good_.end() &&
          prev->second.version != snap.ValueOrDie().version) {
        breaker.Reset();
      }
      breaker.RecordSuccess();
      last_good_[open_model_id_] = snap.ValueOrDie();
      return snap;
    }
    // kNotFound is permanent (the model was never stored): no amount of
    // retrying or tripping helps, and brownout would serve a ghost.
    if (snap.status().IsNotFound()) return snap;
    last = snap.status();
    const uint64_t opens_before = breaker.opens();
    breaker.RecordFailure(close_s);
    if (breaker.opens() != opens_before) {
      MutexLock lock(stats_mu_);
      stats_.RecordBreakerOpen();
    }
    if (attempt >= options_.resolve_max_retries ||
        breaker.state() != CircuitBreaker::State::kClosed) {
      break;
    }
    {
      MutexLock lock(stats_mu_);
      stats_.RecordResolveRetry();
    }
    if (options_.clock != nullptr) {
      options_.clock->Advance(TimeCategory::kRetryBackoff, backoff);
    }
    backoff *= std::max(1.0, options_.resolve_backoff_multiplier);
  }
  return last;
}

bool InferenceEngine::ApplyCanary(const ModelSnapshot& incumbent,
                                  const TupleBatch& tuples, uint64_t served,
                                  double close_s, ModelSnapshot* snapshot) {
  if (!options_.serve_canary) return false;
  std::optional<CanarySnapshot> staged = store_->GetCanary(open_model_id_);
  if (!staged.has_value()) {
    // Promoted, aborted, or never staged: drop any stale runtime so a
    // future candidate starts cold.
    canaries_.erase(open_model_id_);
    return false;
  }
  const CanaryPolicy& policy = staged->policy;
  auto it = canaries_.find(open_model_id_);
  if (it == canaries_.end() || it->second.version != staged->version) {
    // Fresh candidate (or a re-stage burned the old one): cold routing RNG
    // and breach breaker, both derived from the staged policy so every
    // engine run makes identical decisions.
    if (it != canaries_.end()) canaries_.erase(it);
    CircuitBreakerOptions bopts;
    bopts.window = policy.breaker_window;
    bopts.min_samples = policy.breaker_min_samples;
    bopts.error_threshold = policy.breaker_error_threshold;
    it = canaries_
             .emplace(open_model_id_,
                      CanaryRuntime{staged->version, Rng(policy.seed),
                                    CircuitBreaker(bopts), 0})
             .first;
  }
  CanaryRuntime& rt = it->second;
  // One seeded draw per batch: whole micro-batches route to exactly one
  // version, so a request's reply never mixes versions.
  if (rt.rng.NextDouble() >= policy.fraction) return false;

  // Paired quality: candidate vs incumbent loss over the *same* tuples,
  // computed synchronously on the scheduler thread so the breach/promote
  // decision sequence is a pure function of the schedule.
  double candidate_loss = 0.0;
  double incumbent_loss = 0.0;
  staged->model->BatchLoss(tuples, &candidate_loss);
  incumbent.model->BatchLoss(tuples, &incumbent_loss);
  const bool breach =
      candidate_loss >
      incumbent_loss * (1.0 + policy.loss_tolerance) + 1e-12;

  {
    MutexLock lock(stats_mu_);
    stats_.RecordCanaryBatch(served);
    if (breach) stats_.RecordCanaryBreach();
  }

  // The breach breaker turns per-batch outcomes into the trip decision.
  // AllowRequest only advances the Open→HalfOpen timer; a tripped canary
  // is aborted below, so short-circuiting never applies here.
  (void)rt.breaker.AllowRequest(close_s);
  if (breach) {
    rt.clean_streak = 0;
    rt.breaker.RecordFailure(close_s);
  } else {
    rt.breaker.RecordSuccess();
    ++rt.clean_streak;
  }

  // This batch is already the candidate's (its answers are well-formed,
  // just possibly lower-quality); the decisions below only steer *future*
  // traffic.
  *snapshot = ModelSnapshot{staged->model, staged->version};

  if (breach && policy.auto_rollback &&
      rt.breaker.state() != CircuitBreaker::State::kClosed) {
    // Trip: the candidate regressed on enough paired batches. Abort so the
    // incumbent resumes 100% of traffic. A failed abort (chaos-injected)
    // leaves the runtime in place and retries on the next canary batch.
    if (store_->AbortCanary(open_model_id_).ok()) {
      MutexLock lock(stats_mu_);
      stats_.RecordCanaryRollback();
      canaries_.erase(open_model_id_);
    }
    return true;
  }
  if (!breach && policy.promote_after_batches > 0 &&
      rt.clean_streak >= policy.promote_after_batches) {
    if (store_->PromoteCanary(open_model_id_).ok()) {
      MutexLock lock(stats_mu_);
      stats_.RecordCanaryPromotion();
      canaries_.erase(open_model_id_);
    }
  }
  return true;
}

void InferenceEngine::CloseOpenBatch(double close_s, bool by_deadline) {
  if (open_items_.empty()) return;
  std::vector<Pending> items = std::move(open_items_);
  open_items_.clear();

  // Hot-swap boundary: the snapshot resolved here serves the whole batch,
  // even if a Publish() lands before the batch executes.
  bool brownout = false;
  auto snapshot = ResolveSnapshot(close_s);
  if (!snapshot.ok()) {
    // Brownout: answer from the last snapshot that did resolve — an older
    // version is still a *correct* model, just possibly stale, which beats
    // shedding the batch.
    auto good = last_good_.find(open_model_id_);
    if (options_.enable_brownout && !snapshot.status().IsNotFound() &&
        good != last_good_.end()) {
      snapshot = good->second;
      brownout = true;
    } else {
      MutexLock lock(stats_mu_);
      for (auto& item : items) {
        stats_.RecordFailed();
        Fail(std::move(item), snapshot.status());
      }
      return;
    }
  }

  // First-free simulated service slot (ties → lowest index).
  const size_t w = static_cast<size_t>(
      std::min_element(worker_free_s_.begin(), worker_free_s_.end()) -
      worker_free_s_.begin());
  const double start_s = std::max(close_s, worker_free_s_[w]);

  std::vector<Pending> run;
  run.reserve(items.size());
  for (auto& item : items) {
    if (item.req.token.cancelled()) {
      MutexLock lock(stats_mu_);
      stats_.RecordCancelled();
      Fail(std::move(item), item.req.token.status());
      continue;
    }
    if (item.req.deadline_s > 0.0 &&
        start_s - item.req.arrival_s > item.req.deadline_s) {
      MutexLock lock(stats_mu_);
      stats_.RecordExpired();
      Fail(std::move(item),
           Status::DeadlineExceeded(
               "request queued past its " +
               std::to_string(item.req.deadline_s) + "s deadline"));
      continue;
    }
    if (!TupleFits(item.req.tuple, *snapshot->model)) {
      MutexLock lock(stats_mu_);
      stats_.RecordFailed();
      Fail(std::move(item),
           Status::InvalidArgument(
               "tuple features exceed model '" + open_model_id_ +
               "' input_dim=" +
               std::to_string(snapshot->model->input_dim())));
      continue;
    }
    run.push_back(std::move(item));
  }
  if (run.empty()) return;  // nothing survived; no service slot consumed

  // Pack the arena before the canary stage: paired quality evaluation
  // needs the batched tuples.
  Batch batch;
  batch.model_id = open_model_id_;
  batch.tuples.set_target_tuples(run.size());
  for (const Pending& item : run) batch.tuples.Append(item.req.tuple);

  // Canary routing (DESIGN.md §13). A brownout batch never canaries: it is
  // already serving degraded, and its "incumbent" is a stale snapshot.
  ModelSnapshot serving = snapshot.ValueOrDie();
  bool canary = false;
  if (!brownout) {
    canary =
        ApplyCanary(snapshot.ValueOrDie(), batch.tuples, run.size(), close_s,
                    &serving);
  }

  const double service_s =
      options_.per_batch_overhead_s +
      static_cast<double>(run.size()) * options_.per_tuple_s;
  const double completion_s = start_s + service_s;
  worker_free_s_[w] = completion_s;
  backlog_.emplace_back(start_s, run.size());
  backlog_count_ += run.size();
  if (options_.clock != nullptr) {
    options_.clock->Advance(TimeCategory::kServe, service_s);
  }
  {
    MutexLock lock(stats_mu_);
    stats_.RecordBatch(run.size(), by_deadline, service_s);
    if (brownout) stats_.RecordBrownoutBatch(run.size());
    for (const Pending& item : run) {
      stats_.RecordCompletion(open_model_id_, serving.version,
                              completion_s - item.req.arrival_s,
                              completion_s);
    }
  }

  batch.model = serving.model;
  batch.version = serving.version;
  batch.seq = next_batch_seq_++;
  batch.canary = canary;
  batch.completion_s = completion_s;
  batch.items = std::move(run);
  Status st = PushBlocking(batches_, batch);
  if (!st.ok()) {
    for (auto& item : batch.items) Fail(std::move(item), st);
  }
}

void InferenceEngine::WorkerLoop() {
  std::vector<double> values;
  std::vector<double> losses;
  std::vector<uint8_t> corrects;
  for (;;) {
    Batch batch;
    auto popped = batches_.Pop(&batch);
    if (!popped.ok() || !*popped) return;
    const size_t n = batch.items.size();
    values.resize(n);
    losses.resize(n);
    corrects.resize(n);
    // One batched kernel call per micro-batch; BatchEvaluate is const and
    // thread-safe on the shared snapshot.
    batch.model->BatchEvaluate(batch.tuples, values.data(), losses.data(),
                               corrects.data());
    // Per-version quality: summed row-major here (deterministic within the
    // batch), folded in dispatch order by ServeStatsBuilder::Finalize so
    // worker interleaving never changes the totals.
    uint64_t correct_count = 0;
    double loss_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      correct_count += corrects[i] != 0 ? 1 : 0;
      loss_sum += losses[i];
    }
    {
      MutexLock lock(stats_mu_);
      stats_.RecordBatchQuality(batch.seq, batch.model_id, batch.version, n,
                                correct_count, loss_sum);
    }
    for (size_t i = 0; i < n; ++i) {
      ServeReply reply;
      reply.value = values[i];
      reply.loss = losses[i];
      reply.correct = corrects[i] != 0;
      reply.model_version = batch.version;
      reply.latency_s = batch.completion_s - batch.items[i].req.arrival_s;
      batch.items[i].promise.set_value(std::move(reply));
    }
  }
}

}  // namespace corgipile
