// Per-model circuit breaker for the serving path (DESIGN.md §12).
//
// Classic three-state breaker driven entirely by the inference engine's
// *simulated* timeline, so its decisions are a pure function of the
// resolve outcomes and their virtual timestamps — bit-identical across
// reruns of the same chaos scenario.
//
//   Closed   — resolves flow through; a sliding window of recent outcomes
//              is tracked. Once the window holds >= min_samples outcomes
//              and the failure fraction reaches error_threshold, the
//              breaker trips to Open.
//   Open     — resolves are short-circuited (no ModelStore call, no retry
//              budget burned) until cooldown_s simulated seconds pass.
//   HalfOpen — after the cooldown, exactly one probe resolve is allowed:
//              success closes the breaker (window cleared), failure
//              re-opens it for another cooldown.
//
// Concurrency: confined to the engine's single scheduler thread, like the
// rest of the batching state — no locks by design (inference_engine.h).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace corgipile {

struct CircuitBreakerOptions {
  /// Sliding window of recent resolve outcomes the trip decision reads.
  uint32_t window = 8;
  /// Never trip before the window holds this many outcomes (avoids opening
  /// on the first failure of a cold breaker).
  uint32_t min_samples = 4;
  /// Trip when failures / window_size >= this fraction.
  double error_threshold = 0.5;
  /// Simulated seconds to stay Open before allowing the HalfOpen probe.
  double cooldown_s = 0.05;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options);

  /// May a resolve be attempted at simulated time `now_s`? Transitions
  /// Open → HalfOpen once the cooldown has elapsed (the allowed call is
  /// the probe). The caller must report the attempt's outcome via
  /// RecordSuccess/RecordFailure before asking again.
  bool AllowRequest(double now_s);

  /// Outcome of an allowed resolve attempt. RecordFailure may trip the
  /// breaker (observable via opens()).
  void RecordSuccess();
  void RecordFailure(double now_s);

  /// Forgets all history (e.g. when the model was re-published — the new
  /// version deserves a cold start).
  void Reset();

  State state() const { return state_; }
  /// Cumulative Closed/HalfOpen → Open transitions.
  uint64_t opens() const { return opens_; }

 private:
  bool WindowTrips() const;

  const CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  /// Ring buffer of the last `window` outcomes (true = failure).
  std::vector<bool> outcomes_;
  size_t next_slot_ = 0;
  size_t filled_ = 0;
  double opened_at_s_ = 0.0;
  uint64_t opens_ = 0;
};

}  // namespace corgipile
