#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace corgipile {

namespace {

/// Nearest-rank percentile over a sorted sample vector.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const size_t idx =
      static_cast<size_t>(std::max(1.0, rank)) - 1;  // 1-based → 0-based
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

std::string ServeStats::ToString() const {
  std::ostringstream os;
  os << "completed=" << completed << "/" << submitted << " shed=" << shed
     << " expired=" << expired << " cancelled=" << cancelled
     << " failed=" << failed << "; batches=" << num_batches
     << " (occupancy " << mean_batch_occupancy << ", max " << max_batch_size
     << "); p50=" << latency.p50 * 1e3 << "ms p95=" << latency.p95 * 1e3
     << "ms p99=" << latency.p99 * 1e3 << "ms; throughput="
     << throughput_rps << " req/s";
  if (hedged_retries + breaker_opens + breaker_short_circuits +
          brownout_batches >
      0) {
    os << "; degradation: retries=" << hedged_retries
       << " breaker_opens=" << breaker_opens
       << " short_circuits=" << breaker_short_circuits
       << " brownout=" << brownout_served << " req in " << brownout_batches
       << " batches";
  }
  if (canary_batches + canary_promotions + canary_rollbacks > 0) {
    os << "; canary: " << canary_served << " req in " << canary_batches
       << " batches, breaches=" << canary_breaches
       << " promotions=" << canary_promotions
       << " rollbacks=" << canary_rollbacks;
  }
  if (!served_by_version.empty()) {
    os << "; versions:";
    for (const auto& [id, per_version] : served_by_version) {
      for (const auto& [version, count] : per_version) {
        os << " " << id << "@v" << version << "=" << count;
      }
    }
  }
  return os.str();
}

void ServeStatsBuilder::RecordArrival(double arrival_s) {
  ++stats_.submitted;
  if (!saw_arrival_ || arrival_s < stats_.first_arrival_s) {
    stats_.first_arrival_s = arrival_s;
  }
  saw_arrival_ = true;
}

void ServeStatsBuilder::RecordBatch(uint64_t size, bool closed_by_deadline,
                                    double service_s) {
  ++stats_.num_batches;
  batch_size_sum_ += size;
  stats_.max_batch_size = std::max(stats_.max_batch_size, size);
  if (closed_by_deadline) {
    ++stats_.deadline_closes;
  } else {
    ++stats_.full_closes;
  }
  stats_.service_busy_s += service_s;
}

void ServeStatsBuilder::RecordCompletion(const std::string& model_id,
                                         uint64_t version, double latency_s,
                                         double completion_s) {
  ++stats_.completed;
  latencies_.push_back(latency_s);
  stats_.last_completion_s = std::max(stats_.last_completion_s, completion_s);
  ++stats_.served_by_version[model_id][version];
}

void ServeStatsBuilder::RecordBatchQuality(uint64_t seq,
                                           const std::string& model_id,
                                           uint64_t version, uint64_t served,
                                           uint64_t correct, double loss_sum) {
  PendingQuality& q = pending_quality_[seq];
  q.model_id = model_id;
  q.version = version;
  q.served = served;
  q.correct = correct;
  q.loss_sum = loss_sum;
}

ServeStats ServeStatsBuilder::Finalize() const {
  ServeStats out = stats_;
  for (const auto& [seq, q] : pending_quality_) {
    VersionQuality& dst = out.quality_by_version[q.model_id][q.version];
    dst.served += q.served;
    dst.correct += q.correct;
    dst.loss_sum += q.loss_sum;
  }
  if (out.num_batches > 0) {
    out.mean_batch_occupancy = static_cast<double>(batch_size_sum_) /
                               static_cast<double>(out.num_batches);
  }
  if (out.completed > 0) {
    std::vector<double> sorted = latencies_;
    std::sort(sorted.begin(), sorted.end());
    out.latency.p50 = Percentile(sorted, 0.50);
    out.latency.p95 = Percentile(sorted, 0.95);
    out.latency.p99 = Percentile(sorted, 0.99);
    out.latency.max = sorted.back();
    double sum = 0.0;
    for (double v : sorted) sum += v;
    out.latency.mean = sum / static_cast<double>(sorted.size());
    out.makespan_s = out.last_completion_s - out.first_arrival_s;
    if (out.makespan_s > 0.0) {
      out.throughput_rps =
          static_cast<double>(out.completed) / out.makespan_s;
    }
  }
  return out;
}

}  // namespace corgipile
