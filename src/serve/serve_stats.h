// Serving-side statistics: request accounting, simulated latency
// percentiles, batch occupancy, shed rate, and per-model-version traffic
// attribution.
//
// All times are *simulated* seconds on the inference engine's virtual
// timeline (see inference_engine.h). Because the timeline is advanced only
// by the single-threaded batching scheduler from generated arrival
// schedules, every field here is a pure function of (schedule, options,
// store contents) — two runs over the same inputs produce bit-identical
// snapshots, which bench_serve_sweep asserts via operator==.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace corgipile {

/// Latency distribution summary over the completed requests, simulated
/// seconds, nearest-rank percentiles.
struct LatencySummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;

  bool operator==(const LatencySummary&) const = default;
};

/// Prediction-quality counters for one (model id, version): how much
/// traffic the version answered and how well. `loss_sum` is accumulated in
/// batch-dispatch order (ServeStatsBuilder keys pending contributions by
/// batch sequence number), so the floating-point total is bit-identical
/// across reruns even though worker threads report out of order.
struct VersionQuality {
  uint64_t served = 0;
  uint64_t correct = 0;
  double loss_sum = 0.0;

  double accuracy() const {
    return served ? static_cast<double>(correct) / served : 0.0;
  }
  double mean_loss() const {
    return served ? loss_sum / static_cast<double>(served) : 0.0;
  }

  bool operator==(const VersionQuality&) const = default;
};

/// Snapshot of one engine run (or one PREDICT BY statement).
struct ServeStats {
  // --- request accounting (submitted = sum of the rest) ---
  uint64_t submitted = 0;
  uint64_t completed = 0;   ///< executed and answered OK
  uint64_t shed = 0;        ///< rejected by admission control (queue full)
  uint64_t expired = 0;     ///< per-request deadline passed while queued
  uint64_t cancelled = 0;   ///< CancellationToken fired while queued
  uint64_t failed = 0;      ///< model missing / feature-dim mismatch

  // --- micro-batching ---
  uint64_t num_batches = 0;
  uint64_t max_batch_size = 0;
  uint64_t deadline_closes = 0;  ///< batches closed by batch_deadline
  uint64_t full_closes = 0;      ///< batches closed by reaching max_batch
  double mean_batch_occupancy = 0.0;

  // --- graceful degradation (DESIGN.md §12) ---
  uint64_t hedged_retries = 0;  ///< resolve retries after a failed attempt
  uint64_t breaker_opens = 0;   ///< circuit-breaker Closed/HalfOpen → Open
  /// Batches whose snapshot resolve was short-circuited by an Open breaker
  /// (no ModelStore call, no retry budget burned).
  uint64_t breaker_short_circuits = 0;
  uint64_t brownout_batches = 0;  ///< batches served from last-good snapshot
  uint64_t brownout_served = 0;   ///< requests answered in brownout mode

  // --- canary lifecycle (DESIGN.md §13) ---
  uint64_t canary_batches = 0;   ///< batches routed to a staged candidate
  uint64_t canary_served = 0;    ///< requests answered by the candidate
  uint64_t canary_breaches = 0;  ///< canary batches whose paired quality broke
  uint64_t canary_promotions = 0;  ///< engine promoted the candidate
  uint64_t canary_rollbacks = 0;   ///< breach breaker tripped → canary aborted

  // --- simulated timeline ---
  double first_arrival_s = 0.0;
  double last_completion_s = 0.0;
  double makespan_s = 0.0;        ///< last completion − first arrival
  double throughput_rps = 0.0;    ///< completed / makespan
  double service_busy_s = 0.0;    ///< summed batch service time (all workers)
  LatencySummary latency;

  /// Completed requests per (model id, version) — the hot-swap audit
  /// trail: a swap mid-run shows both versions with nonzero counts.
  std::map<std::string, std::map<uint64_t, uint64_t>> served_by_version;

  /// Prediction quality per (model id, version): the canary comparison
  /// input, and generally the per-version serving audit.
  std::map<std::string, std::map<uint64_t, VersionQuality>> quality_by_version;

  double shed_rate() const {
    return submitted ? static_cast<double>(shed) / submitted : 0.0;
  }

  bool operator==(const ServeStats&) const = default;

  /// One-line human summary ("completed=... p99=...ms shed=...%").
  std::string ToString() const;
};

/// Accumulates per-request observations on the scheduler thread and
/// finalizes percentiles. Not thread-safe; the engine serializes access.
class ServeStatsBuilder {
 public:
  void RecordArrival(double arrival_s);
  void RecordShed() { ++stats_.shed; }
  void RecordExpired() { ++stats_.expired; }
  void RecordCancelled() { ++stats_.cancelled; }
  void RecordFailed() { ++stats_.failed; }

  // Degradation accounting (CloseOpenBatch's resolve path).
  void RecordResolveRetry() { ++stats_.hedged_retries; }
  void RecordBreakerOpen() { ++stats_.breaker_opens; }
  void RecordBreakerShortCircuit() { ++stats_.breaker_short_circuits; }
  void RecordBrownoutBatch(uint64_t served) {
    ++stats_.brownout_batches;
    stats_.brownout_served += served;
  }

  // Canary lifecycle accounting (CloseOpenBatch's routing path).
  void RecordCanaryBatch(uint64_t served) {
    ++stats_.canary_batches;
    stats_.canary_served += served;
  }
  void RecordCanaryBreach() { ++stats_.canary_breaches; }
  void RecordCanaryPromotion() { ++stats_.canary_promotions; }
  void RecordCanaryRollback() { ++stats_.canary_rollbacks; }

  /// Quality contribution of dispatched batch `seq` (workers call this
  /// after executing the batch, in whatever order they finish; Finalize
  /// folds the contributions in `seq` order so loss sums are
  /// bit-identical).
  void RecordBatchQuality(uint64_t seq, const std::string& model_id,
                          uint64_t version, uint64_t served, uint64_t correct,
                          double loss_sum);

  /// One dispatched batch: per-request completion latencies are recorded
  /// by the caller via RecordCompletion.
  void RecordBatch(uint64_t size, bool closed_by_deadline, double service_s);
  void RecordCompletion(const std::string& model_id, uint64_t version,
                        double latency_s, double completion_s);

  /// Percentiles and rates computed; the builder can keep accumulating
  /// (Finalize is a pure snapshot).
  ServeStats Finalize() const;

 private:
  struct PendingQuality {
    std::string model_id;
    uint64_t version = 0;
    uint64_t served = 0;
    uint64_t correct = 0;
    double loss_sum = 0.0;
  };

  ServeStats stats_;
  bool saw_arrival_ = false;
  std::vector<double> latencies_;
  uint64_t batch_size_sum_ = 0;
  /// Batch-seq-ordered quality contributions, folded by Finalize.
  std::map<uint64_t, PendingQuality> pending_quality_;
};

}  // namespace corgipile
