#include "serve/workload.h"

#include <cmath>
#include <future>
#include <set>
#include <utility>

#include "util/rng.h"

namespace corgipile {

std::vector<double> PoissonSchedule(uint64_t n, double rate_rps,
                                    uint64_t seed) {
  std::vector<double> out;
  out.reserve(n);
  Rng rng(seed);
  double t = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    // Inverse-CDF exponential; 1−u keeps the argument in (0, 1].
    const double u = rng.NextDouble();
    t += -std::log(1.0 - u) / rate_rps;
    out.push_back(t);
  }
  return out;
}

Result<WorkloadResult> RunGeneratedWorkload(ModelStore* store,
                                            const std::string& model_id,
                                            const std::vector<Tuple>& tuples,
                                            ServeOptions serve,
                                            const WorkloadOptions& workload) {
  if (tuples.empty()) {
    return Status::InvalidArgument("workload needs at least one tuple");
  }
  if (workload.offered_load_rps <= 0.0) {
    return Status::InvalidArgument("offered_load_rps must be positive");
  }
  serve.flush_on_idle = false;  // timing comes from the generated schedule

  InferenceEngine engine(store, serve);
  CORGI_RETURN_NOT_OK(engine.Start());

  const std::vector<double> schedule = PoissonSchedule(
      workload.num_requests, workload.offered_load_rps, workload.seed);

  std::vector<std::future<ServeReply>> futures;
  futures.reserve(workload.num_requests);
  for (uint64_t i = 0; i < workload.num_requests; ++i) {
    ServeRequest req;
    req.tuple = tuples[i % tuples.size()];
    req.model_id = model_id;
    req.arrival_s = schedule[i];
    req.deadline_s = workload.deadline_s;
    if (workload.swap_at_request > 0 && i == workload.swap_at_request) {
      // Hot-swap drill, executed by the scheduler when it reaches this
      // arrival so the version split in served_by_version is a
      // deterministic function of the schedule (publishing from this
      // thread would race batch formation).
      req.on_arrival = [store, model_id] {
        auto snap = store->GetSnapshot(model_id);
        if (!snap.ok()) return;
        auto published = store->Publish(model_id, snap->model->Clone());
        (void)published;
      };
    }
    futures.push_back(engine.Submit(std::move(req)));
  }
  CORGI_RETURN_NOT_OK(engine.Drain());

  WorkloadResult result;
  std::set<uint64_t> versions;
  for (auto& fut : futures) {
    ServeReply reply = fut.get();
    if (reply.status.ok()) {
      ++result.ok;
      versions.insert(reply.model_version);
    } else if (reply.status.IsResourceExhausted()) {
      ++result.shed;
    } else if (reply.status.IsDeadlineExceeded()) {
      ++result.expired;
    } else if (reply.status.IsCancelled()) {
      ++result.cancelled;
    } else {
      ++result.failed;
    }
  }
  result.versions_seen = versions.size();
  result.stats = engine.stats();

  // The engine's accounting and the replies must tell the same story.
  if (result.ok != result.stats.completed ||
      result.shed != result.stats.shed ||
      result.expired != result.stats.expired) {
    return Status::Internal("serve stats disagree with delivered replies: " +
                            result.stats.ToString());
  }
  return result;
}

}  // namespace corgipile
