#include "session/workload.h"

#include <thread>

#include "db/database.h"
#include "serve/workload.h"
#include "session/session.h"

namespace corgipile {

uint64_t SessionSeedFor(uint64_t base_seed, size_t k) {
  // Golden-ratio spread keeps neighboring sessions' seeds far apart while
  // staying a pure function of (base_seed, k).
  return base_seed ^ (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(k) + 1));
}

std::vector<SessionRunReport> RunMultiSessionWorkload(
    Database* db, const std::vector<SessionScript>& scripts,
    const MultiSessionOptions& options) {
  std::vector<SessionRunReport> reports(scripts.size());
  // Open every session up front, on this thread, so ids are assigned in
  // script order and SHOW SESSIONS output is stable across runs.
  std::vector<std::unique_ptr<Session>> sessions;
  sessions.reserve(scripts.size());
  for (size_t k = 0; k < scripts.size(); ++k) {
    SessionOptions so;
    so.seed = SessionSeedFor(options.seed, k);
    so.label = scripts[k].label;
    sessions.push_back(db->CreateSession(so));

    reports[k].session_id = sessions[k]->id();
    reports[k].label = scripts[k].label;
    reports[k].session_seed = so.seed;
    reports[k].arrivals = PoissonSchedule(scripts[k].statements.size(),
                                          options.arrival_rate_rps, so.seed);
  }

  std::vector<std::thread> threads;
  threads.reserve(scripts.size());
  for (size_t k = 0; k < scripts.size(); ++k) {
    threads.emplace_back([&, k] {
      Session* session = sessions[k].get();
      SessionRunReport& report = reports[k];
      for (const std::string& sql : scripts[k].statements) {
        Result<std::string> out = session->Execute(sql);
        if (!out.ok()) {
          report.status = out.status();
          return;
        }
        report.outputs.push_back(std::move(out).ValueOrDie());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return reports;
}

}  // namespace corgipile
