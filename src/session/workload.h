// Seeded multi-session request loop (DESIGN.md §14).
//
// Drives N concurrent sessions against one Database, each replaying a
// scripted statement sequence. Arrival stamps come from the same seeded
// Poisson generator the serving bench uses (serve/workload.h) — recorded
// per statement for reporting, while execution itself is closed-loop (each
// session issues its next statement as soon as the previous one returns;
// no real sleeps), so runs are fast and the per-session outputs are
// deterministic in (scripts, seeds) alone.
//
// Session k gets seed derived from (base seed, k), so statements that omit
// seed= are reproducible per session and distinct across sessions.

#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace corgipile {

class Database;

struct MultiSessionOptions {
  /// Mean Poisson arrival rate for the recorded stamps (per sim-second).
  double arrival_rate_rps = 100.0;
  uint64_t seed = 42;
};

/// One session's scripted statement sequence.
struct SessionScript {
  std::string label;
  std::vector<std::string> statements;
};

struct SessionRunReport {
  uint64_t session_id = 0;
  std::string label;
  uint64_t session_seed = 0;
  /// One summary string per successfully executed statement.
  std::vector<std::string> outputs;
  /// Poisson arrival stamp per statement (simulated seconds).
  std::vector<double> arrivals;
  /// OK, or the first statement failure (execution stops there).
  Status status;
};

/// Deterministic per-session seed for script index `k` under `base_seed`.
uint64_t SessionSeedFor(uint64_t base_seed, size_t k);

/// Runs every script on its own session, one thread per session, all
/// concurrent against `db`. Returns one report per script, in script
/// order. Statement failures are recorded per report, never thrown across
/// sessions — a failing session does not stop its peers.
std::vector<SessionRunReport> RunMultiSessionWorkload(
    Database* db, const std::vector<SessionScript>& scripts,
    const MultiSessionOptions& options);

}  // namespace corgipile
