#include "session/session.h"

#include <sstream>

#include "db/database.h"
#include "iosim/fault_plane.h"

namespace corgipile {

Session::Session(Database* db, uint64_t id, SessionOptions options)
    : db_(db), id_(id), options_(std::move(options)),
      rng_(options_.seed ^ (0x5E55'0000 + id)),
      deadline_(options_.deadline_seconds > 0.0
                    ? Deadline(&db->clock(), options_.deadline_seconds)
                    : Deadline::Infinite()) {}

Session::~Session() { db_->UnregisterSession(this); }

void Session::Cancel(Status reason) { token_.Cancel(std::move(reason)); }

SessionStats Session::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

Status Session::Admit() {
  if (token_.cancelled()) return token_.status();
  return deadline_.Check("session " + std::to_string(id_) + " budget");
}

void Session::DefaultSeed(Params* params) const {
  if (!params->Has("seed")) {
    params->Set("seed", std::to_string(options_.seed));
  }
}

void Session::Account(uint64_t SessionStats::*counter, bool ok,
                      double sim_delta) {
  MutexLock lock(mu_);
  ++stats_.statements;
  ++(stats_.*counter);
  if (!ok) ++stats_.failed;
  stats_.sim_seconds += sim_delta;
}

Result<InDbTrainResult> Session::Train(const TrainStatement& stmt) {
  CORGI_RETURN_NOT_OK(Admit());
  TrainStatement seeded = stmt;
  DefaultSeed(&seeded.params);
  const double before = db_->clock().TotalElapsed();
  Result<InDbTrainResult> r = db_->Train(seeded);
  Account(&SessionStats::trains, r.ok(), db_->clock().TotalElapsed() - before);
  return r;
}

Result<InDbPredictResult> Session::Predict(const PredictStatement& stmt) {
  CORGI_RETURN_NOT_OK(Admit());
  const double before = db_->clock().TotalElapsed();
  Result<InDbPredictResult> r = db_->Predict(stmt);
  Account(&SessionStats::predicts, r.ok(),
          db_->clock().TotalElapsed() - before);
  return r;
}

Result<BinaryReport> Session::Evaluate(const EvaluateStatement& stmt) {
  CORGI_RETURN_NOT_OK(Admit());
  const double before = db_->clock().TotalElapsed();
  Result<BinaryReport> r = db_->EvaluateModel(stmt);
  Account(&SessionStats::evaluates, r.ok(),
          db_->clock().TotalElapsed() - before);
  return r;
}

Result<uint64_t> Session::Load(const LoadStatement& stmt) {
  CORGI_RETURN_NOT_OK(Admit());
  LoadStatement seeded = stmt;
  DefaultSeed(&seeded.params);
  const double before = db_->clock().TotalElapsed();
  Result<uint64_t> r = db_->Load(seeded);
  Account(&SessionStats::loads, r.ok(), db_->clock().TotalElapsed() - before);
  return r;
}

Status Session::Insert(const std::string& table,
                       const std::vector<Tuple>& tuples) {
  CORGI_RETURN_NOT_OK(Admit());
  const double before = db_->clock().TotalElapsed();
  Status st = db_->Insert(table, tuples);
  Account(&SessionStats::inserts, st.ok(),
          db_->clock().TotalElapsed() - before);
  return st;
}

Result<std::string> Session::Execute(const std::string& sql) {
  CORGI_INJECT_POINT("session.execute.begin");
  CORGI_ASSIGN_OR_RETURN(Statement stmt, ParseQuery(sql));
  std::ostringstream os;
  if (std::holds_alternative<ShowSessionsStatement>(stmt)) {
    // Introspection: not counted as a workload statement.
    const std::vector<SessionInfo> sessions = db_->DescribeSessions();
    os << sessions.size() << " session(s)";
    for (const SessionInfo& s : sessions) {
      os << "\nsession " << s.id;
      if (!s.label.empty()) os << " [" << s.label << "]";
      os << ": statements=" << s.stats.statements
         << " trains=" << s.stats.trains << " predicts=" << s.stats.predicts
         << " evaluates=" << s.stats.evaluates << " loads=" << s.stats.loads
         << " inserts=" << s.stats.inserts << " failed=" << s.stats.failed
         << " sim_seconds=" << s.stats.sim_seconds;
    }
    return os.str();
  }
  if (std::holds_alternative<LoadStatement>(stmt)) {
    const auto& load = std::get<LoadStatement>(stmt);
    CORGI_ASSIGN_OR_RETURN(uint64_t n, Load(load));
    os << "loaded " << n << " tuples into " << load.table_name;
    return os.str();
  }
  if (std::holds_alternative<RollbackStatement>(stmt)) {
    const auto& rb = std::get<RollbackStatement>(stmt);
    CORGI_RETURN_NOT_OK(Admit());
    Status st = db_->RollbackModel(rb);
    Account(&SessionStats::rollbacks, st.ok(), 0.0);
    CORGI_RETURN_NOT_OK(st);
    os << "rolled back model " << rb.model_id << " to version "
       << rb.version;
    return os.str();
  }
  if (std::holds_alternative<TrainStatement>(stmt)) {
    CORGI_ASSIGN_OR_RETURN(InDbTrainResult r,
                           Train(std::get<TrainStatement>(stmt)));
    if (r.lifecycle_state == "rejected") {
      os << "rejected candidate for model " << r.model_id << " ("
         << r.validation_reason << "); incumbent unchanged";
      return os.str();
    }
    if (r.lifecycle_state == "canary") {
      os << "staged canary " << r.model_id << " (candidate v"
         << r.canary_version << ")";
    } else {
      os << "trained model " << r.model_id;
      if (r.model_version > 1) os << " (v" << r.model_version << ")";
    }
    os << " in " << r.epochs.size()
       << " epochs; final metric " << r.final_metric << ", loss "
       << r.final_loss << "; simulated end-to-end "
       << r.end_to_end_double_seconds << "s (" << r.prep_seconds
       << "s prep)";
    if (r.total_quarantined_blocks > 0) {
      os << "; quarantined " << r.total_quarantined_blocks << " blocks ("
         << r.total_skipped_tuples << " tuples skipped)";
    }
  } else if (std::holds_alternative<PredictStatement>(stmt)) {
    CORGI_ASSIGN_OR_RETURN(InDbPredictResult r,
                           Predict(std::get<PredictStatement>(stmt)));
    os << "predicted " << r.count << " tuples; metric " << r.metric
       << ", mean loss " << r.mean_loss << "; served in "
       << r.serve.num_batches << " micro-batches (mean occupancy "
       << r.serve.mean_batch_occupancy << "), p50 "
       << r.serve.latency.p50 * 1e3 << "ms, p99 "
       << r.serve.latency.p99 * 1e3 << "ms";
  } else {
    CORGI_ASSIGN_OR_RETURN(BinaryReport r,
                           Evaluate(std::get<EvaluateStatement>(stmt)));
    os << "evaluated " << r.total() << " tuples; accuracy " << r.accuracy()
       << ", precision " << r.precision() << ", recall " << r.recall()
       << ", f1 " << r.f1() << ", auc " << r.auc;
  }
  return os.str();
}

}  // namespace corgipile
