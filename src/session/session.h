// Session: per-connection state for the multi-session engine
// (DESIGN.md §14).
//
// A Session owns everything one logical connection needs — a seeded RNG
// (forked per statement index so concurrent sessions never share a
// stream), default options, a cooperative cancellation token, an optional
// simulated-time deadline, and running statistics. Statement execution
// moved here from Database::Execute; the Database keeps a compat shim
// over an implicit default session (id 1, seed 42) so existing callers
// see identical behavior.
//
// Concurrency: each session is a single logical connection — callers run
// its statements from one thread at a time — but *different* sessions
// execute concurrently against the same Database with no global scan
// lock: reads go through table snapshots (storage/sharded_table.h), so a
// TRAIN never blocks a PREDICT. Stats are internally locked so SHOW
// SESSIONS may observe any session mid-statement.
//
// Determinism: statements that omit seed= default to the session's seed,
// and all shuffle/merge orders are pure functions of (seed, epoch). Model
// params, losses, and metrics are bit-identical across reruns for a given
// per-session statement sequence. Global SimClock totals are *not*
// per-session deterministic under concurrency (billing interleaves), so
// timing fields are excluded from reproducibility claims.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "db/query.h"
#include "db/run_result.h"
#include "ml/metrics.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/status.h"

namespace corgipile {

class Database;
struct InDbPredictResult;

struct SessionOptions {
  /// Default seed for statements that omit seed=. The implicit default
  /// session uses 42, matching the pre-session engine defaults.
  uint64_t seed = 42;
  /// Free-form tag shown by SHOW SESSIONS.
  std::string label;
  /// Simulated-seconds budget for the whole session; 0 = unlimited.
  double deadline_seconds = 0.0;
};

struct SessionStats {
  uint64_t statements = 0;
  uint64_t trains = 0;
  uint64_t predicts = 0;
  uint64_t evaluates = 0;
  uint64_t loads = 0;
  uint64_t inserts = 0;
  uint64_t rollbacks = 0;
  uint64_t failed = 0;
  /// Simulated seconds consumed while this session's statements ran
  /// (global-clock deltas; overlapping sessions may double-count).
  double sim_seconds = 0.0;
};

/// One row of SHOW SESSIONS / Database::DescribeSessions.
struct SessionInfo {
  uint64_t id = 0;
  std::string label;
  SessionStats stats;
};

class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }
  const SessionOptions& options() const { return options_; }
  const CancellationToken& token() const { return token_; }

  /// Parses and runs one statement; returns a printable summary. The
  /// session's seed fills in for an omitted seed=, statements are counted
  /// into stats(), and a cancelled token or expired deadline fails the
  /// statement before any work happens.
  Result<std::string> Execute(const std::string& sql);

  // Typed statement entry points (same counting/cancellation/seed rules).
  Result<InDbTrainResult> Train(const TrainStatement& stmt);
  Result<InDbPredictResult> Predict(const PredictStatement& stmt);
  Result<BinaryReport> Evaluate(const EvaluateStatement& stmt);
  Result<uint64_t> Load(const LoadStatement& stmt);
  Status Insert(const std::string& table, const std::vector<Tuple>& tuples);

  /// Cooperatively cancels the session: every subsequent (and in-flight,
  /// at its next check) statement fails with `reason`.
  void Cancel(Status reason = Status::Cancelled("session cancelled"));

  SessionStats stats() const;

 private:
  friend class Database;

  Session(Database* db, uint64_t id, SessionOptions options);

  /// Pre-statement gate: cancellation, deadline. Returns the failure.
  Status Admit();
  /// Applies the session-seed default to a statement's params in place.
  void DefaultSeed(Params* params) const;
  /// Post-statement accounting (under mu_).
  void Account(uint64_t SessionStats::*counter, bool ok, double sim_delta);

  Database* db_;
  const uint64_t id_;
  const SessionOptions options_;
  Rng rng_;
  CancellationToken token_;
  Deadline deadline_;

  mutable Mutex mu_;
  SessionStats stats_ CORGI_GUARDED_BY(mu_);
};

}  // namespace corgipile
