#include "dataloader/distributed.h"

#include <algorithm>
#include <atomic>
#include <string>

#include "dataloader/data_loader.h"
#include "util/timer.h"

namespace corgipile {

const char* WorkerFailurePolicyToString(WorkerFailurePolicy policy) {
  switch (policy) {
    case WorkerFailurePolicy::kFailFast: return "fail_fast";
    case WorkerFailurePolicy::kDropAndRescale: return "drop_and_rescale";
    case WorkerFailurePolicy::kWait: return "wait";
  }
  return "?";
}

namespace {

/// Supervisor-side view of one worker. Written by the supervisor thread
/// and (heartbeat only) by the worker's own pool task; the ParallelFor
/// barrier orders those writes before the supervisor reads them.
struct WorkerState {
  bool active = true;
  Status status;  ///< sticky: the error that dropped/failed the worker
  uint64_t heartbeat_steps = 0;
  double epoch_sim_seconds = 0.0;  ///< attributed this epoch (deterministic)
  double total_sim_seconds = 0.0;
};

}  // namespace

Result<TrainResult> TrainDistributed(Model* model, BlockSource* source,
                                     const DistributedTrainerOptions& options) {
  if (model == nullptr || source == nullptr) {
    return Status::InvalidArgument("null model or source");
  }
  const uint32_t P = std::max<uint32_t>(1, options.num_workers);
  if (options.global_batch_size < P) {
    return Status::InvalidArgument("global batch smaller than worker count");
  }
  const uint32_t microbatch = options.global_batch_size / P;
  const bool deadline_enabled = options.clock != nullptr &&
                                options.straggler_deadline_sim_seconds > 0.0;
  // Supervision accounting (kStragglerWait) is only charged when a
  // supervision knob is on, so default runs keep the legacy time model.
  const bool supervised =
      options.failure_policy != WorkerFailurePolicy::kFailFast ||
      deadline_enabled;

  // Per-worker datasets and loaders.
  const uint64_t buffer_total = std::max<uint64_t>(
      P, static_cast<uint64_t>(options.buffer_fraction_total *
                               static_cast<double>(source->num_tuples())));
  CorgiPileDataset::Options dopts;
  dopts.buffer_tuples = std::max<uint64_t>(1, buffer_total / P);
  dopts.seed = options.seed;
  dopts.shuffle_blocks = options.shuffle_blocks;
  dopts.shuffle_tuples = options.shuffle_tuples;

  std::vector<std::unique_ptr<CorgiPileDataset>> datasets;
  std::vector<std::unique_ptr<DataLoader>> loaders;
  for (uint32_t w = 0; w < P; ++w) {
    datasets.push_back(std::make_unique<CorgiPileDataset>(source, dopts));
    DataLoader::Options lopts;
    lopts.batch_size = microbatch;
    lopts.worker_id = w;
    lopts.num_workers = P;
    loaders.push_back(std::make_unique<DataLoader>(datasets[w].get(), lopts));
  }

  model->InitParams(options.init_seed);
  std::unique_ptr<Optimizer> opt = MakeOptimizer(options.optimizer);
  opt->Reset(model->num_params());

  ThreadPool pool(P);
  std::vector<std::unique_ptr<Model>> replicas;  // per-worker compute clones
  std::vector<std::vector<double>> worker_grads(
      P, std::vector<double>(model->num_params(), 0.0));
  std::vector<std::vector<Tuple>> microbatches(P);
  std::vector<double> worker_loss(P, 0.0);
  std::vector<WorkerState> workers(P);

  CancellationToken cancel;
  const Deadline run_deadline =
      options.clock != nullptr && options.run_deadline_sim_seconds > 0.0
          ? Deadline(options.clock, options.run_deadline_sim_seconds)
          : Deadline::Infinite();

  TrainResult result;

  const auto active_workers = [&] {
    uint32_t n = 0;
    for (const WorkerState& ws : workers) n += ws.active ? 1 : 0;
    return n;
  };

  // Applies the failure policy to worker `w`. Returns OK when the worker
  // was evicted and training continues, otherwise the (annotated) error to
  // unwind with. kWait only tolerates stragglers — a hard I/O/corruption
  // error cannot be waited out, so it fails fast under kWait too.
  const auto worker_failed = [&](uint32_t w, uint32_t epoch,
                                 const Status& st) -> Status {
    workers[w].status = st;
    if (options.failure_policy == WorkerFailurePolicy::kDropAndRescale) {
      workers[w].active = false;
      microbatches[w].clear();
      result.dropped_workers.push_back(
          DroppedWorker{w, epoch, st.code(), st.message()});
      return Status::OK();
    }
    cancel.Cancel(st);
    return Status(st.code(),
                  "worker " + std::to_string(w) + ": " + st.message());
  };

  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    if (active_workers() == 0) {
      return Status::ResourceExhausted(
          "all " + std::to_string(P) +
          " workers dropped — cannot continue training");
    }
    const double lr = options.lr.LrAtEpoch(epoch);
    for (uint32_t w = 0; w < P; ++w) {
      workers[w].epoch_sim_seconds = 0.0;  // dropped workers too: the
                                           // barrier only waits for the
                                           // living
      if (!workers[w].active) continue;
      CORGI_RETURN_NOT_OK(loaders[w]->StartEpoch(epoch));
    }
    WallTimer timer;
    double loss_sum = 0.0;
    uint64_t seen = 0;
    std::vector<double> reduced(model->num_params(), 0.0);

    for (;;) {
      if (run_deadline.Expired()) {
        Status st = run_deadline.Check("distributed training run");
        cancel.Cancel(st);
        return st;
      }

      // Each worker pulls its microbatch (supervisor thread: loader state
      // is not thread-safe; pulling is cheap relative to gradient
      // compute). Pulling serially is also what makes the per-worker
      // SimClock attribution below exact: the clock delta around worker
      // w's pull — including injected latency spikes and retry backoff on
      // w's blocks — belongs to w alone.
      uint64_t batch_total = 0;
      for (uint32_t w = 0; w < P; ++w) {
        if (!workers[w].active) continue;
        const double sim_before =
            options.clock != nullptr ? options.clock->TotalElapsed() : 0.0;
        auto more = loaders[w]->NextBatch(&microbatches[w]);
        if (options.clock != nullptr) {
          const double d = options.clock->TotalElapsed() - sim_before;
          workers[w].epoch_sim_seconds += d;
          workers[w].total_sim_seconds += d;
        }
        if (!more.ok()) {
          microbatches[w].clear();
          CORGI_RETURN_NOT_OK(worker_failed(w, epoch, more.status()));
          continue;
        }
        batch_total += microbatches[w].size();
      }

      // Straggler deadline: a worker whose attributed simulated time this
      // epoch exceeds the budget is evicted (kDropAndRescale) or fails the
      // run (kFailFast); kWait lets the barrier keep waiting.
      if (deadline_enabled &&
          options.failure_policy != WorkerFailurePolicy::kWait) {
        for (uint32_t w = 0; w < P; ++w) {
          if (!workers[w].active ||
              workers[w].epoch_sim_seconds <=
                  options.straggler_deadline_sim_seconds) {
            continue;
          }
          Status st = Status::DeadlineExceeded(
              "straggler: " + std::to_string(workers[w].epoch_sim_seconds) +
              " simulated s this epoch > deadline " +
              std::to_string(options.straggler_deadline_sim_seconds));
          batch_total -= microbatches[w].size();
          CORGI_RETURN_NOT_OK(worker_failed(w, epoch, st));
        }
      }
      if (active_workers() == 0) {
        return Status::ResourceExhausted(
            "all " + std::to_string(P) +
            " workers dropped — cannot continue training");
      }
      if (batch_total == 0) break;  // all surviving shards exhausted

      // Parallel gradient computation against the shared parameters. Each
      // worker uses its own model replica synced to the current params and
      // writes only its own slots; the ParallelFor barrier publishes them
      // back to the supervisor. Workers poll the cancellation token so a
      // fail-fast unwind does not leave stale tasks running.
      if (replicas.empty()) {
        for (uint32_t w = 0; w < P; ++w) replicas.push_back(model->Clone());
      }
      Status compute = pool.ParallelFor(
          P,
          [&](size_t w) -> Status {
            worker_loss[w] = 0.0;
            auto& grad = worker_grads[w];
            std::fill(grad.begin(), grad.end(), 0.0);
            if (!workers[w].active || microbatches[w].empty()) {
              return Status::OK();
            }
            replicas[w]->params() = model->params();
            size_t polled = 0;
            for (const Tuple& t : microbatches[w]) {
              if ((++polled & 63u) == 0 && cancel.cancelled()) {
                return cancel.status();
              }
              worker_loss[w] += replicas[w]->AccumulateGrad(t, &grad);
            }
            workers[w].heartbeat_steps++;  // liveness report to supervisor
            return Status::OK();
          },
          &cancel);
      CORGI_RETURN_NOT_OK(compute);

      // AllReduce: average over all tuples the surviving workers
      // contributed this step. Dividing by batch_total (not the original
      // global batch) is the drop_and_rescale denominator rescaling.
      std::fill(reduced.begin(), reduced.end(), 0.0);
      for (uint32_t w = 0; w < P; ++w) {
        if (!workers[w].active) continue;
        loss_sum += worker_loss[w];
        for (size_t i = 0; i < reduced.size(); ++i) {
          reduced[i] += worker_grads[w][i];
        }
      }
      const double inv = 1.0 / static_cast<double>(batch_total);
      for (double& g : reduced) g *= inv;
      opt->Apply(&model->params(), reduced, lr);
      seen += batch_total;
    }

    EpochLog log;
    log.epoch = epoch;
    log.lr = lr;
    log.tuples_seen = seen;
    log.epoch_wall_seconds = timer.ElapsedSeconds();
    log.train_loss = seen > 0 ? loss_sum / static_cast<double>(seen) : 0.0;
    log.active_workers = active_workers();
    // Barrier accounting: the epoch's simulated critical path is the
    // slowest worker; everyone else idled at the AllReduce barrier for the
    // difference. Charged only for supervised runs to keep the legacy time
    // model of plain runs unchanged.
    double slowest = 0.0;
    for (const WorkerState& ws : workers) {
      slowest = std::max(slowest, ws.epoch_sim_seconds);
    }
    log.barrier_sim_seconds = slowest;
    if (options.clock != nullptr) {
      if (supervised) {
        double idle = 0.0;
        for (const WorkerState& ws : workers) {
          if (ws.active) idle += slowest - ws.epoch_sim_seconds;
        }
        options.clock->Advance(TimeCategory::kStragglerWait, idle);
      }
      options.clock->Advance(TimeCategory::kCompute, log.epoch_wall_seconds);
    }
    if (options.test_set != nullptr && !options.test_set->empty()) {
      const EvalResult eval =
          Evaluate(*model, *options.test_set, options.label_type);
      log.test_loss = eval.mean_loss;
      log.test_metric = eval.metric;
    }
    log.cumulative_sim_seconds =
        options.clock != nullptr ? options.clock->TotalElapsed() : 0.0;
    result.total_tuples += seen;
    result.best_test_metric =
        std::max(result.best_test_metric, log.test_metric);
    result.epochs.push_back(log);
    if (options.epoch_callback) options.epoch_callback(epoch, *model);
  }
  if (!result.epochs.empty()) {
    result.final_test_metric = result.epochs.back().test_metric;
    result.final_test_loss = result.epochs.back().test_loss;
  }
  for (uint32_t w = 0; w < P; ++w) {
    result.workers.push_back(WorkerSummary{w, workers[w].heartbeat_steps,
                                           workers[w].total_sim_seconds,
                                           !workers[w].active});
  }
  return result;
}

Result<std::vector<uint64_t>> TraceDistributedOrder(
    BlockSource* source, uint32_t num_workers, uint64_t buffer_per_worker,
    uint32_t microbatch, uint64_t seed, uint64_t epoch) {
  if (source == nullptr) return Status::InvalidArgument("null source");
  const uint32_t P = std::max<uint32_t>(1, num_workers);
  CorgiPileDataset::Options dopts;
  dopts.buffer_tuples = std::max<uint64_t>(1, buffer_per_worker);
  dopts.seed = seed;
  std::vector<std::unique_ptr<CorgiPileDataset>> datasets;
  std::vector<std::unique_ptr<DataLoader>> loaders;
  for (uint32_t w = 0; w < P; ++w) {
    datasets.push_back(std::make_unique<CorgiPileDataset>(source, dopts));
    DataLoader::Options lopts;
    lopts.batch_size = microbatch;
    lopts.worker_id = w;
    lopts.num_workers = P;
    loaders.push_back(std::make_unique<DataLoader>(datasets[w].get(), lopts));
    CORGI_RETURN_NOT_OK(loaders[w]->StartEpoch(epoch));
  }
  std::vector<uint64_t> order;
  std::vector<Tuple> batch;
  for (;;) {
    uint64_t got = 0;
    for (uint32_t w = 0; w < P; ++w) {
      CORGI_ASSIGN_OR_RETURN(bool more, loaders[w]->NextBatch(&batch));
      (void)more;
      for (const Tuple& t : batch) order.push_back(t.id);
      got += batch.size();
    }
    if (got == 0) break;
  }
  return order;
}

}  // namespace corgipile
