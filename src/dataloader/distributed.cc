#include "dataloader/distributed.h"

#include <algorithm>
#include <atomic>

#include "dataloader/data_loader.h"
#include "util/timer.h"

namespace corgipile {

Result<TrainResult> TrainDistributed(Model* model, BlockSource* source,
                                     const DistributedTrainerOptions& options) {
  if (model == nullptr || source == nullptr) {
    return Status::InvalidArgument("null model or source");
  }
  const uint32_t P = std::max<uint32_t>(1, options.num_workers);
  if (options.global_batch_size < P) {
    return Status::InvalidArgument("global batch smaller than worker count");
  }
  const uint32_t microbatch = options.global_batch_size / P;

  // Per-worker datasets and loaders.
  const uint64_t buffer_total = std::max<uint64_t>(
      P, static_cast<uint64_t>(options.buffer_fraction_total *
                               static_cast<double>(source->num_tuples())));
  CorgiPileDataset::Options dopts;
  dopts.buffer_tuples = std::max<uint64_t>(1, buffer_total / P);
  dopts.seed = options.seed;
  dopts.shuffle_blocks = options.shuffle_blocks;
  dopts.shuffle_tuples = options.shuffle_tuples;

  std::vector<std::unique_ptr<CorgiPileDataset>> datasets;
  std::vector<std::unique_ptr<DataLoader>> loaders;
  for (uint32_t w = 0; w < P; ++w) {
    datasets.push_back(std::make_unique<CorgiPileDataset>(source, dopts));
    DataLoader::Options lopts;
    lopts.batch_size = microbatch;
    lopts.worker_id = w;
    lopts.num_workers = P;
    loaders.push_back(std::make_unique<DataLoader>(datasets[w].get(), lopts));
  }

  model->InitParams(options.init_seed);
  std::unique_ptr<Optimizer> opt = MakeOptimizer(options.optimizer);
  opt->Reset(model->num_params());

  ThreadPool pool(P);
  std::vector<std::unique_ptr<Model>> replicas;  // per-worker compute clones
  std::vector<std::vector<double>> worker_grads(
      P, std::vector<double>(model->num_params(), 0.0));
  std::vector<std::vector<Tuple>> microbatches(P);
  std::vector<double> worker_loss(P, 0.0);
  std::vector<Status> worker_status(P);

  TrainResult result;
  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    const double lr = options.lr.LrAtEpoch(epoch);
    for (uint32_t w = 0; w < P; ++w) {
      CORGI_RETURN_NOT_OK(loaders[w]->StartEpoch(epoch));
    }
    WallTimer timer;
    double loss_sum = 0.0;
    uint64_t seen = 0;
    std::vector<double> reduced(model->num_params(), 0.0);

    for (;;) {
      // Each worker pulls its microbatch (main thread: loader state is not
      // thread-safe; pulling is cheap relative to gradient compute).
      uint64_t batch_total = 0;
      for (uint32_t w = 0; w < P; ++w) {
        CORGI_ASSIGN_OR_RETURN(bool more,
                               loaders[w]->NextBatch(&microbatches[w]));
        (void)more;
        batch_total += microbatches[w].size();
      }
      if (batch_total == 0) break;  // all shards exhausted → epoch end

      // Parallel gradient computation against the shared parameters. Each
      // worker uses its own model replica synced to the current params.
      if (replicas.empty()) {
        for (uint32_t w = 0; w < P; ++w) replicas.push_back(model->Clone());
      }
      pool.ParallelFor(P, [&](size_t w) {
        worker_loss[w] = 0.0;
        auto& grad = worker_grads[w];
        std::fill(grad.begin(), grad.end(), 0.0);
        if (microbatches[w].empty()) return;
        replicas[w]->params() = model->params();
        for (const Tuple& t : microbatches[w]) {
          worker_loss[w] += replicas[w]->AccumulateGrad(t, &grad);
        }
      });

      // AllReduce: average over all tuples of the global batch.
      std::fill(reduced.begin(), reduced.end(), 0.0);
      for (uint32_t w = 0; w < P; ++w) {
        loss_sum += worker_loss[w];
        for (size_t i = 0; i < reduced.size(); ++i) {
          reduced[i] += worker_grads[w][i];
        }
      }
      const double inv = 1.0 / static_cast<double>(batch_total);
      for (double& g : reduced) g *= inv;
      opt->Apply(&model->params(), reduced, lr);
      seen += batch_total;
    }

    EpochLog log;
    log.epoch = epoch;
    log.lr = lr;
    log.tuples_seen = seen;
    log.epoch_wall_seconds = timer.ElapsedSeconds();
    log.train_loss = seen > 0 ? loss_sum / static_cast<double>(seen) : 0.0;
    if (options.clock != nullptr) {
      options.clock->Advance(TimeCategory::kCompute, log.epoch_wall_seconds);
    }
    if (options.test_set != nullptr && !options.test_set->empty()) {
      const EvalResult eval =
          Evaluate(*model, *options.test_set, options.label_type);
      log.test_loss = eval.mean_loss;
      log.test_metric = eval.metric;
    }
    log.cumulative_sim_seconds =
        options.clock != nullptr ? options.clock->TotalElapsed() : 0.0;
    result.total_tuples += seen;
    result.best_test_metric =
        std::max(result.best_test_metric, log.test_metric);
    result.epochs.push_back(log);
    if (options.epoch_callback) options.epoch_callback(epoch, *model);
  }
  if (!result.epochs.empty()) {
    result.final_test_metric = result.epochs.back().test_metric;
    result.final_test_loss = result.epochs.back().test_loss;
  }
  return result;
}

Result<std::vector<uint64_t>> TraceDistributedOrder(
    BlockSource* source, uint32_t num_workers, uint64_t buffer_per_worker,
    uint32_t microbatch, uint64_t seed, uint64_t epoch) {
  if (source == nullptr) return Status::InvalidArgument("null source");
  const uint32_t P = std::max<uint32_t>(1, num_workers);
  CorgiPileDataset::Options dopts;
  dopts.buffer_tuples = std::max<uint64_t>(1, buffer_per_worker);
  dopts.seed = seed;
  std::vector<std::unique_ptr<CorgiPileDataset>> datasets;
  std::vector<std::unique_ptr<DataLoader>> loaders;
  for (uint32_t w = 0; w < P; ++w) {
    datasets.push_back(std::make_unique<CorgiPileDataset>(source, dopts));
    DataLoader::Options lopts;
    lopts.batch_size = microbatch;
    lopts.worker_id = w;
    lopts.num_workers = P;
    loaders.push_back(std::make_unique<DataLoader>(datasets[w].get(), lopts));
    CORGI_RETURN_NOT_OK(loaders[w]->StartEpoch(epoch));
  }
  std::vector<uint64_t> order;
  std::vector<Tuple> batch;
  for (;;) {
    uint64_t got = 0;
    for (uint32_t w = 0; w < P; ++w) {
      CORGI_ASSIGN_OR_RETURN(bool more, loaders[w]->NextBatch(&batch));
      (void)more;
      for (const Tuple& t : batch) order.push_back(t.id);
      got += batch.size();
    }
    if (got == 0) break;
  }
  return order;
}

}  // namespace corgipile
