#include "dataloader/record_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "iosim/fault_plane.h"
#include "util/crc32c.h"

namespace corgipile {

namespace {
// [u32 length][u32 crc32c] precede every payload.
constexpr uint64_t kRecordHeaderBytes = 8;
}  // namespace

RecordFileWriter::RecordFileWriter(int fd, uint64_t tag)
    : fd_(fd), tag_(tag) {}

RecordFileWriter::~RecordFileWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<RecordFileWriter>> RecordFileWriter::Create(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("create " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<RecordFileWriter>(
      new RecordFileWriter(fd, FaultInjector::TagForPath(path)));
}

void RecordFileWriter::SetFaultInjection(FaultInjector* injector) {
  fault_ = injector;
}

Status RecordFileWriter::Append(const Tuple& tuple) {
  if (fd_ < 0) return Status::Internal("writer already finished");
  scratch_.clear();
  const auto len = static_cast<uint32_t>(tuple.SerializedSize());
  const auto* lp = reinterpret_cast<const uint8_t*>(&len);
  scratch_.insert(scratch_.end(), lp, lp + sizeof(len));
  scratch_.insert(scratch_.end(), 4, 0);  // crc placeholder
  tuple.SerializeTo(&scratch_);
  const uint32_t crc =
      Crc32cForStorage(scratch_.data() + kRecordHeaderBytes, len);
  std::memcpy(scratch_.data() + sizeof(len), &crc, sizeof(crc));

  if (fault_ != nullptr) {
    const uint64_t persist =
        fault_->TornWriteBytes(tag_, bytes_written_, scratch_.size());
    if (persist < scratch_.size()) {
      // Torn write: the tail never reaches the platter and reads back as
      // zeros. Offsets stay consistent; the record CRC catches it on read.
      std::memset(scratch_.data() + persist, 0, scratch_.size() - persist);
    }
  }
  const ssize_t n = ::write(fd_, scratch_.data(), scratch_.size());
  if (n != static_cast<ssize_t>(scratch_.size())) {
    return Status::IoError(std::string("write: ") + std::strerror(errno));
  }
  bytes_written_ += scratch_.size();
  ++records_written_;
  return Status::OK();
}

Status RecordFileWriter::Finish() {
  if (fd_ < 0) return Status::OK();
  if (::fsync(fd_) != 0) {
    const Status st =
        Status::IoError(std::string("fsync: ") + std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return st;
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Status::IoError(std::string("close: ") + std::strerror(errno));
  }
  fd_ = -1;
  return Status::OK();
}

Status RecordBlockIndex::WriteFile(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open " + path);
  for (const Entry& e : blocks) {
    f << e.offset << ' ' << e.bytes << ' ' << e.num_tuples << '\n';
  }
  if (!f.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status RecordBlockIndex::Validate(uint64_t file_size) const {
  uint64_t prev_end = 0;
  uint64_t tuple_sum = 0;
  for (size_t i = 0; i < blocks.size(); ++i) {
    const Entry& e = blocks[i];
    if (e.bytes == 0 || e.num_tuples == 0) {
      return Status::Corruption("index entry " + std::to_string(i) +
                                " is empty");
    }
    if (e.bytes < e.num_tuples * kRecordHeaderBytes) {
      return Status::Corruption(
          "index entry " + std::to_string(i) + " claims " +
          std::to_string(e.num_tuples) + " tuples in " +
          std::to_string(e.bytes) + " bytes");
    }
    if (i > 0 && e.offset < prev_end) {
      return Status::Corruption("index entry " + std::to_string(i) +
                                " overlaps or precedes entry " +
                                std::to_string(i - 1));
    }
    if (e.offset + e.bytes < e.offset) {
      return Status::Corruption("index entry " + std::to_string(i) +
                                " offset+bytes overflows");
    }
    if (file_size > 0 && e.offset + e.bytes > file_size) {
      return Status::Corruption(
          "index entry " + std::to_string(i) + " range [" +
          std::to_string(e.offset) + ", " +
          std::to_string(e.offset + e.bytes) + ") exceeds file size " +
          std::to_string(file_size));
    }
    prev_end = e.offset + e.bytes;
    tuple_sum += e.num_tuples;
  }
  if (tuple_sum != total_tuples) {
    return Status::Corruption("index total_tuples " +
                              std::to_string(total_tuples) +
                              " != sum of entries " +
                              std::to_string(tuple_sum));
  }
  return Status::OK();
}

Result<RecordBlockIndex> RecordBlockIndex::ReadFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  RecordBlockIndex index;
  Entry e;
  while (f >> e.offset >> e.bytes >> e.num_tuples) {
    index.blocks.push_back(e);
    index.total_tuples += e.num_tuples;
  }
  Status st = index.Validate(/*file_size=*/0);
  if (!st.ok()) {
    return Status::Corruption("index file " + path + ": " + st.message());
  }
  return index;
}

Result<RecordBlockIndex> BuildRecordBlockIndex(const std::string& path,
                                               uint64_t block_bytes) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  RecordBlockIndex index;
  RecordBlockIndex::Entry current;
  uint64_t offset = 0;
  uint32_t len = 0;
  while (f.read(reinterpret_cast<char*>(&len), sizeof(len))) {
    // Skip the CRC field and the payload.
    f.seekg(kRecordHeaderBytes - sizeof(len) + len, std::ios::cur);
    if (!f.good()) return Status::Corruption("truncated record in " + path);
    const uint64_t record_bytes = kRecordHeaderBytes + len;
    if (current.bytes > 0 && current.bytes + record_bytes > block_bytes) {
      index.blocks.push_back(current);
      current = RecordBlockIndex::Entry{offset, 0, 0};
    }
    if (current.bytes == 0) current.offset = offset;
    current.bytes += record_bytes;
    ++current.num_tuples;
    index.total_tuples += 1;
    offset += record_bytes;
  }
  if (current.bytes > 0) index.blocks.push_back(current);
  return index;
}

RecordFileBlockSource::RecordFileBlockSource(int fd, RecordBlockIndex index,
                                             Schema schema, uint64_t tag)
    : fd_(fd), index_(std::move(index)), schema_(std::move(schema)),
      tag_(tag) {}

RecordFileBlockSource::~RecordFileBlockSource() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<RecordFileBlockSource>> RecordFileBlockSource::Open(
    const std::string& path, RecordBlockIndex index, Schema schema) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat " + path + ": " + std::strerror(errno));
  }
  Status vs = index.Validate(static_cast<uint64_t>(st.st_size));
  if (!vs.ok()) {
    ::close(fd);
    return Status::Corruption("index for " + path + ": " + vs.message());
  }
  return std::unique_ptr<RecordFileBlockSource>(
      new RecordFileBlockSource(fd, std::move(index), std::move(schema),
                                FaultInjector::TagForPath(path)));
}

void RecordFileBlockSource::SetIoAccounting(DeviceProfile device,
                                            SimClock* clock, IoStats* stats) {
  MutexLock lock(mu_);
  device_ = std::move(device);
  clock_ = clock;
  stats_ = stats;
}

void RecordFileBlockSource::SetFaultInjection(FaultInjector* injector) {
  MutexLock lock(mu_);
  fault_ = injector;
}

void RecordFileBlockSource::SetRetryPolicy(RetryPolicy policy) {
  MutexLock lock(mu_);
  retry_ = policy;
}

Status RecordFileBlockSource::ReadRawWithRetry(uint64_t offset, uint8_t* buf,
                                               size_t len) {
  // One locked snapshot for the whole retry loop: a concurrent
  // SetFaultInjection/SetRetryPolicy cannot change the rules (or dangle
  // the injector) between attempts of a single logical read.
  FaultInjector* fault = nullptr;
  RetryPolicy retry;
  {
    MutexLock lock(mu_);
    fault = fault_;
    retry = retry_;
  }
  Status st = Status::OK();
  for (uint32_t attempt = 0; attempt <= retry.max_retries; ++attempt) {
    if (attempt > 0) {
      {
        MutexLock lock(mu_);
        if (clock_ != nullptr) {
          clock_->Advance(TimeCategory::kRetryBackoff,
                          retry.BackoffSeconds(attempt - 1));
        }
      }
      if (fault != nullptr) {
        fault->stats().retries.fetch_add(1, std::memory_order_relaxed);
      }
    }
    st = Status::OK();
    if (fault != nullptr) st = fault->OnReadAttempt(tag_, offset);
    if (st.ok()) {
      const ssize_t n = ::pread(fd_, buf, len, static_cast<off_t>(offset));
      if (n != static_cast<ssize_t>(len)) {
        st = Status::IoError(std::string("pread: ") + std::strerror(errno));
      }
    }
    if (st.ok()) {
      if (fault != nullptr) {
        fault->MaybeCorrupt(tag_, offset, buf, len);
        const double spike = fault->ReadLatencySpikeSeconds(tag_, offset);
        if (spike > 0) {
          MutexLock lock(mu_);
          if (clock_ != nullptr) {
            clock_->Advance(TimeCategory::kIoRead, spike);
          }
        }
      }
      if (attempt > 0 && fault != nullptr) {
        fault->stats().recovered.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::OK();
    }
    if (st.code() != StatusCode::kIoError) return st;  // not retryable
  }
  if (fault != nullptr) {
    fault->stats().permanent_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::IoError("read failed after " +
                         std::to_string(retry.max_retries) + " retries: " +
                         st.message());
}

Status RecordFileBlockSource::ReadBlock(uint32_t block,
                                        std::vector<Tuple>* out) {
  CORGI_INJECT_POINT("storage.recordfile.read_block");
  if (block >= index_.blocks.size()) {
    return Status::OutOfRange("block index");
  }
  const auto& entry = index_.blocks[block];
  std::vector<uint8_t> buf(entry.bytes);
  CORGI_RETURN_NOT_OK(ReadRawWithRetry(entry.offset, buf.data(), buf.size()));
  {
    MutexLock lock(mu_);
    const bool sequential = last_end_offset_ == entry.offset;
    if (clock_ != nullptr) {
      clock_->Advance(TimeCategory::kIoRead,
                      sequential ? device_.SequentialCost(entry.bytes)
                                 : device_.RandomCost(entry.bytes));
    }
    if (stats_ != nullptr) {
      if (sequential) {
        ++stats_->sequential_reads;
      } else {
        ++stats_->random_reads;
      }
      stats_->bytes_read += entry.bytes;
    }
    last_end_offset_ = entry.offset + entry.bytes;
  }

  size_t pos = 0;
  for (uint64_t i = 0; i < entry.num_tuples; ++i) {
    if (pos + kRecordHeaderBytes > buf.size()) {
      return Status::Corruption("truncated record header in block " +
                                std::to_string(block));
    }
    uint32_t len = 0;
    uint32_t stored_crc = 0;
    std::memcpy(&len, buf.data() + pos, sizeof(len));
    std::memcpy(&stored_crc, buf.data() + pos + sizeof(len),
                sizeof(stored_crc));
    pos += kRecordHeaderBytes;
    if (pos + len > buf.size()) {
      return Status::Corruption("truncated record in block " +
                                std::to_string(block));
    }
    if (stored_crc != 0 &&
        stored_crc != Crc32cForStorage(buf.data() + pos, len)) {
      return Status::Corruption("crc mismatch on record " + std::to_string(i) +
                                " of block " + std::to_string(block));
    }
    size_t consumed = 0;
    CORGI_ASSIGN_OR_RETURN(Tuple t,
                           Tuple::Deserialize(buf.data() + pos, len, &consumed));
    out->push_back(std::move(t));
    pos += len;
  }
  return Status::OK();
}

Result<std::unique_ptr<RecordFileBlockSource>> MaterializeRecordFile(
    const Schema& schema, const std::vector<Tuple>& tuples,
    const std::string& path, uint64_t block_bytes) {
  CORGI_ASSIGN_OR_RETURN(std::unique_ptr<RecordFileWriter> writer,
                         RecordFileWriter::Create(path));
  for (const Tuple& t : tuples) {
    CORGI_RETURN_NOT_OK(writer->Append(t));
  }
  CORGI_RETURN_NOT_OK(writer->Finish());
  CORGI_ASSIGN_OR_RETURN(RecordBlockIndex index,
                         BuildRecordBlockIndex(path, block_bytes));
  CORGI_RETURN_NOT_OK(index.WriteFile(path + ".idx"));
  return RecordFileBlockSource::Open(path, std::move(index), schema);
}

}  // namespace corgipile
