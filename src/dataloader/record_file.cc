#include "dataloader/record_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace corgipile {

RecordFileWriter::RecordFileWriter(int fd) : fd_(fd) {}

RecordFileWriter::~RecordFileWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<RecordFileWriter>> RecordFileWriter::Create(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("create " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<RecordFileWriter>(new RecordFileWriter(fd));
}

Status RecordFileWriter::Append(const Tuple& tuple) {
  if (fd_ < 0) return Status::Internal("writer already finished");
  scratch_.clear();
  const auto len = static_cast<uint32_t>(tuple.SerializedSize());
  const auto* lp = reinterpret_cast<const uint8_t*>(&len);
  scratch_.insert(scratch_.end(), lp, lp + sizeof(len));
  tuple.SerializeTo(&scratch_);
  const ssize_t n = ::write(fd_, scratch_.data(), scratch_.size());
  if (n != static_cast<ssize_t>(scratch_.size())) {
    return Status::IoError(std::string("write: ") + std::strerror(errno));
  }
  bytes_written_ += scratch_.size();
  ++records_written_;
  return Status::OK();
}

Status RecordFileWriter::Finish() {
  if (fd_ < 0) return Status::OK();
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Status::IoError(std::string("close: ") + std::strerror(errno));
  }
  fd_ = -1;
  return Status::OK();
}

Status RecordBlockIndex::WriteFile(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open " + path);
  for (const Entry& e : blocks) {
    f << e.offset << ' ' << e.bytes << ' ' << e.num_tuples << '\n';
  }
  if (!f.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<RecordBlockIndex> RecordBlockIndex::ReadFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  RecordBlockIndex index;
  Entry e;
  while (f >> e.offset >> e.bytes >> e.num_tuples) {
    index.blocks.push_back(e);
    index.total_tuples += e.num_tuples;
  }
  return index;
}

Result<RecordBlockIndex> BuildRecordBlockIndex(const std::string& path,
                                               uint64_t block_bytes) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  RecordBlockIndex index;
  RecordBlockIndex::Entry current;
  uint64_t offset = 0;
  uint32_t len = 0;
  while (f.read(reinterpret_cast<char*>(&len), sizeof(len))) {
    f.seekg(len, std::ios::cur);
    if (!f.good()) return Status::Corruption("truncated record in " + path);
    const uint64_t record_bytes = sizeof(len) + len;
    if (current.bytes > 0 && current.bytes + record_bytes > block_bytes) {
      index.blocks.push_back(current);
      current = RecordBlockIndex::Entry{offset, 0, 0};
    }
    if (current.bytes == 0) current.offset = offset;
    current.bytes += record_bytes;
    ++current.num_tuples;
    index.total_tuples += 1;
    offset += record_bytes;
  }
  if (current.bytes > 0) index.blocks.push_back(current);
  return index;
}

RecordFileBlockSource::RecordFileBlockSource(int fd, RecordBlockIndex index,
                                             Schema schema)
    : fd_(fd), index_(std::move(index)), schema_(std::move(schema)) {}

RecordFileBlockSource::~RecordFileBlockSource() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<RecordFileBlockSource>> RecordFileBlockSource::Open(
    const std::string& path, RecordBlockIndex index, Schema schema) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<RecordFileBlockSource>(
      new RecordFileBlockSource(fd, std::move(index), std::move(schema)));
}

void RecordFileBlockSource::SetIoAccounting(DeviceProfile device,
                                            SimClock* clock, IoStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  device_ = std::move(device);
  clock_ = clock;
  stats_ = stats;
}

Status RecordFileBlockSource::ReadBlock(uint32_t block,
                                        std::vector<Tuple>* out) {
  if (block >= index_.blocks.size()) {
    return Status::OutOfRange("block index");
  }
  const auto& entry = index_.blocks[block];
  std::vector<uint8_t> buf(entry.bytes);
  const ssize_t n = ::pread(fd_, buf.data(), buf.size(),
                            static_cast<off_t>(entry.offset));
  if (n != static_cast<ssize_t>(buf.size())) {
    return Status::IoError(std::string("pread: ") + std::strerror(errno));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool sequential = last_end_offset_ == entry.offset;
    if (clock_ != nullptr) {
      clock_->Advance(TimeCategory::kIoRead,
                      sequential ? device_.SequentialCost(entry.bytes)
                                 : device_.RandomCost(entry.bytes));
    }
    if (stats_ != nullptr) {
      if (sequential) {
        ++stats_->sequential_reads;
      } else {
        ++stats_->random_reads;
      }
      stats_->bytes_read += entry.bytes;
    }
    last_end_offset_ = entry.offset + entry.bytes;
  }

  size_t pos = 0;
  for (uint64_t i = 0; i < entry.num_tuples; ++i) {
    if (pos + sizeof(uint32_t) > buf.size()) {
      return Status::Corruption("truncated record header");
    }
    uint32_t len = 0;
    std::memcpy(&len, buf.data() + pos, sizeof(len));
    pos += sizeof(len);
    if (pos + len > buf.size()) return Status::Corruption("truncated record");
    size_t consumed = 0;
    CORGI_ASSIGN_OR_RETURN(Tuple t,
                           Tuple::Deserialize(buf.data() + pos, len, &consumed));
    out->push_back(std::move(t));
    pos += len;
  }
  return Status::OK();
}

Result<std::unique_ptr<RecordFileBlockSource>> MaterializeRecordFile(
    const Schema& schema, const std::vector<Tuple>& tuples,
    const std::string& path, uint64_t block_bytes) {
  CORGI_ASSIGN_OR_RETURN(std::unique_ptr<RecordFileWriter> writer,
                         RecordFileWriter::Create(path));
  for (const Tuple& t : tuples) {
    CORGI_RETURN_NOT_OK(writer->Append(t));
  }
  CORGI_RETURN_NOT_OK(writer->Finish());
  CORGI_ASSIGN_OR_RETURN(RecordBlockIndex index,
                         BuildRecordBlockIndex(path, block_bytes));
  CORGI_RETURN_NOT_OK(index.WriteFile(path + ".idx"));
  return RecordFileBlockSource::Open(path, std::move(index), schema);
}

}  // namespace corgipile
