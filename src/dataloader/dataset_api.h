// PyTorch-style Dataset APIs (paper §2.2, §5).
//
// Map-style datasets support random access by index (easy to shuffle, poor
// I/O on secondary storage); iterable-style datasets stream sequentially.
// CorgiPileDataset is the paper's new iterable dataset: per epoch it
// shuffles the shared block index with a common seed, takes the shard of
// blocks assigned to this worker, reads them through a per-worker buffer,
// and emits buffer-shuffled tuples.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exec/tuple_batch.h"
#include "storage/block_source.h"
#include "util/rng.h"
#include "util/status.h"

namespace corgipile {

/// Random-access dataset (PyTorch map-style).
class MapDataset {
 public:
  virtual ~MapDataset() = default;
  virtual uint64_t size() const = 0;
  virtual Result<Tuple> Get(uint64_t index) = 0;
};

/// Map-style view over an in-memory tuple vector.
class InMemoryMapDataset : public MapDataset {
 public:
  explicit InMemoryMapDataset(
      std::shared_ptr<const std::vector<Tuple>> tuples)
      : tuples_(std::move(tuples)) {}
  uint64_t size() const override { return tuples_->size(); }
  Result<Tuple> Get(uint64_t index) override {
    if (index >= tuples_->size()) return Status::OutOfRange("index");
    return (*tuples_)[index];
  }

 private:
  std::shared_ptr<const std::vector<Tuple>> tuples_;
};

/// Sequential-stream dataset (PyTorch iterable-style). Each worker of a
/// DataLoader calls StartEpoch with its (worker_id, num_workers) and pulls
/// its shard.
class IterableDataset {
 public:
  virtual ~IterableDataset() = default;
  virtual Status StartEpoch(uint64_t epoch, uint32_t worker_id,
                            uint32_t num_workers) = 0;
  /// nullptr = shard exhausted (check status()).
  virtual const Tuple* Next() = 0;
  /// Batched pull: clears *out and fills up to out->target_tuples() in
  /// emission order; true iff at least one tuple was appended. Same
  /// order contract as BatchStream::NextBatch. Default drains Next().
  virtual bool NextBatch(TupleBatch* out) {
    out->Clear();
    while (!out->full()) {
      const Tuple* t = Next();
      if (t == nullptr) break;
      out->Append(*t);
    }
    return !out->empty();
  }
  virtual Status status() const { return Status::OK(); }
};

/// The paper's CorgiPileDataset (§5.1).
///
/// Block partitioning: all workers shuffle the full block index with the
/// same epoch seed, so the permutation agrees; worker i keeps the i-th of
/// num_workers contiguous slices. Tuple shuffle: blocks stream through a
/// per-worker buffer of `buffer_tuples`; each full buffer is shuffled
/// before its tuples are emitted.
class CorgiPileDataset : public IterableDataset {
 public:
  struct Options {
    uint64_t buffer_tuples = 1;  ///< per worker
    uint64_t seed = 42;
    /// Disable for No Shuffle / Shuffle Once baselines run through the
    /// same loader machinery: blocks stay in storage order and buffers
    /// are emitted unshuffled.
    bool shuffle_blocks = true;
    bool shuffle_tuples = true;
  };

  /// `source` is shared by all workers (not owned, thread-safe reads).
  CorgiPileDataset(BlockSource* source, Options options);

  Status StartEpoch(uint64_t epoch, uint32_t worker_id,
                    uint32_t num_workers) override;
  const Tuple* Next() override;
  /// Native batched fill: copies runs of the shuffled per-worker buffer
  /// straight into the batch arena.
  bool NextBatch(TupleBatch* out) override;
  Status status() const override { return status_; }

  /// Blocks assigned to this worker in the current epoch.
  const std::vector<uint32_t>& assigned_blocks() const { return shard_; }

 private:
  bool RefillBuffer();

  BlockSource* source_;
  Options options_;
  std::vector<uint32_t> shard_;
  size_t next_block_ = 0;
  std::vector<Tuple> buffer_;
  size_t pos_ = 0;
  Rng shuffle_rng_;
  Status status_;
};

}  // namespace corgipile
