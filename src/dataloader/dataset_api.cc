#include "dataloader/dataset_api.h"

#include <algorithm>
#include <numeric>

namespace corgipile {

CorgiPileDataset::CorgiPileDataset(BlockSource* source, Options options)
    : source_(source), options_(options), shuffle_rng_(options.seed) {
  if (options_.buffer_tuples == 0) options_.buffer_tuples = 1;
}

Status CorgiPileDataset::StartEpoch(uint64_t epoch, uint32_t worker_id,
                                    uint32_t num_workers) {
  if (source_ == nullptr) return Status::InvalidArgument("null source");
  if (num_workers == 0 || worker_id >= num_workers) {
    return Status::InvalidArgument("bad worker id");
  }
  status_ = Status::OK();

  // All workers run this with the same seed → identical permutation; the
  // shards are therefore disjoint and cover all blocks (§5.1 step 2).
  const uint32_t n = source_->num_blocks();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  if (options_.shuffle_blocks) {
    Rng perm_rng(options_.seed ^ (epoch * 0x9E3779B97F4A7C15ULL));
    perm_rng.Shuffle(order);
  }

  const uint32_t base = n / num_workers;
  const uint32_t extra = n % num_workers;
  const uint32_t begin =
      worker_id * base + std::min(worker_id, extra);
  const uint32_t count = base + (worker_id < extra ? 1u : 0u);
  shard_.assign(order.begin() + begin, order.begin() + begin + count);

  // Per-worker tuple-shuffle RNG: distinct per worker and epoch.
  shuffle_rng_ = Rng(options_.seed ^ (epoch * 1315423911ULL) ^
                     (static_cast<uint64_t>(worker_id) << 32));
  next_block_ = 0;
  buffer_.clear();
  pos_ = 0;
  return Status::OK();
}

bool CorgiPileDataset::RefillBuffer() {
  buffer_.clear();
  pos_ = 0;
  while (next_block_ < shard_.size() &&
         buffer_.size() < options_.buffer_tuples) {
    Status st = source_->ReadBlock(shard_[next_block_], &buffer_);
    if (!st.ok()) {
      status_ = st;
      return false;
    }
    ++next_block_;
  }
  if (buffer_.empty()) return false;
  if (options_.shuffle_tuples) shuffle_rng_.Shuffle(buffer_);
  return true;
}

const Tuple* CorgiPileDataset::Next() {
  if (pos_ >= buffer_.size()) {
    if (!RefillBuffer()) return nullptr;
  }
  return &buffer_[pos_++];
}

bool CorgiPileDataset::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full()) {
    if (pos_ >= buffer_.size()) {
      if (!RefillBuffer()) break;
    }
    const size_t take =
        std::min(buffer_.size() - pos_, out->target_tuples() - out->size());
    for (size_t i = 0; i < take; ++i) out->Append(buffer_[pos_ + i]);
    pos_ += take;
  }
  return !out->empty();
}

}  // namespace corgipile
