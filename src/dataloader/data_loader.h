// DataLoader: batches an IterableDataset, PyTorch style.

#pragma once

#include <memory>
#include <vector>

#include "dataloader/dataset_api.h"

namespace corgipile {

class DataLoader {
 public:
  struct Options {
    uint32_t batch_size = 1;
    uint32_t worker_id = 0;
    uint32_t num_workers = 1;
    /// Drop the final short batch (PyTorch's drop_last).
    bool drop_last = false;
  };

  /// `dataset` is borrowed.
  DataLoader(IterableDataset* dataset, Options options);

  Status StartEpoch(uint64_t epoch);

  /// Fills *batch with up to batch_size tuples; returns false at epoch end
  /// (batch left empty, or short with drop_last=false semantics applied).
  Result<bool> NextBatch(std::vector<Tuple>* batch);

  /// Batched-pipeline form: fills the TupleBatch arena (target_tuples is
  /// set to batch_size) via one dataset NextBatch call. Same tuples, same
  /// order, same drop_last semantics as the vector overload.
  Result<bool> NextBatch(TupleBatch* batch);

 private:
  IterableDataset* dataset_;
  Options options_;
};

}  // namespace corgipile
