// Multi-process CorgiPile (paper §5): P workers, each with its own
// CorgiPileDataset shard and buffer, training one shared model with
// synchronous AllReduce gradient averaging per global batch — the
// DistributedDataParallel pattern, with worker threads standing in for the
// paper's one-process-per-GPU setup.
//
// Supervised concurrency: each worker carries a Status and a heartbeat;
// the supervisor (main loop) attributes deterministic simulated seconds to
// each worker's data path, enforces an optional straggler deadline, and
// applies a WorkerFailurePolicy when a worker errors or exceeds its
// deadline — so a dead shard or a latency-spiked device degrades the run
// according to policy instead of hanging the AllReduce barrier.
//
// Thread-safety / ownership: TrainDistributed owns its pool, replicas, and
// per-worker state. Worker tasks only touch their own slot (grads, loss,
// heartbeat) plus read-only shared parameters; the supervisor reads those
// slots strictly after the ParallelFor barrier. Data pulls happen on the
// supervisor thread (loader state is not thread-safe), which is also what
// makes per-worker SimClock attribution exact.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dataloader/dataset_api.h"
#include "iosim/sim_clock.h"
#include "ml/trainer.h"
#include "util/cancellation.h"
#include "util/threadpool.h"

namespace corgipile {

/// What the supervisor does with a worker whose data path fails (I/O
/// error, corruption) or that exceeds the straggler deadline.
enum class WorkerFailurePolicy {
  /// Cancel every worker and return the failing worker's Status.
  kFailFast = 0,
  /// Evict the worker, rescale the AllReduce denominator to the surviving
  /// workers' tuples, record the eviction in TrainResult::dropped_workers,
  /// and keep training. Deterministic given seed + fault configuration.
  kDropAndRescale,
  /// Never evict on deadline: the barrier waits for stragglers (their wait
  /// cost shows up in EpochLog::barrier_sim_seconds and the SimClock's
  /// kStragglerWait category). Hard errors still fail fast — an I/O error
  /// cannot be waited out.
  kWait,
};

const char* WorkerFailurePolicyToString(WorkerFailurePolicy policy);

struct DistributedTrainerOptions {
  uint32_t num_workers = 4;
  /// Global batch size; each worker contributes batch/num_workers tuples
  /// per step (the paper's 512 / 8 GPUs = 64).
  uint32_t global_batch_size = 512;
  /// Total buffer budget across all workers, as a fraction of the dataset;
  /// each worker gets an equal slice (§5.1 step 3).
  double buffer_fraction_total = 0.1;
  uint32_t epochs = 10;
  LrSchedule lr;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  const std::vector<Tuple>* test_set = nullptr;
  LabelType label_type = LabelType::kMulticlass;
  SimClock* clock = nullptr;
  uint64_t seed = 42;
  uint64_t init_seed = 7;
  /// Shuffle toggles forwarded to each worker's CorgiPileDataset; disable
  /// both to reproduce the No Shuffle / Shuffle Once baselines.
  bool shuffle_blocks = true;
  bool shuffle_tuples = true;
  /// Invoked after each epoch's evaluation with the current model (e.g. to
  /// compute extra metrics such as Top-5).
  std::function<void(uint32_t epoch, const Model&)> epoch_callback;

  /// Worker supervision. The defaults (fail fast, no deadline) reproduce
  /// the unsupervised behaviour exactly.
  WorkerFailurePolicy failure_policy = WorkerFailurePolicy::kFailFast;
  /// Per-worker, per-epoch budget of *simulated* seconds (requires
  /// `clock`); a worker whose attributed data-path time exceeds it is a
  /// straggler. Only simulated time counts — FaultInjector latency spikes
  /// and retry backoff are observable, real compute jitter is not — so
  /// deadline decisions are deterministic. 0 disables.
  double straggler_deadline_sim_seconds = 0.0;
  /// Whole-run simulated deadline (requires `clock`); the run returns
  /// kDeadlineExceeded at the next step boundary after expiry. 0 disables.
  double run_deadline_sim_seconds = 0.0;
};

/// Trains `model` over `source` with multi-process CorgiPile. Gradients are
/// computed by real worker threads against the (read-only) current
/// parameters and AllReduce-averaged before each update, so the result is
/// deterministic given the seed — including which workers get dropped
/// under kDropAndRescale.
Result<TrainResult> TrainDistributed(Model* model, BlockSource* source,
                                     const DistributedTrainerOptions& options);

/// Records the effective global data order the DDP execution induces:
/// microbatches of batch/num_workers tuples are drawn round-robin from the
/// workers (§5.2's argument for why multi-process ≈ single-process
/// CorgiPile). Used by the Fig. 5 bench and tests.
Result<std::vector<uint64_t>> TraceDistributedOrder(
    BlockSource* source, uint32_t num_workers, uint64_t buffer_per_worker,
    uint32_t microbatch, uint64_t seed, uint64_t epoch);

}  // namespace corgipile
