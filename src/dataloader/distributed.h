// Multi-process CorgiPile (paper §5): P workers, each with its own
// CorgiPileDataset shard and buffer, training one shared model with
// synchronous AllReduce gradient averaging per global batch — the
// DistributedDataParallel pattern, with worker threads standing in for the
// paper's one-process-per-GPU setup.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dataloader/dataset_api.h"
#include "iosim/sim_clock.h"
#include "ml/trainer.h"
#include "util/threadpool.h"

namespace corgipile {

struct DistributedTrainerOptions {
  uint32_t num_workers = 4;
  /// Global batch size; each worker contributes batch/num_workers tuples
  /// per step (the paper's 512 / 8 GPUs = 64).
  uint32_t global_batch_size = 512;
  /// Total buffer budget across all workers, as a fraction of the dataset;
  /// each worker gets an equal slice (§5.1 step 3).
  double buffer_fraction_total = 0.1;
  uint32_t epochs = 10;
  LrSchedule lr;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  const std::vector<Tuple>* test_set = nullptr;
  LabelType label_type = LabelType::kMulticlass;
  SimClock* clock = nullptr;
  uint64_t seed = 42;
  uint64_t init_seed = 7;
  /// Shuffle toggles forwarded to each worker's CorgiPileDataset; disable
  /// both to reproduce the No Shuffle / Shuffle Once baselines.
  bool shuffle_blocks = true;
  bool shuffle_tuples = true;
  /// Invoked after each epoch's evaluation with the current model (e.g. to
  /// compute extra metrics such as Top-5).
  std::function<void(uint32_t epoch, const Model&)> epoch_callback;
};

/// Trains `model` over `source` with multi-process CorgiPile. Gradients are
/// computed by real worker threads against the (read-only) current
/// parameters and AllReduce-averaged before each update, so the result is
/// deterministic given the seed.
Result<TrainResult> TrainDistributed(Model* model, BlockSource* source,
                                     const DistributedTrainerOptions& options);

/// Records the effective global data order the DDP execution induces:
/// microbatches of batch/num_workers tuples are drawn round-robin from the
/// workers (§5.2's argument for why multi-process ≈ single-process
/// CorgiPile). Used by the Fig. 5 bench and tests.
Result<std::vector<uint64_t>> TraceDistributedOrder(
    BlockSource* source, uint32_t num_workers, uint64_t buffer_per_worker,
    uint32_t microbatch, uint64_t seed, uint64_t epoch);

}  // namespace corgipile
