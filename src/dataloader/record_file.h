// TFRecord-style binary record files with a block index (paper §5.1).
//
// The paper's cluster file system cannot store millions of raw image files;
// datasets are converted to binary record files (TFRecord-like) and a block
// index marks the start/end of each block so CorgiPileDataset can read
// whole blocks. This module provides exactly that: a record file of
// length-prefixed serialized tuples, an index builder, and a BlockSource
// over the pair with the same device-cost accounting as heap tables.
//
// Record wire format: [u32 length][u32 crc32c][payload]. The CRC covers the
// payload only (TFRecord keeps a masked CRC per record for the same
// reason); 0 means "no checksum" and is never produced by the writer. A
// mismatch surfaces as kCorruption from ReadBlock so corrupt records are
// quarantined rather than fed to SGD. Reads retry transient I/O errors
// with bounded exponential backoff; an optional FaultInjector makes both
// failure modes reproducible.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "iosim/device.h"
#include "iosim/fault_injector.h"
#include "iosim/sim_clock.h"
#include "storage/block_source.h"
#include "util/mutex.h"
#include "util/status.h"

namespace corgipile {

/// Writes records as [u32 length][u32 crc32c][payload]*; payload = Tuple
/// wire format.
class RecordFileWriter {
 public:
  ~RecordFileWriter();
  static Result<std::unique_ptr<RecordFileWriter>> Create(
      const std::string& path);

  /// Attaches a fault injector; appends may then be torn (prefix persists,
  /// tail zeroed — silent until a checksum read). Not owned.
  void SetFaultInjection(FaultInjector* injector);

  Status Append(const Tuple& tuple);
  /// Fsyncs and closes; the writer is unusable afterwards.
  Status Finish();

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t records_written() const { return records_written_; }

 private:
  RecordFileWriter(int fd, uint64_t tag);
  int fd_;
  uint64_t tag_;
  FaultInjector* fault_ = nullptr;
  uint64_t bytes_written_ = 0;
  uint64_t records_written_ = 0;
  std::vector<uint8_t> scratch_;
};

/// Index of block boundaries in a record file.
struct RecordBlockIndex {
  struct Entry {
    uint64_t offset = 0;      ///< first byte of the block
    uint64_t bytes = 0;       ///< total bytes
    uint64_t num_tuples = 0;  ///< records in the block
  };
  std::vector<Entry> blocks;
  uint64_t total_tuples = 0;

  /// Plain-text serialization ("offset bytes tuples" per line).
  Status WriteFile(const std::string& path) const;
  /// Parses and structurally validates an index: offsets must be monotone
  /// and non-overlapping, every entry non-empty, and each block large
  /// enough to hold its claimed tuple count. Returns kCorruption otherwise.
  static Result<RecordBlockIndex> ReadFile(const std::string& path);

  /// Re-checks the invariants of ReadFile plus, when `file_size` is
  /// non-zero, that every block lies inside the data file.
  Status Validate(uint64_t file_size) const;
};

/// Scans a record file once and cuts it into blocks of ~block_bytes
/// (always at record boundaries; the indexing pass the paper runs with the
/// TFRecord index tool).
Result<RecordBlockIndex> BuildRecordBlockIndex(const std::string& path,
                                               uint64_t block_bytes);

/// BlockSource over a record file + index, with device-cost accounting
/// (contiguous block reads billed as one access, like the heap tables).
class RecordFileBlockSource : public BlockSource {
 public:
  ~RecordFileBlockSource() override;

  /// Opens the data file and validates the index against its actual size.
  static Result<std::unique_ptr<RecordFileBlockSource>> Open(
      const std::string& path, RecordBlockIndex index, Schema schema);

  /// Device model + clocks (may be null). Not owned.
  void SetIoAccounting(DeviceProfile device, SimClock* clock, IoStats* stats);

  /// Fault injector consulted on every block read; null to detach. Not owned.
  void SetFaultInjection(FaultInjector* injector);

  /// Retry policy for transient kIoError read failures.
  void SetRetryPolicy(RetryPolicy policy);

  const Schema& schema() const override { return schema_; }
  uint32_t num_blocks() const override {
    return static_cast<uint32_t>(index_.blocks.size());
  }
  uint64_t num_tuples() const override { return index_.total_tuples; }
  uint64_t TuplesInBlock(uint32_t block) const override {
    return index_.blocks[block].num_tuples;
  }
  Status ReadBlock(uint32_t block, std::vector<Tuple>* out) override;
  void Reset() override {
    MutexLock lock(mu_);
    last_end_offset_ = UINT64_MAX;
  }

 private:
  RecordFileBlockSource(int fd, RecordBlockIndex index, Schema schema,
                        uint64_t tag);

  Status ReadRawWithRetry(uint64_t offset, uint8_t* buf, size_t len);

  int fd_;
  RecordBlockIndex index_;
  Schema schema_;
  uint64_t tag_;
  Mutex mu_;
  DeviceProfile device_ CORGI_GUARDED_BY(mu_) = DeviceProfile::Memory();
  SimClock* clock_ CORGI_GUARDED_BY(mu_) = nullptr;
  IoStats* stats_ CORGI_GUARDED_BY(mu_) = nullptr;
  FaultInjector* fault_ CORGI_GUARDED_BY(mu_) = nullptr;
  RetryPolicy retry_ CORGI_GUARDED_BY(mu_);
  uint64_t last_end_offset_ CORGI_GUARDED_BY(mu_) = UINT64_MAX;
};

/// Convenience: writes `tuples` as a record file + index at
/// path / path+".idx" and opens a source over them.
Result<std::unique_ptr<RecordFileBlockSource>> MaterializeRecordFile(
    const Schema& schema, const std::vector<Tuple>& tuples,
    const std::string& path, uint64_t block_bytes);

}  // namespace corgipile
