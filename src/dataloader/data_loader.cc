#include "dataloader/data_loader.h"

namespace corgipile {

DataLoader::DataLoader(IterableDataset* dataset, Options options)
    : dataset_(dataset), options_(options) {
  if (options_.batch_size == 0) options_.batch_size = 1;
}

Status DataLoader::StartEpoch(uint64_t epoch) {
  if (dataset_ == nullptr) return Status::InvalidArgument("null dataset");
  return dataset_->StartEpoch(epoch, options_.worker_id,
                              options_.num_workers);
}

Result<bool> DataLoader::NextBatch(std::vector<Tuple>* batch) {
  batch->clear();
  while (batch->size() < options_.batch_size) {
    const Tuple* t = dataset_->Next();
    if (t == nullptr) {
      CORGI_RETURN_NOT_OK(dataset_->status());
      break;
    }
    batch->push_back(*t);
  }
  if (batch->empty()) return false;
  if (options_.drop_last && batch->size() < options_.batch_size) {
    batch->clear();
    return false;
  }
  return true;
}

Result<bool> DataLoader::NextBatch(TupleBatch* batch) {
  batch->set_target_tuples(options_.batch_size);
  const bool got = dataset_->NextBatch(batch);
  if (batch->size() < options_.batch_size) {
    // Short or empty fill: the shard ended (or errored) mid-batch.
    CORGI_RETURN_NOT_OK(dataset_->status());
  }
  if (!got) return false;
  if (options_.drop_last && batch->size() < options_.batch_size) {
    batch->Clear();
    return false;
  }
  return true;
}

}  // namespace corgipile
