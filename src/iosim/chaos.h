// Seeded chaos-scenario runner (DESIGN.md §12).
//
// A ChaosScenario is a script: a name, a seed, and a list of ChaosRules
// describing which named points fail, stall, or kill, and when. The runner
// arms the process FaultPlane, executes a workload body, and turns scripted
// kKill crashes into a *kill-and-restart* loop: each ChaosCrash tears the
// attempt down (stack unwinding releases every resource the workload held),
// and the body is invoked again with the attempt index — reopening the
// database from heapfiles + checkpoints exactly like a process restart.
//
// Determinism contract: a scenario's crash schedule, injected failures, and
// stall charges are pure functions of (seed, rules, workload); the report
// of a rerun compares equal field-for-field.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "iosim/fault_plane.h"
#include "iosim/sim_clock.h"
#include "util/status.h"

namespace corgipile {

/// A named, seeded fault script. `clock` (optional) receives kStall charges.
struct ChaosScenario {
  std::string name;
  uint64_t seed = 0;
  std::vector<ChaosRule> rules;
  SimClock* clock = nullptr;

  /// One-line repro string ("scenario=<name> seed=<seed>"); every chaos /
  /// fault assertion prints it so a red CI run reproduces with one command.
  std::string Describe() const;
};

/// What happened during a scenario run.
struct ChaosReport {
  std::string scenario;
  uint64_t seed = 0;
  uint32_t attempts = 0;  ///< workload invocations (1 + restarts)
  uint32_t crashes = 0;   ///< scripted kills that fired
  std::vector<std::string> crash_points;  ///< in crash order
  std::map<std::string, uint64_t> hits;   ///< per-point hit totals
  FaultPlaneStats plane;
  Status final_status;  ///< status of the last attempt

  std::string Describe() const;
};

/// Executes scenarios against workload bodies. Stateless; every method
/// arms the process FaultPlane on entry and disarms it on exit.
class ChaosRunner {
 public:
  /// Runs `body` once under the scenario. A ChaosCrash is caught and
  /// recorded (crashes=1, final_status=kCancelled describing the crash);
  /// it does NOT restart.
  static ChaosReport Run(const ChaosScenario& scenario,
                         const std::function<Status()>& body);

  /// Kill-and-restart: invokes `body(attempt)` until an attempt finishes
  /// without a scripted crash or `max_attempts` is exhausted. Each crash
  /// unwinds the attempt and increments the counter; kill rules are
  /// one-shot inside the FaultPlane, so a restarted attempt runs past the
  /// point that killed its predecessor. The body returning non-OK ends the
  /// loop immediately (a real failure, not a scripted crash).
  static ChaosReport RunToCompletion(
      const ChaosScenario& scenario,
      const std::function<Status(uint32_t attempt)>& body,
      uint32_t max_attempts = 8);
};

}  // namespace corgipile
