// Storage device cost model.
//
// The paper's hardware results are driven by the latency/bandwidth asymmetry
// between random and sequential access on block-addressable secondary
// storage (its §4.1 analysis models a random read of b tuples as
// t_lat + b * t_t). We capture exactly that: a device is a pair
// (access latency, transfer bandwidth), and a read of `bytes` bytes costs
//   latency (if it is a discontiguous access) + bytes / bandwidth.
//
// Profiles are calibrated from the paper's testbed description (§7.1.1):
// HDD with ~140 MB/s peak bandwidth, SSD with ~1 GB/s.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace corgipile {

/// Device kind for the built-in profiles.
enum class DeviceKind { kHdd, kSsd, kMemory };

const char* DeviceKindToString(DeviceKind kind);

/// Latency/bandwidth description of a storage device.
struct DeviceProfile {
  std::string name;
  /// Cost of one discontiguous (random) access: seek+rotate for HDD, command
  /// latency for SSD, ~nothing for memory. Seconds.
  double random_access_latency_s = 0.0;
  /// Sustained sequential transfer bandwidth, bytes per second.
  double bandwidth_bytes_per_s = 1.0;
  /// Per-request fixed CPU/driver overhead applied to every I/O, including
  /// sequential ones. Seconds.
  double per_request_overhead_s = 0.0;

  /// Built-in profiles.
  static DeviceProfile Hdd();
  static DeviceProfile Ssd();
  static DeviceProfile Memory();
  static DeviceProfile ForKind(DeviceKind kind);

  /// Profile for experiments on down-scaled data: per-access latencies are
  /// multiplied by `factor` (the data-scale ratio, e.g. 1/1000 when a
  /// 2.8 GB dataset is reproduced at 2.8 MB) while bandwidth is unchanged.
  /// With block sizes scaled by the same factor, every cost *ratio* of the
  /// paper's experiments (random vs sequential, seek amortization per
  /// block) is preserved exactly; absolute simulated times scale by factor.
  DeviceProfile Scaled(double factor) const;

  /// Simulated time to read/write `bytes` contiguous bytes, continuing from
  /// the previous access (no seek).
  double SequentialCost(uint64_t bytes) const;

  /// Simulated time for a discontiguous access of `bytes` bytes.
  double RandomCost(uint64_t bytes) const;

  /// Effective throughput (bytes/s) when reading the whole device in random
  /// chunks of `chunk_bytes`. This is the quantity plotted in the paper's
  /// Fig. 20: as chunk size grows, random throughput approaches sequential.
  double RandomChunkThroughput(uint64_t chunk_bytes) const;
};

/// Counters for I/O activity, kept separately from the simulated clock so
/// tests can assert on access patterns. One IoStats sink is shared by every
/// shard of a sharded table, whose heapfiles charge reads from concurrent
/// prefetch tasks under their own per-file mutexes — the counters are
/// atomic so those cross-file updates don't race. Sums are
/// order-independent, so totals stay deterministic under concurrency.
struct IoStats {
  std::atomic<uint64_t> sequential_reads{0};
  std::atomic<uint64_t> random_reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};

  IoStats() = default;
  IoStats(const IoStats& o) { *this = o; }
  IoStats& operator=(const IoStats& o) {
    sequential_reads = o.sequential_reads.load();
    random_reads = o.random_reads.load();
    writes = o.writes.load();
    bytes_read = o.bytes_read.load();
    bytes_written = o.bytes_written.load();
    return *this;
  }

  void Clear() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& o) {
    sequential_reads += o.sequential_reads.load();
    random_reads += o.random_reads.load();
    writes += o.writes.load();
    bytes_read += o.bytes_read.load();
    bytes_written += o.bytes_written.load();
    return *this;
  }

  std::string ToString() const;
};

}  // namespace corgipile
