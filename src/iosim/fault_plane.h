// Process-wide deterministic chaos plane (DESIGN.md §12).
//
// Generalizes the storage-level FaultInjector into a cross-subsystem fault
// surface: code in storage, shuffle, trainer, checkpoint, db, and serve
// declares *named points* with CORGI_CRASH_POINT / CORGI_INJECT_POINT, and
// a chaos scenario arms the plane with a seeded rule list describing what
// happens at which hit of which point:
//
//  * kFail  — the point returns an injected non-OK Status (channel-send
//             failures, allocation failures, serve-resolution failures).
//  * kStall — the point charges simulated seconds to the armed SimClock
//             (TimeCategory::kChaosStall); never a real sleep.
//  * kKill  — the point throws ChaosCrash, tearing the workload down
//             mid-flight. Only the arming thread is killed (throwing
//             across a worker thread's start function would terminate the
//             process); non-arming threads count the rule as suppressed.
//
// Every decision is a pure function of (scenario seed, point name, hit
// index), so a scenario replays bit-for-bit: same seed, same crashes, same
// stalls, same injected failures. The plane is disarmed by default and the
// hooks compile to a single relaxed atomic load in that state, so points
// are cheap enough for hot paths.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "iosim/sim_clock.h"
#include "util/mutex.h"
#include "util/status.h"

namespace corgipile {

/// What a matched rule does at a chaos point.
enum class ChaosAction : int {
  kFail = 0,  ///< return an injected Status (ignored at void points)
  kKill,      ///< throw ChaosCrash on the arming thread
  kStall,     ///< charge stall_seconds to the armed SimClock
};

const char* ChaosActionToString(ChaosAction a);

/// One scripted fault. A rule fires when its point's 0-based hit counter
/// lands in [from_hit, from_hit + repeat) — or, when `probability` > 0,
/// when additionally the seeded per-hit draw (a pure function of scenario
/// seed × point × hit index) falls below `probability`. kKill rules are
/// one-shot regardless of `repeat`: after the first crash they are consumed
/// so a restarted attempt can run past the point.
struct ChaosRule {
  std::string point;
  ChaosAction action = ChaosAction::kFail;

  uint64_t from_hit = 0;
  uint64_t repeat = 1;  ///< 0 = every hit from from_hit onward
  double probability = 0.0;  ///< 0 = fire unconditionally inside the window

  /// kFail payload.
  StatusCode code = StatusCode::kIoError;
  std::string message;  ///< defaulted to a descriptive one when empty

  /// kStall payload, charged as TimeCategory::kChaosStall.
  double stall_seconds = 0.0;
};

/// Thrown by a kKill rule on the arming thread. Deliberately not derived
/// from std::exception: generic catch(const std::exception&) recovery
/// blocks must not swallow a scripted crash.
struct ChaosCrash {
  std::string point;
  uint64_t hit = 0;
  uint64_t seed = 0;
  std::string scenario;

  std::string ToString() const;
};

/// Counters describing plane activity since the last Arm().
struct FaultPlaneStats {
  uint64_t kills = 0;              ///< ChaosCrash thrown
  uint64_t suppressed_kills = 0;   ///< kill matched off the arming thread
  uint64_t injected_failures = 0;  ///< kFail statuses returned
  uint64_t dropped_failures = 0;   ///< kFail matched at a void point
  uint64_t stalls = 0;             ///< kStall charges
  double stalled_seconds = 0.0;
};

/// The process-wide chaos plane. Disarmed by default; a ChaosRunner (or a
/// test) arms it with a scenario's rules for the duration of one workload.
/// Thread-safe; hit counting is serialized under one mutex, which is fine
/// because armed runs are short, scripted test workloads.
class FaultPlane {
 public:
  /// The singleton consulted by the CORGI_*_POINT hooks.
  static FaultPlane* Process();
  /// Cheap disarmed-check for the hooks' fast path.
  static bool ProcessArmed() {
    return internal_armed().load(std::memory_order_acquire);
  }

  /// Arms the plane. `clock` (optional) receives kStall charges; without
  /// one, stall rules only count. Replaces any previous arming.
  void Arm(std::string scenario, uint64_t seed, std::vector<ChaosRule> rules,
           SimClock* clock = nullptr);
  void Disarm();
  bool armed() const;

  /// Full-semantics hook for Status-returning contexts: counts the hit,
  /// applies stall / kill / fail rules in rule order. Called via
  /// CORGI_INJECT_POINT; safe (and a cheap no-op) while disarmed.
  Status OnPoint(const char* point);

  /// Stall/kill-only hook for void contexts (CORGI_CRASH_POINT). A kFail
  /// rule matching here is counted as dropped, never silently lost.
  void OnPointVoid(const char* point);

  /// Hits of `point` since the last Arm (0 when never hit).
  uint64_t Hits(const std::string& point) const;
  /// All points hit since the last Arm, ordered by name.
  std::map<std::string, uint64_t> HitSnapshot() const;
  FaultPlaneStats StatsSnapshot() const;

  std::string scenario() const;
  uint64_t seed() const;

 private:
  FaultPlane() = default;

  static std::atomic<bool>& internal_armed();

  struct Decision {
    bool kill = false;
    uint64_t kill_hit = 0;
    double stall_seconds = 0.0;
    uint64_t stall_count = 0;
    Status fail;  // OK unless a kFail rule matched
  };
  /// Counts the hit and resolves matching rules; all side effects
  /// (throwing, clock charges) happen in the callers after unlock.
  Decision Resolve(const char* point, bool fail_allowed);
  /// Shared body of OnPoint / OnPointVoid.
  Status Apply(const char* point, bool fail_allowed);

  /// True iff `rule` fires at hit index `hit` (pure in seed × point × hit).
  bool RuleFires(const ChaosRule& rule, uint64_t hit) const
      CORGI_REQUIRES(mu_);

  mutable Mutex mu_;
  std::string scenario_ CORGI_GUARDED_BY(mu_);
  uint64_t seed_ CORGI_GUARDED_BY(mu_) = 0;
  std::vector<ChaosRule> rules_ CORGI_GUARDED_BY(mu_);
  std::vector<bool> rule_consumed_ CORGI_GUARDED_BY(mu_);
  SimClock* clock_ CORGI_GUARDED_BY(mu_) = nullptr;
  std::thread::id armed_thread_ CORGI_GUARDED_BY(mu_);
  /// Ordered map: HitSnapshot iterates it, and iteration order must be
  /// deterministic (the determinism linter forbids unordered iteration).
  std::map<std::string, uint64_t> hits_ CORGI_GUARDED_BY(mu_);
  FaultPlaneStats stats_ CORGI_GUARDED_BY(mu_);
};

/// Declares a named chaos point in a void (or non-Status) context. Applies
/// kStall and kKill rules; compiles to one atomic load while disarmed.
#define CORGI_CRASH_POINT(name)                                   \
  do {                                                            \
    if (::corgipile::FaultPlane::ProcessArmed()) {                \
      ::corgipile::FaultPlane::Process()->OnPointVoid(name);      \
    }                                                             \
  } while (false)

/// Declares a named chaos point in a Status / Result-returning function.
/// Applies kStall, kKill, and kFail rules; a matched kFail propagates as
/// the function's return value via CORGI_RETURN_NOT_OK semantics.
#define CORGI_INJECT_POINT(name)                                  \
  do {                                                            \
    if (::corgipile::FaultPlane::ProcessArmed()) {                \
      ::corgipile::Status _chaos_st =                             \
          ::corgipile::FaultPlane::Process()->OnPoint(name);      \
      if (!_chaos_st.ok()) return _chaos_st;                      \
    }                                                             \
  } while (false)

}  // namespace corgipile
