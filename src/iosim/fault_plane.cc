#include "iosim/fault_plane.h"

#include <sstream>

namespace corgipile {

namespace {

// SplitMix64 finalizer — same mixing idiom as FaultInjector::HashDraw, so
// probability-gated rules are pure functions of (seed, point, hit).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashPoint(const char* point) {
  // FNV-1a over the point name; stable across platforms.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char* p = point; *p; ++p) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p));
    h *= 0x100000001B3ULL;
  }
  return h;
}

double UnitDraw(uint64_t seed, const char* point, uint64_t hit) {
  const uint64_t h = Mix64(seed ^ Mix64(HashPoint(point) ^ Mix64(hit)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* ChaosActionToString(ChaosAction a) {
  switch (a) {
    case ChaosAction::kFail: return "fail";
    case ChaosAction::kKill: return "kill";
    case ChaosAction::kStall: return "stall";
  }
  return "?";
}

std::string ChaosCrash::ToString() const {
  std::ostringstream os;
  os << "ChaosCrash at point '" << point << "' hit #" << hit
     << " (scenario=" << scenario << " seed=" << seed << ")";
  return os.str();
}

FaultPlane* FaultPlane::Process() {
  static FaultPlane* plane = new FaultPlane();  // intentionally leaked
  return plane;
}

std::atomic<bool>& FaultPlane::internal_armed() {
  static std::atomic<bool> armed{false};
  return armed;
}

void FaultPlane::Arm(std::string scenario, uint64_t seed,
                     std::vector<ChaosRule> rules, SimClock* clock) {
  MutexLock lock(mu_);
  scenario_ = std::move(scenario);
  seed_ = seed;
  rules_ = std::move(rules);
  rule_consumed_.assign(rules_.size(), false);
  clock_ = clock;
  armed_thread_ = std::this_thread::get_id();
  hits_.clear();
  stats_ = FaultPlaneStats{};
  internal_armed().store(true, std::memory_order_release);
}

void FaultPlane::Disarm() {
  MutexLock lock(mu_);
  internal_armed().store(false, std::memory_order_release);
  rules_.clear();
  rule_consumed_.clear();
  clock_ = nullptr;
}

bool FaultPlane::armed() const { return ProcessArmed(); }

bool FaultPlane::RuleFires(const ChaosRule& rule, uint64_t hit) const {
  if (hit < rule.from_hit) return false;
  if (rule.repeat != 0 && hit >= rule.from_hit + rule.repeat) return false;
  if (rule.probability > 0.0) {
    return UnitDraw(seed_, rule.point.c_str(), hit) < rule.probability;
  }
  return true;
}

FaultPlane::Decision FaultPlane::Resolve(const char* point,
                                         bool fail_allowed) {
  Decision d;
  MutexLock lock(mu_);
  if (!internal_armed().load(std::memory_order_acquire)) return d;
  const uint64_t hit = hits_[point]++;
  const bool on_arming_thread = std::this_thread::get_id() == armed_thread_;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const ChaosRule& rule = rules_[i];
    if (rule_consumed_[i] || rule.point != point) continue;
    if (!RuleFires(rule, hit)) continue;
    switch (rule.action) {
      case ChaosAction::kStall:
        d.stall_seconds += rule.stall_seconds;
        ++d.stall_count;
        ++stats_.stalls;
        stats_.stalled_seconds += rule.stall_seconds;
        break;
      case ChaosAction::kKill:
        if (!on_arming_thread) {
          ++stats_.suppressed_kills;
          break;
        }
        rule_consumed_[i] = true;  // one-shot: restarts run past the point
        d.kill = true;
        d.kill_hit = hit;
        ++stats_.kills;
        break;
      case ChaosAction::kFail: {
        if (!fail_allowed) {
          ++stats_.dropped_failures;
          break;
        }
        if (!d.fail.ok()) break;  // first matching fail rule wins
        std::ostringstream os;
        if (rule.message.empty()) {
          os << "injected failure at '" << point << "' hit #" << hit;
        } else {
          os << rule.message;
        }
        os << " (scenario=" << scenario_ << " seed=" << seed_ << ")";
        d.fail = Status(rule.code, os.str());
        ++stats_.injected_failures;
        break;
      }
    }
    if (d.kill) break;  // a crash preempts later rules at this hit
  }
  return d;
}

Status FaultPlane::Apply(const char* point, bool fail_allowed) {
  Decision d = Resolve(point, fail_allowed);
  if (d.stall_seconds > 0.0) {
    MutexLock lock(mu_);
    if (clock_ != nullptr) {
      SimClock* clock = clock_;
      lock.Unlock();
      clock->Advance(TimeCategory::kChaosStall, d.stall_seconds);
    }
  }
  if (d.kill) {
    ChaosCrash crash;
    crash.point = point;
    crash.hit = d.kill_hit;
    {
      MutexLock lock(mu_);
      crash.seed = seed_;
      crash.scenario = scenario_;
    }
    throw crash;
  }
  return d.fail;
}

Status FaultPlane::OnPoint(const char* point) {
  return Apply(point, /*fail_allowed=*/true);
}

void FaultPlane::OnPointVoid(const char* point) {
  // Kill/stall semantics are identical to OnPoint; fail rules are counted
  // as dropped inside Resolve, so the returned Status is always OK here.
  Status st = Apply(point, /*fail_allowed=*/false);
  (void)st;  // always OK with fail_allowed=false
}

uint64_t FaultPlane::Hits(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

std::map<std::string, uint64_t> FaultPlane::HitSnapshot() const {
  MutexLock lock(mu_);
  return hits_;
}

FaultPlaneStats FaultPlane::StatsSnapshot() const {
  MutexLock lock(mu_);
  return stats_;
}

std::string FaultPlane::scenario() const {
  MutexLock lock(mu_);
  return scenario_;
}

uint64_t FaultPlane::seed() const {
  MutexLock lock(mu_);
  return seed_;
}

}  // namespace corgipile
