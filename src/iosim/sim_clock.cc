#include "iosim/sim_clock.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace corgipile {

const char* TimeCategoryToString(TimeCategory c) {
  switch (c) {
    case TimeCategory::kIoRead: return "io_read";
    case TimeCategory::kIoWrite: return "io_write";
    case TimeCategory::kDecompress: return "decompress";
    case TimeCategory::kCompute: return "compute";
    case TimeCategory::kShuffleCpu: return "shuffle_cpu";
    case TimeCategory::kRetryBackoff: return "retry_backoff";
    case TimeCategory::kStragglerWait: return "straggler_wait";
    case TimeCategory::kServe: return "serve";
    case TimeCategory::kChaosStall: return "chaos_stall";
    case TimeCategory::kOther: return "other";
    case TimeCategory::kNumCategories: break;
  }
  return "?";
}

void SimClock::Advance(TimeCategory category, double seconds) {
  MutexLock lock(mu_);
  elapsed_[static_cast<size_t>(category)] += seconds;
}

double SimClock::Elapsed(TimeCategory category) const {
  MutexLock lock(mu_);
  return elapsed_[static_cast<size_t>(category)];
}

double SimClock::TotalElapsed() const {
  MutexLock lock(mu_);
  double t = 0.0;
  for (double x : elapsed_) t += x;
  return t;
}

void SimClock::Reset() {
  MutexLock lock(mu_);
  elapsed_.fill(0.0);
}

std::string SimClock::ToString() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  for (size_t i = 0; i < elapsed_.size(); ++i) {
    if (i) os << " ";
    os << TimeCategoryToString(static_cast<TimeCategory>(i)) << "="
       << elapsed_[i] << "s";
  }
  return os.str();
}

void PipelineTimeline::AddBatch(double fill_seconds, double consume_seconds) {
  fills_.push_back(fill_seconds);
  consumes_.push_back(consume_seconds);
}

double PipelineTimeline::TotalFill() const {
  return std::accumulate(fills_.begin(), fills_.end(), 0.0);
}

double PipelineTimeline::TotalConsume() const {
  return std::accumulate(consumes_.begin(), consumes_.end(), 0.0);
}

double PipelineTimeline::SingleBufferedDuration() const {
  return TotalFill() + TotalConsume();
}

double PipelineTimeline::DoubleBufferedDuration() const {
  if (fills_.empty()) return 0.0;
  double t = fills_[0];
  for (size_t i = 1; i < fills_.size(); ++i) {
    t += std::max(fills_[i], consumes_[i - 1]);
  }
  t += consumes_.back();
  return t;
}

}  // namespace corgipile
