#include "iosim/chaos.h"

#include <sstream>
#include <utility>

namespace corgipile {

namespace {

/// Arms the process FaultPlane for one scope; disarms on destruction so a
/// throwing workload can never leave the plane armed for the next test.
class ScopedArm {
 public:
  explicit ScopedArm(const ChaosScenario& s) {
    FaultPlane::Process()->Arm(s.name, s.seed, s.rules, s.clock);
  }
  ~ScopedArm() { FaultPlane::Process()->Disarm(); }
  ScopedArm(const ScopedArm&) = delete;
  ScopedArm& operator=(const ScopedArm&) = delete;
};

void FillReport(ChaosReport* report) {
  FaultPlane* plane = FaultPlane::Process();
  report->hits = plane->HitSnapshot();
  report->plane = plane->StatsSnapshot();
}

}  // namespace

std::string ChaosScenario::Describe() const {
  std::ostringstream os;
  os << "scenario=" << name << " seed=" << seed;
  return os.str();
}

std::string ChaosReport::Describe() const {
  std::ostringstream os;
  os << "scenario=" << scenario << " seed=" << seed
     << " attempts=" << attempts << " crashes=" << crashes;
  if (!crash_points.empty()) {
    os << " crash_points=[";
    for (size_t i = 0; i < crash_points.size(); ++i) {
      if (i) os << ",";
      os << crash_points[i];
    }
    os << "]";
  }
  os << " status=" << final_status.ToString();
  return os.str();
}

ChaosReport ChaosRunner::Run(const ChaosScenario& scenario,
                             const std::function<Status()>& body) {
  ChaosReport report;
  report.scenario = scenario.name;
  report.seed = scenario.seed;
  ScopedArm arm(scenario);
  report.attempts = 1;
  try {
    report.final_status = body();
  } catch (const ChaosCrash& crash) {
    ++report.crashes;
    report.crash_points.push_back(crash.point);
    report.final_status = Status::Cancelled(crash.ToString());
  }
  FillReport(&report);
  return report;
}

ChaosReport ChaosRunner::RunToCompletion(
    const ChaosScenario& scenario,
    const std::function<Status(uint32_t attempt)>& body,
    uint32_t max_attempts) {
  ChaosReport report;
  report.scenario = scenario.name;
  report.seed = scenario.seed;
  ScopedArm arm(scenario);
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    ++report.attempts;
    bool crashed = false;
    try {
      report.final_status = body(attempt);
    } catch (const ChaosCrash& crash) {
      crashed = true;
      ++report.crashes;
      report.crash_points.push_back(crash.point);
      report.final_status = Status::Cancelled(crash.ToString());
    }
    if (!crashed) {
      FillReport(&report);
      return report;
    }
  }
  std::ostringstream os;
  os << "still crashing after " << max_attempts << " attempts ("
     << scenario.Describe() << "); last: " << report.final_status.ToString();
  report.final_status = Status::Internal(os.str());
  FillReport(&report);
  return report;
}

}  // namespace corgipile
