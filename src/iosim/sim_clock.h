// Simulated clock: accumulates modeled time by category.
//
// Benches combine modeled I/O time (from DeviceProfile costs) with real
// measured compute time so that "HDD" and "SSD" experiment rows are
// meaningful on any build machine.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace corgipile {

/// Time categories tracked by SimClock.
enum class TimeCategory : int {
  kIoRead = 0,
  kIoWrite,
  kDecompress,
  kCompute,
  kShuffleCpu,
  kRetryBackoff,  ///< simulated backoff waits of the I/O retry paths
  kStragglerWait,  ///< time workers idle at a barrier waiting for stragglers
  kServe,          ///< inference-engine batch service time (src/serve/)
  kChaosStall,     ///< seeded stalls injected by the FaultPlane (§12)
  kOther,
  kNumCategories,
};

const char* TimeCategoryToString(TimeCategory c);

/// Thread-safe accumulator of simulated seconds per category.
class SimClock {
 public:
  void Advance(TimeCategory category, double seconds);

  double Elapsed(TimeCategory category) const;
  /// Sum over all categories.
  double TotalElapsed() const;

  void Reset();

  std::string ToString() const;

 private:
  mutable Mutex mu_;
  std::array<double, static_cast<size_t>(TimeCategory::kNumCategories)>
      elapsed_ CORGI_GUARDED_BY(mu_){};
};

/// Computes the duration of a producer/consumer pipeline given per-batch
/// fill (producer) and consume (consumer) durations.
///
/// Single buffering serializes fills and consumes:
///   T = sum(fill_i) + sum(consume_i).
/// Double buffering overlaps the fill of batch i+1 with the consumption of
/// batch i (the paper's §6.3 optimization):
///   T = fill_0 + sum_{i=1..n-1} max(fill_i, consume_{i-1}) + consume_{n-1}.
class PipelineTimeline {
 public:
  void AddBatch(double fill_seconds, double consume_seconds);

  size_t num_batches() const { return fills_.size(); }
  double TotalFill() const;
  double TotalConsume() const;
  double SingleBufferedDuration() const;
  double DoubleBufferedDuration() const;

 private:
  std::vector<double> fills_;
  std::vector<double> consumes_;
};

}  // namespace corgipile
