#include "iosim/device.h"

#include <sstream>

namespace corgipile {

const char* DeviceKindToString(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kHdd: return "HDD";
    case DeviceKind::kSsd: return "SSD";
    case DeviceKind::kMemory: return "MEM";
  }
  return "?";
}

DeviceProfile DeviceProfile::Hdd() {
  // §7.1.1: HDD with a maximum 140 MB/s bandwidth; typical 7.2k-rpm
  // seek+rotate ~8 ms.
  return DeviceProfile{"HDD", 8e-3, 140.0 * 1024 * 1024, 20e-6};
}

DeviceProfile DeviceProfile::Ssd() {
  // §7.1.1: SSD with a maximum 1 GB/s bandwidth; NVMe-class read latency
  // ~90 µs for a cold random request.
  return DeviceProfile{"SSD", 90e-6, 1024.0 * 1024 * 1024, 10e-6};
}

DeviceProfile DeviceProfile::Memory() {
  return DeviceProfile{"MEM", 100e-9, 10.0 * 1024 * 1024 * 1024, 0.0};
}

DeviceProfile DeviceProfile::ForKind(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kHdd: return Hdd();
    case DeviceKind::kSsd: return Ssd();
    case DeviceKind::kMemory: return Memory();
  }
  return Memory();
}

DeviceProfile DeviceProfile::Scaled(double factor) const {
  DeviceProfile scaled = *this;
  scaled.name = name + "-scaled";
  scaled.random_access_latency_s *= factor;
  scaled.per_request_overhead_s *= factor;
  return scaled;
}

double DeviceProfile::SequentialCost(uint64_t bytes) const {
  return per_request_overhead_s +
         static_cast<double>(bytes) / bandwidth_bytes_per_s;
}

double DeviceProfile::RandomCost(uint64_t bytes) const {
  return random_access_latency_s + per_request_overhead_s +
         static_cast<double>(bytes) / bandwidth_bytes_per_s;
}

double DeviceProfile::RandomChunkThroughput(uint64_t chunk_bytes) const {
  if (chunk_bytes == 0) return 0.0;
  return static_cast<double>(chunk_bytes) / RandomCost(chunk_bytes);
}

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "seq_reads=" << sequential_reads << " rand_reads=" << random_reads
     << " writes=" << writes << " bytes_read=" << bytes_read
     << " bytes_written=" << bytes_written;
  return os.str();
}

}  // namespace corgipile
