#include "iosim/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/rng.h"

namespace corgipile {

namespace {

// Distinct decision channels per I/O site.
constexpr uint64_t kSaltTransient = 0x71;
constexpr uint64_t kSaltTransientCount = 0x72;
constexpr uint64_t kSaltPermanent = 0x73;
constexpr uint64_t kSaltBitFlip = 0x74;
constexpr uint64_t kSaltBitPos = 0x75;
constexpr uint64_t kSaltTorn = 0x76;
constexpr uint64_t kSaltTornLen = 0x77;
constexpr uint64_t kSaltLatency = 0x78;

}  // namespace

std::string FaultStats::ToString() const {
  std::ostringstream os;
  os << "injected{transient=" << injected_transient_errors.load()
     << " permanent=" << injected_permanent_errors.load()
     << " bit_flips=" << injected_bit_flips.load()
     << " torn_writes=" << injected_torn_writes.load()
     << " latency_spikes=" << injected_latency_spikes.load()
     << "} recovery{retries=" << retries.load()
     << " recovered=" << recovered.load()
     << " permanent_failures=" << permanent_failures.load() << "}";
  return os.str();
}

double RetryPolicy::BackoffSeconds(uint32_t failure_index) const {
  return initial_backoff_s *
         std::pow(backoff_multiplier, static_cast<double>(failure_index));
}

double RetryPolicy::MaxTotalBackoffSeconds() const {
  double total = 0.0;
  for (uint32_t i = 0; i < max_retries; ++i) total += BackoffSeconds(i);
  return total;
}

FaultInjector::FaultInjector(FaultConfig config) : config_(config) {}

uint64_t FaultInjector::TagForPath(const std::string& path) {
  uint64_t state = 0xC0861D09A17E5ULL;
  for (char c : path) {
    state ^= static_cast<uint64_t>(static_cast<uint8_t>(c));
    SplitMix64(state);
  }
  return SplitMix64(state);
}

uint64_t FaultInjector::HashDraw(uint64_t tag, uint64_t offset,
                                 uint64_t salt) const {
  uint64_t state = config_.seed ^ (tag * 0x9E3779B97F4A7C15ULL) ^
                   (offset * 0xBF58476D1CE4E5B9ULL) ^
                   (salt * 0x94D049BB133111EBULL);
  SplitMix64(state);
  return SplitMix64(state);
}

double FaultInjector::UnitDraw(uint64_t tag, uint64_t offset,
                               uint64_t salt) const {
  return static_cast<double>(HashDraw(tag, offset, salt) >> 11) * 0x1.0p-53;
}

Status FaultInjector::OnReadAttempt(uint64_t tag, uint64_t offset) {
  if (config_.permanent_read_error_rate > 0 &&
      UnitDraw(tag, offset, kSaltPermanent) <
          config_.permanent_read_error_rate) {
    stats_.injected_permanent_errors.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("injected permanent read error at offset " +
                           std::to_string(offset));
  }
  if (config_.transient_read_error_rate > 0 &&
      UnitDraw(tag, offset, kSaltTransient) <
          config_.transient_read_error_rate) {
    const uint64_t site = HashDraw(tag, offset, kSaltTransientCount);
    const uint32_t budget =
        1 + static_cast<uint32_t>(
                site % std::max<uint32_t>(1, config_.max_transient_failures));
    MutexLock lock(mu_);
    auto it = transient_remaining_.emplace(site, budget).first;
    if (it->second > 0) {
      --it->second;
      stats_.injected_transient_errors.fetch_add(1, std::memory_order_relaxed);
      return Status::IoError("injected transient read error at offset " +
                             std::to_string(offset));
    }
  }
  return Status::OK();
}

bool FaultInjector::MaybeCorrupt(uint64_t tag, uint64_t offset, uint8_t* data,
                                 size_t len) {
  if (len == 0 || config_.bit_flip_rate <= 0) return false;
  if (UnitDraw(tag, offset, kSaltBitFlip) >= config_.bit_flip_rate) {
    return false;
  }
  const uint64_t bit = HashDraw(tag, offset, kSaltBitPos) % (len * 8);
  data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  stats_.injected_bit_flips.fetch_add(1, std::memory_order_relaxed);
  return true;
}

double FaultInjector::ReadLatencySpikeSeconds(uint64_t tag, uint64_t offset) {
  if (config_.latency_spike_rate <= 0 ||
      UnitDraw(tag, offset, kSaltLatency) >= config_.latency_spike_rate) {
    return 0.0;
  }
  stats_.injected_latency_spikes.fetch_add(1, std::memory_order_relaxed);
  return config_.latency_spike_seconds;
}

uint64_t FaultInjector::TornWriteBytes(uint64_t tag, uint64_t offset,
                                       uint64_t len) {
  if (len == 0 || config_.torn_write_rate <= 0) return len;
  if (UnitDraw(tag, offset, kSaltTorn) >= config_.torn_write_rate) return len;
  stats_.injected_torn_writes.fetch_add(1, std::memory_order_relaxed);
  // Persist a strict prefix: at least 0, at most len-1 bytes survive.
  return HashDraw(tag, offset, kSaltTornLen) % len;
}

}  // namespace corgipile
