// Deterministic, seeded storage-fault injection (torn writes, bit rot,
// transient read errors, latency spikes).
//
// The paper positions CorgiPile inside real storage engines (PostgreSQL heap
// pages, TFRecord-style cluster files, §5–§6) where imperfect I/O is a fact
// of life. The injector gives the read/write paths a fault model they can be
// tested against: every decision is a pure function of (seed, file tag, byte
// offset), so a given configuration produces the exact same faults on every
// run — experiments stay reproducible bit-for-bit even under injected
// failures.
//
// Fault taxonomy:
//  * transient read errors — an I/O site fails its first k attempts and then
//    succeeds (a flaky cable / SAN hiccup); recovered by bounded
//    exponential-backoff retry in the read paths.
//  * permanent read errors — a site that always fails (dead sector); the
//    retry budget exhausts and the error surfaces as a non-OK Status.
//  * bit-flip corruption — sticky per site ("bad media"): every read of the
//    site returns the payload with one deterministic bit flipped. Detected
//    by page / record checksums, never retried (re-reading bad media does
//    not help), and quarantined by the block pipeline.
//  * torn writes — a write persists only a prefix of the payload (crash /
//    power loss between sectors); silent at write time, detected by the
//    checksum on the next read.
//  * latency spikes — extra simulated seconds charged on reads.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "util/mutex.h"
#include "util/status.h"

namespace corgipile {

/// Knobs of the fault model. All rates are per I/O site (a (file, offset)
/// pair); 0 disables the corresponding fault class.
struct FaultConfig {
  uint64_t seed = 0;

  /// Probability that a read site fails transiently. A firing site fails
  /// between 1 and `max_transient_failures` consecutive attempts, then
  /// succeeds forever.
  double transient_read_error_rate = 0.0;
  uint32_t max_transient_failures = 2;

  /// Probability that a read site always fails (dead sector).
  double permanent_read_error_rate = 0.0;

  /// Probability that a read site is bad media: every read of it comes back
  /// with one bit flipped at a deterministic position.
  double bit_flip_rate = 0.0;

  /// Probability that a write is torn: only a prefix of the payload is
  /// persisted, the rest of the range is left stale/garbage.
  double torn_write_rate = 0.0;

  /// Probability of a latency spike on a read, and its simulated duration.
  double latency_spike_rate = 0.0;
  double latency_spike_seconds = 0.010;

  bool AnyFaults() const {
    return transient_read_error_rate > 0 || permanent_read_error_rate > 0 ||
           bit_flip_rate > 0 || torn_write_rate > 0 || latency_spike_rate > 0;
  }
};

/// Counters describing injector and recovery activity. Incremented by the
/// injector itself (injected_*) and by the retrying read paths
/// (retries/recovered/permanent_failures).
struct FaultStats {
  std::atomic<uint64_t> injected_transient_errors{0};
  std::atomic<uint64_t> injected_permanent_errors{0};
  std::atomic<uint64_t> injected_bit_flips{0};  ///< one per corrupted read
  std::atomic<uint64_t> injected_torn_writes{0};
  std::atomic<uint64_t> injected_latency_spikes{0};

  std::atomic<uint64_t> retries{0};    ///< read attempts repeated after failure
  std::atomic<uint64_t> recovered{0};  ///< reads that succeeded after >=1 retry
  std::atomic<uint64_t> permanent_failures{0};  ///< reads surfaced as errors

  std::string ToString() const;
};

/// Bounded exponential backoff applied to transient I/O errors. Backoff
/// time is charged on the SimClock (TimeCategory::kRetryBackoff), not slept
/// for real, so fault experiments stay fast.
struct RetryPolicy {
  uint32_t max_retries = 3;  ///< total attempts = 1 + max_retries
  double initial_backoff_s = 1e-3;
  double backoff_multiplier = 2.0;

  double BackoffSeconds(uint32_t failure_index) const;  ///< 0-based

  /// Upper bound on the backoff one read can charge to the SimClock: the
  /// sum of BackoffSeconds over the full retry budget. Property-tested
  /// against randomized fault schedules in tests/property_test.cc.
  double MaxTotalBackoffSeconds() const;
};

/// Deterministic fault source consulted by HeapFile and the record-file
/// reader/writer. Thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  /// Stable tag for a file path; read/write hooks key their decisions on it
  /// so the same path faults identically across open/close cycles.
  static uint64_t TagForPath(const std::string& path);

  /// Called once per low-level read attempt of the range starting at
  /// `offset`. Returns a transient/permanent IoError when a fault fires.
  Status OnReadAttempt(uint64_t tag, uint64_t offset);

  /// Applies sticky bit-flip corruption to a freshly read buffer. Returns
  /// true when the buffer was corrupted.
  bool MaybeCorrupt(uint64_t tag, uint64_t offset, uint8_t* data, size_t len);

  /// Extra simulated seconds to charge for this read (usually 0).
  double ReadLatencySpikeSeconds(uint64_t tag, uint64_t offset);

  /// Number of leading bytes of a `len`-byte write that actually persist.
  /// Returns `len` when no torn write fires.
  uint64_t TornWriteBytes(uint64_t tag, uint64_t offset, uint64_t len);

  FaultStats& stats() { return stats_; }
  const FaultConfig& config() const { return config_; }

 private:
  /// Uniform draw in [0,1), a pure function of (seed, tag, offset, salt).
  double UnitDraw(uint64_t tag, uint64_t offset, uint64_t salt) const;
  uint64_t HashDraw(uint64_t tag, uint64_t offset, uint64_t salt) const;

  FaultConfig config_;
  FaultStats stats_;

  Mutex mu_;
  /// Remaining consecutive failures per transient site (keyed by site hash).
  /// Lookup-only map: never iterated, so its nondeterministic bucket order
  /// cannot leak into results (the determinism linter checks iteration).
  std::unordered_map<uint64_t, uint32_t> transient_remaining_
      CORGI_GUARDED_BY(mu_);
};

}  // namespace corgipile
