// Minimal leveled logging to stderr.

#pragma once

#include <sstream>
#include <string>

namespace corgipile {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// A no-op sink so disabled levels do not evaluate the stream.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

}  // namespace internal

#define CORGI_LOG(level)                                              \
  if (::corgipile::LogLevel::level < ::corgipile::GetLogLevel()) {    \
  } else                                                              \
    ::corgipile::internal::LogMessage(::corgipile::LogLevel::level,   \
                                      __FILE__, __LINE__)             \
        .stream()

#define CORGI_DCHECK(cond)                                                 \
  if (cond) {                                                              \
  } else                                                                   \
    ::corgipile::internal::LogMessage(::corgipile::LogLevel::kError,       \
                                      __FILE__, __LINE__)                  \
        .stream()                                                          \
        << "DCHECK failed: " #cond " "

}  // namespace corgipile
