// Annotated mutex / scoped-lock / condition-variable wrappers
// (DESIGN.md §10).
//
// Thin shims over std::mutex and std::condition_variable that carry the
// clang Thread Safety Analysis capability attributes, so GUARDED_BY fields
// and REQUIRES contracts are enforceable at compile time. All concurrent
// code in src/ uses these instead of the raw std:: types; the raw types
// would be invisible to the analysis.
//
// Idioms:
//  * `Mutex mu_;` + `T field_ CORGI_GUARDED_BY(mu_);`
//  * `MutexLock lock(mu_);` for scopes; `lock.Unlock()` for the
//    unlock-before-notify pattern (the destructor then no-ops).
//  * Condition waits are explicit loops so the analysis sees the guarded
//    reads in the enclosing (lock-holding) function:
//        MutexLock lock(mu_);
//        while (!ready_) cv_.Wait(mu_);
//    Predicate overloads exist for callers that prefer them; the predicate
//    runs with the lock held, which it declares by calling
//    `mu.AssertHeld()` first (see CondVar::Wait below).

#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace corgipile {

/// Annotated exclusive mutex. Same cost as std::mutex.
class CORGI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CORGI_ACQUIRE() { mu_.lock(); }
  void Unlock() CORGI_RELEASE() { mu_.unlock(); }
  bool TryLock() CORGI_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Declares (to the analysis) that this thread holds the mutex. Used in
  /// wait-loop predicates and other code the analysis cannot follow; it is
  /// a statement of fact, not a runtime check (std::mutex cannot verify
  /// ownership portably).
  void AssertHeld() const CORGI_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock over Mutex with optional early release, so the
/// unlock-then-notify pattern stays expressible under the analysis.
class CORGI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CORGI_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CORGI_RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before end of scope (e.g. to notify a CondVar without the
  /// woken thread immediately blocking on the mutex). Call at most once.
  void Unlock() CORGI_RELEASE() {
    held_ = false;
    mu_.Unlock();
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable usable with Mutex. Wait() atomically releases the
/// (held) mutex, blocks, and reacquires before returning — the capability
/// is held on entry and on exit, which is all the static analysis needs to
/// know; the temporary release inside is invisible to it by design.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) CORGI_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  /// Waits until pred() holds. pred runs with `mu` held; it must begin
  /// with `mu.AssertHeld()` if it reads GUARDED_BY(mu) state, because the
  /// analysis checks the lambda body out of line.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) CORGI_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace corgipile
