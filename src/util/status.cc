#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace corgipile {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kIoError: return "IOError";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(msg)});
  }
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return ok() ? kEmpty : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

namespace internal {

void DieOnError(const Status& st, const char* file, int line) {
  std::fprintf(stderr, "CORGI_CHECK_OK failed at %s:%d: %s\n", file, line,
               st.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace corgipile
