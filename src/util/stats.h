// Small statistics helpers: online mean/variance, min/max, histograms.

#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace corgipile {

/// Welford online accumulator for mean / variance / extremes.
class OnlineStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void Merge(const OnlineStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    mean_ = (na * mean_ + nb * other.mean_) / (na + nb);
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  size_t num_buckets() const { return counts_.size(); }
  uint64_t total() const { return total_; }
  double bucket_lo(size_t i) const;
  double bucket_hi(size_t i) const;

  /// One line per bucket: "[lo, hi) count".
  std::string ToString() const;

 private:
  double lo_, hi_, width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Pearson correlation of two equal-length series (0 if degenerate).
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Mean of a vector (0 for empty).
double Mean(const std::vector<double>& v);

}  // namespace corgipile
