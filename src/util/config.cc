#include "util/config.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace corgipile {

namespace {
std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}
}  // namespace

Result<Params> Params::Parse(const std::string& text) {
  Params p;
  std::string token;
  std::istringstream in(text);
  while (std::getline(in, token, ',')) {
    token = Trim(token);
    if (token.empty()) continue;
    auto eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected key=value, got '" + token + "'");
    }
    std::string key = Trim(token.substr(0, eq));
    std::string value = Trim(token.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument("empty key in '" + token + "'");
    }
    p.Set(key, value);
  }
  return p;
}

void Params::Set(const std::string& key, const std::string& value) {
  kv_[key] = value;
}

bool Params::Has(const std::string& key) const { return kv_.count(key) > 0; }

Result<std::string> Params::GetString(const std::string& key,
                                      const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

Result<double> Params::GetDouble(const std::string& key, double def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("param '" + key + "' is not a number: '" +
                                   it->second + "'");
  }
  return v;
}

Result<int64_t> Params::GetInt(const std::string& key, int64_t def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("param '" + key + "' is not an integer: '" +
                                   it->second + "'");
  }
  return static_cast<int64_t>(v);
}

Result<bool> Params::GetBool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return Status::InvalidArgument("param '" + key + "' is not a bool: '" +
                                 it->second + "'");
}

std::vector<std::string> Params::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(kv_.size());
  for (const auto& [k, _] : kv_) keys.push_back(k);
  return keys;
}

std::string Params::ToString() const {
  std::string out;
  for (const auto& [k, v] : kv_) {
    if (!out.empty()) out += ", ";
    out += k + "=" + v;
  }
  return out;
}

}  // namespace corgipile
