#include "util/crc32c.h"

#include <array>

namespace corgipile {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli polynomial

struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (c >> 1) ^ kPoly : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const auto& t = Tables().t;
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  // Slice-by-4 over aligned-length middle, byte-at-a-time for the tail.
  while (len >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = t[3][c & 0xFF] ^ t[2][(c >> 8) & 0xFF] ^ t[1][(c >> 16) & 0xFF] ^
        t[0][c >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    c = (c >> 8) ^ t[0][(c ^ *p++) & 0xFF];
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

}  // namespace corgipile
