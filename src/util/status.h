// Status / Result error-handling primitives in the Arrow / RocksDB idiom.
//
// Functions that can fail return Status (or Result<T> when they also produce
// a value). No exceptions cross module boundaries.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace corgipile {

/// Error category attached to a non-OK Status.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kCorruption,
  kNotImplemented,
  kInternal,
  kResourceExhausted,
  kCancelled,          ///< work abandoned via a CancellationToken
  kDeadlineExceeded,   ///< a (simulated) deadline expired before completion
};

/// Returns a human-readable name for a StatusCode ("OK", "IOError", ...).
const char* StatusCodeToString(StatusCode code);

/// Operation outcome: OK (cheap, no allocation) or an error code + message.
///
/// [[nodiscard]]: ignoring a returned Status silently swallows I/O errors,
/// corruption, and cancellation — the build treats it as an error
/// (-Werror=unused-result). The few intentional discards are written
/// `(void)expr;` with a justification comment (see DESIGN.md §10).
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string msg);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK.
  const std::string& message() const;
  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;
};

/// Either a value of type T or an error Status. Like arrow::Result.
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from a non-OK Status. Constructing from an OK Status is a bug
  /// and is converted to an Internal error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Value accessors. Precondition: ok().
  const T& ValueOrDie() const& { return std::get<T>(repr_); }
  T& ValueOrDie() & { return std::get<T>(repr_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value into *out if ok, otherwise returns the error.
  Status MoveTo(T* out) && {
    if (!ok()) return status();
    *out = std::get<T>(std::move(repr_));
    return Status::OK();
  }

 private:
  std::variant<Status, T> repr_;
};

namespace internal {
// Concatenation helpers for unique temporary names in macros.
#define CORGI_CONCAT_IMPL(x, y) x##y
#define CORGI_CONCAT(x, y) CORGI_CONCAT_IMPL(x, y)
}  // namespace internal

/// Propagates a non-OK Status to the caller.
#define CORGI_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::corgipile::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (false)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may be a declaration).
#define CORGI_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  CORGI_ASSIGN_OR_RETURN_IMPL(CORGI_CONCAT(_res_, __LINE__), lhs, rexpr)

#define CORGI_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

/// Aborts the process with a message if `expr` is non-OK. For callers that
/// cannot meaningfully continue (tests, benches, examples).
#define CORGI_CHECK_OK(expr)                                       \
  do {                                                             \
    ::corgipile::Status _st = (expr);                              \
    if (!_st.ok()) ::corgipile::internal::DieOnError(_st, __FILE__, __LINE__); \
  } while (false)

namespace internal {
[[noreturn]] void DieOnError(const Status& st, const char* file, int line);
}  // namespace internal

}  // namespace corgipile
