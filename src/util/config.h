// key=value parameter parsing, used by the SQL-ish TRAIN BY ... WITH clause
// and by bench command lines.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace corgipile {

/// Ordered key=value map with typed accessors. Keys are case-sensitive.
class Params {
 public:
  Params() = default;

  /// Parses "k1=v1, k2=v2" (comma- or whitespace-separated). Values may not
  /// contain commas. Empty input is valid.
  static Result<Params> Parse(const std::string& text);

  void Set(const std::string& key, const std::string& value);
  bool Has(const std::string& key) const;

  /// Typed getters returning `def` when the key is absent; error Status only
  /// when the value is present but malformed.
  Result<std::string> GetString(const std::string& key,
                                const std::string& def = "") const;
  Result<double> GetDouble(const std::string& key, double def) const;
  Result<int64_t> GetInt(const std::string& key, int64_t def) const;
  Result<bool> GetBool(const std::string& key, bool def) const;

  std::vector<std::string> Keys() const;
  std::string ToString() const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace corgipile
