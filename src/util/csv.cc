#include "util/csv.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace corgipile {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

CsvTable& CsvTable::NewRow() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

CsvTable& CsvTable::Add(const std::string& v) {
  rows_.back().push_back(v);
  return *this;
}

CsvTable& CsvTable::Add(const char* v) { return Add(std::string(v)); }

CsvTable& CsvTable::Add(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return Add(std::string(buf));
}

CsvTable& CsvTable::Add(int64_t v) { return Add(std::to_string(v)); }
CsvTable& CsvTable::Add(uint64_t v) { return Add(std::to_string(v)); }

namespace {
std::string CsvEscape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string CsvTable::ToCsv() const {
  std::ostringstream os;
  for (size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ",";
    os << CsvEscape(header_[i]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << CsvEscape(row[i]);
    }
    os << "\n";
  }
  return os.str();
}

std::string CsvTable::ToAlignedText() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < header_.size(); ++i) {
      const std::string& v = i < cells.size() ? cells[i] : std::string();
      os << v;
      if (i + 1 < header_.size()) {
        os << std::string(widths[i] - v.size() + 2, ' ');
      }
    }
    os << "\n";
  };
  emit(header_);
  std::string rule;
  for (size_t i = 0; i < header_.size(); ++i) {
    rule += std::string(widths[i], '-');
    if (i + 1 < header_.size()) rule += "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

Status CsvTable::WriteFile(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open " + path);
  f << ToCsv();
  if (!f.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace corgipile
