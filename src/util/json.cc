#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace corgipile {

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

JsonValue JsonValue::Str(const std::string& s) {
  JsonValue v;
  v.kind_ = Kind::kLiteral;
  v.literal_ = JsonQuote(s);
  return v;
}

JsonValue JsonValue::Number(double value, int precision) {
  JsonValue v;
  v.kind_ = Kind::kLiteral;
  if (!std::isfinite(value)) {
    // JSON has no NaN/Inf; emit null so files stay parseable.
    v.literal_ = "null";
    return v;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  v.literal_ = buf;
  return v;
}

JsonValue JsonValue::Number(int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kLiteral;
  v.literal_ = std::to_string(value);
  return v;
}

JsonValue JsonValue::Number(uint64_t value) {
  JsonValue v;
  v.kind_ = Kind::kLiteral;
  v.literal_ = std::to_string(value);
  return v;
}

JsonValue JsonValue::RawNumber(const std::string& formatted) {
  JsonValue v;
  v.kind_ = Kind::kLiteral;
  v.literal_ = formatted.empty() ? "null" : formatted;
  return v;
}

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kLiteral;
  v.literal_ = value ? "true" : "false";
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  members_.emplace_back(key, std::move(v));
  return *this;
}

JsonValue& JsonValue::Add(JsonValue v) {
  elements_.push_back(std::move(v));
  return *this;
}

void JsonValue::AppendTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
             : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent) * depth, ' ')
             : std::string();
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kLiteral:
      *out += literal_;
      return;
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) *out += ',';
        if (pretty) *out += '\n' + pad;
        *out += JsonQuote(members_[i].first);
        *out += pretty ? ": " : ":";
        members_[i].second.AppendTo(out, indent, depth + 1);
      }
      if (pretty) *out += '\n' + close_pad;
      *out += '}';
      return;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) *out += ',';
        if (pretty) *out += '\n' + pad;
        elements_[i].AppendTo(out, indent, depth + 1);
      }
      if (pretty) *out += '\n' + close_pad;
      *out += ']';
      return;
    }
  }
}

std::string JsonValue::ToString(int indent) const {
  std::string out;
  AppendTo(&out, indent, 0);
  return out;
}

Status JsonValue::WriteFile(const std::string& path, int indent) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open " + path);
  f << ToString(indent) << '\n';
  if (!f.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace corgipile
