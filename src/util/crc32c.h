// CRC32C (Castagnoli) checksums.
//
// Used as the integrity check on heap pages and record-file records. The
// Castagnoli polynomial (0x1EDC6F41) has better error-detection properties
// for storage payloads than the zlib CRC and matches what real systems
// (ext4, iSCSI, LevelDB/RocksDB, PostgreSQL 9.3+) use on disk.

#pragma once

#include <cstddef>
#include <cstdint>

namespace corgipile {

/// CRC32C of `data[0, len)`. Table-driven (slice-by-4), no hardware
/// dependency.
uint32_t Crc32c(const void* data, size_t len);

/// Extends a running CRC32C with more bytes. `crc` is the value returned by
/// a previous Crc32c/Crc32cExtend call.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

/// CRC value used on disk. The on-disk convention reserves 0 for "no
/// checksum" (legacy/unstamped data), so a computed CRC of 0 is mapped to 1.
inline uint32_t Crc32cForStorage(const void* data, size_t len) {
  const uint32_t c = Crc32c(data, len);
  return c == 0 ? 1u : c;
}

}  // namespace corgipile
