// Minimal JSON emitter for machine-readable bench/experiment output.
//
// Deliberately write-only: bench binaries need a stable, escaped,
// deterministic serialization (no float reformatting — numbers are passed
// as pre-formatted strings), not a parser. Values appear in insertion
// order so reruns produce byte-identical files.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace corgipile {

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters) and
/// wraps it in double quotes.
std::string JsonQuote(const std::string& s);

/// A JSON value under construction. Build leaves with the static
/// constructors, containers with Add/Set; serialize with ToString().
class JsonValue {
 public:
  /// Null by default.
  JsonValue() = default;

  static JsonValue Str(const std::string& s);
  static JsonValue Number(double v, int precision = 6);
  static JsonValue Number(int64_t v);
  static JsonValue Number(uint64_t v);
  /// A number already formatted by the caller (kept verbatim; must be a
  /// valid JSON number).
  static JsonValue RawNumber(const std::string& formatted);
  static JsonValue Bool(bool v);
  static JsonValue Object();
  static JsonValue Array();

  /// Object member (keys keep insertion order). Returns *this for chaining.
  JsonValue& Set(const std::string& key, JsonValue v);
  /// Array element.
  JsonValue& Add(JsonValue v);

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Compact serialization (no whitespace) when indent < 0, otherwise
  /// pretty-printed with `indent` spaces per level.
  std::string ToString(int indent = 2) const;

  /// Writes ToString(indent) plus a trailing newline to `path`.
  Status WriteFile(const std::string& path, int indent = 2) const;

 private:
  enum class Kind { kNull, kLiteral, kObject, kArray };
  void AppendTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  std::string literal_;  ///< serialized form for kLiteral (string/num/bool)
  std::vector<std::pair<std::string, JsonValue>> members_;  ///< object
  std::vector<JsonValue> elements_;                         ///< array
};

}  // namespace corgipile
