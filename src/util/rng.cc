#include "util/rng.h"

#include <cmath>
#include <numeric>

namespace corgipile {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Lemire's method with rejection to remove bias.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork(uint64_t stream_id) const {
  uint64_t mix = s_[0] ^ Rotl(s_[3], 23) ^ (stream_id * 0xD1B54A32D192ED03ULL);
  return Rng(mix);
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> p(n);
  std::iota(p.begin(), p.end(), 0u);
  Shuffle(p);
  return p;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  // Partial Fisher–Yates over a dense index array; O(n) memory, O(n + k)
  // time. Fine for the block counts this library deals in.
  std::vector<uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  std::vector<uint32_t> out;
  out.reserve(k);
  for (uint32_t i = 0; i < k; ++i) {
    uint32_t j = i + static_cast<uint32_t>(Uniform(n - i));
    std::swap(idx[i], idx[j]);
    out.push_back(idx[i]);
  }
  return out;
}

}  // namespace corgipile
