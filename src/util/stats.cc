#include "util/stats.h"

#include <cmath>
#include <sstream>

namespace corgipile {

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {}

void Histogram::Add(double x) {
  double pos = (x - lo_) / width_;
  auto i = static_cast<int64_t>(std::floor(pos));
  if (i < 0) i = 0;
  if (i >= static_cast<int64_t>(counts_.size())) {
    i = static_cast<int64_t>(counts_.size()) - 1;
  }
  ++counts_[static_cast<size_t>(i)];
  ++total_;
}

double Histogram::bucket_lo(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < counts_.size(); ++i) {
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") " << counts_[i]
       << "\n";
  }
  return os.str();
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace corgipile
