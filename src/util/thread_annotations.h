// Clang Thread Safety Analysis annotation macros (DESIGN.md §10).
//
// These wrap the capability attributes understood by clang's
// -Wthread-safety so the three concurrency invariants the system leans on
// — every guarded field is touched only under its mutex, lock/unlock pairs
// balance on every path, helper functions declare the locks they expect —
// are checked at compile time instead of (only) at runtime under tsan.
//
// The macros expand to nothing on compilers without the attributes (GCC),
// so annotated code builds everywhere; the dedicated `thread-safety`
// preset / CI job builds src/ with clang and -Wthread-safety -Werror.
//
// Use through util/mutex.h (the annotated Mutex/MutexLock/CondVar wrapper)
// rather than annotating raw std::mutex: std::mutex carries no capability
// attribute, so the analysis cannot see it.

#pragma once

#if defined(__clang__) && !defined(SWIG)
#define CORGI_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CORGI_THREAD_ANNOTATION(x)  // no-op: analysis is clang-only
#endif

/// Marks a class as a capability (e.g. "mutex"); its name appears in
/// diagnostics.
#define CORGI_CAPABILITY(x) CORGI_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define CORGI_SCOPED_CAPABILITY CORGI_THREAD_ANNOTATION(scoped_lockable)

/// Field/variable may only be accessed while holding `x`.
#define CORGI_GUARDED_BY(x) CORGI_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data may only be accessed while holding `x` (the pointer
/// itself is unguarded).
#define CORGI_PT_GUARDED_BY(x) CORGI_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) on entry; still held on
/// exit. The "Locked"-suffix helper contract, machine-checked.
#define CORGI_REQUIRES(...) \
  CORGI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention for functions
/// that acquire it themselves).
#define CORGI_EXCLUDES(...) \
  CORGI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define CORGI_ACQUIRE(...) \
  CORGI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define CORGI_RELEASE(...) \
  CORGI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define CORGI_TRY_ACQUIRE(ret, ...) \
  CORGI_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Runtime assertion that the capability is held; tells the analysis to
/// treat it as held from here on. The hook for code (wait-loop predicates,
/// callbacks) whose lock context the analysis cannot follow statically.
#define CORGI_ASSERT_CAPABILITY(...) \
  CORGI_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

/// Function returns a reference to the named capability (lets callers name
/// an inner mutex in their own annotations).
#define CORGI_RETURN_CAPABILITY(x) CORGI_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Every use needs a
/// comment explaining why the analysis cannot follow the code.
#define CORGI_NO_THREAD_SAFETY_ANALYSIS \
  CORGI_THREAD_ANNOTATION(no_thread_safety_analysis)
