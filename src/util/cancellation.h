// Cooperative cancellation and simulated-time deadlines.
//
// CancellationToken is the supervision primitive threaded through every
// concurrent path (ThreadPool::ParallelFor, the distributed trainer's
// workers, Channel-backed producers): the supervisor cancels with a reason
// Status, workers observe the flag at safe points and unwind by returning
// that Status. Cancellation is level-triggered and sticky — the first
// Cancel() wins, later calls are no-ops — so every observer sees one
// consistent reason.
//
// Deadline expresses a budget of *simulated* seconds against a SimClock.
// Because all modeled I/O (including FaultInjector latency spikes and retry
// backoff) is charged to the SimClock deterministically, deadline decisions
// are reproducible bit-for-bit across runs — unlike wall-clock deadlines.

#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "iosim/sim_clock.h"
#include "util/mutex.h"
#include "util/status.h"

namespace corgipile {

/// Copyable handle to shared cancellation state. Thread-safe: any holder
/// may Cancel() or poll concurrently. Copies observe the same state.
class CancellationToken {
 public:
  /// Creates a fresh, un-cancelled token.
  CancellationToken() : state_(std::make_shared<State>()) {}

  /// Requests cancellation with a reason. First call wins; subsequent
  /// calls (any thread) are no-ops.
  void Cancel(Status reason) {
    if (reason.ok()) reason = Status::Cancelled("cancelled");
    MutexLock lock(state_->mu);
    if (state_->cancelled.load(std::memory_order_relaxed)) return;
    state_->reason = std::move(reason);
    state_->cancelled.store(true, std::memory_order_release);
  }
  void Cancel() { Cancel(Status::Cancelled("cancelled")); }

  /// Lock-free fast path for polling inside hot loops.
  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  /// OK while alive; the Cancel() reason afterwards.
  Status status() const {
    if (!cancelled()) return Status::OK();
    MutexLock lock(state_->mu);
    return state_->reason;
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    mutable Mutex mu;
    Status reason CORGI_GUARDED_BY(mu);
  };
  std::shared_ptr<State> state_;
};

/// A budget of simulated seconds measured against a SimClock's total
/// elapsed time, snapshotted at construction. Thread-safe (SimClock is).
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;
  static Deadline Infinite() { return Deadline(); }

  /// Expires once `clock`'s TotalElapsed() has advanced `budget_seconds`
  /// past its value at construction. `clock` is borrowed, not owned.
  Deadline(const SimClock* clock, double budget_seconds)
      : clock_(clock),
        start_(clock != nullptr ? clock->TotalElapsed() : 0.0),
        budget_(budget_seconds) {}

  bool Expired() const {
    return clock_ != nullptr && clock_->TotalElapsed() - start_ > budget_;
  }

  /// OK, or kDeadlineExceeded mentioning `what`.
  Status Check(const std::string& what) const {
    if (!Expired()) return Status::OK();
    return Status::DeadlineExceeded(what + " exceeded " +
                                    std::to_string(budget_) +
                                    " simulated seconds");
  }

  double budget_seconds() const { return budget_; }

 private:
  const SimClock* clock_ = nullptr;
  double start_ = 0.0;
  double budget_ = 0.0;
};

}  // namespace corgipile
