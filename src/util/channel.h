// Bounded MPMC channel that carries a Status alongside data.
//
// The contract (see DESIGN.md §7):
//  * Producers Push() items and finally Close(st) exactly once — st == OK
//    for a clean end of stream, an error Status when production failed
//    (e.g. a corrupt block past the tolerance threshold). Closing wakes
//    every blocked producer and consumer.
//  * Consumers Pop() items. After a clean Close() they drain whatever is
//    buffered and then see end-of-stream; after an error Close(st) they
//    likewise drain buffered items and then receive st — so a mid-stream
//    producer failure surfaces identically to the serial (single-buffered)
//    execution of the same pipeline.
//  * Either side may Cancel(st): buffered items are dropped and every
//    blocked or future Push/Pop fails immediately with st. This is how an
//    early-closing consumer unblocks (and thereby stops) its producer
//    without deadlock.
//
// Thread-safety: all methods are safe to call from any thread; internally
// one annotated Mutex plus two condition variables (space / items), with
// every piece of queue state GUARDED_BY(mu_) so -Wthread-safety verifies
// the lock discipline at compile time (DESIGN.md §10). Wait loops are
// written as explicit `while (...) cv.Wait(mu_)` so the analysis sees the
// guarded reads under the lock. Items are moved in and out, never copied.

#pragma once

#include <cstddef>
#include <deque>
#include <utility>

#include "iosim/fault_plane.h"
#include "util/mutex.h"
#include "util/status.h"

namespace corgipile {

template <typename T>
class Channel {
 public:
  /// `capacity` is clamped to >= 1.
  explicit Channel(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Names this channel's send path as a FaultPlane chaos point: while a
  /// scenario is armed, every Push/TryPush first consults the plane and a
  /// matching kFail rule makes the send fail with the injected Status (the
  /// item is left untouched). `point` must outlive the channel (string
  /// literals in practice). Unset (default) = no chaos hook.
  void set_chaos_point(const char* point) { chaos_point_ = point; }

  /// Blocks while the channel is full. Returns OK once the item is
  /// enqueued; the cancel reason if the channel was cancelled; kInternal
  /// if pushed after Close() (a producer protocol bug).
  Status Push(T item) {
    if (chaos_point_ != nullptr && FaultPlane::ProcessArmed()) {
      CORGI_RETURN_NOT_OK(FaultPlane::Process()->OnPoint(chaos_point_));
    }
    MutexLock lock(mu_);
    while (!cancelled_ && !closed_ && queue_.size() >= capacity_) {
      space_cv_.Wait(mu_);
    }
    if (cancelled_) return final_;
    if (closed_) return Status::Internal("Push on closed channel");
    queue_.push_back(std::move(item));
    lock.Unlock();
    items_cv_.NotifyOne();
    return Status::OK();
  }

  /// Non-blocking Push. Returns true when the item was enqueued; false when
  /// the channel is full (the item is left untouched in that case); the
  /// cancel reason if cancelled; kInternal after Close(). The false return
  /// is how an admission-controlled producer load-sheds instead of waiting.
  Result<bool> TryPush(T& item) {
    if (chaos_point_ != nullptr && FaultPlane::ProcessArmed()) {
      CORGI_RETURN_NOT_OK(FaultPlane::Process()->OnPoint(chaos_point_));
    }
    MutexLock lock(mu_);
    if (cancelled_) return final_;
    if (closed_) return Status::Internal("TryPush on closed channel");
    if (queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(item));
    lock.Unlock();
    items_cv_.NotifyOne();
    return true;
  }

  /// Non-blocking Pop. Returns true with *out filled when an item was
  /// buffered; false when the channel is open (or cleanly closed) but
  /// currently empty; the failure Status when cancelled or closed with an
  /// error and drained. Unlike Pop(), a false return does NOT distinguish
  /// "empty for now" from "clean end of stream" — callers that need the
  /// distinction should consult closed().
  Result<bool> TryPop(T* out) {
    MutexLock lock(mu_);
    if (queue_.empty()) {
      if (cancelled_) return final_;
      if (closed_ && !final_.ok()) return final_;
      return false;
    }
    *out = std::move(queue_.front());
    queue_.pop_front();
    lock.Unlock();
    space_cv_.NotifyOne();
    return true;
  }

  /// Blocks until a Push would not block (space available, or the channel
  /// is closed/cancelled — in which case the pending failure is returned).
  /// Lets a producer defer building an expensive item until there is room
  /// for it, keeping at most `capacity` + the in-flight item alive.
  Status WaitWritable() {
    MutexLock lock(mu_);
    while (!cancelled_ && !closed_ && queue_.size() >= capacity_) {
      space_cv_.Wait(mu_);
    }
    if (cancelled_) return final_;
    if (closed_) return Status::Internal("WaitWritable on closed channel");
    return Status::OK();
  }

  /// Producer side: no more items. `final` == OK means clean end of
  /// stream; an error Status is delivered to consumers once the buffered
  /// items are drained. Idempotent; the first close wins.
  void Close(Status final = Status::OK()) {
    {
      MutexLock lock(mu_);
      if (closed_ || cancelled_) return;
      closed_ = true;
      final_ = std::move(final);
    }
    items_cv_.NotifyAll();
    space_cv_.NotifyAll();
  }

  /// Either side aborts the stream: buffered items are dropped and every
  /// blocked or future Push/Pop fails with `reason` immediately. Overrides
  /// a prior clean Close (the stream was abandoned, not finished).
  void Cancel(Status reason) {
    if (reason.ok()) reason = Status::Cancelled("channel cancelled");
    {
      MutexLock lock(mu_);
      if (cancelled_) return;
      cancelled_ = true;
      final_ = std::move(reason);
      queue_.clear();
    }
    items_cv_.NotifyAll();
    space_cv_.NotifyAll();
  }

  /// Blocks while the channel is open and empty. Returns true with *out
  /// filled when an item arrived; false at clean end of stream (closed and
  /// drained); the failure Status when the channel was cancelled or closed
  /// with an error (after draining buffered items).
  Result<bool> Pop(T* out) {
    MutexLock lock(mu_);
    while (!cancelled_ && !closed_ && queue_.empty()) {
      items_cv_.Wait(mu_);
    }
    if (cancelled_) return final_;
    if (queue_.empty()) {
      // closed_ and drained: clean end or the producer's error.
      if (!final_.ok()) return final_;
      return false;
    }
    *out = std::move(queue_.front());
    queue_.pop_front();
    lock.Unlock();
    space_cv_.NotifyOne();
    return true;
  }

  /// Terminal status: OK while open or cleanly closed, otherwise the
  /// Close(error) / Cancel reason.
  Status status() const {
    MutexLock lock(mu_);
    return final_;
  }

  size_t size() const {
    MutexLock lock(mu_);
    return queue_.size();
  }
  size_t capacity() const { return capacity_; }
  bool closed() const {
    MutexLock lock(mu_);
    return closed_ || cancelled_;
  }

 private:
  const size_t capacity_;
  /// Optional FaultPlane point name for the send path; set once before use.
  const char* chaos_point_ = nullptr;
  mutable Mutex mu_;
  CondVar items_cv_;  ///< waiters in Pop
  CondVar space_cv_;  ///< waiters in Push/WaitWritable
  std::deque<T> queue_ CORGI_GUARDED_BY(mu_);
  bool closed_ CORGI_GUARDED_BY(mu_) = false;
  bool cancelled_ CORGI_GUARDED_BY(mu_) = false;
  /// Reason once closed_/cancelled_; OK for clean close.
  Status final_ CORGI_GUARDED_BY(mu_);
};

}  // namespace corgipile
