// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit 64-bit seed so
// that experiments are reproducible bit-for-bit. The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace corgipile {

/// SplitMix64 step; used for seeding and cheap stateless hashing.
uint64_t SplitMix64(uint64_t& state);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions if desired, but the class also offers
/// the handful of primitives the library needs directly.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next64(); }

  /// Next raw 64 random bits.
  uint64_t Next64();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless method (unbiased).
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box–Muller (cached second value).
  double NextGaussian();

  /// Bernoulli(p).
  bool NextBool(double p = 0.5);

  /// Forks an independent stream: deterministic function of the current
  /// state and `stream_id`, does not disturb this generator's sequence.
  Rng Fork(uint64_t stream_id) const;

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Returns a uniformly random permutation of [0, n).
  std::vector<uint32_t> Permutation(uint32_t n);

  /// Samples k distinct values from [0, n) without replacement, in random
  /// order. Requires k <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace corgipile
