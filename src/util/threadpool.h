// Fixed-size thread pool used by the distributed dataloader simulation and
// parallel benches.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace corgipile {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; the returned future resolves when it finishes.
  template <typename F>
  std::future<void> Submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace corgipile
