// Fixed-size thread pool used by the distributed dataloader simulation and
// parallel benches.
//
// Supervised execution: tasks may return Status, ParallelFor collects the
// first (lowest-index) error, stops handing out not-yet-started indices
// once an error or external cancellation is observed, and always drains
// in-flight tasks before returning — so no task can outlive the caller's
// frame and dangle references into it.
//
// Thread-safety: Submit/ParallelFor may be called from any thread except a
// pool worker (a worker waiting on its own pool would deadlock). The
// destructor drains the queue and joins all workers.

#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <queue>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/status.h"

namespace corgipile {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; the returned future resolves to the task's return
  /// value (Status tasks resolve to their Status) when it finishes.
  template <typename F>
  std::future<std::invoke_result_t<std::decay_t<F>>> Submit(F&& f) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  /// fn may return void or Status.
  ///
  /// Error handling: returns the error of the lowest-index failed task.
  /// Once any task fails (or `token` is cancelled), indices that have not
  /// started yet are skipped; in-flight tasks are drained before
  /// returning, so references captured by fn stay valid for exactly the
  /// duration of this call. An exception escaping fn is captured as
  /// Status::Internal instead of unwinding past live tasks.
  ///
  /// With no failures, returns token->status() if cancelled, else OK.
  template <typename F>
  Status ParallelFor(size_t n, F&& fn,
                     const CancellationToken* token = nullptr) {
    using R = std::invoke_result_t<std::decay_t<F>, size_t>;
    if constexpr (std::is_void_v<R>) {
      return ParallelForImpl(
          n,
          [&fn](size_t i) {
            fn(i);
            return Status::OK();
          },
          token);
    } else {
      static_assert(std::is_same_v<R, Status>,
                    "ParallelFor body must return void or Status");
      return ParallelForImpl(n, [&fn](size_t i) { return fn(i); }, token);
    }
  }

 private:
  Status ParallelForImpl(size_t n, const std::function<Status(size_t)>& fn,
                         const CancellationToken* token);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ CORGI_GUARDED_BY(mu_);
  bool stop_ CORGI_GUARDED_BY(mu_) = false;
};

}  // namespace corgipile
