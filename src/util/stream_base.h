// Shared boilerplate for the execution streams and operators.
//
// Every stage of the pipeline — shuffle streams, db physical operators,
// dataloader datasets — carries the same three pieces of state: a static
// name, a sticky Status, and the corrupt-block quarantine counters with
// their abort-threshold logic. This header implements them once so the
// batched pipeline and the per-tuple compatibility adapters stop
// re-implementing it.

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace corgipile {

/// Tolerance knobs consumed by QuarantineAccountant::Admit. (Kept here so
/// storage/ and shuffle/ can share it; storage/block_source.h aliases it.)
struct BlockReadTolerance {
  /// Skip unreadable/corrupt blocks and keep going.
  bool quarantine_corrupt_blocks = false;
  /// Abort the epoch once more than this fraction of its blocks has been
  /// quarantined. Guards against training on a sliver of the data.
  double max_bad_block_fraction = 0.05;
};

/// Corrupt-block accounting shared by every block-reading pipeline stage:
/// cumulative quarantine counters plus the per-epoch abort threshold.
class QuarantineAccountant {
 public:
  /// Resets the per-epoch abort window (cumulative counters persist).
  void BeginEpoch() { epoch_quarantined_ = 0; }

  /// Handles one failed block read under `tolerance`. Returns OK when the
  /// block was quarantined and the scan may continue; otherwise the status
  /// the scan must abort with (the original error when the failure is not
  /// quarantinable, or kCorruption once the epoch's bad fraction exceeds
  /// the tolerated maximum).
  Status Admit(const Status& read_error, const BlockReadTolerance& tolerance,
               uint64_t tuples_lost, uint64_t epoch_blocks) {
    const bool skippable = read_error.code() == StatusCode::kCorruption ||
                           read_error.code() == StatusCode::kIoError;
    if (!tolerance.quarantine_corrupt_blocks || !skippable) return read_error;
    ++quarantined_blocks_;
    ++epoch_quarantined_;
    skipped_tuples_ += tuples_lost;
    const double bad_fraction =
        static_cast<double>(epoch_quarantined_) /
        static_cast<double>(std::max<uint64_t>(1, epoch_blocks));
    if (bad_fraction > tolerance.max_bad_block_fraction) {
      return Status::Corruption(
          "quarantined " + std::to_string(epoch_quarantined_) + "/" +
          std::to_string(epoch_blocks) +
          " blocks this epoch, over the tolerated fraction " +
          std::to_string(tolerance.max_bad_block_fraction) +
          " (last error: " + read_error.message() + ")");
    }
    return Status::OK();
  }

  uint64_t quarantined_blocks() const { return quarantined_blocks_; }
  uint64_t skipped_tuples() const { return skipped_tuples_; }
  uint64_t epoch_quarantined() const { return epoch_quarantined_; }

 private:
  uint64_t quarantined_blocks_ = 0;  // cumulative across epochs
  uint64_t skipped_tuples_ = 0;      // cumulative across epochs
  uint64_t epoch_quarantined_ = 0;   // this epoch, for the abort threshold
};

/// Mixin that implements an interface's name()/status()/quarantine-counter
/// virtuals from shared state. `Interface` is any of the pipeline
/// interfaces (BatchStream, TupleStream, PhysicalOperator, ...) declaring
///   virtual const char* name() const;
///   virtual Status status() const;
///   virtual uint64_t QuarantinedBlocks() const;
///   virtual uint64_t SkippedTuples() const;
template <typename Interface>
class WithStreamState : public Interface {
 public:
  const char* name() const override { return name_; }
  Status status() const override { return status_; }
  uint64_t QuarantinedBlocks() const override {
    return quarantine_.quarantined_blocks();
  }
  uint64_t SkippedTuples() const override {
    return quarantine_.skipped_tuples();
  }

 protected:
  explicit WithStreamState(const char* name) : name_(name) {}

  void set_name(const char* name) { name_ = name; }
  void set_status(Status st) { status_ = std::move(st); }
  void clear_status() { status_ = Status::OK(); }
  QuarantineAccountant& quarantine() { return quarantine_; }
  const QuarantineAccountant& quarantine() const { return quarantine_; }

 private:
  const char* name_;
  Status status_;
  QuarantineAccountant quarantine_;
};

}  // namespace corgipile
