#include "util/threadpool.h"

namespace corgipile {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futs.push_back(Submit([i, &fn] { fn(i); }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace corgipile
