#include "util/threadpool.h"

#include <algorithm>
#include <atomic>
#include <limits>

namespace corgipile {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

Status ThreadPool::ParallelForImpl(size_t n,
                                   const std::function<Status(size_t)>& fn,
                                   const CancellationToken* token) {
  if (n == 0) return token != nullptr ? token->status() : Status::OK();

  // Runner tasks pull indices from a shared counter; an observed error (or
  // external cancellation) stops further claims, which is how
  // not-yet-started work gets cancelled. The futures below are all drained
  // before this frame returns, so `ctl` and `fn` outlive every task.
  struct Control {
    std::atomic<size_t> next{0};
    std::atomic<bool> stop{false};
    Mutex mu;
    size_t first_error_index CORGI_GUARDED_BY(mu) =
        std::numeric_limits<size_t>::max();
    Status first_error CORGI_GUARDED_BY(mu);
  };
  Control ctl;

  auto runner = [this, n, &fn, token, &ctl] {
    (void)this;
    for (;;) {
      if (ctl.stop.load(std::memory_order_acquire)) return;
      if (token != nullptr && token->cancelled()) return;
      const size_t i = ctl.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      Status st;
      try {
        st = fn(i);
      } catch (const std::exception& e) {
        st = Status::Internal(
            std::string("uncaught exception in ParallelFor task: ") +
            e.what());
      } catch (...) {
        st = Status::Internal("uncaught non-std exception in ParallelFor task");
      }
      if (!st.ok()) {
        MutexLock lock(ctl.mu);
        if (i < ctl.first_error_index) {
          ctl.first_error_index = i;
          ctl.first_error = st;
        }
        ctl.stop.store(true, std::memory_order_release);
      }
    }
  };

  const size_t width = std::min(n, workers_.size());
  std::vector<std::future<void>> futs;
  futs.reserve(width);
  for (size_t k = 0; k < width; ++k) futs.push_back(Submit(runner));
  for (auto& f : futs) f.get();  // drain in-flight work unconditionally

  {
    // All runners have drained, but lock anyway: it is free of contention
    // here and keeps the GUARDED_BY contract unconditional.
    MutexLock lock(ctl.mu);
    if (ctl.first_error_index != std::numeric_limits<size_t>::max()) {
      return ctl.first_error;
    }
  }
  if (token != nullptr && token->cancelled()) return token->status();
  return Status::OK();
}

}  // namespace corgipile
