// CSV table emitter used by bench binaries to record experiment series.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace corgipile {

/// Accumulates rows of a fixed-width table and writes them as CSV and as an
/// aligned text table for terminal output.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  /// Starts a new row. Subsequent Add* calls fill it left to right.
  CsvTable& NewRow();
  CsvTable& Add(const std::string& v);
  CsvTable& Add(const char* v);
  CsvTable& Add(double v, int precision = 6);
  CsvTable& Add(int64_t v);
  CsvTable& Add(uint64_t v);
  CsvTable& Add(int v) { return Add(static_cast<int64_t>(v)); }

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

  /// Serializes all rows as RFC-4180-ish CSV (values containing comma,
  /// quote, or newline are quoted).
  std::string ToCsv() const;

  /// Column-aligned plain text, suitable for stdout.
  std::string ToAlignedText() const;

  /// Writes ToCsv() to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace corgipile
