// Generalized linear models: logistic regression, SVM (hinge loss), linear
// regression, and softmax (multinomial logistic) regression — the model set
// the paper trains in-database (§7.3–§7.4).
//
// All keep a dense weight vector of `dim` coordinates plus a bias term as
// the final parameter. Per-tuple SGD updates touch only the tuple's nonzero
// coordinates plus the bias.

#pragma once

#include <cstdint>
#include <string>

#include "ml/model.h"

namespace corgipile {

/// Common base for the binary linear models (w ∈ R^dim, bias appended).
/// Subclasses supply only the loss curve via LossAndCoef(); the SGD step,
/// gradient accumulation, and the batched arena kernels live here so the
/// per-tuple and batched paths share one implementation of the math.
class BinaryLinearModel : public Model {
 public:
  explicit BinaryLinearModel(uint32_t dim, double l2_reg = 0.0);

  size_t num_params() const override { return params_.size(); }
  uint32_t input_dim() const override { return dim_; }
  std::vector<double>& params() override { return params_; }
  const std::vector<double>& params() const override { return params_; }
  void InitParams(uint64_t seed) override;

  double SgdStep(const Tuple& t, double lr) override;
  double AccumulateGrad(const Tuple& t,
                        std::vector<double>* grad) const override;
  double Loss(const Tuple& t) const override;

  // Batched arena kernels: read TupleBatch spans directly (no Tuple
  // materialization) while replicating the exact floating-point order of
  // the per-tuple path above.
  void BatchGradientStep(const TupleBatch& b, double lr,
                         double* loss_sum) override;
  void BatchAccumulateGrad(const TupleBatch& b, size_t begin, size_t end,
                           std::vector<double>* grad,
                           double* loss_sum) const override;
  void BatchLoss(const TupleBatch& b, double* loss_sum) const override;
  void BatchEvaluate(const TupleBatch& b, double* predictions, double* losses,
                     uint8_t* corrects) const override;

  double Predict(const Tuple& t) const override;  // signed margin
  bool Correct(const Tuple& t) const override;

 protected:
  /// Loss at margin m for label y; sets *coef = dLoss/dMargin. The one
  /// model-specific piece of math.
  virtual double LossAndCoef(double m, double y, double* coef) const = 0;
  /// Classification correctness at a precomputed margin (sign test for the
  /// classifiers; regression overrides to false).
  virtual bool CorrectAtMargin(double m, double y) const {
    return (m >= 0 ? 1.0 : -1.0) == y;
  }

  double Margin(const Tuple& t) const;
  /// Row margin from batch spans, same accumulation order as Margin().
  double MarginAt(const TupleBatch& b, size_t i) const;
  /// w ← w − lr·(coef·x + l2·w_active); coef is dLoss/dMargin · y-part.
  void ApplyLinearStep(const Tuple& t, double lr, double coef);
  /// Span form of ApplyLinearStep, same operation order.
  void ApplyLinearStepAt(const TupleBatch& b, size_t i, double lr,
                         double coef);
  void AccumulateLinear(const Tuple& t, double coef,
                        std::vector<double>* grad) const;
  /// Span form of AccumulateLinear, same operation order.
  void AccumulateLinearAt(const TupleBatch& b, size_t i, double coef,
                          std::vector<double>* grad) const;

  uint32_t dim_;
  double l2_reg_;
  std::vector<double> params_;  // dim weights + 1 bias
};

/// Logistic regression: f = log(1 + exp(−y·m)), y ∈ {−1, +1}.
class LogisticRegression : public BinaryLinearModel {
 public:
  explicit LogisticRegression(uint32_t dim, double l2_reg = 0.0)
      : BinaryLinearModel(dim, l2_reg) {}
  const char* name() const override { return "lr"; }
  std::unique_ptr<Model> Clone() const override;

 protected:
  double LossAndCoef(double m, double y, double* coef) const override;
};

/// Linear SVM: f = max(0, 1 − y·m).
class SvmModel : public BinaryLinearModel {
 public:
  explicit SvmModel(uint32_t dim, double l2_reg = 0.0)
      : BinaryLinearModel(dim, l2_reg) {}
  const char* name() const override { return "svm"; }
  std::unique_ptr<Model> Clone() const override;

 protected:
  double LossAndCoef(double m, double y, double* coef) const override;
};

/// Linear regression: f = ½(m − y)².
class LinearRegressionModel : public BinaryLinearModel {
 public:
  explicit LinearRegressionModel(uint32_t dim, double l2_reg = 0.0)
      : BinaryLinearModel(dim, l2_reg) {}
  const char* name() const override { return "linreg"; }
  double Predict(const Tuple& t) const override { return Margin(t); }
  bool Correct(const Tuple&) const override { return false; }
  std::unique_ptr<Model> Clone() const override;

 protected:
  double LossAndCoef(double m, double y, double* coef) const override;
  bool CorrectAtMargin(double, double) const override { return false; }
};

/// Softmax regression over C classes; labels are class ids 0..C−1.
/// Parameters: C × dim weights followed by C biases.
class SoftmaxRegression : public Model {
 public:
  SoftmaxRegression(uint32_t dim, uint32_t num_classes);

  const char* name() const override { return "softmax"; }
  size_t num_params() const override { return params_.size(); }
  uint32_t input_dim() const override { return dim_; }
  std::vector<double>& params() override { return params_; }
  const std::vector<double>& params() const override { return params_; }
  void InitParams(uint64_t seed) override;

  double SgdStep(const Tuple& t, double lr) override;
  double AccumulateGrad(const Tuple& t,
                        std::vector<double>* grad) const override;
  double Loss(const Tuple& t) const override;
  double Predict(const Tuple& t) const override;  // argmax class id
  bool Correct(const Tuple& t) const override;
  bool TopKCorrect(const Tuple& t, uint32_t k) const override;
  std::unique_ptr<Model> Clone() const override;

  uint32_t num_classes() const { return classes_; }

 private:
  /// Fills probs[c]; returns −log p_label.
  double ForwardProbs(const Tuple& t, std::vector<double>* probs) const;

  uint32_t dim_;
  uint32_t classes_;
  std::vector<double> params_;
  mutable std::vector<double> scratch_probs_;
};

}  // namespace corgipile
