#include "ml/linear_models.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace corgipile {

namespace {
// Numerically stable log(1 + exp(z)).
double Log1pExp(double z) {
  if (z > 35.0) return z;
  if (z < -35.0) return 0.0;
  return std::log1p(std::exp(z));
}
// Stable sigmoid.
double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

BinaryLinearModel::BinaryLinearModel(uint32_t dim, double l2_reg)
    : dim_(dim), l2_reg_(l2_reg), params_(dim + 1, 0.0) {}

void BinaryLinearModel::InitParams(uint64_t) {
  std::fill(params_.begin(), params_.end(), 0.0);
}

double BinaryLinearModel::Margin(const Tuple& t) const {
  return t.Dot(params_) + params_[dim_];
}

double BinaryLinearModel::Predict(const Tuple& t) const { return Margin(t); }

bool BinaryLinearModel::Correct(const Tuple& t) const {
  return (Margin(t) >= 0 ? 1.0 : -1.0) == t.label;
}

void BinaryLinearModel::ApplyLinearStep(const Tuple& t, double lr,
                                        double coef) {
  // Gradient of loss wrt w is coef * x (+ l2 w); wrt bias is coef.
  if (l2_reg_ != 0.0) {
    const double shrink = 1.0 - lr * l2_reg_;
    if (t.sparse()) {
      for (uint32_t k : t.feature_keys) params_[k] *= shrink;
    } else {
      for (uint32_t d = 0; d < dim_; ++d) params_[d] *= shrink;
    }
  }
  if (coef != 0.0) {
    t.AxpyInto(-lr * coef, &params_);
    params_[dim_] -= lr * coef;
  }
}

void BinaryLinearModel::AccumulateLinear(const Tuple& t, double coef,
                                         std::vector<double>* grad) const {
  if (coef != 0.0) {
    t.AxpyInto(coef, grad);
    (*grad)[dim_] += coef;
  }
  if (l2_reg_ != 0.0) {
    for (uint32_t d = 0; d < dim_; ++d) {
      (*grad)[d] += l2_reg_ * params_[d];
    }
  }
}

double BinaryLinearModel::Loss(const Tuple& t) const {
  double coef;
  return LossAndCoef(Margin(t), t.label, &coef);
}

double BinaryLinearModel::SgdStep(const Tuple& t, double lr) {
  double coef;
  const double loss = LossAndCoef(Margin(t), t.label, &coef);
  ApplyLinearStep(t, lr, coef);
  return loss;
}

double BinaryLinearModel::AccumulateGrad(const Tuple& t,
                                         std::vector<double>* grad) const {
  double coef;
  const double loss = LossAndCoef(Margin(t), t.label, &coef);
  AccumulateLinear(t, coef, grad);
  return loss;
}

// ---------- Batched arena kernels ----------
//
// These mirror Margin/ApplyLinearStep/AccumulateLinear on raw TupleBatch
// spans. Loop structure and operation order match the Tuple-based code
// exactly so seeded results stay bit-identical.

double BinaryLinearModel::MarginAt(const TupleBatch& b, size_t i) const {
  const size_t n = b.nnz(i);
  const float* v = b.values(i);
  const uint32_t* k = b.keys(i);
  double acc = 0.0;
  if (k != nullptr) {
    for (size_t j = 0; j < n; ++j) {
      acc += params_[k[j]] * static_cast<double>(v[j]);
    }
  } else {
    for (size_t j = 0; j < n; ++j) {
      acc += params_[j] * static_cast<double>(v[j]);
    }
  }
  return acc + params_[dim_];
}

void BinaryLinearModel::ApplyLinearStepAt(const TupleBatch& b, size_t i,
                                          double lr, double coef) {
  const size_t n = b.nnz(i);
  const float* v = b.values(i);
  const uint32_t* k = b.keys(i);
  if (l2_reg_ != 0.0) {
    const double shrink = 1.0 - lr * l2_reg_;
    if (k != nullptr) {
      for (size_t j = 0; j < n; ++j) params_[k[j]] *= shrink;
    } else {
      for (uint32_t d = 0; d < dim_; ++d) params_[d] *= shrink;
    }
  }
  if (coef != 0.0) {
    const double scale = -lr * coef;
    if (k != nullptr) {
      for (size_t j = 0; j < n; ++j) {
        params_[k[j]] += scale * static_cast<double>(v[j]);
      }
    } else {
      for (size_t j = 0; j < n; ++j) {
        params_[j] += scale * static_cast<double>(v[j]);
      }
    }
    params_[dim_] -= lr * coef;
  }
}

void BinaryLinearModel::AccumulateLinearAt(const TupleBatch& b, size_t i,
                                           double coef,
                                           std::vector<double>* grad) const {
  const size_t n = b.nnz(i);
  const float* v = b.values(i);
  const uint32_t* k = b.keys(i);
  if (coef != 0.0) {
    if (k != nullptr) {
      for (size_t j = 0; j < n; ++j) {
        (*grad)[k[j]] += coef * static_cast<double>(v[j]);
      }
    } else {
      for (size_t j = 0; j < n; ++j) {
        (*grad)[j] += coef * static_cast<double>(v[j]);
      }
    }
    (*grad)[dim_] += coef;
  }
  if (l2_reg_ != 0.0) {
    for (uint32_t d = 0; d < dim_; ++d) {
      (*grad)[d] += l2_reg_ * params_[d];
    }
  }
}

void BinaryLinearModel::BatchGradientStep(const TupleBatch& b, double lr,
                                          double* loss_sum) {
  for (size_t i = 0; i < b.size(); ++i) {
    double coef;
    *loss_sum += LossAndCoef(MarginAt(b, i), b.label(i), &coef);
    ApplyLinearStepAt(b, i, lr, coef);
  }
}

void BinaryLinearModel::BatchAccumulateGrad(const TupleBatch& b, size_t begin,
                                            size_t end,
                                            std::vector<double>* grad,
                                            double* loss_sum) const {
  for (size_t i = begin; i < end; ++i) {
    double coef;
    *loss_sum += LossAndCoef(MarginAt(b, i), b.label(i), &coef);
    AccumulateLinearAt(b, i, coef, grad);
  }
}

void BinaryLinearModel::BatchLoss(const TupleBatch& b,
                                  double* loss_sum) const {
  for (size_t i = 0; i < b.size(); ++i) {
    double coef;
    *loss_sum += LossAndCoef(MarginAt(b, i), b.label(i), &coef);
  }
}

void BinaryLinearModel::BatchEvaluate(const TupleBatch& b, double* predictions,
                                      double* losses,
                                      uint8_t* corrects) const {
  for (size_t i = 0; i < b.size(); ++i) {
    const double m = MarginAt(b, i);
    double coef;
    predictions[i] = m;
    losses[i] = LossAndCoef(m, b.label(i), &coef);
    corrects[i] = CorrectAtMargin(m, b.label(i)) ? 1 : 0;
  }
}

// ---------- Logistic regression ----------

double LogisticRegression::LossAndCoef(double m, double y,
                                       double* coef) const {
  const double z = -y * m;
  *coef = -y * Sigmoid(z);  // dLoss/dMargin
  return Log1pExp(z);
}

std::unique_ptr<Model> LogisticRegression::Clone() const {
  return std::make_unique<LogisticRegression>(*this);
}

// ---------- SVM ----------

double SvmModel::LossAndCoef(double m, double y, double* coef) const {
  const double hinge = 1.0 - y * m;
  *coef = hinge > 0.0 ? -y : 0.0;
  return std::max(0.0, hinge);
}

std::unique_ptr<Model> SvmModel::Clone() const {
  return std::make_unique<SvmModel>(*this);
}

// ---------- Linear regression ----------

double LinearRegressionModel::LossAndCoef(double m, double y,
                                          double* coef) const {
  const double r = m - y;
  *coef = r;
  return 0.5 * r * r;
}

std::unique_ptr<Model> LinearRegressionModel::Clone() const {
  return std::make_unique<LinearRegressionModel>(*this);
}

// ---------- Softmax regression ----------

SoftmaxRegression::SoftmaxRegression(uint32_t dim, uint32_t num_classes)
    : dim_(dim), classes_(std::max<uint32_t>(2, num_classes)),
      params_(static_cast<size_t>(dim) * classes_ + classes_, 0.0),
      scratch_probs_(classes_, 0.0) {}

void SoftmaxRegression::InitParams(uint64_t) {
  std::fill(params_.begin(), params_.end(), 0.0);
}

double SoftmaxRegression::ForwardProbs(const Tuple& t,
                                       std::vector<double>* probs) const {
  probs->assign(classes_, 0.0);
  // logits_c = W_c · x + b_c
  for (uint32_t c = 0; c < classes_; ++c) {
    const double* w = params_.data() + static_cast<size_t>(c) * dim_;
    double z = params_[static_cast<size_t>(dim_) * classes_ + c];
    if (t.sparse()) {
      for (size_t i = 0; i < t.feature_keys.size(); ++i) {
        z += w[t.feature_keys[i]] * static_cast<double>(t.feature_values[i]);
      }
    } else {
      for (uint32_t d = 0; d < dim_; ++d) {
        z += w[d] * static_cast<double>(t.feature_values[d]);
      }
    }
    (*probs)[c] = z;
  }
  const double zmax = *std::max_element(probs->begin(), probs->end());
  double sum = 0.0;
  for (double& p : *probs) {
    p = std::exp(p - zmax);
    sum += p;
  }
  for (double& p : *probs) p /= sum;
  const auto label = static_cast<uint32_t>(t.label);
  const double py = std::max((*probs)[label], 1e-300);
  return -std::log(py);
}

// Loss/Predict/Correct/TopKCorrect use local scratch: the serving engine
// calls them concurrently on one shared snapshot. The member scratch is
// reserved for the training paths, which own their model instance.
double SoftmaxRegression::Loss(const Tuple& t) const {
  std::vector<double> probs;
  return ForwardProbs(t, &probs);
}

double SoftmaxRegression::SgdStep(const Tuple& t, double lr) {
  const double loss = ForwardProbs(t, &scratch_probs_);
  const auto label = static_cast<uint32_t>(t.label);
  for (uint32_t c = 0; c < classes_; ++c) {
    const double coef = scratch_probs_[c] - (c == label ? 1.0 : 0.0);
    if (coef == 0.0) continue;
    double* w = params_.data() + static_cast<size_t>(c) * dim_;
    if (t.sparse()) {
      for (size_t i = 0; i < t.feature_keys.size(); ++i) {
        w[t.feature_keys[i]] -=
            lr * coef * static_cast<double>(t.feature_values[i]);
      }
    } else {
      for (uint32_t d = 0; d < dim_; ++d) {
        w[d] -= lr * coef * static_cast<double>(t.feature_values[d]);
      }
    }
    params_[static_cast<size_t>(dim_) * classes_ + c] -= lr * coef;
  }
  return loss;
}

double SoftmaxRegression::AccumulateGrad(const Tuple& t,
                                         std::vector<double>* grad) const {
  const double loss = ForwardProbs(t, &scratch_probs_);
  const auto label = static_cast<uint32_t>(t.label);
  for (uint32_t c = 0; c < classes_; ++c) {
    const double coef = scratch_probs_[c] - (c == label ? 1.0 : 0.0);
    if (coef == 0.0) continue;
    double* g = grad->data() + static_cast<size_t>(c) * dim_;
    if (t.sparse()) {
      for (size_t i = 0; i < t.feature_keys.size(); ++i) {
        g[t.feature_keys[i]] +=
            coef * static_cast<double>(t.feature_values[i]);
      }
    } else {
      for (uint32_t d = 0; d < dim_; ++d) {
        g[d] += coef * static_cast<double>(t.feature_values[d]);
      }
    }
    (*grad)[static_cast<size_t>(dim_) * classes_ + c] += coef;
  }
  return loss;
}

double SoftmaxRegression::Predict(const Tuple& t) const {
  std::vector<double> probs;
  ForwardProbs(t, &probs);
  return static_cast<double>(
      std::distance(probs.begin(), std::max_element(probs.begin(), probs.end())));
}

bool SoftmaxRegression::Correct(const Tuple& t) const {
  return Predict(t) == t.label;
}

bool SoftmaxRegression::TopKCorrect(const Tuple& t, uint32_t k) const {
  std::vector<double> probs;
  ForwardProbs(t, &probs);
  const double p_label = probs[static_cast<uint32_t>(t.label)];
  uint32_t better = 0;
  for (double p : probs) {
    if (p > p_label) ++better;
  }
  return better < k;
}

std::unique_ptr<Model> SoftmaxRegression::Clone() const {
  return std::make_unique<SoftmaxRegression>(*this);
}

}  // namespace corgipile
