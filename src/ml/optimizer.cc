#include "ml/optimizer.h"

#include <cmath>

namespace corgipile {

double LrSchedule::LrAtEpoch(uint32_t epoch) const {
  if (kind == Kind::kInverse) {
    const double a = std::max<uint32_t>(1, decay_every);
    return initial * a / (static_cast<double>(epoch) + a);
  }
  const uint32_t steps = decay_every > 0 ? epoch / decay_every : 0;
  return initial * std::pow(decay, static_cast<double>(steps));
}

void SgdOptimizer::Apply(std::vector<double>* params,
                         const std::vector<double>& grad, double lr) {
  for (size_t i = 0; i < params->size(); ++i) {
    (*params)[i] -= lr * grad[i];
  }
}

AdamOptimizer::AdamOptimizer(double beta1, double beta2, double eps)
    : beta1_(beta1), beta2_(beta2), eps_(eps) {}

void AdamOptimizer::Reset(size_t num_params) {
  step_ = 0;
  m_.assign(num_params, 0.0);
  v_.assign(num_params, 0.0);
}

void AdamOptimizer::Apply(std::vector<double>* params,
                          const std::vector<double>& grad, double lr) {
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (size_t i = 0; i < params->size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    (*params)[i] -= lr * mhat / (std::sqrt(vhat) + eps_);
  }
}

const char* OptimizerKindToString(OptimizerKind k) {
  switch (k) {
    case OptimizerKind::kSgd: return "sgd";
    case OptimizerKind::kAdam: return "adam";
  }
  return "?";
}

std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd: return std::make_unique<SgdOptimizer>();
    case OptimizerKind::kAdam: return std::make_unique<AdamOptimizer>();
  }
  return nullptr;
}

}  // namespace corgipile
