// Evaluation metrics.

#pragma once

#include <vector>

#include "ml/model.h"
#include "storage/schema.h"

namespace corgipile {

/// Aggregate evaluation over a tuple set.
struct EvalResult {
  double mean_loss = 0.0;
  /// Classification: fraction correct. Regression: coefficient of
  /// determination R² (the paper reports R² for linear regression, §7.4.2).
  double metric = 0.0;
  uint64_t count = 0;
};

/// Evaluates `model` on `tuples`. `label_type` selects the metric.
EvalResult Evaluate(const Model& model, const std::vector<Tuple>& tuples,
                    LabelType label_type);

/// Streaming counterpart of Evaluate() for paths that receive predictions
/// one at a time and out of order (the serving engine's micro-batched
/// replies): accumulate (label, prediction, loss, correct) observations,
/// then Finalize. R² is computed from running sums, so it can differ from
/// the two-pass Evaluate() by floating-point rounding only.
class EvalAccumulator {
 public:
  void Add(double label, double prediction, double loss, bool correct);
  EvalResult Finalize(LabelType label_type) const;

 private:
  uint64_t count_ = 0;
  uint64_t correct_ = 0;
  double loss_sum_ = 0.0;
  double y_sum_ = 0.0;
  double y_sq_sum_ = 0.0;
  double ss_res_ = 0.0;
};

/// Detailed binary-classification report (labels in {-1, +1}; the model's
/// Predict() is the decision score).
struct BinaryReport {
  uint64_t tp = 0, fp = 0, tn = 0, fn = 0;
  /// Area under the ROC curve of the raw scores (ties averaged).
  double auc = 0.0;

  uint64_t total() const { return tp + fp + tn + fn; }
  double accuracy() const {
    return total() ? static_cast<double>(tp + tn) / total() : 0.0;
  }
  double precision() const {
    return tp + fp ? static_cast<double>(tp) / (tp + fp) : 0.0;
  }
  double recall() const {
    return tp + fn ? static_cast<double>(tp) / (tp + fn) : 0.0;
  }
  double f1() const {
    const double p = precision(), r = recall();
    return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
  }
};

BinaryReport EvaluateBinaryDetailed(const Model& model,
                                    const std::vector<Tuple>& tuples);

}  // namespace corgipile
