#include "ml/model.h"

namespace corgipile {

// Default batch kernels: materialize each row into a scratch Tuple (reusing
// its capacity) and run the per-tuple method. Math and update order are
// trivially identical to the per-tuple path; overriding models must keep
// that property.

void Model::BatchGradientStep(const TupleBatch& b, double lr,
                              double* loss_sum) {
  Tuple scratch;
  for (size_t i = 0; i < b.size(); ++i) {
    b.MaterializeTo(i, &scratch);
    *loss_sum += SgdStep(scratch, lr);
  }
}

void Model::BatchAccumulateGrad(const TupleBatch& b, size_t begin, size_t end,
                                std::vector<double>* grad,
                                double* loss_sum) const {
  Tuple scratch;
  for (size_t i = begin; i < end; ++i) {
    b.MaterializeTo(i, &scratch);
    *loss_sum += AccumulateGrad(scratch, grad);
  }
}

void Model::BatchLoss(const TupleBatch& b, double* loss_sum) const {
  Tuple scratch;
  for (size_t i = 0; i < b.size(); ++i) {
    b.MaterializeTo(i, &scratch);
    *loss_sum += Loss(scratch);
  }
}

void Model::BatchEvaluate(const TupleBatch& b, double* predictions,
                          double* losses, uint8_t* corrects) const {
  Tuple scratch;
  for (size_t i = 0; i < b.size(); ++i) {
    b.MaterializeTo(i, &scratch);
    predictions[i] = Predict(scratch);
    losses[i] = Loss(scratch);
    corrects[i] = Correct(scratch) ? 1 : 0;
  }
}

}  // namespace corgipile
