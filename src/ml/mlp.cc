#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace corgipile {

MlpModel::MlpModel(uint32_t input_dim, uint32_t hidden_dim,
                   uint32_t num_classes)
    : dim_(input_dim), hidden_(hidden_dim),
      classes_(std::max<uint32_t>(2, num_classes)) {
  params_.resize(B2() + classes_, 0.0);
  scratch_hidden_.resize(hidden_);
  scratch_probs_.resize(classes_);
}

void MlpModel::InitParams(uint64_t seed) {
  Rng rng(seed ^ 0x3317);
  const double s1 = std::sqrt(2.0 / static_cast<double>(dim_));
  const double s2 = std::sqrt(2.0 / static_cast<double>(hidden_));
  for (size_t i = W1(); i < B1(); ++i) params_[i] = s1 * rng.NextGaussian();
  for (size_t i = B1(); i < W2(); ++i) params_[i] = 0.0;
  for (size_t i = W2(); i < B2(); ++i) params_[i] = s2 * rng.NextGaussian();
  for (size_t i = B2(); i < params_.size(); ++i) params_[i] = 0.0;
}

double MlpModel::Forward(const Tuple& t, std::vector<double>* hidden_act,
                         std::vector<double>* probs) const {
  hidden_act->assign(hidden_, 0.0);
  // z1 = W1 x + b1 (sparse- and dense-aware), a1 = relu(z1).
  if (t.sparse()) {
    for (size_t i = 0; i < t.feature_keys.size(); ++i) {
      const uint32_t d = t.feature_keys[i];
      const double x = static_cast<double>(t.feature_values[i]);
      const double* w = params_.data() + W1() + static_cast<size_t>(d);
      for (uint32_t h = 0; h < hidden_; ++h) {
        (*hidden_act)[h] += w[static_cast<size_t>(h) * dim_] * x;
      }
    }
  } else {
    for (uint32_t h = 0; h < hidden_; ++h) {
      const double* w = params_.data() + W1() + static_cast<size_t>(h) * dim_;
      double z = 0.0;
      for (uint32_t d = 0; d < dim_; ++d) {
        z += w[d] * static_cast<double>(t.feature_values[d]);
      }
      (*hidden_act)[h] = z;
    }
  }
  for (uint32_t h = 0; h < hidden_; ++h) {
    double z = (*hidden_act)[h] + params_[B1() + h];
    (*hidden_act)[h] = z > 0.0 ? z : 0.0;
  }
  // z2 = W2 a1 + b2, softmax.
  probs->assign(classes_, 0.0);
  for (uint32_t c = 0; c < classes_; ++c) {
    const double* w = params_.data() + W2() + static_cast<size_t>(c) * hidden_;
    double z = params_[B2() + c];
    for (uint32_t h = 0; h < hidden_; ++h) z += w[h] * (*hidden_act)[h];
    (*probs)[c] = z;
  }
  const double zmax = *std::max_element(probs->begin(), probs->end());
  double sum = 0.0;
  for (double& p : *probs) {
    p = std::exp(p - zmax);
    sum += p;
  }
  for (double& p : *probs) p /= sum;
  const auto label = static_cast<uint32_t>(t.label);
  return -std::log(std::max((*probs)[label], 1e-300));
}

// Loss/Predict/Correct/TopKCorrect use local scratch: the serving engine
// calls them concurrently on one shared snapshot. The member scratch is
// reserved for the training paths, which own their model instance.
double MlpModel::Loss(const Tuple& t) const {
  std::vector<double> hidden, probs;
  return Forward(t, &hidden, &probs);
}

namespace {
// Shared backward pass: given activations/probabilities, writes the update
// either directly into params (apply_fn) or into a gradient accumulator.
template <typename Sink>
void Backward(const Tuple& t, uint32_t dim, uint32_t hidden, uint32_t classes,
              const std::vector<double>& params, size_t w1, size_t b1,
              size_t w2, size_t b2, const std::vector<double>& hidden_act,
              const std::vector<double>& probs, Sink&& sink) {
  const auto label = static_cast<uint32_t>(t.label);
  // dz2_c = p_c − 1{c == y}. Backpropagate through the (pre-update) W2
  // first, then emit the W2/b2 updates.
  std::vector<double> dhidden(hidden, 0.0);
  for (uint32_t c = 0; c < classes; ++c) {
    const double dz2 = probs[c] - (c == label ? 1.0 : 0.0);
    if (dz2 == 0.0) continue;
    const double* w2c = params.data() + w2 + static_cast<size_t>(c) * hidden;
    for (uint32_t h = 0; h < hidden; ++h) {
      dhidden[h] += dz2 * w2c[h];
    }
  }
  for (uint32_t c = 0; c < classes; ++c) {
    const double dz2 = probs[c] - (c == label ? 1.0 : 0.0);
    if (dz2 == 0.0) continue;
    for (uint32_t h = 0; h < hidden; ++h) {
      sink(w2 + static_cast<size_t>(c) * hidden + h, dz2 * hidden_act[h]);
    }
    sink(b2 + c, dz2);
  }
  // ReLU gate.
  for (uint32_t h = 0; h < hidden; ++h) {
    if (hidden_act[h] <= 0.0) dhidden[h] = 0.0;
  }
  if (t.sparse()) {
    for (size_t i = 0; i < t.feature_keys.size(); ++i) {
      const uint32_t d = t.feature_keys[i];
      const double x = static_cast<double>(t.feature_values[i]);
      for (uint32_t h = 0; h < hidden; ++h) {
        if (dhidden[h] != 0.0) {
          sink(w1 + static_cast<size_t>(h) * dim + d, dhidden[h] * x);
        }
      }
    }
  } else {
    for (uint32_t h = 0; h < hidden; ++h) {
      if (dhidden[h] == 0.0) continue;
      const size_t base = w1 + static_cast<size_t>(h) * dim;
      for (uint32_t d = 0; d < dim; ++d) {
        sink(base + d, dhidden[h] * static_cast<double>(t.feature_values[d]));
      }
    }
  }
  for (uint32_t h = 0; h < hidden; ++h) {
    if (dhidden[h] != 0.0) sink(b1 + h, dhidden[h]);
  }
}
}  // namespace

double MlpModel::SgdStep(const Tuple& t, double lr) {
  const double loss = Forward(t, &scratch_hidden_, &scratch_probs_);
  Backward(t, dim_, hidden_, classes_, params_, W1(), B1(), W2(), B2(),
           scratch_hidden_, scratch_probs_,
           [this, lr](size_t i, double g) { params_[i] -= lr * g; });
  return loss;
}

double MlpModel::AccumulateGrad(const Tuple& t,
                                std::vector<double>* grad) const {
  const double loss = Forward(t, &scratch_hidden_, &scratch_probs_);
  Backward(t, dim_, hidden_, classes_, params_, W1(), B1(), W2(), B2(),
           scratch_hidden_, scratch_probs_,
           [grad](size_t i, double g) { (*grad)[i] += g; });
  return loss;
}

double MlpModel::Predict(const Tuple& t) const {
  std::vector<double> hidden, probs;
  Forward(t, &hidden, &probs);
  return static_cast<double>(
      std::distance(probs.begin(), std::max_element(probs.begin(), probs.end())));
}

bool MlpModel::Correct(const Tuple& t) const { return Predict(t) == t.label; }

bool MlpModel::TopKCorrect(const Tuple& t, uint32_t k) const {
  std::vector<double> hidden, probs;
  Forward(t, &hidden, &probs);
  const double p_label = probs[static_cast<uint32_t>(t.label)];
  uint32_t better = 0;
  for (double p : probs) {
    if (p > p_label) ++better;
  }
  return better < k;
}

std::unique_ptr<Model> MlpModel::Clone() const {
  return std::make_unique<MlpModel>(*this);
}

}  // namespace corgipile
