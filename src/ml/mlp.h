// Two-layer perceptron with ReLU hidden units and softmax output.
//
// Stands in for the paper's deep models (ResNet/VGG/HAN/TextCNN): a
// non-convex objective trained with (mini-batch) SGD or Adam whose
// convergence is order-sensitive in exactly the way §7.2 measures.

#pragma once

#include <cstdint>

#include "ml/model.h"

namespace corgipile {

class MlpModel : public Model {
 public:
  MlpModel(uint32_t input_dim, uint32_t hidden_dim, uint32_t num_classes);

  const char* name() const override { return "mlp"; }
  size_t num_params() const override { return params_.size(); }
  uint32_t input_dim() const override { return dim_; }
  std::vector<double>& params() override { return params_; }
  const std::vector<double>& params() const override { return params_; }
  void InitParams(uint64_t seed) override;

  double SgdStep(const Tuple& t, double lr) override;
  double AccumulateGrad(const Tuple& t,
                        std::vector<double>* grad) const override;
  double Loss(const Tuple& t) const override;
  double Predict(const Tuple& t) const override;  // argmax class id
  bool Correct(const Tuple& t) const override;
  bool TopKCorrect(const Tuple& t, uint32_t k) const override;
  std::unique_ptr<Model> Clone() const override;

  uint32_t hidden_dim() const { return hidden_; }
  uint32_t num_classes() const { return classes_; }

 private:
  // Parameter slices within params_.
  size_t W1() const { return 0; }
  size_t B1() const { return static_cast<size_t>(hidden_) * dim_; }
  size_t W2() const { return B1() + hidden_; }
  size_t B2() const { return W2() + static_cast<size_t>(classes_) * hidden_; }

  /// Forward pass; fills hidden activations and class probabilities;
  /// returns −log p_label.
  double Forward(const Tuple& t, std::vector<double>* hidden_act,
                 std::vector<double>* probs) const;

  uint32_t dim_;
  uint32_t hidden_;
  uint32_t classes_;
  std::vector<double> params_;
  mutable std::vector<double> scratch_hidden_;
  mutable std::vector<double> scratch_probs_;
};

}  // namespace corgipile
