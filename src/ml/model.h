// Model interface for SGD training over tuples.

#pragma once

#include <memory>
#include <vector>

#include "storage/tuple.h"

namespace corgipile {

/// A trainable model. Two update paths mirror how the paper's systems run:
///  * SgdStep — the standard per-tuple SGD used by the in-DB engines
///    (sparse-friendly: touches only the tuple's nonzero coordinates), and
///  * AccumulateGrad/params — dense gradient accumulation for mini-batch
///    SGD and Adam.
class Model {
 public:
  virtual ~Model() = default;

  virtual const char* name() const = 0;
  virtual size_t num_params() const = 0;

  /// Input feature dimensionality the model was constructed for; 0 when
  /// unknown. The serving path uses this to reject tables whose feature
  /// space does not fit the stored model instead of reading out of range.
  virtual uint32_t input_dim() const { return 0; }


  virtual std::vector<double>& params() = 0;
  virtual const std::vector<double>& params() const = 0;

  /// Initializes parameters deterministically from `seed` (zeros for convex
  /// models, scaled Gaussians for the MLP).
  virtual void InitParams(uint64_t seed) = 0;

  /// One vanilla SGD step: w ← w − lr·∇f_i(w). Returns f_i(w) pre-update.
  virtual double SgdStep(const Tuple& t, double lr) = 0;

  /// grad += ∇f_i(w); returns f_i(w). `grad` must have num_params() zeros
  /// or previously accumulated values.
  virtual double AccumulateGrad(const Tuple& t,
                                std::vector<double>* grad) const = 0;

  /// Loss only.
  virtual double Loss(const Tuple& t) const = 0;

  /// Raw prediction: binary → signed margin, multiclass → argmax class id,
  /// regression → predicted value.
  virtual double Predict(const Tuple& t) const = 0;

  /// Classification correctness (false always for regression models).
  virtual bool Correct(const Tuple& t) const = 0;

  /// Top-k correctness for multiclass models (the paper's Top-5 metric on
  /// ImageNet). Defaults to Correct() — i.e. top-1 — for models without
  /// class scores.
  virtual bool TopKCorrect(const Tuple& t, uint32_t k) const {
    (void)k;
    return Correct(t);
  }

  virtual std::unique_ptr<Model> Clone() const = 0;
};

}  // namespace corgipile
