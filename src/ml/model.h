// Model interface for SGD training over tuples.

#pragma once

#include <memory>
#include <vector>

#include "exec/tuple_batch.h"
#include "storage/tuple.h"

namespace corgipile {

/// A trainable model. Two update paths mirror how the paper's systems run:
///  * SgdStep — the standard per-tuple SGD used by the in-DB engines
///    (sparse-friendly: touches only the tuple's nonzero coordinates), and
///  * AccumulateGrad/params — dense gradient accumulation for mini-batch
///    SGD and Adam.
/// Both also come in TupleBatch form (the Batch* kernels) for the batched
/// execution pipeline; the batch kernels apply the same per-tuple updates
/// in the same order, so seeded results are bit-identical to the per-tuple
/// path at every transport batch size.
class Model {
 public:
  virtual ~Model() = default;

  virtual const char* name() const = 0;
  virtual size_t num_params() const = 0;

  /// Input feature dimensionality the model was constructed for; 0 when
  /// unknown. The serving path uses this to reject tables whose feature
  /// space does not fit the stored model instead of reading out of range.
  virtual uint32_t input_dim() const { return 0; }


  virtual std::vector<double>& params() = 0;
  virtual const std::vector<double>& params() const = 0;

  /// Initializes parameters deterministically from `seed` (zeros for convex
  /// models, scaled Gaussians for the MLP).
  virtual void InitParams(uint64_t seed) = 0;

  /// One vanilla SGD step: w ← w − lr·∇f_i(w). Returns f_i(w) pre-update.
  virtual double SgdStep(const Tuple& t, double lr) = 0;

  /// grad += ∇f_i(w); returns f_i(w). `grad` must have num_params() zeros
  /// or previously accumulated values.
  virtual double AccumulateGrad(const Tuple& t,
                                std::vector<double>* grad) const = 0;

  /// Loss only.
  virtual double Loss(const Tuple& t) const = 0;

  // --- Mini-batch kernels over a TupleBatch (DESIGN.md §9) ---
  //
  // Defaults loop the per-tuple methods over materialized rows, so every
  // model works on the batched pipeline unchanged; hot models override
  // them to read the batch arena directly. All kernels preserve the exact
  // per-tuple update order and floating-point operation sequence. Losses
  // are accumulated into *loss_sum one row at a time (not batch-summed
  // first) so the caller's epoch accumulator sees the same addition order
  // as the per-tuple loop — this is what makes epoch losses bit-identical
  // at every transport batch size.

  /// Sequential SGD over every row of `b` (one SgdStep-equivalent update
  /// per row, in row order). Adds each row's pre-update loss to *loss_sum.
  virtual void BatchGradientStep(const TupleBatch& b, double lr,
                                 double* loss_sum);

  /// grad accumulation over rows [begin, end); adds each row's loss to
  /// *loss_sum.
  virtual void BatchAccumulateGrad(const TupleBatch& b, size_t begin,
                                   size_t end, std::vector<double>* grad,
                                   double* loss_sum) const;

  /// Adds each row's loss to *loss_sum. Thread-safe (const model).
  virtual void BatchLoss(const TupleBatch& b, double* loss_sum) const;

  /// Per-row serving evaluation: fills predictions[i], losses[i] and
  /// corrects[i] (0/1) for each row. Thread-safe (const model); the
  /// serving engine runs it concurrently on one shared snapshot.
  virtual void BatchEvaluate(const TupleBatch& b, double* predictions,
                             double* losses, uint8_t* corrects) const;

  /// Raw prediction: binary → signed margin, multiclass → argmax class id,
  /// regression → predicted value.
  virtual double Predict(const Tuple& t) const = 0;

  /// Classification correctness (false always for regression models).
  virtual bool Correct(const Tuple& t) const = 0;

  /// Top-k correctness for multiclass models (the paper's Top-5 metric on
  /// ImageNet). Defaults to Correct() — i.e. top-1 — for models without
  /// class scores.
  virtual bool TopKCorrect(const Tuple& t, uint32_t k) const {
    (void)k;
    return Correct(t);
  }

  virtual std::unique_ptr<Model> Clone() const = 0;
};

}  // namespace corgipile
