#include "ml/metrics.h"

#include <algorithm>

namespace corgipile {

EvalResult Evaluate(const Model& model, const std::vector<Tuple>& tuples,
                    LabelType label_type) {
  EvalResult r;
  r.count = tuples.size();
  if (tuples.empty()) return r;

  double loss_sum = 0.0;
  if (label_type == LabelType::kContinuous) {
    // R² = 1 − SS_res / SS_tot.
    double y_sum = 0.0;
    for (const Tuple& t : tuples) y_sum += t.label;
    const double y_mean = y_sum / static_cast<double>(tuples.size());
    double ss_res = 0.0, ss_tot = 0.0;
    for (const Tuple& t : tuples) {
      loss_sum += model.Loss(t);
      const double pred = model.Predict(t);
      ss_res += (t.label - pred) * (t.label - pred);
      ss_tot += (t.label - y_mean) * (t.label - y_mean);
    }
    r.metric = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  } else {
    uint64_t correct = 0;
    for (const Tuple& t : tuples) {
      loss_sum += model.Loss(t);
      if (model.Correct(t)) ++correct;
    }
    r.metric = static_cast<double>(correct) / static_cast<double>(tuples.size());
  }
  r.mean_loss = loss_sum / static_cast<double>(tuples.size());
  return r;
}

void EvalAccumulator::Add(double label, double prediction, double loss,
                          bool correct) {
  ++count_;
  if (correct) ++correct_;
  loss_sum_ += loss;
  y_sum_ += label;
  y_sq_sum_ += label * label;
  ss_res_ += (label - prediction) * (label - prediction);
}

EvalResult EvalAccumulator::Finalize(LabelType label_type) const {
  EvalResult r;
  r.count = count_;
  if (count_ == 0) return r;
  const double n = static_cast<double>(count_);
  r.mean_loss = loss_sum_ / n;
  if (label_type == LabelType::kContinuous) {
    const double y_mean = y_sum_ / n;
    const double ss_tot = y_sq_sum_ - n * y_mean * y_mean;
    r.metric = ss_tot > 0.0 ? 1.0 - ss_res_ / ss_tot : 0.0;
  } else {
    r.metric = static_cast<double>(correct_) / n;
  }
  return r;
}

BinaryReport EvaluateBinaryDetailed(const Model& model,
                                    const std::vector<Tuple>& tuples) {
  BinaryReport report;
  std::vector<std::pair<double, bool>> scored;  // (score, is_positive)
  scored.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    const double score = model.Predict(t);
    const bool positive = t.label > 0;
    const bool predicted_positive = score >= 0;
    if (positive && predicted_positive) ++report.tp;
    else if (positive) ++report.fn;
    else if (predicted_positive) ++report.fp;
    else ++report.tn;
    scored.emplace_back(score, positive);
  }
  // AUC via the rank-sum (Mann–Whitney) statistic with tie handling.
  const uint64_t pos = report.tp + report.fn;
  const uint64_t neg = report.fp + report.tn;
  if (pos == 0 || neg == 0) {
    report.auc = 0.0;
    return report;
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < scored.size()) {
    size_t j = i;
    while (j < scored.size() && scored[j].first == scored[i].first) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
    for (size_t k = i; k < j; ++k) {
      if (scored[k].second) rank_sum_pos += avg_rank;
    }
    i = j;
  }
  report.auc = (rank_sum_pos - 0.5 * pos * (pos + 1)) /
               (static_cast<double>(pos) * static_cast<double>(neg));
  return report;
}

}  // namespace corgipile
