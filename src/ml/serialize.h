// Model parameter persistence.
//
// The in-DB model store keeps learned models as in-memory objects (§6.1);
// this module lets them survive process restarts: a small text header
// (magic, model name, parameter count) followed by raw little-endian
// float64 parameters.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/model.h"
#include "util/status.h"

namespace corgipile {

/// Durably replaces the file at `path` with `len` bytes from `data`:
/// writes `path`.tmp, fsyncs it, atomically renames it over `path`, and
/// fsyncs the parent directory. A crash at any point leaves either the old
/// complete file or the new complete file, never a torn mix.
Status AtomicWriteFile(const std::string& path, const void* data, size_t len);

/// Writes `model`'s parameters to `path` (atomic + durable, see
/// AtomicWriteFile).
Status SaveModelParams(const Model& model, const std::string& path);

/// Loads parameters into `model`. Fails with Corruption on a malformed
/// file and InvalidArgument when the model name or parameter count does
/// not match the file.
Status LoadModelParams(Model* model, const std::string& path);

}  // namespace corgipile
