// Model parameter persistence.
//
// The in-DB model store keeps learned models as in-memory objects (§6.1);
// this module lets them survive process restarts: a small text header
// (magic, model name, parameter count) followed by raw little-endian
// float64 parameters.

#pragma once

#include <string>

#include "ml/model.h"
#include "util/status.h"

namespace corgipile {

/// Writes `model`'s parameters to `path`.
Status SaveModelParams(const Model& model, const std::string& path);

/// Loads parameters into `model`. Fails with Corruption on a malformed
/// file and InvalidArgument when the model name or parameter count does
/// not match the file.
Status LoadModelParams(Model* model, const std::string& path);

}  // namespace corgipile
