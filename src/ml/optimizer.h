// Learning-rate schedules and dense-gradient optimizers (mini-batch SGD,
// Adam).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace corgipile {

/// Learning-rate schedule. Two families:
///  * kExponential — the paper's experimental default: initial·decay^(e/k);
///  * kInverse — Theorem 1's prescription η_s = initial·a/(s+a), decaying
///    like 1/s with a warm offset a (= decay_every here).
struct LrSchedule {
  enum class Kind { kExponential, kInverse };
  Kind kind = Kind::kExponential;
  double initial = 0.1;
  double decay = 0.95;
  uint32_t decay_every = 1;  ///< exponential: epochs per decay; inverse: a

  double LrAtEpoch(uint32_t epoch) const;
};

/// Dense optimizer applied to accumulated mini-batch gradients.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual const char* name() const = 0;
  /// (Re)initializes state for `num_params` parameters.
  virtual void Reset(size_t num_params) = 0;
  /// params ← update(params, grad) with step size `lr`. `grad` is the
  /// *mean* gradient of the batch.
  virtual void Apply(std::vector<double>* params,
                     const std::vector<double>& grad, double lr) = 0;
};

/// Plain SGD: params -= lr * grad.
class SgdOptimizer : public Optimizer {
 public:
  const char* name() const override { return "sgd"; }
  void Reset(size_t) override {}
  void Apply(std::vector<double>* params, const std::vector<double>& grad,
             double lr) override;
};

/// Adam (Kingma & Ba 2015) with the standard bias correction.
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);
  const char* name() const override { return "adam"; }
  void Reset(size_t num_params) override;
  void Apply(std::vector<double>* params, const std::vector<double>& grad,
             double lr) override;

 private:
  double beta1_, beta2_, eps_;
  uint64_t step_ = 0;
  std::vector<double> m_, v_;
};

enum class OptimizerKind { kSgd, kAdam };

const char* OptimizerKindToString(OptimizerKind k);
std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind);

}  // namespace corgipile
