#include "ml/checkpoint.h"

#include <sys/stat.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "iosim/fault_plane.h"
#include "ml/serialize.h"
#include "util/crc32c.h"

namespace corgipile {

namespace {

constexpr char kMagic[] = "corgickpt_v1";

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutDoubles(std::string* out, const std::vector<double>& v) {
  PutU64(out, v.size());
  if (!v.empty()) {
    out->append(reinterpret_cast<const char*>(v.data()),
                v.size() * sizeof(double));
  }
}

bool GetU64(const uint8_t* data, size_t len, size_t* pos, uint64_t* v) {
  if (*pos + sizeof(*v) > len) return false;
  std::memcpy(v, data + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

bool GetF64(const uint8_t* data, size_t len, size_t* pos, double* v) {
  if (*pos + sizeof(*v) > len) return false;
  std::memcpy(v, data + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

bool GetDoubles(const uint8_t* data, size_t len, size_t* pos,
                std::vector<double>* v) {
  uint64_t n = 0;
  if (!GetU64(data, len, pos, &n)) return false;
  if (n > (len - *pos) / sizeof(double)) return false;  // overflow-safe
  v->resize(n);
  if (n != 0) {
    std::memcpy(v->data(), data + *pos, n * sizeof(double));
    *pos += n * sizeof(double);
  }
  return true;
}

}  // namespace

Status SaveCheckpoint(const TrainCheckpoint& ckpt, const std::string& path) {
  CORGI_INJECT_POINT("checkpoint.save");
  std::string body;
  body.append(kMagic);
  body.push_back('\n');
  PutU64(&body, ckpt.model_name.size());
  body.append(ckpt.model_name);
  PutU64(&body, ckpt.next_epoch);
  PutDoubles(&body, ckpt.params);
  PutDoubles(&body, ckpt.avg_params);
  PutF64(&body, ckpt.weight_sum);
  PutU64(&body, ckpt.total_tuples);
  PutF64(&body, ckpt.best_test_metric);
  PutU64(&body, ckpt.total_quarantined_blocks);
  PutU64(&body, ckpt.total_skipped_tuples);
  const uint32_t crc = Crc32cForStorage(body.data(), body.size());
  body.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return AtomicWriteFile(path, body.data(), body.size());
}

Result<TrainCheckpoint> LoadCheckpoint(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("no checkpoint at " + path);
  }
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string body = ss.str();

  const size_t magic_len = sizeof(kMagic) - 1;  // excluding NUL
  if (body.size() < magic_len + 1 + sizeof(uint32_t)) {
    return Status::Corruption("checkpoint too small: " + path);
  }
  if (body.compare(0, magic_len, kMagic) != 0 || body[magic_len] != '\n') {
    return Status::Corruption("bad checkpoint magic in " + path);
  }
  const size_t payload_len = body.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, body.data() + payload_len, sizeof(stored_crc));
  if (stored_crc != Crc32cForStorage(body.data(), payload_len)) {
    return Status::Corruption("checkpoint crc mismatch in " + path);
  }

  const auto* data = reinterpret_cast<const uint8_t*>(body.data());
  size_t pos = magic_len + 1;
  TrainCheckpoint ckpt;
  uint64_t name_len = 0;
  uint64_t next_epoch = 0;
  bool ok = GetU64(data, payload_len, &pos, &name_len);
  if (ok && name_len <= payload_len - pos) {
    ckpt.model_name.assign(body, pos, name_len);
    pos += name_len;
  } else {
    ok = false;
  }
  ok = ok && GetU64(data, payload_len, &pos, &next_epoch);
  ok = ok && GetDoubles(data, payload_len, &pos, &ckpt.params);
  ok = ok && GetDoubles(data, payload_len, &pos, &ckpt.avg_params);
  ok = ok && GetF64(data, payload_len, &pos, &ckpt.weight_sum);
  ok = ok && GetU64(data, payload_len, &pos, &ckpt.total_tuples);
  ok = ok && GetF64(data, payload_len, &pos, &ckpt.best_test_metric);
  ok = ok && GetU64(data, payload_len, &pos, &ckpt.total_quarantined_blocks);
  ok = ok && GetU64(data, payload_len, &pos, &ckpt.total_skipped_tuples);
  if (!ok || pos != payload_len) {
    return Status::Corruption("malformed checkpoint body in " + path);
  }
  ckpt.next_epoch = static_cast<uint32_t>(next_epoch);
  return ckpt;
}

}  // namespace corgipile
