// Learning-rate grid search, mirroring the paper's tuning protocol
// ("grid search to tune the best learning rate from {0.1, 0.01, 0.001}").

#pragma once

#include <functional>
#include <vector>

#include "ml/trainer.h"

namespace corgipile {

struct GridSearchResult {
  double best_lr = 0.0;
  double best_metric = 0.0;
  std::vector<std::pair<double, double>> tried;  ///< (lr, final metric)
};

/// Runs `make_stream`+Train once per candidate lr (fresh model clone each
/// time) and returns the lr with the best final test metric.
///
/// `make_stream` must return a fresh or restartable stream per call.
Result<GridSearchResult> GridSearchLr(
    const Model& prototype, const std::function<TupleStream*()>& get_stream,
    TrainerOptions options, const std::vector<double>& candidates = {
                                0.1, 0.01, 0.001});

}  // namespace corgipile
