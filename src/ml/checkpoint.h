// Crash-safe training checkpoints.
//
// A checkpoint captures everything the trainer needs to continue a run
// after a crash: the model parameters, the next epoch to run, the
// Theorem-1 averaging state, and the progress counters the final
// TrainResult reports. Files are written atomically and durably
// (write-temp + fsync + rename + directory fsync, see AtomicWriteFile) and
// carry a CRC32C trailer, so a reader either sees a complete, verified
// checkpoint or a clean error — never a torn one.
//
// Combined with per-epoch deterministic shuffling (every stream's order is
// a pure function of (seed, epoch)), resuming from the checkpoint of epoch
// e replays epochs e+1.. exactly as the original run would have.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace corgipile {

struct TrainCheckpoint {
  std::string model_name;
  uint32_t next_epoch = 0;  ///< first epoch not yet run
  std::vector<double> params;
  /// Theorem-1 averaging state (empty / 0 when averaging is off).
  std::vector<double> avg_params;
  double weight_sum = 0.0;
  /// Progress counters carried into the resumed TrainResult.
  uint64_t total_tuples = 0;
  double best_test_metric = 0.0;
  uint64_t total_quarantined_blocks = 0;
  uint64_t total_skipped_tuples = 0;
};

/// Durably writes `ckpt` to `path` (atomic rename; CRC32C trailer).
Status SaveCheckpoint(const TrainCheckpoint& ckpt, const std::string& path);

/// Reads and verifies a checkpoint. Returns kNotFound when no file exists
/// at `path` (callers treat that as "start fresh") and kCorruption when the
/// file fails CRC or structural validation.
Result<TrainCheckpoint> LoadCheckpoint(const std::string& path);

}  // namespace corgipile
