#include "ml/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "iosim/fault_plane.h"

namespace corgipile {

namespace {
constexpr char kMagic[] = "corgimodel_v1";
}

Status AtomicWriteFile(const std::string& path, const void* data, size_t len) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("create " + tmp + ": " + std::strerror(errno));
  }
  const auto* p = static_cast<const uint8_t*>(data);
  size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, p + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st =
          Status::IoError("write " + tmp + ": " + std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status st =
        Status::IoError("fsync " + tmp + ": " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("close " + tmp + ": " + std::strerror(errno));
  }
  // Chaos point: a kill in the window after the temp file is durable but
  // before the rename models the classic torn-checkpoint crash — the old
  // complete file must still be what a restart reads.
  CORGI_INJECT_POINT("storage.atomic_write.before_rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status st = Status::IoError("rename " + tmp + " -> " + path + ": " +
                                      std::strerror(errno));
    ::unlink(tmp.c_str());
    return st;
  }
  // Persist the rename itself.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best effort; some filesystems reject directory fsync
    ::close(dfd);
  }
  return Status::OK();
}

Status SaveModelParams(const Model& model, const std::string& path) {
  std::ostringstream buf;
  buf << kMagic << ' ' << model.name() << ' ' << model.num_params() << '\n';
  buf.write(reinterpret_cast<const char*>(model.params().data()),
            static_cast<std::streamsize>(model.num_params() * sizeof(double)));
  const std::string bytes = buf.str();
  return AtomicWriteFile(path, bytes.data(), bytes.size());
}

Status LoadModelParams(Model* model, const std::string& path) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  std::string magic, name;
  size_t count = 0;
  if (!(f >> magic >> name >> count)) {
    return Status::Corruption("malformed model header in " + path);
  }
  if (magic != kMagic) return Status::Corruption("bad magic in " + path);
  if (name != model->name()) {
    return Status::InvalidArgument("model kind mismatch: file has '" + name +
                                   "', target is '" + model->name() + "'");
  }
  if (count != model->num_params()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", model expects " + std::to_string(model->num_params()));
  }
  f.ignore(1);  // the newline after the header
  std::vector<double> params(count);
  f.read(reinterpret_cast<char*>(params.data()),
         static_cast<std::streamsize>(count * sizeof(double)));
  if (f.gcount() != static_cast<std::streamsize>(count * sizeof(double))) {
    return Status::Corruption("truncated parameters in " + path);
  }
  model->params() = std::move(params);
  return Status::OK();
}

}  // namespace corgipile
