#include "ml/serialize.h"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace corgipile {

namespace {
constexpr char kMagic[] = "corgimodel_v1";
}

Status SaveModelParams(const Model& model, const std::string& path) {
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  f << kMagic << ' ' << model.name() << ' ' << model.num_params() << '\n';
  f.write(reinterpret_cast<const char*>(model.params().data()),
          static_cast<std::streamsize>(model.num_params() * sizeof(double)));
  if (!f.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status LoadModelParams(Model* model, const std::string& path) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  std::string magic, name;
  size_t count = 0;
  if (!(f >> magic >> name >> count)) {
    return Status::Corruption("malformed model header in " + path);
  }
  if (magic != kMagic) return Status::Corruption("bad magic in " + path);
  if (name != model->name()) {
    return Status::InvalidArgument("model kind mismatch: file has '" + name +
                                   "', target is '" + model->name() + "'");
  }
  if (count != model->num_params()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", model expects " + std::to_string(model->num_params()));
  }
  f.ignore(1);  // the newline after the header
  std::vector<double> params(count);
  f.read(reinterpret_cast<char*>(params.data()),
         static_cast<std::streamsize>(count * sizeof(double)));
  if (f.gcount() != static_cast<std::streamsize>(count * sizeof(double))) {
    return Status::Corruption("truncated parameters in " + path);
  }
  model->params() = std::move(params);
  return Status::OK();
}

}  // namespace corgipile
