// Epoch-driven trainer: runs a Model over a TupleStream with per-tuple SGD
// or mini-batch SGD/Adam, logging metrics and (simulated + real) time per
// epoch.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "iosim/sim_clock.h"
#include "ml/metrics.h"
#include "ml/model.h"
#include "ml/optimizer.h"
#include "shuffle/tuple_stream.h"
#include "storage/schema.h"
#include "util/status.h"

namespace corgipile {

struct TrainerOptions {
  uint32_t epochs = 20;
  LrSchedule lr;
  /// 1 = standard per-tuple SGD (SgdStep path); >1 = mini-batch with the
  /// configured optimizer over dense accumulated gradients.
  uint32_t batch_size = 1;
  /// Transport batch size of the batched execution pipeline — tuples pulled
  /// per BatchStream::NextBatch call. Purely a transport knob, independent
  /// of batch_size (the optimizer's mini-batch): seeded results are
  /// bit-identical at every value. 0 = legacy per-tuple Next() pull, kept
  /// as the golden reference path for equivalence tests.
  uint32_t exec_batch_tuples = TupleBatch::kDefaultTargetTuples;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  /// Test tuples evaluated after each epoch (not owned; may be null).
  const std::vector<Tuple>* test_set = nullptr;
  LabelType label_type = LabelType::kBinary;
  /// If set, each epoch's real compute wall time is charged here, so the
  /// SimClock total (I/O + compute) is an end-to-end time estimate.
  SimClock* clock = nullptr;
  uint64_t init_seed = 7;
  /// Stop early once test metric reaches this value (0 = never).
  double target_metric = 0.0;
  /// Theorem 1 evaluates the weighted average iterate
  /// x̄_S = Σ_s (s+a)³ x_s / Σ_s (s+a)³ rather than the last iterate. When
  /// enabled, the trainer maintains that running average (with
  /// `averaging_offset` as a) and reports test metrics on it; the model's
  /// final parameters are replaced by the average after the last epoch.
  /// Averaging suppresses the end-of-epoch oscillation block-clustered
  /// data induces in the raw iterates.
  bool theorem_averaging = false;
  uint32_t averaging_offset = 4;  ///< the theorem's a

  /// Crash-safe checkpointing. When `checkpoint_path` is non-empty, the
  /// trainer durably saves model parameters + training progress every
  /// `checkpoint_every_epochs` epochs (and after the final epoch) via an
  /// atomic write-temp/fsync/rename. With `resume` set, an existing
  /// checkpoint at that path is loaded and training continues from the
  /// epoch after the one it recorded; because every stream's per-epoch
  /// order is a pure function of (seed, epoch), the resumed run replays
  /// exactly what the original run would have done. Exact resume holds for
  /// plain SGD (stateless); Adam's moment estimates restart from zero.
  std::string checkpoint_path;
  uint32_t checkpoint_every_epochs = 1;
  bool resume = false;
};

struct EpochLog {
  uint32_t epoch = 0;
  double lr = 0.0;
  double train_loss = 0.0;  ///< mean per-step loss seen during the epoch
  double test_loss = 0.0;
  double test_metric = 0.0;  ///< accuracy or R²
  uint64_t tuples_seen = 0;
  double epoch_wall_seconds = 0.0;      ///< real compute time of the epoch
  double cumulative_sim_seconds = 0.0;  ///< SimClock total after the epoch
  /// Corrupt/unreadable blocks quarantined during this epoch, and the
  /// tuples lost with them (graceful-degradation accounting).
  uint64_t quarantined_blocks = 0;
  uint64_t skipped_tuples = 0;
  /// Worker supervision (set by TrainDistributed only; 0 elsewhere):
  /// workers still active at the end of the epoch, and the epoch's
  /// simulated critical path — the largest per-worker simulated seconds
  /// (I/O, latency spikes, retry backoff) attributed this epoch, i.e. how
  /// long the AllReduce barrier waited for the slowest worker.
  uint32_t active_workers = 0;
  double barrier_sim_seconds = 0.0;
};

/// A worker evicted by the distributed trainer's supervision layer
/// (WorkerFailurePolicy::kDropAndRescale).
struct DroppedWorker {
  uint32_t worker_id = 0;
  uint32_t epoch = 0;  ///< epoch during which it was dropped
  StatusCode code = StatusCode::kOk;  ///< kIoError, kDeadlineExceeded, ...
  std::string reason;
};

/// Per-worker liveness/accounting summary reported by TrainDistributed.
struct WorkerSummary {
  uint32_t worker_id = 0;
  /// Heartbeats: supervised steps this worker completed (gradient compute
  /// reported back to the supervisor).
  uint64_t heartbeat_steps = 0;
  /// Simulated seconds attributed to this worker's data path across the
  /// whole run (deterministic given the seed and fault configuration).
  double sim_seconds = 0.0;
  bool dropped = false;
};

struct TrainResult {
  std::vector<EpochLog> epochs;
  double final_test_metric = 0.0;
  double final_test_loss = 0.0;
  double best_test_metric = 0.0;
  uint64_t total_tuples = 0;
  /// Graceful-degradation totals across all epochs of this call.
  uint64_t total_quarantined_blocks = 0;
  uint64_t total_skipped_tuples = 0;
  /// First epoch actually run by this call (> 0 when resumed).
  uint32_t resumed_from_epoch = 0;
  /// Workers evicted under WorkerFailurePolicy::kDropAndRescale, in
  /// eviction order, and the per-worker summaries (TrainDistributed only;
  /// empty for single-process training).
  std::vector<DroppedWorker> dropped_workers;
  std::vector<WorkerSummary> workers;

  const EpochLog& back() const { return epochs.back(); }
};

/// Trains `model` (initialized with options.init_seed) by driving `stream`
/// for options.epochs epochs.
Result<TrainResult> Train(Model* model, TupleStream* stream,
                          const TrainerOptions& options);

}  // namespace corgipile
