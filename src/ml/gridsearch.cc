#include "ml/gridsearch.h"

namespace corgipile {

Result<GridSearchResult> GridSearchLr(
    const Model& prototype, const std::function<TupleStream*()>& get_stream,
    TrainerOptions options, const std::vector<double>& candidates) {
  if (candidates.empty()) {
    return Status::InvalidArgument("empty lr candidate list");
  }
  GridSearchResult result;
  result.best_metric = -1.0;
  for (double lr : candidates) {
    std::unique_ptr<Model> model = prototype.Clone();
    options.lr.initial = lr;
    TupleStream* stream = get_stream();
    if (stream == nullptr) return Status::InvalidArgument("null stream");
    CORGI_ASSIGN_OR_RETURN(TrainResult r, Train(model.get(), stream, options));
    result.tried.emplace_back(lr, r.final_test_metric);
    if (r.final_test_metric > result.best_metric) {
      result.best_metric = r.final_test_metric;
      result.best_lr = lr;
    }
  }
  return result;
}

}  // namespace corgipile
