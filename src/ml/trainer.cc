#include "ml/trainer.h"

#include <algorithm>
#include <cmath>

#include "iosim/fault_plane.h"
#include "ml/checkpoint.h"
#include "util/timer.h"

namespace corgipile {

Result<TrainResult> Train(Model* model, TupleStream* stream,
                          const TrainerOptions& options) {
  if (model == nullptr || stream == nullptr) {
    return Status::InvalidArgument("null model or stream");
  }
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (!options.checkpoint_path.empty() &&
      options.checkpoint_every_epochs == 0) {
    return Status::InvalidArgument("checkpoint_every_epochs must be >= 1");
  }
  model->InitParams(options.init_seed);

  std::unique_ptr<Optimizer> opt;
  std::vector<double> grad;
  const bool batched =
      options.batch_size > 1 || options.optimizer != OptimizerKind::kSgd;
  if (batched) {
    opt = MakeOptimizer(options.optimizer);
    opt->Reset(model->num_params());
    grad.assign(model->num_params(), 0.0);
  }

  TrainResult result;

  // Theorem-1 averaging state.
  std::vector<double> avg_params;
  double weight_sum = 0.0;
  std::unique_ptr<Model> eval_model;  // averaged clone used for evaluation
  if (options.theorem_averaging) {
    avg_params.assign(model->num_params(), 0.0);
    eval_model = model->Clone();
  }

  // Resume from the last durable checkpoint, if there is one. The shuffle
  // order of epoch e is a pure function of (seed, e), so continuing at
  // start_epoch replays exactly what an uninterrupted run would have done.
  uint32_t start_epoch = 0;
  if (options.resume && !options.checkpoint_path.empty()) {
    auto loaded = LoadCheckpoint(options.checkpoint_path);
    if (loaded.ok()) {
      TrainCheckpoint ckpt = std::move(loaded).ValueOrDie();
      if (ckpt.model_name != model->name()) {
        return Status::InvalidArgument(
            "checkpoint model '" + ckpt.model_name + "' does not match '" +
            model->name() + "'");
      }
      if (ckpt.params.size() != model->num_params()) {
        return Status::InvalidArgument(
            "checkpoint has " + std::to_string(ckpt.params.size()) +
            " params, model expects " + std::to_string(model->num_params()));
      }
      if (options.theorem_averaging &&
          ckpt.avg_params.size() != avg_params.size()) {
        return Status::InvalidArgument(
            "checkpoint averaging state does not match the model");
      }
      model->params() = std::move(ckpt.params);
      if (options.theorem_averaging) {
        avg_params = std::move(ckpt.avg_params);
        weight_sum = ckpt.weight_sum;
      }
      start_epoch = ckpt.next_epoch;
      result.total_tuples = ckpt.total_tuples;
      result.best_test_metric = ckpt.best_test_metric;
      result.total_quarantined_blocks = ckpt.total_quarantined_blocks;
      result.total_skipped_tuples = ckpt.total_skipped_tuples;
    } else if (!loaded.status().IsNotFound()) {
      return loaded.status();  // corrupt/unreadable checkpoint: surface it
    }
  }
  result.resumed_from_epoch = start_epoch;
  if (start_epoch > options.epochs) start_epoch = options.epochs;
  result.epochs.reserve(options.epochs - start_epoch);

  // Batched-pipeline transport buffer; the arena is reused across batches
  // and epochs.
  TupleBatch exec_batch(options.exec_batch_tuples > 0
                            ? options.exec_batch_tuples
                            : TupleBatch::kDefaultTargetTuples);

  auto save_checkpoint = [&](uint32_t next_epoch) -> Status {
    TrainCheckpoint ckpt;
    ckpt.model_name = model->name();
    ckpt.next_epoch = next_epoch;
    ckpt.params = model->params();
    if (options.theorem_averaging) {
      ckpt.avg_params = avg_params;
      ckpt.weight_sum = weight_sum;
    }
    ckpt.total_tuples = result.total_tuples;
    ckpt.best_test_metric = result.best_test_metric;
    ckpt.total_quarantined_blocks = result.total_quarantined_blocks;
    ckpt.total_skipped_tuples = result.total_skipped_tuples;
    return SaveCheckpoint(ckpt, options.checkpoint_path);
  };

  for (uint32_t epoch = start_epoch; epoch < options.epochs; ++epoch) {
    CORGI_INJECT_POINT("trainer.epoch_begin");
    const double lr = options.lr.LrAtEpoch(epoch);
    CORGI_RETURN_NOT_OK(stream->StartEpoch(epoch));
    const uint64_t quarantined_before = stream->QuarantinedBlocks();
    const uint64_t skipped_before = stream->SkippedTuples();

    WallTimer timer;
    double loss_sum = 0.0;
    uint64_t seen = 0;
    uint32_t in_batch = 0;
    auto flush = [&] {
      if (in_batch == 0) return;
      const double inv = 1.0 / static_cast<double>(in_batch);
      for (double& g : grad) g *= inv;
      opt->Apply(&model->params(), grad, lr);
      std::fill(grad.begin(), grad.end(), 0.0);
      in_batch = 0;
    };
    if (options.exec_batch_tuples == 0) {
      // Legacy per-tuple pull — the golden reference the batched pipeline
      // is tested against.
      if (!batched) {
        while (const Tuple* t = stream->Next()) {
          loss_sum += model->SgdStep(*t, lr);
          ++seen;
        }
      } else {
        while (const Tuple* t = stream->Next()) {
          loss_sum += model->AccumulateGrad(*t, &grad);
          ++seen;
          if (++in_batch == options.batch_size) flush();
        }
        flush();
      }
    } else {
      // Batched pipeline: one NextBatch per exec_batch_tuples tuples. The
      // optimizer's mini-batch grouping is re-chunked across transport
      // batch boundaries so the flush cadence matches the legacy loop
      // exactly.
      while (stream->NextBatch(&exec_batch)) {
        if (!batched) {
          model->BatchGradientStep(exec_batch, lr, &loss_sum);
          seen += exec_batch.size();
        } else {
          size_t i = 0;
          while (i < exec_batch.size()) {
            const size_t take =
                std::min<size_t>(exec_batch.size() - i,
                                 options.batch_size - in_batch);
            model->BatchAccumulateGrad(exec_batch, i, i + take, &grad,
                                       &loss_sum);
            i += take;
            seen += take;
            in_batch += static_cast<uint32_t>(take);
            if (in_batch == options.batch_size) flush();
          }
        }
      }
      if (batched) flush();
    }
    CORGI_RETURN_NOT_OK(stream->status());

    const Model* metrics_model = model;
    if (options.theorem_averaging) {
      const double w =
          std::pow(static_cast<double>(epoch) + options.averaging_offset, 3.0);
      weight_sum += w;
      const auto& p = model->params();
      for (size_t i = 0; i < avg_params.size(); ++i) {
        avg_params[i] += (w / weight_sum) * (p[i] - avg_params[i]);
      }
      eval_model->params() = avg_params;
      metrics_model = eval_model.get();
    }

    EpochLog log;
    log.epoch = epoch;
    log.lr = lr;
    log.tuples_seen = seen;
    log.epoch_wall_seconds = timer.ElapsedSeconds();
    log.train_loss = seen > 0 ? loss_sum / static_cast<double>(seen) : 0.0;
    log.quarantined_blocks = stream->QuarantinedBlocks() - quarantined_before;
    log.skipped_tuples = stream->SkippedTuples() - skipped_before;
    if (options.clock != nullptr) {
      options.clock->Advance(TimeCategory::kCompute, log.epoch_wall_seconds);
    }
    if (options.test_set != nullptr && !options.test_set->empty()) {
      const EvalResult eval =
          Evaluate(*metrics_model, *options.test_set, options.label_type);
      log.test_loss = eval.mean_loss;
      log.test_metric = eval.metric;
    }
    log.cumulative_sim_seconds =
        options.clock != nullptr ? options.clock->TotalElapsed() : 0.0;
    result.total_tuples += seen;
    result.total_quarantined_blocks += log.quarantined_blocks;
    result.total_skipped_tuples += log.skipped_tuples;
    result.best_test_metric = std::max(result.best_test_metric, log.test_metric);
    result.epochs.push_back(log);

    // Chaos point: a kill here dies after the epoch's updates but before
    // its checkpoint — a restart replays the whole epoch from the previous
    // checkpoint and must land on identical parameters.
    CORGI_INJECT_POINT("trainer.epoch_end");
    const bool target_hit = options.target_metric > 0.0 &&
                            log.test_metric >= options.target_metric;
    const bool last_epoch = target_hit || epoch + 1 == options.epochs;
    if (!options.checkpoint_path.empty() &&
        (last_epoch ||
         (epoch + 1 - start_epoch) % options.checkpoint_every_epochs == 0)) {
      CORGI_RETURN_NOT_OK(save_checkpoint(epoch + 1));
    }
    if (target_hit) break;
  }
  if (options.theorem_averaging && !avg_params.empty()) {
    model->params() = avg_params;  // expose x̄_S as the trained model
  }
  if (!result.epochs.empty()) {
    result.final_test_metric = result.epochs.back().test_metric;
    result.final_test_loss = result.epochs.back().test_loss;
  }
  return result;
}

}  // namespace corgipile
