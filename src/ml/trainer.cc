#include "ml/trainer.h"

#include <algorithm>
#include <cmath>

#include "util/timer.h"

namespace corgipile {

Result<TrainResult> Train(Model* model, TupleStream* stream,
                          const TrainerOptions& options) {
  if (model == nullptr || stream == nullptr) {
    return Status::InvalidArgument("null model or stream");
  }
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  model->InitParams(options.init_seed);

  std::unique_ptr<Optimizer> opt;
  std::vector<double> grad;
  const bool batched =
      options.batch_size > 1 || options.optimizer != OptimizerKind::kSgd;
  if (batched) {
    opt = MakeOptimizer(options.optimizer);
    opt->Reset(model->num_params());
    grad.assign(model->num_params(), 0.0);
  }

  TrainResult result;
  result.epochs.reserve(options.epochs);

  // Theorem-1 averaging state.
  std::vector<double> avg_params;
  double weight_sum = 0.0;
  std::unique_ptr<Model> eval_model;  // averaged clone used for evaluation
  if (options.theorem_averaging) {
    avg_params.assign(model->num_params(), 0.0);
    eval_model = model->Clone();
  }

  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    const double lr = options.lr.LrAtEpoch(epoch);
    CORGI_RETURN_NOT_OK(stream->StartEpoch(epoch));

    WallTimer timer;
    double loss_sum = 0.0;
    uint64_t seen = 0;
    if (!batched) {
      while (const Tuple* t = stream->Next()) {
        loss_sum += model->SgdStep(*t, lr);
        ++seen;
      }
    } else {
      uint32_t in_batch = 0;
      auto flush = [&] {
        if (in_batch == 0) return;
        const double inv = 1.0 / static_cast<double>(in_batch);
        for (double& g : grad) g *= inv;
        opt->Apply(&model->params(), grad, lr);
        std::fill(grad.begin(), grad.end(), 0.0);
        in_batch = 0;
      };
      while (const Tuple* t = stream->Next()) {
        loss_sum += model->AccumulateGrad(*t, &grad);
        ++seen;
        if (++in_batch == options.batch_size) flush();
      }
      flush();
    }
    CORGI_RETURN_NOT_OK(stream->status());

    const Model* metrics_model = model;
    if (options.theorem_averaging) {
      const double w =
          std::pow(static_cast<double>(epoch) + options.averaging_offset, 3.0);
      weight_sum += w;
      const auto& p = model->params();
      for (size_t i = 0; i < avg_params.size(); ++i) {
        avg_params[i] += (w / weight_sum) * (p[i] - avg_params[i]);
      }
      eval_model->params() = avg_params;
      metrics_model = eval_model.get();
    }

    EpochLog log;
    log.epoch = epoch;
    log.lr = lr;
    log.tuples_seen = seen;
    log.epoch_wall_seconds = timer.ElapsedSeconds();
    log.train_loss = seen > 0 ? loss_sum / static_cast<double>(seen) : 0.0;
    if (options.clock != nullptr) {
      options.clock->Advance(TimeCategory::kCompute, log.epoch_wall_seconds);
    }
    if (options.test_set != nullptr && !options.test_set->empty()) {
      const EvalResult eval =
          Evaluate(*metrics_model, *options.test_set, options.label_type);
      log.test_loss = eval.mean_loss;
      log.test_metric = eval.metric;
    }
    log.cumulative_sim_seconds =
        options.clock != nullptr ? options.clock->TotalElapsed() : 0.0;
    result.total_tuples += seen;
    result.best_test_metric = std::max(result.best_test_metric, log.test_metric);
    result.epochs.push_back(log);

    if (options.target_metric > 0.0 &&
        log.test_metric >= options.target_metric) {
      break;
    }
  }
  if (options.theorem_averaging && !avg_params.empty()) {
    model->params() = avg_params;  // expose x̄_S as the trained model
  }
  if (!result.epochs.empty()) {
    result.final_test_metric = result.epochs.back().test_metric;
    result.final_test_loss = result.epochs.back().test_loss;
  }
  return result;
}

}  // namespace corgipile
