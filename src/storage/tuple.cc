#include "storage/tuple.h"

#include <cstring>

namespace corgipile {

namespace {

template <typename T>
void AppendRaw(std::vector<uint8_t>* out, const T& v) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool ReadRaw(const uint8_t* data, size_t size, size_t* pos, T* v) {
  if (*pos + sizeof(T) > size) return false;
  std::memcpy(v, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

double Tuple::Dot(const std::vector<double>& w) const {
  double acc = 0.0;
  if (sparse()) {
    for (size_t i = 0; i < feature_keys.size(); ++i) {
      acc += w[feature_keys[i]] * static_cast<double>(feature_values[i]);
    }
  } else {
    for (size_t i = 0; i < feature_values.size(); ++i) {
      acc += w[i] * static_cast<double>(feature_values[i]);
    }
  }
  return acc;
}

void Tuple::AxpyInto(double scale, std::vector<double>* w) const {
  if (sparse()) {
    for (size_t i = 0; i < feature_keys.size(); ++i) {
      (*w)[feature_keys[i]] += scale * static_cast<double>(feature_values[i]);
    }
  } else {
    for (size_t i = 0; i < feature_values.size(); ++i) {
      (*w)[i] += scale * static_cast<double>(feature_values[i]);
    }
  }
}

double Tuple::SquaredNorm() const {
  double acc = 0.0;
  for (float v : feature_values) acc += static_cast<double>(v) * v;
  return acc;
}

size_t Tuple::SerializedSize() const {
  size_t n = sizeof(uint64_t) + sizeof(double) + sizeof(uint32_t) + 1;
  if (sparse()) n += feature_keys.size() * sizeof(uint32_t);
  n += feature_values.size() * sizeof(float);
  return n;
}

void Tuple::SerializeTo(std::vector<uint8_t>* out) const {
  AppendRaw(out, id);
  AppendRaw(out, label);
  AppendRaw(out, static_cast<uint32_t>(feature_values.size()));
  AppendRaw(out, static_cast<uint8_t>(sparse() ? 1 : 0));
  if (sparse()) {
    for (uint32_t k : feature_keys) AppendRaw(out, k);
  }
  for (float v : feature_values) AppendRaw(out, v);
}

Result<Tuple> Tuple::Deserialize(const uint8_t* data, size_t size,
                                 size_t* consumed) {
  Tuple t;
  size_t pos = 0;
  uint32_t nnz = 0;
  uint8_t is_sparse = 0;
  if (!ReadRaw(data, size, &pos, &t.id) ||
      !ReadRaw(data, size, &pos, &t.label) ||
      !ReadRaw(data, size, &pos, &nnz) ||
      !ReadRaw(data, size, &pos, &is_sparse)) {
    return Status::Corruption("truncated tuple header");
  }
  if (is_sparse) {
    t.feature_keys.resize(nnz);
    for (uint32_t i = 0; i < nnz; ++i) {
      if (!ReadRaw(data, size, &pos, &t.feature_keys[i])) {
        return Status::Corruption("truncated tuple keys");
      }
    }
  }
  t.feature_values.resize(nnz);
  for (uint32_t i = 0; i < nnz; ++i) {
    if (!ReadRaw(data, size, &pos, &t.feature_values[i])) {
      return Status::Corruption("truncated tuple values");
    }
  }
  *consumed = pos;
  return t;
}

Tuple MakeDenseTuple(uint64_t id, double label, std::vector<float> values) {
  Tuple t;
  t.id = id;
  t.label = label;
  t.feature_values = std::move(values);
  return t;
}

Tuple MakeSparseTuple(uint64_t id, double label, std::vector<uint32_t> keys,
                      std::vector<float> values) {
  Tuple t;
  t.id = id;
  t.label = label;
  t.feature_keys = std::move(keys);
  t.feature_values = std::move(values);
  return t;
}

}  // namespace corgipile
