#include "storage/block_source.h"

#include <algorithm>

namespace corgipile {

InMemoryBlockSource::InMemoryBlockSource(
    Schema schema, std::shared_ptr<const std::vector<Tuple>> tuples,
    uint64_t tuples_per_block)
    : schema_(std::move(schema)), tuples_(std::move(tuples)),
      tuples_per_block_(std::max<uint64_t>(1, tuples_per_block)) {
  num_blocks_ = static_cast<uint32_t>(
      (tuples_->size() + tuples_per_block_ - 1) / tuples_per_block_);
}

uint64_t InMemoryBlockSource::TuplesInBlock(uint32_t block) const {
  const uint64_t begin = block * tuples_per_block_;
  const uint64_t end =
      std::min<uint64_t>(begin + tuples_per_block_, tuples_->size());
  return end > begin ? end - begin : 0;
}

Status InMemoryBlockSource::ReadBlock(uint32_t block,
                                      std::vector<Tuple>* out) {
  if (block >= num_blocks_) return Status::OutOfRange("block index");
  const uint64_t begin = block * tuples_per_block_;
  const uint64_t end =
      std::min<uint64_t>(begin + tuples_per_block_, tuples_->size());
  out->insert(out->end(), tuples_->begin() + static_cast<long>(begin),
              tuples_->begin() + static_cast<long>(end));
  return Status::OK();
}

TableBlockSource::TableBlockSource(Table* table, uint64_t block_size_bytes)
    : table_(table) {
  pages_per_block_ =
      std::max<uint64_t>(1, block_size_bytes / table->options().page_size);
  num_blocks_ = static_cast<uint32_t>(
      (table->num_pages() + pages_per_block_ - 1) / pages_per_block_);
}

uint64_t TableBlockSource::TuplesInBlock(uint32_t block) const {
  const uint64_t first = block * pages_per_block_;
  const uint64_t last =
      std::min<uint64_t>(first + pages_per_block_, table_->num_pages());
  uint64_t n = 0;
  for (uint64_t p = first; p < last; ++p) n += table_->TuplesInPage(p);
  return n;
}

Status TableBlockSource::ReadBlock(uint32_t block, std::vector<Tuple>* out) {
  if (block >= num_blocks_) return Status::OutOfRange("block index");
  const uint64_t first = block * pages_per_block_;
  const uint64_t count =
      std::min<uint64_t>(pages_per_block_, table_->num_pages() - first);
  return table_->ReadTuplesFromPages(first, count, out);
}

SnapshotBlockSource::SnapshotBlockSource(ShardedSnapshot snapshot,
                                         uint64_t block_size_bytes)
    : snapshot_(std::move(snapshot)) {
  pages_per_block_ = std::max<uint64_t>(
      1, snapshot_.valid()
             ? block_size_bytes / snapshot_.options().page_size
             : 1);
  for (size_t s = 0; s < snapshot_.num_shards(); ++s) {
    const uint64_t pages = snapshot_.shard(s).num_pages();
    for (uint64_t first = 0; first < pages; first += pages_per_block_) {
      BlockRef ref;
      ref.shard = static_cast<uint32_t>(s);
      ref.first_page = first;
      ref.page_count = std::min<uint64_t>(pages_per_block_, pages - first);
      blocks_.push_back(ref);
    }
  }
}

uint64_t SnapshotBlockSource::TuplesInBlock(uint32_t block) const {
  if (block >= blocks_.size()) return 0;
  const BlockRef& ref = blocks_[block];
  const TableSnapshot& shard = snapshot_.shard(ref.shard);
  uint64_t n = 0;
  for (uint64_t p = ref.first_page; p < ref.first_page + ref.page_count; ++p) {
    n += shard.TuplesInPage(p);
  }
  return n;
}

Status SnapshotBlockSource::ReadBlock(uint32_t block,
                                      std::vector<Tuple>* out) {
  if (block >= blocks_.size()) return Status::OutOfRange("block index");
  const BlockRef& ref = blocks_[block];
  return snapshot_.shard(ref.shard)
      .ReadTuplesFromPages(ref.first_page, ref.page_count, out);
}

}  // namespace corgipile
