// Table: schema + heap file + tuple placement index.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/heapfile.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace corgipile {

struct TableOptions {
  uint32_t page_size = Page::kDefaultSize;
  /// TOAST analog: compress each tuple record inside pages; reads charge
  /// modeled decompression time (see storage/compression.h).
  bool compress_tuples = false;
};

class Table {
 public:
  /// Reopens an existing heap table. The per-page tuple index is rebuilt
  /// from the page headers (no tuple deserialization).
  static Result<std::unique_ptr<Table>> Open(const std::string& path,
                                             Schema schema,
                                             TableOptions options);

  const Schema& schema() const { return schema_; }
  const TableOptions& options() const { return options_; }
  HeapFile* file() { return file_.get(); }
  const HeapFile* file() const { return file_.get(); }

  uint64_t num_tuples() const { return num_tuples_; }
  uint64_t num_pages() const { return file_->num_pages(); }
  uint64_t size_bytes() const { return file_->size_bytes(); }

  /// Attaches device model + clocks; forwarded to the heap file, and also
  /// used to charge decompression time for compressed tables.
  void SetIoAccounting(DeviceProfile device, SimClock* clock, IoStats* stats);

  /// Forwards a fault injector / retry policy to the backing heap file.
  void SetFaultInjection(FaultInjector* injector) {
    file_->SetFaultInjection(injector);
  }
  void SetRetryPolicy(RetryPolicy policy) { file_->SetRetryPolicy(policy); }

  /// Routes page reads through a buffer manager (not owned; may be null).
  /// Cached pages cost nothing — the OS-cache effect the paper observes
  /// for datasets smaller than RAM (§7.3.4): the first epoch pays device
  /// I/O, later epochs run at memory speed.
  void SetBufferManager(BufferManager* buffer_manager) {
    buffer_manager_ = buffer_manager;
  }
  BufferManager* buffer_manager() const { return buffer_manager_; }

  /// Appends all tuples stored in pages [first, first+count) to *out.
  /// One contiguous device access; decompression billed if applicable.
  Status ReadTuplesFromPages(uint64_t first, uint64_t count,
                             std::vector<Tuple>* out);

  /// Reads the tuple with global index `idx` (0-based, in storage order).
  /// Non-contiguous access pattern — billed as random by the heap file.
  Result<Tuple> ReadTupleAt(uint64_t idx);

  /// Sequential full scan.
  Status Scan(const std::function<Status(const Tuple&)>& fn);

  /// Tuples stored in page `p`.
  uint32_t TuplesInPage(uint64_t p) const;

  /// Resets the read cursor so the next access is billed as a fresh seek.
  void ResetReadCursor() { file_->ResetReadCursor(); }

  /// Streaming ingest (the INSERT analog): encodes `tuples` into fresh
  /// pages appended to the heap file and fsyncs. Existing pages are never
  /// rewritten, so concurrent readers of the old page range are unaffected;
  /// the tuple index grows atomically from the caller's perspective (the
  /// database serializes Insert against scans).
  Status AppendTuples(const std::vector<Tuple>& tuples);

 private:
  friend class TableBuilder;
  Table(Schema schema, TableOptions options, std::unique_ptr<HeapFile> file,
        std::vector<uint32_t> tuples_per_page);

  Status DecodePage(const Page& page, std::vector<Tuple>* out);

  Schema schema_;
  TableOptions options_;
  std::unique_ptr<HeapFile> file_;
  std::vector<uint32_t> tuples_per_page_;
  std::vector<uint64_t> page_prefix_;  // page_prefix_[p] = tuples before page p
  uint64_t num_tuples_ = 0;
  SimClock* clock_ = nullptr;
  BufferManager* buffer_manager_ = nullptr;
};

/// Streams tuples into pages and produces a Table.
class TableBuilder {
 public:
  /// Creates the backing file eagerly; errors surface from Append/Finish.
  TableBuilder(Schema schema, std::string path, TableOptions options = {});

  Status Append(const Tuple& tuple);

  /// Flushes the last partial page and returns the finished table.
  Result<std::unique_ptr<Table>> Finish();

  uint64_t tuples_appended() const { return num_tuples_; }

 private:
  Status FlushPage();

  Schema schema_;
  std::string path_;
  TableOptions options_;
  Status init_status_;
  std::unique_ptr<HeapFile> file_;
  Page current_page_;
  uint32_t current_page_tuples_ = 0;
  std::vector<uint32_t> tuples_per_page_;
  uint64_t num_tuples_ = 0;
  std::vector<uint8_t> scratch_;
  std::vector<uint8_t> compressed_scratch_;
};

}  // namespace corgipile
