// Table: schema + heap file + tuple placement index, with MVCC-style
// immutable snapshots (DESIGN.md §14).
//
// Concurrency contract: pages are append-only — AppendTuples never rewrites
// an existing page — so a TableSnapshot captured before an append keeps
// reading exactly the pages it saw, without any lock. The tuple placement
// index is published as an immutable copy-on-write structure: AppendTuples
// stages a new index (old entries + the appended pages) after the pages are
// durable, then commits it with a noexcept shared_ptr swap (the same
// staging-then-commit discipline as ModelStore). Readers never block
// writers and vice versa; concurrent appends serialize on an internal
// append mutex.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/heapfile.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/mutex.h"
#include "util/status.h"

namespace corgipile {

class Table;

struct TableOptions {
  uint32_t page_size = Page::kDefaultSize;
  /// TOAST analog: compress each tuple record inside pages; reads charge
  /// modeled decompression time (see storage/compression.h).
  bool compress_tuples = false;
};

/// An immutable point-in-time view of a table. Cheap to copy (two
/// shared_ptr-sized fields). All reads through a snapshot are bounded by
/// the page count at capture time, so a scan in flight keeps its snapshot
/// alive across any number of concurrent AppendTuples — the MVCC property
/// the session layer builds on. The parent Table must outlive the
/// snapshot (tables live for the lifetime of their Database).
class TableSnapshot {
 public:
  TableSnapshot() = default;

  bool valid() const { return table_ != nullptr; }
  Table* table() const { return table_; }

  const Schema& schema() const;
  const TableOptions& options() const;
  uint64_t num_tuples() const;
  uint64_t num_pages() const;
  uint64_t size_bytes() const;

  /// Tuples stored in page `p` (0 past the snapshot bound).
  uint32_t TuplesInPage(uint64_t p) const;

  /// Appends all tuples stored in pages [first, first+count) to *out.
  /// One contiguous device access; decompression billed if applicable.
  /// Fails with kOutOfRange past the snapshot's page bound.
  Status ReadTuplesFromPages(uint64_t first, uint64_t count,
                             std::vector<Tuple>* out) const;

  /// Reads the tuple with global index `idx` (0-based, in storage order).
  Result<Tuple> ReadTupleAt(uint64_t idx) const;

  /// Sequential scan of the snapshot (never sees concurrently appended
  /// pages).
  Status Scan(const std::function<Status(const Tuple&)>& fn) const;

  /// Resets the heap file's billing cursor so the next access is charged
  /// as a fresh seek. Affects accounting only, never visibility.
  void ResetReadCursor() const;

 private:
  friend class Table;
  struct Index {
    std::vector<uint32_t> tuples_per_page;
    std::vector<uint64_t> page_prefix;  // page_prefix[p] = tuples before p
    uint64_t num_tuples = 0;
  };

  TableSnapshot(Table* table, std::shared_ptr<const Index> index)
      : table_(table), index_(std::move(index)) {}

  Table* table_ = nullptr;
  std::shared_ptr<const Index> index_;
};

class Table {
 public:
  /// Reopens an existing heap table. The per-page tuple index is rebuilt
  /// from the page headers (no tuple deserialization).
  static Result<std::unique_ptr<Table>> Open(const std::string& path,
                                             Schema schema,
                                             TableOptions options);

  const Schema& schema() const { return schema_; }
  const TableOptions& options() const { return options_; }
  HeapFile* file() { return file_.get(); }
  const HeapFile* file() const { return file_.get(); }

  /// Captures the current published index as an immutable snapshot.
  TableSnapshot Snapshot() const;

  /// Published counts (the current snapshot's view). A concurrent
  /// AppendTuples becomes visible here only after its pages are durable.
  uint64_t num_tuples() const;
  uint64_t num_pages() const;
  uint64_t size_bytes() const;

  /// Attaches device model + clocks; forwarded to the heap file, and also
  /// used to charge decompression time for compressed tables. Setup-time
  /// only: not synchronized against in-flight scans.
  void SetIoAccounting(DeviceProfile device, SimClock* clock, IoStats* stats);

  /// Forwards a fault injector / retry policy to the backing heap file.
  void SetFaultInjection(FaultInjector* injector) {
    file_->SetFaultInjection(injector);
  }
  void SetRetryPolicy(RetryPolicy policy) { file_->SetRetryPolicy(policy); }

  /// Routes page reads through a buffer manager (not owned; may be null).
  /// Cached pages cost nothing — the OS-cache effect the paper observes
  /// for datasets smaller than RAM (§7.3.4): the first epoch pays device
  /// I/O, later epochs run at memory speed. Setup-time only.
  void SetBufferManager(BufferManager* buffer_manager) {
    buffer_manager_ = buffer_manager;
  }
  BufferManager* buffer_manager() const { return buffer_manager_; }

  /// Compatibility forms of the snapshot read API: each captures the
  /// current snapshot and reads through it.
  Status ReadTuplesFromPages(uint64_t first, uint64_t count,
                             std::vector<Tuple>* out);
  Result<Tuple> ReadTupleAt(uint64_t idx);
  Status Scan(const std::function<Status(const Tuple&)>& fn);

  /// Tuples stored in page `p` of the current snapshot.
  uint32_t TuplesInPage(uint64_t p) const;

  /// Resets the read cursor so the next access is billed as a fresh seek.
  void ResetReadCursor() { file_->ResetReadCursor(); }

  /// Streaming ingest (the INSERT analog): encodes `tuples` into fresh
  /// pages appended to the heap file, fsyncs, and then publishes a new
  /// index snapshot. Existing pages are never rewritten, so snapshots
  /// captured earlier keep reading their exact view; concurrent appenders
  /// serialize on an internal mutex — scans never wait.
  Status AppendTuples(const std::vector<Tuple>& tuples);

 private:
  friend class TableBuilder;
  friend class TableSnapshot;
  using Index = TableSnapshot::Index;

  Table(Schema schema, TableOptions options, std::unique_ptr<HeapFile> file,
        std::vector<uint32_t> tuples_per_page);

  static std::shared_ptr<const Index> BuildIndex(
      std::vector<uint32_t> tuples_per_page);

  Status DecodePage(const Page& page, std::vector<Tuple>* out);
  /// Snapshot-bounded read body shared by Table and TableSnapshot.
  Status ReadTuplesFromPagesBounded(const Index& index, uint64_t first,
                                    uint64_t count, std::vector<Tuple>* out);
  Result<Tuple> ReadTupleAtBounded(const Index& index, uint64_t idx);

  Schema schema_;
  TableOptions options_;
  std::unique_ptr<HeapFile> file_;
  SimClock* clock_ = nullptr;
  BufferManager* buffer_manager_ = nullptr;

  /// Serializes writers (AppendTuples). Never held while readers scan.
  Mutex append_mu_;
  /// Guards only the published-index pointer; held for pointer swaps and
  /// snapshot captures, never across I/O.
  mutable Mutex snapshot_mu_;
  std::shared_ptr<const Index> index_ CORGI_GUARDED_BY(snapshot_mu_);
};

/// Streams tuples into pages and produces a Table.
class TableBuilder {
 public:
  /// Creates the backing file eagerly; errors surface from Append/Finish.
  TableBuilder(Schema schema, std::string path, TableOptions options = {});

  Status Append(const Tuple& tuple);

  /// Flushes the last partial page and returns the finished table.
  Result<std::unique_ptr<Table>> Finish();

  uint64_t tuples_appended() const { return num_tuples_; }

 private:
  Status FlushPage();

  Schema schema_;
  std::string path_;
  TableOptions options_;
  Status init_status_;
  std::unique_ptr<HeapFile> file_;
  Page current_page_;
  uint32_t current_page_tuples_ = 0;
  std::vector<uint32_t> tuples_per_page_;
  uint64_t num_tuples_ = 0;
  std::vector<uint8_t> scratch_;
  std::vector<uint8_t> compressed_scratch_;
};

}  // namespace corgipile
