// Training tuple: id, (sparse or dense) feature vector, label.

#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace corgipile {

/// One training example. Dense tuples leave `feature_keys` empty and use
/// `feature_values[i]` as the value of dimension i. Sparse tuples store the
/// nonzero dimensions in `feature_keys` (strictly increasing) with matching
/// `feature_values`.
struct Tuple {
  uint64_t id = 0;
  double label = 0.0;
  std::vector<uint32_t> feature_keys;
  std::vector<float> feature_values;

  bool sparse() const { return !feature_keys.empty(); }
  size_t nnz() const { return feature_values.size(); }

  /// Dot product with a dense weight vector. For dense tuples `w` must have
  /// at least nnz() entries; for sparse tuples at least max(key)+1.
  double Dot(const std::vector<double>& w) const;

  /// w += scale * x (gradient scatter).
  void AxpyInto(double scale, std::vector<double>* w) const;

  /// Squared L2 norm of the feature vector.
  double SquaredNorm() const;

  // --- Serialization (little-endian, varint-free fixed layout) ---
  //
  // [u64 id][f64 label][u32 nnz][u8 sparse]
  //   if sparse: nnz * u32 keys
  //   nnz * f32 values

  size_t SerializedSize() const;
  /// Appends the wire form to *out.
  void SerializeTo(std::vector<uint8_t>* out) const;
  /// Parses one tuple starting at data; sets *consumed to the bytes used.
  static Result<Tuple> Deserialize(const uint8_t* data, size_t size,
                                   size_t* consumed);

  bool operator==(const Tuple& o) const {
    return id == o.id && label == o.label && feature_keys == o.feature_keys &&
           feature_values == o.feature_values;
  }
};

/// Builds a dense tuple.
Tuple MakeDenseTuple(uint64_t id, double label, std::vector<float> values);

/// Builds a sparse tuple; keys must be strictly increasing.
Tuple MakeSparseTuple(uint64_t id, double label, std::vector<uint32_t> keys,
                      std::vector<float> values);

}  // namespace corgipile
