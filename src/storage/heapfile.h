// File-backed heap of fixed-size pages with I/O cost accounting.
//
// Reads and writes hit a real file (POSIX pread/pwrite) and additionally
// charge simulated device time on an attached SimClock: a read that
// continues the previous one is billed at sequential cost, a discontiguous
// read at random cost (seek + transfer). This is how "HDD" and "SSD"
// experiment rows stay meaningful on any build machine.
//
// Robustness: every page carries a CRC32C stamped at AppendPage time and
// verified on every read; a mismatch (or a structurally invalid page)
// surfaces as kCorruption rather than feeding garbage upstream. Reads that
// fail with kIoError are retried with bounded exponential backoff (waits
// are charged to SimClock under kRetryBackoff, never real sleeps). An
// optional FaultInjector deterministically injects transient/permanent
// read errors, bit flips, torn writes, and latency spikes for testing.

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "iosim/device.h"
#include "iosim/fault_injector.h"
#include "iosim/sim_clock.h"
#include "storage/page.h"
#include "util/mutex.h"
#include "util/status.h"

namespace corgipile {

class HeapFile {
 public:
  ~HeapFile();

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Creates (truncates) a heap file at `path`.
  static Result<std::unique_ptr<HeapFile>> Create(const std::string& path,
                                                  uint32_t page_size);

  /// Opens an existing heap file. The file size must be a multiple of
  /// `page_size`.
  static Result<std::unique_ptr<HeapFile>> Open(const std::string& path,
                                                uint32_t page_size);

  /// Attaches the device model and clocks used for cost accounting. Both
  /// pointers may be null (no accounting). Not owned.
  void SetIoAccounting(DeviceProfile device, SimClock* clock, IoStats* stats);

  /// Attaches a fault injector consulted on every read attempt and write.
  /// Pass null to detach. Not owned; must outlive this file.
  void SetFaultInjection(FaultInjector* injector);

  /// Retry policy for transient kIoError read failures.
  void SetRetryPolicy(RetryPolicy policy);

  const DeviceProfile& device() const { return device_; }

  uint32_t page_size() const { return page_size_; }
  uint64_t num_pages() const {
    return num_pages_.load(std::memory_order_acquire);
  }
  uint64_t size_bytes() const { return num_pages() * page_size_; }
  const std::string& path() const { return path_; }

  /// Appends one page at the end of the file (sequential write cost). The
  /// on-disk image is stamped with the page's CRC32C; the in-memory `page`
  /// is not modified.
  Status AppendPage(const Page& page);

  /// Reads page `page_idx` into *out, verifying its checksum and structure.
  /// Billed sequential if it directly follows the previous read on this
  /// file, else random. Transient I/O errors are retried per the policy;
  /// checksum/structure mismatches return kCorruption without retry.
  Status ReadPage(uint64_t page_idx, Page* out);

  /// Reads `count` contiguous pages starting at `first`. Billed as one
  /// access: a seek (if discontiguous) plus one contiguous transfer. This is
  /// the "read one block" primitive of CorgiPile. Each page is checksum- and
  /// structure-verified.
  Status ReadPages(uint64_t first, uint64_t count, std::vector<Page>* out);

  /// Forgets read position so the next read is billed as random. Used to
  /// model a cleared OS cache / reopened scan.
  void ResetReadCursor();

  /// Flushes file contents to stable storage (fsync).
  Status Sync();

 private:
  HeapFile(std::string path, int fd, uint32_t page_size, uint64_t num_pages);

  void ChargeRead(uint64_t first_page, uint64_t num, bool contiguous);
  void ChargeWrite(uint64_t num);
  void ChargeBackoff(double seconds);

  /// One physical read attempt of [offset, offset+len) into buf, with
  /// injected faults applied. Returns kIoError on (real or injected)
  /// failure; bit flips and latency spikes are applied silently. `fault`
  /// is the caller's locked snapshot of fault_ (see ReadWithRetry).
  Status ReadAttempt(FaultInjector* fault, uint64_t offset, uint8_t* buf,
                     size_t len);

  /// ReadAttempt wrapped in the bounded exponential-backoff retry loop.
  /// Snapshots fault_/retry_ under mu_ once at entry so a concurrent
  /// Set* cannot race the loop.
  Status ReadWithRetry(uint64_t offset, uint8_t* buf, size_t len);

  /// Checksum + structural verification of a page read from `page_idx`.
  Status VerifyPage(const Page& page, uint64_t page_idx) const;

  std::string path_;
  int fd_;
  uint32_t page_size_;
  /// Published page count. Appenders serialize externally (Table's append
  /// mutex); the release store in AppendPage pairs with the acquire load in
  /// num_pages() so readers that learned of a page via a published table
  /// index always see it within bounds.
  std::atomic<uint64_t> num_pages_;
  uint64_t tag_;  // FaultInjector site tag derived from path_

  Mutex mu_;
  DeviceProfile device_ CORGI_GUARDED_BY(mu_) = DeviceProfile::Memory();
  SimClock* clock_ CORGI_GUARDED_BY(mu_) = nullptr;
  IoStats* stats_ CORGI_GUARDED_BY(mu_) = nullptr;
  FaultInjector* fault_ CORGI_GUARDED_BY(mu_) = nullptr;
  RetryPolicy retry_ CORGI_GUARDED_BY(mu_);
  int64_t last_read_page_ CORGI_GUARDED_BY(mu_) = -2;  // -2: nothing read yet
};

}  // namespace corgipile
