// BlockSource: the abstraction all shuffling strategies consume.
//
// A dataset is exposed as N blocks of contiguous tuples (a block is "a batch
// of table pages" in the DB integration, "a chunk of the binary file" in the
// dataloader integration). Strategies read whole blocks; the source bills
// I/O according to the access pattern.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/schema.h"
#include "storage/sharded_table.h"
#include "storage/table.h"
#include "storage/tuple.h"
#include "util/status.h"
// BlockReadTolerance (the quarantine policy consumers of this interface
// take) lives with the shared quarantine accounting in util/stream_base.h.
#include "util/stream_base.h"

namespace corgipile {

class BlockSource {
 public:
  virtual ~BlockSource() = default;

  virtual const Schema& schema() const = 0;
  virtual uint32_t num_blocks() const = 0;
  virtual uint64_t num_tuples() const = 0;
  virtual uint64_t TuplesInBlock(uint32_t block) const = 0;

  /// Appends the tuples of `block` to *out (storage order preserved).
  virtual Status ReadBlock(uint32_t block, std::vector<Tuple>* out) = 0;

  /// Epoch boundary hook; table-backed sources reset their read cursor so
  /// the first access of the next epoch is billed as a seek.
  virtual void Reset() {}
};

/// Blocks over an in-memory tuple vector (map-style dataset). Used by
/// convergence-only experiments and by the dataloader integration.
class InMemoryBlockSource : public BlockSource {
 public:
  /// `tuples_per_block` > 0. The last block may be short.
  InMemoryBlockSource(Schema schema,
                      std::shared_ptr<const std::vector<Tuple>> tuples,
                      uint64_t tuples_per_block);

  const Schema& schema() const override { return schema_; }
  uint32_t num_blocks() const override { return num_blocks_; }
  uint64_t num_tuples() const override { return tuples_->size(); }
  uint64_t TuplesInBlock(uint32_t block) const override;
  Status ReadBlock(uint32_t block, std::vector<Tuple>* out) override;

  const std::vector<Tuple>& tuples() const { return *tuples_; }

 private:
  Schema schema_;
  std::shared_ptr<const std::vector<Tuple>> tuples_;
  uint64_t tuples_per_block_;
  uint32_t num_blocks_;
};

/// Blocks over a heap-file table: each block is `pages_per_block` contiguous
/// pages, read with a single contiguous device access.
class TableBlockSource : public BlockSource {
 public:
  /// `block_size_bytes` is rounded down to a whole number of pages
  /// (minimum one page). `table` must outlive the source.
  TableBlockSource(Table* table, uint64_t block_size_bytes);

  const Schema& schema() const override { return table_->schema(); }
  uint32_t num_blocks() const override { return num_blocks_; }
  uint64_t num_tuples() const override { return table_->num_tuples(); }
  uint64_t TuplesInBlock(uint32_t block) const override;
  Status ReadBlock(uint32_t block, std::vector<Tuple>* out) override;
  void Reset() override { table_->ResetReadCursor(); }

  uint64_t pages_per_block() const { return pages_per_block_; }
  Table* table() { return table_; }

 private:
  Table* table_;
  uint64_t pages_per_block_;
  uint32_t num_blocks_;
};

/// Blocks over an immutable ShardedSnapshot: each block is
/// `pages_per_block` contiguous pages of one shard, enumerated shard-major
/// (the same geometry as BlockShuffleOp, so at shards=1 the block ids are
/// identical to TableBlockSource over the same table). Reads never see
/// concurrently appended pages — the stream-strategy analog of the
/// snapshot discipline in DESIGN.md §14.
class SnapshotBlockSource : public BlockSource {
 public:
  /// `block_size_bytes` is rounded down to a whole number of pages
  /// (minimum one page). The snapshot's parent table must outlive the
  /// source.
  SnapshotBlockSource(ShardedSnapshot snapshot, uint64_t block_size_bytes);

  const Schema& schema() const override { return snapshot_.schema(); }
  uint32_t num_blocks() const override {
    return static_cast<uint32_t>(blocks_.size());
  }
  uint64_t num_tuples() const override { return snapshot_.num_tuples(); }
  uint64_t TuplesInBlock(uint32_t block) const override;
  Status ReadBlock(uint32_t block, std::vector<Tuple>* out) override;
  void Reset() override { snapshot_.ResetReadCursors(); }

  uint64_t pages_per_block() const { return pages_per_block_; }

 private:
  struct BlockRef {
    uint32_t shard = 0;
    uint64_t first_page = 0;
    uint64_t page_count = 0;
  };

  ShardedSnapshot snapshot_;
  uint64_t pages_per_block_;
  std::vector<BlockRef> blocks_;
};

}  // namespace corgipile
