#include "storage/buffer_manager.h"

#include "iosim/fault_plane.h"

namespace corgipile {

namespace {

// Chaos point modelling a cache-frame allocation failure. Admission is an
// optimization, never a correctness requirement, so a firing rule makes the
// cache *decline the page* (count it, serve uncached) instead of erroring —
// the graceful-degradation contract of DESIGN.md §12.
bool CacheAdmissionFails() {
  if (!FaultPlane::ProcessArmed()) return false;
  Status st = FaultPlane::Process()->OnPoint("storage.buffer.admit");
  return !st.ok();
}

}  // namespace

BufferManager::BufferManager(uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

Result<std::shared_ptr<const Page>> BufferManager::Fetch(HeapFile* file,
                                                         uint64_t page_idx) {
  {
    MutexLock lock(mu_);
    auto it = index_.find(Key{file, page_idx});
    if (it != index_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->page;
    }
    ++stats_.misses;
  }
  // Miss: read through the heap file (charges device cost).
  Page page(file->page_size());
  CORGI_RETURN_NOT_OK(file->ReadPage(page_idx, &page));
  auto shared = std::make_shared<const Page>(std::move(page));
  if (CacheAdmissionFails()) {
    MutexLock lock(mu_);
    ++stats_.alloc_rejections;
    return shared;  // degraded: correct data, just not cached
  }
  {
    MutexLock lock(mu_);
    // Double check: another thread might have inserted meanwhile.
    auto it = index_.find(Key{file, page_idx});
    if (it != index_.end()) return it->second->page;
    EvictIfNeededLocked(file->page_size());
    lru_.push_front(Entry{Key{file, page_idx}, shared});
    index_[Key{file, page_idx}] = lru_.begin();
    cached_bytes_ += file->page_size();
  }
  return shared;
}

void BufferManager::Insert(const HeapFile* file, uint64_t page_idx,
                           std::shared_ptr<const Page> page) {
  if (CacheAdmissionFails()) {
    MutexLock lock(mu_);
    ++stats_.alloc_rejections;
    return;
  }
  MutexLock lock(mu_);
  const Key key{file, page_idx};
  if (index_.count(key)) return;
  EvictIfNeededLocked(page->size());
  lru_.push_front(Entry{key, std::move(page)});
  index_[key] = lru_.begin();
  cached_bytes_ += lru_.front().page->size();
}

bool BufferManager::Contains(const HeapFile* file, uint64_t page_idx) const {
  MutexLock lock(mu_);
  return index_.count(Key{file, page_idx}) > 0;
}

void BufferManager::EvictIfNeededLocked(uint64_t incoming_bytes) {
  while (!lru_.empty() && cached_bytes_ + incoming_bytes > capacity_bytes_) {
    const Entry& victim = lru_.back();
    cached_bytes_ -= victim.page->size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void BufferManager::Invalidate(const HeapFile* file) {
  MutexLock lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (file == nullptr || it->key.file == file) {
      cached_bytes_ -= it->page->size();
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

BufferManager::Stats BufferManager::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void BufferManager::ResetStats() {
  MutexLock lock(mu_);
  stats_ = Stats{};
}

}  // namespace corgipile
