#include "storage/schema.h"

#include <sstream>

namespace corgipile {

const char* LabelTypeToString(LabelType t) {
  switch (t) {
    case LabelType::kBinary: return "binary";
    case LabelType::kMulticlass: return "multiclass";
    case LabelType::kContinuous: return "continuous";
  }
  return "?";
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << name << "(dim=" << dim << ", " << (sparse ? "sparse" : "dense")
     << ", label=" << LabelTypeToString(label_type);
  if (label_type == LabelType::kMulticlass) os << ", classes=" << num_classes;
  os << ")";
  return os.str();
}

}  // namespace corgipile
