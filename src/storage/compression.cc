#include "storage/compression.h"

namespace corgipile {

void CompressBytes(const std::vector<uint8_t>& input,
                   std::vector<uint8_t>* out) {
  out->clear();
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    if (input[i] == 0) {
      size_t run = 1;
      while (i + run < n && input[i + run] == 0 && run < 128) ++run;
      out->push_back(static_cast<uint8_t>(0x80 | (run - 1)));
      i += run;
    } else {
      size_t run = 1;
      // Extend literal run until we hit a zero pair (single zeros inside a
      // literal are cheaper to keep literal) or the 128-byte cap.
      while (i + run < n && run < 128) {
        if (input[i + run] == 0 &&
            (i + run + 1 >= n || input[i + run + 1] == 0)) {
          break;
        }
        ++run;
      }
      out->push_back(static_cast<uint8_t>(run - 1));
      out->insert(out->end(), input.begin() + static_cast<long>(i),
                  input.begin() + static_cast<long>(i + run));
      i += run;
    }
  }
}

Status DecompressBytes(const uint8_t* data, size_t size,
                       std::vector<uint8_t>* out) {
  out->clear();
  size_t i = 0;
  while (i < size) {
    const uint8_t c = data[i++];
    if (c & 0x80) {
      const size_t run = (c & 0x7F) + 1u;
      out->insert(out->end(), run, 0);
    } else {
      const size_t run = c + 1u;
      if (i + run > size) return Status::Corruption("truncated literal run");
      out->insert(out->end(), data + i, data + i + run);
      i += run;
    }
  }
  return Status::OK();
}

double CompressionRatio(const std::vector<uint8_t>& input) {
  if (input.empty()) return 1.0;
  std::vector<uint8_t> compressed;
  CompressBytes(input, &compressed);
  return static_cast<double>(input.size()) /
         static_cast<double>(compressed.size());
}

}  // namespace corgipile
