// Offline full-shuffle of a table ("Shuffle Once" preparation, and the
// ORDER BY random() analog MADlib/Bismarck rely on).
//
// Every tuple of the source table is fetched in a uniformly random order —
// random page I/O billed by the heap file — and appended to a sequential
// copy at `copy_path`. The copy doubles the on-disk footprint, exactly the
// overhead the paper charges to Shuffle Once.

#pragma once

#include <memory>
#include <string>

#include "storage/table.h"
#include "util/status.h"

namespace corgipile {

struct ShuffledCopyResult {
  std::unique_ptr<Table> table;
  double sim_seconds = 0.0;     ///< simulated time spent (if clock attached)
  uint64_t extra_disk_bytes = 0;
};

/// Builds a shuffled copy of `source`. The copy inherits the source's
/// TableOptions and gets the given accounting attached (writes are billed
/// as one sequential stream).
Result<ShuffledCopyResult> BuildShuffledCopy(Table* source,
                                             const std::string& copy_path,
                                             uint64_t seed,
                                             const DeviceProfile& device,
                                             SimClock* clock, IoStats* stats);

struct InPlaceShuffleResult {
  std::unique_ptr<Table> table;  ///< same path, shuffled contents
  double sim_seconds = 0.0;
};

/// The paper's other Shuffle Once variant: shuffle the table *in place* —
/// no 2x disk copy, at the price of destroying the original order (and any
/// clustered index built on it, which is why §1 calls it not always
/// applicable). Consumes the table: its file is rewritten at the same path
/// and a fresh Table over it is returned with the same accounting attached.
/// Stale pages of the old file are dropped from `pool` (may be null).
Result<InPlaceShuffleResult> ShuffleTableInPlace(std::unique_ptr<Table> table,
                                                 uint64_t seed,
                                                 const DeviceProfile& device,
                                                 SimClock* clock,
                                                 IoStats* stats,
                                                 BufferManager* pool = nullptr);

}  // namespace corgipile
