#include "storage/table.h"

#include <algorithm>

#include "storage/compression.h"

namespace corgipile {

Table::Table(Schema schema, TableOptions options,
             std::unique_ptr<HeapFile> file,
             std::vector<uint32_t> tuples_per_page)
    : schema_(std::move(schema)), options_(options), file_(std::move(file)),
      tuples_per_page_(std::move(tuples_per_page)) {
  page_prefix_.resize(tuples_per_page_.size() + 1, 0);
  for (size_t i = 0; i < tuples_per_page_.size(); ++i) {
    page_prefix_[i + 1] = page_prefix_[i] + tuples_per_page_[i];
  }
  num_tuples_ = page_prefix_.empty() ? 0 : page_prefix_.back();
}

Result<std::unique_ptr<Table>> Table::Open(const std::string& path,
                                           Schema schema,
                                           TableOptions options) {
  CORGI_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> file,
                         HeapFile::Open(path, options.page_size));
  std::vector<uint32_t> tuples_per_page;
  tuples_per_page.reserve(file->num_pages());
  Page page(options.page_size);
  for (uint64_t p = 0; p < file->num_pages(); ++p) {
    CORGI_RETURN_NOT_OK(file->ReadPage(p, &page));
    tuples_per_page.push_back(page.num_records());
  }
  file->ResetReadCursor();
  return std::unique_ptr<Table>(new Table(std::move(schema), options,
                                          std::move(file),
                                          std::move(tuples_per_page)));
}

void Table::SetIoAccounting(DeviceProfile device, SimClock* clock,
                            IoStats* stats) {
  clock_ = clock;
  file_->SetIoAccounting(std::move(device), clock, stats);
}

uint32_t Table::TuplesInPage(uint64_t p) const {
  return p < tuples_per_page_.size() ? tuples_per_page_[p] : 0;
}

Status Table::DecodePage(const Page& page, std::vector<Tuple>* out) {
  std::vector<uint8_t> decompressed;
  uint64_t decompressed_bytes = 0;
  for (uint16_t s = 0; s < page.num_records(); ++s) {
    auto [data, len] = page.Record(s);
    size_t consumed = 0;
    if (options_.compress_tuples) {
      CORGI_RETURN_NOT_OK(DecompressBytes(data, len, &decompressed));
      decompressed_bytes += decompressed.size();
      CORGI_ASSIGN_OR_RETURN(
          Tuple t,
          Tuple::Deserialize(decompressed.data(), decompressed.size(),
                             &consumed));
      out->push_back(std::move(t));
    } else {
      CORGI_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(data, len, &consumed));
      out->push_back(std::move(t));
    }
  }
  if (options_.compress_tuples && clock_ != nullptr) {
    clock_->Advance(TimeCategory::kDecompress,
                    static_cast<double>(decompressed_bytes) /
                        kDecompressBandwidthBytesPerS);
  }
  return Status::OK();
}

Status Table::ReadTuplesFromPages(uint64_t first, uint64_t count,
                                  std::vector<Tuple>* out) {
  if (buffer_manager_ == nullptr) {
    std::vector<Page> pages;
    CORGI_RETURN_NOT_OK(file_->ReadPages(first, count, &pages));
    for (const Page& p : pages) {
      CORGI_RETURN_NOT_OK(DecodePage(p, out));
    }
    return Status::OK();
  }
  // Buffer-managed path: serve cached pages for free; read runs of
  // uncached pages as single contiguous device accesses and cache them.
  uint64_t p = first;
  const uint64_t end = first + count;
  while (p < end) {
    if (buffer_manager_->Contains(file_.get(), p)) {
      CORGI_ASSIGN_OR_RETURN(std::shared_ptr<const Page> page,
                             buffer_manager_->Fetch(file_.get(), p));
      CORGI_RETURN_NOT_OK(DecodePage(*page, out));
      ++p;
      continue;
    }
    uint64_t run_end = p + 1;
    while (run_end < end && !buffer_manager_->Contains(file_.get(), run_end)) {
      ++run_end;
    }
    std::vector<Page> pages;
    CORGI_RETURN_NOT_OK(file_->ReadPages(p, run_end - p, &pages));
    for (uint64_t i = 0; i < pages.size(); ++i) {
      auto shared = std::make_shared<const Page>(std::move(pages[i]));
      CORGI_RETURN_NOT_OK(DecodePage(*shared, out));
      buffer_manager_->Insert(file_.get(), p + i, std::move(shared));
    }
    p = run_end;
  }
  return Status::OK();
}

Result<Tuple> Table::ReadTupleAt(uint64_t idx) {
  if (idx >= num_tuples_) return Status::OutOfRange("tuple index");
  // Find page via prefix sums.
  auto it = std::upper_bound(page_prefix_.begin(), page_prefix_.end(), idx);
  const auto page_idx =
      static_cast<uint64_t>(std::distance(page_prefix_.begin(), it)) - 1;
  std::vector<Tuple> tuples;
  if (buffer_manager_ != nullptr) {
    CORGI_ASSIGN_OR_RETURN(std::shared_ptr<const Page> page,
                           buffer_manager_->Fetch(file_.get(), page_idx));
    CORGI_RETURN_NOT_OK(DecodePage(*page, &tuples));
  } else {
    Page page(file_->page_size());
    CORGI_RETURN_NOT_OK(file_->ReadPage(page_idx, &page));
    CORGI_RETURN_NOT_OK(DecodePage(page, &tuples));
  }
  const uint64_t slot = idx - page_prefix_[page_idx];
  if (slot >= tuples.size()) {
    return Status::Corruption("tuple index beyond page contents");
  }
  return std::move(tuples[slot]);
}

Status Table::AppendTuples(const std::vector<Tuple>& tuples) {
  if (tuples.empty()) return Status::OK();
  Page page(options_.page_size);
  uint32_t page_tuples = 0;
  std::vector<uint32_t> new_counts;
  std::vector<uint8_t> scratch;
  std::vector<uint8_t> compressed;
  auto flush = [&]() -> Status {
    if (page_tuples == 0) return Status::OK();
    CORGI_RETURN_NOT_OK(file_->AppendPage(page));
    new_counts.push_back(page_tuples);
    page.Clear();
    page_tuples = 0;
    return Status::OK();
  };
  for (const Tuple& t : tuples) {
    scratch.clear();
    t.SerializeTo(&scratch);
    const std::vector<uint8_t>* record = &scratch;
    if (options_.compress_tuples) {
      CompressBytes(scratch, &compressed);
      record = &compressed;
    }
    if (record->size() >
        options_.page_size - Page::kHeaderBytes - Page::kSlotBytes) {
      return Status::InvalidArgument("tuple larger than page");
    }
    if (!page.AddRecord(record->data(), record->size())) {
      CORGI_RETURN_NOT_OK(flush());
      if (!page.AddRecord(record->data(), record->size())) {
        return Status::Internal("record does not fit in empty page");
      }
    }
    ++page_tuples;
  }
  CORGI_RETURN_NOT_OK(flush());
  CORGI_RETURN_NOT_OK(file_->Sync());
  // All pages are durable; extend the in-memory index in one pass.
  for (uint32_t count : new_counts) {
    tuples_per_page_.push_back(count);
    page_prefix_.push_back(page_prefix_.back() + count);
    num_tuples_ += count;
  }
  return Status::OK();
}

Status Table::Scan(const std::function<Status(const Tuple&)>& fn) {
  std::vector<Tuple> tuples;
  for (uint64_t p = 0; p < file_->num_pages(); ++p) {
    tuples.clear();
    CORGI_RETURN_NOT_OK(ReadTuplesFromPages(p, 1, &tuples));
    for (const Tuple& t : tuples) {
      CORGI_RETURN_NOT_OK(fn(t));
    }
  }
  return Status::OK();
}

TableBuilder::TableBuilder(Schema schema, std::string path,
                           TableOptions options)
    : schema_(std::move(schema)), path_(std::move(path)), options_(options),
      current_page_(options.page_size) {
  auto file = HeapFile::Create(path_, options_.page_size);
  if (!file.ok()) {
    init_status_ = file.status();
  } else {
    file_ = std::move(file).ValueOrDie();
  }
}

Status TableBuilder::FlushPage() {
  if (current_page_tuples_ == 0) return Status::OK();
  CORGI_RETURN_NOT_OK(file_->AppendPage(current_page_));
  tuples_per_page_.push_back(current_page_tuples_);
  current_page_.Clear();
  current_page_tuples_ = 0;
  return Status::OK();
}

Status TableBuilder::Append(const Tuple& tuple) {
  CORGI_RETURN_NOT_OK(init_status_);
  scratch_.clear();
  tuple.SerializeTo(&scratch_);
  const std::vector<uint8_t>* record = &scratch_;
  if (options_.compress_tuples) {
    CompressBytes(scratch_, &compressed_scratch_);
    record = &compressed_scratch_;
  }
  if (record->size() >
      options_.page_size - Page::kHeaderBytes - Page::kSlotBytes) {
    return Status::InvalidArgument("tuple larger than page");
  }
  if (!current_page_.AddRecord(record->data(), record->size())) {
    CORGI_RETURN_NOT_OK(FlushPage());
    if (!current_page_.AddRecord(record->data(), record->size())) {
      return Status::Internal("record does not fit in empty page");
    }
  }
  ++current_page_tuples_;
  ++num_tuples_;
  return Status::OK();
}

Result<std::unique_ptr<Table>> TableBuilder::Finish() {
  CORGI_RETURN_NOT_OK(init_status_);
  CORGI_RETURN_NOT_OK(FlushPage());
  CORGI_RETURN_NOT_OK(file_->Sync());
  return std::unique_ptr<Table>(new Table(
      std::move(schema_), options_, std::move(file_),
      std::move(tuples_per_page_)));
}

}  // namespace corgipile
