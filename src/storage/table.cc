#include "storage/table.h"

#include <algorithm>

#include "storage/compression.h"

namespace corgipile {

// --- TableSnapshot ---

const Schema& TableSnapshot::schema() const { return table_->schema(); }

const TableOptions& TableSnapshot::options() const {
  return table_->options();
}

uint64_t TableSnapshot::num_tuples() const {
  return index_ == nullptr ? 0 : index_->num_tuples;
}

uint64_t TableSnapshot::num_pages() const {
  return index_ == nullptr ? 0 : index_->tuples_per_page.size();
}

uint64_t TableSnapshot::size_bytes() const {
  return num_pages() * table_->options().page_size;
}

uint32_t TableSnapshot::TuplesInPage(uint64_t p) const {
  if (index_ == nullptr || p >= index_->tuples_per_page.size()) return 0;
  return index_->tuples_per_page[p];
}

Status TableSnapshot::ReadTuplesFromPages(uint64_t first, uint64_t count,
                                          std::vector<Tuple>* out) const {
  if (table_ == nullptr) return Status::Internal("empty snapshot");
  return table_->ReadTuplesFromPagesBounded(*index_, first, count, out);
}

Result<Tuple> TableSnapshot::ReadTupleAt(uint64_t idx) const {
  if (table_ == nullptr) return Status::Internal("empty snapshot");
  return table_->ReadTupleAtBounded(*index_, idx);
}

Status TableSnapshot::Scan(
    const std::function<Status(const Tuple&)>& fn) const {
  if (table_ == nullptr) return Status::Internal("empty snapshot");
  std::vector<Tuple> tuples;
  for (uint64_t p = 0; p < num_pages(); ++p) {
    tuples.clear();
    CORGI_RETURN_NOT_OK(ReadTuplesFromPages(p, 1, &tuples));
    for (const Tuple& t : tuples) {
      CORGI_RETURN_NOT_OK(fn(t));
    }
  }
  return Status::OK();
}

void TableSnapshot::ResetReadCursor() const { table_->ResetReadCursor(); }

// --- Table ---

Table::Table(Schema schema, TableOptions options,
             std::unique_ptr<HeapFile> file,
             std::vector<uint32_t> tuples_per_page)
    : schema_(std::move(schema)), options_(options), file_(std::move(file)) {
  MutexLock lock(snapshot_mu_);
  index_ = BuildIndex(std::move(tuples_per_page));
}

std::shared_ptr<const Table::Index> Table::BuildIndex(
    std::vector<uint32_t> tuples_per_page) {
  auto index = std::make_shared<Index>();
  index->tuples_per_page = std::move(tuples_per_page);
  index->page_prefix.resize(index->tuples_per_page.size() + 1, 0);
  for (size_t i = 0; i < index->tuples_per_page.size(); ++i) {
    index->page_prefix[i + 1] =
        index->page_prefix[i] + index->tuples_per_page[i];
  }
  index->num_tuples = index->page_prefix.back();
  return index;
}

Result<std::unique_ptr<Table>> Table::Open(const std::string& path,
                                           Schema schema,
                                           TableOptions options) {
  CORGI_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> file,
                         HeapFile::Open(path, options.page_size));
  std::vector<uint32_t> tuples_per_page;
  tuples_per_page.reserve(file->num_pages());
  Page page(options.page_size);
  for (uint64_t p = 0; p < file->num_pages(); ++p) {
    CORGI_RETURN_NOT_OK(file->ReadPage(p, &page));
    tuples_per_page.push_back(page.num_records());
  }
  file->ResetReadCursor();
  return std::unique_ptr<Table>(new Table(std::move(schema), options,
                                          std::move(file),
                                          std::move(tuples_per_page)));
}

TableSnapshot Table::Snapshot() const {
  MutexLock lock(snapshot_mu_);
  return TableSnapshot(const_cast<Table*>(this), index_);
}

uint64_t Table::num_tuples() const { return Snapshot().num_tuples(); }
uint64_t Table::num_pages() const { return Snapshot().num_pages(); }
uint64_t Table::size_bytes() const { return Snapshot().size_bytes(); }

void Table::SetIoAccounting(DeviceProfile device, SimClock* clock,
                            IoStats* stats) {
  clock_ = clock;
  file_->SetIoAccounting(std::move(device), clock, stats);
}

uint32_t Table::TuplesInPage(uint64_t p) const {
  return Snapshot().TuplesInPage(p);
}

Status Table::DecodePage(const Page& page, std::vector<Tuple>* out) {
  std::vector<uint8_t> decompressed;
  uint64_t decompressed_bytes = 0;
  for (uint16_t s = 0; s < page.num_records(); ++s) {
    auto [data, len] = page.Record(s);
    size_t consumed = 0;
    if (options_.compress_tuples) {
      CORGI_RETURN_NOT_OK(DecompressBytes(data, len, &decompressed));
      decompressed_bytes += decompressed.size();
      CORGI_ASSIGN_OR_RETURN(
          Tuple t,
          Tuple::Deserialize(decompressed.data(), decompressed.size(),
                             &consumed));
      out->push_back(std::move(t));
    } else {
      CORGI_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(data, len, &consumed));
      out->push_back(std::move(t));
    }
  }
  if (options_.compress_tuples && clock_ != nullptr) {
    clock_->Advance(TimeCategory::kDecompress,
                    static_cast<double>(decompressed_bytes) /
                        kDecompressBandwidthBytesPerS);
  }
  return Status::OK();
}

Status Table::ReadTuplesFromPagesBounded(const Index& index, uint64_t first,
                                         uint64_t count,
                                         std::vector<Tuple>* out) {
  const uint64_t bound = index.tuples_per_page.size();
  if (first + count > bound) {
    return Status::OutOfRange("page range beyond snapshot");
  }
  if (buffer_manager_ == nullptr) {
    std::vector<Page> pages;
    CORGI_RETURN_NOT_OK(file_->ReadPages(first, count, &pages));
    for (const Page& p : pages) {
      CORGI_RETURN_NOT_OK(DecodePage(p, out));
    }
    return Status::OK();
  }
  // Buffer-managed path: serve cached pages for free; read runs of
  // uncached pages as single contiguous device accesses and cache them.
  uint64_t p = first;
  const uint64_t end = first + count;
  while (p < end) {
    if (buffer_manager_->Contains(file_.get(), p)) {
      CORGI_ASSIGN_OR_RETURN(std::shared_ptr<const Page> page,
                             buffer_manager_->Fetch(file_.get(), p));
      CORGI_RETURN_NOT_OK(DecodePage(*page, out));
      ++p;
      continue;
    }
    uint64_t run_end = p + 1;
    while (run_end < end && !buffer_manager_->Contains(file_.get(), run_end)) {
      ++run_end;
    }
    std::vector<Page> pages;
    CORGI_RETURN_NOT_OK(file_->ReadPages(p, run_end - p, &pages));
    for (uint64_t i = 0; i < pages.size(); ++i) {
      auto shared = std::make_shared<const Page>(std::move(pages[i]));
      CORGI_RETURN_NOT_OK(DecodePage(*shared, out));
      buffer_manager_->Insert(file_.get(), p + i, std::move(shared));
    }
    p = run_end;
  }
  return Status::OK();
}

Result<Tuple> Table::ReadTupleAtBounded(const Index& index, uint64_t idx) {
  if (idx >= index.num_tuples) return Status::OutOfRange("tuple index");
  // Find page via prefix sums.
  auto it = std::upper_bound(index.page_prefix.begin(),
                             index.page_prefix.end(), idx);
  const auto page_idx =
      static_cast<uint64_t>(std::distance(index.page_prefix.begin(), it)) - 1;
  std::vector<Tuple> tuples;
  if (buffer_manager_ != nullptr) {
    CORGI_ASSIGN_OR_RETURN(std::shared_ptr<const Page> page,
                           buffer_manager_->Fetch(file_.get(), page_idx));
    CORGI_RETURN_NOT_OK(DecodePage(*page, &tuples));
  } else {
    Page page(file_->page_size());
    CORGI_RETURN_NOT_OK(file_->ReadPage(page_idx, &page));
    CORGI_RETURN_NOT_OK(DecodePage(page, &tuples));
  }
  const uint64_t slot = idx - index.page_prefix[page_idx];
  if (slot >= tuples.size()) {
    return Status::Corruption("tuple index beyond page contents");
  }
  return std::move(tuples[slot]);
}

Status Table::ReadTuplesFromPages(uint64_t first, uint64_t count,
                                  std::vector<Tuple>* out) {
  return Snapshot().ReadTuplesFromPages(first, count, out);
}

Result<Tuple> Table::ReadTupleAt(uint64_t idx) {
  return Snapshot().ReadTupleAt(idx);
}

Status Table::Scan(const std::function<Status(const Tuple&)>& fn) {
  return Snapshot().Scan(fn);
}

Status Table::AppendTuples(const std::vector<Tuple>& tuples) {
  if (tuples.empty()) return Status::OK();
  MutexLock append_lock(append_mu_);
  Page page(options_.page_size);
  uint32_t page_tuples = 0;
  std::vector<uint32_t> new_counts;
  std::vector<uint8_t> scratch;
  std::vector<uint8_t> compressed;
  auto flush = [&]() -> Status {
    if (page_tuples == 0) return Status::OK();
    CORGI_RETURN_NOT_OK(file_->AppendPage(page));
    new_counts.push_back(page_tuples);
    page.Clear();
    page_tuples = 0;
    return Status::OK();
  };
  for (const Tuple& t : tuples) {
    scratch.clear();
    t.SerializeTo(&scratch);
    const std::vector<uint8_t>* record = &scratch;
    if (options_.compress_tuples) {
      CompressBytes(scratch, &compressed);
      record = &compressed;
    }
    if (record->size() >
        options_.page_size - Page::kHeaderBytes - Page::kSlotBytes) {
      return Status::InvalidArgument("tuple larger than page");
    }
    if (!page.AddRecord(record->data(), record->size())) {
      CORGI_RETURN_NOT_OK(flush());
      if (!page.AddRecord(record->data(), record->size())) {
        return Status::Internal("record does not fit in empty page");
      }
    }
    ++page_tuples;
  }
  CORGI_RETURN_NOT_OK(flush());
  CORGI_RETURN_NOT_OK(file_->Sync());
  // All pages durable: stage the extended index, then commit it with a
  // noexcept pointer swap. In-flight snapshots keep the old index alive.
  std::vector<uint32_t> counts;
  {
    MutexLock lock(snapshot_mu_);
    counts = index_->tuples_per_page;
  }
  counts.insert(counts.end(), new_counts.begin(), new_counts.end());
  std::shared_ptr<const Index> next = BuildIndex(std::move(counts));
  {
    MutexLock lock(snapshot_mu_);
    index_ = std::move(next);
  }
  return Status::OK();
}

TableBuilder::TableBuilder(Schema schema, std::string path,
                           TableOptions options)
    : schema_(std::move(schema)), path_(std::move(path)), options_(options),
      current_page_(options.page_size) {
  auto file = HeapFile::Create(path_, options_.page_size);
  if (!file.ok()) {
    init_status_ = file.status();
  } else {
    file_ = std::move(file).ValueOrDie();
  }
}

Status TableBuilder::FlushPage() {
  if (current_page_tuples_ == 0) return Status::OK();
  CORGI_RETURN_NOT_OK(file_->AppendPage(current_page_));
  tuples_per_page_.push_back(current_page_tuples_);
  current_page_.Clear();
  current_page_tuples_ = 0;
  return Status::OK();
}

Status TableBuilder::Append(const Tuple& tuple) {
  CORGI_RETURN_NOT_OK(init_status_);
  scratch_.clear();
  tuple.SerializeTo(&scratch_);
  const std::vector<uint8_t>* record = &scratch_;
  if (options_.compress_tuples) {
    CompressBytes(scratch_, &compressed_scratch_);
    record = &compressed_scratch_;
  }
  if (record->size() >
      options_.page_size - Page::kHeaderBytes - Page::kSlotBytes) {
    return Status::InvalidArgument("tuple larger than page");
  }
  if (!current_page_.AddRecord(record->data(), record->size())) {
    CORGI_RETURN_NOT_OK(FlushPage());
    if (!current_page_.AddRecord(record->data(), record->size())) {
      return Status::Internal("record does not fit in empty page");
    }
  }
  ++current_page_tuples_;
  ++num_tuples_;
  return Status::OK();
}

Result<std::unique_ptr<Table>> TableBuilder::Finish() {
  CORGI_RETURN_NOT_OK(init_status_);
  CORGI_RETURN_NOT_OK(FlushPage());
  CORGI_RETURN_NOT_OK(file_->Sync());
  return std::unique_ptr<Table>(new Table(
      std::move(schema_), options_, std::move(file_),
      std::move(tuples_per_page_)));
}

}  // namespace corgipile
