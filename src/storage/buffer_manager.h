// LRU page cache, the miniature of PostgreSQL's buffer manager that the
// paper's operators interact with (§6). Pages come back as shared_ptr so a
// consumer can keep one pinned while the cache evicts.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "storage/heapfile.h"
#include "util/mutex.h"
#include "util/status.h"

namespace corgipile {

class BufferManager {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Pages the cache declined under injected allocation failure
    /// (FaultPlane point "storage.buffer.admit"); served uncached.
    uint64_t alloc_rejections = 0;
    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// `capacity_bytes` is divided by the page size of whatever files are read
  /// through this manager; capacity is enforced in page count per fetch.
  explicit BufferManager(uint64_t capacity_bytes);

  /// Returns the page, from cache or by reading through the heap file
  /// (which charges device cost only on a miss — exactly the OS-cache
  /// behaviour the paper leans on for small datasets).
  Result<std::shared_ptr<const Page>> Fetch(HeapFile* file, uint64_t page_idx);

  /// Inserts a page read elsewhere (e.g. a whole-block read) into the
  /// cache. Overwrites nothing if the page is already cached.
  void Insert(const HeapFile* file, uint64_t page_idx,
              std::shared_ptr<const Page> page);

  /// True if (file, page) is currently cached (does not touch LRU order).
  bool Contains(const HeapFile* file, uint64_t page_idx) const;

  /// Drops all cached pages of `file` (or all pages when null).
  void Invalidate(const HeapFile* file = nullptr);

  Stats stats() const;
  void ResetStats();

  uint64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Key {
    const HeapFile* file;
    uint64_t page;
    bool operator==(const Key& o) const {
      return file == o.file && page == o.page;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<const void*>()(k.file) ^
             (std::hash<uint64_t>()(k.page) * 0x9E3779B97F4A7C15ULL);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const Page> page;
  };

  void EvictIfNeededLocked(uint64_t incoming_bytes) CORGI_REQUIRES(mu_);

  const uint64_t capacity_bytes_;
  mutable Mutex mu_;
  /// Front = most recently used. Eviction/invalidation walk this ordered
  /// list, never the unordered index, so the scan order is deterministic.
  std::list<Entry> lru_ CORGI_GUARDED_BY(mu_);
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      CORGI_GUARDED_BY(mu_);
  uint64_t cached_bytes_ CORGI_GUARDED_BY(mu_) = 0;
  Stats stats_ CORGI_GUARDED_BY(mu_);
};

}  // namespace corgipile
