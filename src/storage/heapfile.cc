#include "storage/heapfile.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "iosim/fault_plane.h"

namespace corgipile {

HeapFile::HeapFile(std::string path, int fd, uint32_t page_size,
                   uint64_t num_pages)
    : path_(std::move(path)), fd_(fd), page_size_(page_size),
      num_pages_(num_pages), tag_(FaultInjector::TagForPath(path_)) {}

HeapFile::~HeapFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<HeapFile>> HeapFile::Create(const std::string& path,
                                                   uint32_t page_size) {
  if (page_size == 0 || page_size > Page::kMaxSize) {
    return Status::InvalidArgument("bad page size");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("create " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<HeapFile>(new HeapFile(path, fd, page_size, 0));
}

Result<std::unique_ptr<HeapFile>> HeapFile::Open(const std::string& path,
                                                 uint32_t page_size) {
  if (page_size == 0 || page_size > Page::kMaxSize) {
    return Status::InvalidArgument("bad page size");
  }
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat " + path + ": " + std::strerror(errno));
  }
  if (st.st_size % page_size != 0) {
    ::close(fd);
    return Status::Corruption("file size not a multiple of page size: " + path);
  }
  return std::unique_ptr<HeapFile>(new HeapFile(
      path, fd, page_size, static_cast<uint64_t>(st.st_size) / page_size));
}

void HeapFile::SetIoAccounting(DeviceProfile device, SimClock* clock,
                               IoStats* stats) {
  MutexLock lock(mu_);
  device_ = std::move(device);
  clock_ = clock;
  stats_ = stats;
}

void HeapFile::SetFaultInjection(FaultInjector* injector) {
  MutexLock lock(mu_);
  fault_ = injector;
}

void HeapFile::SetRetryPolicy(RetryPolicy policy) {
  MutexLock lock(mu_);
  retry_ = policy;
}

void HeapFile::ChargeRead(uint64_t first_page, uint64_t num, bool contiguous) {
  MutexLock lock(mu_);
  const uint64_t bytes = num * page_size_;
  const bool sequential =
      contiguous && last_read_page_ + 1 == static_cast<int64_t>(first_page);
  if (clock_ != nullptr) {
    const double cost = sequential ? device_.SequentialCost(bytes)
                                   : device_.RandomCost(bytes);
    clock_->Advance(TimeCategory::kIoRead, cost);
  }
  if (stats_ != nullptr) {
    if (sequential) {
      ++stats_->sequential_reads;
    } else {
      ++stats_->random_reads;
    }
    stats_->bytes_read += bytes;
  }
  last_read_page_ = static_cast<int64_t>(first_page + num - 1);
}

void HeapFile::ChargeWrite(uint64_t num) {
  MutexLock lock(mu_);
  const uint64_t bytes = num * page_size_;
  if (clock_ != nullptr) {
    clock_->Advance(TimeCategory::kIoWrite, device_.SequentialCost(bytes));
  }
  if (stats_ != nullptr) {
    ++stats_->writes;
    stats_->bytes_written += bytes;
  }
}

void HeapFile::ChargeBackoff(double seconds) {
  MutexLock lock(mu_);
  if (clock_ != nullptr) {
    clock_->Advance(TimeCategory::kRetryBackoff, seconds);
  }
}

Status HeapFile::AppendPage(const Page& page) {
  CORGI_INJECT_POINT("storage.heapfile.append");
  if (page.size() != page_size_) {
    return Status::InvalidArgument("page size mismatch");
  }
  // Stamp the checksum into a scratch image so the caller's page object is
  // untouched and may keep accumulating records.
  std::vector<uint8_t> image(page.bytes());
  Page stamped = Page::FromBytes(std::move(image));
  stamped.StampChecksum();

  const uint64_t byte_off =
      num_pages_.load(std::memory_order_relaxed) * page_size_;
  uint64_t persist = page_size_;
  FaultInjector* fault = nullptr;
  {
    MutexLock lock(mu_);
    fault = fault_;
  }
  if (fault != nullptr) {
    persist = fault->TornWriteBytes(tag_, byte_off, page_size_);
  }
  std::vector<uint8_t> buf(stamped.bytes());
  if (persist < page_size_) {
    // Torn write: only a prefix reaches the platter; the tail reads back as
    // zeros. Silent now — the checksum catches it on the next read.
    std::memset(buf.data() + persist, 0, page_size_ - persist);
  }
  ssize_t n = ::pwrite(fd_, buf.data(), page_size_,
                       static_cast<off_t>(byte_off));
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IoError("pwrite " + path_ + ": " + std::strerror(errno));
  }
  num_pages_.fetch_add(1, std::memory_order_release);
  ChargeWrite(1);
  return Status::OK();
}

Status HeapFile::ReadAttempt(FaultInjector* fault, uint64_t offset,
                             uint8_t* buf, size_t len) {
  if (fault != nullptr) {
    Status st = fault->OnReadAttempt(tag_, offset);
    if (!st.ok()) return st;
  }
  ssize_t n = ::pread(fd_, buf, len, static_cast<off_t>(offset));
  if (n != static_cast<ssize_t>(len)) {
    return Status::IoError("pread " + path_ + ": " + std::strerror(errno));
  }
  if (fault != nullptr) {
    // Bit flips and latency spikes are per page so each page in a block
    // read fails independently.
    for (size_t p = 0; p < len; p += page_size_) {
      const size_t chunk = std::min<size_t>(page_size_, len - p);
      fault->MaybeCorrupt(tag_, offset + p, buf + p, chunk);
      const double spike = fault->ReadLatencySpikeSeconds(tag_, offset + p);
      if (spike > 0) {
        MutexLock lock(mu_);
        if (clock_ != nullptr) {
          clock_->Advance(TimeCategory::kIoRead, spike);
        }
      }
    }
  }
  return Status::OK();
}

Status HeapFile::ReadWithRetry(uint64_t offset, uint8_t* buf, size_t len) {
  // Chaos point: a scripted kill here models a process death mid-read; a
  // scripted fail models a catastrophic (non-retryable path) I/O error.
  CORGI_INJECT_POINT("storage.heapfile.read");
  // One locked snapshot for the whole retry loop: a concurrent
  // SetFaultInjection/SetRetryPolicy cannot change the rules (or dangle
  // the injector) between attempts of a single logical read.
  FaultInjector* fault = nullptr;
  RetryPolicy retry;
  {
    MutexLock lock(mu_);
    fault = fault_;
    retry = retry_;
  }
  Status st = Status::OK();
  for (uint32_t attempt = 0; attempt <= retry.max_retries; ++attempt) {
    if (attempt > 0) {
      ChargeBackoff(retry.BackoffSeconds(attempt - 1));
      if (fault != nullptr) {
        fault->stats().retries.fetch_add(1, std::memory_order_relaxed);
      }
    }
    st = ReadAttempt(fault, offset, buf, len);
    if (st.ok()) {
      if (attempt > 0 && fault != nullptr) {
        fault->stats().recovered.fetch_add(1, std::memory_order_relaxed);
      }
      return st;
    }
    if (st.code() != StatusCode::kIoError) return st;  // not retryable
  }
  if (fault != nullptr) {
    fault->stats().permanent_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::IoError("read failed after " +
                         std::to_string(retry.max_retries) + " retries: " +
                         st.message());
}

Status HeapFile::VerifyPage(const Page& page, uint64_t page_idx) const {
  if (!page.VerifyChecksum()) {
    return Status::Corruption(
        "checksum mismatch on page " + std::to_string(page_idx) + " of " +
        path_ + " (stored " + std::to_string(page.stored_checksum()) +
        ", computed " + std::to_string(page.ComputeChecksum()) + ")");
  }
  Status st = page.Validate();
  if (!st.ok()) {
    return Status::Corruption("page " + std::to_string(page_idx) + " of " +
                              path_ + ": " + st.message());
  }
  return Status::OK();
}

Status HeapFile::ReadPage(uint64_t page_idx, Page* out) {
  const uint64_t pages = num_pages();
  if (page_idx >= pages) {
    return Status::OutOfRange("page index " + std::to_string(page_idx) +
                              " >= " + std::to_string(pages));
  }
  std::vector<uint8_t> buf(page_size_);
  const uint64_t off = page_idx * page_size_;
  CORGI_RETURN_NOT_OK(ReadWithRetry(off, buf.data(), page_size_));
  ChargeRead(page_idx, 1, /*contiguous=*/true);
  Page page = Page::FromBytes(std::move(buf));
  CORGI_RETURN_NOT_OK(VerifyPage(page, page_idx));
  *out = std::move(page);
  return Status::OK();
}

Status HeapFile::ReadPages(uint64_t first, uint64_t count,
                           std::vector<Page>* out) {
  if (first + count > num_pages()) {
    return Status::OutOfRange("page range out of bounds");
  }
  out->clear();
  out->reserve(count);
  std::vector<uint8_t> buf(static_cast<size_t>(count) * page_size_);
  CORGI_RETURN_NOT_OK(
      ReadWithRetry(first * page_size_, buf.data(), buf.size()));
  ChargeRead(first, count, /*contiguous=*/true);
  for (uint64_t i = 0; i < count; ++i) {
    std::vector<uint8_t> page_bytes(
        buf.begin() + static_cast<size_t>(i) * page_size_,
        buf.begin() + static_cast<size_t>(i + 1) * page_size_);
    Page page = Page::FromBytes(std::move(page_bytes));
    CORGI_RETURN_NOT_OK(VerifyPage(page, first + i));
    out->push_back(std::move(page));
  }
  return Status::OK();
}

void HeapFile::ResetReadCursor() {
  MutexLock lock(mu_);
  last_read_page_ = -2;
}

Status HeapFile::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IoError("fsync " + path_ + ": " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace corgipile
