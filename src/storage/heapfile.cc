#include "storage/heapfile.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace corgipile {

HeapFile::HeapFile(std::string path, int fd, uint32_t page_size,
                   uint64_t num_pages)
    : path_(std::move(path)), fd_(fd), page_size_(page_size),
      num_pages_(num_pages) {}

HeapFile::~HeapFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<HeapFile>> HeapFile::Create(const std::string& path,
                                                   uint32_t page_size) {
  if (page_size == 0 || page_size > Page::kMaxSize) {
    return Status::InvalidArgument("bad page size");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("create " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<HeapFile>(new HeapFile(path, fd, page_size, 0));
}

Result<std::unique_ptr<HeapFile>> HeapFile::Open(const std::string& path,
                                                 uint32_t page_size) {
  if (page_size == 0 || page_size > Page::kMaxSize) {
    return Status::InvalidArgument("bad page size");
  }
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat " + path + ": " + std::strerror(errno));
  }
  if (st.st_size % page_size != 0) {
    ::close(fd);
    return Status::Corruption("file size not a multiple of page size: " + path);
  }
  return std::unique_ptr<HeapFile>(new HeapFile(
      path, fd, page_size, static_cast<uint64_t>(st.st_size) / page_size));
}

void HeapFile::SetIoAccounting(DeviceProfile device, SimClock* clock,
                               IoStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  device_ = std::move(device);
  clock_ = clock;
  stats_ = stats;
}

void HeapFile::ChargeRead(uint64_t first_page, uint64_t num, bool contiguous) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t bytes = num * page_size_;
  const bool sequential =
      contiguous && last_read_page_ + 1 == static_cast<int64_t>(first_page);
  if (clock_ != nullptr) {
    const double cost = sequential ? device_.SequentialCost(bytes)
                                   : device_.RandomCost(bytes);
    clock_->Advance(TimeCategory::kIoRead, cost);
  }
  if (stats_ != nullptr) {
    if (sequential) {
      ++stats_->sequential_reads;
    } else {
      ++stats_->random_reads;
    }
    stats_->bytes_read += bytes;
  }
  last_read_page_ = static_cast<int64_t>(first_page + num - 1);
}

void HeapFile::ChargeWrite(uint64_t num) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t bytes = num * page_size_;
  if (clock_ != nullptr) {
    clock_->Advance(TimeCategory::kIoWrite, device_.SequentialCost(bytes));
  }
  if (stats_ != nullptr) {
    ++stats_->writes;
    stats_->bytes_written += bytes;
  }
}

Status HeapFile::AppendPage(const Page& page) {
  if (page.size() != page_size_) {
    return Status::InvalidArgument("page size mismatch");
  }
  const off_t off = static_cast<off_t>(num_pages_) * page_size_;
  ssize_t n = ::pwrite(fd_, page.data(), page_size_, off);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IoError("pwrite " + path_ + ": " + std::strerror(errno));
  }
  ++num_pages_;
  ChargeWrite(1);
  return Status::OK();
}

Status HeapFile::ReadPage(uint64_t page_idx, Page* out) {
  if (page_idx >= num_pages_) {
    return Status::OutOfRange("page index " + std::to_string(page_idx) +
                              " >= " + std::to_string(num_pages_));
  }
  std::vector<uint8_t> buf(page_size_);
  const off_t off = static_cast<off_t>(page_idx) * page_size_;
  ssize_t n = ::pread(fd_, buf.data(), page_size_, off);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IoError("pread " + path_ + ": " + std::strerror(errno));
  }
  ChargeRead(page_idx, 1, /*contiguous=*/true);
  *out = Page::FromBytes(std::move(buf));
  return Status::OK();
}

Status HeapFile::ReadPages(uint64_t first, uint64_t count,
                           std::vector<Page>* out) {
  if (first + count > num_pages_) {
    return Status::OutOfRange("page range out of bounds");
  }
  out->clear();
  out->reserve(count);
  std::vector<uint8_t> buf(static_cast<size_t>(count) * page_size_);
  const off_t off = static_cast<off_t>(first) * page_size_;
  ssize_t n = ::pread(fd_, buf.data(), buf.size(), off);
  if (n != static_cast<ssize_t>(buf.size())) {
    return Status::IoError("pread " + path_ + ": " + std::strerror(errno));
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::vector<uint8_t> page_bytes(
        buf.begin() + static_cast<size_t>(i) * page_size_,
        buf.begin() + static_cast<size_t>(i + 1) * page_size_);
    out->push_back(Page::FromBytes(std::move(page_bytes)));
  }
  ChargeRead(first, count, /*contiguous=*/true);
  return Status::OK();
}

void HeapFile::ResetReadCursor() {
  std::lock_guard<std::mutex> lock(mu_);
  last_read_page_ = -2;
}

}  // namespace corgipile
