// Lightweight lossless codec standing in for PostgreSQL's TOAST compression
// (pglz). The paper observes that TOAST on wide dense rows (epsilon, yfcc)
// caps data-loading throughput around 130 MB/s regardless of device; we
// reproduce that with a real codec plus a modeled decompression bandwidth.
//
// Codec: zero-run-length + literal runs. Control byte c:
//   c & 0x80 == 0: literal run of (c + 1) bytes follows.
//   c & 0x80 != 0: zero run of ((c & 0x7F) + 1) bytes.
// Dense float vectors with many exact zeros (e.g. ReLU-style image features)
// compress well; incompressible payloads grow by < 1%.

#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace corgipile {

/// Modeled single-core decompression bandwidth (bytes of *output* per
/// second). Calibrated so TOASTed tables load at roughly the paper's
/// ~130 MB/s.
inline constexpr double kDecompressBandwidthBytesPerS = 130.0 * 1024 * 1024;

/// Compresses `input`; output is appended to *out (cleared first).
void CompressBytes(const std::vector<uint8_t>& input,
                   std::vector<uint8_t>* out);

/// Decompresses; returns Corruption on malformed input.
Status DecompressBytes(const uint8_t* data, size_t size,
                       std::vector<uint8_t>* out);

/// Convenience: compression ratio achieved on `input` (original/compressed).
double CompressionRatio(const std::vector<uint8_t>& input);

}  // namespace corgipile
