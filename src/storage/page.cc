#include "storage/page.h"

#include <cstring>

#include "util/crc32c.h"

namespace corgipile {

Page::Page(uint32_t page_size) : bytes_(page_size, 0) { Clear(); }

Page Page::FromBytes(std::vector<uint8_t> bytes) {
  Page p(static_cast<uint32_t>(bytes.size()));
  p.bytes_ = std::move(bytes);
  return p;
}

uint16_t Page::ReadU16(uint32_t off) const {
  uint16_t v;
  std::memcpy(&v, bytes_.data() + off, sizeof(v));
  return v;
}

void Page::WriteU16(uint32_t off, uint16_t v) {
  std::memcpy(bytes_.data() + off, &v, sizeof(v));
}

uint32_t Page::ReadU32(uint32_t off) const {
  uint32_t v;
  std::memcpy(&v, bytes_.data() + off, sizeof(v));
  return v;
}

void Page::WriteU32(uint32_t off, uint32_t v) {
  std::memcpy(bytes_.data() + off, &v, sizeof(v));
}

uint16_t Page::num_records() const { return ReadU16(0); }

uint32_t Page::free_space() const {
  const uint32_t dir_end = kHeaderBytes + num_records() * kSlotBytes;
  const uint32_t data_start = ReadU16(2);
  return data_start > dir_end ? data_start - dir_end : 0;
}

bool Page::AddRecord(const uint8_t* record, size_t len) {
  if (len == 0 || len > 0xFFFF) return false;
  const uint16_t n = num_records();
  const uint32_t dir_end = kHeaderBytes + (n + 1u) * kSlotBytes;
  const uint32_t data_start = ReadU16(2);
  if (data_start < dir_end + len) return false;  // does not fit
  const auto new_start = static_cast<uint16_t>(data_start - len);
  std::memcpy(bytes_.data() + new_start, record, len);
  WriteU16(kHeaderBytes + n * kSlotBytes, new_start);
  WriteU16(kHeaderBytes + n * kSlotBytes + 2, static_cast<uint16_t>(len));
  WriteU16(0, static_cast<uint16_t>(n + 1));
  WriteU16(2, new_start);
  WriteU32(kChecksumOffset, 0);  // contents changed; stamp is stale
  return true;
}

std::pair<const uint8_t*, size_t> Page::Record(uint16_t slot) const {
  if (slot >= num_records()) return {bytes_.data(), 0};
  const uint32_t base = kHeaderBytes + slot * kSlotBytes;
  const uint16_t off = ReadU16(base);
  const uint16_t len = ReadU16(base + 2);
  if (static_cast<uint32_t>(off) + len > size()) return {bytes_.data(), 0};
  return {bytes_.data() + off, len};
}

Status Page::Validate() const {
  if (size() < kHeaderBytes) {
    return Status::Corruption("page smaller than header");
  }
  const uint32_t n = num_records();
  const uint32_t dir_end = kHeaderBytes + n * kSlotBytes;
  if (dir_end > size()) {
    return Status::Corruption("slot directory of " + std::to_string(n) +
                              " slots exceeds page size");
  }
  const uint32_t data_start = ReadU16(2);
  if (data_start > size() || data_start < dir_end) {
    return Status::Corruption("data_start " + std::to_string(data_start) +
                              " outside [directory end, page size]");
  }
  for (uint32_t s = 0; s < n; ++s) {
    const uint32_t base = kHeaderBytes + s * kSlotBytes;
    const uint32_t off = ReadU16(base);
    const uint32_t len = ReadU16(base + 2);
    if (len == 0 || off < dir_end || off + len > size()) {
      return Status::Corruption("slot " + std::to_string(s) +
                                " range [" + std::to_string(off) + ", " +
                                std::to_string(off + len) +
                                ") outside record area");
    }
  }
  return Status::OK();
}

uint32_t Page::ComputeChecksum() const {
  uint32_t crc = Crc32cExtend(0, bytes_.data(), kChecksumOffset);
  const uint32_t zero = 0;
  crc = Crc32cExtend(crc, &zero, sizeof(zero));
  crc = Crc32cExtend(crc, bytes_.data() + kHeaderBytes,
                     bytes_.size() - kHeaderBytes);
  return crc == 0 ? 1u : crc;
}

void Page::StampChecksum() { WriteU32(kChecksumOffset, ComputeChecksum()); }

uint32_t Page::stored_checksum() const { return ReadU32(kChecksumOffset); }

bool Page::VerifyChecksum() const {
  const uint32_t stored = stored_checksum();
  if (stored == 0) return true;  // unstamped (legacy / in-memory) page
  return stored == ComputeChecksum();
}

void Page::Clear() {
  std::memset(bytes_.data(), 0, bytes_.size());
  WriteU16(0, 0);
  // data_start == page size; stored as u16, so a 65536-byte page wraps to 0.
  // We cap supported page sizes at 65536 and store size-1 sentinel... keep it
  // simple: support sizes < 65536 exactly and clamp 65536 to 65535.
  const uint32_t start = size() >= kMaxSize ? kMaxSize - 1 : size();
  WriteU16(2, static_cast<uint16_t>(start));
}

}  // namespace corgipile
