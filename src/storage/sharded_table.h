// ShardedTable: a logical table partitioned round-robin across N heap
// tables, with atomic cross-shard snapshots (DESIGN.md §14).
//
// Tuple i (in insertion order) lives in shard i % K at local position
// i / K, so cycling over the shards one tuple at a time reconstructs the
// exact insertion order — a K-shard merge scan is bit-identical to the
// unsharded sequential scan, and at K=1 the sharded table *is* the plain
// table (same file name, same layout, same bytes).
//
// Concurrency: each AppendTuples call partitions its batch round-robin,
// appends to every affected shard (durable: pages + fsync per shard), and
// only then publishes one new ShardedSnapshot covering all shards with a
// noexcept pointer swap. Readers capture the published snapshot and never
// observe a half-appended batch — shard counts in a snapshot always form a
// consistent round-robin frontier. Writers serialize on an append mutex;
// readers never block.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"
#include "util/mutex.h"
#include "util/status.h"

namespace corgipile {

/// An immutable, cross-shard-consistent view of a ShardedTable. Cheap to
/// copy. All per-shard reads are bounded by the page counts at capture, so
/// an in-flight merge scan keeps its view across any number of concurrent
/// appends. The parent ShardedTable must outlive the snapshot.
class ShardedSnapshot {
 public:
  ShardedSnapshot() = default;

  /// Wraps already-captured per-shard snapshots (shard order = vector
  /// order). Used by ShardedTable::Snapshot and by compat paths that view
  /// a single Table as a one-shard snapshot.
  explicit ShardedSnapshot(std::vector<TableSnapshot> shards);

  bool valid() const { return !shards_.empty(); }
  size_t num_shards() const { return shards_.size(); }
  const TableSnapshot& shard(size_t k) const { return shards_[k]; }

  const Schema& schema() const { return shards_.front().schema(); }
  const TableOptions& options() const { return shards_.front().options(); }
  uint64_t num_tuples() const { return num_tuples_; }
  uint64_t num_pages() const;  // sum over shards
  uint64_t size_bytes() const;

  /// Resets every shard's billing cursor (accounting only).
  void ResetReadCursors() const;

 private:
  std::vector<TableSnapshot> shards_;
  uint64_t num_tuples_ = 0;
};

class ShardedTable {
 public:
  /// Heap-file path for shard `k` of the table rooted at `base` (a path
  /// without extension, e.g. "<data_dir>/<name>"). Shard 0 keeps the
  /// legacy "<base>.tbl" name so unsharded tables from older data dirs
  /// open as K=1 sharded tables byte-for-byte.
  static std::string ShardPath(const std::string& base, uint32_t k);

  /// Materializes `tuples` round-robin across `num_shards` fresh heap
  /// files rooted at `base`.
  static Result<std::unique_ptr<ShardedTable>> Create(
      const std::string& base, Schema schema, TableOptions options,
      const std::vector<Tuple>& tuples, uint32_t num_shards);

  /// Reopens an existing sharded table (all shard files must exist).
  static Result<std::unique_ptr<ShardedTable>> Open(const std::string& base,
                                                    Schema schema,
                                                    TableOptions options,
                                                    uint32_t num_shards);

  const Schema& schema() const { return schema_; }
  const TableOptions& options() const { return options_; }
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  Table* shard(size_t k) { return shards_[k].get(); }
  const Table* shard(size_t k) const { return shards_[k].get(); }

  /// Captures the current published cross-shard snapshot.
  ShardedSnapshot Snapshot() const;

  /// Published totals (the current snapshot's view).
  uint64_t num_tuples() const { return Snapshot().num_tuples(); }
  uint64_t num_pages() const { return Snapshot().num_pages(); }
  uint64_t size_bytes() const { return Snapshot().size_bytes(); }

  /// Streaming ingest (the INSERT analog): partitions `tuples` round-robin
  /// continuing from the published total, appends to each affected shard
  /// (durable), then atomically publishes a snapshot covering the whole
  /// batch. Concurrent scans keep their earlier snapshots; they never wait.
  Status AppendTuples(const std::vector<Tuple>& tuples);

  // --- setup-time configuration (forwarded to every shard) ---
  void SetIoAccounting(DeviceProfile device, SimClock* clock, IoStats* stats);
  void SetFaultInjection(FaultInjector* injector);
  void SetRetryPolicy(RetryPolicy policy);
  void SetBufferManager(BufferManager* buffer_manager);

  /// Resets every shard's billing cursor (accounting only).
  void ResetReadCursors();

  /// Detaches the sole shard for strategies that consume Table ownership
  /// (shuffle_once_inplace rewrites storage in place). K=1 tables only;
  /// the table is unreadable until AdoptSoleShard re-publishes. Callers
  /// must guarantee no concurrent readers (single-session strategies).
  Result<std::unique_ptr<Table>> ReleaseSoleShard();
  Status AdoptSoleShard(std::unique_ptr<Table> table);

 private:
  ShardedTable(Schema schema, TableOptions options,
               std::vector<std::unique_ptr<Table>> shards);

  /// Captures all shard snapshots and swaps in the combined snapshot.
  void Publish();

  Schema schema_;
  TableOptions options_;
  std::vector<std::unique_ptr<Table>> shards_;

  /// Serializes writers (AppendTuples, ReleaseSoleShard/AdoptSoleShard).
  Mutex append_mu_;
  /// Guards only the published-snapshot pointer; never held across I/O.
  mutable Mutex snapshot_mu_;
  std::shared_ptr<const ShardedSnapshot> snapshot_
      CORGI_GUARDED_BY(snapshot_mu_);
};

}  // namespace corgipile
