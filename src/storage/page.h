// Slotted heap page, PostgreSQL-style.
//
// Layout (little-endian):
//   [u16 num_slots][u16 data_start]
//   num_slots * { u16 offset, u16 len }   (slot directory, grows forward)
//   ... free space ...
//   record bytes                          (grow backward from page end)

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace corgipile {

class Page {
 public:
  static constexpr uint32_t kDefaultSize = 8192;
  static constexpr uint32_t kHeaderBytes = 4;
  static constexpr uint32_t kSlotBytes = 4;
  static constexpr uint32_t kMaxSize = 65536;

  explicit Page(uint32_t page_size = kDefaultSize);

  /// Wraps raw page bytes read from disk (takes ownership by copy/move).
  static Page FromBytes(std::vector<uint8_t> bytes);

  uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }
  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* data() { return bytes_.data(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

  uint16_t num_records() const;
  uint32_t free_space() const;

  /// Appends a record; returns false if it does not fit.
  bool AddRecord(const uint8_t* record, size_t len);

  /// Pointer/length of record in `slot`. Precondition: slot < num_records().
  std::pair<const uint8_t*, size_t> Record(uint16_t slot) const;

  /// Resets to an empty page.
  void Clear();

 private:
  uint16_t ReadU16(uint32_t off) const;
  void WriteU16(uint32_t off, uint16_t v);

  std::vector<uint8_t> bytes_;
};

}  // namespace corgipile
