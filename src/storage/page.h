// Slotted heap page, PostgreSQL-style.
//
// Layout (little-endian):
//   [u16 num_slots][u16 data_start][u32 crc32c]
//   num_slots * { u16 offset, u16 len }   (slot directory, grows forward)
//   ... free space ...
//   record bytes                          (grow backward from page end)
//
// The CRC32C header field covers the whole page with the field itself
// zeroed. 0 means "no checksum" (never produced by StampChecksum, which
// maps a computed 0 to 1), so in-memory pages that were never written to
// disk verify trivially.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

namespace corgipile {

class Page {
 public:
  static constexpr uint32_t kDefaultSize = 8192;
  static constexpr uint32_t kHeaderBytes = 8;
  static constexpr uint32_t kSlotBytes = 4;
  static constexpr uint32_t kMaxSize = 65536;
  static constexpr uint32_t kChecksumOffset = 4;

  explicit Page(uint32_t page_size = kDefaultSize);

  /// Wraps raw page bytes read from disk (takes ownership by copy/move).
  /// Does not validate; callers reading untrusted bytes must check
  /// Validate() (the HeapFile read paths do) before using Record().
  static Page FromBytes(std::vector<uint8_t> bytes);

  uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }
  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* data() { return bytes_.data(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

  uint16_t num_records() const;
  uint32_t free_space() const;

  /// Appends a record; returns false if it does not fit. Invalidates any
  /// stamped checksum (the header CRC field is reset to 0).
  bool AddRecord(const uint8_t* record, size_t len);

  /// Pointer/length of record in `slot`. Precondition: slot < num_records()
  /// on a page that passed Validate(). Out-of-bounds slot metadata yields a
  /// {valid pointer, 0} pair rather than reading past the page.
  std::pair<const uint8_t*, size_t> Record(uint16_t slot) const;

  /// Structural integrity check against malformed/corrupt bytes: header
  /// fits, slot directory fits, every slot's [offset, offset+len) lies
  /// between the directory end and the page end with a non-zero length.
  /// Returns kCorruption with a description on the first violation.
  Status Validate() const;

  /// Computes the CRC32C of the page (checksum field treated as zero).
  uint32_t ComputeChecksum() const;

  /// Writes ComputeChecksum() into the header (0 mapped to 1).
  void StampChecksum();

  /// Stored checksum field; 0 = unstamped.
  uint32_t stored_checksum() const;

  /// True when the stored checksum matches the page contents, or when the
  /// page is unstamped (stored checksum 0).
  bool VerifyChecksum() const;

  /// Resets to an empty page.
  void Clear();

 private:
  uint16_t ReadU16(uint32_t off) const;
  void WriteU16(uint32_t off, uint16_t v);
  uint32_t ReadU32(uint32_t off) const;
  void WriteU32(uint32_t off, uint32_t v);

  std::vector<uint8_t> bytes_;
};

}  // namespace corgipile
