#include "storage/sharded_table.h"

#include <utility>

#include "iosim/fault_plane.h"

namespace corgipile {

ShardedSnapshot::ShardedSnapshot(std::vector<TableSnapshot> shards)
    : shards_(std::move(shards)) {
  for (const TableSnapshot& s : shards_) num_tuples_ += s.num_tuples();
}

uint64_t ShardedSnapshot::num_pages() const {
  uint64_t pages = 0;
  for (const TableSnapshot& s : shards_) pages += s.num_pages();
  return pages;
}

uint64_t ShardedSnapshot::size_bytes() const {
  uint64_t bytes = 0;
  for (const TableSnapshot& s : shards_) bytes += s.size_bytes();
  return bytes;
}

void ShardedSnapshot::ResetReadCursors() const {
  for (const TableSnapshot& s : shards_) s.ResetReadCursor();
}

std::string ShardedTable::ShardPath(const std::string& base, uint32_t k) {
  if (k == 0) return base + ".tbl";
  return base + ".shard" + std::to_string(k) + ".tbl";
}

ShardedTable::ShardedTable(Schema schema, TableOptions options,
                           std::vector<std::unique_ptr<Table>> shards)
    : schema_(std::move(schema)), options_(options),
      shards_(std::move(shards)) {
  Publish();
}

void ShardedTable::Publish() {
  std::vector<TableSnapshot> views;
  views.reserve(shards_.size());
  for (const auto& shard : shards_) {
    if (shard != nullptr) views.push_back(shard->Snapshot());
  }
  auto next = std::make_shared<const ShardedSnapshot>(std::move(views));
  MutexLock lock(snapshot_mu_);
  snapshot_ = std::move(next);
}

Result<std::unique_ptr<ShardedTable>> ShardedTable::Create(
    const std::string& base, Schema schema, TableOptions options,
    const std::vector<Tuple>& tuples, uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::vector<std::unique_ptr<Table>> shards;
  shards.reserve(num_shards);
  for (uint32_t k = 0; k < num_shards; ++k) {
    TableBuilder builder(schema, ShardPath(base, k), options);
    // Round-robin placement: tuple i lands in shard i % K, preserving
    // local order, so a cyclic merge reconstructs insertion order exactly.
    for (size_t i = k; i < tuples.size(); i += num_shards) {
      CORGI_RETURN_NOT_OK(builder.Append(tuples[i]));
    }
    CORGI_ASSIGN_OR_RETURN(std::unique_ptr<Table> shard, builder.Finish());
    shards.push_back(std::move(shard));
  }
  return std::unique_ptr<ShardedTable>(new ShardedTable(
      std::move(schema), options, std::move(shards)));
}

Result<std::unique_ptr<ShardedTable>> ShardedTable::Open(
    const std::string& base, Schema schema, TableOptions options,
    uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::vector<std::unique_ptr<Table>> shards;
  shards.reserve(num_shards);
  for (uint32_t k = 0; k < num_shards; ++k) {
    CORGI_ASSIGN_OR_RETURN(
        std::unique_ptr<Table> shard,
        Table::Open(ShardPath(base, k), schema, options));
    shards.push_back(std::move(shard));
  }
  return std::unique_ptr<ShardedTable>(new ShardedTable(
      std::move(schema), options, std::move(shards)));
}

ShardedSnapshot ShardedTable::Snapshot() const {
  MutexLock lock(snapshot_mu_);
  return snapshot_ == nullptr ? ShardedSnapshot() : *snapshot_;
}

Status ShardedTable::AppendTuples(const std::vector<Tuple>& tuples) {
  if (tuples.empty()) return Status::OK();
  MutexLock append_lock(append_mu_);
  CORGI_INJECT_POINT("shard.append.begin");
  const uint32_t K = num_shards();
  // Continue the round-robin frontier from the published total: batch
  // tuple j is global tuple (total + j) and lands in shard (total + j) % K.
  const uint64_t total = Snapshot().num_tuples();
  std::vector<std::vector<Tuple>> parts(K);
  for (size_t j = 0; j < tuples.size(); ++j) {
    parts[(total + j) % K].push_back(tuples[j]);
  }
  for (uint32_t k = 0; k < K; ++k) {
    if (parts[k].empty()) continue;
    if (shards_[k] == nullptr) {
      return Status::Internal("shard " + std::to_string(k) + " detached");
    }
    CORGI_RETURN_NOT_OK(shards_[k]->AppendTuples(parts[k]));
  }
  // Every shard durable (pages + fsync inside Table::AppendTuples). A kill
  // here loses no data: reopening rebuilds the combined snapshot from the
  // shard files, and the round-robin frontier is recomputed from counts.
  CORGI_CRASH_POINT("shard.snapshot.publish");
  Publish();
  return Status::OK();
}

void ShardedTable::SetIoAccounting(DeviceProfile device, SimClock* clock,
                                   IoStats* stats) {
  for (auto& shard : shards_) {
    if (shard != nullptr) shard->SetIoAccounting(device, clock, stats);
  }
}

void ShardedTable::SetFaultInjection(FaultInjector* injector) {
  for (auto& shard : shards_) {
    if (shard != nullptr) shard->SetFaultInjection(injector);
  }
}

void ShardedTable::SetRetryPolicy(RetryPolicy policy) {
  for (auto& shard : shards_) {
    if (shard != nullptr) shard->SetRetryPolicy(policy);
  }
}

void ShardedTable::SetBufferManager(BufferManager* buffer_manager) {
  for (auto& shard : shards_) {
    if (shard != nullptr) shard->SetBufferManager(buffer_manager);
  }
}

void ShardedTable::ResetReadCursors() {
  for (auto& shard : shards_) {
    if (shard != nullptr) shard->ResetReadCursor();
  }
}

Result<std::unique_ptr<Table>> ShardedTable::ReleaseSoleShard() {
  MutexLock lock(append_mu_);
  if (shards_.size() != 1) {
    return Status::Internal(
        "ReleaseSoleShard requires an unsharded (K=1) table");
  }
  std::unique_ptr<Table> out = std::move(shards_[0]);
  if (out == nullptr) {
    return Status::Internal("sole shard already detached");
  }
  Publish();  // empty snapshot: table unreadable until AdoptSoleShard
  return out;
}

Status ShardedTable::AdoptSoleShard(std::unique_ptr<Table> table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  MutexLock lock(append_mu_);
  if (shards_.size() != 1 || shards_[0] != nullptr) {
    return Status::Internal(
        "AdoptSoleShard requires a detached K=1 table");
  }
  shards_[0] = std::move(table);
  Publish();
  return Status::OK();
}

}  // namespace corgipile
