// Table schema for ML training data.
//
// Mirrors the layout the paper uses in PostgreSQL (§6.1):
//   ⟨id, features_k[], features_v[], label⟩
// where features_k[] is only populated for sparse datasets.

#pragma once

#include <cstdint>
#include <string>

namespace corgipile {

/// What the label column means.
enum class LabelType : uint8_t {
  kBinary = 0,     ///< -1 / +1
  kMulticlass,     ///< 0 .. num_classes-1
  kContinuous,     ///< regression target
};

const char* LabelTypeToString(LabelType t);

/// Dataset schema. `dim` is the feature dimensionality; for sparse data it
/// is the size of the feature space, not the per-tuple nonzero count.
struct Schema {
  std::string name;
  uint32_t dim = 0;
  bool sparse = false;
  LabelType label_type = LabelType::kBinary;
  uint32_t num_classes = 2;  ///< meaningful for kMulticlass

  bool operator==(const Schema& o) const {
    return name == o.name && dim == o.dim && sparse == o.sparse &&
           label_type == o.label_type && num_classes == o.num_classes;
  }

  std::string ToString() const;
};

}  // namespace corgipile
