#include "storage/table_shuffle.h"

#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace corgipile {

Result<ShuffledCopyResult> BuildShuffledCopy(Table* source,
                                             const std::string& copy_path,
                                             uint64_t seed,
                                             const DeviceProfile& device,
                                             SimClock* clock, IoStats* stats) {
  if (source == nullptr) return Status::InvalidArgument("null source table");
  const double before = clock != nullptr ? clock->TotalElapsed() : 0.0;

  // PostgreSQL's ORDER BY random() materializes an external sort: the table
  // is sequentially scanned, spilled to sorted runs, merged, and rewritten.
  // In I/O terms that is ~2 sequential reads and ~2 sequential writes of
  // the table (run spill + result), plus the sort CPU. The paper's measured
  // shuffle-vs-epoch ratios (e.g. 50 min shuffle vs 15 min epoch for the
  // 55 GB yfcc) match this 3-4x-of-one-scan footprint.
  //
  // Mechanically we read the tuples once (billed as the first sequential
  // pass), shuffle in memory (real CPU, billed as sort cost), and write the
  // copy; the spill pass is billed explicitly below.
  source->ResetReadCursor();
  std::vector<Tuple> tuples;
  tuples.reserve(source->num_tuples());
  CORGI_RETURN_NOT_OK(source->Scan([&](const Tuple& t) {
    tuples.push_back(t);
    return Status::OK();
  }));

  WallTimer shuffle_timer;
  Rng rng(seed);
  rng.Shuffle(tuples);
  if (clock != nullptr) {
    clock->Advance(TimeCategory::kShuffleCpu, shuffle_timer.ElapsedSeconds());
  }

  TableBuilder builder(source->schema(), copy_path, source->options());
  for (const Tuple& t : tuples) {
    CORGI_RETURN_NOT_OK(builder.Append(t));
  }
  ShuffledCopyResult out;
  CORGI_ASSIGN_OR_RETURN(out.table, builder.Finish());
  CORGI_LOG(kDebug) << "shuffled copy of " << source->schema().name << " ("
                    << tuples.size() << " tuples) at " << copy_path;

  const uint64_t bytes = out.table->size_bytes();
  if (clock != nullptr) {
    // Result write + the external-sort spill pass (one write, one re-read).
    clock->Advance(TimeCategory::kIoWrite, 2 * device.SequentialCost(bytes));
    clock->Advance(TimeCategory::kIoRead, device.SequentialCost(bytes));
  }
  if (stats != nullptr) {
    stats->writes += 2;
    stats->bytes_written += 2 * bytes;
    ++stats->sequential_reads;
    stats->bytes_read += bytes;
  }
  out.table->SetIoAccounting(device, clock, stats);
  out.extra_disk_bytes = bytes;
  out.sim_seconds = clock != nullptr ? clock->TotalElapsed() - before : 0.0;
  return out;
}

Result<InPlaceShuffleResult> ShuffleTableInPlace(std::unique_ptr<Table> table,
                                                 uint64_t seed,
                                                 const DeviceProfile& device,
                                                 SimClock* clock,
                                                 IoStats* stats,
                                                 BufferManager* pool) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  const double before = clock != nullptr ? clock->TotalElapsed() : 0.0;

  // Sequential read of the whole table (billed through its accounting).
  table->ResetReadCursor();
  std::vector<Tuple> tuples;
  tuples.reserve(table->num_tuples());
  CORGI_RETURN_NOT_OK(table->Scan([&](const Tuple& t) {
    tuples.push_back(t);
    return Status::OK();
  }));

  WallTimer shuffle_timer;
  Rng rng(seed);
  rng.Shuffle(tuples);
  if (clock != nullptr) {
    clock->Advance(TimeCategory::kShuffleCpu, shuffle_timer.ElapsedSeconds());
  }

  // Rewrite the same file. Drop stale cached pages first; the old HeapFile
  // pointer dies with `table`.
  const std::string path = table->file()->path();
  const Schema schema = table->schema();
  const TableOptions options = table->options();
  const uint64_t bytes = table->size_bytes();
  if (pool != nullptr) pool->Invalidate(table->file());
  table.reset();  // release the fd before truncating

  TableBuilder builder(schema, path, options);
  for (const Tuple& t : tuples) {
    CORGI_RETURN_NOT_OK(builder.Append(t));
  }
  InPlaceShuffleResult out;
  CORGI_ASSIGN_OR_RETURN(out.table, builder.Finish());
  if (clock != nullptr) {
    // One sequential rewrite; no spill (the shuffle ran in memory).
    clock->Advance(TimeCategory::kIoWrite, device.SequentialCost(bytes));
  }
  if (stats != nullptr) {
    ++stats->writes;
    stats->bytes_written += bytes;
  }
  out.table->SetIoAccounting(device, clock, stats);
  out.table->SetBufferManager(pool);
  out.sim_seconds = clock != nullptr ? clock->TotalElapsed() - before : 0.0;
  return out;
}

}  // namespace corgipile
