// TupleBatch: the unit of transport of the batched execution pipeline
// (DESIGN.md §9).
//
// A reusable, arena-backed container of tuples. Per-tuple metadata (id,
// label) and feature data live in contiguous arrays owned by the batch;
// appending copies a tuple's features into the arena, and Clear() keeps the
// arena capacity so a steady-state pipeline performs no allocation.
//
// Dense fast path: while every appended tuple is dense with the same nnz,
// the value arena is one contiguous row-major [size() × uniform_dim()]
// matrix (structure-of-arrays), which the mini-batch kernels in src/ml/
// consume directly. Sparse tuples store their key spans in a parallel key
// arena; mixed batches are fully supported, they just lose the uniform
// layout.
//
// Pointer-validity contract: spans returned by values(i)/keys(i) and the
// row views are valid until the next Append/Clear/Reserve on this batch —
// i.e. for the consumer, until it requests the next batch. This replaces
// the per-tuple interfaces' "valid until the next Next()" rule.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/tuple.h"

namespace corgipile {

class TupleBatch {
 public:
  /// Default transport batch size; large enough to amortize per-batch
  /// virtual-call and bookkeeping overhead, small enough to stay cache
  /// resident for the paper's feature widths.
  static constexpr size_t kDefaultTargetTuples = 256;

  explicit TupleBatch(size_t target_tuples = kDefaultTargetTuples)
      : target_tuples_(target_tuples == 0 ? 1 : target_tuples) {}

  /// Producers fill until size() == target_tuples() (or the epoch ends).
  size_t target_tuples() const { return target_tuples_; }
  void set_target_tuples(size_t n) { target_tuples_ = n == 0 ? 1 : n; }
  bool full() const { return ids_.size() >= target_tuples_; }

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// Drops the tuples but keeps every arena's capacity.
  void Clear() {
    ids_.clear();
    labels_.clear();
    values_.clear();
    keys_.clear();
    value_offsets_.assign(1, 0);
    key_offsets_.assign(1, 0);
    uniform_dense_ = true;
    uniform_dim_ = 0;
  }

  void Reserve(size_t tuples, size_t values_per_tuple) {
    ids_.reserve(tuples);
    labels_.reserve(tuples);
    value_offsets_.reserve(tuples + 1);
    key_offsets_.reserve(tuples + 1);
    values_.reserve(tuples * values_per_tuple);
  }

  void Append(const Tuple& t) {
    if (t.sparse()) {
      AppendSparse(t.id, t.label, t.feature_keys.data(),
                   t.feature_values.data(), t.feature_values.size());
    } else {
      AppendDense(t.id, t.label, t.feature_values.data(),
                  t.feature_values.size());
    }
  }

  void AppendDense(uint64_t id, double label, const float* values, size_t n) {
    if (empty()) {
      uniform_dim_ = n;
    } else if (uniform_dense_ && n != uniform_dim_) {
      uniform_dense_ = false;
    }
    ids_.push_back(id);
    labels_.push_back(label);
    values_.insert(values_.end(), values, values + n);
    value_offsets_.push_back(static_cast<uint32_t>(values_.size()));
    key_offsets_.push_back(key_offsets_.back());
  }

  /// Appends row i of another batch (span copy, no Tuple round trip).
  void AppendFrom(const TupleBatch& src, size_t i) {
    if (src.sparse(i)) {
      AppendSparse(src.id(i), src.label(i), src.keys(i), src.values(i),
                   src.nnz(i));
    } else {
      AppendDense(src.id(i), src.label(i), src.values(i), src.nnz(i));
    }
  }

  void AppendSparse(uint64_t id, double label, const uint32_t* keys,
                    const float* values, size_t nnz) {
    uniform_dense_ = false;
    ids_.push_back(id);
    labels_.push_back(label);
    values_.insert(values_.end(), values, values + nnz);
    keys_.insert(keys_.end(), keys, keys + nnz);
    value_offsets_.push_back(static_cast<uint32_t>(values_.size()));
    key_offsets_.push_back(static_cast<uint32_t>(keys_.size()));
  }

  uint64_t id(size_t i) const { return ids_[i]; }
  double label(size_t i) const { return labels_[i]; }
  bool sparse(size_t i) const {
    return key_offsets_[i + 1] != key_offsets_[i];
  }
  size_t nnz(size_t i) const {
    return value_offsets_[i + 1] - value_offsets_[i];
  }
  const float* values(size_t i) const {
    return values_.data() + value_offsets_[i];
  }
  /// nullptr when row i is dense.
  const uint32_t* keys(size_t i) const {
    return sparse(i) ? keys_.data() + key_offsets_[i] : nullptr;
  }

  /// True while every row is dense with the same width: the value arena is
  /// then one contiguous [size() × uniform_dim()] row-major matrix.
  bool uniform_dense() const { return uniform_dense_ && !empty(); }
  size_t uniform_dim() const { return uniform_dense() ? uniform_dim_ : 0; }
  const float* dense_data() const { return values_.data(); }
  const double* labels_data() const { return labels_.data(); }
  const uint64_t* ids_data() const { return ids_.data(); }

  /// Copies row i into *out, reusing out's vector capacity. The compat
  /// shim for callers that still need a materialized Tuple.
  void MaterializeTo(size_t i, Tuple* out) const {
    out->id = ids_[i];
    out->label = labels_[i];
    const size_t n = nnz(i);
    if (sparse(i)) {
      const uint32_t* k = keys_.data() + key_offsets_[i];
      out->feature_keys.assign(k, k + n);
    } else {
      out->feature_keys.clear();
    }
    const float* v = values(i);
    out->feature_values.assign(v, v + n);
  }

  Tuple ToTuple(size_t i) const {
    Tuple t;
    MaterializeTo(i, &t);
    return t;
  }

 private:
  size_t target_tuples_;
  std::vector<uint64_t> ids_;
  std::vector<double> labels_;
  /// Row i's values are values_[value_offsets_[i] .. value_offsets_[i+1]);
  /// likewise keys_ for sparse rows (empty span for dense rows).
  std::vector<uint32_t> value_offsets_{0};
  std::vector<uint32_t> key_offsets_{0};
  std::vector<float> values_;
  std::vector<uint32_t> keys_;
  bool uniform_dense_ = true;
  size_t uniform_dim_ = 0;
};

}  // namespace corgipile
