// Shard-aware merge scan (DESIGN.md §14).
//
// A ShardedSnapshot stores tuple i of the insertion order in shard i % K
// at local position i / K, so emitting one tuple per shard cyclically
// (skipping exhausted shards) reconstructs the insertion order exactly.
// The merge order is a pure function of the snapshot — never of thread
// interleaving — so the tuple sequence is bit-identical whether the
// per-shard producers run sequentially or on a thread pool, and identical
// to the unsharded Table::Scan at K=1.
//
// With a ThreadPool attached, each shard pipelines bounded prefetch
// tasks — every task reads one preassigned page run, returns its tuples,
// and exits — and the calling thread merges. Because no task ever blocks
// on queue capacity, the merge is deadlock-free for any pool size (a
// long-running producer-per-shard design would wedge whenever the pool
// has fewer threads than the table has shards). Without a pool, shards
// are read inline on the calling thread, which also keeps SimClock
// billing order deterministic for single-session runs.

#pragma once

#include <functional>
#include <vector>

#include "storage/sharded_table.h"
#include "storage/tuple.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/threadpool.h"

namespace corgipile {

struct ShardScanOptions {
  /// Prefetch granularity: a task reads whole pages until it has at
  /// least this many tuples.
  uint64_t batch_tuples = 256;
  /// In-flight prefetch tasks per shard (bounds memory to roughly
  /// prefetch_batches × batch_tuples × K tuples).
  size_t prefetch_batches = 2;
  /// Pool for prefetch tasks. Null = read shards inline on the calling
  /// thread. Must not be a pool this call runs inside of.
  ThreadPool* pool = nullptr;
  /// Optional cooperative cancellation; checked between batches.
  const CancellationToken* token = nullptr;
};

/// Scans `snap` in exact insertion order, invoking `fn` for every tuple on
/// the calling thread. An error from `fn` (or a cancelled token) stops the
/// scan, cancels all producers, and is returned.
Status MergeScanSnapshot(const ShardedSnapshot& snap,
                         const ShardScanOptions& opts,
                         const std::function<Status(const Tuple&)>& fn);

/// Convenience: merge-scans `snap` and appends every tuple to *out.
Status CollectSnapshot(const ShardedSnapshot& snap,
                       const ShardScanOptions& opts, std::vector<Tuple>* out);

}  // namespace corgipile
