#include "exec/shard_scan.h"

#include <deque>
#include <future>

#include "iosim/fault_plane.h"

namespace corgipile {

namespace {

/// Per-shard consumer-side cursor. Concurrent mode pipelines bounded
/// prefetch *tasks* (each reads one preassigned page run, returns its
/// tuples, and exits); inline mode reads the next non-empty page on the
/// calling thread. Tasks never block on queue capacity — unlike
/// long-running channel producers, a prefetch task always terminates —
/// so the merge cannot deadlock no matter how small the pool is
/// relative to the shard count.
struct ShardCursor {
  const TableSnapshot* shard = nullptr;
  ThreadPool* pool = nullptr;
  uint64_t batch_tuples = 256;
  const CancellationToken* token = nullptr;

  std::vector<Tuple> buffer;
  size_t pos = 0;
  uint64_t next_page = 0;
  /// In-flight prefetch tasks, in page order. At most `prefetch_depth`.
  std::deque<std::future<Result<std::vector<Tuple>>>> pending;
  size_t prefetch_depth = 1;
  bool done = false;

  /// Submits prefetch tasks until `prefetch_depth` are in flight or the
  /// shard's pages are exhausted. Page runs are carved at submission
  /// time, so task results concatenate in storage order.
  void Prime() {
    while (pending.size() < prefetch_depth &&
           next_page < shard->num_pages()) {
      const uint64_t first = next_page;
      uint64_t tuples = 0;
      while (next_page < shard->num_pages() && tuples < batch_tuples) {
        tuples += shard->TuplesInPage(next_page);
        ++next_page;
      }
      const uint64_t count = next_page - first;
      const TableSnapshot* s = shard;
      const CancellationToken* tok = token;
      pending.push_back(
          pool->Submit([s, first, count, tok]() -> Result<std::vector<Tuple>> {
            if (tok != nullptr && tok->cancelled()) return tok->status();
            std::vector<Tuple> batch;
            CORGI_RETURN_NOT_OK(s->ReadTuplesFromPages(first, count, &batch));
            return batch;
          }));
    }
  }

  /// Ensures buffer[pos] is valid or marks the cursor done.
  Status Refill() {
    buffer.clear();
    pos = 0;
    if (pool != nullptr) {
      while (buffer.empty()) {
        Prime();
        if (pending.empty()) {
          done = true;
          return Status::OK();
        }
        CORGI_ASSIGN_OR_RETURN(buffer, pending.front().get());
        pending.pop_front();
      }
      Prime();  // keep the pipeline full while this batch drains
      return Status::OK();
    }
    while (buffer.empty()) {
      if (next_page >= shard->num_pages()) {
        done = true;
        return Status::OK();
      }
      CORGI_RETURN_NOT_OK(shard->ReadTuplesFromPages(next_page, 1, &buffer));
      ++next_page;
    }
    return Status::OK();
  }

  /// Joins every in-flight task (results discarded) so captured
  /// references cannot outlive the merge call.
  void Drain() {
    while (!pending.empty()) {
      pending.front().wait();
      pending.pop_front();
    }
  }
};

}  // namespace

Status MergeScanSnapshot(const ShardedSnapshot& snap,
                         const ShardScanOptions& opts,
                         const std::function<Status(const Tuple&)>& fn) {
  CORGI_INJECT_POINT("shard.scan.begin");
  if (!snap.valid()) return Status::OK();
  const size_t K = snap.num_shards();
  if (K == 1 && opts.pool == nullptr) {
    // Fast path: identical page access and billing order to the legacy
    // unsharded Table::Scan.
    return snap.shard(0).Scan(fn);
  }

  std::vector<ShardCursor> cursors(K);
  for (size_t s = 0; s < K; ++s) {
    cursors[s].shard = &snap.shard(s);
    cursors[s].pool = opts.pool;
    cursors[s].batch_tuples = opts.batch_tuples == 0 ? 256 : opts.batch_tuples;
    cursors[s].token = opts.token;
    cursors[s].prefetch_depth =
        opts.prefetch_batches == 0 ? 1 : opts.prefetch_batches;
    if (opts.pool != nullptr) cursors[s].Prime();
  }
  auto abort = [&](Status reason) {
    for (auto& cur : cursors) cur.Drain();
    return reason;
  };

  // Cyclic merge. Round-robin placement keeps shard sizes within one tuple
  // of each other, so "skip exhausted shards, keep cycling" emits exactly
  // the insertion order.
  size_t live = K;
  size_t s = 0;
  while (live > 0) {
    ShardCursor& cur = cursors[s];
    if (!cur.done) {
      if (cur.pos >= cur.buffer.size()) {
        Status st = cur.Refill();
        if (!st.ok()) return abort(std::move(st));
      }
      if (cur.done) {
        --live;
      } else {
        if (opts.token != nullptr && opts.token->cancelled()) {
          return abort(opts.token->status());
        }
        Status st = fn(cur.buffer[cur.pos++]);
        if (!st.ok()) return abort(std::move(st));
      }
    }
    s = (s + 1) % K;
  }
  return Status::OK();
}

Status CollectSnapshot(const ShardedSnapshot& snap,
                       const ShardScanOptions& opts, std::vector<Tuple>* out) {
  out->reserve(out->size() + snap.num_tuples());
  return MergeScanSnapshot(snap, opts, [out](const Tuple& t) {
    out->push_back(t);
    return Status::OK();
  });
}

}  // namespace corgipile
