// BatchStream: the single batched (vectorized) pipeline interface
// (DESIGN.md §9).
//
// Replaces the three divergent per-tuple Volcano interfaces the codebase
// grew (shuffle/tuple_stream.h, db/operator.h, dataloader/dataset_api.h) as
// the hot-path transport: producers move whole TupleBatches, so every
// stage pays one virtual call, one status check, and one allocation-free
// arena append pass per *batch* instead of per tuple.
//
// Usage:
//   CORGI_RETURN_NOT_OK(stream->StartEpoch(e));
//   TupleBatch batch(/*target_tuples=*/256);
//   while (stream->NextBatch(&batch)) { ... consume batch ... }
//   CORGI_RETURN_NOT_OK(stream->status());
//
// Contract:
//  * NextBatch clears *out, appends up to out->target_tuples() tuples in
//    the stream's emission order, and returns true iff at least one tuple
//    was appended. Batches may be short at epoch end (and implementations
//    may also cut them at internal buffer boundaries).
//  * The concatenation of all batches of an epoch is exactly the tuple
//    sequence the stream's per-tuple form emits — bit-identical order, so
//    seeded results do not depend on the transport batch size.
//  * After NextBatch returns false, check status() to distinguish a clean
//    epoch end from an error.
//  * Batch contents (arena spans) stay valid until the next NextBatch /
//    StartEpoch call with the same TupleBatch.

#pragma once

#include <cstdint>

#include "exec/tuple_batch.h"
#include "util/status.h"

namespace corgipile {

class BatchStream {
 public:
  virtual ~BatchStream() = default;

  virtual const char* name() const = 0;

  /// Begins epoch `epoch` (0-based). Re-randomizes as the strategy dictates.
  virtual Status StartEpoch(uint64_t epoch) = 0;

  /// Fills *out with the epoch's next batch; false at epoch end / on error.
  virtual bool NextBatch(TupleBatch* out) = 0;

  /// Error state of the last NextBatch()/StartEpoch().
  virtual Status status() const { return Status::OK(); }

  /// Cumulative corrupt-block quarantine counters (see BlockReadTolerance).
  virtual uint64_t QuarantinedBlocks() const { return 0; }
  virtual uint64_t SkippedTuples() const { return 0; }
};

}  // namespace corgipile
