// PerTupleAdapter: compatibility shim from the batched pipeline back to
// the old `const Tuple* Next()` protocol.
//
// Wraps any BatchStream and re-exposes the per-tuple pull interface so
// external callers written against the old TupleStream/operator protocol
// keep working during the transition. Each emitted pointer refers to a
// scratch tuple materialized from the current batch row and stays valid
// until the next Next() call — the old contract, preserved.

#pragma once

#include "exec/batch_stream.h"

namespace corgipile {

class PerTupleAdapter {
 public:
  /// `stream` is borrowed and must outlive the adapter. `batch_tuples` is
  /// the transport batch size used internally; it does not affect the
  /// emitted tuple order.
  explicit PerTupleAdapter(BatchStream* stream,
                           size_t batch_tuples = TupleBatch::kDefaultTargetTuples)
      : stream_(stream), batch_(batch_tuples) {}

  const char* name() const { return stream_->name(); }

  Status StartEpoch(uint64_t epoch) {
    batch_.Clear();
    pos_ = 0;
    return stream_->StartEpoch(epoch);
  }

  /// Next tuple of the epoch, or nullptr at epoch end / on error. The
  /// pointer stays valid until the next call. Check status() after nullptr.
  const Tuple* Next() {
    if (pos_ >= batch_.size()) {
      if (!stream_->NextBatch(&batch_)) return nullptr;
      pos_ = 0;
    }
    batch_.MaterializeTo(pos_++, &scratch_);
    return &scratch_;
  }

  Status status() const { return stream_->status(); }
  uint64_t QuarantinedBlocks() const { return stream_->QuarantinedBlocks(); }
  uint64_t SkippedTuples() const { return stream_->SkippedTuples(); }

  BatchStream* stream() { return stream_; }

 private:
  BatchStream* stream_;
  TupleBatch batch_;
  size_t pos_ = 0;
  Tuple scratch_;
};

}  // namespace corgipile
