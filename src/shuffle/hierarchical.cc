#include "shuffle/hierarchical.h"

#include <algorithm>
#include <numeric>

namespace corgipile {

HierarchicalBlockStream::HierarchicalBlockStream(const char* name,
                                                 BlockSource* source,
                                                 Options options)
    : name_(name), source_(source), options_(options),
      epoch_rng_(options.seed) {
  if (options_.buffer_tuples == 0) options_.buffer_tuples = 1;
}

Status HierarchicalBlockStream::StartEpoch(uint64_t epoch) {
  status_ = Status::OK();
  source_->Reset();
  const uint32_t n = source_->num_blocks();
  block_order_.resize(n);
  std::iota(block_order_.begin(), block_order_.end(), 0u);
  if (options_.shuffle_blocks) {
    Rng rng = epoch_rng_.Fork(epoch);
    rng.Shuffle(block_order_);
  }
  if (options_.blocks_per_epoch > 0 && options_.blocks_per_epoch < n) {
    block_order_.resize(options_.blocks_per_epoch);
  }
  next_block_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
  return Status::OK();
}

bool HierarchicalBlockStream::RefillBuffer() {
  buffer_.clear();
  buffer_pos_ = 0;
  while (next_block_ < block_order_.size()) {
    Status st = source_->ReadBlock(block_order_[next_block_], &buffer_);
    if (!st.ok()) {
      status_ = st;
      return false;
    }
    ++next_block_;
    if (!options_.shuffle_tuples) break;  // one block at a time
    if (buffer_.size() >= options_.buffer_tuples) break;
  }
  if (buffer_.empty()) return false;
  peak_buffer_ = std::max<uint64_t>(peak_buffer_, buffer_.size());
  if (options_.shuffle_tuples) {
    epoch_rng_.Shuffle(buffer_);
  }
  return true;
}

const Tuple* HierarchicalBlockStream::Next() {
  if (buffer_pos_ >= buffer_.size()) {
    if (!RefillBuffer()) return nullptr;
  }
  return &buffer_[buffer_pos_++];
}

uint64_t HierarchicalBlockStream::TuplesPerEpoch() const {
  if (options_.blocks_per_epoch == 0 ||
      options_.blocks_per_epoch >= source_->num_blocks()) {
    return source_->num_tuples();
  }
  uint64_t n = 0;
  for (uint32_t b = 0; b < options_.blocks_per_epoch; ++b) {
    n += source_->TuplesInBlock(b);  // blocks are near-uniform in size
  }
  return n;
}

std::unique_ptr<TupleStream> MakeNoShuffleStream(BlockSource* source) {
  HierarchicalBlockStream::Options opts;
  opts.shuffle_blocks = false;
  opts.shuffle_tuples = false;
  opts.buffer_tuples = 1;
  return std::make_unique<HierarchicalBlockStream>("no_shuffle", source, opts);
}

std::unique_ptr<TupleStream> MakeBlockOnlyStream(BlockSource* source,
                                                 uint64_t seed) {
  HierarchicalBlockStream::Options opts;
  opts.shuffle_blocks = true;
  opts.shuffle_tuples = false;
  opts.buffer_tuples = 1;
  opts.seed = seed;
  return std::make_unique<HierarchicalBlockStream>("block_only", source, opts);
}

std::unique_ptr<TupleStream> MakeCorgiPileStream(BlockSource* source,
                                                 uint64_t buffer_tuples,
                                                 uint64_t seed,
                                                 uint32_t blocks_per_epoch) {
  HierarchicalBlockStream::Options opts;
  opts.shuffle_blocks = true;
  opts.shuffle_tuples = true;
  opts.buffer_tuples = buffer_tuples;
  opts.seed = seed;
  opts.blocks_per_epoch = blocks_per_epoch;
  return std::make_unique<HierarchicalBlockStream>("corgipile", source, opts);
}

}  // namespace corgipile
