#include "shuffle/hierarchical.h"

#include <algorithm>
#include <numeric>

#include "iosim/fault_plane.h"

namespace corgipile {

HierarchicalBlockStream::HierarchicalBlockStream(const char* name,
                                                 BlockSource* source,
                                                 Options options)
    : WithStreamState<TupleStream>(name), source_(source), options_(options),
      epoch_rng_(options.seed), tuple_rng_(options.seed) {
  if (options_.buffer_tuples == 0) options_.buffer_tuples = 1;
}

Status HierarchicalBlockStream::StartEpoch(uint64_t epoch) {
  CORGI_INJECT_POINT("shuffle.start_epoch");
  clear_status();
  source_->Reset();
  const uint32_t n = source_->num_blocks();
  block_order_.resize(n);
  std::iota(block_order_.begin(), block_order_.end(), 0u);
  // Distinct deterministic streams per epoch: stream `epoch` drives the
  // block permutation and the high-bit sibling drives the buffer shuffles.
  // Nothing carries over between epochs, so a resumed run replays the same
  // order.
  if (options_.shuffle_blocks) {
    Rng rng = epoch_rng_.Fork(epoch);
    rng.Shuffle(block_order_);
  }
  tuple_rng_ = epoch_rng_.Fork(epoch ^ 0x8000000000000000ull);
  if (options_.blocks_per_epoch > 0 && options_.blocks_per_epoch < n) {
    block_order_.resize(options_.blocks_per_epoch);
  }
  next_block_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
  quarantine().BeginEpoch();
  return Status::OK();
}

bool HierarchicalBlockStream::RefillBuffer() {
  buffer_.clear();
  buffer_pos_ = 0;
  while (next_block_ < block_order_.size()) {
    const uint32_t b = block_order_[next_block_];
    // Read into a scratch vector so a block that fails mid-parse leaves no
    // partial tuples behind when it is quarantined.
    block_scratch_.clear();
    Status st = source_->ReadBlock(b, &block_scratch_);
    if (!st.ok()) {
      ++next_block_;
      Status admitted = quarantine().Admit(st, options_.tolerance,
                                           source_->TuplesInBlock(b),
                                           block_order_.size());
      if (!admitted.ok()) {
        set_status(std::move(admitted));
        return false;
      }
      continue;
    }
    ++next_block_;
    buffer_.insert(buffer_.end(),
                   std::make_move_iterator(block_scratch_.begin()),
                   std::make_move_iterator(block_scratch_.end()));
    if (!options_.shuffle_tuples) {
      if (!buffer_.empty()) break;  // one block at a time
      continue;  // quietly skip empty blocks
    }
    if (buffer_.size() >= options_.buffer_tuples) break;
  }
  if (buffer_.empty()) return false;
  peak_buffer_ = std::max<uint64_t>(peak_buffer_, buffer_.size());
  if (options_.shuffle_tuples) {
    tuple_rng_.Shuffle(buffer_);
  }
  return true;
}

const Tuple* HierarchicalBlockStream::Next() {
  if (buffer_pos_ >= buffer_.size()) {
    if (!RefillBuffer()) return nullptr;
  }
  return &buffer_[buffer_pos_++];
}

bool HierarchicalBlockStream::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full()) {
    if (buffer_pos_ >= buffer_.size()) {
      if (!RefillBuffer()) break;
    }
    const size_t take = std::min(buffer_.size() - buffer_pos_,
                                 out->target_tuples() - out->size());
    for (size_t i = 0; i < take; ++i) out->Append(buffer_[buffer_pos_ + i]);
    buffer_pos_ += take;
  }
  return !out->empty();
}

uint64_t HierarchicalBlockStream::TuplesPerEpoch() const {
  if (options_.blocks_per_epoch == 0 ||
      options_.blocks_per_epoch >= source_->num_blocks()) {
    return source_->num_tuples();
  }
  uint64_t n = 0;
  for (uint32_t b = 0; b < options_.blocks_per_epoch; ++b) {
    n += source_->TuplesInBlock(b);  // blocks are near-uniform in size
  }
  return n;
}

std::unique_ptr<TupleStream> MakeNoShuffleStream(BlockSource* source,
                                                 BlockReadTolerance tolerance) {
  HierarchicalBlockStream::Options opts;
  opts.shuffle_blocks = false;
  opts.shuffle_tuples = false;
  opts.buffer_tuples = 1;
  opts.tolerance = tolerance;
  return std::make_unique<HierarchicalBlockStream>("no_shuffle", source, opts);
}

std::unique_ptr<TupleStream> MakeBlockOnlyStream(BlockSource* source,
                                                 uint64_t seed,
                                                 BlockReadTolerance tolerance) {
  HierarchicalBlockStream::Options opts;
  opts.shuffle_blocks = true;
  opts.shuffle_tuples = false;
  opts.buffer_tuples = 1;
  opts.seed = seed;
  opts.tolerance = tolerance;
  return std::make_unique<HierarchicalBlockStream>("block_only", source, opts);
}

std::unique_ptr<TupleStream> MakeCorgiPileStream(BlockSource* source,
                                                 uint64_t buffer_tuples,
                                                 uint64_t seed,
                                                 uint32_t blocks_per_epoch,
                                                 BlockReadTolerance tolerance) {
  HierarchicalBlockStream::Options opts;
  opts.shuffle_blocks = true;
  opts.shuffle_tuples = true;
  opts.buffer_tuples = buffer_tuples;
  opts.seed = seed;
  opts.blocks_per_epoch = blocks_per_epoch;
  opts.tolerance = tolerance;
  return std::make_unique<HierarchicalBlockStream>("corgipile", source, opts);
}

}  // namespace corgipile
