#include "shuffle/hierarchical.h"

#include <algorithm>
#include <numeric>

namespace corgipile {

HierarchicalBlockStream::HierarchicalBlockStream(const char* name,
                                                 BlockSource* source,
                                                 Options options)
    : name_(name), source_(source), options_(options),
      epoch_rng_(options.seed), tuple_rng_(options.seed) {
  if (options_.buffer_tuples == 0) options_.buffer_tuples = 1;
}

Status HierarchicalBlockStream::StartEpoch(uint64_t epoch) {
  status_ = Status::OK();
  source_->Reset();
  const uint32_t n = source_->num_blocks();
  block_order_.resize(n);
  std::iota(block_order_.begin(), block_order_.end(), 0u);
  // Distinct deterministic streams per epoch: stream `epoch` drives the
  // block permutation and the high-bit sibling drives the buffer shuffles.
  // Nothing carries over between epochs, so a resumed run replays the same
  // order.
  if (options_.shuffle_blocks) {
    Rng rng = epoch_rng_.Fork(epoch);
    rng.Shuffle(block_order_);
  }
  tuple_rng_ = epoch_rng_.Fork(epoch ^ 0x8000000000000000ull);
  if (options_.blocks_per_epoch > 0 && options_.blocks_per_epoch < n) {
    block_order_.resize(options_.blocks_per_epoch);
  }
  next_block_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
  epoch_quarantined_ = 0;
  return Status::OK();
}

bool HierarchicalBlockStream::RefillBuffer() {
  buffer_.clear();
  buffer_pos_ = 0;
  while (next_block_ < block_order_.size()) {
    const uint32_t b = block_order_[next_block_];
    // Read into a scratch vector so a block that fails mid-parse leaves no
    // partial tuples behind when it is quarantined.
    block_scratch_.clear();
    Status st = source_->ReadBlock(b, &block_scratch_);
    if (!st.ok()) {
      const bool skippable = st.code() == StatusCode::kCorruption ||
                             st.code() == StatusCode::kIoError;
      if (!options_.tolerance.quarantine_corrupt_blocks || !skippable) {
        status_ = st;
        return false;
      }
      ++next_block_;
      ++quarantined_blocks_;
      ++epoch_quarantined_;
      skipped_tuples_ += source_->TuplesInBlock(b);
      const double bad_fraction =
          static_cast<double>(epoch_quarantined_) /
          static_cast<double>(std::max<size_t>(1, block_order_.size()));
      if (bad_fraction > options_.tolerance.max_bad_block_fraction) {
        status_ = Status::Corruption(
            "quarantined " + std::to_string(epoch_quarantined_) + "/" +
            std::to_string(block_order_.size()) +
            " blocks this epoch, over the tolerated fraction " +
            std::to_string(options_.tolerance.max_bad_block_fraction) +
            " (last error: " + st.message() + ")");
        return false;
      }
      continue;
    }
    ++next_block_;
    buffer_.insert(buffer_.end(),
                   std::make_move_iterator(block_scratch_.begin()),
                   std::make_move_iterator(block_scratch_.end()));
    if (!options_.shuffle_tuples) {
      if (!buffer_.empty()) break;  // one block at a time
      continue;  // quietly skip empty blocks
    }
    if (buffer_.size() >= options_.buffer_tuples) break;
  }
  if (buffer_.empty()) return false;
  peak_buffer_ = std::max<uint64_t>(peak_buffer_, buffer_.size());
  if (options_.shuffle_tuples) {
    tuple_rng_.Shuffle(buffer_);
  }
  return true;
}

const Tuple* HierarchicalBlockStream::Next() {
  if (buffer_pos_ >= buffer_.size()) {
    if (!RefillBuffer()) return nullptr;
  }
  return &buffer_[buffer_pos_++];
}

uint64_t HierarchicalBlockStream::TuplesPerEpoch() const {
  if (options_.blocks_per_epoch == 0 ||
      options_.blocks_per_epoch >= source_->num_blocks()) {
    return source_->num_tuples();
  }
  uint64_t n = 0;
  for (uint32_t b = 0; b < options_.blocks_per_epoch; ++b) {
    n += source_->TuplesInBlock(b);  // blocks are near-uniform in size
  }
  return n;
}

std::unique_ptr<TupleStream> MakeNoShuffleStream(BlockSource* source,
                                                 BlockReadTolerance tolerance) {
  HierarchicalBlockStream::Options opts;
  opts.shuffle_blocks = false;
  opts.shuffle_tuples = false;
  opts.buffer_tuples = 1;
  opts.tolerance = tolerance;
  return std::make_unique<HierarchicalBlockStream>("no_shuffle", source, opts);
}

std::unique_ptr<TupleStream> MakeBlockOnlyStream(BlockSource* source,
                                                 uint64_t seed,
                                                 BlockReadTolerance tolerance) {
  HierarchicalBlockStream::Options opts;
  opts.shuffle_blocks = true;
  opts.shuffle_tuples = false;
  opts.buffer_tuples = 1;
  opts.seed = seed;
  opts.tolerance = tolerance;
  return std::make_unique<HierarchicalBlockStream>("block_only", source, opts);
}

std::unique_ptr<TupleStream> MakeCorgiPileStream(BlockSource* source,
                                                 uint64_t buffer_tuples,
                                                 uint64_t seed,
                                                 uint32_t blocks_per_epoch,
                                                 BlockReadTolerance tolerance) {
  HierarchicalBlockStream::Options opts;
  opts.shuffle_blocks = true;
  opts.shuffle_tuples = true;
  opts.buffer_tuples = buffer_tuples;
  opts.seed = seed;
  opts.blocks_per_epoch = blocks_per_epoch;
  opts.tolerance = tolerance;
  return std::make_unique<HierarchicalBlockStream>("corgipile", source, opts);
}

}  // namespace corgipile
