// TupleStream: per-epoch stream of training tuples in strategy-defined
// order, plus the catalog of shuffling strategies the paper studies (§3–§4).
//
// TupleStream is the shuffle layer's face of the unified batched pipeline
// (exec/batch_stream.h): every strategy implements NextBatch natively and
// the batched form is the hot path. The per-tuple Next() protocol is kept
// as the golden reference the equivalence suite checks batches against,
// and for diagnostic consumers; an epoch's batches concatenate to exactly
// the per-tuple emission order.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "exec/batch_stream.h"
#include "iosim/device.h"
#include "iosim/sim_clock.h"
#include "storage/block_source.h"
#include "util/status.h"

namespace corgipile {

/// Streams tuples epoch by epoch. Batched usage:
///   stream->StartEpoch(e);
///   while (stream->NextBatch(&batch)) { ... }
///   CORGI_RETURN_NOT_OK(stream->status());
/// Per-tuple (reference) usage replaces the middle line with
///   while (const Tuple* t = stream->Next()) { ... }
class TupleStream : public BatchStream {
 public:
  /// Next tuple of the epoch, or nullptr at epoch end / on error. The
  /// pointer stays valid until the next call. Check status() after nullptr.
  /// Must not be interleaved with NextBatch() within one epoch.
  virtual const Tuple* Next() = 0;

  /// Generic batched pull: loops Next() into *out. Every concrete strategy
  /// overrides this with a native fill; the fallback keeps third-party
  /// TupleStream implementations working on the batched pipeline.
  bool NextBatch(TupleBatch* out) override;

  /// Approximate tuples emitted per epoch.
  virtual uint64_t TuplesPerEpoch() const = 0;

  /// One-time preparation cost already paid before epoch 0 (e.g. Shuffle
  /// Once's full shuffle), in simulated seconds. 0 for most strategies.
  virtual double PrepOverheadSeconds() const { return 0.0; }

  /// Extra disk bytes consumed by the strategy (Shuffle Once's copy).
  virtual uint64_t ExtraDiskBytes() const { return 0; }

  /// Peak in-memory buffer occupancy, in tuples.
  virtual uint64_t PeakBufferTuples() const { return 0; }
};

/// The data shuffling strategies evaluated in the paper.
enum class ShuffleStrategy {
  kNoShuffle,      ///< §3.2 — scan in storage order
  kShuffleOnce,    ///< §3.1 — one offline full shuffle, then scans
  kEpochShuffle,   ///< §3.1 — full shuffle before every epoch
  kSlidingWindow,  ///< §3.3 — TensorFlow's window sampling
  kMrs,            ///< §3.4 — Bismarck's multiplexed reservoir sampling
  kBlockOnly,      ///< §7.3 baseline — CorgiPile without tuple shuffle
  kCorgiPile,      ///< §4 — block shuffle + buffered tuple shuffle
};

const char* ShuffleStrategyToString(ShuffleStrategy s);
Result<ShuffleStrategy> ShuffleStrategyFromString(const std::string& name);

/// Options shared by all strategies.
struct ShuffleOptions {
  /// Buffer size as a fraction of the dataset (CorgiPile buffer, sliding
  /// window, MRS reservoir). Ignored when buffer_tuples > 0.
  double buffer_fraction = 0.1;
  /// Absolute buffer size in tuples; 0 = derive from buffer_fraction.
  uint64_t buffer_tuples = 0;
  uint64_t seed = 42;
  /// MRS: buffered tuples emitted per dropped (scanned) tuple once the
  /// reservoir is warm. Models the paper's second looping thread.
  double mrs_loop_ratio = 1.0;
  /// Degradation policy for corrupt/unreadable blocks (block-oriented
  /// strategies only: no_shuffle, block_only, corgipile).
  BlockReadTolerance tolerance;
  /// Shuffle Once / Epoch Shuffle over table-backed sources: directory for
  /// the shuffled copy, plus accounting to attach to it. Empty = the
  /// platform temp directory (std::filesystem::temp_directory_path()).
  std::string scratch_dir;
  DeviceProfile device = DeviceProfile::Memory();
  SimClock* clock = nullptr;
  IoStats* io_stats = nullptr;
};

/// Builds a stream of the given strategy over `source` (not owned; must
/// outlive the stream).
Result<std::unique_ptr<TupleStream>> MakeTupleStream(
    ShuffleStrategy strategy, BlockSource* source,
    const ShuffleOptions& options);

/// Resolves the effective buffer size in tuples for `options` over `source`.
uint64_t ResolveBufferTuples(const ShuffleOptions& options,
                             const BlockSource& source);

/// Resolves a scratch directory: `configured` if non-empty, else the
/// platform temp directory (never a hard-coded "/tmp").
std::string ResolveScratchDir(const std::string& configured);

}  // namespace corgipile
