// Multiplexed Reservoir Sampling shuffle (Bismarck, paper §3.4).
//
// Bismarck runs two concurrent threads against a shared model: thread 1
// scans sequentially with reservoir sampling — tuples *not* retained in the
// reservoir (including evicted ones) are fed to SGD; thread 2 loops over a
// copy of the reservoir, feeding buffered tuples to SGD repeatedly.
//
// We reproduce this with a deterministic interleave: once the reservoir is
// warm, each dropped (scanned) tuple emission is followed by
// `loop_ratio` emissions from the loop buffer, which is re-snapshotted from
// the reservoir each time it wraps. This keeps the defining property the
// paper analyzes — dropped tuples arrive in roughly storage order and
// buffered tuples repeat, skewing the distribution — without real threads.

#pragma once

#include <vector>

#include "shuffle/tuple_stream.h"
#include "util/rng.h"

namespace corgipile {

class MrsStream : public TupleStream {
 public:
  MrsStream(BlockSource* source, uint64_t reservoir_tuples, double loop_ratio,
            uint64_t seed);

  const char* name() const override { return "mrs"; }
  Status StartEpoch(uint64_t epoch) override;
  const Tuple* Next() override;
  /// Native batched fill: runs the multiplexed emission step inline per
  /// slot, one virtual call per batch.
  bool NextBatch(TupleBatch* out) override;
  Status status() const override { return status_; }
  uint64_t TuplesPerEpoch() const override;
  uint64_t PeakBufferTuples() const override { return peak_reservoir_; }

 private:
  /// One multiplexed emission (loop-buffer replay or reservoir drop) into
  /// *out; false when the epoch is exhausted. Shared by Next and NextBatch
  /// so the RNG sequence is identical in both transports.
  bool EmitNext(Tuple* out);
  bool PullScanned(Tuple* out);

  BlockSource* source_;
  uint64_t reservoir_capacity_;
  double loop_ratio_;
  Rng epoch_rng_;
  Rng rng_;

  std::vector<Tuple> reservoir_;  // B1
  std::vector<Tuple> loop_buf_;   // B2 (snapshot of B1)
  size_t loop_pos_ = 0;
  double loop_credit_ = 0.0;
  uint64_t seen_ = 0;

  std::vector<Tuple> block_buf_;
  size_t block_buf_pos_ = 0;
  uint32_t next_block_ = 0;
  Tuple current_;
  uint64_t peak_reservoir_ = 0;
  Status status_;
};

}  // namespace corgipile
