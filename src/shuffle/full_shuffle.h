// Shuffle Once and Epoch Shuffle (paper §3.1).
//
// Shuffle Once performs one offline full shuffle. Over a table-backed
// source this is done honestly: every tuple is fetched in random order
// (random page I/O, billed by the heap file) and written sequentially to a
// shuffled copy — the 2× disk overhead and the long preparation time the
// paper measures fall out of this directly. Epochs then scan the copy.
//
// Epoch Shuffle redoes a full shuffle before *every* epoch; we keep the
// shuffled data in memory for the epoch (the paper notes it needs a
// dataset-sized buffer).

#pragma once

#include <memory>
#include <vector>

#include "shuffle/tuple_stream.h"
#include "storage/block_source.h"
#include "util/rng.h"

namespace corgipile {

class ShuffleOnceStream : public TupleStream {
 public:
  ShuffleOnceStream(BlockSource* source, const ShuffleOptions& options);

  const char* name() const override { return "shuffle_once"; }
  Status StartEpoch(uint64_t epoch) override;
  const Tuple* Next() override;
  /// Native batched fill: forwards to the inner sequential scan over the
  /// shuffled copy, which drains whole decoded blocks into the batch.
  bool NextBatch(TupleBatch* out) override;
  Status status() const override { return status_; }
  uint64_t TuplesPerEpoch() const override { return source_->num_tuples(); }
  double PrepOverheadSeconds() const override { return prep_overhead_s_; }
  uint64_t ExtraDiskBytes() const override { return extra_disk_bytes_; }
  uint64_t PeakBufferTuples() const override;

 private:
  Status PrepareIfNeeded();

  BlockSource* source_;
  ShuffleOptions options_;
  bool prepared_ = false;
  double prep_overhead_s_ = 0.0;
  uint64_t extra_disk_bytes_ = 0;

  // Table-backed path: shuffled copy + stream over it.
  std::unique_ptr<Table> shuffled_table_;
  std::unique_ptr<TableBlockSource> shuffled_source_;
  // In-memory path: shuffled tuple vector.
  std::shared_ptr<std::vector<Tuple>> shuffled_tuples_;
  std::unique_ptr<InMemoryBlockSource> mem_source_;

  std::unique_ptr<TupleStream> inner_;
  Status status_;
};

class EpochShuffleStream : public TupleStream {
 public:
  EpochShuffleStream(BlockSource* source, const ShuffleOptions& options);

  const char* name() const override { return "epoch_shuffle"; }
  Status StartEpoch(uint64_t epoch) override;
  const Tuple* Next() override;
  /// Native batched fill: drains the epoch's shuffled vector in chunks.
  bool NextBatch(TupleBatch* out) override;
  Status status() const override { return status_; }
  uint64_t TuplesPerEpoch() const override { return source_->num_tuples(); }
  uint64_t PeakBufferTuples() const override { return source_->num_tuples(); }

 private:
  BlockSource* source_;
  ShuffleOptions options_;
  Rng epoch_rng_;
  std::vector<Tuple> epoch_data_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace corgipile
