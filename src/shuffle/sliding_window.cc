#include "shuffle/sliding_window.h"

#include <algorithm>

namespace corgipile {

SlidingWindowStream::SlidingWindowStream(BlockSource* source,
                                         uint64_t window_tuples, uint64_t seed)
    : source_(source), window_capacity_(std::max<uint64_t>(1, window_tuples)),
      epoch_rng_(seed), rng_(seed) {}

Status SlidingWindowStream::StartEpoch(uint64_t epoch) {
  status_ = Status::OK();
  source_->Reset();
  rng_ = epoch_rng_.Fork(epoch);
  window_.clear();
  window_.reserve(window_capacity_);
  block_buf_.clear();
  block_buf_pos_ = 0;
  next_block_ = 0;
  return Status::OK();
}

bool SlidingWindowStream::PullScanned(Tuple* out) {
  while (block_buf_pos_ >= block_buf_.size()) {
    if (next_block_ >= source_->num_blocks()) return false;
    block_buf_.clear();
    block_buf_pos_ = 0;
    Status st = source_->ReadBlock(next_block_++, &block_buf_);
    if (!st.ok()) {
      status_ = st;
      return false;
    }
  }
  *out = std::move(block_buf_[block_buf_pos_++]);
  return true;
}

bool SlidingWindowStream::EmitNext(Tuple* out) {
  // Fill phase: absorb scanned tuples until the window is full.
  Tuple incoming;
  while (window_.size() < window_capacity_) {
    if (!PullScanned(&incoming)) break;
    window_.push_back(std::move(incoming));
  }
  peak_window_ = std::max<uint64_t>(peak_window_, window_.size());
  if (window_.empty()) return false;

  if (PullScanned(&incoming)) {
    // Steady state: emit a random window slot, refill it with the incoming
    // tuple (paper §3.3 steps 2–3).
    const size_t j = static_cast<size_t>(rng_.Uniform(window_.size()));
    *out = std::move(window_[j]);
    window_[j] = std::move(incoming);
    return true;
  }
  // Drain phase: random removal until empty.
  const size_t j = static_cast<size_t>(rng_.Uniform(window_.size()));
  *out = std::move(window_[j]);
  window_[j] = std::move(window_.back());
  window_.pop_back();
  return true;
}

const Tuple* SlidingWindowStream::Next() {
  return EmitNext(&current_) ? &current_ : nullptr;
}

bool SlidingWindowStream::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full() && EmitNext(&current_)) out->Append(current_);
  return !out->empty();
}

}  // namespace corgipile
