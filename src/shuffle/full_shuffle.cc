#include "shuffle/full_shuffle.h"

#include <algorithm>

#include "shuffle/hierarchical.h"
#include "storage/table_shuffle.h"
#include "util/logging.h"

namespace corgipile {

ShuffleOnceStream::ShuffleOnceStream(BlockSource* source,
                                     const ShuffleOptions& options)
    : source_(source), options_(options) {}

Status ShuffleOnceStream::PrepareIfNeeded() {
  if (prepared_) return Status::OK();
  prepared_ = true;
  Rng rng(options_.seed ^ 0x50FF1E);

  const double clock_before =
      options_.clock != nullptr ? options_.clock->TotalElapsed() : 0.0;

  auto* table_source = dynamic_cast<TableBlockSource*>(source_);
  if (table_source != nullptr) {
    // Honest offline shuffle: random-order tuple fetches from the original
    // table (random page I/O) streamed into a sequential shuffled copy.
    Table* orig = table_source->table();
    const std::string copy_path = ResolveScratchDir(options_.scratch_dir) +
                                  "/" + orig->schema().name + ".shuffled.tbl";
    CORGI_ASSIGN_OR_RETURN(
        ShuffledCopyResult copy,
        BuildShuffledCopy(orig, copy_path, options_.seed ^ 0x50FF1E,
                          options_.device, options_.clock,
                          options_.io_stats));
    shuffled_table_ = std::move(copy.table);
    extra_disk_bytes_ = copy.extra_disk_bytes;
    const uint64_t block_bytes =
        table_source->pages_per_block() * orig->options().page_size;
    shuffled_source_ =
        std::make_unique<TableBlockSource>(shuffled_table_.get(), block_bytes);
    inner_ = MakeNoShuffleStream(shuffled_source_.get());
  } else {
    // Generic (in-memory) path: one full shuffle of a copied vector.
    auto tuples = std::make_shared<std::vector<Tuple>>();
    tuples->reserve(source_->num_tuples());
    for (uint32_t b = 0; b < source_->num_blocks(); ++b) {
      CORGI_RETURN_NOT_OK(source_->ReadBlock(b, tuples.get()));
    }
    rng.Shuffle(*tuples);
    shuffled_tuples_ = std::move(tuples);
    const uint64_t per_block =
        std::max<uint64_t>(1, source_->num_tuples() /
                                  std::max<uint32_t>(1, source_->num_blocks()));
    mem_source_ = std::make_unique<InMemoryBlockSource>(
        source_->schema(), shuffled_tuples_, per_block);
    inner_ = MakeNoShuffleStream(mem_source_.get());
  }

  if (options_.clock != nullptr) {
    prep_overhead_s_ = options_.clock->TotalElapsed() - clock_before;
  }
  return Status::OK();
}

Status ShuffleOnceStream::StartEpoch(uint64_t epoch) {
  status_ = PrepareIfNeeded();
  if (!status_.ok()) return status_;
  return inner_->StartEpoch(epoch);
}

const Tuple* ShuffleOnceStream::Next() {
  if (inner_ == nullptr) return nullptr;
  const Tuple* t = inner_->Next();
  if (t == nullptr) status_ = inner_->status();
  return t;
}

bool ShuffleOnceStream::NextBatch(TupleBatch* out) {
  if (inner_ == nullptr) {
    out->Clear();
    return false;
  }
  const bool more = inner_->NextBatch(out);
  if (!more) status_ = inner_->status();
  return more;
}

uint64_t ShuffleOnceStream::PeakBufferTuples() const {
  // The offline shuffle needs working memory for the permutation; epochs
  // themselves stream one block at a time.
  return inner_ != nullptr ? inner_->PeakBufferTuples() : 0;
}

EpochShuffleStream::EpochShuffleStream(BlockSource* source,
                                       const ShuffleOptions& options)
    : source_(source), options_(options), epoch_rng_(options.seed ^ 0xE90C) {}

Status EpochShuffleStream::StartEpoch(uint64_t epoch) {
  status_ = Status::OK();
  epoch_data_.clear();
  epoch_data_.reserve(source_->num_tuples());
  pos_ = 0;

  auto* table_source = dynamic_cast<TableBlockSource*>(source_);
  Rng rng = epoch_rng_.Fork(epoch);
  if (table_source != nullptr) {
    // A fresh full shuffle per epoch: fetch every tuple in random order
    // (random page I/O each time).
    Table* table = table_source->table();
    table->ResetReadCursor();
    std::vector<uint32_t> perm =
        rng.Permutation(static_cast<uint32_t>(table->num_tuples()));
    for (uint32_t idx : perm) {
      auto t = table->ReadTupleAt(idx);
      if (!t.ok()) {
        status_ = t.status();
        return status_;
      }
      epoch_data_.push_back(std::move(t).ValueOrDie());
    }
  } else {
    source_->Reset();
    for (uint32_t b = 0; b < source_->num_blocks(); ++b) {
      status_ = source_->ReadBlock(b, &epoch_data_);
      if (!status_.ok()) return status_;
    }
    rng.Shuffle(epoch_data_);
  }
  return Status::OK();
}

const Tuple* EpochShuffleStream::Next() {
  if (pos_ >= epoch_data_.size()) return nullptr;
  return &epoch_data_[pos_++];
}

bool EpochShuffleStream::NextBatch(TupleBatch* out) {
  out->Clear();
  const size_t take =
      std::min(epoch_data_.size() - pos_, out->target_tuples());
  for (size_t i = 0; i < take; ++i) out->Append(epoch_data_[pos_ + i]);
  pos_ += take;
  return !out->empty();
}

}  // namespace corgipile
