#include "shuffle/mrs.h"

#include <algorithm>
#include <cmath>

namespace corgipile {

MrsStream::MrsStream(BlockSource* source, uint64_t reservoir_tuples,
                     double loop_ratio, uint64_t seed)
    : source_(source),
      reservoir_capacity_(std::max<uint64_t>(1, reservoir_tuples)),
      loop_ratio_(loop_ratio), epoch_rng_(seed), rng_(seed) {}

Status MrsStream::StartEpoch(uint64_t epoch) {
  status_ = Status::OK();
  source_->Reset();
  rng_ = epoch_rng_.Fork(epoch);
  reservoir_.clear();
  reservoir_.reserve(reservoir_capacity_);
  loop_buf_.clear();
  loop_pos_ = 0;
  loop_credit_ = 0.0;
  seen_ = 0;
  block_buf_.clear();
  block_buf_pos_ = 0;
  next_block_ = 0;
  return Status::OK();
}

bool MrsStream::PullScanned(Tuple* out) {
  while (block_buf_pos_ >= block_buf_.size()) {
    if (next_block_ >= source_->num_blocks()) return false;
    block_buf_.clear();
    block_buf_pos_ = 0;
    Status st = source_->ReadBlock(next_block_++, &block_buf_);
    if (!st.ok()) {
      status_ = st;
      return false;
    }
  }
  *out = std::move(block_buf_[block_buf_pos_++]);
  return true;
}

bool MrsStream::EmitNext(Tuple* out) {
  // Thread-2 emissions owed from previous drops.
  if (loop_credit_ >= 1.0 && !loop_buf_.empty()) {
    loop_credit_ -= 1.0;
    if (loop_pos_ >= loop_buf_.size()) {
      // The loop wrapped: refresh the snapshot from the live reservoir.
      loop_buf_ = reservoir_;
      loop_pos_ = 0;
      if (loop_buf_.empty()) return false;
    }
    *out = loop_buf_[loop_pos_++];
    return true;
  }

  // Thread-1: scan with reservoir sampling until a tuple is dropped.
  Tuple t;
  for (;;) {
    if (!PullScanned(&t)) return false;  // epoch end; reservoir retained
    ++seen_;
    if (reservoir_.size() < reservoir_capacity_) {
      reservoir_.push_back(std::move(t));
      peak_reservoir_ = std::max<uint64_t>(peak_reservoir_, reservoir_.size());
      continue;  // absorbed, nothing to emit yet
    }
    if (loop_buf_.empty()) loop_buf_ = reservoir_;  // first warm snapshot
    const double keep_p =
        static_cast<double>(reservoir_capacity_) / static_cast<double>(seen_);
    if (rng_.NextDouble() < keep_p) {
      // t enters the reservoir; the evicted tuple is the dropped one.
      const size_t j = static_cast<size_t>(rng_.Uniform(reservoir_.size()));
      *out = std::move(reservoir_[j]);
      reservoir_[j] = std::move(t);
    } else {
      *out = std::move(t);  // t itself is dropped
    }
    loop_credit_ += loop_ratio_;
    return true;
  }
}

const Tuple* MrsStream::Next() {
  return EmitNext(&current_) ? &current_ : nullptr;
}

bool MrsStream::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full() && EmitNext(&current_)) out->Append(current_);
  return !out->empty();
}

uint64_t MrsStream::TuplesPerEpoch() const {
  const uint64_t m = source_->num_tuples();
  const uint64_t dropped = m > reservoir_capacity_ ? m - reservoir_capacity_ : 0;
  return dropped +
         static_cast<uint64_t>(std::floor(loop_ratio_ * static_cast<double>(dropped)));
}

}  // namespace corgipile
