// HierarchicalBlockStream implements the family of block-oriented
// strategies: No Shuffle, Block-Only Shuffle, and CorgiPile itself.
//
// Per epoch: visit blocks in storage order (No Shuffle) or in a fresh random
// permutation (Block-Only, CorgiPile); load blocks into an in-memory buffer
// of configurable capacity; optionally shuffle the buffered tuples before
// emitting them (CorgiPile's tuple-level shuffle, §4.1).
//
// All per-epoch randomness (block permutation and buffer shuffles) is a
// pure function of (seed, epoch), so a training run resumed from a
// checkpoint at epoch e replays exactly the tuple order the original run
// would have produced from e onward.
//
// With Options::tolerance.quarantine_corrupt_blocks set, a block whose read
// fails with kCorruption or kIoError is skipped and counted instead of
// killing the epoch; the epoch aborts only once the quarantined fraction
// exceeds tolerance.max_bad_block_fraction.

#pragma once

#include <vector>

#include "shuffle/tuple_stream.h"
#include "util/rng.h"
#include "util/stream_base.h"

namespace corgipile {

class HierarchicalBlockStream : public WithStreamState<TupleStream> {
 public:
  struct Options {
    bool shuffle_blocks = true;
    bool shuffle_tuples = true;
    /// Buffer capacity in tuples. The stream loads whole blocks until the
    /// buffer holds at least this many tuples (n blocks of b tuples in the
    /// paper's notation). When shuffle_tuples is false the buffer holds a
    /// single block.
    uint64_t buffer_tuples = 0;
    uint64_t seed = 42;
    /// If > 0, visit only this many blocks per epoch (Algorithm 1's
    /// sampled-epoch variant where an epoch is n of N blocks). 0 = visit
    /// every block each epoch (the PyTorch/PostgreSQL system behaviour).
    uint32_t blocks_per_epoch = 0;
    /// Degradation policy for blocks that fail to read.
    BlockReadTolerance tolerance;
  };

  HierarchicalBlockStream(const char* name, BlockSource* source,
                          Options options);

  Status StartEpoch(uint64_t epoch) override;
  const Tuple* Next() override;
  /// Native batched fill: drains the shuffled buffer in batch-sized chunks
  /// (no per-tuple virtual calls on the hot path).
  bool NextBatch(TupleBatch* out) override;
  uint64_t TuplesPerEpoch() const override;
  uint64_t PeakBufferTuples() const override { return peak_buffer_; }

 private:
  bool RefillBuffer();

  BlockSource* source_;
  Options options_;
  Rng epoch_rng_;
  Rng tuple_rng_;  // per-epoch fork used for buffer shuffles
  std::vector<uint32_t> block_order_;
  size_t next_block_ = 0;
  std::vector<Tuple> buffer_;
  std::vector<Tuple> block_scratch_;
  size_t buffer_pos_ = 0;
  uint64_t peak_buffer_ = 0;
};

/// Factories for the three named strategies.
std::unique_ptr<TupleStream> MakeNoShuffleStream(
    BlockSource* source, BlockReadTolerance tolerance = {});
std::unique_ptr<TupleStream> MakeBlockOnlyStream(
    BlockSource* source, uint64_t seed, BlockReadTolerance tolerance = {});
std::unique_ptr<TupleStream> MakeCorgiPileStream(
    BlockSource* source, uint64_t buffer_tuples, uint64_t seed,
    uint32_t blocks_per_epoch = 0, BlockReadTolerance tolerance = {});

}  // namespace corgipile
