#include "shuffle/tuple_stream.h"

#include <algorithm>
#include <filesystem>

#include "shuffle/full_shuffle.h"
#include "shuffle/hierarchical.h"
#include "shuffle/mrs.h"
#include "shuffle/sliding_window.h"

namespace corgipile {

bool TupleStream::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full()) {
    const Tuple* t = Next();
    if (t == nullptr) break;
    out->Append(*t);
  }
  return !out->empty();
}

std::string ResolveScratchDir(const std::string& configured) {
  if (!configured.empty()) return configured;
  std::error_code ec;
  std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
  if (ec) return ".";  // last resort: the working directory
  return tmp.string();
}

const char* ShuffleStrategyToString(ShuffleStrategy s) {
  switch (s) {
    case ShuffleStrategy::kNoShuffle: return "no_shuffle";
    case ShuffleStrategy::kShuffleOnce: return "shuffle_once";
    case ShuffleStrategy::kEpochShuffle: return "epoch_shuffle";
    case ShuffleStrategy::kSlidingWindow: return "sliding_window";
    case ShuffleStrategy::kMrs: return "mrs";
    case ShuffleStrategy::kBlockOnly: return "block_only";
    case ShuffleStrategy::kCorgiPile: return "corgipile";
  }
  return "?";
}

Result<ShuffleStrategy> ShuffleStrategyFromString(const std::string& name) {
  for (ShuffleStrategy s :
       {ShuffleStrategy::kNoShuffle, ShuffleStrategy::kShuffleOnce,
        ShuffleStrategy::kEpochShuffle, ShuffleStrategy::kSlidingWindow,
        ShuffleStrategy::kMrs, ShuffleStrategy::kBlockOnly,
        ShuffleStrategy::kCorgiPile}) {
    if (name == ShuffleStrategyToString(s)) return s;
  }
  return Status::InvalidArgument("unknown shuffle strategy '" + name + "'");
}

uint64_t ResolveBufferTuples(const ShuffleOptions& options,
                             const BlockSource& source) {
  if (options.buffer_tuples > 0) return options.buffer_tuples;
  const double frac = std::clamp(options.buffer_fraction, 0.0, 1.0);
  return std::max<uint64_t>(
      1, static_cast<uint64_t>(frac *
                               static_cast<double>(source.num_tuples())));
}

Result<std::unique_ptr<TupleStream>> MakeTupleStream(
    ShuffleStrategy strategy, BlockSource* source,
    const ShuffleOptions& options) {
  if (source == nullptr) return Status::InvalidArgument("null block source");
  const uint64_t buffer = ResolveBufferTuples(options, *source);
  switch (strategy) {
    case ShuffleStrategy::kNoShuffle:
      return MakeNoShuffleStream(source, options.tolerance);
    case ShuffleStrategy::kShuffleOnce:
      return std::unique_ptr<TupleStream>(
          std::make_unique<ShuffleOnceStream>(source, options));
    case ShuffleStrategy::kEpochShuffle:
      return std::unique_ptr<TupleStream>(
          std::make_unique<EpochShuffleStream>(source, options));
    case ShuffleStrategy::kSlidingWindow:
      return std::unique_ptr<TupleStream>(
          std::make_unique<SlidingWindowStream>(source, buffer, options.seed));
    case ShuffleStrategy::kMrs:
      return std::unique_ptr<TupleStream>(std::make_unique<MrsStream>(
          source, buffer, options.mrs_loop_ratio, options.seed));
    case ShuffleStrategy::kBlockOnly:
      return MakeBlockOnlyStream(source, options.seed, options.tolerance);
    case ShuffleStrategy::kCorgiPile:
      return MakeCorgiPileStream(source, buffer, options.seed,
                                 /*blocks_per_epoch=*/0, options.tolerance);
  }
  return Status::InvalidArgument("unknown strategy");
}

}  // namespace corgipile
