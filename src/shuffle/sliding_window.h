// Sliding-Window Shuffle (TensorFlow's Dataset.shuffle, paper §3.3).
//
// A window of W tuples is kept; each step emits a uniformly random element
// of the window and replaces it with the next tuple from the sequential
// scan. When the scan is exhausted the window drains in random order.

#pragma once

#include <vector>

#include "shuffle/tuple_stream.h"
#include "util/rng.h"

namespace corgipile {

class SlidingWindowStream : public TupleStream {
 public:
  SlidingWindowStream(BlockSource* source, uint64_t window_tuples,
                      uint64_t seed);

  const char* name() const override { return "sliding_window"; }
  Status StartEpoch(uint64_t epoch) override;
  const Tuple* Next() override;
  /// Native batched fill: runs the window emission step inline per slot,
  /// one virtual call per batch.
  bool NextBatch(TupleBatch* out) override;
  Status status() const override { return status_; }
  uint64_t TuplesPerEpoch() const override { return source_->num_tuples(); }
  uint64_t PeakBufferTuples() const override { return peak_window_; }

 private:
  /// One window emission (fill → steady state swap → drain) into *out;
  /// false when the epoch is exhausted. Shared by Next and NextBatch so
  /// the RNG sequence is identical in both transports.
  bool EmitNext(Tuple* out);
  /// Next tuple from the sequential block scan; false when exhausted.
  bool PullScanned(Tuple* out);

  BlockSource* source_;
  uint64_t window_capacity_;
  Rng epoch_rng_;
  Rng rng_;

  std::vector<Tuple> window_;
  std::vector<Tuple> block_buf_;
  size_t block_buf_pos_ = 0;
  uint32_t next_block_ = 0;
  Tuple current_;
  uint64_t peak_window_ = 0;
  Status status_;
};

}  // namespace corgipile
