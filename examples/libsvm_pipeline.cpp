// End-to-end data pipeline scenario: a LIBSVM dataset on disk (the format
// the paper's GLM datasets ship in) is converted to a TFRecord-style block
// file with an index (§5.1), trained with CorgiPile through the
// Dataset/DataLoader stack, and the learned model is saved, reloaded, and
// evaluated with a full binary-classification report.
//
// Run:  ./libsvm_pipeline [work_dir]

#include <cstdio>
#include <filesystem>

#include "dataloader/record_file.h"
#include "dataset/catalog.h"
#include "dataset/libsvm.h"
#include "ml/linear_models.h"
#include "ml/metrics.h"
#include "ml/serialize.h"
#include "ml/trainer.h"
#include "shuffle/hierarchical.h"

using namespace corgipile;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/corgipile_libsvm";
  std::filesystem::create_directories(dir);

  // 1. Produce a clustered LIBSVM file (stand-in for a downloaded dataset).
  DatasetSpec spec = CatalogLookup("susy", 0.2).ValueOrDie();
  Dataset dataset = GenerateDataset(spec, DataOrder::kClustered);
  const std::string libsvm_path = dir + "/susy.libsvm";
  CORGI_CHECK_OK(WriteLibsvmFile(*dataset.train, libsvm_path));
  std::printf("wrote %zu tuples to %s\n", dataset.train->size(),
              libsvm_path.c_str());

  // 2. Ingest it back and convert to a record file + block index.
  auto parsed = ReadLibsvmFile(libsvm_path);
  CORGI_CHECK_OK(parsed.status());
  std::printf("parsed: %zu tuples, inferred dim %u (%s)\n",
              parsed->tuples.size(), parsed->inferred_dim,
              parsed->looks_dense ? "dense" : "sparse");
  const std::string record_path = dir + "/susy.records";
  auto source = MaterializeRecordFile(dataset.MakeSchema(), parsed->tuples,
                                      record_path, /*block_bytes=*/8 * 1024);
  CORGI_CHECK_OK(source.status());
  std::printf("record file: %u blocks, index at %s.idx\n",
              (*source)->num_blocks(), record_path.c_str());

  // 3. Train with CorgiPile over the record blocks.
  auto stream = MakeCorgiPileStream(source->get(),
                                    (*source)->num_tuples() / 10, 42);
  SvmModel model(spec.dim);
  TrainerOptions opts;
  opts.epochs = 10;
  opts.lr.initial = 0.005;
  opts.test_set = dataset.test.get();
  auto result = Train(&model, stream.get(), opts);
  CORGI_CHECK_OK(result.status());
  std::printf("trained: final test accuracy %.4f\n",
              result->final_test_metric);

  // 4. Persist the model and reload it into a fresh instance.
  const std::string model_path = dir + "/susy.svm.model";
  CORGI_CHECK_OK(SaveModelParams(model, model_path));
  SvmModel reloaded(spec.dim);
  CORGI_CHECK_OK(LoadModelParams(&reloaded, model_path));

  // 5. Detailed evaluation of the reloaded model.
  const BinaryReport report = EvaluateBinaryDetailed(reloaded, *dataset.test);
  std::printf(
      "reloaded model on test set: acc=%.4f precision=%.4f recall=%.4f "
      "f1=%.4f auc=%.4f (tp=%llu fp=%llu tn=%llu fn=%llu)\n",
      report.accuracy(), report.precision(), report.recall(), report.f1(),
      report.auc, static_cast<unsigned long long>(report.tp),
      static_cast<unsigned long long>(report.fp),
      static_cast<unsigned long long>(report.tn),
      static_cast<unsigned long long>(report.fn));
  return 0;
}
