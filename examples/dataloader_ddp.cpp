// Deep-learning scenario: multi-worker CorgiPileDataset + DataLoader + DDP
// AllReduce training (§5), on a clustered ImageNet-like multiclass dataset.
// The worker threads stand in for the paper's one-process-per-GPU setup.
//
// Run:  ./dataloader_ddp [num_workers]

#include <cstdio>
#include <cstdlib>

#include "dataloader/distributed.h"
#include "dataset/catalog.h"
#include "ml/mlp.h"
#include "util/status.h"

using namespace corgipile;

int main(int argc, char** argv) {
  const uint32_t workers =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 4;

  DatasetSpec spec = CatalogLookup("cifar10", /*scale=*/0.5).ValueOrDie();
  Dataset dataset = GenerateDataset(spec, DataOrder::kClustered);
  std::printf("dataset: %s, %zu train tuples, %u classes (clustered)\n",
              spec.name.c_str(), dataset.train->size(), spec.num_classes);

  // Blocks of ~100 tuples stand in for the paper's TFRecord-style chunks.
  InMemoryBlockSource source(dataset.MakeSchema(), dataset.train, 100);

  MlpModel model(spec.dim, /*hidden=*/48, spec.num_classes);
  DistributedTrainerOptions opts;
  opts.num_workers = workers;
  opts.global_batch_size = 256;
  opts.buffer_fraction_total = 0.1;  // split evenly across workers
  opts.epochs = 10;
  opts.lr.initial = 0.2;
  opts.test_set = dataset.test.get();
  opts.label_type = LabelType::kMulticlass;

  auto result = TrainDistributed(&model, &source, opts);
  CORGI_CHECK_OK(result.status());

  std::printf("epoch  train_loss  test_acc\n");
  for (const auto& log : result->epochs) {
    std::printf("%5u  %10.4f  %8.4f\n", log.epoch, log.train_loss,
                log.test_metric);
  }
  std::printf("final accuracy with %u workers: %.4f\n", workers,
              result->final_test_metric);
  return 0;
}
