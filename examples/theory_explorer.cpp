// Theory scenario: measure the block-variance factor h_D of a dataset under
// different storage orders, evaluate Theorem 1's bound for varying buffer
// sizes, and print the §4.2 physical-time comparison against vanilla SGD.
//
// Run:  ./theory_explorer

#include <cstdio>

#include "core/theory.h"
#include "dataset/catalog.h"
#include "ml/linear_models.h"
#include "util/csv.h"

using namespace corgipile;

int main() {
  DatasetSpec spec = CatalogLookup("susy", /*scale=*/0.1).ValueOrDie();
  const uint64_t block = 100;

  std::printf("h_D (cluster factor) by storage order, %s, b=%llu:\n",
              spec.name.c_str(), static_cast<unsigned long long>(block));
  double h_d_clustered = 1.0, sigma_sq = 1.0;
  for (DataOrder order :
       {DataOrder::kClustered, DataOrder::kShuffled, DataOrder::kFeatureOrdered}) {
    Dataset ds = GenerateDataset(spec, order);
    InMemoryBlockSource src(ds.MakeSchema(), ds.train, block);
    LogisticRegression model(spec.dim);
    model.InitParams(0);
    auto gv = MeasureGradientVariance(model, &src).ValueOrDie();
    std::printf("  %-16s h_D=%7.3f  sigma^2=%.3f  block_var=%.5f\n",
                DataOrderToString(order), gv.h_d, gv.tuple_variance,
                gv.block_variance);
    if (order == DataOrder::kClustered) {
      h_d_clustered = gv.h_d;
      sigma_sq = gv.tuple_variance;
    }
  }

  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  const auto N = static_cast<uint32_t>((ds.train->size() + block - 1) / block);
  const uint64_t m = ds.train->size();

  std::printf("\nTheorem 1 bound (leading terms) after 10 epochs, vs buffer:\n");
  CsvTable tbl({"buffer_blocks_n", "alpha", "bound", "hdd_speedup_vs_vanilla"});
  for (uint32_t n : {1u, N / 10, N / 4, N / 2, N}) {
    if (n == 0) continue;
    auto f = ComputeTheoremFactors(n, N, block);
    const double bound = TheoremOneBound(f, h_d_clustered, sigma_sq, m, 10 * m);
    auto cmp = CompareToVanillaSgd(f, h_d_clustered, sigma_sq, /*epsilon=*/1e-3,
                                   /*tuple_bytes=*/100, block,
                                   DeviceProfile::Hdd());
    tbl.NewRow().Add(static_cast<uint64_t>(n)).Add(f.alpha, 4).Add(bound, 4).Add(cmp.speedup, 4);
  }
  std::printf("%s", tbl.ToAlignedText().c_str());
  std::printf(
      "\nLarger buffers push alpha toward 1, killing the (1-alpha)*h_D "
      "leading term; block reads amortize HDD seek latency, so CorgiPile "
      "dominates tuple-at-a-time vanilla SGD.\n");
  return 0;
}
