// Quickstart: train an SVM inside the database with CorgiPile, using the
// SQL-ish interface the paper proposes (§6):
//
//   SELECT * FROM table TRAIN BY model WITH params
//   SELECT * FROM table PREDICT BY model_id
//
// Run:  ./quickstart [data_dir]

#include <cstdio>
#include <filesystem>

#include "db/database.h"
#include "dataset/catalog.h"
#include "util/status.h"

using namespace corgipile;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/corgipile_quickstart";
  std::filesystem::create_directories(dir);

  // 1. Generate a clustered dataset (the hard case for SGD: all negative
  //    tuples stored before all positive ones) and load it as a table.
  DatasetSpec spec = CatalogLookup("higgs", /*scale=*/0.2).ValueOrDie();
  Dataset dataset = GenerateDataset(spec, DataOrder::kClustered);
  std::printf("dataset: %s, %zu train / %zu test tuples, dim %u (clustered)\n",
              spec.name.c_str(), dataset.train->size(), dataset.test->size(),
              spec.dim);

  // 2. Open a database on a simulated SSD and register the table.
  Database db(dir, DeviceProfile::Ssd());
  CORGI_CHECK_OK(db.RegisterDataset("higgs", dataset));

  // 3. Train with CorgiPile via SQL.
  auto trained = db.Execute(
      "SELECT * FROM higgs TRAIN BY svm WITH learning_rate=0.005, "
      "max_epoch_num=10, block_size=32KB, buffer_fraction=0.1");
  CORGI_CHECK_OK(trained.status());
  std::printf("%s\n", trained->c_str());

  // 4. Compare against a plain sequential scan (No Shuffle) — the paper's
  //    Figure 1 pathology.
  auto no_shuffle = db.Execute(
      "SELECT * FROM higgs TRAIN BY svm WITH learning_rate=0.005, "
      "max_epoch_num=10, block_size=32KB, strategy=no_shuffle");
  CORGI_CHECK_OK(no_shuffle.status());
  std::printf("(no shuffle) %s\n", no_shuffle->c_str());

  // 5. Run inference with the stored CorgiPile model, then pull a full
  //    evaluation report.
  auto predicted = db.Execute("SELECT * FROM higgs PREDICT BY svm_0");
  CORGI_CHECK_OK(predicted.status());
  std::printf("%s\n", predicted->c_str());

  auto evaluated = db.Execute("SELECT * FROM higgs EVALUATE BY svm_0");
  CORGI_CHECK_OK(evaluated.status());
  std::printf("%s\n", evaluated->c_str());
  return 0;
}
