// In-DB scenario: the paper's Figure 1 in miniature. Train an SVM on a
// clustered higgs-like table stored on simulated HDD and SSD, comparing
// shuffling strategies on (a) converged accuracy and (b) simulated
// end-to-end time including Shuffle Once's offline shuffle.
//
// Run:  ./indb_strategies [data_dir]

#include <cstdio>
#include <filesystem>

#include "db/database.h"
#include "dataset/catalog.h"
#include "util/csv.h"

using namespace corgipile;

int main(int argc, char** argv) {
  const std::string base = argc > 1 ? argv[1] : "/tmp/corgipile_indb";
  DatasetSpec spec = CatalogLookup("higgs", /*scale=*/0.2).ValueOrDie();
  Dataset dataset = GenerateDataset(spec, DataOrder::kClustered);

  CsvTable table({"device", "strategy", "final_acc", "prep_s", "epochs_s",
                  "end_to_end_s", "extra_disk_MB"});

  for (DeviceKind kind : {DeviceKind::kHdd, DeviceKind::kSsd}) {
    const std::string dir =
        base + "/" + std::string(DeviceKindToString(kind));
    std::filesystem::create_directories(dir);
    Database db(dir, DeviceProfile::ForKind(kind));
    CORGI_CHECK_OK(db.RegisterDataset("higgs", dataset));

    for (const char* strategy :
         {"no_shuffle", "block_only", "corgipile", "shuffle_once"}) {
      db.ResetAccounting();
      TrainStatement stmt;
      stmt.table_name = "higgs";
      stmt.model_kind = "svm";
      stmt.params = Params::Parse(std::string("learning_rate=0.005, "
                                              "max_epoch_num=5, "
                                              "block_size=32KB, strategy=") +
                                  strategy)
                        .ValueOrDie();
      auto r = db.Train(stmt);
      CORGI_CHECK_OK(r.status());
      table.NewRow()
          .Add(DeviceKindToString(kind))
          .Add(strategy)
          .Add(r->final_metric, 4)
          .Add(r->prep_seconds, 4)
          .Add(r->end_to_end_epochs_double(), 4)
          .Add(r->end_to_end_double_seconds, 4)
          .Add(static_cast<double>(r->extra_disk_bytes) / (1024.0 * 1024), 3);
    }
  }
  std::printf("%s", table.ToAlignedText().c_str());
  std::printf(
      "\nNote: CorgiPile matches Shuffle Once's accuracy without the "
      "offline-shuffle prep time or the 2x disk copy; No Shuffle is fastest "
      "but collapses on clustered data.\n");
  return 0;
}
