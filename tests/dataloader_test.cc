// Unit tests for dataloader/: dataset APIs, DataLoader batching,
// CorgiPileDataset sharding, distributed training, and the §5.2
// single-vs-multi-process data-order equivalence.

#include <gtest/gtest.h>

#include <set>

#include "core/distribution.h"
#include "dataloader/data_loader.h"
#include "dataloader/record_file.h"
#include "dataloader/dataset_api.h"
#include "dataloader/distributed.h"
#include "dataset/catalog.h"
#include "ml/mlp.h"
#include "shuffle/hierarchical.h"
#include "util/stats.h"

namespace corgipile {
namespace {

std::shared_ptr<std::vector<Tuple>> ClusteredToy(size_t n) {
  auto tuples = std::make_shared<std::vector<Tuple>>();
  for (size_t i = 0; i < n; ++i) {
    tuples->push_back(
        MakeDenseTuple(i, i < n / 2 ? -1.0 : 1.0, {static_cast<float>(i)}));
  }
  return tuples;
}

Schema ToySchema() { return Schema{"toy", 1, false, LabelType::kBinary, 2}; }

TEST(MapDatasetTest, RandomAccess) {
  auto tuples = ClusteredToy(50);
  InMemoryMapDataset ds(tuples);
  EXPECT_EQ(ds.size(), 50u);
  EXPECT_EQ(ds.Get(7).ValueOrDie().id, 7u);
  EXPECT_TRUE(ds.Get(50).status().IsOutOfRange());
}

TEST(CorgiPileDatasetTest, ShardsPartitionAllBlocks) {
  auto tuples = ClusteredToy(1000);
  InMemoryBlockSource src(ToySchema(), tuples, 50);  // 20 blocks
  const uint32_t P = 3;
  std::set<uint32_t> all_blocks;
  uint64_t total = 0;
  for (uint32_t w = 0; w < P; ++w) {
    CorgiPileDataset ds(&src, {/*buffer_tuples=*/100, /*seed=*/9});
    ASSERT_TRUE(ds.StartEpoch(0, w, P).ok());
    for (uint32_t b : ds.assigned_blocks()) {
      EXPECT_TRUE(all_blocks.insert(b).second) << "block assigned twice";
    }
    while (ds.Next() != nullptr) ++total;
    ASSERT_TRUE(ds.status().ok());
  }
  EXPECT_EQ(all_blocks.size(), 20u);
  EXPECT_EQ(total, 1000u);
}

TEST(CorgiPileDatasetTest, EpochsReshuffleBlocks) {
  auto tuples = ClusteredToy(1000);
  InMemoryBlockSource src(ToySchema(), tuples, 50);
  CorgiPileDataset ds(&src, {100, 9});
  ASSERT_TRUE(ds.StartEpoch(0, 0, 2).ok());
  auto e0 = ds.assigned_blocks();
  ASSERT_TRUE(ds.StartEpoch(1, 0, 2).ok());
  auto e1 = ds.assigned_blocks();
  EXPECT_NE(e0, e1);
}

TEST(CorgiPileDatasetTest, BadWorkerIdRejected) {
  auto tuples = ClusteredToy(100);
  InMemoryBlockSource src(ToySchema(), tuples, 10);
  CorgiPileDataset ds(&src, {10, 1});
  EXPECT_TRUE(ds.StartEpoch(0, 2, 2).IsInvalidArgument());
  EXPECT_TRUE(ds.StartEpoch(0, 0, 0).IsInvalidArgument());
}

TEST(DataLoaderTest, BatchesAndDropLast) {
  auto tuples = ClusteredToy(105);
  InMemoryBlockSource src(ToySchema(), tuples, 105);
  CorgiPileDataset ds(&src, {105, 3});
  DataLoader loader(&ds, {/*batch_size=*/20, 0, 1, /*drop_last=*/false});
  ASSERT_TRUE(loader.StartEpoch(0).ok());
  std::vector<Tuple> batch;
  int batches = 0;
  uint64_t total = 0;
  while (loader.NextBatch(&batch).ValueOrDie()) {
    ++batches;
    total += batch.size();
  }
  EXPECT_EQ(batches, 6);  // 5 full + 1 short
  EXPECT_EQ(total, 105u);

  DataLoader dropping(&ds, {20, 0, 1, /*drop_last=*/true});
  ASSERT_TRUE(dropping.StartEpoch(1).ok());
  batches = 0;
  while (dropping.NextBatch(&batch).ValueOrDie()) ++batches;
  EXPECT_EQ(batches, 5);
}

TEST(DistributedOrderTest, MultiProcessOrderMatchesSingleProcessQuality) {
  // §5.2: multi-process CorgiPile with per-worker buffers of BS/P induces a
  // global order statistically equivalent to single-process CorgiPile with
  // buffer BS. Compare randomness stats of both against clustered data.
  const size_t n = 2000;
  auto tuples = ClusteredToy(n);
  InMemoryBlockSource src(ToySchema(), tuples, 50);  // 40 blocks

  auto multi = TraceDistributedOrder(&src, /*workers=*/2,
                                     /*buffer_per_worker=*/100,
                                     /*microbatch=*/32, /*seed=*/3, 0);
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(multi->size(), n);
  std::set<uint64_t> uniq(multi->begin(), multi->end());
  EXPECT_EQ(uniq.size(), n);

  auto single_stream = MakeCorgiPileStream(&src, /*buffer_tuples=*/200, 3);
  auto single_trace = TraceEpoch(single_stream.get(), 0);
  ASSERT_TRUE(single_trace.ok());

  EmissionTrace multi_trace;
  multi_trace.ids = *multi;
  for (uint64_t id : *multi) {
    multi_trace.labels.push_back(id < n / 2 ? -1.0 : 1.0);
  }
  auto multi_stats = ComputeRandomnessStats(multi_trace, 20);
  auto single_stats = ComputeRandomnessStats(*single_trace, 20);

  EXPECT_LT(std::abs(multi_stats.position_id_correlation), 0.4);
  EXPECT_GT(multi_stats.mean_normalized_displacement, 0.15);
  // Label mixing quality within 0.2 of the single-process runs.
  EXPECT_NEAR(multi_stats.mean_window_label_imbalance,
              single_stats.mean_window_label_imbalance, 0.2);
}

TEST(DistributedTrainerTest, LearnsOnClusteredMulticlass) {
  auto spec = CatalogLookup("cifar10", 0.2).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  InMemoryBlockSource src(ds.MakeSchema(), ds.train, 100);
  MlpModel model(spec.dim, 32, spec.num_classes);
  DistributedTrainerOptions opts;
  opts.num_workers = 4;
  opts.global_batch_size = 256;
  opts.epochs = 8;
  opts.lr.initial = 0.2;
  opts.test_set = ds.test.get();
  opts.label_type = LabelType::kMulticlass;
  auto result = TrainDistributed(&model, &src, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->final_test_metric, 0.5);
  EXPECT_EQ(result->epochs.size(), 8u);
  EXPECT_EQ(result->epochs[0].tuples_seen, ds.train->size());
}

TEST(DistributedTrainerTest, DeterministicGivenSeed) {
  auto spec = CatalogLookup("cifar10", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  InMemoryBlockSource src(ds.MakeSchema(), ds.train, 100);
  DistributedTrainerOptions opts;
  opts.num_workers = 3;
  opts.global_batch_size = 96;
  opts.epochs = 2;
  opts.lr.initial = 0.05;
  opts.test_set = ds.test.get();

  MlpModel m1(spec.dim, 16, spec.num_classes);
  MlpModel m2(spec.dim, 16, spec.num_classes);
  auto r1 = TrainDistributed(&m1, &src, opts);
  auto r2 = TrainDistributed(&m2, &src, opts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(m1.params().size(), m2.params().size());
  for (size_t i = 0; i < m1.params().size(); ++i) {
    ASSERT_DOUBLE_EQ(m1.params()[i], m2.params()[i]);
  }
}

TEST(DistributedTrainerTest, WorkerCountDoesNotChangeQualityMuch) {
  // The paper's claim: P-worker CorgiPile converges like single-process.
  auto spec = CatalogLookup("cifar10", 0.1).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  InMemoryBlockSource src(ds.MakeSchema(), ds.train, 50);
  auto run = [&](uint32_t workers) {
    MlpModel model(spec.dim, 24, spec.num_classes);
    DistributedTrainerOptions opts;
    opts.num_workers = workers;
    opts.global_batch_size = 128;
    opts.epochs = 6;
    opts.lr.initial = 0.2;
    opts.test_set = ds.test.get();
    auto r = TrainDistributed(&model, &src, opts);
    EXPECT_TRUE(r.ok());
    return r->final_test_metric;
  };
  const double p1 = run(1);
  const double p4 = run(4);
  EXPECT_NEAR(p1, p4, 0.08);
  EXPECT_GT(p4, 0.4);
}

TEST(DistributedTrainerTest, TrainsOverRecordFileSource) {
  // The full §5 path: binary record file + block index + 4 workers.
  auto spec = CatalogLookup("cifar10", 0.1).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  const std::string path = testing::TempDir() + "ddp_records.bin";
  auto source = MaterializeRecordFile(ds.MakeSchema(), *ds.train, path,
                                      /*block_bytes=*/8 * 1024);
  ASSERT_TRUE(source.ok());
  MlpModel model(spec.dim, 24, spec.num_classes);
  DistributedTrainerOptions opts;
  opts.num_workers = 4;
  opts.global_batch_size = 128;
  opts.epochs = 6;
  opts.lr.initial = 0.2;
  opts.test_set = ds.test.get();
  auto result = TrainDistributed(&model, source->get(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->final_test_metric, 0.4);
  EXPECT_EQ(result->epochs[0].tuples_seen, ds.train->size());
  std::remove(path.c_str());
  std::remove((path + ".idx").c_str());
}

TEST(DistributedTrainerTest, InvalidArguments) {
  auto tuples = ClusteredToy(100);
  InMemoryBlockSource src(ToySchema(), tuples, 10);
  MlpModel model(1, 4, 2);
  DistributedTrainerOptions opts;
  opts.num_workers = 8;
  opts.global_batch_size = 4;  // smaller than worker count
  EXPECT_TRUE(
      TrainDistributed(&model, &src, opts).status().IsInvalidArgument());
  EXPECT_TRUE(
      TrainDistributed(nullptr, &src, opts).status().IsInvalidArgument());
}

}  // namespace
}  // namespace corgipile
