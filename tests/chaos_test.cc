// Chaos suite (DESIGN.md §12): the process-wide FaultPlane, the seeded
// ChaosRunner with kill-and-restart, crash-recovery bit-exactness of the
// checkpointed TRAIN pipeline, graceful serving degradation (circuit
// breaker / hedged retry / brownout), and channel/allocation fault
// injection. Every assertion carries the scenario name and RNG seed so a
// red run reproduces with one command.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "db/database.h"
#include "db/model_store.h"
#include "db/query.h"
#include "db/block_shuffle_op.h"
#include "db/tuple_shuffle_op.h"
#include "dataset/catalog.h"
#include "dataset/loader.h"
#include "exec/shard_scan.h"
#include "iosim/chaos.h"
#include "iosim/fault_plane.h"
#include "iosim/sim_clock.h"
#include "ml/linear_models.h"
#include "serve/circuit_breaker.h"
#include "serve/inference_engine.h"
#include "util/rng.h"

namespace corgipile {
namespace {

std::string MakeTempDir(const std::string& name) {
  std::string dir = testing::TempDir() + name;
  std::filesystem::create_directories(dir);
  return dir;
}

ChaosRule MakeRule(const char* point, ChaosAction action, uint64_t from_hit,
                   uint64_t repeat = 1) {
  ChaosRule rule;
  rule.point = point;
  rule.action = action;
  rule.from_hit = from_hit;
  rule.repeat = repeat;
  return rule;
}

// --- FaultPlane unit behaviour -------------------------------------------

TEST(FaultPlaneTest, DisarmedHooksAreNoOps) {
  ASSERT_FALSE(FaultPlane::ProcessArmed());
  CORGI_CRASH_POINT("nowhere");
  // CORGI_INJECT_POINT would return from this void test body; call the
  // plane directly instead.
  EXPECT_TRUE(FaultPlane::Process()->OnPoint("nowhere").ok());
  EXPECT_EQ(FaultPlane::Process()->Hits("nowhere"), 0u);
}

TEST(FaultPlaneTest, FailRuleFiresAtScriptedHitWithSeedInMessage) {
  FaultPlane* plane = FaultPlane::Process();
  plane->Arm("fail-at-2", 31, {MakeRule("p.read", ChaosAction::kFail, 2)});
  for (uint64_t hit = 0; hit < 5; ++hit) {
    Status st = plane->OnPoint("p.read");
    if (hit == 2) {
      EXPECT_TRUE(st.IsIoError()) << "scenario=fail-at-2 seed=31 hit=" << hit;
      // The injected message embeds scenario + seed for repro.
      EXPECT_NE(st.ToString().find("scenario=fail-at-2"), std::string::npos)
          << st.ToString();
      EXPECT_NE(st.ToString().find("seed=31"), std::string::npos)
          << st.ToString();
    } else {
      EXPECT_TRUE(st.ok()) << "scenario=fail-at-2 seed=31 hit=" << hit;
    }
  }
  EXPECT_EQ(plane->Hits("p.read"), 5u);
  EXPECT_EQ(plane->StatsSnapshot().injected_failures, 1u);
  plane->Disarm();
  EXPECT_FALSE(FaultPlane::ProcessArmed());
}

TEST(FaultPlaneTest, StallChargesChaosStallOnArmedClock) {
  SimClock clock;
  ChaosRule stall = MakeRule("p.slow", ChaosAction::kStall, 0, 2);
  stall.stall_seconds = 1.5;
  FaultPlane* plane = FaultPlane::Process();
  plane->Arm("stalls", 7, {stall}, &clock);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(plane->OnPoint("p.slow").ok()) << "scenario=stalls seed=7";
  }
  plane->Disarm();
  EXPECT_DOUBLE_EQ(clock.Elapsed(TimeCategory::kChaosStall), 3.0);
}

TEST(FaultPlaneTest, KillThrowsOnceOnArmingThreadOnly) {
  FaultPlane* plane = FaultPlane::Process();
  plane->Arm("kill-once", 13, {MakeRule("p.crash", ChaosAction::kKill, 1)});

  EXPECT_TRUE(plane->OnPoint("p.crash").ok());  // hit 0
  bool crashed = false;
  try {
    (void)plane->OnPoint("p.crash");  // hit 1 → ChaosCrash
  } catch (const ChaosCrash& crash) {
    crashed = true;
    EXPECT_EQ(crash.point, "p.crash");
    EXPECT_EQ(crash.hit, 1u);
    EXPECT_EQ(crash.seed, 13u);
  }
  EXPECT_TRUE(crashed) << "scenario=kill-once seed=13";
  // One-shot: the consumed kill rule lets later hits pass.
  EXPECT_TRUE(plane->OnPoint("p.crash").ok());

  // A kill matching on a non-arming thread must not throw (it would
  // std::terminate) — it is suppressed and counted.
  plane->Arm("kill-wrong-thread", 13,
             {MakeRule("p.crash", ChaosAction::kKill, 0)});
  std::thread worker([&] { EXPECT_TRUE(plane->OnPoint("p.crash").ok()); });
  worker.join();
  EXPECT_EQ(plane->StatsSnapshot().suppressed_kills, 1u)
      << "scenario=kill-wrong-thread seed=13";
  plane->Disarm();
}

TEST(FaultPlaneTest, VoidPointsDropFailButApplyStalls) {
  SimClock clock;
  ChaosRule fail = MakeRule("p.void", ChaosAction::kFail, 0, 0);
  ChaosRule stall = MakeRule("p.void", ChaosAction::kStall, 0, 1);
  stall.stall_seconds = 0.25;
  FaultPlane* plane = FaultPlane::Process();
  plane->Arm("void-points", 3, {fail, stall}, &clock);
  plane->OnPointVoid("p.void");
  plane->OnPointVoid("p.void");
  const FaultPlaneStats stats = plane->StatsSnapshot();
  plane->Disarm();
  EXPECT_EQ(stats.dropped_failures, 2u) << "scenario=void-points seed=3";
  EXPECT_EQ(stats.injected_failures, 0u);
  EXPECT_DOUBLE_EQ(clock.Elapsed(TimeCategory::kChaosStall), 0.25);
}

TEST(FaultPlaneTest, ProbabilisticRulesReplayBitForBit) {
  ChaosRule rule = MakeRule("p.prob", ChaosAction::kFail, 0, 0);
  rule.probability = 0.35;
  FaultPlane* plane = FaultPlane::Process();

  auto run = [&](uint64_t seed) {
    plane->Arm("prob-replay", seed, {rule});
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(!plane->OnPoint("p.prob").ok());
    plane->Disarm();
    return fired;
  };
  const auto a = run(99), b = run(99), c = run(100);
  EXPECT_EQ(a, b) << "scenario=prob-replay seed=99";
  EXPECT_NE(a, c) << "scenario=prob-replay seeds 99 vs 100";
  const size_t fired = std::count(a.begin(), a.end(), true);
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, a.size());
}

// --- ChaosRunner ----------------------------------------------------------

TEST(ChaosRunnerTest, RunCatchesScriptedCrash) {
  ChaosScenario sc;
  sc.name = "runner-crash";
  sc.seed = 5;
  sc.rules = {MakeRule("body.step", ChaosAction::kKill, 1)};
  ChaosReport report = ChaosRunner::Run(sc, []() -> Status {
    for (int i = 0; i < 3; ++i) {
      CORGI_INJECT_POINT("body.step");
    }
    return Status::OK();
  });
  EXPECT_EQ(report.crashes, 1u) << sc.Describe();
  EXPECT_EQ(report.attempts, 1u) << sc.Describe();
  ASSERT_EQ(report.crash_points.size(), 1u) << sc.Describe();
  EXPECT_EQ(report.crash_points[0], "body.step");
  EXPECT_TRUE(report.final_status.IsCancelled()) << report.Describe();
  EXPECT_FALSE(FaultPlane::ProcessArmed());  // runner disarms on exit
}

TEST(ChaosRunnerTest, RunToCompletionRestartsUntilClean) {
  ChaosScenario sc;
  sc.name = "runner-restart";
  sc.seed = 17;
  // Two scripted crashes at different progress points: three attempts.
  // Hit counters are cumulative across attempts (attempt 1 burns hits 0-2,
  // attempt 2 starts at hit 3), so the second kill lands inside attempt 2.
  sc.rules = {MakeRule("body.step", ChaosAction::kKill, 2),
              MakeRule("body.step", ChaosAction::kKill, 5)};
  uint32_t attempts_seen = 0;
  ChaosReport report = ChaosRunner::RunToCompletion(
      sc, [&](uint32_t attempt) -> Status {
        attempts_seen = attempt + 1;
        for (int i = 0; i < 4; ++i) {
          CORGI_INJECT_POINT("body.step");
        }
        return Status::OK();
      });
  EXPECT_TRUE(report.final_status.ok()) << report.Describe();
  EXPECT_EQ(report.crashes, 2u) << sc.Describe();
  EXPECT_EQ(report.attempts, 3u) << sc.Describe();
  EXPECT_EQ(attempts_seen, 3u) << sc.Describe();
  // 3 hits in attempt 1 (crash at hit 2) + 3 in attempt 2 (crash at 5)
  // + 4 in the clean attempt 3.
  EXPECT_EQ(report.hits.at("body.step"), 10u) << sc.Describe();
}

TEST(ChaosRunnerTest, BodyErrorEndsLoopWithoutRestart) {
  ChaosScenario sc;
  sc.name = "runner-real-error";
  sc.seed = 1;
  uint32_t calls = 0;
  ChaosReport report = ChaosRunner::RunToCompletion(
      sc, [&](uint32_t) -> Status {
        ++calls;
        return Status::Internal("real failure, not a scripted crash");
      });
  EXPECT_EQ(calls, 1u) << sc.Describe();
  EXPECT_TRUE(report.final_status.IsInternal()) << report.Describe();
}

// --- Kill-and-restart: bit-identical recovery of TRAIN --------------------

// One TRAIN configuration shared by the reference and chaos runs. The
// pipeline must be fully deterministic in (seed, epoch): double buffering
// is off so every chaos point fires on the arming thread, and the buffer
// pool is disabled so storage reads repeat every epoch.
Params TrainParams(uint64_t seed) {
  Params p = Params::Parse(
                 "learning_rate=0.005, max_epoch_num=6, block_size=16KB, "
                 "buffer_fraction=0.1, double_buffer=false")
                 .ValueOrDie();
  p.Set("seed", std::to_string(seed));
  return p;
}

std::vector<double> ReferenceParams(const Dataset& ds, uint64_t seed,
                                    const std::string& tag) {
  const std::string dir = MakeTempDir(tag);
  Database db(dir, DeviceProfile::Ssd(), /*buffer_pool_bytes=*/0);
  EXPECT_TRUE(db.RegisterDataset("susy", ds).ok());
  TrainStatement stmt;
  stmt.table_name = "susy";
  stmt.model_kind = "lr";
  stmt.params = TrainParams(seed);
  auto r = db.Train(stmt);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return {};
  auto model = db.models().Get(r->model_id);
  EXPECT_TRUE(model.ok());
  return model.ok() ? (*model)->params() : std::vector<double>{};
}

struct KillCase {
  const char* tag;
  const char* point;
  uint64_t from_hit;
  /// Expected resumed_from_epoch of the final attempt; -1 = don't check
  /// (mid-read kills depend on how many storage hits one epoch takes).
  int expect_resume;
};

TEST(ChaosKillRestartTest, RecoveredParamsBitIdenticalToUninterruptedRun) {
  auto spec = CatalogLookup("susy", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);

  const uint64_t kSeeds[] = {7, 21, 77};
  for (const uint64_t seed : kSeeds) {
    const std::vector<double> reference =
        ReferenceParams(ds, seed, "chaos_ref_" + std::to_string(seed));
    ASSERT_FALSE(reference.empty());

    const KillCase cases[] = {
        // Dies mid-epoch inside the storage read path.
        {"mid-read", "storage.heapfile.read", 7 + seed % 11, -1},
        // Dies after an epoch's updates but before its checkpoint: the
        // restart must replay that epoch from the previous checkpoint.
        {"epoch-end", "db.sgd.epoch_end", 1 + seed % 3,
         static_cast<int>(1 + seed % 3)},
        // Dies inside checkpoint save, between writing the temp file and
        // the rename: the previous checkpoint must survive intact.
        {"torn-ckpt", "storage.atomic_write.before_rename", seed % 2,
         static_cast<int>(seed % 2)},
    };
    for (const KillCase& kc : cases) {
      ChaosScenario sc;
      sc.name = std::string("kill-restart/") + kc.tag;
      sc.seed = seed;
      sc.rules = {MakeRule(kc.point, ChaosAction::kKill, kc.from_hit)};

      const std::string dir = MakeTempDir("chaos_" + std::string(kc.tag) +
                                          "_" + std::to_string(seed));
      {
        Database setup(dir, DeviceProfile::Ssd(), 0);
        ASSERT_TRUE(setup.RegisterDataset("susy", ds).ok()) << sc.Describe();
      }
      const std::string ckpt = dir + "/train.ckpt";
      std::filesystem::remove(ckpt);

      std::vector<double> recovered;
      uint32_t last_resumed = 0;
      auto body = [&](uint32_t) -> Status {
        // A fresh Database per attempt = the restarted process: state
        // comes only from heapfiles and the durable checkpoint.
        Database db(dir, DeviceProfile::Ssd(), 0);
        CORGI_RETURN_NOT_OK(db.Attach("susy"));
        TrainStatement stmt;
        stmt.table_name = "susy";
        stmt.model_kind = "lr";
        stmt.params = TrainParams(seed);
        stmt.params.Set("checkpoint", ckpt);
        stmt.params.Set("resume", "true");
        CORGI_ASSIGN_OR_RETURN(InDbTrainResult r, db.Train(stmt));
        last_resumed = r.resumed_from_epoch;
        CORGI_ASSIGN_OR_RETURN(auto model, db.models().Get(r.model_id));
        recovered = model->params();
        return Status::OK();
      };
      const ChaosReport report = ChaosRunner::RunToCompletion(sc, body);

      ASSERT_TRUE(report.final_status.ok())
          << sc.Describe() << ": " << report.Describe();
      EXPECT_GE(report.crashes, 1u) << sc.Describe();
      EXPECT_EQ(report.attempts, report.crashes + 1) << sc.Describe();
      // The acceptance bar: params of the killed-and-restarted run are
      // bit-identical to the uninterrupted reference.
      EXPECT_EQ(recovered, reference) << sc.Describe();
      if (kc.expect_resume >= 0) {
        EXPECT_EQ(last_resumed, static_cast<uint32_t>(kc.expect_resume))
            << sc.Describe();
      }
    }
  }
}

// --- Channel-send and allocation failures ---------------------------------

struct PipelineFixture {
  Dataset ds;
  std::unique_ptr<Table> table;

  explicit PipelineFixture(const std::string& tag) {
    auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
    ds = GenerateDataset(spec, DataOrder::kClustered);
    auto t = MaterializeTrainTable(ds, testing::TempDir() + tag + ".tbl", 2048);
    table = std::move(t).ValueOrDie();
  }
};

TEST(ChannelChaosTest, InjectedSendFailureSurfacesCleanlyWithoutHang) {
  PipelineFixture f("chan_chaos");
  ChaosScenario sc;
  sc.name = "channel-send-fail";
  sc.seed = 11;
  ChaosRule rule = MakeRule("channel.tuple_shuffle.push", ChaosAction::kFail, 1);
  rule.code = StatusCode::kResourceExhausted;
  sc.rules = {rule};

  const ChaosReport report = ChaosRunner::Run(sc, [&]() -> Status {
    BlockShuffleOp::Options bopts;
    bopts.block_size_bytes = 2 * 2048;
    BlockShuffleOp block_op(f.table.get(), bopts);
    TupleShuffleOp::Options topts;
    topts.buffer_tuples = 32;
    topts.double_buffer = true;  // the producer thread owns the sends
    TupleShuffleOp op(&block_op, topts);
    CORGI_RETURN_NOT_OK(op.Init());
    uint64_t delivered = 0;
    while (op.Next() != nullptr) ++delivered;
    Status st = op.status();
    op.Close();
    EXPECT_LT(delivered, f.ds.train->size()) << sc.Describe();
    return st;  // the injected failure, delivered through the channel
  });
  EXPECT_TRUE(report.final_status.IsResourceExhausted()) << report.Describe();
  EXPECT_EQ(report.plane.injected_failures, 1u) << sc.Describe();
  EXPECT_EQ(report.crashes, 0u) << sc.Describe();
}

TEST(AllocChaosTest, ShuffleBufferAllocationFailureIsACleanError) {
  PipelineFixture f("alloc_chaos");
  ChaosScenario sc;
  sc.name = "tuple-shuffle-alloc-fail";
  sc.seed = 23;
  ChaosRule rule = MakeRule("db.tuple_shuffle.fill", ChaosAction::kFail, 1);
  rule.code = StatusCode::kResourceExhausted;
  sc.rules = {rule};

  const ChaosReport report = ChaosRunner::Run(sc, [&]() -> Status {
    BlockShuffleOp::Options bopts;
    bopts.block_size_bytes = 2 * 2048;
    BlockShuffleOp block_op(f.table.get(), bopts);
    TupleShuffleOp::Options topts;
    topts.buffer_tuples = 32;
    topts.double_buffer = false;
    TupleShuffleOp op(&block_op, topts);
    CORGI_RETURN_NOT_OK(op.Init());
    while (op.Next() != nullptr) {
    }
    Status st = op.status();
    op.Close();
    return st;
  });
  EXPECT_TRUE(report.final_status.IsResourceExhausted()) << report.Describe();
}

TEST(AllocChaosTest, BufferPoolAdmissionFailureDegradesWithoutChangingResults) {
  auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);

  auto train_params = [&](Database& db) -> std::vector<double> {
    TrainStatement stmt;
    stmt.table_name = "susy";
    stmt.model_kind = "lr";
    stmt.params = TrainParams(42);
    auto r = db.Train(stmt);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return {};
    return db.models().Get(r->model_id).ValueOrDie()->params();
  };

  // Reference: normal caching.
  const std::string ref_dir = MakeTempDir("alloc_ref");
  Database ref_db(ref_dir, DeviceProfile::Ssd());
  ASSERT_TRUE(ref_db.RegisterDataset("susy", ds).ok());
  const std::vector<double> reference = train_params(ref_db);

  // Chaos: every cache admission fails — pages are served uncached, the
  // run degrades in time only, never in results.
  ChaosScenario sc;
  sc.name = "buffer-admit-fail";
  sc.seed = 42;
  sc.rules = {MakeRule("storage.buffer.admit", ChaosAction::kFail, 0, 0)};
  const std::string dir = MakeTempDir("alloc_admit");
  Database db(dir, DeviceProfile::Ssd());
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());
  std::vector<double> degraded;
  const ChaosReport report = ChaosRunner::Run(sc, [&]() -> Status {
    degraded = train_params(db);
    return Status::OK();
  });
  ASSERT_TRUE(report.final_status.ok()) << report.Describe();
  EXPECT_EQ(degraded, reference) << sc.Describe();
  EXPECT_GT(db.buffer_pool()->stats().alloc_rejections, 0u) << sc.Describe();
}

// --- Circuit breaker unit behaviour ---------------------------------------

TEST(CircuitBreakerTest, TripsAfterThresholdAndRecoversViaProbe) {
  CircuitBreakerOptions opts;
  opts.window = 8;
  opts.min_samples = 4;
  opts.error_threshold = 0.5;
  opts.cooldown_s = 1.0;
  CircuitBreaker breaker(opts);

  EXPECT_TRUE(breaker.AllowRequest(0.0));
  breaker.RecordSuccess();
  breaker.RecordFailure(0.1);
  breaker.RecordFailure(0.1);
  // 3 samples < min_samples: cannot trip yet, whatever the failure ratio.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(0.2);  // 3 failures / 4 samples ≥ 0.5 → trip
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);

  EXPECT_FALSE(breaker.AllowRequest(0.5));  // cooling down
  EXPECT_TRUE(breaker.AllowRequest(1.5));   // half-open probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordFailure(1.5);  // probe failed → re-open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);

  EXPECT_TRUE(breaker.AllowRequest(3.0));  // next probe
  breaker.RecordSuccess();                 // probe succeeded → closed, clean
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(3.1);  // one stale failure must not re-trip
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// --- Serving degradation under injected resolve failures ------------------

std::vector<Tuple> MakeServeTuples(uint64_t n, uint32_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::vector<float> values(dim);
    for (float& v : values) v = static_cast<float>(rng.NextGaussian());
    out.push_back(
        MakeDenseTuple(i, rng.NextBool() ? 1.0 : -1.0, std::move(values)));
  }
  return out;
}

ServeOptions DegradedServeOptions(SimClock* clock) {
  ServeOptions opts;
  opts.max_batch = 4;
  opts.num_workers = 2;
  opts.max_queue_depth = 0;
  opts.flush_on_idle = false;  // generated schedule: fully deterministic
  opts.clock = clock;
  opts.resolve_max_retries = 1;
  opts.resolve_backoff_s = 1e-3;
  opts.breaker.window = 8;
  opts.breaker.min_samples = 4;
  opts.breaker.error_threshold = 0.5;
  opts.breaker.cooldown_s = 100.0;  // stays open for the whole run
  return opts;
}

struct ServeChaosOutcome {
  ServeStats stats;
  std::vector<ServeReply> replies;
  double retry_backoff_s = 0.0;
};

/// Runs 16 requests (4 batches of 4) against a fresh store/engine with the
/// given scenario armed. `publish_v2_at` (if >= 0) hot-swaps the model on
/// the scheduler thread when that request is processed.
ServeChaosOutcome RunServeChaos(const ChaosScenario& sc, int publish_v2_at) {
  ServeChaosOutcome out;
  ModelStore store;
  auto m1 = std::make_unique<LogisticRegression>(8);
  for (size_t i = 0; i < m1->params().size(); ++i) {
    m1->params()[i] = 0.05 * static_cast<double>(i + 1);
  }
  const std::string id = store.Put(std::move(m1));
  const std::vector<Tuple> tuples = MakeServeTuples(16, 8, 29);

  SimClock clock;
  InferenceEngine engine(&store, DegradedServeOptions(&clock));
  EXPECT_TRUE(engine.Start().ok());

  std::vector<std::future<ServeReply>> futures;
  const ChaosReport report = ChaosRunner::Run(sc, [&]() -> Status {
    for (size_t i = 0; i < tuples.size(); ++i) {
      ServeRequest req;
      req.tuple = tuples[i];
      req.model_id = id;
      req.arrival_s = static_cast<double>(i) * 1e-4;
      if (publish_v2_at >= 0 && i == static_cast<size_t>(publish_v2_at)) {
        req.on_arrival = [&store, &id] {
          auto v2 = std::make_unique<LogisticRegression>(8);
          for (auto& p : v2->params()) p = -1.0;
          EXPECT_TRUE(store.Publish(id, std::move(v2)).ok());
        };
      }
      futures.push_back(engine.Submit(std::move(req)));
    }
    return engine.Drain();
  });
  EXPECT_TRUE(report.final_status.ok())
      << sc.Describe() << ": " << report.Describe();
  for (auto& fut : futures) out.replies.push_back(fut.get());
  out.stats = engine.stats();
  out.retry_backoff_s = clock.Elapsed(TimeCategory::kRetryBackoff);
  return out;
}

TEST(ServeChaosTest, BrownoutServesLastGoodSnapshotWithZeroWrongAnswers) {
  // Expected answers from the v1 snapshot, computed up front.
  LogisticRegression v1(8);
  for (size_t i = 0; i < v1.params().size(); ++i) {
    v1.params()[i] = 0.05 * static_cast<double>(i + 1);
  }
  const std::vector<Tuple> tuples = MakeServeTuples(16, 8, 29);

  ChaosScenario sc;
  sc.name = "serve-brownout";
  sc.seed = 61;
  // First resolve (batch 1) succeeds and seeds last-good; every later
  // resolve attempt fails.
  sc.rules = {MakeRule("serve.resolve", ChaosAction::kFail, 1, 0)};

  const ServeChaosOutcome run = RunServeChaos(sc, /*publish_v2_at=*/4);

  // Every request was answered, none failed, and — the core invariant —
  // none was answered incorrectly: every reply matches the v1 model that
  // actually served it, even though the store holds v2.
  EXPECT_EQ(run.stats.completed, 16u) << sc.Describe();
  EXPECT_EQ(run.stats.failed, 0u) << sc.Describe();
  for (size_t i = 0; i < run.replies.size(); ++i) {
    const ServeReply& reply = run.replies[i];
    ASSERT_TRUE(reply.status.ok()) << sc.Describe() << " request " << i;
    EXPECT_EQ(reply.model_version, 1u) << sc.Describe() << " request " << i;
    EXPECT_DOUBLE_EQ(reply.value, v1.Predict(tuples[i]))
        << sc.Describe() << " request " << i;
  }
  // Deterministic degradation accounting: batch 1 resolved, batch 2 burned
  // the retry budget, batch 3 tripped the breaker, batch 4 short-circuited
  // — all three served from the last-good snapshot.
  EXPECT_EQ(run.stats.brownout_batches, 3u) << sc.Describe();
  EXPECT_EQ(run.stats.brownout_served, 12u) << sc.Describe();
  EXPECT_EQ(run.stats.hedged_retries, 1u) << sc.Describe();
  EXPECT_EQ(run.stats.breaker_opens, 1u) << sc.Describe();
  EXPECT_EQ(run.stats.breaker_short_circuits, 1u) << sc.Describe();
  EXPECT_DOUBLE_EQ(run.retry_backoff_s, 1e-3) << sc.Describe();
  const auto& by_version = run.stats.served_by_version.begin()->second;
  ASSERT_EQ(by_version.size(), 1u) << sc.Describe();
  EXPECT_EQ(by_version.at(1), 16u) << sc.Describe();

  // The whole degraded run replays bit-for-bit.
  const ServeChaosOutcome rerun = RunServeChaos(sc, /*publish_v2_at=*/4);
  EXPECT_EQ(run.stats, rerun.stats) << sc.Describe() << "\n"
                                    << run.stats.ToString() << "\n vs \n"
                                    << rerun.stats.ToString();
}

TEST(ServeChaosTest, ResolveFailuresWithoutLastGoodFailLoudlyNeverWrongly) {
  ChaosScenario sc;
  sc.name = "serve-no-last-good";
  sc.seed = 67;
  sc.rules = {MakeRule("serve.resolve", ChaosAction::kFail, 0, 0)};

  const ServeChaosOutcome run = RunServeChaos(sc, /*publish_v2_at=*/-1);

  // No resolve ever succeeded, so there is nothing safe to serve: every
  // request fails with an explicit error — loud, never a wrong answer.
  EXPECT_EQ(run.stats.completed, 0u) << sc.Describe();
  EXPECT_EQ(run.stats.failed, 16u) << sc.Describe();
  for (size_t i = 0; i < run.replies.size(); ++i) {
    EXPECT_FALSE(run.replies[i].status.ok()) << sc.Describe() << " req " << i;
  }
  // Batches 1–2 exhaust retries against the injected IoError; batch 2's
  // last failure trips the breaker; batches 3–4 short-circuit.
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(run.replies[i].status.IsIoError())
        << sc.Describe() << " req " << i << ": "
        << run.replies[i].status.ToString();
  }
  for (size_t i = 8; i < 16; ++i) {
    EXPECT_TRUE(run.replies[i].status.IsResourceExhausted())
        << sc.Describe() << " req " << i << ": "
        << run.replies[i].status.ToString();
  }
  EXPECT_EQ(run.stats.hedged_retries, 2u) << sc.Describe();
  EXPECT_EQ(run.stats.breaker_opens, 1u) << sc.Describe();
  EXPECT_EQ(run.stats.breaker_short_circuits, 2u) << sc.Describe();
  EXPECT_EQ(run.stats.brownout_batches, 0u) << sc.Describe();
  EXPECT_DOUBLE_EQ(run.retry_backoff_s, 2e-3) << sc.Describe();

  const ServeChaosOutcome rerun = RunServeChaos(sc, /*publish_v2_at=*/-1);
  EXPECT_EQ(run.stats, rerun.stats) << sc.Describe();
}

// --- Model lifecycle crash points (DESIGN.md §13) --------------------------

// A logistic model whose every weight is `w` — the value doubles as a
// fingerprint so "which version is serving" is one params()[0] read.
std::unique_ptr<Model> LifecycleModel(double w) {
  auto model = std::make_unique<LogisticRegression>(4);
  model->params().assign(model->num_params(), w);
  return model;
}

struct StoreState {
  uint64_t version = 0;
  double first_param = 0.0;
  std::vector<uint64_t> history;
  std::vector<LifecycleEvent> events;
  bool canary_staged = false;
  uint64_t canary_version = 0;

  bool operator==(const StoreState&) const = default;
};

StoreState CaptureState(const ModelStore& store, const std::string& id) {
  StoreState s;
  auto version = store.GetVersion(id);
  if (!version.ok()) return s;
  s.version = *version;
  s.first_param = store.Get(id).ValueOrDie()->params()[0];
  s.history = store.History(id).ValueOrDie();
  s.events = store.Events(id).ValueOrDie();
  const auto canary = store.GetCanary(id);
  s.canary_staged = canary.has_value();
  s.canary_version = canary ? canary->version : 0;
  return s;
}

TEST(LifecycleChaosTest, KillAtEachCrashPointNeverTearsTheStore) {
  // Every lifecycle mutation stages on locals, then commits after the
  // crash point: a scripted kill mid-call must leave the entry fully in
  // the OLD state (never half-published), and the disarmed retry must
  // land the full NEW state.
  enum class Op { kPublish, kRollback, kPromote, kAbort };
  struct PointCase {
    const char* point;
    Op op;
  };
  const PointCase cases[] = {
      {"lifecycle.publish", Op::kPublish},
      {"lifecycle.rollback", Op::kRollback},
      {"lifecycle.canary_promote", Op::kPromote},
      {"lifecycle.canary_abort", Op::kAbort},
  };
  for (const PointCase& pc : cases) {
    ModelStore store;
    const std::string id = store.Put(LifecycleModel(1.0));       // v1
    ASSERT_TRUE(store.Publish(id, LifecycleModel(2.0)).ok());    // v2
    if (pc.op == Op::kPromote || pc.op == Op::kAbort) {
      ASSERT_TRUE(
          store.StageCanary(id, LifecycleModel(3.0), CanaryPolicy{}).ok());
    }
    const StoreState before = CaptureState(store, id);

    auto run_op = [&]() -> Status {
      switch (pc.op) {
        case Op::kPublish:
          return store.Publish(id, LifecycleModel(9.0)).status();
        case Op::kRollback:
          return store.Rollback(id, 1);
        case Op::kPromote:
          return store.PromoteCanary(id);
        case Op::kAbort:
          return store.AbortCanary(id);
      }
      return Status::Internal("unreachable");
    };

    ChaosScenario sc;
    sc.name = std::string("lifecycle-atomic/") + pc.point;
    sc.seed = 13;
    sc.rules = {MakeRule(pc.point, ChaosAction::kKill, 0)};
    const ChaosReport report = ChaosRunner::Run(sc, run_op);
    EXPECT_EQ(report.crashes, 1u) << sc.Describe();

    // Fully old: version, bits, history, canary, and audit trail are
    // exactly the pre-kill state.
    EXPECT_EQ(CaptureState(store, id), before) << sc.Describe();

    // Fully new: the disarmed retry commits the whole transition.
    ASSERT_TRUE(run_op().ok()) << sc.Describe();
    const StoreState after = CaptureState(store, id);
    EXPECT_NE(after.events.size(), before.events.size()) << sc.Describe();
    switch (pc.op) {
      case Op::kPublish:
        EXPECT_EQ(after.version, 3u) << sc.Describe();
        EXPECT_DOUBLE_EQ(after.first_param, 9.0) << sc.Describe();
        break;
      case Op::kRollback:
        EXPECT_EQ(after.version, 1u) << sc.Describe();
        EXPECT_DOUBLE_EQ(after.first_param, 1.0) << sc.Describe();
        break;
      case Op::kPromote:
        EXPECT_EQ(after.version, 3u) << sc.Describe();
        EXPECT_DOUBLE_EQ(after.first_param, 3.0) << sc.Describe();
        EXPECT_FALSE(after.canary_staged) << sc.Describe();
        break;
      case Op::kAbort:
        EXPECT_EQ(after.version, 2u) << sc.Describe();
        EXPECT_DOUBLE_EQ(after.first_param, 2.0) << sc.Describe();
        EXPECT_FALSE(after.canary_staged) << sc.Describe();
        break;
    }
  }
}

TEST(LifecycleChaosTest, KillAndRestartRecoversLastPromotedVersionBitExact) {
  // Flagship (c): the full lifecycle pipeline — publish, rollback, canary
  // stage/abort, canary stage/promote — killed at every lifecycle crash
  // point and restarted, recovers the last promoted version bit-identically
  // to an uninterrupted run. The "restart" rebuilds the in-memory registry
  // by replaying the deterministic pipeline, the same contract as the
  // checkpointed TRAIN recovery above.
  auto pipeline = [](uint64_t seed, ModelStore* store,
                     std::string* id_out) -> Status {
    const double base = static_cast<double>(seed);
    const std::string id = store->Put(LifecycleModel(base + 1));  // v1
    CORGI_RETURN_NOT_OK(store->Publish(id, LifecycleModel(base + 2)).status());
    CORGI_RETURN_NOT_OK(store->Rollback(id, 1));
    CanaryPolicy policy;
    policy.seed = seed;
    CORGI_RETURN_NOT_OK(
        store->StageCanary(id, LifecycleModel(base + 3), policy).status());
    CORGI_RETURN_NOT_OK(store->AbortCanary(id));
    CORGI_RETURN_NOT_OK(
        store->StageCanary(id, LifecycleModel(base + 4), policy).status());
    CORGI_RETURN_NOT_OK(store->PromoteCanary(id));  // v4 = last promoted
    *id_out = id;
    return Status::OK();
  };

  const char* kPoints[] = {"lifecycle.publish", "lifecycle.rollback",
                           "lifecycle.canary_abort",
                           "lifecycle.canary_promote"};
  const uint64_t kSeeds[] = {7, 21, 77};
  for (const uint64_t seed : kSeeds) {
    // Uninterrupted reference.
    ModelStore ref_store;
    std::string ref_id;
    ASSERT_TRUE(pipeline(seed, &ref_store, &ref_id).ok());
    const StoreState reference = CaptureState(ref_store, ref_id);
    ASSERT_EQ(reference.version, 4u);

    for (const char* point : kPoints) {
      ChaosScenario sc;
      sc.name = std::string("lifecycle-restart/") + point;
      sc.seed = seed;
      sc.rules = {MakeRule(point, ChaosAction::kKill, 0)};

      StoreState recovered;
      const ChaosReport report = ChaosRunner::RunToCompletion(
          sc, [&](uint32_t) -> Status {
            // Fresh store per attempt = the restarted process.
            ModelStore store;
            std::string id;
            CORGI_RETURN_NOT_OK(pipeline(seed, &store, &id));
            recovered = CaptureState(store, id);
            return Status::OK();
          });
      ASSERT_TRUE(report.final_status.ok())
          << sc.Describe() << ": " << report.Describe();
      EXPECT_EQ(report.crashes, 1u) << sc.Describe();
      EXPECT_EQ(report.attempts, 2u) << sc.Describe();
      EXPECT_EQ(recovered, reference) << sc.Describe();
      EXPECT_DOUBLE_EQ(recovered.first_param,
                       static_cast<double>(seed) + 4)
          << sc.Describe();
    }
  }
}

// --- sharded-table chaos (DESIGN.md §14) -----------------------------------

namespace shard_chaos {

constexpr uint32_t kDim = 4;
constexpr uint64_t kInitial = 40;
constexpr uint64_t kBatch = 10;
constexpr uint64_t kBatches = 6;
constexpr uint32_t kShards = 3;

Schema ShardSchema() { return Schema{"s", kDim, false, LabelType::kBinary, 2}; }

std::vector<Tuple> ShardTuples(uint64_t first_id, uint64_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::vector<float> values(kDim);
    for (uint32_t d = 0; d < kDim; ++d) {
      values[d] = static_cast<float>((first_id + i) * 31 + d);
    }
    out.push_back(MakeDenseTuple(first_id + i, (first_id + i) % 2 ? 1.0 : -1.0,
                                 std::move(values)));
  }
  return out;
}

std::vector<Tuple> CollectTable(Database* db, const std::string& name) {
  std::vector<Tuple> out;
  ShardedTable* table = db->GetShardedTable(name).ValueOrDie();
  Status st = MergeScanSnapshot(table->Snapshot(), ShardScanOptions{},
                                [&](const Tuple& t) {
                                  out.push_back(t);
                                  return Status::OK();
                                });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

}  // namespace shard_chaos

// Kill-and-restart during streaming Insert into a sharded table. Each
// attempt reopens the data directory like a process restart (Attach reads
// the shard count from the sidecar) and resumes from the durable tuple
// count; the recovered table must equal a never-crashed reference run
// tuple-for-tuple in insertion order.
TEST(ShardChaosTest, InsertKillRestartRecoversShardedTableBitExact) {
  using namespace shard_chaos;
  const auto initial = ShardTuples(0, kInitial);

  // Reference: no chaos.
  std::vector<Tuple> reference;
  {
    const std::string dir = MakeTempDir("shard_chaos_ref");
    Database db(dir, DeviceProfile::Ssd());
    ASSERT_TRUE(db.CreateTable("s", ShardSchema(), initial, false, 512,
                               kShards)
                    .ok());
    for (uint64_t b = 0; b < kBatches; ++b) {
      ASSERT_TRUE(
          db.Insert("s", ShardTuples(kInitial + b * kBatch, kBatch)).ok());
    }
    reference = CollectTable(&db, "s");
  }
  ASSERT_EQ(reference.size(), kInitial + kBatches * kBatch);

  // Chaos: one kill after the pages of a batch are durable but before its
  // snapshot publishes, one before a later batch touches storage at all.
  const std::string dir = MakeTempDir("shard_chaos_run");
  ChaosScenario sc;
  sc.name = "shard-insert-kill";
  sc.seed = 7;
  sc.rules = {MakeRule("shard.snapshot.publish", ChaosAction::kKill, 2),
              MakeRule("shard.append.begin", ChaosAction::kKill, 4)};
  std::vector<Tuple> recovered;
  ChaosReport report = ChaosRunner::RunToCompletion(
      sc, [&](uint32_t attempt) -> Status {
        Database db(dir, DeviceProfile::Ssd());
        if (attempt == 0) {
          CORGI_RETURN_NOT_OK(db.CreateTable("s", ShardSchema(), initial,
                                             false, 512, kShards));
        } else {
          CORGI_RETURN_NOT_OK(db.Attach("s"));
        }
        CORGI_ASSIGN_OR_RETURN(ShardedTable * table, db.GetShardedTable("s"));
        // Batches append all-or-nothing (the kill points bracket the whole
        // batch), so the durable count tells us where to resume.
        const uint64_t durable = table->num_tuples();
        EXPECT_EQ((durable - kInitial) % kBatch, 0u) << sc.Describe();
        for (uint64_t b = (durable - kInitial) / kBatch; b < kBatches; ++b) {
          CORGI_RETURN_NOT_OK(
              db.Insert("s", ShardTuples(kInitial + b * kBatch, kBatch)));
        }
        recovered = CollectTable(&db, "s");
        return Status::OK();
      });
  ASSERT_TRUE(report.final_status.ok())
      << sc.Describe() << ": " << report.Describe();
  EXPECT_EQ(report.crashes, 2u) << report.Describe();
  EXPECT_EQ(report.attempts, 3u) << report.Describe();
  ASSERT_EQ(recovered.size(), reference.size()) << sc.Describe();
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(recovered[i], reference[i]) << sc.Describe() << " tuple " << i;
  }
}

TEST(ShardChaosTest, ScanFaultInjectionSurfacesError) {
  using namespace shard_chaos;
  const std::string dir = MakeTempDir("shard_chaos_scan");
  Database db(dir, DeviceProfile::Ssd());
  ASSERT_TRUE(
      db.CreateTable("s", ShardSchema(), ShardTuples(0, 30), false, 512, 2)
          .ok());
  ShardedTable* table = db.GetShardedTable("s").ValueOrDie();

  FaultPlane* plane = FaultPlane::Process();
  plane->Arm("scan-fail", 5,
             {MakeRule("shard.scan.begin", ChaosAction::kFail, 0)});
  Status st = MergeScanSnapshot(table->Snapshot(), ShardScanOptions{},
                                [](const Tuple&) { return Status::OK(); });
  plane->Disarm();
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_NE(st.ToString().find("scenario=scan-fail"), std::string::npos)
      << st.ToString();

  // Disarmed, the same scan succeeds.
  EXPECT_TRUE(MergeScanSnapshot(table->Snapshot(), ShardScanOptions{},
                                [](const Tuple&) { return Status::OK(); })
                  .ok());
}

TEST(SessionChaosTest, ExecuteFaultInjectionFailsStatement) {
  using namespace shard_chaos;
  const std::string dir = MakeTempDir("session_chaos_exec");
  Database db(dir, DeviceProfile::Ssd());
  FaultPlane* plane = FaultPlane::Process();
  plane->Arm("session-fail", 9,
             {MakeRule("session.execute.begin", ChaosAction::kFail, 0)});
  Status st = db.Execute("SHOW SESSIONS").status();
  plane->Disarm();
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_TRUE(db.Execute("SHOW SESSIONS").ok());
}

}  // namespace
}  // namespace corgipile
