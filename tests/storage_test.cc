// Unit tests for storage/: tuple serialization, pages, heap files, buffer
// manager, compression, tables, block sources.

#include <gtest/gtest.h>

#include <cstdio>

#include "storage/block_source.h"
#include "storage/buffer_manager.h"
#include "storage/compression.h"
#include "storage/heapfile.h"
#include "storage/page.h"
#include "storage/table.h"
#include "storage/tuple.h"
#include "util/rng.h"

namespace corgipile {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

TEST(TupleTest, DenseRoundTrip) {
  Tuple t = MakeDenseTuple(42, -1.0, {1.0f, 2.5f, -3.0f});
  std::vector<uint8_t> buf;
  t.SerializeTo(&buf);
  EXPECT_EQ(buf.size(), t.SerializedSize());
  size_t consumed = 0;
  auto r = Tuple::Deserialize(buf.data(), buf.size(), &consumed);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(*r, t);
  EXPECT_FALSE(r->sparse());
}

TEST(TupleTest, SparseRoundTrip) {
  Tuple t = MakeSparseTuple(7, 1.0, {3, 17, 99}, {0.5f, -1.5f, 2.0f});
  std::vector<uint8_t> buf;
  t.SerializeTo(&buf);
  size_t consumed = 0;
  auto r = Tuple::Deserialize(buf.data(), buf.size(), &consumed);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, t);
  EXPECT_TRUE(r->sparse());
}

TEST(TupleTest, DeserializeTruncatedFails) {
  Tuple t = MakeDenseTuple(1, 1.0, {1.0f, 2.0f});
  std::vector<uint8_t> buf;
  t.SerializeTo(&buf);
  size_t consumed = 0;
  auto r = Tuple::Deserialize(buf.data(), buf.size() - 3, &consumed);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(TupleTest, DotAndAxpy) {
  Tuple dense = MakeDenseTuple(0, 1.0, {1.0f, 2.0f, 3.0f});
  std::vector<double> w{1.0, 1.0, 1.0, 99.0};  // extra bias slot untouched
  EXPECT_DOUBLE_EQ(dense.Dot(w), 6.0);
  dense.AxpyInto(2.0, &w);
  EXPECT_DOUBLE_EQ(w[0], 3.0);
  EXPECT_DOUBLE_EQ(w[2], 7.0);
  EXPECT_DOUBLE_EQ(w[3], 99.0);

  Tuple sparse = MakeSparseTuple(0, 1.0, {0, 2}, {2.0f, 4.0f});
  std::vector<double> w2{1.0, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(sparse.Dot(w2), 6.0);
  sparse.AxpyInto(1.0, &w2);
  EXPECT_DOUBLE_EQ(w2[0], 3.0);
  EXPECT_DOUBLE_EQ(w2[1], 5.0);
  EXPECT_DOUBLE_EQ(w2[2], 5.0);
}

TEST(TupleTest, SquaredNorm) {
  Tuple t = MakeDenseTuple(0, 1.0, {3.0f, 4.0f});
  EXPECT_DOUBLE_EQ(t.SquaredNorm(), 25.0);
}

TEST(PageTest, AddAndReadRecords) {
  Page page(512);
  const uint16_t before = page.num_records();
  EXPECT_EQ(before, 0);
  std::vector<uint8_t> rec1{1, 2, 3};
  std::vector<uint8_t> rec2{9, 8, 7, 6};
  ASSERT_TRUE(page.AddRecord(rec1.data(), rec1.size()));
  ASSERT_TRUE(page.AddRecord(rec2.data(), rec2.size()));
  EXPECT_EQ(page.num_records(), 2);
  auto [p1, l1] = page.Record(0);
  EXPECT_EQ(l1, 3u);
  EXPECT_EQ(p1[0], 1);
  auto [p2, l2] = page.Record(1);
  EXPECT_EQ(l2, 4u);
  EXPECT_EQ(p2[3], 6);
}

TEST(PageTest, RejectsWhenFull) {
  Page page(64);
  std::vector<uint8_t> rec(40, 0xAB);
  EXPECT_TRUE(page.AddRecord(rec.data(), rec.size()));
  EXPECT_FALSE(page.AddRecord(rec.data(), rec.size()));
}

TEST(PageTest, FreeSpaceShrinks) {
  Page page(256);
  const uint32_t before = page.free_space();
  std::vector<uint8_t> rec(10, 1);
  ASSERT_TRUE(page.AddRecord(rec.data(), rec.size()));
  EXPECT_EQ(page.free_space(), before - 10 - Page::kSlotBytes);
}

TEST(PageTest, ClearResets) {
  Page page(128);
  std::vector<uint8_t> rec{1};
  ASSERT_TRUE(page.AddRecord(rec.data(), rec.size()));
  page.Clear();
  EXPECT_EQ(page.num_records(), 0);
}

TEST(HeapFileTest, CreateAppendRead) {
  const std::string path = TempPath("hf_basic.dat");
  auto hf = HeapFile::Create(path, 512);
  ASSERT_TRUE(hf.ok());
  Page page(512);
  std::vector<uint8_t> rec{5, 5, 5};
  ASSERT_TRUE(page.AddRecord(rec.data(), rec.size()));
  ASSERT_TRUE((*hf)->AppendPage(page).ok());
  ASSERT_TRUE((*hf)->AppendPage(page).ok());
  EXPECT_EQ((*hf)->num_pages(), 2u);

  Page out(512);
  ASSERT_TRUE((*hf)->ReadPage(1, &out).ok());
  EXPECT_EQ(out.num_records(), 1);
  auto [data, len] = out.Record(0);
  EXPECT_EQ(len, 3u);
  EXPECT_EQ(data[0], 5);
  std::remove(path.c_str());
}

TEST(HeapFileTest, ReadPastEndFails) {
  const std::string path = TempPath("hf_oob.dat");
  auto hf = HeapFile::Create(path, 512);
  ASSERT_TRUE(hf.ok());
  Page out(512);
  EXPECT_TRUE((*hf)->ReadPage(0, &out).IsOutOfRange());
  std::remove(path.c_str());
}

TEST(HeapFileTest, OpenExisting) {
  const std::string path = TempPath("hf_reopen.dat");
  {
    auto hf = HeapFile::Create(path, 256);
    ASSERT_TRUE(hf.ok());
    Page page(256);
    std::vector<uint8_t> rec{1, 2};
    page.AddRecord(rec.data(), rec.size());
    ASSERT_TRUE((*hf)->AppendPage(page).ok());
  }
  auto hf = HeapFile::Open(path, 256);
  ASSERT_TRUE(hf.ok());
  EXPECT_EQ((*hf)->num_pages(), 1u);
  std::remove(path.c_str());
}

TEST(HeapFileTest, SequentialVsRandomAccounting) {
  const std::string path = TempPath("hf_acct.dat");
  auto hf = HeapFile::Create(path, 512);
  ASSERT_TRUE(hf.ok());
  Page page(512);
  std::vector<uint8_t> rec{1};
  page.AddRecord(rec.data(), rec.size());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE((*hf)->AppendPage(page).ok());

  SimClock clock;
  IoStats stats;
  (*hf)->SetIoAccounting(DeviceProfile::Hdd(), &clock, &stats);

  Page out(512);
  // First read: random (fresh cursor). Then 0→1→2 sequential.
  ASSERT_TRUE((*hf)->ReadPage(0, &out).ok());
  ASSERT_TRUE((*hf)->ReadPage(1, &out).ok());
  ASSERT_TRUE((*hf)->ReadPage(2, &out).ok());
  EXPECT_EQ(stats.random_reads, 1u);
  EXPECT_EQ(stats.sequential_reads, 2u);

  // Jumping backwards is random again.
  ASSERT_TRUE((*hf)->ReadPage(0, &out).ok());
  EXPECT_EQ(stats.random_reads, 2u);

  // ResetReadCursor forces a seek even for the "next" page.
  (*hf)->ResetReadCursor();
  ASSERT_TRUE((*hf)->ReadPage(1, &out).ok());
  EXPECT_EQ(stats.random_reads, 3u);

  EXPECT_GT(clock.Elapsed(TimeCategory::kIoRead), 3 * 8e-3);  // 3 seeks
  std::remove(path.c_str());
}

TEST(HeapFileTest, ReadPagesContiguousBilledOnce) {
  const std::string path = TempPath("hf_block.dat");
  auto hf = HeapFile::Create(path, 512);
  ASSERT_TRUE(hf.ok());
  Page page(512);
  std::vector<uint8_t> rec{1};
  page.AddRecord(rec.data(), rec.size());
  for (int i = 0; i < 8; ++i) ASSERT_TRUE((*hf)->AppendPage(page).ok());

  SimClock clock;
  IoStats stats;
  (*hf)->SetIoAccounting(DeviceProfile::Hdd(), &clock, &stats);
  std::vector<Page> pages;
  ASSERT_TRUE((*hf)->ReadPages(2, 4, &pages).ok());
  EXPECT_EQ(pages.size(), 4u);
  EXPECT_EQ(stats.random_reads + stats.sequential_reads, 1u);
  EXPECT_EQ(stats.bytes_read, 4 * 512u);
  std::remove(path.c_str());
}

TEST(BufferManagerTest, HitsAndMisses) {
  const std::string path = TempPath("bm.dat");
  auto hf = HeapFile::Create(path, 512);
  ASSERT_TRUE(hf.ok());
  Page page(512);
  std::vector<uint8_t> rec{1};
  page.AddRecord(rec.data(), rec.size());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE((*hf)->AppendPage(page).ok());

  BufferManager bm(10 * 512);
  ASSERT_TRUE(bm.Fetch(hf->get(), 0).ok());
  ASSERT_TRUE(bm.Fetch(hf->get(), 0).ok());
  ASSERT_TRUE(bm.Fetch(hf->get(), 1).ok());
  EXPECT_EQ(bm.stats().hits, 1u);
  EXPECT_EQ(bm.stats().misses, 2u);
  std::remove(path.c_str());
}

TEST(BufferManagerTest, EvictsLru) {
  const std::string path = TempPath("bm_evict.dat");
  auto hf = HeapFile::Create(path, 512);
  ASSERT_TRUE(hf.ok());
  Page page(512);
  std::vector<uint8_t> rec{1};
  page.AddRecord(rec.data(), rec.size());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE((*hf)->AppendPage(page).ok());

  BufferManager bm(2 * 512);  // room for 2 pages
  ASSERT_TRUE(bm.Fetch(hf->get(), 0).ok());
  ASSERT_TRUE(bm.Fetch(hf->get(), 1).ok());
  ASSERT_TRUE(bm.Fetch(hf->get(), 2).ok());  // evicts page 0
  EXPECT_EQ(bm.stats().evictions, 1u);
  ASSERT_TRUE(bm.Fetch(hf->get(), 0).ok());  // miss again
  EXPECT_EQ(bm.stats().misses, 4u);
  std::remove(path.c_str());
}

TEST(BufferManagerTest, InvalidateDropsPages) {
  const std::string path = TempPath("bm_inval.dat");
  auto hf = HeapFile::Create(path, 512);
  ASSERT_TRUE(hf.ok());
  Page page(512);
  std::vector<uint8_t> rec{1};
  page.AddRecord(rec.data(), rec.size());
  ASSERT_TRUE((*hf)->AppendPage(page).ok());
  BufferManager bm(512 * 8);
  ASSERT_TRUE(bm.Fetch(hf->get(), 0).ok());
  bm.Invalidate();
  ASSERT_TRUE(bm.Fetch(hf->get(), 0).ok());
  EXPECT_EQ(bm.stats().misses, 2u);
  std::remove(path.c_str());
}

TEST(CompressionTest, RoundTripZeroHeavy) {
  Rng rng(5);
  std::vector<uint8_t> input;
  for (int i = 0; i < 10000; ++i) {
    input.push_back(rng.NextBool(0.7) ? 0 : static_cast<uint8_t>(rng.Uniform(256)));
  }
  std::vector<uint8_t> compressed, output;
  CompressBytes(input, &compressed);
  EXPECT_LT(compressed.size(), input.size());
  ASSERT_TRUE(DecompressBytes(compressed.data(), compressed.size(), &output).ok());
  EXPECT_EQ(output, input);
}

TEST(CompressionTest, RoundTripIncompressible) {
  Rng rng(6);
  std::vector<uint8_t> input;
  for (int i = 0; i < 5000; ++i) {
    input.push_back(static_cast<uint8_t>(1 + rng.Uniform(255)));
  }
  std::vector<uint8_t> compressed, output;
  CompressBytes(input, &compressed);
  // Expansion bounded by ~1/128 control overhead.
  EXPECT_LT(compressed.size(), input.size() + input.size() / 64 + 16);
  ASSERT_TRUE(DecompressBytes(compressed.data(), compressed.size(), &output).ok());
  EXPECT_EQ(output, input);
}

TEST(CompressionTest, EmptyInput) {
  std::vector<uint8_t> compressed, output;
  CompressBytes({}, &compressed);
  EXPECT_TRUE(compressed.empty());
  ASSERT_TRUE(DecompressBytes(compressed.data(), 0, &output).ok());
  EXPECT_TRUE(output.empty());
}

TEST(CompressionTest, TruncatedInputIsCorruption) {
  std::vector<uint8_t> input(100, 42), compressed, output;
  CompressBytes(input, &compressed);
  EXPECT_TRUE(DecompressBytes(compressed.data(), compressed.size() - 1, &output)
                  .IsCorruption());
}

std::vector<Tuple> MakeTuples(size_t n, uint32_t dim) {
  Rng rng(99);
  std::vector<Tuple> out;
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> vals(dim);
    for (auto& v : vals) v = static_cast<float>(rng.NextGaussian());
    out.push_back(MakeDenseTuple(i, i % 2 ? 1.0 : -1.0, std::move(vals)));
  }
  return out;
}

TEST(TableTest, BuildScanRoundTrip) {
  const std::string path = TempPath("tbl_roundtrip.dat");
  Schema schema{"t", 8, false, LabelType::kBinary, 2};
  auto tuples = MakeTuples(500, 8);
  TableBuilder builder(schema, path, TableOptions{512, false});
  for (const auto& t : tuples) ASSERT_TRUE(builder.Append(t).ok());
  auto table = builder.Finish();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_tuples(), 500u);

  std::vector<Tuple> scanned;
  ASSERT_TRUE((*table)
                  ->Scan([&](const Tuple& t) {
                    scanned.push_back(t);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(scanned.size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) EXPECT_EQ(scanned[i], tuples[i]);
  std::remove(path.c_str());
}

TEST(TableTest, ReadTupleAtMatchesOrder) {
  const std::string path = TempPath("tbl_at.dat");
  Schema schema{"t", 4, false, LabelType::kBinary, 2};
  auto tuples = MakeTuples(200, 4);
  TableBuilder builder(schema, path, TableOptions{512, false});
  for (const auto& t : tuples) ASSERT_TRUE(builder.Append(t).ok());
  auto table = builder.Finish();
  ASSERT_TRUE(table.ok());
  for (uint64_t idx : {0ULL, 57ULL, 123ULL, 199ULL}) {
    auto t = (*table)->ReadTupleAt(idx);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(*t, tuples[idx]);
  }
  EXPECT_FALSE((*table)->ReadTupleAt(200).ok());
  std::remove(path.c_str());
}

TEST(TableTest, CompressedRoundTripAndDecompressBilling) {
  const std::string path = TempPath("tbl_comp.dat");
  Schema schema{"t", 64, false, LabelType::kBinary, 2};
  // Zero-heavy features so compression bites.
  Rng rng(3);
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < 100; ++i) {
    std::vector<float> vals(64, 0.0f);
    for (int k = 0; k < 8; ++k) {
      vals[rng.Uniform(64)] = static_cast<float>(rng.NextGaussian());
    }
    tuples.push_back(MakeDenseTuple(i, 1.0, std::move(vals)));
  }
  TableBuilder builder(schema, path, TableOptions{4096, true});
  for (const auto& t : tuples) ASSERT_TRUE(builder.Append(t).ok());
  auto table = builder.Finish();
  ASSERT_TRUE(table.ok());

  SimClock clock;
  (*table)->SetIoAccounting(DeviceProfile::Memory(), &clock, nullptr);
  std::vector<Tuple> read;
  ASSERT_TRUE((*table)->ReadTuplesFromPages(0, (*table)->num_pages(), &read).ok());
  ASSERT_EQ(read.size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) EXPECT_EQ(read[i], tuples[i]);
  EXPECT_GT(clock.Elapsed(TimeCategory::kDecompress), 0.0);
  std::remove(path.c_str());
}

TEST(TableTest, TupleLargerThanPageRejected) {
  const std::string path = TempPath("tbl_big.dat");
  Schema schema{"t", 1000, false, LabelType::kBinary, 2};
  TableBuilder builder(schema, path, TableOptions{512, false});
  std::vector<float> vals(1000, 1.0f);
  EXPECT_TRUE(builder.Append(MakeDenseTuple(0, 1.0, vals)).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(BlockSourceTest, InMemoryBlocks) {
  Schema schema{"t", 4, false, LabelType::kBinary, 2};
  auto tuples = std::make_shared<std::vector<Tuple>>(MakeTuples(25, 4));
  InMemoryBlockSource src(schema, tuples, 10);
  EXPECT_EQ(src.num_blocks(), 3u);
  EXPECT_EQ(src.num_tuples(), 25u);
  EXPECT_EQ(src.TuplesInBlock(0), 10u);
  EXPECT_EQ(src.TuplesInBlock(2), 5u);
  std::vector<Tuple> block;
  ASSERT_TRUE(src.ReadBlock(2, &block).ok());
  EXPECT_EQ(block.size(), 5u);
  EXPECT_EQ(block[0].id, 20u);
  EXPECT_FALSE(src.ReadBlock(3, &block).ok());
}

TEST(BlockSourceTest, TableBlocksCoverAllTuples) {
  const std::string path = TempPath("tbl_blocks.dat");
  Schema schema{"t", 8, false, LabelType::kBinary, 2};
  auto tuples = MakeTuples(300, 8);
  TableBuilder builder(schema, path, TableOptions{512, false});
  for (const auto& t : tuples) ASSERT_TRUE(builder.Append(t).ok());
  auto table = builder.Finish();
  ASSERT_TRUE(table.ok());

  TableBlockSource src(table->get(), 2048);  // 4 pages per block
  EXPECT_EQ(src.pages_per_block(), 4u);
  std::vector<Tuple> all;
  for (uint32_t b = 0; b < src.num_blocks(); ++b) {
    const size_t before = all.size();
    ASSERT_TRUE(src.ReadBlock(b, &all).ok());
    EXPECT_EQ(all.size() - before, src.TuplesInBlock(b));
  }
  ASSERT_EQ(all.size(), tuples.size());
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], tuples[i]);
  std::remove(path.c_str());
}

TEST(TableBufferManagerTest, SecondEpochIsFree) {
  const std::string path = TempPath("tbl_bm.dat");
  Schema schema{"t", 8, false, LabelType::kBinary, 2};
  auto tuples = MakeTuples(400, 8);
  TableBuilder builder(schema, path, TableOptions{512, false});
  for (const auto& t : tuples) ASSERT_TRUE(builder.Append(t).ok());
  auto table = builder.Finish();
  ASSERT_TRUE(table.ok());

  SimClock clock;
  IoStats stats;
  (*table)->SetIoAccounting(DeviceProfile::Hdd(), &clock, &stats);
  BufferManager bm(1 << 20);  // plenty for the whole table
  (*table)->SetBufferManager(&bm);

  std::vector<Tuple> out;
  ASSERT_TRUE((*table)->ReadTuplesFromPages(0, (*table)->num_pages(), &out).ok());
  ASSERT_EQ(out.size(), tuples.size());
  const double after_first = clock.Elapsed(TimeCategory::kIoRead);
  EXPECT_GT(after_first, 0.0);

  // Second pass: everything cached, no new device time.
  out.clear();
  (*table)->ResetReadCursor();
  ASSERT_TRUE((*table)->ReadTuplesFromPages(0, (*table)->num_pages(), &out).ok());
  ASSERT_EQ(out.size(), tuples.size());
  EXPECT_DOUBLE_EQ(clock.Elapsed(TimeCategory::kIoRead), after_first);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], tuples[i]);
  std::remove(path.c_str());
}

TEST(TableBufferManagerTest, SmallPoolStillPaysIo) {
  const std::string path = TempPath("tbl_bm_small.dat");
  Schema schema{"t", 8, false, LabelType::kBinary, 2};
  auto tuples = MakeTuples(400, 8);
  TableBuilder builder(schema, path, TableOptions{512, false});
  for (const auto& t : tuples) ASSERT_TRUE(builder.Append(t).ok());
  auto table = builder.Finish();
  ASSERT_TRUE(table.ok());

  SimClock clock;
  (*table)->SetIoAccounting(DeviceProfile::Hdd(), &clock, nullptr);
  BufferManager bm(4 * 512);  // only 4 pages: thrashes
  (*table)->SetBufferManager(&bm);
  std::vector<Tuple> out;
  ASSERT_TRUE((*table)->ReadTuplesFromPages(0, (*table)->num_pages(), &out).ok());
  const double after_first = clock.Elapsed(TimeCategory::kIoRead);
  out.clear();
  (*table)->ResetReadCursor();
  ASSERT_TRUE((*table)->ReadTuplesFromPages(0, (*table)->num_pages(), &out).ok());
  EXPECT_GT(clock.Elapsed(TimeCategory::kIoRead), 1.5 * after_first);
  std::remove(path.c_str());
}

TEST(TableBufferManagerTest, MixedRunsDecodeInOrder) {
  // Pre-cache every other page, then read a range: cached and uncached
  // pages must interleave back in the right order.
  const std::string path = TempPath("tbl_bm_mix.dat");
  Schema schema{"t", 4, false, LabelType::kBinary, 2};
  auto tuples = MakeTuples(300, 4);
  TableBuilder builder(schema, path, TableOptions{512, false});
  for (const auto& t : tuples) ASSERT_TRUE(builder.Append(t).ok());
  auto table = builder.Finish();
  ASSERT_TRUE(table.ok());
  BufferManager bm(1 << 20);
  (*table)->SetBufferManager(&bm);
  for (uint64_t p = 0; p < (*table)->num_pages(); p += 2) {
    ASSERT_TRUE(bm.Fetch((*table)->file(), p).ok());
  }
  std::vector<Tuple> out;
  ASSERT_TRUE((*table)->ReadTuplesFromPages(0, (*table)->num_pages(), &out).ok());
  ASSERT_EQ(out.size(), tuples.size());
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], tuples[i]);
  std::remove(path.c_str());
}

TEST(BufferManagerTest, InsertAndContains) {
  const std::string path = TempPath("bm_ins.dat");
  auto hf = HeapFile::Create(path, 512);
  ASSERT_TRUE(hf.ok());
  Page page(512);
  std::vector<uint8_t> rec{9};
  page.AddRecord(rec.data(), rec.size());
  ASSERT_TRUE((*hf)->AppendPage(page).ok());

  BufferManager bm(8 * 512);
  EXPECT_FALSE(bm.Contains(hf->get(), 0));
  bm.Insert(hf->get(), 0, std::make_shared<const Page>(page));
  EXPECT_TRUE(bm.Contains(hf->get(), 0));
  // Fetch of an inserted page is a hit, no file read.
  auto fetched = bm.Fetch(hf->get(), 0);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(bm.stats().hits, 1u);
  EXPECT_EQ(bm.stats().misses, 0u);
  // Duplicate insert is a no-op.
  bm.Insert(hf->get(), 0, std::make_shared<const Page>(page));
  EXPECT_TRUE(bm.Contains(hf->get(), 0));
  std::remove(path.c_str());
}

// --- MVCC table snapshots (DESIGN.md §14) ----------------------------------

TEST(TableSnapshotTest, SnapshotIsImmutableAcrossAppend) {
  const std::string path = TempPath("tbl_snap.dat");
  Schema schema{"t", 4, false, LabelType::kBinary, 2};
  auto tuples = MakeTuples(120, 4);
  TableBuilder builder(schema, path, TableOptions{512, false});
  for (const auto& t : tuples) ASSERT_TRUE(builder.Append(t).ok());
  auto table = builder.Finish();
  ASSERT_TRUE(table.ok());

  TableSnapshot snap = (*table)->Snapshot();
  EXPECT_EQ(snap.num_tuples(), 120u);
  const uint64_t pages_before = snap.num_pages();

  auto extra = MakeTuples(80, 4);
  ASSERT_TRUE((*table)->AppendTuples(extra).ok());

  // The captured snapshot still bounds reads at its creation point…
  EXPECT_EQ(snap.num_tuples(), 120u);
  EXPECT_EQ(snap.num_pages(), pages_before);
  std::vector<Tuple> scanned;
  ASSERT_TRUE(snap.Scan([&](const Tuple& t) {
                    scanned.push_back(t);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(scanned.size(), 120u);
  for (size_t i = 0; i < scanned.size(); ++i) EXPECT_EQ(scanned[i], tuples[i]);
  EXPECT_TRUE(snap.ReadTupleAt(120).status().IsOutOfRange());

  // …while a fresh snapshot sees the published append.
  TableSnapshot fresh = (*table)->Snapshot();
  EXPECT_EQ(fresh.num_tuples(), 200u);
  EXPECT_EQ(*fresh.ReadTupleAt(120), extra[0]);
  std::remove(path.c_str());
}

// --- sharded tables --------------------------------------------------------

TEST(ShardedTableTest, ShardPathKeepsLegacyNameForShardZero) {
  EXPECT_EQ(ShardedTable::ShardPath("/d/t", 0), "/d/t.tbl");
  EXPECT_EQ(ShardedTable::ShardPath("/d/t", 1), "/d/t.shard1.tbl");
  EXPECT_EQ(ShardedTable::ShardPath("/d/t", 7), "/d/t.shard7.tbl");
}

TEST(ShardedTableTest, RoundRobinPlacementAndBalance) {
  const std::string base = TempPath("sharded_rr");
  Schema schema{"t", 4, false, LabelType::kBinary, 2};
  auto tuples = MakeTuples(100, 4);
  auto table =
      ShardedTable::Create(base, schema, TableOptions{512, false}, tuples, 3);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->num_shards(), 3u);
  EXPECT_EQ((*table)->num_tuples(), 100u);
  // 100 over 3 shards round-robin: 34/33/33.
  EXPECT_EQ((*table)->shard(0)->num_tuples(), 34u);
  EXPECT_EQ((*table)->shard(1)->num_tuples(), 33u);
  EXPECT_EQ((*table)->shard(2)->num_tuples(), 33u);
  // Tuple i lives in shard i % 3 at local position i / 3.
  for (uint64_t i : {0ULL, 1ULL, 2ULL, 50ULL, 99ULL}) {
    auto t = (*table)->shard(i % 3)->ReadTupleAt(i / 3);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(*t, tuples[i]) << "tuple " << i;
  }
}

TEST(ShardedTableTest, AppendContinuesRoundRobinAndPublishesAtomically) {
  const std::string base = TempPath("sharded_append");
  Schema schema{"t", 4, false, LabelType::kBinary, 2};
  auto tuples = MakeTuples(10, 4);
  auto table =
      ShardedTable::Create(base, schema, TableOptions{512, false}, tuples, 4);
  ASSERT_TRUE(table.ok());

  ShardedSnapshot before = (*table)->Snapshot();
  auto extra = MakeTuples(7, 4);
  ASSERT_TRUE((*table)->AppendTuples(extra).ok());
  EXPECT_EQ(before.num_tuples(), 10u);  // old snapshot unaffected

  // Global position 10 continues at shard 10 % 4 = 2.
  ShardedSnapshot after = (*table)->Snapshot();
  EXPECT_EQ(after.num_tuples(), 17u);
  auto t10 = after.shard(2).ReadTupleAt(10 / 4);
  ASSERT_TRUE(t10.ok());
  EXPECT_EQ(*t10, extra[0]);
}

TEST(ShardedTableTest, OpenRoundTripsAllShards) {
  const std::string base = TempPath("sharded_reopen");
  Schema schema{"t", 4, false, LabelType::kBinary, 2};
  auto tuples = MakeTuples(41, 4);
  {
    auto table = ShardedTable::Create(base, schema, TableOptions{512, false},
                                      tuples, 2);
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->AppendTuples(MakeTuples(5, 4)).ok());
  }
  auto reopened =
      ShardedTable::Open(base, schema, TableOptions{512, false}, 2);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_tuples(), 46u);
  EXPECT_EQ((*reopened)->num_shards(), 2u);
  // Missing shard file fails cleanly.
  EXPECT_FALSE(
      ShardedTable::Open(base, schema, TableOptions{512, false}, 3).ok());
}

TEST(SnapshotBlockSourceTest, ShardMajorBlocksCoverAllTuples) {
  const std::string base = TempPath("snap_blocks");
  Schema schema{"t", 4, false, LabelType::kBinary, 2};
  auto tuples = MakeTuples(90, 4);
  auto table =
      ShardedTable::Create(base, schema, TableOptions{512, false}, tuples, 2);
  ASSERT_TRUE(table.ok());

  SnapshotBlockSource source((*table)->Snapshot(), /*block_size_bytes=*/1024);
  EXPECT_EQ(source.num_tuples(), 90u);
  uint64_t covered = 0;
  std::vector<Tuple> all;
  for (uint32_t b = 0; b < source.num_blocks(); ++b) {
    covered += source.TuplesInBlock(b);
    ASSERT_TRUE(source.ReadBlock(b, &all).ok());
  }
  EXPECT_EQ(covered, 90u);
  ASSERT_EQ(all.size(), 90u);
  // Shard-major enumeration: shard 0's tuples (even ids) first.
  EXPECT_EQ(all.front(), tuples[0]);
  EXPECT_EQ(all[1], tuples[2]);
  EXPECT_FALSE(source.ReadBlock(source.num_blocks(), &all).ok());
}

}  // namespace
}  // namespace corgipile
