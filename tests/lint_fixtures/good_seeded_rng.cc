// Lint fixture: clean twin of bad_random.cc — MUST produce no findings.
//
// All randomness flows through util/rng.h: explicitly seeded, and Fork()
// derives independent streams so parallel workers stay deterministic
// regardless of scheduling.

#include <cstdint>

#include "util/rng.h"

namespace lint_fixture {

uint64_t SeededDraw(uint64_t seed) {
  corgipile::Rng rng(seed);
  return rng.Next64();
}

double WorkerStream(const corgipile::Rng& parent, uint64_t worker_id) {
  corgipile::Rng stream = parent.Fork(worker_id);
  return stream.NextDouble();
}

}  // namespace lint_fixture
