// Lint fixture: clean twin of bad_dropped_status.cc — MUST compile with
// -Werror=unused-result.
//
// Every returned Status is consumed: propagated with CORGI_RETURN_NOT_OK,
// branched on via ok(), or — when a failure is genuinely irrelevant —
// discarded explicitly with `(void)` plus a justification comment, the one
// sanctioned escape hatch (DESIGN.md §10).

#include "util/status.h"

namespace lint_fixture {

corgipile::Status MightFail() {
  return corgipile::Status::IoError("disk on fire");
}

corgipile::Status Propagates() {
  CORGI_RETURN_NOT_OK(MightFail());
  return corgipile::Status::OK();
}

bool Branches() { return MightFail().ok(); }

void IntentionalDiscard() {
  // Best-effort cleanup: failure here leaves only a temp file behind, which
  // the next run truncates anyway.
  (void)MightFail();
}

}  // namespace lint_fixture
