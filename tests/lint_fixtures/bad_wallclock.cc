// Lint fixture: MUST be flagged [wall-clock] by tools/lint_determinism.
//
// Reading the machine clock from result-producing code makes two runs of the
// same seed diverge; modeled time must come from iosim::SimClock (clean twin:
// good_simclock.cc). This file is valid C++ and compiles warning-free — only
// the determinism linter objects.

#include <chrono>

namespace lint_fixture {

double SecondsSinceEpoch() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

double MonotonicTick() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace lint_fixture
