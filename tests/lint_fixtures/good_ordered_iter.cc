// Lint fixture: clean twin of bad_unordered_iter.cc — MUST produce no
// findings.
//
// Anything that walks a keyed collection into results or logs uses an
// ordered container (or a sorted copy of the keys), so emission order is a
// function of the keys alone. Point lookups into unordered containers
// remain fine — only iteration order is implementation-defined.

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace lint_fixture {

std::vector<uint32_t> HistogramKeys(
    const std::map<uint32_t, uint64_t>& histogram) {
  std::vector<uint32_t> keys;
  keys.reserve(histogram.size());
  for (const auto& entry : histogram) {
    keys.push_back(entry.first);
  }
  return keys;
}

uint64_t LookupCount(const std::unordered_map<uint32_t, uint64_t>& counts,
                     uint32_t key) {
  // Distinct name from the ordered `histogram` above: the lexical engine
  // tracks unordered-declared identifiers per file, so reusing a name across
  // ordered and unordered declarations would (conservatively) flag both.
  const auto it = counts.find(key);
  return it == counts.end() ? 0 : it->second;
}

}  // namespace lint_fixture
