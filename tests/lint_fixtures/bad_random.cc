// Lint fixture: MUST be flagged [nondet-random] by tools/lint_determinism.
//
// std::random_device and the C rand() family draw from process-global,
// unseeded state — no experiment that touches them is reproducible. The
// clean twin (good_seeded_rng.cc) uses the repo's seeded, splittable Rng.

#include <cstdlib>
#include <random>

namespace lint_fixture {

unsigned HardwareEntropy() {
  std::random_device rd;
  return rd();
}

int GlobalStateDraw() {
  std::srand(42);
  return std::rand();
}

}  // namespace lint_fixture
