// Lint fixture: clean twin of bad_wallclock.cc — MUST produce no findings.
//
// Time is modeled, not measured: components charge seconds to a SimClock
// cost category, and "now" is whatever the simulation says. The same seed
// therefore yields the same timeline on every machine.

#include "iosim/sim_clock.h"

namespace lint_fixture {

double ModeledIoSeconds(corgipile::SimClock& clock) {
  clock.Advance(corgipile::TimeCategory::kIoRead, 0.004);
  return clock.Elapsed(corgipile::TimeCategory::kIoRead);
}

double ModeledTotal(const corgipile::SimClock& clock) {
  return clock.TotalElapsed();
}

}  // namespace lint_fixture
