// Lint fixture: MUST be flagged [unordered-iter] by tools/lint_determinism.
//
// Iterating an unordered container visits buckets in an order that depends
// on the library's hash and bucket count — output assembled this way differs
// across platforms (and across libstdc++ versions). Clean twin:
// good_ordered_iter.cc.

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lint_fixture {

std::vector<uint32_t> HistogramKeys(
    const std::unordered_map<uint32_t, uint64_t>& histogram) {
  std::vector<uint32_t> keys;
  keys.reserve(histogram.size());
  for (const auto& entry : histogram) {
    keys.push_back(entry.first);
  }
  return keys;
}

uint64_t FirstCount(const std::unordered_map<uint32_t, uint64_t>& histogram) {
  auto it = histogram.begin();
  return it == histogram.end() ? 0 : it->second;
}

}  // namespace lint_fixture
