// Lint fixture: MUST FAIL to compile with -Werror=unused-result.
//
// Status is [[nodiscard]] (util/status.h): a call that returns one and
// ignores it silently swallows I/O errors, corruption, and cancellation.
// The self-test compiles this TU and asserts the compiler rejects it.
// Clean twin: good_checked_status.cc.

#include "util/status.h"

namespace lint_fixture {

corgipile::Status MightFail() {
  return corgipile::Status::IoError("disk on fire");
}

void Caller() {
  MightFail();  // dropped Status — the build must refuse this
}

}  // namespace lint_fixture
