// Lint fixture: clean twin of bad_unguarded_field.cc — MUST compile under
// clang -Wthread-safety -Werror (and everywhere else).
//
// Every access to the CORGI_GUARDED_BY(mu_) field happens behind a
// MutexLock, so Thread Safety Analysis can prove the locking discipline.

#include <cstdint>

#include "util/mutex.h"

namespace lint_fixture {

class Counter {
 public:
  void Increment() {
    corgipile::MutexLock lock(mu_);
    ++value_;
  }

  uint64_t Read() const {
    corgipile::MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable corgipile::Mutex mu_;
  uint64_t value_ CORGI_GUARDED_BY(mu_) = 0;
};

uint64_t Use() {
  Counter c;
  c.Increment();
  return c.Read();
}

}  // namespace lint_fixture
