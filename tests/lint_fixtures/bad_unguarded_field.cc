// Lint fixture: MUST FAIL under clang -Wthread-safety -Werror.
//
// `value_` is CORGI_GUARDED_BY(mu_), but UnsafeRead() touches it without
// holding the mutex — exactly the class of race Thread Safety Analysis
// catches at compile time. Under GCC the annotations expand to nothing and
// this TU compiles cleanly; the self-test therefore only asserts the
// failure when a clang is available. Clean twin: good_guarded_field.cc.

#include <cstdint>

#include "util/mutex.h"

namespace lint_fixture {

class Counter {
 public:
  void Increment() {
    corgipile::MutexLock lock(mu_);
    ++value_;
  }

  uint64_t UnsafeRead() const {
    return value_;  // no lock held — TSA must reject this read
  }

 private:
  mutable corgipile::Mutex mu_;
  uint64_t value_ CORGI_GUARDED_BY(mu_) = 0;
};

uint64_t Use() {
  Counter c;
  c.Increment();
  return c.UnsafeRead();
}

}  // namespace lint_fixture
