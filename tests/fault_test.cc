// Fault-injection suite: deterministic injector behaviour, page/record
// checksum detection, retry-with-backoff, quarantine-and-keep-training,
// crash-safe checkpoints, and buffer-manager behaviour under faults.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "dataset/catalog.h"
#include "dataset/loader.h"
#include "db/block_shuffle_op.h"
#include "db/database.h"
#include "db/query.h"
#include "db/tuple_shuffle_op.h"
#include "dataloader/record_file.h"
#include "iosim/fault_injector.h"
#include "iosim/sim_clock.h"
#include "ml/checkpoint.h"
#include "ml/linear_models.h"
#include "ml/trainer.h"
#include "shuffle/tuple_stream.h"
#include "storage/block_source.h"
#include "storage/buffer_manager.h"
#include "storage/heapfile.h"
#include "storage/page.h"
#include "storage/table.h"
#include "util/status.h"

namespace corgipile {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

/// Stamps every failure message of the enclosing scope with the scenario
/// (the test name) and the fault seed, so a red run reproduces with
/// `--gtest_filter=<scenario>` and the printed seed (DESIGN.md §12).
#define FAULT_SCENARIO_TRACE(seed_expr)                                      \
  SCOPED_TRACE(::std::string("scenario=") +                                  \
               ::testing::UnitTest::GetInstance()->current_test_info()->name() + \
               " seed=" + ::std::to_string(seed_expr))

// Flips one bit of the file at `path`, byte `offset`.
void FlipByteOnDisk(const std::string& path, uint64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
}

// --- FaultInjector determinism -------------------------------------------

TEST(FaultInjectorTest, DecisionsAreDeterministic) {
  FaultConfig cfg;
  cfg.seed = 99;
  FAULT_SCENARIO_TRACE(cfg.seed);
  cfg.permanent_read_error_rate = 0.5;
  FaultInjector a(cfg), b(cfg);
  const uint64_t tag = FaultInjector::TagForPath("/data/t.tbl");
  bool any_error = false, any_ok = false;
  for (uint64_t off = 0; off < 64 * 4096; off += 4096) {
    const Status sa = a.OnReadAttempt(tag, off);
    const Status sb = b.OnReadAttempt(tag, off);
    EXPECT_EQ(sa.ok(), sb.ok()) << "offset " << off;
    any_error |= !sa.ok();
    any_ok |= sa.ok();
  }
  EXPECT_TRUE(any_error);
  EXPECT_TRUE(any_ok);
  EXPECT_EQ(FaultInjector::TagForPath("/data/t.tbl"), tag);
  EXPECT_NE(FaultInjector::TagForPath("/data/u.tbl"), tag);
}

TEST(FaultInjectorTest, TransientSiteEventuallySucceeds) {
  FaultConfig cfg;
  cfg.seed = 7;
  FAULT_SCENARIO_TRACE(cfg.seed);
  cfg.transient_read_error_rate = 1.0;
  cfg.max_transient_failures = 3;
  FaultInjector inj(cfg);
  int failures = 0;
  Status st;
  for (int attempt = 0; attempt < 10; ++attempt) {
    st = inj.OnReadAttempt(1, 0);
    if (st.ok()) break;
    ++failures;
  }
  EXPECT_TRUE(st.ok());
  EXPECT_GE(failures, 1);
  EXPECT_LE(failures, 3);
  // Once drained, the site stays healthy.
  EXPECT_TRUE(inj.OnReadAttempt(1, 0).ok());
}

TEST(FaultInjectorTest, BitFlipIsStickyAndCounted) {
  FaultConfig cfg;
  cfg.seed = 5;
  FAULT_SCENARIO_TRACE(cfg.seed);
  cfg.bit_flip_rate = 1.0;
  FaultInjector inj(cfg);
  std::vector<uint8_t> a(64, 0xAB), b(64, 0xAB);
  EXPECT_TRUE(inj.MaybeCorrupt(2, 128, a.data(), a.size()));
  EXPECT_TRUE(inj.MaybeCorrupt(2, 128, b.data(), b.size()));
  EXPECT_EQ(a, b);  // same site → same flipped bit
  EXPECT_NE(a, std::vector<uint8_t>(64, 0xAB));
  EXPECT_EQ(inj.stats().injected_bit_flips.load(), 2u);
}

TEST(RetryPolicyTest, BackoffIsExponential) {
  RetryPolicy p;
  p.initial_backoff_s = 0.001;
  p.backoff_multiplier = 2.0;
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(0), 0.001);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(1), 0.002);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(2), 0.004);
}

// --- Page validation + checksums -----------------------------------------

TEST(PageValidateTest, EmptyAndPopulatedPagesAreValid) {
  Page p(512);
  EXPECT_TRUE(p.Validate().ok());
  const uint8_t rec[] = {1, 2, 3, 4};
  ASSERT_TRUE(p.AddRecord(rec, sizeof(rec)));
  EXPECT_TRUE(p.Validate().ok());
}

TEST(PageValidateTest, RejectsMalformedBytes) {
  // Too small to hold a header.
  EXPECT_TRUE(Page::FromBytes(std::vector<uint8_t>(4, 0))
                  .Validate()
                  .IsCorruption());

  // Slot directory larger than the page.
  std::vector<uint8_t> overflow(64, 0);
  overflow[0] = 0xFF;  // num_slots = 0x00FF → directory needs 8+255*4 bytes
  EXPECT_TRUE(Page::FromBytes(overflow).Validate().IsCorruption());

  // data_start before the directory end.
  std::vector<uint8_t> bad_start(64, 0);  // num_slots=0, data_start=0 < 8
  EXPECT_TRUE(Page::FromBytes(bad_start).Validate().IsCorruption());

  // One slot whose offset points into the directory.
  Page good(64);
  const uint8_t rec[] = {9, 9};
  ASSERT_TRUE(good.AddRecord(rec, sizeof(rec)));
  std::vector<uint8_t> slot_bad = good.bytes();
  slot_bad[8] = 0;  // slot 0 offset low byte → 0 (inside header)
  slot_bad[9] = 0;
  EXPECT_TRUE(Page::FromBytes(slot_bad).Validate().IsCorruption());

  // One slot with zero length.
  std::vector<uint8_t> len_bad = good.bytes();
  len_bad[10] = 0;
  len_bad[11] = 0;
  EXPECT_TRUE(Page::FromBytes(len_bad).Validate().IsCorruption());
}

TEST(PageChecksumTest, StampVerifyAndInvalidate) {
  Page p(512);
  const uint8_t rec[] = {10, 20, 30};
  ASSERT_TRUE(p.AddRecord(rec, sizeof(rec)));
  EXPECT_EQ(p.stored_checksum(), 0u);  // unstamped
  EXPECT_TRUE(p.VerifyChecksum());     // trivially

  p.StampChecksum();
  EXPECT_NE(p.stored_checksum(), 0u);
  EXPECT_TRUE(p.VerifyChecksum());

  p.data()[p.size() - 1] ^= 0x01;  // corrupt a record byte
  EXPECT_FALSE(p.VerifyChecksum());
  p.data()[p.size() - 1] ^= 0x01;
  EXPECT_TRUE(p.VerifyChecksum());

  // Appending after stamping resets the checksum field.
  ASSERT_TRUE(p.AddRecord(rec, sizeof(rec)));
  EXPECT_EQ(p.stored_checksum(), 0u);
}

// --- HeapFile read path ---------------------------------------------------

std::unique_ptr<HeapFile> MakeHeapFile(const std::string& path,
                                       uint32_t page_size, int num_pages) {
  auto file = HeapFile::Create(path, page_size);
  EXPECT_TRUE(file.ok());
  for (int i = 0; i < num_pages; ++i) {
    Page p(page_size);
    std::vector<uint8_t> rec(32);
    for (size_t j = 0; j < rec.size(); ++j) {
      rec[j] = static_cast<uint8_t>(1 + i + j);
    }
    EXPECT_TRUE(p.AddRecord(rec.data(), rec.size()));
    EXPECT_TRUE((*file)->AppendPage(p).ok());
  }
  EXPECT_TRUE((*file)->Sync().ok());
  return std::move(*file);
}

TEST(HeapFileFaultTest, OnDiskBitRotIsDetected) {
  const std::string path = TempPath("hf_bitrot.tbl");
  auto file = MakeHeapFile(path, 512, 3);
  Page out;
  EXPECT_TRUE(file->ReadPage(1, &out).ok());

  FlipByteOnDisk(path, 512 + 300);  // inside page 1's record area
  Status st = file->ReadPage(1, &out);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  // Other pages still read fine.
  EXPECT_TRUE(file->ReadPage(0, &out).ok());
  EXPECT_TRUE(file->ReadPage(2, &out).ok());
}

TEST(HeapFileFaultTest, InjectedBitFlipsAreAlwaysDetected) {
  const std::string path = TempPath("hf_flip.tbl");
  auto file = MakeHeapFile(path, 512, 16);
  FaultConfig cfg;
  cfg.seed = 11;
  FAULT_SCENARIO_TRACE(cfg.seed);
  cfg.bit_flip_rate = 1.0;  // every page read comes back corrupted
  FaultInjector inj(cfg);
  file->SetFaultInjection(&inj);
  Page out;
  for (uint64_t p = 0; p < file->num_pages(); ++p) {
    Status st = file->ReadPage(p, &out);
    EXPECT_TRUE(st.IsCorruption()) << "page " << p << ": " << st.ToString();
  }
  EXPECT_EQ(inj.stats().injected_bit_flips.load(), file->num_pages());
  file->SetFaultInjection(nullptr);
  EXPECT_TRUE(file->ReadPage(0, &out).ok());
}

TEST(HeapFileFaultTest, TransientErrorsRecoverWithBackoff) {
  const std::string path = TempPath("hf_transient.tbl");
  auto file = MakeHeapFile(path, 512, 4);
  FaultConfig cfg;
  cfg.seed = 3;
  FAULT_SCENARIO_TRACE(cfg.seed);
  cfg.transient_read_error_rate = 1.0;
  cfg.max_transient_failures = 2;
  FaultInjector inj(cfg);
  SimClock clock;
  IoStats io;
  file->SetIoAccounting(DeviceProfile::Memory(), &clock, &io);
  file->SetFaultInjection(&inj);
  RetryPolicy policy;
  policy.max_retries = 3;
  file->SetRetryPolicy(policy);

  Page out;
  for (uint64_t p = 0; p < file->num_pages(); ++p) {
    EXPECT_TRUE(file->ReadPage(p, &out).ok()) << "page " << p;
  }
  EXPECT_GE(inj.stats().retries.load(), file->num_pages());
  EXPECT_EQ(inj.stats().recovered.load(), file->num_pages());
  EXPECT_EQ(inj.stats().permanent_failures.load(), 0u);
  EXPECT_GT(clock.Elapsed(TimeCategory::kRetryBackoff), 0.0);
}

TEST(HeapFileFaultTest, PermanentErrorsSurfaceAfterRetries) {
  const std::string path = TempPath("hf_permanent.tbl");
  auto file = MakeHeapFile(path, 512, 1);
  FaultConfig cfg;
  cfg.seed = 3;
  FAULT_SCENARIO_TRACE(cfg.seed);
  cfg.permanent_read_error_rate = 1.0;
  FaultInjector inj(cfg);
  file->SetFaultInjection(&inj);

  Page out;
  Status st = file->ReadPage(0, &out);
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_EQ(inj.stats().permanent_failures.load(), 1u);
  EXPECT_EQ(inj.stats().recovered.load(), 0u);
  // All max_retries + 1 attempts were made and failed.
  EXPECT_EQ(inj.stats().injected_permanent_errors.load(), 4u);
}

TEST(HeapFileFaultTest, TornWriteIsDetectedOnRead) {
  const std::string path = TempPath("hf_torn.tbl");
  FaultConfig cfg;
  cfg.seed = 21;
  FAULT_SCENARIO_TRACE(cfg.seed);
  cfg.torn_write_rate = 1.0;
  FaultInjector inj(cfg);
  auto create = HeapFile::Create(path, 512);
  ASSERT_TRUE(create.ok());
  auto& file = *create;
  file->SetFaultInjection(&inj);
  Page p(512);
  std::vector<uint8_t> rec(200);
  for (size_t j = 0; j < rec.size(); ++j) {
    rec[j] = static_cast<uint8_t>(0x10 + j);
  }
  ASSERT_TRUE(p.AddRecord(rec.data(), rec.size()));
  ASSERT_TRUE(file->AppendPage(p).ok());
  EXPECT_EQ(inj.stats().injected_torn_writes.load(), 1u);
  // The tear is silent at write time; the checksum catches it on read.
  Page out;
  Status st = file->ReadPage(0, &out);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST(HeapFileFaultTest, LatencySpikesChargeSimTime) {
  const std::string path = TempPath("hf_latency.tbl");
  auto file = MakeHeapFile(path, 512, 4);
  FaultConfig cfg;
  cfg.seed = 13;
  FAULT_SCENARIO_TRACE(cfg.seed);
  cfg.latency_spike_rate = 1.0;
  cfg.latency_spike_seconds = 0.25;
  FaultInjector inj(cfg);
  SimClock clock;
  IoStats io;
  file->SetIoAccounting(DeviceProfile::Memory(), &clock, &io);
  file->SetFaultInjection(&inj);
  Page out;
  ASSERT_TRUE(file->ReadPage(0, &out).ok());
  EXPECT_GE(clock.Elapsed(TimeCategory::kIoRead), 0.25);
  EXPECT_EQ(inj.stats().injected_latency_spikes.load(), 1u);
}

// --- Record files ---------------------------------------------------------

std::vector<Tuple> MakeRecordTuples(int n) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < n; ++i) {
    tuples.push_back(MakeDenseTuple(
        i, i % 2 == 0 ? 1.0 : -1.0,
        {1.5f + i, -2.5f * i, 3.0f, static_cast<float>(i)}));
  }
  return tuples;
}

TEST(RecordFileFaultTest, PayloadCorruptionIsDetected) {
  const std::string path = TempPath("rf_crc.bin");
  Schema schema{"r", 4, false, LabelType::kBinary, 2};
  auto tuples = MakeRecordTuples(50);
  auto src = MaterializeRecordFile(schema, tuples, path, 1024);
  ASSERT_TRUE(src.ok());
  std::vector<Tuple> out;
  for (uint32_t b = 0; b < (*src)->num_blocks(); ++b) {
    ASSERT_TRUE((*src)->ReadBlock(b, &out).ok());
  }
  EXPECT_EQ(out.size(), tuples.size());

  // Flip a payload byte of record 0 (header is 8 bytes) and re-open.
  FlipByteOnDisk(path, 12);
  auto index = BuildRecordBlockIndex(path, 1024);
  ASSERT_TRUE(index.ok());
  auto corrupt = RecordFileBlockSource::Open(path, *index, schema);
  ASSERT_TRUE(corrupt.ok());
  out.clear();
  Status st = (*corrupt)->ReadBlock(0, &out);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  // Later blocks are unaffected.
  EXPECT_TRUE((*corrupt)->ReadBlock(1, &out).ok());
}

TEST(RecordFileFaultTest, InjectedFlipsAndRetries) {
  const std::string path = TempPath("rf_inj.bin");
  Schema schema{"r", 4, false, LabelType::kBinary, 2};
  auto src = MaterializeRecordFile(schema, MakeRecordTuples(40), path, 512);
  ASSERT_TRUE(src.ok());

  FaultConfig cfg;
  cfg.seed = 17;
  FAULT_SCENARIO_TRACE(cfg.seed);
  cfg.bit_flip_rate = 1.0;
  FaultInjector flip(cfg);
  (*src)->SetFaultInjection(&flip);
  std::vector<Tuple> out;
  Status st = (*src)->ReadBlock(0, &out);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();

  FaultConfig tcfg;
  tcfg.seed = 17;
  FAULT_SCENARIO_TRACE(tcfg.seed);
  tcfg.transient_read_error_rate = 1.0;
  tcfg.max_transient_failures = 2;
  FaultInjector transient(tcfg);
  (*src)->SetFaultInjection(&transient);
  out.clear();
  EXPECT_TRUE((*src)->ReadBlock(0, &out).ok());
  EXPECT_GE(transient.stats().recovered.load(), 1u);
}

TEST(RecordBlockIndexTest, ValidateRejectsBrokenIndexes) {
  RecordBlockIndex good;
  good.blocks.push_back({0, 100, 5});
  good.blocks.push_back({100, 80, 4});
  good.total_tuples = 9;
  EXPECT_TRUE(good.Validate(180).ok());

  RecordBlockIndex overlap = good;
  overlap.blocks[1].offset = 50;  // overlaps block 0
  EXPECT_TRUE(overlap.Validate(180).IsCorruption());

  RecordBlockIndex oob = good;
  oob.blocks[1].bytes = 500;  // extends past the file
  EXPECT_TRUE(oob.Validate(180).IsCorruption());

  RecordBlockIndex small = good;
  small.blocks[0].num_tuples = 50;  // 100 bytes can't hold 50 records
  EXPECT_TRUE(small.Validate(180).IsCorruption());

  RecordBlockIndex sum = good;
  sum.total_tuples = 42;  // doesn't match the per-block counts
  EXPECT_TRUE(sum.Validate(180).IsCorruption());

  RecordBlockIndex empty = good;
  empty.blocks[0].bytes = 0;
  EXPECT_TRUE(empty.Validate(180).IsCorruption());
}

// --- Quarantine + keep training ------------------------------------------

struct FaultTrainFixture {
  Dataset ds;
  std::unique_ptr<Table> table;
  std::unique_ptr<TableBlockSource> source;

  explicit FaultTrainFixture(const std::string& tag) {
    auto spec = CatalogLookup("susy", 0.1);
    ds = GenerateDataset(*spec, DataOrder::kClustered);
    auto t = MaterializeTrainTable(ds, TempPath(tag + ".tbl"), 2048);
    table = std::move(t).ValueOrDie();
    // 4 pages per block.
    source = std::make_unique<TableBlockSource>(table.get(), 4 * 2048);
  }

  Result<TrainResult> Run(const BlockReadTolerance& tolerance) {
    ShuffleOptions sopts;
    sopts.buffer_fraction = 0.1;
    sopts.tolerance = tolerance;
    auto stream =
        MakeTupleStream(ShuffleStrategy::kCorgiPile, source.get(), sopts);
    EXPECT_TRUE(stream.ok());
    LogisticRegression model(ds.spec.dim);
    TrainerOptions topts;
    topts.epochs = 5;
    topts.lr.initial = 0.005;
    topts.test_set = ds.test.get();
    topts.label_type = ds.MakeSchema().label_type;
    return Train(&model, stream->get(), topts);
  }
};

TEST(QuarantineTrainingTest, TrainingSurvivesSparseBitRot) {
  FaultTrainFixture f("quarantine");
  auto clean = f.Run({});
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->total_quarantined_blocks, 0u);

  // Sparse sticky bit rot: ~1% of pages → a few corrupt blocks.
  FaultConfig cfg;
  cfg.seed = 1234;
  FAULT_SCENARIO_TRACE(cfg.seed);
  cfg.bit_flip_rate = 0.01;
  FaultInjector inj(cfg);
  f.table->SetFaultInjection(&inj);

  BlockReadTolerance tol;
  tol.quarantine_corrupt_blocks = true;
  tol.max_bad_block_fraction = 0.10;
  auto faulty = f.Run(tol);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();

  // Every corrupt block was detected and quarantined, with the loss
  // accounted in the epoch logs.
  EXPECT_GE(faulty->total_quarantined_blocks, 1u);
  EXPECT_GE(faulty->total_skipped_tuples, faulty->total_quarantined_blocks);
  uint64_t epoch_sum = 0;
  for (const EpochLog& log : faulty->epochs) epoch_sum += log.quarantined_blocks;
  EXPECT_EQ(epoch_sum, faulty->total_quarantined_blocks);

  // Losing ~1% of blocks must not change convergence materially.
  EXPECT_NEAR(faulty->final_test_metric, clean->final_test_metric, 0.01);

  // Without tolerance the same faults abort the run.
  auto strict = f.Run({});
  EXPECT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsCorruption()) << strict.status().ToString();

  f.table->SetFaultInjection(nullptr);
}

TEST(QuarantineTrainingTest, AbortsPastBadBlockThreshold) {
  FaultTrainFixture f("threshold");
  FaultConfig cfg;
  cfg.seed = 2;
  FAULT_SCENARIO_TRACE(cfg.seed);
  cfg.bit_flip_rate = 1.0;  // every block is corrupt
  FaultInjector inj(cfg);
  f.table->SetFaultInjection(&inj);

  BlockReadTolerance tol;
  tol.quarantine_corrupt_blocks = true;
  tol.max_bad_block_fraction = 0.05;
  auto result = f.Run(tol);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption()) << result.status().ToString();
  f.table->SetFaultInjection(nullptr);
}

TEST(QuarantineTrainingTest, DatabasePipelineQuarantinesAndReports) {
  const std::string dir = TempPath("db_fault");
  std::filesystem::create_directories(dir);
  Database db(dir, DeviceProfile::Memory(), /*buffer_pool_bytes=*/0);
  auto spec = CatalogLookup("susy", 0.1);
  Dataset ds = GenerateDataset(*spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());

  FaultConfig cfg;
  cfg.seed = 77;
  FAULT_SCENARIO_TRACE(cfg.seed);
  cfg.bit_flip_rate = 0.03;
  FaultInjector inj(cfg);
  db.SetFaultInjection(&inj);

  TrainStatement stmt;
  stmt.table_name = "susy";
  stmt.model_kind = "lr";
  stmt.params = Params::Parse(
                    "learning_rate=0.005, max_epoch_num=4, block_size=16KB, "
                    "tolerate_corruption=true, max_bad_fraction=0.25")
                    .ValueOrDie();
  auto tolerant = db.Train(stmt);
  ASSERT_TRUE(tolerant.ok()) << tolerant.status().ToString();
  EXPECT_GE(tolerant->total_quarantined_blocks, 1u);
  EXPECT_GE(tolerant->total_skipped_tuples, 1u);
  uint64_t epoch_sum = 0;
  for (const EpochLog& log : tolerant->epochs) {
    epoch_sum += log.quarantined_blocks;
  }
  EXPECT_EQ(epoch_sum, tolerant->total_quarantined_blocks);
  EXPECT_GT(tolerant->final_metric, 0.6);  // still learns

  // Same faults without the tolerance flag abort with kCorruption.
  stmt.params = Params::Parse(
                    "learning_rate=0.005, max_epoch_num=4, block_size=16KB")
                    .ValueOrDie();
  auto strict = db.Train(stmt);
  EXPECT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsCorruption()) << strict.status().ToString();
  db.SetFaultInjection(nullptr);
}

// A corrupt block mid-stream with corruption tolerance off must surface
// kCorruption through TupleShuffleOp::status() in BOTH buffer modes: the
// double-buffered path delivers the producer's error through the channel
// after the already-filled buffers drain, i.e. at the same point in the
// tuple stream where the single-buffered path hits it.
TEST(QuarantineTrainingTest, CorruptionSurfacesInBothBufferModes) {
  for (const bool double_buffer : {false, true}) {
    SCOPED_TRACE(double_buffer ? "double buffered" : "single buffered");
    FaultTrainFixture f(double_buffer ? "pipe_corrupt_d" : "pipe_corrupt_s");

    BlockShuffleOp::Options bopts;
    bopts.block_size_bytes = 4 * 2048;
    bopts.seed = 5;  // shuffled block order → the corrupt block lands
                     // mid-stream, after healthy blocks were consumed
    BlockShuffleOp block_op(f.table.get(), bopts);
    TupleShuffleOp::Options topts;
    topts.buffer_tuples = 64;
    topts.double_buffer = double_buffer;
    TupleShuffleOp op(&block_op, topts);

    // Sparse sticky corruption; tolerance is off (no BlockReadTolerance).
    FaultConfig cfg;
    cfg.seed = 1234;
    FAULT_SCENARIO_TRACE(cfg.seed);
    cfg.bit_flip_rate = 0.01;
    FaultInjector inj(cfg);
    f.table->SetFaultInjection(&inj);

    ASSERT_TRUE(op.Init().ok());
    uint64_t delivered = 0;
    while (op.Next() != nullptr) ++delivered;
    Status st = op.status();
    EXPECT_TRUE(st.IsCorruption()) << st.ToString();
    // Healthy buffers filled before the bad block still reached the
    // consumer.
    EXPECT_GT(delivered, 0u);
    EXPECT_LT(delivered, f.ds.train->size());
    op.Close();
    f.table->SetFaultInjection(nullptr);
  }
}

// --- Checkpoints ----------------------------------------------------------

TEST(CheckpointTest, RoundTrip) {
  TrainCheckpoint ckpt;
  ckpt.model_name = "lr";
  ckpt.next_epoch = 7;
  ckpt.params = {0.25, -1.5, 3.75};
  ckpt.avg_params = {0.1, 0.2, 0.3};
  ckpt.weight_sum = 12.5;
  ckpt.total_tuples = 123456;
  ckpt.best_test_metric = 0.87;
  ckpt.total_quarantined_blocks = 3;
  ckpt.total_skipped_tuples = 99;
  const std::string path = TempPath("ckpt_rt.bin");
  ASSERT_TRUE(SaveCheckpoint(ckpt, path).ok());

  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->model_name, ckpt.model_name);
  EXPECT_EQ(loaded->next_epoch, ckpt.next_epoch);
  EXPECT_EQ(loaded->params, ckpt.params);
  EXPECT_EQ(loaded->avg_params, ckpt.avg_params);
  EXPECT_DOUBLE_EQ(loaded->weight_sum, ckpt.weight_sum);
  EXPECT_EQ(loaded->total_tuples, ckpt.total_tuples);
  EXPECT_DOUBLE_EQ(loaded->best_test_metric, ckpt.best_test_metric);
  EXPECT_EQ(loaded->total_quarantined_blocks, 3u);
  EXPECT_EQ(loaded->total_skipped_tuples, 99u);
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  auto r = LoadCheckpoint(TempPath("no_such_ckpt.bin"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(CheckpointTest, CorruptFileIsRejected) {
  TrainCheckpoint ckpt;
  ckpt.model_name = "svm";
  ckpt.params = {1.0, 2.0};
  const std::string path = TempPath("ckpt_corrupt.bin");
  ASSERT_TRUE(SaveCheckpoint(ckpt, path).ok());
  FlipByteOnDisk(path, 20);
  auto r = LoadCheckpoint(path);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

TEST(CheckpointTest, ResumeReproducesTheUninterruptedRun) {
  auto spec = CatalogLookup("susy", 0.1);
  Dataset ds = GenerateDataset(*spec, DataOrder::kClustered);
  auto tuples = std::make_shared<const std::vector<Tuple>>(*ds.train);
  InMemoryBlockSource source(ds.MakeSchema(), tuples, 100);

  auto make_stream = [&] {
    ShuffleOptions sopts;
    sopts.buffer_fraction = 0.1;
    auto s = MakeTupleStream(ShuffleStrategy::kCorgiPile, &source, sopts);
    EXPECT_TRUE(s.ok());
    return std::move(*s);
  };
  TrainerOptions base;
  base.epochs = 6;
  base.lr.initial = 0.005;
  base.test_set = ds.test.get();
  base.label_type = ds.MakeSchema().label_type;

  // Uninterrupted reference run.
  LogisticRegression full_model(ds.spec.dim);
  auto full_stream = make_stream();
  auto full = Train(&full_model, full_stream.get(), base);
  ASSERT_TRUE(full.ok());

  // Run that "crashes" after epoch 3, leaving a checkpoint behind…
  const std::string ckpt = TempPath("ckpt_resume.bin");
  std::filesystem::remove(ckpt);
  {
    LogisticRegression model(ds.spec.dim);
    auto stream = make_stream();
    TrainerOptions opts = base;
    opts.epochs = 3;
    opts.checkpoint_path = ckpt;
    ASSERT_TRUE(Train(&model, stream.get(), opts).ok());
  }

  // …and a fresh process resuming from it.
  LogisticRegression resumed_model(ds.spec.dim);
  auto resumed_stream = make_stream();
  TrainerOptions opts = base;
  opts.checkpoint_path = ckpt;
  opts.resume = true;
  auto resumed = Train(&resumed_model, resumed_stream.get(), opts);
  ASSERT_TRUE(resumed.ok());

  EXPECT_EQ(resumed->resumed_from_epoch, 3u);
  EXPECT_EQ(resumed->epochs.size(), 3u);  // epochs 3, 4, 5
  ASSERT_EQ(resumed_model.params().size(), full_model.params().size());
  for (size_t i = 0; i < full_model.params().size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed_model.params()[i], full_model.params()[i])
        << "param " << i;
  }
  EXPECT_DOUBLE_EQ(resumed->final_test_metric, full->final_test_metric);
  EXPECT_EQ(resumed->total_tuples, full->total_tuples);
}

// --- BufferManager under faults ------------------------------------------

TEST(BufferManagerFaultTest, EvictsLeastRecentlyUsed) {
  const std::string path = TempPath("bm_evict.tbl");
  auto file = MakeHeapFile(path, 512, 4);
  BufferManager bm(2 * 512);  // room for two pages

  ASSERT_TRUE(bm.Fetch(file.get(), 0).ok());
  ASSERT_TRUE(bm.Fetch(file.get(), 1).ok());
  ASSERT_TRUE(bm.Fetch(file.get(), 0).ok());  // touch 0 → 1 becomes LRU
  ASSERT_TRUE(bm.Fetch(file.get(), 2).ok());  // evicts 1

  EXPECT_TRUE(bm.Contains(file.get(), 0));
  EXPECT_FALSE(bm.Contains(file.get(), 1));
  EXPECT_TRUE(bm.Contains(file.get(), 2));
  EXPECT_EQ(bm.stats().evictions, 1u);
}

TEST(BufferManagerFaultTest, CorruptPageIsNeverCached) {
  const std::string path = TempPath("bm_corrupt.tbl");
  auto file = MakeHeapFile(path, 512, 2);
  FlipByteOnDisk(path, 512 + 400);  // page 1

  BufferManager bm(8 * 512);
  auto bad = bm.Fetch(file.get(), 1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsCorruption()) << bad.status().ToString();
  EXPECT_FALSE(bm.Contains(file.get(), 1));
  // The healthy page still caches normally.
  ASSERT_TRUE(bm.Fetch(file.get(), 0).ok());
  EXPECT_TRUE(bm.Contains(file.get(), 0));
}

TEST(BufferManagerFaultTest, FetchedPageSurvivesInvalidate) {
  const std::string path = TempPath("bm_pin.tbl");
  auto file = MakeHeapFile(path, 512, 1);
  BufferManager bm(8 * 512);
  auto page = bm.Fetch(file.get(), 0);
  ASSERT_TRUE(page.ok());
  const uint16_t before = (*page)->num_records();
  bm.Invalidate(file.get());
  EXPECT_FALSE(bm.Contains(file.get(), 0));
  // The shared_ptr keeps the evicted page alive and intact.
  EXPECT_EQ((*page)->num_records(), before);
  EXPECT_TRUE((*page)->Validate().ok());
}

TEST(BufferManagerFaultTest, InvalidateRacingFetchIsSafe) {
  const std::string path = TempPath("bm_race.tbl");
  auto file = MakeHeapFile(path, 512, 8);
  BufferManager bm(4 * 512);

  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    while (!stop.load()) bm.Invalidate(file.get());
  });
  for (int iter = 0; iter < 2000; ++iter) {
    auto page = bm.Fetch(file.get(), iter % 8);
    ASSERT_TRUE(page.ok());
    EXPECT_TRUE((*page)->Validate().ok());
    EXPECT_EQ((*page)->num_records(), 1u);
  }
  stop.store(true);
  invalidator.join();
}

}  // namespace
}  // namespace corgipile
