// Golden equivalence suite for the batched execution pipeline (DESIGN.md
// §9): the batched transport (NextBatch / Batch* kernels) must emit the
// same tuples in the same order, and produce bit-identical training
// results, as the per-tuple reference path — for every shuffle strategy,
// seed, and transport batch size.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "dataset/catalog.h"
#include "dataset/loader.h"
#include "db/block_shuffle_op.h"
#include "db/sgd_op.h"
#include "db/tuple_shuffle_op.h"
#include "exec/per_tuple_adapter.h"
#include "exec/tuple_batch.h"
#include "iosim/fault_injector.h"
#include "ml/linear_models.h"
#include "ml/trainer.h"
#include "shuffle/tuple_stream.h"
#include "storage/block_source.h"

namespace corgipile {
namespace {

// Mixed-width toy data so the batched arena exercises both the uniform
// dense fast path (dense=true) and ragged sparse spans (dense=false).
std::shared_ptr<std::vector<Tuple>> ToyData(size_t n, bool dense) {
  auto tuples = std::make_shared<std::vector<Tuple>>();
  for (size_t i = 0; i < n; ++i) {
    const double label = i < n / 2 ? -1.0 : 1.0;
    if (dense) {
      tuples->push_back(MakeDenseTuple(
          i, label,
          {static_cast<float>(i) * 0.01f, 1.0f - static_cast<float>(i % 7)}));
    } else {
      std::vector<uint32_t> keys{static_cast<uint32_t>(i % 5),
                                 5 + static_cast<uint32_t>(i % 3)};
      tuples->push_back(MakeSparseTuple(
          i, label, std::move(keys),
          {static_cast<float>(i % 11) * 0.1f, 0.5f}));
    }
  }
  return tuples;
}

Schema ToySchema(bool dense) {
  return Schema{"toy", dense ? 2u : 8u, !dense, LabelType::kBinary, 2};
}

std::vector<Tuple> DrainPerTuple(TupleStream* stream, uint64_t epoch) {
  EXPECT_TRUE(stream->StartEpoch(epoch).ok());
  std::vector<Tuple> out;
  while (const Tuple* t = stream->Next()) out.push_back(*t);
  EXPECT_TRUE(stream->status().ok());
  return out;
}

std::vector<Tuple> DrainBatched(TupleStream* stream, uint64_t epoch,
                                size_t batch_tuples) {
  EXPECT_TRUE(stream->StartEpoch(epoch).ok());
  std::vector<Tuple> out;
  TupleBatch batch(batch_tuples);
  while (stream->NextBatch(&batch)) {
    EXPECT_LE(batch.size(), batch_tuples);
    for (size_t i = 0; i < batch.size(); ++i) out.push_back(batch.ToTuple(i));
  }
  EXPECT_TRUE(stream->status().ok());
  return out;
}

constexpr ShuffleStrategy kAllStrategies[] = {
    ShuffleStrategy::kNoShuffle,     ShuffleStrategy::kShuffleOnce,
    ShuffleStrategy::kEpochShuffle,  ShuffleStrategy::kSlidingWindow,
    ShuffleStrategy::kMrs,           ShuffleStrategy::kBlockOnly,
    ShuffleStrategy::kCorgiPile};

class BatchEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<ShuffleStrategy, uint64_t>> {
};

// The concatenation of NextBatch batches equals the Next() emission order
// exactly — tuples, labels, features, everything — at several transport
// batch sizes, across epochs, for dense and sparse data.
TEST_P(BatchEquivalenceTest, BatchedOrderMatchesPerTuple) {
  const ShuffleStrategy strategy = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  for (bool dense : {true, false}) {
    const size_t n = 500;
    auto tuples = ToyData(n, dense);
    InMemoryBlockSource src(ToySchema(dense), tuples, 37);
    ShuffleOptions opts;
    opts.buffer_fraction = 0.1;
    opts.seed = seed;

    // Separate stream instances: the two transports must not interleave on
    // one stream within an epoch. Same (strategy, seed) → same sequence.
    auto ref = MakeTupleStream(strategy, &src, opts);
    ASSERT_TRUE(ref.ok());
    std::vector<std::vector<Tuple>> expected;
    for (uint64_t epoch = 0; epoch < 2; ++epoch) {
      expected.push_back(DrainPerTuple(ref->get(), epoch));
      ASSERT_FALSE(expected.back().empty());
    }

    for (size_t batch_tuples : {size_t{1}, size_t{7}, size_t{64}, n}) {
      auto stream = MakeTupleStream(strategy, &src, opts);
      ASSERT_TRUE(stream.ok());
      for (uint64_t epoch = 0; epoch < 2; ++epoch) {
        const auto got = DrainBatched(stream->get(), epoch, batch_tuples);
        ASSERT_EQ(got.size(), expected[epoch].size())
            << (*stream)->name() << " batch=" << batch_tuples
            << " dense=" << dense;
        for (size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i], expected[epoch][i])
              << (*stream)->name() << " batch=" << batch_tuples
              << " dense=" << dense << " pos=" << i;
        }
      }
    }
  }
}

// PerTupleAdapter over the batched interface reproduces Next() exactly.
TEST_P(BatchEquivalenceTest, PerTupleAdapterMatchesNext) {
  const ShuffleStrategy strategy = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  auto tuples = ToyData(300, /*dense=*/true);
  InMemoryBlockSource src(ToySchema(true), tuples, 31);
  ShuffleOptions opts;
  opts.buffer_fraction = 0.15;
  opts.seed = seed;

  auto ref = MakeTupleStream(strategy, &src, opts);
  auto wrapped = MakeTupleStream(strategy, &src, opts);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(wrapped.ok());
  PerTupleAdapter adapter(wrapped->get(), /*batch_tuples=*/13);
  for (uint64_t epoch = 0; epoch < 2; ++epoch) {
    ASSERT_TRUE(ref.ValueOrDie()->StartEpoch(epoch).ok());
    ASSERT_TRUE(adapter.StartEpoch(epoch).ok());
    for (;;) {
      const Tuple* want = ref.ValueOrDie()->Next();
      const Tuple* got = adapter.Next();
      if (want == nullptr) {
        ASSERT_EQ(got, nullptr);
        break;
      }
      ASSERT_NE(got, nullptr);
      ASSERT_EQ(*got, *want);
    }
    EXPECT_TRUE(adapter.status().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesThreeSeeds, BatchEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(kAllStrategies),
                       ::testing::Values(1u, 42u, 20260805u)),
    [](const auto& info) {
      return std::string(ShuffleStrategyToString(std::get<0>(info.param))) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

// --- Training bit-identity -----------------------------------------------

Result<TrainResult> TrainToy(ShuffleStrategy strategy, uint64_t seed,
                             uint32_t exec_batch_tuples, uint32_t batch_size,
                             OptimizerKind optimizer, BlockSource* src) {
  ShuffleOptions sopts;
  sopts.buffer_fraction = 0.1;
  sopts.seed = seed;
  auto stream = MakeTupleStream(strategy, src, sopts);
  if (!stream.ok()) return stream.status();
  LogisticRegression model(2, /*l2_reg=*/1e-4);
  TrainerOptions topts;
  topts.epochs = 3;
  topts.lr.initial = 0.05;
  topts.batch_size = batch_size;
  topts.optimizer = optimizer;
  topts.exec_batch_tuples = exec_batch_tuples;
  CORGI_ASSIGN_OR_RETURN(TrainResult result,
                         Train(&model, stream->get(), topts));
  return result;
}

// Epoch losses are compared bit-for-bit (EXPECT_EQ on doubles, not NEAR):
// the transport batch size must not change a single floating-point op.
TEST(TrainBatchEquivalenceTest, EpochLossesBitIdenticalAcrossBatchSizes) {
  auto tuples = ToyData(700, /*dense=*/true);
  InMemoryBlockSource src(ToySchema(true), tuples, 41);
  for (ShuffleStrategy strategy :
       {ShuffleStrategy::kCorgiPile, ShuffleStrategy::kSlidingWindow}) {
    auto legacy = TrainToy(strategy, 42, /*exec=*/0, /*batch=*/1,
                           OptimizerKind::kSgd, &src);
    ASSERT_TRUE(legacy.ok());
    for (uint32_t exec : {1u, 7u, 256u}) {
      auto batched = TrainToy(strategy, 42, exec, /*batch=*/1,
                              OptimizerKind::kSgd, &src);
      ASSERT_TRUE(batched.ok());
      ASSERT_EQ(batched->epochs.size(), legacy->epochs.size());
      for (size_t e = 0; e < legacy->epochs.size(); ++e) {
        EXPECT_EQ(batched->epochs[e].train_loss, legacy->epochs[e].train_loss)
            << ShuffleStrategyToString(strategy) << " exec=" << exec
            << " epoch=" << e;
        EXPECT_EQ(batched->epochs[e].tuples_seen,
                  legacy->epochs[e].tuples_seen);
      }
    }
  }
}

// The mini-batch optimizer path: flush cadence must survive re-chunking
// across transport batch boundaries (incl. batch_size not dividing the
// transport size).
TEST(TrainBatchEquivalenceTest, MiniBatchAdamBitIdentical) {
  auto tuples = ToyData(500, /*dense=*/true);
  InMemoryBlockSource src(ToySchema(true), tuples, 41);
  auto legacy = TrainToy(ShuffleStrategy::kCorgiPile, 7, /*exec=*/0,
                         /*batch=*/32, OptimizerKind::kAdam, &src);
  ASSERT_TRUE(legacy.ok());
  for (uint32_t exec : {24u, 256u}) {
    auto batched = TrainToy(ShuffleStrategy::kCorgiPile, 7, exec,
                            /*batch=*/32, OptimizerKind::kAdam, &src);
    ASSERT_TRUE(batched.ok());
    for (size_t e = 0; e < legacy->epochs.size(); ++e) {
      EXPECT_EQ(batched->epochs[e].train_loss, legacy->epochs[e].train_loss)
          << "exec=" << exec << " epoch=" << e;
    }
  }
}

// Final model parameters must also be bit-identical, and sparse data must
// go through the sparse arena spans.
TEST(TrainBatchEquivalenceTest, FinalParamsBitIdenticalSparse) {
  auto tuples = ToyData(400, /*dense=*/false);
  InMemoryBlockSource src(ToySchema(false), tuples, 29);
  std::vector<std::vector<double>> params;
  for (uint32_t exec : {0u, 1u, 64u}) {
    ShuffleOptions sopts;
    sopts.buffer_fraction = 0.1;
    sopts.seed = 13;
    auto stream = MakeTupleStream(ShuffleStrategy::kCorgiPile, &src, sopts);
    ASSERT_TRUE(stream.ok());
    LogisticRegression model(8, /*l2_reg=*/1e-3);
    TrainerOptions topts;
    topts.epochs = 3;
    topts.lr.initial = 0.05;
    topts.exec_batch_tuples = exec;
    ASSERT_TRUE(Train(&model, stream->get(), topts).ok());
    params.push_back(model.params());
  }
  EXPECT_EQ(params[1], params[0]);
  EXPECT_EQ(params[2], params[0]);
}

// Quarantine accounting: the batched path must count the same quarantined
// blocks and skipped tuples — and produce the same losses on the surviving
// data — as the per-tuple path.
TEST(TrainBatchEquivalenceTest, QuarantineCountsMatch) {
  auto spec = CatalogLookup("susy", 0.05);
  Dataset ds = GenerateDataset(*spec, DataOrder::kClustered);
  auto table = MaterializeTrainTable(
      ds, testing::TempDir() + "batch_equiv_quarantine.tbl", 2048);
  ASSERT_TRUE(table.ok());
  FaultConfig cfg;
  cfg.seed = 1234;
  cfg.bit_flip_rate = 0.01;
  FaultInjector inj(cfg);
  (*table)->SetFaultInjection(&inj);
  TableBlockSource source(table->get(), 4 * 2048);

  auto run = [&](uint32_t exec) -> Result<TrainResult> {
    ShuffleOptions sopts;
    sopts.buffer_fraction = 0.1;
    sopts.tolerance.quarantine_corrupt_blocks = true;
    sopts.tolerance.max_bad_block_fraction = 0.10;
    auto stream =
        MakeTupleStream(ShuffleStrategy::kCorgiPile, &source, sopts);
    if (!stream.ok()) return stream.status();
    LogisticRegression model(ds.spec.dim);
    TrainerOptions topts;
    topts.epochs = 3;
    topts.lr.initial = 0.005;
    topts.exec_batch_tuples = exec;
    return Train(&model, stream->get(), topts);
  };

  auto legacy = run(0);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  ASSERT_GE(legacy->total_quarantined_blocks, 1u);
  auto batched = run(128);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  EXPECT_EQ(batched->total_quarantined_blocks,
            legacy->total_quarantined_blocks);
  EXPECT_EQ(batched->total_skipped_tuples, legacy->total_skipped_tuples);
  ASSERT_EQ(batched->epochs.size(), legacy->epochs.size());
  for (size_t e = 0; e < legacy->epochs.size(); ++e) {
    EXPECT_EQ(batched->epochs[e].quarantined_blocks,
              legacy->epochs[e].quarantined_blocks);
    EXPECT_EQ(batched->epochs[e].skipped_tuples,
              legacy->epochs[e].skipped_tuples);
    EXPECT_EQ(batched->epochs[e].train_loss, legacy->epochs[e].train_loss);
  }
}

// The db operator pipeline (BlockShuffle → TupleShuffle → SgdOp): batched
// transport through the operators is bit-identical to per-tuple pulls,
// including through the index-permutation staging shuffle.
TEST(SgdOpBatchEquivalenceTest, PipelineBitIdentical) {
  auto spec = CatalogLookup("susy", 0.05);
  Dataset ds = GenerateDataset(*spec, DataOrder::kClustered);
  auto table = MaterializeTrainTable(
      ds, testing::TempDir() + "batch_equiv_sgdop.tbl", 2048);
  ASSERT_TRUE(table.ok());

  auto run = [&](uint32_t exec, bool double_buffer,
                 std::vector<double>* params_out) {
    BlockShuffleOp::Options bopts;
    bopts.block_size_bytes = 8 * 2048;
    BlockShuffleOp block_op(table->get(), bopts);
    TupleShuffleOp::Options topts;
    topts.buffer_tuples = ds.train->size() / 10;
    topts.double_buffer = double_buffer;
    TupleShuffleOp tuple_op(&block_op, topts);
    LogisticRegression model(ds.spec.dim);
    SgdOp::Options sopts;
    sopts.max_epochs = 4;
    sopts.lr.initial = 0.005;
    sopts.exec_batch_tuples = exec;
    SgdOp sgd(&model, &tuple_op, sopts);
    EXPECT_TRUE(sgd.Init().ok());
    auto logs = sgd.RunToCompletion();
    EXPECT_TRUE(logs.ok());
    sgd.Close();
    *params_out = model.params();
    return logs.ok() ? *logs : std::vector<EpochLog>{};
  };

  std::vector<double> legacy_params;
  const auto legacy = run(0, /*double_buffer=*/false, &legacy_params);
  ASSERT_EQ(legacy.size(), 4u);
  for (uint32_t exec : {1u, 64u}) {
    for (bool dbuf : {false, true}) {
      std::vector<double> params;
      const auto got = run(exec, dbuf, &params);
      ASSERT_EQ(got.size(), legacy.size());
      for (size_t e = 0; e < legacy.size(); ++e) {
        EXPECT_EQ(got[e].train_loss, legacy[e].train_loss)
            << "exec=" << exec << " dbuf=" << dbuf << " epoch=" << e;
        EXPECT_EQ(got[e].tuples_seen, legacy[e].tuples_seen);
      }
      EXPECT_EQ(params, legacy_params) << "exec=" << exec << " dbuf=" << dbuf;
    }
  }
}

}  // namespace
}  // namespace corgipile
