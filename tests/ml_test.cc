// Unit tests for ml/: models (including finite-difference gradient checks),
// optimizers, metrics, trainer, and grid search.

#include <gtest/gtest.h>

#include <cmath>

#include "dataset/catalog.h"
#include "ml/gridsearch.h"
#include "ml/linear_models.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/optimizer.h"
#include "ml/trainer.h"
#include "shuffle/hierarchical.h"
#include "shuffle/tuple_stream.h"
#include "util/rng.h"
#include "util/stats.h"

namespace corgipile {
namespace {

// Finite-difference check: ∇f from AccumulateGrad vs numeric gradient.
void CheckGradient(Model* model, const Tuple& t, double tol = 1e-5) {
  std::vector<double> grad(model->num_params(), 0.0);
  model->AccumulateGrad(t, &grad);
  const double eps = 1e-6;
  Rng rng(1234);
  // Check a sample of coordinates (all for small models).
  const size_t n = model->num_params();
  const size_t checks = std::min<size_t>(n, 60);
  for (size_t c = 0; c < checks; ++c) {
    const size_t i = n <= 60 ? c : static_cast<size_t>(rng.Uniform(n));
    const double orig = model->params()[i];
    model->params()[i] = orig + eps;
    const double up = model->Loss(t);
    model->params()[i] = orig - eps;
    const double down = model->Loss(t);
    model->params()[i] = orig;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(grad[i], numeric, tol) << "param " << i;
  }
}

TEST(LogisticRegressionTest, GradientMatchesFiniteDifference) {
  LogisticRegression model(5);
  Rng rng(7);
  for (auto& p : model.params()) p = 0.3 * rng.NextGaussian();
  Tuple t = MakeDenseTuple(0, 1.0, {0.5f, -1.0f, 2.0f, 0.1f, -0.7f});
  CheckGradient(&model, t);
  Tuple neg = MakeDenseTuple(1, -1.0, {1.5f, 0.0f, -2.0f, 1.1f, 0.7f});
  CheckGradient(&model, neg);
}

TEST(LogisticRegressionTest, SparseGradientMatches) {
  LogisticRegression model(100);
  Rng rng(8);
  for (auto& p : model.params()) p = 0.1 * rng.NextGaussian();
  Tuple t = MakeSparseTuple(0, -1.0, {3, 50, 99}, {1.0f, -2.0f, 0.5f});
  CheckGradient(&model, t);
}

TEST(SvmTest, GradientMatchesFiniteDifferenceAwayFromKink) {
  SvmModel model(4);
  Rng rng(9);
  for (auto& p : model.params()) p = 0.2 * rng.NextGaussian();
  Tuple t = MakeDenseTuple(0, 1.0, {2.0f, -1.0f, 0.5f, 1.0f});
  // Only valid where hinge is differentiable; the random params give a
  // margin far from 1 with overwhelming probability.
  const double margin = t.label * model.Predict(t);
  if (std::abs(margin - 1.0) > 0.05) CheckGradient(&model, t);
}

TEST(LinearRegressionTest, GradientMatchesFiniteDifference) {
  LinearRegressionModel model(6);
  Rng rng(10);
  for (auto& p : model.params()) p = 0.5 * rng.NextGaussian();
  Tuple t = MakeDenseTuple(0, 2.5, {0.5f, -1.0f, 2.0f, 0.1f, -0.7f, 1.0f});
  CheckGradient(&model, t, 1e-4);
}

TEST(SoftmaxTest, GradientMatchesFiniteDifference) {
  SoftmaxRegression model(4, 3);
  Rng rng(11);
  for (auto& p : model.params()) p = 0.3 * rng.NextGaussian();
  for (double label : {0.0, 1.0, 2.0}) {
    Tuple t = MakeDenseTuple(0, label, {0.5f, -1.0f, 2.0f, 0.1f});
    CheckGradient(&model, t);
  }
}

TEST(SoftmaxTest, ProbabilitiesViaLossAreConsistent) {
  SoftmaxRegression model(2, 3);
  // With zero params, each class has p = 1/3 → loss = ln 3.
  Tuple t = MakeDenseTuple(0, 1.0, {1.0f, 1.0f});
  EXPECT_NEAR(model.Loss(t), std::log(3.0), 1e-12);
}

TEST(MlpTest, GradientMatchesFiniteDifference) {
  MlpModel model(5, 7, 3);
  model.InitParams(42);
  for (double label : {0.0, 2.0}) {
    Tuple t = MakeDenseTuple(0, label, {0.5f, -1.0f, 2.0f, 0.1f, 0.3f});
    CheckGradient(&model, t, 1e-4);
  }
}

TEST(MlpTest, SparseInputGradientMatches) {
  MlpModel model(50, 6, 4);
  model.InitParams(43);
  Tuple t = MakeSparseTuple(0, 3.0, {2, 17, 45}, {1.0f, -0.5f, 2.0f});
  CheckGradient(&model, t, 1e-4);
}

TEST(ModelTest, SgdStepMatchesAccumulatePlusApply) {
  // One SgdStep must equal params -= lr * grad for every model type.
  auto check = [](Model* m, const Tuple& t) {
    std::unique_ptr<Model> copy = m->Clone();
    const double lr = 0.05;
    std::vector<double> grad(m->num_params(), 0.0);
    copy->AccumulateGrad(t, &grad);
    std::vector<double> expect = copy->params();
    for (size_t i = 0; i < expect.size(); ++i) expect[i] -= lr * grad[i];
    m->SgdStep(t, lr);
    for (size_t i = 0; i < expect.size(); ++i) {
      ASSERT_NEAR(m->params()[i], expect[i], 1e-12) << m->name() << " " << i;
    }
  };
  Rng rng(12);
  Tuple bin = MakeDenseTuple(0, 1.0, {0.5f, -1.5f, 0.2f});
  Tuple multi = MakeDenseTuple(0, 1.0, {0.5f, -1.5f, 0.2f});
  {
    LogisticRegression m(3);
    for (auto& p : m.params()) p = rng.NextGaussian();
    check(&m, bin);
  }
  {
    SvmModel m(3);
    for (auto& p : m.params()) p = rng.NextGaussian();
    check(&m, bin);
  }
  {
    LinearRegressionModel m(3);
    for (auto& p : m.params()) p = rng.NextGaussian();
    check(&m, bin);
  }
  {
    SoftmaxRegression m(3, 2);
    for (auto& p : m.params()) p = rng.NextGaussian();
    check(&m, multi);
  }
  {
    MlpModel m(3, 4, 2);
    m.InitParams(5);
    check(&m, multi);
  }
}

TEST(OptimizerTest, SgdApply) {
  SgdOptimizer opt;
  std::vector<double> params{1.0, 2.0};
  opt.Apply(&params, {0.5, -1.0}, 0.1);
  EXPECT_DOUBLE_EQ(params[0], 0.95);
  EXPECT_DOUBLE_EQ(params[1], 2.1);
}

TEST(OptimizerTest, AdamFirstStepIsLrSized) {
  AdamOptimizer opt;
  opt.Reset(1);
  std::vector<double> params{0.0};
  opt.Apply(&params, {0.3}, 0.01);
  // Bias-corrected first step ≈ lr * sign(grad).
  EXPECT_NEAR(params[0], -0.01, 1e-6);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  AdamOptimizer opt;
  opt.Reset(1);
  std::vector<double> params{5.0};
  for (int i = 0; i < 2000; ++i) {
    opt.Apply(&params, {2.0 * params[0]}, 0.05);  // f = x²
  }
  EXPECT_NEAR(params[0], 0.0, 1e-2);
}

TEST(LrScheduleTest, ExponentialDecay) {
  LrSchedule s;
  s.initial = 0.1;
  s.decay = 0.95;
  EXPECT_DOUBLE_EQ(s.LrAtEpoch(0), 0.1);
  EXPECT_NEAR(s.LrAtEpoch(10), 0.1 * std::pow(0.95, 10), 1e-12);
  LrSchedule step;  // ImageNet-style: ÷10 every 30 epochs
  step.initial = 0.1;
  step.decay = 0.1;
  step.decay_every = 30;
  EXPECT_DOUBLE_EQ(step.LrAtEpoch(29), 0.1);
  EXPECT_NEAR(step.LrAtEpoch(30), 0.01, 1e-12);
}

TEST(LrScheduleTest, InverseDecayMatchesTheorem) {
  // Theorem 1 prescribes η_s ∝ 1/(s + a).
  LrSchedule inv;
  inv.kind = LrSchedule::Kind::kInverse;
  inv.initial = 0.06;
  inv.decay_every = 4;  // a = 4
  EXPECT_DOUBLE_EQ(inv.LrAtEpoch(0), 0.06);
  EXPECT_NEAR(inv.LrAtEpoch(4), 0.06 * 4.0 / 8.0, 1e-12);
  EXPECT_NEAR(inv.LrAtEpoch(12), 0.06 * 4.0 / 16.0, 1e-12);
  // Strictly decreasing, never zero.
  double prev = 1.0;
  for (uint32_t e = 0; e < 50; ++e) {
    const double lr = inv.LrAtEpoch(e);
    EXPECT_LT(lr, prev);
    EXPECT_GT(lr, 0.0);
    prev = lr;
  }
}

TEST(MetricsTest, BinaryAccuracy) {
  LogisticRegression model(1);
  model.params()[0] = 1.0;  // predict sign(x)
  std::vector<Tuple> tuples{
      MakeDenseTuple(0, 1.0, {2.0f}), MakeDenseTuple(1, -1.0, {-2.0f}),
      MakeDenseTuple(2, 1.0, {-2.0f})};
  auto r = Evaluate(model, tuples, LabelType::kBinary);
  EXPECT_NEAR(r.metric, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(r.count, 3u);
}

TEST(MetricsTest, RegressionR2PerfectFit) {
  LinearRegressionModel model(1);
  model.params()[0] = 2.0;
  std::vector<Tuple> tuples{MakeDenseTuple(0, 2.0, {1.0f}),
                            MakeDenseTuple(1, 4.0, {2.0f}),
                            MakeDenseTuple(2, 6.0, {3.0f})};
  auto r = Evaluate(model, tuples, LabelType::kContinuous);
  EXPECT_NEAR(r.metric, 1.0, 1e-12);
}

TEST(MetricsTest, EmptySetIsZero) {
  LogisticRegression model(1);
  auto r = Evaluate(model, {}, LabelType::kBinary);
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.metric, 0.0);
}

// ---- Trainer integration ----

struct TrainFixture {
  Dataset ds;
  std::unique_ptr<InMemoryBlockSource> source;

  explicit TrainFixture(const std::string& name, DataOrder order,
                        double scale = 0.1, uint64_t block = 100) {
    auto spec = CatalogLookup(name, scale);
    ds = GenerateDataset(*spec, order);
    source = std::make_unique<InMemoryBlockSource>(ds.MakeSchema(), ds.train,
                                                   block);
  }
};

TrainerOptions BasicOptions(const Dataset& ds, uint32_t epochs = 5) {
  TrainerOptions opts;
  opts.epochs = epochs;
  opts.lr.initial = 0.05;
  opts.test_set = ds.test.get();
  opts.label_type = ds.MakeSchema().label_type;
  return opts;
}

TEST(TrainerTest, LearnsOnShuffledData) {
  TrainFixture f("susy", DataOrder::kShuffled);
  ShuffleOptions sopts;
  auto stream = MakeTupleStream(ShuffleStrategy::kNoShuffle, f.source.get(), sopts);
  ASSERT_TRUE(stream.ok());
  LogisticRegression model(f.ds.spec.dim);
  TrainerOptions opts = BasicOptions(f.ds, 8);
  opts.lr.initial = 0.005;
  auto result = Train(&model, stream->get(), opts);
  ASSERT_TRUE(result.ok());
  // susy noise = 0.21 → ceiling ≈ 0.79.
  EXPECT_GT(result->final_test_metric, 0.74);
}

TEST(TrainerTest, ConvergenceOrderingOnClusteredData) {
  // The paper's central claim (Figs. 2, 12): on clustered data,
  //   ShuffleOnce ≈ CorgiPile  >  MRS ≥ SlidingWindow  >  NoShuffle.
  TrainFixture f("susy", DataOrder::kClustered);
  auto run = [&](ShuffleStrategy s) {
    ShuffleOptions sopts;
    sopts.buffer_fraction = 0.1;
    auto stream = MakeTupleStream(s, f.source.get(), sopts);
    EXPECT_TRUE(stream.ok());
    SvmModel model(f.ds.spec.dim);
    TrainerOptions topts = BasicOptions(f.ds, 10);
    topts.lr.initial = 0.005;
    auto result = Train(&model, stream->get(), topts);
    EXPECT_TRUE(result.ok());
    return result->final_test_metric;
  };
  const double no_shuffle = run(ShuffleStrategy::kNoShuffle);
  const double corgipile = run(ShuffleStrategy::kCorgiPile);
  const double shuffle_once = run(ShuffleStrategy::kShuffleOnce);
  const double sliding = run(ShuffleStrategy::kSlidingWindow);

  // NoShuffle converges clearly below the full-randomness strategies on
  // clustered binary data.
  EXPECT_LT(no_shuffle, shuffle_once - 0.08);
  // CorgiPile within 3 points of ShuffleOnce and far above NoShuffle.
  EXPECT_NEAR(corgipile, shuffle_once, 0.03);
  EXPECT_GT(corgipile, 0.72);
  EXPECT_GT(corgipile, no_shuffle + 0.08);
  // Sliding window does not beat the full-randomness strategies.
  EXPECT_LT(sliding, std::max(corgipile, shuffle_once) + 0.02);
}

TEST(TrainerTest, MiniBatchSgdLearns) {
  TrainFixture f("susy", DataOrder::kClustered);
  ShuffleOptions sopts;
  auto stream =
      MakeTupleStream(ShuffleStrategy::kCorgiPile, f.source.get(), sopts);
  ASSERT_TRUE(stream.ok());
  LogisticRegression model(f.ds.spec.dim);
  TrainerOptions opts = BasicOptions(f.ds, 6);
  opts.batch_size = 128;
  opts.lr.initial = 0.5;  // batch-mean gradients need a larger step
  auto result = Train(&model, stream->get(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_test_metric, 0.72);
}

TEST(TrainerTest, MlpWithAdamLearnsMulticlass) {
  TrainFixture f("cifar10", DataOrder::kClustered, 0.2);
  ShuffleOptions sopts;
  auto stream =
      MakeTupleStream(ShuffleStrategy::kCorgiPile, f.source.get(), sopts);
  ASSERT_TRUE(stream.ok());
  MlpModel model(f.ds.spec.dim, 32, f.ds.spec.num_classes);
  TrainerOptions opts = BasicOptions(f.ds, 8);
  opts.batch_size = 64;
  opts.optimizer = OptimizerKind::kAdam;
  opts.lr.initial = 0.003;
  auto result = Train(&model, stream->get(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_test_metric, 0.5);  // 10 classes, chance = 0.1
}

TEST(TrainerTest, EpochLogsArePopulated) {
  TrainFixture f("susy", DataOrder::kShuffled, 0.02);
  ShuffleOptions sopts;
  auto stream =
      MakeTupleStream(ShuffleStrategy::kNoShuffle, f.source.get(), sopts);
  ASSERT_TRUE(stream.ok());
  SimClock clock;
  LogisticRegression model(f.ds.spec.dim);
  TrainerOptions opts = BasicOptions(f.ds, 3);
  opts.clock = &clock;
  auto result = Train(&model, stream->get(), opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->epochs.size(), 3u);
  for (const auto& log : result->epochs) {
    EXPECT_EQ(log.tuples_seen, f.ds.train->size());
    EXPECT_GT(log.lr, 0.0);
  }
  EXPECT_GT(clock.Elapsed(TimeCategory::kCompute), 0.0);
  EXPECT_GT(result->epochs.back().cumulative_sim_seconds, 0.0);
  // Exponential decay: lr strictly decreases across epochs.
  EXPECT_GT(result->epochs[0].lr, result->epochs[1].lr);
  EXPECT_GT(result->epochs[1].lr, result->epochs[2].lr);
}

TEST(TrainerTest, TheoremAveragingStabilizesClusteredRuns) {
  // Theorem 1's x̄_S suppresses the end-of-epoch oscillation that
  // block-clustered data induces in raw iterates: the averaged run must be
  // at least as accurate and have less epoch-to-epoch variance.
  TrainFixture f("higgs", DataOrder::kClustered, 0.1, 200);
  auto run = [&](bool averaging) {
    ShuffleOptions sopts;
    sopts.buffer_fraction = 0.1;
    auto stream =
        MakeTupleStream(ShuffleStrategy::kCorgiPile, f.source.get(), sopts);
    EXPECT_TRUE(stream.ok());
    SvmModel model(f.ds.spec.dim);
    TrainerOptions opts = BasicOptions(f.ds, 10);
    opts.lr.initial = 0.005;
    opts.theorem_averaging = averaging;
    auto r = Train(&model, stream->get(), opts).ValueOrDie();
    OnlineStats tail;
    for (size_t e = 5; e < r.epochs.size(); ++e) {
      tail.Add(r.epochs[e].test_metric);
    }
    return std::pair<double, double>(tail.mean(), tail.stddev());
  };
  const auto [raw_mean, raw_std] = run(false);
  const auto [avg_mean, avg_std] = run(true);
  EXPECT_GE(avg_mean, raw_mean - 0.005);
  EXPECT_LT(avg_std, raw_std + 1e-12);
}

TEST(TrainerTest, TheoremAveragingExposesAverageAsFinalModel) {
  TrainFixture f("susy", DataOrder::kShuffled, 0.02);
  ShuffleOptions sopts;
  auto stream =
      MakeTupleStream(ShuffleStrategy::kCorgiPile, f.source.get(), sopts);
  ASSERT_TRUE(stream.ok());
  LogisticRegression model(f.ds.spec.dim);
  TrainerOptions opts = BasicOptions(f.ds, 4);
  opts.theorem_averaging = true;
  auto r = Train(&model, stream->get(), opts);
  ASSERT_TRUE(r.ok());
  // The model's parameters now hold x̄_S; evaluating it reproduces the
  // final logged metric exactly.
  const EvalResult eval = Evaluate(model, *f.ds.test, LabelType::kBinary);
  EXPECT_NEAR(eval.metric, r->final_test_metric, 1e-12);
}

TEST(TrainerTest, TargetMetricStopsEarly) {
  TrainFixture f("susy", DataOrder::kShuffled, 0.05);
  ShuffleOptions sopts;
  auto stream =
      MakeTupleStream(ShuffleStrategy::kNoShuffle, f.source.get(), sopts);
  ASSERT_TRUE(stream.ok());
  LogisticRegression model(f.ds.spec.dim);
  TrainerOptions opts = BasicOptions(f.ds, 50);
  opts.target_metric = 0.70;
  auto result = Train(&model, stream->get(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->epochs.size(), 50u);
  EXPECT_GE(result->final_test_metric, 0.70);
}

TEST(TrainerTest, InvalidArgs) {
  LogisticRegression model(2);
  TrainerOptions opts;
  EXPECT_TRUE(Train(nullptr, nullptr, opts).status().IsInvalidArgument());
  opts.batch_size = 0;
  auto tuples = std::make_shared<std::vector<Tuple>>();
  tuples->push_back(MakeDenseTuple(0, 1.0, {1.0f, 1.0f}));
  InMemoryBlockSource src(Schema{"x", 2, false, LabelType::kBinary, 2}, tuples, 1);
  auto stream = MakeNoShuffleStream(&src);
  EXPECT_TRUE(Train(&model, stream.get(), opts).status().IsInvalidArgument());
}

TEST(GridSearchTest, PicksBestLr) {
  // Regression R² is scale-sensitive, so a vanishing learning rate really
  // cannot win (unlike sign-based classifiers, where even a tiny lr learns
  // the weight *direction*).
  TrainFixture f("yearpred", DataOrder::kShuffled, 0.02);
  ShuffleOptions sopts;
  auto stream =
      MakeTupleStream(ShuffleStrategy::kNoShuffle, f.source.get(), sopts);
  ASSERT_TRUE(stream.ok());
  LinearRegressionModel prototype(f.ds.spec.dim);
  TrainerOptions opts = BasicOptions(f.ds, 3);
  opts.label_type = LabelType::kContinuous;
  auto result = GridSearchLr(
      prototype, [&] { return stream->get(); }, opts, {0.01, 1e-12});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_lr, 0.01);  // 1e-12 leaves R² ≈ 0
  EXPECT_EQ(result->tried.size(), 2u);
}

}  // namespace
}  // namespace corgipile
