// Tests for src/serve/: the versioned model registry, the micro-batched
// inference engine (determinism, admission control, deadlines,
// cancellation, hot-swap), live concurrent sessions, and the SQL
// PREDICT BY path that routes through the engine.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "db/database.h"
#include "db/model_store.h"
#include "dataset/catalog.h"
#include "dataset/loader.h"
#include "ml/linear_models.h"
#include "ml/mlp.h"
#include "serve/inference_engine.h"
#include "serve/workload.h"
#include "util/rng.h"

namespace corgipile {
namespace {

std::string MakeTempDir(const std::string& name) {
  std::string dir = testing::TempDir() + name;
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<Tuple> MakeTuples(uint64_t n, uint32_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::vector<float> values(dim);
    for (float& v : values) v = static_cast<float>(rng.NextGaussian());
    out.push_back(
        MakeDenseTuple(i, rng.NextBool() ? 1.0 : -1.0, std::move(values)));
  }
  return out;
}

ServeOptions SmallServeOptions() {
  ServeOptions opts;
  opts.max_batch = 8;
  opts.batch_deadline_s = 2e-3;
  opts.num_workers = 2;
  opts.max_queue_depth = 64;
  opts.per_batch_overhead_s = 1e-3;
  opts.per_tuple_s = 5e-5;
  return opts;
}

// --- ModelStore: versioning and snapshot lifetime ---

TEST(ModelStoreVersionTest, PublishBumpsAndSnapshotsOutliveRemove) {
  ModelStore store;
  const std::string id = store.Put(std::make_unique<LogisticRegression>(4));
  EXPECT_EQ(store.GetVersion(id).ValueOrDie(), 1u);

  auto v1 = store.GetSnapshot(id).ValueOrDie();
  EXPECT_EQ(v1.version, 1u);

  EXPECT_EQ(store.Publish(id, std::make_unique<LogisticRegression>(4))
                .ValueOrDie(),
            2u);
  auto v2 = store.GetSnapshot(id).ValueOrDie();
  EXPECT_EQ(v2.version, 2u);
  EXPECT_NE(v1.model.get(), v2.model.get());

  // The old snapshot stays usable after Remove (copy-on-write registry).
  ASSERT_TRUE(store.Remove(id).ok());
  EXPECT_TRUE(store.Get(id).status().IsNotFound());
  Tuple t = MakeDenseTuple(0, 1.0, {0.1f, 0.2f, 0.3f, 0.4f});
  (void)v1.model->Predict(t);  // ASan would flag a use-after-free here

  // Publish is an upsert: a fresh id starts again at version 1.
  EXPECT_EQ(store.Publish(id, std::make_unique<LogisticRegression>(4))
                .ValueOrDie(),
            1u);
}

TEST(ModelStoreVersionTest, ConcurrentGetPublishRemove) {
  ModelStore store;
  const std::string id = store.Put(std::make_unique<LogisticRegression>(8));
  Tuple t = MakeTuples(1, 8, 3)[0];
  std::atomic<bool> stop{false};

  std::thread publisher([&] {
    for (int i = 0; i < 200; ++i) {
      auto published =
          store.Publish(id, std::make_unique<LogisticRegression>(8));
      ASSERT_TRUE(published.ok());
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto snap = store.GetSnapshot(id);
        ASSERT_TRUE(snap.ok());
        (void)snap->model->Predict(t);
      }
    });
  }
  publisher.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(store.GetVersion(id).ValueOrDie(), 201u);
}

// --- generated schedules ---

TEST(WorkloadTest, PoissonScheduleDeterministicAndMonotone) {
  auto a = PoissonSchedule(500, 1000.0, 7);
  auto b = PoissonSchedule(500, 1000.0, 7);
  EXPECT_EQ(a, b);
  auto c = PoissonSchedule(500, 1000.0, 8);
  EXPECT_NE(a, c);
  for (size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
  // Mean interarrival ≈ 1/rate.
  EXPECT_NEAR(a.back() / 500.0, 1e-3, 3e-4);
}

// --- engine behaviour on generated workloads ---

struct ServeFixture {
  ModelStore store;
  std::string id;
  std::vector<Tuple> tuples;

  ServeFixture() {
    id = store.Put(std::make_unique<LogisticRegression>(8));
    tuples = MakeTuples(64, 8, 11);
  }
};

TEST(InferenceEngineTest, RerunIsBitIdentical) {
  ServeFixture f;
  WorkloadOptions w;
  w.num_requests = 800;
  w.offered_load_rps = 4000.0;
  w.seed = 21;
  auto r1 = RunGeneratedWorkload(&f.store, f.id, f.tuples,
                                 SmallServeOptions(), w);
  auto r2 = RunGeneratedWorkload(&f.store, f.id, f.tuples,
                                 SmallServeOptions(), w);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1->stats, r2->stats) << r1->stats.ToString() << "\n vs \n"
                                  << r2->stats.ToString();
  EXPECT_EQ(r1->stats.submitted, 800u);
  EXPECT_GT(r1->stats.completed, 0u);
  EXPECT_GT(r1->stats.mean_batch_occupancy, 1.0);  // batching happened
}

TEST(InferenceEngineTest, AdmissionControlShedsUnderOverload) {
  ServeFixture f;
  ServeOptions opts = SmallServeOptions();
  opts.max_queue_depth = 16;
  opts.max_batch = 4;  // capacity ≈ 2 workers / 0.3ms-per-tuple ≈ 6.6k rps
  WorkloadOptions w;
  w.num_requests = 2000;
  w.offered_load_rps = 50000.0;  // far past capacity
  w.seed = 5;
  auto r = RunGeneratedWorkload(&f.store, f.id, f.tuples, opts, w);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->shed, 0u);
  EXPECT_GT(r->ok, 0u);
  EXPECT_EQ(r->ok + r->shed + r->expired + r->cancelled + r->failed, 2000u);
  // Accepted requests never waited behind more than the queue bound, so
  // the tail is bounded by (depth/batch+1 batches) of service plus the
  // batch deadline — generous factor-of-2 margin here.
  const double service_per_batch =
      opts.per_batch_overhead_s + opts.max_batch * opts.per_tuple_s;
  const double bound =
      2.0 * (opts.max_queue_depth / opts.max_batch + 1) * service_per_batch +
      opts.batch_deadline_s;
  EXPECT_LT(r->stats.latency.p99, bound);
}

TEST(InferenceEngineTest, NoSheddingWhenQueueUnbounded) {
  ServeFixture f;
  ServeOptions opts = SmallServeOptions();
  opts.max_queue_depth = 0;
  WorkloadOptions w;
  w.num_requests = 500;
  w.offered_load_rps = 50000.0;
  w.seed = 5;
  auto r = RunGeneratedWorkload(&f.store, f.id, f.tuples, opts, w);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->shed, 0u);
  EXPECT_EQ(r->ok, 500u);
}

TEST(InferenceEngineTest, PerRequestDeadlinesExpire) {
  ServeFixture f;
  ServeOptions opts = SmallServeOptions();
  opts.max_queue_depth = 0;  // no shedding: overload turns into queueing
  WorkloadOptions w;
  w.num_requests = 1000;
  w.offered_load_rps = 50000.0;
  w.seed = 9;
  w.deadline_s = 5e-3;  // the backlog quickly exceeds 5ms of wait
  auto r = RunGeneratedWorkload(&f.store, f.id, f.tuples, opts, w);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->expired, 0u);
  EXPECT_GT(r->ok, 0u);
  EXPECT_EQ(r->expired, r->stats.expired);
}

TEST(InferenceEngineTest, CancelledRequestsAreRejected) {
  ServeFixture f;
  ServeOptions opts = SmallServeOptions();
  opts.flush_on_idle = true;  // live mode: no generated schedule
  InferenceEngine engine(&f.store, opts);
  ASSERT_TRUE(engine.Start().ok());

  ServeRequest cancelled;
  cancelled.tuple = f.tuples[0];
  cancelled.model_id = f.id;
  cancelled.token.Cancel(Status::Cancelled("caller went away"));
  auto cancelled_fut = engine.Submit(std::move(cancelled));

  ServeRequest live;
  live.tuple = f.tuples[1];
  live.model_id = f.id;
  auto live_fut = engine.Submit(std::move(live));

  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_TRUE(cancelled_fut.get().status.IsCancelled());
  EXPECT_TRUE(live_fut.get().status.ok());
  EXPECT_EQ(engine.stats().cancelled, 1u);
  EXPECT_EQ(engine.stats().completed, 1u);
}

TEST(InferenceEngineTest, UnknownModelFailsRequestsNotEngine) {
  ServeFixture f;
  ServeOptions opts = SmallServeOptions();
  opts.flush_on_idle = true;
  InferenceEngine engine(&f.store, opts);
  ASSERT_TRUE(engine.Start().ok());
  ServeRequest req;
  req.tuple = f.tuples[0];
  req.model_id = "ghost";
  auto fut = engine.Submit(std::move(req));
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_TRUE(fut.get().status.IsNotFound());
  EXPECT_EQ(engine.stats().failed, 1u);
}

TEST(InferenceEngineTest, HotSwapServesBothVersionsWithZeroFailures) {
  ServeFixture f;
  WorkloadOptions w;
  w.num_requests = 1200;
  w.offered_load_rps = 4000.0;
  w.seed = 33;
  w.swap_at_request = 600;
  ServeOptions opts = SmallServeOptions();
  opts.max_queue_depth = 0;
  auto r = RunGeneratedWorkload(&f.store, f.id, f.tuples, opts, w);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->failed, 0u);
  EXPECT_EQ(r->ok, 1200u);
  EXPECT_EQ(r->versions_seen, 2u);
  const auto& by_version = r->stats.served_by_version.at(f.id);
  ASSERT_EQ(by_version.size(), 2u);
  uint64_t total = 0;
  for (const auto& [version, count] : by_version) {
    EXPECT_GT(count, 0u);
    total += count;
  }
  EXPECT_EQ(total, 1200u);

  // Rerun: identical except the version numbers keep climbing.
  auto r2 = RunGeneratedWorkload(&f.store, f.id, f.tuples, opts, w);
  ASSERT_TRUE(r2.ok());
  ServeStats a = r->stats, b = r2->stats;
  a.served_by_version.clear();
  b.served_by_version.clear();
  a.quality_by_version.clear();
  b.quality_by_version.clear();
  EXPECT_EQ(a, b);
}

// --- live concurrent sessions (the tsan preset exercises this heavily) ---

TEST(InferenceEngineTest, ManyConcurrentSessions) {
  ServeFixture f;
  ServeOptions opts = SmallServeOptions();
  opts.flush_on_idle = true;
  opts.max_queue_depth = 0;
  opts.num_workers = 4;
  InferenceEngine engine(&f.store, opts);
  ASSERT_TRUE(engine.Start().ok());

  constexpr int kSessions = 8;
  constexpr int kPerSession = 50;
  std::atomic<uint64_t> ok_replies{0};
  std::vector<std::thread> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      for (int i = 0; i < kPerSession; ++i) {
        ServeRequest req;
        req.tuple = f.tuples[(s * kPerSession + i) % f.tuples.size()];
        req.model_id = f.id;
        auto fut = engine.Submit(std::move(req));
        if (fut.get().status.ok()) ok_replies.fetch_add(1);
      }
    });
  }
  // Concurrent hot-swaps while sessions are in flight.
  std::thread publisher([&] {
    for (int i = 0; i < 20; ++i) {
      auto snap = f.store.GetSnapshot(f.id);
      ASSERT_TRUE(snap.ok());
      ASSERT_TRUE(f.store.Publish(f.id, snap->model->Clone()).ok());
    }
  });
  for (auto& th : sessions) th.join();
  publisher.join();
  ASSERT_TRUE(engine.Drain().ok());

  EXPECT_EQ(ok_replies.load(), kSessions * kPerSession);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kSessions * kPerSession));
  EXPECT_EQ(stats.shed + stats.expired + stats.cancelled + stats.failed, 0u);
}

// Regression: MLP (and softmax) inference once used shared mutable scratch,
// racing when several engine workers predicted on one snapshot. Drive an
// MlpModel snapshot from concurrent batches so tsan covers the path.
TEST(InferenceEngineTest, ConcurrentMlpPredictsOnSharedSnapshot) {
  ModelStore store;
  const std::string id =
      store.Put(std::make_unique<MlpModel>(8, 16, 2));
  // MLP treats the label as a class index.
  std::vector<Tuple> tuples = MakeTuples(64, 8, 13);
  for (auto& t : tuples) t.label = t.label > 0.0 ? 1.0 : 0.0;

  ServeOptions opts = SmallServeOptions();
  opts.flush_on_idle = true;
  opts.max_queue_depth = 0;
  opts.num_workers = 4;
  opts.max_batch = 4;  // many small batches in flight at once
  InferenceEngine engine(&store, opts);
  ASSERT_TRUE(engine.Start().ok());

  std::atomic<uint64_t> ok_replies{0};
  std::vector<std::thread> sessions;
  for (int s = 0; s < 4; ++s) {
    sessions.emplace_back([&, s] {
      for (int i = 0; i < 64; ++i) {
        ServeRequest req;
        req.tuple = tuples[(s * 64 + i) % tuples.size()];
        req.model_id = id;
        auto fut = engine.Submit(std::move(req));
        if (fut.get().status.ok()) ok_replies.fetch_add(1);
      }
    });
  }
  for (auto& th : sessions) th.join();
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(ok_replies.load(), 256u);
}

// --- SQL PREDICT BY path through the Database ---

struct DbFixture {
  std::string dir;
  Database db;

  DbFixture()
      : dir(MakeTempDir("serve_db")), db(dir, DeviceProfile::Ssd()) {
    auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
    Dataset ds = GenerateDataset(spec, DataOrder::kShuffled);
    EXPECT_TRUE(db.RegisterDataset("susy", ds).ok());
  }
};

TEST(SqlPredictTest, UnknownModelIsNotFound) {
  DbFixture f;
  EXPECT_TRUE(f.db.Execute("SELECT * FROM susy PREDICT BY nobody")
                  .status()
                  .IsNotFound());
}

TEST(SqlPredictTest, DimensionMismatchIsInvalidArgument) {
  DbFixture f;
  // A model trained for a different feature width than the susy table.
  const uint32_t wrong_dim =
      f.db.GetTable("susy").ValueOrDie()->schema().dim + 3;
  const std::string id =
      f.db.models().Put(std::make_unique<LogisticRegression>(wrong_dim));
  auto result = f.db.Execute("SELECT * FROM susy PREDICT BY " + id);
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
}

TEST(SqlPredictTest, PredictReportsServeStatsAndIsDeterministic) {
  DbFixture f;
  auto trained = f.db.Execute(
      "SELECT * FROM susy TRAIN BY lr WITH max_epoch_num=2, publish=champion");
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  EXPECT_NE(trained->find("trained model champion"), std::string::npos);

  PredictStatement stmt;
  stmt.table_name = "susy";
  stmt.model_id = "champion";
  auto p1 = f.db.Predict(stmt);
  auto p2 = f.db.Predict(stmt);
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  ASSERT_TRUE(p2.ok());
  EXPECT_GT(p1->count, 0u);
  EXPECT_EQ(p1->serve.completed, p1->count);
  EXPECT_EQ(p1->serve.shed, 0u);  // SQL path admits the whole scan
  EXPECT_GT(p1->serve.num_batches, 0u);
  EXPECT_EQ(p1->serve, p2->serve);  // same scan, same stats, bit-for-bit
  EXPECT_DOUBLE_EQ(p1->metric, p2->metric);

  // Retraining under the same alias hot-swaps (version 2).
  auto retrained = f.db.Execute(
      "SELECT * FROM susy TRAIN BY lr WITH max_epoch_num=1, publish=champion");
  ASSERT_TRUE(retrained.ok());
  EXPECT_NE(retrained->find("champion (v2)"), std::string::npos);
  EXPECT_EQ(f.db.models().GetVersion("champion").ValueOrDie(), 2u);
}

TEST(SqlPredictTest, ManyConcurrentPredictSessions) {
  DbFixture f;
  auto trained = f.db.Execute(
      "SELECT * FROM susy TRAIN BY lr WITH max_epoch_num=1, publish=m");
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();

  std::atomic<int> failures{0};
  std::vector<std::thread> sessions;
  for (int s = 0; s < 4; ++s) {
    sessions.emplace_back([&] {
      for (int i = 0; i < 3; ++i) {
        auto r = f.db.Execute("SELECT * FROM susy PREDICT BY m");
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : sessions) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace corgipile
