// Unit and integration tests for db/: Volcano operators, the query parser,
// the Database engine, the model store, and the UDA baselines.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <future>
#include <set>

#include "db/block_shuffle_op.h"
#include "db/database.h"
#include "db/query.h"
#include "db/sgd_op.h"
#include "db/tuple_shuffle_op.h"
#include "db/uda_baseline.h"
#include "dataset/catalog.h"
#include "dataset/libsvm.h"
#include "dataset/loader.h"
#include "ml/linear_models.h"

namespace corgipile {
namespace {

std::string MakeTempDir(const std::string& name) {
  std::string dir = testing::TempDir() + name;
  std::filesystem::create_directories(dir);
  return dir;
}

struct TableFixture {
  Dataset ds;
  std::unique_ptr<Table> table;

  TableFixture(const std::string& name, DataOrder order, double scale,
               const std::string& path_tag, uint32_t page_size = 2048) {
    auto spec = CatalogLookup(name, scale);
    ds = GenerateDataset(*spec, order);
    auto t = MaterializeTrainTable(
        ds, testing::TempDir() + path_tag + ".tbl", page_size);
    table = std::move(t).ValueOrDie();
  }
};

TEST(QueryParserTest, TrainStatement) {
  auto stmt = ParseQuery(
      "SELECT * FROM higgs TRAIN BY svm WITH learning_rate=0.1, "
      "max_epoch_num=20, block_size=10MB;");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(std::holds_alternative<TrainStatement>(*stmt));
  const auto& train = std::get<TrainStatement>(*stmt);
  EXPECT_EQ(train.table_name, "higgs");
  EXPECT_EQ(train.model_kind, "svm");
  EXPECT_DOUBLE_EQ(train.params.GetDouble("learning_rate", 0).ValueOrDie(),
                   0.1);
  EXPECT_EQ(train.params.GetString("block_size", "").ValueOrDie(), "10MB");
}

TEST(QueryParserTest, TrainWithoutWith) {
  auto stmt = ParseQuery("select * from t train by lr");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(std::holds_alternative<TrainStatement>(*stmt));
}

TEST(QueryParserTest, PredictStatement) {
  auto stmt = ParseQuery("SELECT * FROM higgs PREDICT BY svm_0");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(std::holds_alternative<PredictStatement>(*stmt));
  EXPECT_EQ(std::get<PredictStatement>(*stmt).model_id, "svm_0");
}

TEST(QueryParserTest, EvaluateStatement) {
  auto stmt = ParseQuery("SELECT * FROM higgs EVALUATE BY svm_0");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(std::holds_alternative<EvaluateStatement>(*stmt));
  EXPECT_EQ(std::get<EvaluateStatement>(*stmt).model_id, "svm_0");
  EXPECT_FALSE(ParseQuery("SELECT * FROM t EVALUATE BY m WITH a=1").ok());
}

TEST(QueryParserTest, LoadStatement) {
  auto stmt = ParseQuery(
      "LOAD TABLE higgs FROM '/data/higgs.libsvm' WITH order=clustered");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(std::holds_alternative<LoadStatement>(*stmt));
  const auto& load = std::get<LoadStatement>(*stmt);
  EXPECT_EQ(load.table_name, "higgs");
  EXPECT_EQ(load.path, "/data/higgs.libsvm");
  EXPECT_EQ(load.params.GetString("order", "").ValueOrDie(), "clustered");
  EXPECT_FALSE(ParseQuery("LOAD TABLE t").ok());
  EXPECT_FALSE(ParseQuery("LOAD TABLE t INTO x").ok());
}

TEST(QueryParserTest, Malformed) {
  EXPECT_FALSE(ParseQuery("SELECT foo").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t DANCE BY lr").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t PREDICT BY m WITH a=1").ok());
  EXPECT_FALSE(ParseQuery("INSERT INTO t VALUES (1)").ok());
}

TEST(QueryParserTest, UnknownOptionsAreInvalidArgument) {
  // A typo'd TRAIN option is rejected at parse time with kInvalidArgument
  // and a message naming the bad key and the whitelist — never silently
  // ignored, never a later kInternal from a half-configured pipeline.
  auto train =
      ParseQuery("SELECT * FROM t TRAIN BY lr WITH learning_rat=0.1");
  ASSERT_TRUE(train.status().IsInvalidArgument()) << train.status().ToString();
  EXPECT_NE(train.status().ToString().find("learning_rat"), std::string::npos);
  EXPECT_NE(train.status().ToString().find("valid options"),
            std::string::npos);

  auto load = ParseQuery("LOAD TABLE t FROM '/x' WITH dims=4");
  ASSERT_TRUE(load.status().IsInvalidArgument()) << load.status().ToString();
  EXPECT_NE(load.status().ToString().find("dims"), std::string::npos);

  // Every documented key — including the checkpoint/resume trio — parses.
  EXPECT_TRUE(ParseQuery("SELECT * FROM t TRAIN BY lr WITH "
                         "checkpoint=/tmp/t.ckpt, checkpoint_every=2, "
                         "resume=true")
                  .ok());
}

TEST(QueryParserTest, ByteSizes) {
  EXPECT_EQ(ParseByteSize("8192").ValueOrDie(), 8192u);
  EXPECT_EQ(ParseByteSize("64KB").ValueOrDie(), 64u * 1024);
  EXPECT_EQ(ParseByteSize("10MB").ValueOrDie(), 10u * 1024 * 1024);
  EXPECT_EQ(ParseByteSize("1gb").ValueOrDie(), 1024ull * 1024 * 1024);
  EXPECT_EQ(ParseByteSize("2 MB").ValueOrDie(), 2u * 1024 * 1024);
  EXPECT_FALSE(ParseByteSize("").ok());
  EXPECT_FALSE(ParseByteSize("12XB").ok());
  EXPECT_FALSE(ParseByteSize("abc").ok());
}

TEST(BlockShuffleOpTest, EmitsAllTuplesShuffledByBlock) {
  TableFixture f("susy", DataOrder::kClustered, 0.02, "bso");
  BlockShuffleOp::Options opts;
  opts.block_size_bytes = 8 * 2048;  // 8 pages per block
  opts.seed = 5;
  BlockShuffleOp op(f.table.get(), opts);
  ASSERT_TRUE(op.Init().ok());

  std::set<uint64_t> seen;
  uint64_t count = 0;
  while (const Tuple* t = op.Next()) {
    seen.insert(t->id);
    ++count;
  }
  ASSERT_TRUE(op.status().ok());
  EXPECT_EQ(count, f.ds.train->size());
  EXPECT_EQ(seen.size(), f.ds.train->size());

  // ReScan produces a different block order.
  std::vector<uint64_t> order1, order2;
  ASSERT_TRUE(op.ReScan().ok());
  while (const Tuple* t = op.Next()) order1.push_back(t->id);
  ASSERT_TRUE(op.ReScan().ok());
  while (const Tuple* t = op.Next()) order2.push_back(t->id);
  EXPECT_EQ(order1.size(), order2.size());
  EXPECT_NE(order1, order2);
  op.Close();
}

TEST(BlockShuffleOpTest, SequentialModeIsStorageOrder) {
  TableFixture f("susy", DataOrder::kClustered, 0.02, "bso_seq");
  BlockShuffleOp::Options opts;
  opts.shuffle_blocks = false;
  BlockShuffleOp op(f.table.get(), opts);
  ASSERT_TRUE(op.Init().ok());
  uint64_t expect = 0;
  while (const Tuple* t = op.Next()) {
    EXPECT_EQ(t->id, expect++);
  }
  EXPECT_EQ(expect, f.ds.train->size());
}

class TupleShuffleModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(TupleShuffleModeTest, EmitsAllTuplesShuffled) {
  const bool double_buffer = GetParam();
  TableFixture f("susy", DataOrder::kClustered, 0.02,
                 double_buffer ? "tso_d" : "tso_s");
  BlockShuffleOp::Options bopts;
  bopts.block_size_bytes = 4 * 2048;
  BlockShuffleOp block_op(f.table.get(), bopts);

  TupleShuffleOp::Options topts;
  topts.buffer_tuples = f.ds.train->size() / 10;
  topts.double_buffer = double_buffer;
  TupleShuffleOp op(&block_op, topts);
  ASSERT_TRUE(op.Init().ok());

  for (int epoch = 0; epoch < 3; ++epoch) {
    std::set<uint64_t> seen;
    std::vector<uint64_t> order;
    while (const Tuple* t = op.Next()) {
      seen.insert(t->id);
      order.push_back(t->id);
    }
    ASSERT_TRUE(op.status().ok());
    EXPECT_EQ(seen.size(), f.ds.train->size());
    EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
    if (epoch < 2) {
      ASSERT_TRUE(op.ReScan().ok());
    }
  }
  EXPECT_GT(op.timeline().num_batches(), 0u);
  EXPECT_LE(op.timeline().DoubleBufferedDuration(),
            op.timeline().SingleBufferedDuration() + 1e-12);
  op.Close();
}

INSTANTIATE_TEST_SUITE_P(BufferModes, TupleShuffleModeTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "double" : "single";
                         });

TEST(SgdOpTest, TrainsThroughPipeline) {
  TableFixture f("susy", DataOrder::kClustered, 0.05, "sgdop");
  BlockShuffleOp::Options bopts;
  bopts.block_size_bytes = 8 * 2048;
  BlockShuffleOp block_op(f.table.get(), bopts);
  TupleShuffleOp::Options topts;
  topts.buffer_tuples = f.ds.train->size() / 10;
  TupleShuffleOp tuple_op(&block_op, topts);

  LogisticRegression model(f.ds.spec.dim);
  SgdOp::Options sopts;
  sopts.max_epochs = 6;
  sopts.lr.initial = 0.005;
  sopts.test_set = f.ds.test.get();
  SgdOp sgd(&model, &tuple_op, sopts);
  ASSERT_TRUE(sgd.Init().ok());
  auto logs = sgd.RunToCompletion();
  ASSERT_TRUE(logs.ok());
  ASSERT_EQ(logs->size(), 6u);
  EXPECT_GT(logs->back().test_metric, 0.72);
  EXPECT_EQ(logs->front().tuples_seen, f.ds.train->size());
  sgd.Close();
}

TEST(TupleShuffleOpStressTest, ManyEpochsDoubleBuffered) {
  // Hammer the producer/consumer machinery across many quick epochs.
  TableFixture f("susy", DataOrder::kClustered, 0.01, "tso_stress");
  BlockShuffleOp::Options bopts;
  bopts.block_size_bytes = 2 * 2048;
  BlockShuffleOp block_op(f.table.get(), bopts);
  TupleShuffleOp::Options topts;
  topts.buffer_tuples = 37;  // deliberately awkward size
  topts.double_buffer = true;
  TupleShuffleOp op(&block_op, topts);
  ASSERT_TRUE(op.Init().ok());
  for (int epoch = 0; epoch < 20; ++epoch) {
    uint64_t n = 0;
    while (op.Next() != nullptr) ++n;
    ASSERT_TRUE(op.status().ok());
    ASSERT_EQ(n, f.ds.train->size()) << "epoch " << epoch;
    ASSERT_TRUE(op.ReScan().ok());
  }
  op.Close();
}

TEST(TupleShuffleOpEarlyCloseTest, CloseMidStreamStopsProducer) {
  // Consumer abandons a double-buffered scan after a few tuples: Close()
  // must cancel the channel, unblock and join the producer, and leave the
  // operator reusable — no deadlock, no leaked thread.
  TableFixture f("susy", DataOrder::kClustered, 0.02, "tso_early");
  BlockShuffleOp::Options bopts;
  bopts.block_size_bytes = 2 * 2048;
  BlockShuffleOp block_op(f.table.get(), bopts);
  TupleShuffleOp::Options topts;
  topts.buffer_tuples = 16;  // small buffers → producer is usually ahead
  topts.double_buffer = true;
  TupleShuffleOp op(&block_op, topts);
  ASSERT_TRUE(op.Init().ok());
  for (int i = 0; i < 5; ++i) ASSERT_NE(op.Next(), nullptr);
  op.Close();  // would hang here if the producer were not cancelled
  op.Close();  // idempotent
}

TEST(TupleShuffleOpEarlyCloseTest, DestructorMidStreamStopsProducer) {
  TableFixture f("susy", DataOrder::kClustered, 0.02, "tso_early_dtor");
  BlockShuffleOp::Options bopts;
  bopts.block_size_bytes = 2 * 2048;
  BlockShuffleOp block_op(f.table.get(), bopts);
  {
    TupleShuffleOp::Options topts;
    topts.buffer_tuples = 16;
    topts.double_buffer = true;
    TupleShuffleOp op(&block_op, topts);
    ASSERT_TRUE(op.Init().ok());
    ASSERT_NE(op.Next(), nullptr);
    // Destroyed mid-stream without an explicit Close().
  }
}

TEST(TupleShuffleOpEarlyCloseTest, ReScanMidStreamRestartsCleanly) {
  TableFixture f("susy", DataOrder::kClustered, 0.02, "tso_early_rescan");
  BlockShuffleOp::Options bopts;
  bopts.block_size_bytes = 2 * 2048;
  BlockShuffleOp block_op(f.table.get(), bopts);
  TupleShuffleOp::Options topts;
  topts.buffer_tuples = 16;
  topts.double_buffer = true;
  TupleShuffleOp op(&block_op, topts);
  ASSERT_TRUE(op.Init().ok());
  for (int i = 0; i < 7; ++i) ASSERT_NE(op.Next(), nullptr);
  ASSERT_TRUE(op.ReScan().ok());  // abandons the in-flight producer
  uint64_t n = 0;
  while (op.Next() != nullptr) ++n;
  ASSERT_TRUE(op.status().ok());
  EXPECT_EQ(n, f.ds.train->size());  // full fresh epoch after the restart
  op.Close();
}

TEST(ModelStoreTest, PutGetRemove) {
  ModelStore store;
  auto id1 = store.Put(std::make_unique<LogisticRegression>(4));
  auto id2 = store.Put(std::make_unique<SvmModel>(4));
  EXPECT_NE(id1, id2);
  EXPECT_EQ(store.size(), 2u);
  ASSERT_TRUE(store.Get(id1).ok());
  EXPECT_STREQ(store.Get(id1).ValueOrDie()->name(), "lr");
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
  ASSERT_TRUE(store.Remove(id1).ok());
  EXPECT_TRUE(store.Get(id1).status().IsNotFound());
  EXPECT_TRUE(store.Remove(id1).IsNotFound());
}

TEST(DatabaseTest, EndToEndTrainAndPredict) {
  const std::string dir = MakeTempDir("db_e2e");
  Database db(dir, DeviceProfile::Ssd());
  auto spec = CatalogLookup("susy", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());

  auto result = db.Execute(
      "SELECT * FROM susy TRAIN BY lr WITH learning_rate=0.005, "
      "max_epoch_num=6, block_size=64KB, buffer_fraction=0.1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->find("trained model lr_0"), std::string::npos);

  auto pred = db.Execute("SELECT * FROM susy PREDICT BY lr_0");
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  EXPECT_NE(pred->find("predicted"), std::string::npos);

  auto eval = db.Execute("SELECT * FROM susy EVALUATE BY lr_0");
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  EXPECT_NE(eval->find("auc"), std::string::npos);
  auto report = db.EvaluateModel(EvaluateStatement{"susy", "lr_0"});
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->auc, 0.7);
  EXPECT_GT(report->accuracy(), 0.7);
}

TEST(DatabaseTest, StrategiesProduceExpectedAccuracyOrdering) {
  const std::string dir = MakeTempDir("db_strat");
  Database db(dir, DeviceProfile::Ssd());
  auto spec = CatalogLookup("susy", 0.2).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());

  auto train = [&](const std::string& strategy) {
    TrainStatement stmt;
    stmt.table_name = "susy";
    stmt.model_kind = "svm";
    stmt.params =
        Params::Parse("learning_rate=0.005, max_epoch_num=8, "
                      "block_size=16KB, strategy=" + strategy)
            .ValueOrDie();
    auto r = db.Train(stmt);
    EXPECT_TRUE(r.ok()) << strategy << ": " << r.status().ToString();
    return r.ValueOrDie();
  };

  const auto corgi = train("corgipile");
  const auto no_shuffle = train("no_shuffle");
  const auto shuffle_once = train("shuffle_once");
  const auto block_only = train("block_only");

  EXPECT_LT(no_shuffle.final_metric, shuffle_once.final_metric - 0.08);
  EXPECT_NEAR(corgi.final_metric, shuffle_once.final_metric, 0.04);
  EXPECT_GT(corgi.final_metric, 0.72);
  // Block-Only sits between NoShuffle and CorgiPile on clustered data.
  EXPECT_GT(block_only.final_metric, no_shuffle.final_metric);
  // Shuffle Once pays prep overhead and disk; CorgiPile does not.
  EXPECT_GT(shuffle_once.prep_seconds, 0.0);
  EXPECT_GT(shuffle_once.extra_disk_bytes, 0u);
  EXPECT_EQ(corgi.prep_seconds, 0.0);
  EXPECT_EQ(corgi.extra_disk_bytes, 0u);
}

TEST(DatabaseTest, CorgiPileDoubleBufferingNotSlower) {
  const std::string dir = MakeTempDir("db_dbuf");
  Database db(dir, DeviceProfile::Hdd());
  auto spec = CatalogLookup("susy", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());
  TrainStatement stmt;
  stmt.table_name = "susy";
  stmt.model_kind = "svm";
  stmt.params = Params::Parse("max_epoch_num=3, block_size=64KB").ValueOrDie();
  auto r = db.Train(stmt);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->end_to_end_double_seconds, r->end_to_end_single_seconds + 1e-9);
  EXPECT_GT(r->sim_io_seconds, 0.0);
}

TEST(DatabaseTest, ErrorsSurface) {
  const std::string dir = MakeTempDir("db_err");
  Database db(dir, DeviceProfile::Ssd());
  EXPECT_TRUE(db.Execute("SELECT * FROM nope TRAIN BY lr")
                  .status()
                  .IsNotFound());
  auto spec = CatalogLookup("susy", 0.01).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());
  EXPECT_TRUE(db.RegisterDataset("susy", ds).code() == StatusCode::kAlreadyExists);
  EXPECT_TRUE(db.Execute("SELECT * FROM susy TRAIN BY quantum")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db.Execute("SELECT * FROM susy TRAIN BY lr WITH strategy=zigzag")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db.Execute("SELECT * FROM susy PREDICT BY ghost_9")
                  .status()
                  .IsNotFound());
  // Semantic option errors are kInvalidArgument too (error-code
  // consistency: bad user input is never kInternal / kIoError).
  EXPECT_TRUE(db.Execute("SELECT * FROM susy TRAIN BY lr WITH "
                         "optimizer=sgdm")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db.Execute("SELECT * FROM susy TRAIN BY lr WITH resume=true")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db.Execute("SELECT * FROM susy TRAIN BY lr WITH "
                         "checkpoint=/tmp/c.ckpt, checkpoint_every=0")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db.Execute("SELECT * FROM susy TRAIN BY lr WITH "
                         "checkpoint=/tmp/c.ckpt, "
                         "strategy=shuffle_once_inplace")
                  .status()
                  .IsInvalidArgument());
}

TEST(DatabaseTest, CheckpointResumeSqlRoundTrip) {
  const std::string dir = MakeTempDir("db_ckpt_sql");
  Database db(dir, DeviceProfile::Ssd());
  auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());

  const std::string ckpt = dir + "/lr.ckpt";
  TrainStatement stmt;
  stmt.table_name = "susy";
  stmt.model_kind = "lr";
  stmt.params = Params::Parse("learning_rate=0.005, max_epoch_num=4, "
                              "block_size=16KB, double_buffer=false")
                    .ValueOrDie();
  stmt.params.Set("checkpoint", ckpt);
  auto first = db.Train(stmt);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->resumed_from_epoch, 0u);
  ASSERT_TRUE(std::filesystem::exists(ckpt));
  const std::vector<double> trained =
      db.models().Get(first->model_id).ValueOrDie()->params();

  // Resuming from the completed checkpoint trains zero further epochs and
  // reproduces the exact parameters.
  stmt.params.Set("resume", "true");
  auto resumed = db.Train(stmt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->resumed_from_epoch, 4u);
  EXPECT_EQ(db.models().Get(resumed->model_id).ValueOrDie()->params(),
            trained);
}

TEST(DatabaseTest, LoadLibsvmAndTrain) {
  const std::string dir = MakeTempDir("db_load");
  // Produce a LIBSVM file from a generated dataset.
  auto spec = CatalogLookup("susy", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kShuffled);
  const std::string path = dir + "/susy.libsvm";
  ASSERT_TRUE(WriteLibsvmFile(*ds.train, path).ok());

  Database db(dir, DeviceProfile::Ssd());
  auto loaded =
      db.Execute("LOAD TABLE susy FROM '" + path + "' WITH order=clustered");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_NE(loaded->find("loaded"), std::string::npos);
  auto table = db.GetTable("susy");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_tuples(), ds.train->size());
  EXPECT_EQ((*table)->schema().dim, spec.dim);
  EXPECT_FALSE((*table)->schema().sparse);  // dense rows detected

  // Training over a loaded table works end to end (no test set registered,
  // so only train metrics are produced).
  auto trained = db.Execute(
      "SELECT * FROM susy TRAIN BY lr WITH learning_rate=0.005, "
      "max_epoch_num=3, block_size=16KB");
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();

  // Errors: duplicate table, missing file, bad order value.
  EXPECT_FALSE(db.Execute("LOAD TABLE susy FROM '" + path + "'").ok());
  EXPECT_TRUE(db.Execute("LOAD TABLE x FROM '/nope.libsvm'")
                  .status()
                  .IsIoError());
  EXPECT_TRUE(db.Execute("LOAD TABLE y FROM '" + path +
                         "' WITH order=diagonal")
                  .status()
                  .IsInvalidArgument());
}

TEST(DatabaseTest, AttachReopensPersistedTable) {
  const std::string dir = MakeTempDir("db_attach");
  auto spec = CatalogLookup("susy", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  {
    Database db(dir, DeviceProfile::Ssd());
    ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());
  }
  // A fresh session over the same directory.
  Database db2(dir, DeviceProfile::Ssd());
  EXPECT_TRUE(db2.GetTable("susy").status().IsNotFound());
  ASSERT_TRUE(db2.Attach("susy").ok());
  auto table = db2.GetTable("susy");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_tuples(), ds.train->size());
  EXPECT_EQ((*table)->schema().dim, spec.dim);
  // Training over the reattached table works.
  auto r = db2.Execute(
      "SELECT * FROM susy TRAIN BY svm WITH learning_rate=0.005, "
      "max_epoch_num=3, block_size=16KB");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Errors: double attach, unknown table.
  EXPECT_TRUE(db2.Attach("susy").code() == StatusCode::kAlreadyExists);
  EXPECT_TRUE(db2.Attach("ghost").IsNotFound());
}

TEST(DatabaseTest, ShowSessionsThroughExecute) {
  const std::string dir = MakeTempDir("db_show_sessions");
  Database db(dir, DeviceProfile::Ssd());
  auto spec = CatalogLookup("susy", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());

  // Only the implicit default session exists.
  auto show = db.Execute("show sessions;");
  ASSERT_TRUE(show.ok()) << show.status().ToString();
  EXPECT_NE(show->find("1 session(s)"), std::string::npos) << *show;
  EXPECT_NE(show->find("session 1 [default]"), std::string::npos) << *show;
  EXPECT_NE(show->find("statements=0"), std::string::npos) << *show;

  // The default session's statements are attributed to it.
  ASSERT_TRUE(db.Execute("SELECT * FROM susy TRAIN BY lr WITH "
                         "learning_rate=0.005, max_epoch_num=2, "
                         "block_size=64KB, buffer_fraction=0.1")
                  .ok());
  show = db.Execute("SHOW SESSIONS");
  ASSERT_TRUE(show.ok());
  EXPECT_NE(show->find("statements=1"), std::string::npos) << *show;
  EXPECT_NE(show->find("trains=1"), std::string::npos) << *show;

  // Parse errors.
  EXPECT_TRUE(db.Execute("SHOW SESSION").status().IsInvalidArgument());
  EXPECT_TRUE(db.Execute("SHOW SESSIONS WITH x=1")
                  .status()
                  .IsInvalidArgument());
}

TEST(DatabaseTest, LoadWithShardsPartitionsTable) {
  const std::string dir = MakeTempDir("db_load_shards");
  auto spec = CatalogLookup("susy", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  const std::string path = dir + "/susy.libsvm";
  ASSERT_TRUE(WriteLibsvmFile(*ds.train, path).ok());

  Database db(dir, DeviceProfile::Ssd());
  auto loaded = db.Execute("LOAD TABLE susy FROM '" + path +
                           "' WITH order=clustered, shards=4");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto sharded = db.GetShardedTable("susy");
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ((*sharded)->num_shards(), 4u);
  EXPECT_EQ((*sharded)->num_tuples(), ds.train->size());
  // GetTable compat accessor returns shard 0 (about a quarter of the rows).
  auto shard0 = db.GetTable("susy");
  ASSERT_TRUE(shard0.ok());
  EXPECT_EQ((*shard0)->num_tuples(), (ds.train->size() + 3) / 4);

  EXPECT_TRUE(db.Execute("LOAD TABLE z FROM '" + path + "' WITH shards=0")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db.Execute("LOAD TABLE z FROM '" + path + "' WITH shards=65")
                  .status()
                  .IsInvalidArgument());
}

TEST(DatabaseTest, AttachReopensShardedTableFromSidecar) {
  const std::string dir = MakeTempDir("db_attach_sharded");
  auto spec = CatalogLookup("susy", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  {
    Database db(dir, DeviceProfile::Ssd());
    ASSERT_TRUE(db.RegisterDataset("susy", ds, /*num_shards=*/3).ok());
  }
  Database db2(dir, DeviceProfile::Ssd());
  ASSERT_TRUE(db2.Attach("susy").ok());
  auto sharded = db2.GetShardedTable("susy");
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ((*sharded)->num_shards(), 3u);
  EXPECT_EQ((*sharded)->num_tuples(), ds.train->size());
  // TRAIN over the reattached sharded table works end to end.
  auto r = db2.Execute(
      "SELECT * FROM susy TRAIN BY lr WITH learning_rate=0.005, "
      "max_epoch_num=2, block_size=16KB, seed=3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(DatabaseTest, ShuffleOnceStrategiesRequireSingleShard) {
  const std::string dir = MakeTempDir("db_shuffle_once_shards");
  auto spec = CatalogLookup("susy", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  Database db(dir, DeviceProfile::Ssd());
  ASSERT_TRUE(db.RegisterDataset("susy", ds, /*num_shards=*/2).ok());
  EXPECT_TRUE(db.Execute("SELECT * FROM susy TRAIN BY lr WITH "
                         "strategy=shuffle_once, max_epoch_num=1")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db.Execute("SELECT * FROM susy TRAIN BY lr WITH "
                         "strategy=shuffle_once_inplace, max_epoch_num=1")
                  .status()
                  .IsInvalidArgument());
  // corgipile itself is shard-native.
  EXPECT_TRUE(db.Execute("SELECT * FROM susy TRAIN BY lr WITH "
                         "strategy=corgipile, max_epoch_num=1, "
                         "block_size=16KB")
                  .ok());
}

TEST(DatabaseTest, StreamStrategiesRunViaAdapter) {
  const std::string dir = MakeTempDir("db_stream");
  Database db(dir, DeviceProfile::Ssd());
  auto spec = CatalogLookup("susy", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());
  for (const char* strategy : {"sliding_window", "mrs"}) {
    TrainStatement stmt;
    stmt.table_name = "susy";
    stmt.model_kind = "lr";
    stmt.params = Params::Parse(std::string("learning_rate=0.005, "
                                            "max_epoch_num=3, block_size=16KB, "
                                            "strategy=") + strategy)
                      .ValueOrDie();
    auto r = db.Train(stmt);
    ASSERT_TRUE(r.ok()) << strategy << ": " << r.status().ToString();
    EXPECT_EQ(r->epochs.size(), 3u) << strategy;
    EXPECT_GT(r->epochs[0].tuples_seen, 0u) << strategy;
  }
}

TEST(DatabaseTest, MulticlassAndRegressionModels) {
  const std::string dir = MakeTempDir("db_models");
  Database db(dir, DeviceProfile::Ssd());
  auto mspec = CatalogLookup("mnist8m", 0.02).ValueOrDie();
  Dataset mds = GenerateDataset(mspec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("mnist8m", mds).ok());
  auto r1 = db.Execute(
      "SELECT * FROM mnist8m TRAIN BY softmax WITH learning_rate=0.01, "
      "max_epoch_num=5, block_size=64KB");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  auto rspec = CatalogLookup("yearpred", 0.02).ValueOrDie();
  Dataset rds = GenerateDataset(rspec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("yearpred", rds).ok());
  auto r2 = db.Execute(
      "SELECT * FROM yearpred TRAIN BY linreg WITH learning_rate=0.01, "
      "max_epoch_num=5, block_size=64KB");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
}

TEST(UdaBaselineTest, BismarckNoShuffleVsShuffleOnce) {
  TableFixture f("susy", DataOrder::kClustered, 0.2, "uda_b");
  SimClock clock;
  IoStats stats;
  f.table->SetIoAccounting(DeviceProfile::Hdd(), &clock, &stats);

  UdaEngineOptions opts;
  opts.flavor = UdaFlavor::kBismarck;
  opts.max_epochs = 8;
  opts.lr.initial = 0.005;
  opts.test_set = f.ds.test.get();
  opts.clock = &clock;
  opts.io_stats = &stats;
  opts.device = DeviceProfile::Hdd();
  opts.scratch_dir = testing::TempDir();

  SvmModel m1(f.ds.spec.dim);
  auto no_shuffle = RunUdaBaseline(f.table.get(), &m1, opts);
  ASSERT_TRUE(no_shuffle.ok());
  EXPECT_EQ(no_shuffle->prep_seconds, 0.0);

  opts.shuffle_once = true;
  SvmModel m2(f.ds.spec.dim);
  auto shuffle_once = RunUdaBaseline(f.table.get(), &m2, opts);
  ASSERT_TRUE(shuffle_once.ok());
  EXPECT_GT(shuffle_once->final_metric, 0.72);
  // Clustered scan order costs No Shuffle a clear accuracy margin.
  EXPECT_LT(no_shuffle->final_metric, shuffle_once->final_metric - 0.08);
  // Offline shuffle ≈ an external sort: several sequential passes' worth
  // of simulated time plus the 2x disk copy.
  const double one_scan =
      DeviceProfile::Hdd().SequentialCost(f.table->size_bytes());
  EXPECT_GT(shuffle_once->prep_seconds, 3.0 * one_scan);
  EXPECT_GT(shuffle_once->extra_disk_bytes, 0u);
}

TEST(UdaBaselineTest, MadlibSlowerThanBismarck) {
  TableFixture f("susy", DataOrder::kShuffled, 0.2, "uda_m");
  SimClock clock;
  f.table->SetIoAccounting(DeviceProfile::Ssd(), &clock, nullptr);
  UdaEngineOptions opts;
  opts.max_epochs = 3;
  opts.clock = &clock;
  opts.device = DeviceProfile::Ssd();

  opts.flavor = UdaFlavor::kBismarck;
  LogisticRegression m1(f.ds.spec.dim);
  auto bis = RunUdaBaseline(f.table.get(), &m1, opts);
  ASSERT_TRUE(bis.ok());

  opts.flavor = UdaFlavor::kMadlib;
  LogisticRegression m2(f.ds.spec.dim);
  auto mad = RunUdaBaseline(f.table.get(), &m2, opts);
  ASSERT_TRUE(mad.ok());
  EXPECT_GT(mad->sim_compute_seconds, 1.4 * bis->sim_compute_seconds);
}

TEST(UdaBaselineTest, MadlibLimitations) {
  // Wide dense LR times out (epsilon/yfcc behaviour).
  TableFixture wide("yfcc", DataOrder::kClustered, 0.002, "uda_wide", 8192);
  UdaEngineOptions opts;
  opts.flavor = UdaFlavor::kMadlib;
  opts.max_epochs = 1;
  LogisticRegression lr_model(wide.ds.spec.dim);
  auto r = RunUdaBaseline(wide.table.get(), &lr_model, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->timed_out);

  // SVM is fine on the same table.
  SvmModel svm_model(wide.ds.spec.dim);
  auto r2 = RunUdaBaseline(wide.table.get(), &svm_model, opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->timed_out);

  // Sparse input unsupported.
  TableFixture sparse("criteo", DataOrder::kClustered, 0.002, "uda_sparse", 8192);
  LogisticRegression lr2(sparse.ds.spec.dim);
  EXPECT_TRUE(RunUdaBaseline(sparse.table.get(), &lr2, opts)
                  .status()
                  .IsNotImplemented());
}

// --- Guarded lifecycle SQL surface (DESIGN.md §13) -------------------------

TEST(QueryParserTest, RollbackStatement) {
  auto stmt = ParseQuery("ROLLBACK MODEL m TO 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_TRUE(std::holds_alternative<RollbackStatement>(*stmt));
  EXPECT_EQ(std::get<RollbackStatement>(*stmt).model_id, "m");
  EXPECT_EQ(std::get<RollbackStatement>(*stmt).version, 2u);
  EXPECT_TRUE(ParseQuery("rollback model lr_0 to 17;").ok());

  EXPECT_FALSE(ParseQuery("ROLLBACK MODEL m").ok());
  EXPECT_FALSE(ParseQuery("ROLLBACK MODEL m TO").ok());
  EXPECT_FALSE(ParseQuery("ROLLBACK MODEL m TO x").ok());
  EXPECT_FALSE(ParseQuery("ROLLBACK MODEL m TO 0").ok());
  EXPECT_FALSE(ParseQuery("ROLLBACK MODEL m TO -1").ok());
  EXPECT_FALSE(ParseQuery("ROLLBACK MODEL m TO 2 WITH force=true").ok());

  // The lifecycle TRAIN options are whitelisted; a typo is still rejected.
  EXPECT_TRUE(ParseQuery("SELECT * FROM t TRAIN BY lr WITH publish=m, "
                         "validate=true, holdout_fraction=0.2, "
                         "validate_min_metric=0.6, validate_max_loss=0.7, "
                         "validate_max_regression=0.05, canary_fraction=0.1, "
                         "canary_batches=8, auto_rollback=true")
                  .ok());
  EXPECT_FALSE(
      ParseQuery("SELECT * FROM t TRAIN BY lr WITH canary_fracton=0.1").ok());
}

TEST(DatabaseTest, RollbackModelSqlRoundTrip) {
  const std::string dir = MakeTempDir("db_rollback");
  Database db(dir, DeviceProfile::Ssd());
  auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());

  TrainStatement stmt;
  stmt.table_name = "susy";
  stmt.model_kind = "lr";
  stmt.params = Params::Parse("learning_rate=0.005, max_epoch_num=2, "
                              "block_size=16KB, publish=m, seed=1")
                    .ValueOrDie();
  ASSERT_TRUE(db.Train(stmt).ok());
  const std::vector<double> v1_params =
      db.models().Get("m").ValueOrDie()->params();
  stmt.params.Set("seed", "2");
  ASSERT_TRUE(db.Train(stmt).ok());
  ASSERT_EQ(db.models().GetVersion("m").ValueOrDie(), 2u);

  auto rolled = db.Execute("ROLLBACK MODEL m TO 1");
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  EXPECT_NE(rolled->find("rolled back model m to version 1"),
            std::string::npos)
      << *rolled;
  EXPECT_EQ(db.models().GetVersion("m").ValueOrDie(), 1u);
  EXPECT_EQ(db.models().Get("m").ValueOrDie()->params(), v1_params);
  // PREDICT serves the rolled-back version.
  ASSERT_TRUE(db.Execute("SELECT * FROM susy PREDICT BY m").ok());

  EXPECT_TRUE(db.Execute("ROLLBACK MODEL m TO 1").status()
                  .IsInvalidArgument());  // already current
  EXPECT_TRUE(db.Execute("ROLLBACK MODEL m TO 99").status().IsNotFound());
  EXPECT_TRUE(db.Execute("ROLLBACK MODEL ghost TO 1").status().IsNotFound());
}

TEST(DatabaseTest, PredictAgainstModelRemovedMidRunFailsCleanly) {
  // Satellite 3: a model Remove()d while a serving run is in flight makes
  // each later request fail with a clean per-request kNotFound — no hang,
  // no stale pointer, no torn batch. Earlier requests keep their snapshot.
  const std::string dir = MakeTempDir("db_remove_midrun");
  Database db(dir, DeviceProfile::Ssd());
  auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());
  TrainStatement stmt;
  stmt.table_name = "susy";
  stmt.model_kind = "lr";
  stmt.params = Params::Parse("learning_rate=0.005, max_epoch_num=2, "
                              "block_size=16KB, publish=m")
                    .ValueOrDie();
  ASSERT_TRUE(db.Train(stmt).ok());

  ServeOptions serve;
  serve.max_batch = 4;
  serve.batch_deadline_s = 1.0;  // close by size only: exact boundaries
  serve.num_workers = 2;
  serve.max_queue_depth = 0;
  serve.flush_on_idle = false;
  InferenceEngine engine(&db.models(), serve);
  ASSERT_TRUE(engine.Start().ok());

  const std::vector<Tuple>& pool = *ds.train;
  constexpr uint64_t kRequests = 64;
  constexpr uint64_t kRemoveAt = 32;
  std::vector<std::future<ServeReply>> replies;
  for (uint64_t i = 0; i < kRequests; ++i) {
    ServeRequest req;
    req.tuple = pool[i % pool.size()];
    req.model_id = "m";
    req.arrival_s = 1e-3 * static_cast<double>(i);
    if (i == kRemoveAt) {
      // Runs on the scheduler thread when it processes this arrival: the
      // removal lands at a deterministic point between batches.
      req.on_arrival = [&db] { ASSERT_TRUE(db.models().Remove("m").ok()); };
    }
    replies.push_back(engine.Submit(std::move(req)));
  }
  ASSERT_TRUE(engine.Drain().ok());  // completes: nothing hangs

  uint64_t served = 0, not_found = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    const ServeReply r = replies[i].get();
    if (r.status.ok()) {
      ++served;
      EXPECT_EQ(r.model_version, 1u) << "request " << i;
    } else {
      // kNotFound is permanent: it must bypass retry/breaker/brownout and
      // never surface as a timeout, IoError, or stale answer.
      EXPECT_TRUE(r.status.IsNotFound())
          << "request " << i << ": " << r.status.ToString();
      ++not_found;
    }
  }
  EXPECT_EQ(served + not_found, kRequests);
  // Batches formed before the removal were served from their snapshot;
  // everything at or after the removal boundary failed cleanly.
  EXPECT_EQ(served, kRemoveAt);
  EXPECT_EQ(not_found, kRequests - kRemoveAt);

  // Statement-level: the next PREDICT BY fails up front with kNotFound.
  EXPECT_TRUE(
      db.Execute("SELECT * FROM susy PREDICT BY m").status().IsNotFound());
}

TEST(DatabaseTest, RollbackMidRunNeverFailsARequest) {
  // Rollback during a live run is a version change, not an outage: every
  // request is answered OK, by either the new or the old current version.
  const std::string dir = MakeTempDir("db_rollback_midrun");
  Database db(dir, DeviceProfile::Ssd());
  auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());
  TrainStatement stmt;
  stmt.table_name = "susy";
  stmt.model_kind = "lr";
  stmt.params = Params::Parse("learning_rate=0.005, max_epoch_num=2, "
                              "block_size=16KB, publish=m, seed=1")
                    .ValueOrDie();
  ASSERT_TRUE(db.Train(stmt).ok());
  stmt.params.Set("seed", "2");
  ASSERT_TRUE(db.Train(stmt).ok());  // v2 current, v1 retained

  ServeOptions serve;
  serve.max_batch = 4;
  serve.batch_deadline_s = 1.0;
  serve.num_workers = 2;
  serve.max_queue_depth = 0;
  serve.flush_on_idle = false;
  InferenceEngine engine(&db.models(), serve);
  ASSERT_TRUE(engine.Start().ok());

  const std::vector<Tuple>& pool = *ds.train;
  std::vector<std::future<ServeReply>> replies;
  for (uint64_t i = 0; i < 64; ++i) {
    ServeRequest req;
    req.tuple = pool[i % pool.size()];
    req.model_id = "m";
    req.arrival_s = 1e-3 * static_cast<double>(i);
    if (i == 32) {
      req.on_arrival = [&db] {
        ASSERT_TRUE(db.RollbackModel(RollbackStatement{"m", 1}).ok());
      };
    }
    replies.push_back(engine.Submit(std::move(req)));
  }
  ASSERT_TRUE(engine.Drain().ok());

  std::set<uint64_t> versions;
  for (auto& f : replies) {
    const ServeReply r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    versions.insert(r.model_version);
  }
  EXPECT_EQ(versions, (std::set<uint64_t>{1, 2}));
  EXPECT_EQ(db.models().GetVersion("m").ValueOrDie(), 1u);
}

}  // namespace
}  // namespace corgipile
