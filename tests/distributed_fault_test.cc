// Worker-supervision suite for TrainDistributed: seeded fault injection
// kills or slows individual workers and the WorkerFailurePolicy decides
// whether the run fails fast, evicts-and-rescales, or waits — with
// bit-identical outcomes across reruns of the same seed.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "dataloader/distributed.h"
#include "dataloader/record_file.h"
#include "dataset/catalog.h"
#include "dataset/loader.h"
#include "iosim/device.h"
#include "iosim/fault_injector.h"
#include "iosim/sim_clock.h"
#include "ml/linear_models.h"
#include "util/status.h"

namespace corgipile {
namespace {

/// Stamps every failure message of the enclosing scope with the scenario
/// (the test name) and the fault seed, so a red run reproduces with
/// `--gtest_filter=<scenario>` and the printed seed (DESIGN.md §12).
#define FAULT_SCENARIO_TRACE(seed_expr)                                      \
  SCOPED_TRACE(::std::string("scenario=") +                                  \
               ::testing::UnitTest::GetInstance()->current_test_info()->name() + \
               " seed=" + ::std::to_string(seed_expr))

// Record-file-backed fixture. shuffle_blocks is disabled in the returned
// options so each worker's block shard is identical every epoch — a faulty
// or slow block then belongs to exactly one worker for the whole run, which
// keeps "how many workers die" independent of the epoch count.
struct DistFaultFixture {
  Dataset ds;
  std::string path;
  std::unique_ptr<RecordFileBlockSource> source;

  explicit DistFaultFixture(const std::string& tag) {
    auto spec = CatalogLookup("susy", 0.05);
    ds = GenerateDataset(*spec, DataOrder::kClustered);
    path = testing::TempDir() + tag + ".bin";
    auto src = MaterializeRecordFile(ds.MakeSchema(), *ds.train, path,
                                     /*block_bytes=*/2048);
    EXPECT_TRUE(src.ok());
    source = std::move(*src);
  }

  ~DistFaultFixture() {
    std::remove(path.c_str());
    std::remove((path + ".idx").c_str());
  }

  DistributedTrainerOptions Options() const {
    DistributedTrainerOptions opts;
    opts.num_workers = 4;
    opts.global_batch_size = 64;
    opts.epochs = 3;
    opts.lr.initial = 0.01;
    opts.test_set = ds.test.get();
    opts.label_type = ds.MakeSchema().label_type;
    opts.shuffle_blocks = false;  // stable shards; see fixture comment
    return opts;
  }

  Result<TrainResult> Run(const DistributedTrainerOptions& opts,
                          LogisticRegression* model_out = nullptr) {
    LogisticRegression local(ds.spec.dim);
    LogisticRegression* model = model_out != nullptr ? model_out : &local;
    return TrainDistributed(model, source.get(), opts);
  }
};

// Sparse permanent read errors: a couple of blocks (and therefore a couple
// of workers) are unreadable, the rest are healthy. Seed/rate chosen so
// that at least one but not every worker is hit.
FaultConfig KillerFaults() {
  FaultConfig cfg;
  cfg.seed = 31;
  cfg.permanent_read_error_rate = 0.02;
  return cfg;
}

TEST(DistributedFaultTest, FailFastSurfacesWorkerError) {
  DistFaultFixture f("dist_failfast");
  FaultInjector inj(KillerFaults());
  FAULT_SCENARIO_TRACE(inj.config().seed);
  f.source->SetFaultInjection(&inj);

  auto result = f.Run(f.Options());  // default policy: kFailFast
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError()) << result.status().ToString();
  // The error is annotated with the failing worker's id.
  EXPECT_NE(result.status().message().find("worker"), std::string::npos)
      << result.status().ToString();
}

TEST(DistributedFaultTest, DropAndRescaleCompletesAndRecordsEviction) {
  DistFaultFixture f("dist_drop");
  FaultInjector inj(KillerFaults());
  FAULT_SCENARIO_TRACE(inj.config().seed);
  f.source->SetFaultInjection(&inj);

  DistributedTrainerOptions opts = f.Options();
  opts.failure_policy = WorkerFailurePolicy::kDropAndRescale;
  auto result = f.Run(opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Some but not all workers were evicted, each with the I/O error that
  // killed it.
  ASSERT_GE(result->dropped_workers.size(), 1u);
  ASSERT_LT(result->dropped_workers.size(), opts.num_workers);
  for (const DroppedWorker& d : result->dropped_workers) {
    EXPECT_EQ(d.code, StatusCode::kIoError);
    EXPECT_FALSE(d.reason.empty());
  }

  // Training ran to completion on the survivors.
  ASSERT_EQ(result->epochs.size(), opts.epochs);
  const uint32_t survivors =
      opts.num_workers - static_cast<uint32_t>(result->dropped_workers.size());
  EXPECT_EQ(result->epochs.back().active_workers, survivors);
  // The dropped shard's tuples are gone from later epochs.
  EXPECT_LT(result->epochs.back().tuples_seen, f.ds.train->size());
  EXPECT_GT(result->epochs.back().tuples_seen, 0u);

  // Per-worker summaries agree with the eviction list.
  ASSERT_EQ(result->workers.size(), opts.num_workers);
  uint32_t dropped_flags = 0;
  for (const WorkerSummary& ws : result->workers) {
    dropped_flags += ws.dropped ? 1 : 0;
    if (!ws.dropped) EXPECT_GT(ws.heartbeat_steps, 0u);
  }
  EXPECT_EQ(dropped_flags, result->dropped_workers.size());
}

TEST(DistributedFaultTest, DropAndRescaleIsBitIdenticalAcrossReruns) {
  DistFaultFixture f("dist_det");
  FaultInjector inj1(KillerFaults());
  FAULT_SCENARIO_TRACE(inj1.config().seed);
  DistributedTrainerOptions opts = f.Options();
  opts.failure_policy = WorkerFailurePolicy::kDropAndRescale;

  LogisticRegression m1(f.ds.spec.dim);
  f.source->SetFaultInjection(&inj1);
  auto r1 = f.Run(opts, &m1);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  // Fresh injector, same seed: the rerun must match bit for bit.
  FaultInjector inj2(KillerFaults());
  FAULT_SCENARIO_TRACE(inj2.config().seed);
  LogisticRegression m2(f.ds.spec.dim);
  f.source->SetFaultInjection(&inj2);
  auto r2 = f.Run(opts, &m2);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();

  ASSERT_EQ(m1.params().size(), m2.params().size());
  for (size_t i = 0; i < m1.params().size(); ++i) {
    ASSERT_DOUBLE_EQ(m1.params()[i], m2.params()[i]) << "param " << i;
  }
  ASSERT_EQ(r1->dropped_workers.size(), r2->dropped_workers.size());
  for (size_t i = 0; i < r1->dropped_workers.size(); ++i) {
    EXPECT_EQ(r1->dropped_workers[i].worker_id,
              r2->dropped_workers[i].worker_id);
    EXPECT_EQ(r1->dropped_workers[i].epoch, r2->dropped_workers[i].epoch);
    EXPECT_EQ(r1->dropped_workers[i].code, r2->dropped_workers[i].code);
  }
  ASSERT_EQ(r1->workers.size(), r2->workers.size());
  for (size_t w = 0; w < r1->workers.size(); ++w) {
    EXPECT_EQ(r1->workers[w].heartbeat_steps, r2->workers[w].heartbeat_steps);
    EXPECT_DOUBLE_EQ(r1->workers[w].sim_seconds, r2->workers[w].sim_seconds);
  }
}

// Latency spikes big enough that one spiked block read blows the per-epoch
// straggler budget; workers with spike-free shards stay far under it.
FaultConfig StragglerFaults() {
  FaultConfig cfg;
  cfg.seed = 17;
  cfg.latency_spike_rate = 0.02;
  cfg.latency_spike_seconds = 25.0;
  return cfg;
}

TEST(DistributedFaultTest, StragglerIsEvictedUnderDropPolicy) {
  DistFaultFixture f("dist_straggler_drop");
  FaultInjector inj(StragglerFaults());
  FAULT_SCENARIO_TRACE(inj.config().seed);
  SimClock clock;
  IoStats io;
  f.source->SetIoAccounting(DeviceProfile::Memory(), &clock, &io);
  f.source->SetFaultInjection(&inj);

  DistributedTrainerOptions opts = f.Options();
  opts.clock = &clock;
  opts.failure_policy = WorkerFailurePolicy::kDropAndRescale;
  opts.straggler_deadline_sim_seconds = 5.0;
  auto result = f.Run(opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_GE(result->dropped_workers.size(), 1u);
  ASSERT_LT(result->dropped_workers.size(), opts.num_workers);
  for (const DroppedWorker& d : result->dropped_workers) {
    EXPECT_EQ(d.code, StatusCode::kDeadlineExceeded) << d.reason;
  }
  ASSERT_EQ(result->epochs.size(), opts.epochs);
  // Once the spiked shards are evicted the barrier is bounded by the
  // deadline: no surviving worker waits on a 25 s spike again.
  EXPECT_LE(result->epochs.back().barrier_sim_seconds,
            opts.straggler_deadline_sim_seconds);
}

TEST(DistributedFaultTest, WaitPolicyToleratesStragglers) {
  DistFaultFixture f("dist_straggler_wait");
  FaultInjector inj(StragglerFaults());
  FAULT_SCENARIO_TRACE(inj.config().seed);
  SimClock clock;
  IoStats io;
  f.source->SetIoAccounting(DeviceProfile::Memory(), &clock, &io);
  f.source->SetFaultInjection(&inj);

  DistributedTrainerOptions opts = f.Options();
  opts.clock = &clock;
  opts.failure_policy = WorkerFailurePolicy::kWait;
  opts.straggler_deadline_sim_seconds = 5.0;
  auto result = f.Run(opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Nobody evicted; every epoch sees the full worker set and the full data.
  EXPECT_TRUE(result->dropped_workers.empty());
  ASSERT_EQ(result->epochs.size(), opts.epochs);
  for (const EpochLog& log : result->epochs) {
    EXPECT_EQ(log.active_workers, opts.num_workers);
    EXPECT_EQ(log.tuples_seen, f.ds.train->size());
  }
  // The cost shows up as barrier wait instead: the epoch critical path
  // includes the spike, and the other workers' idle time is charged to
  // kStragglerWait.
  EXPECT_GE(result->epochs.front().barrier_sim_seconds,
            StragglerFaults().latency_spike_seconds);
  EXPECT_GT(clock.Elapsed(TimeCategory::kStragglerWait), 0.0);
}

TEST(DistributedFaultTest, FailFastWithDeadlineReturnsDeadlineExceeded) {
  DistFaultFixture f("dist_straggler_ff");
  FaultInjector inj(StragglerFaults());
  FAULT_SCENARIO_TRACE(inj.config().seed);
  SimClock clock;
  IoStats io;
  f.source->SetIoAccounting(DeviceProfile::Memory(), &clock, &io);
  f.source->SetFaultInjection(&inj);

  DistributedTrainerOptions opts = f.Options();
  opts.clock = &clock;
  opts.straggler_deadline_sim_seconds = 5.0;  // policy stays kFailFast
  auto result = f.Run(opts);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST(DistributedFaultTest, HardErrorFailsFastUnderWaitPolicy) {
  DistFaultFixture f("dist_wait_hard");
  FaultInjector inj(KillerFaults());
  FAULT_SCENARIO_TRACE(inj.config().seed);
  f.source->SetFaultInjection(&inj);

  DistributedTrainerOptions opts = f.Options();
  opts.failure_policy = WorkerFailurePolicy::kWait;
  auto result = f.Run(opts);
  // An unreadable shard cannot be waited out.
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError()) << result.status().ToString();
}

TEST(DistributedFaultTest, RunDeadlineBoundsTheWholeRun) {
  DistFaultFixture f("dist_run_deadline");
  SimClock clock;
  IoStats io;
  f.source->SetIoAccounting(DeviceProfile::Memory(), &clock, &io);

  DistributedTrainerOptions opts = f.Options();
  opts.epochs = 50;
  opts.clock = &clock;
  opts.run_deadline_sim_seconds = 1e-6;  // expires once any sim time accrues
  auto result = f.Run(opts);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST(DistributedFaultTest, SupervisionOffMatchesLegacyBehaviour) {
  // With no faults, a supervised run (drop policy, no deadline) must be
  // bit-identical to the unsupervised default — supervision only changes
  // outcomes when something actually fails.
  DistFaultFixture f("dist_clean");
  LogisticRegression m1(f.ds.spec.dim);
  auto r1 = f.Run(f.Options(), &m1);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  DistributedTrainerOptions opts = f.Options();
  opts.failure_policy = WorkerFailurePolicy::kDropAndRescale;
  LogisticRegression m2(f.ds.spec.dim);
  auto r2 = f.Run(opts, &m2);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();

  EXPECT_TRUE(r1->dropped_workers.empty());
  EXPECT_TRUE(r2->dropped_workers.empty());
  ASSERT_EQ(m1.params().size(), m2.params().size());
  for (size_t i = 0; i < m1.params().size(); ++i) {
    ASSERT_DOUBLE_EQ(m1.params()[i], m2.params()[i]) << "param " << i;
  }
}

}  // namespace
}  // namespace corgipile
