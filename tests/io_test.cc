// Tests for the data-interchange layer: LIBSVM text files, TFRecord-style
// record files with block indexes, model serialization, the detailed
// binary metrics, and the stream-adapter operator.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "db/stream_adapter_op.h"
#include "dataloader/record_file.h"
#include "dataset/catalog.h"
#include "dataset/libsvm.h"
#include "ml/linear_models.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/serialize.h"
#include "shuffle/hierarchical.h"

namespace corgipile {
namespace {

TEST(LibsvmTest, ParseSparse) {
  std::istringstream in(
      "+1 3:0.5 17:-1.25\n"
      "-1 1:2 3:4 20:1\n"
      "\n"
      "1 5:1 # trailing comment\n");
  auto r = ParseLibsvm(in);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->tuples.size(), 3u);
  EXPECT_EQ(r->inferred_dim, 20u);
  EXPECT_FALSE(r->looks_dense);
  const Tuple& t0 = r->tuples[0];
  EXPECT_EQ(t0.label, 1.0);
  ASSERT_EQ(t0.feature_keys.size(), 2u);
  EXPECT_EQ(t0.feature_keys[0], 2u);  // 1-based 3 → 0-based 2
  EXPECT_FLOAT_EQ(t0.feature_values[1], -1.25f);
  EXPECT_EQ(r->tuples[1].label, -1.0);
  EXPECT_EQ(r->tuples[2].id, 2u);
}

TEST(LibsvmTest, ParseDenseDetected) {
  std::istringstream in(
      "+1 1:0.1 2:0.2 3:0.3\n"
      "-1 1:1.0 2:2.0 3:3.0\n");
  auto r = ParseLibsvm(in);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->looks_dense);
  EXPECT_EQ(r->inferred_dim, 3u);
  EXPECT_FALSE(r->tuples[0].sparse());
  EXPECT_FLOAT_EQ(r->tuples[1].feature_values[2], 3.0f);
}

TEST(LibsvmTest, ZeroLabelBinarized) {
  std::istringstream in("0 1:1\n1 1:1\n");
  auto r = ParseLibsvm(in, /*binarize_labels=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples[0].label, -1.0);
  EXPECT_EQ(r->tuples[1].label, 1.0);
  std::istringstream in2("0 1:1\n");
  auto r2 = ParseLibsvm(in2, /*binarize_labels=*/false);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->tuples[0].label, 0.0);
}

TEST(LibsvmTest, MalformedInputs) {
  {
    std::istringstream in("abc 1:1\n");
    EXPECT_TRUE(ParseLibsvm(in).status().IsCorruption());
  }
  {
    std::istringstream in("+1 notkv\n");
    EXPECT_TRUE(ParseLibsvm(in).status().IsCorruption());
  }
  {
    std::istringstream in("+1 0:1\n");  // 1-based indices required
    EXPECT_TRUE(ParseLibsvm(in).status().IsCorruption());
  }
  {
    std::istringstream in("+1 3:1 2:1\n");  // not increasing
    EXPECT_TRUE(ParseLibsvm(in).status().IsCorruption());
  }
  {
    std::istringstream in("+1 2:xyz\n");
    EXPECT_TRUE(ParseLibsvm(in).status().IsCorruption());
  }
}

TEST(LibsvmTest, RoundTripSparseAndDense) {
  auto spec = CatalogLookup("criteo", 0.002).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  std::ostringstream out;
  ASSERT_TRUE(WriteLibsvm(*ds.train, out).ok());
  std::istringstream in(out.str());
  auto r = ParseLibsvm(in);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->tuples.size(), ds.train->size());
  for (size_t i = 0; i < r->tuples.size(); ++i) {
    EXPECT_EQ(r->tuples[i].label, (*ds.train)[i].label);
    EXPECT_EQ(r->tuples[i].feature_keys, (*ds.train)[i].feature_keys);
    EXPECT_EQ(r->tuples[i].feature_values, (*ds.train)[i].feature_values);
  }
}

TEST(LibsvmTest, FileRoundTrip) {
  std::vector<Tuple> tuples{MakeSparseTuple(0, 1.0, {0, 4}, {1.5f, -2.0f}),
                            MakeSparseTuple(1, -1.0, {2}, {0.25f})};
  const std::string path = testing::TempDir() + "libsvm_rt.txt";
  ASSERT_TRUE(WriteLibsvmFile(tuples, path).ok());
  auto r = ReadLibsvmFile(path);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->tuples.size(), 2u);
  EXPECT_EQ(r->tuples[0].feature_keys, tuples[0].feature_keys);
  EXPECT_TRUE(ReadLibsvmFile("/nonexistent/x").status().IsIoError());
  std::remove(path.c_str());
}

TEST(RecordFileTest, WriteIndexRead) {
  auto spec = CatalogLookup("cifar10", 0.02).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  const std::string path = testing::TempDir() + "records.bin";
  auto source = MaterializeRecordFile(ds.MakeSchema(), *ds.train, path,
                                      /*block_bytes=*/16 * 1024);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->num_tuples(), ds.train->size());
  EXPECT_GT((*source)->num_blocks(), 5u);

  // All blocks concatenated reproduce the dataset in order.
  std::vector<Tuple> all;
  for (uint32_t b = 0; b < (*source)->num_blocks(); ++b) {
    const size_t before = all.size();
    ASSERT_TRUE((*source)->ReadBlock(b, &all).ok());
    EXPECT_EQ(all.size() - before, (*source)->TuplesInBlock(b));
  }
  ASSERT_EQ(all.size(), ds.train->size());
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], (*ds.train)[i]);
  std::remove(path.c_str());
  std::remove((path + ".idx").c_str());
}

TEST(RecordFileTest, IndexPersistence) {
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < 100; ++i) {
    tuples.push_back(MakeDenseTuple(i, 1.0, {1.0f, 2.0f}));
  }
  const std::string path = testing::TempDir() + "records_idx.bin";
  {
    auto w = RecordFileWriter::Create(path);
    ASSERT_TRUE(w.ok());
    for (const auto& t : tuples) ASSERT_TRUE((*w)->Append(t).ok());
    ASSERT_TRUE((*w)->Finish().ok());
    EXPECT_EQ((*w)->records_written(), 100u);
  }
  auto index = BuildRecordBlockIndex(path, 512);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->total_tuples, 100u);
  const std::string idx_path = path + ".idx";
  ASSERT_TRUE(index->WriteFile(idx_path).ok());
  auto reloaded = RecordBlockIndex::ReadFile(idx_path);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->blocks.size(), index->blocks.size());
  EXPECT_EQ(reloaded->total_tuples, 100u);
  EXPECT_EQ(reloaded->blocks[1].offset, index->blocks[1].offset);
  std::remove(path.c_str());
  std::remove(idx_path.c_str());
}

TEST(RecordFileTest, IoAccountingSequentialVsRandom) {
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < 200; ++i) {
    tuples.push_back(MakeDenseTuple(i, 1.0, {1.0f}));
  }
  Schema schema{"r", 1, false, LabelType::kBinary, 2};
  const std::string path = testing::TempDir() + "records_io.bin";
  auto source = MaterializeRecordFile(schema, tuples, path, 1024);
  ASSERT_TRUE(source.ok());
  SimClock clock;
  IoStats stats;
  (*source)->SetIoAccounting(DeviceProfile::Hdd(), &clock, &stats);
  std::vector<Tuple> sink;
  // Sequential pass: block 0 is a seek, the rest continue.
  for (uint32_t b = 0; b < (*source)->num_blocks(); ++b) {
    ASSERT_TRUE((*source)->ReadBlock(b, &sink).ok());
  }
  EXPECT_EQ(stats.random_reads, 1u);
  EXPECT_EQ(stats.sequential_reads, (*source)->num_blocks() - 1);
  // Jumping back is a seek.
  ASSERT_TRUE((*source)->ReadBlock(0, &sink).ok());
  EXPECT_EQ(stats.random_reads, 2u);
  std::remove(path.c_str());
  std::remove((path + ".idx").c_str());
}

TEST(RecordFileTest, WorksWithCorgiPileStream) {
  auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  const std::string path = testing::TempDir() + "records_corgi.bin";
  auto source =
      MaterializeRecordFile(ds.MakeSchema(), *ds.train, path, 4 * 1024);
  ASSERT_TRUE(source.ok());
  auto stream = MakeCorgiPileStream(source->get(), ds.train->size() / 10, 3);
  ASSERT_TRUE(stream->StartEpoch(0).ok());
  std::set<uint64_t> seen;
  while (const Tuple* t = stream->Next()) seen.insert(t->id);
  ASSERT_TRUE(stream->status().ok());
  EXPECT_EQ(seen.size(), ds.train->size());
  std::remove(path.c_str());
  std::remove((path + ".idx").c_str());
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  LogisticRegression model(16);
  Rng rng(3);
  for (auto& p : model.params()) p = rng.NextGaussian();
  const std::string path = testing::TempDir() + "model.bin";
  ASSERT_TRUE(SaveModelParams(model, path).ok());

  LogisticRegression loaded(16);
  ASSERT_TRUE(LoadModelParams(&loaded, path).ok());
  EXPECT_EQ(loaded.params(), model.params());
  std::remove(path.c_str());
}

TEST(SerializeTest, MismatchesRejected) {
  MlpModel mlp(4, 3, 2);
  mlp.InitParams(1);
  const std::string path = testing::TempDir() + "model_mlp.bin";
  ASSERT_TRUE(SaveModelParams(mlp, path).ok());

  LogisticRegression wrong_kind(4);
  EXPECT_TRUE(LoadModelParams(&wrong_kind, path).IsInvalidArgument());
  MlpModel wrong_size(5, 3, 2);
  EXPECT_TRUE(LoadModelParams(&wrong_size, path).IsInvalidArgument());
  EXPECT_TRUE(LoadModelParams(&mlp, "/nonexistent/m").IsIoError());
  // Truncated file → Corruption.
  {
    std::ofstream f(path, std::ios::trunc);
    f << "corgimodel_v1 mlp " << mlp.num_params() << "\nxx";
  }
  EXPECT_TRUE(LoadModelParams(&mlp, path).IsCorruption());
  std::remove(path.c_str());
}

TEST(BinaryReportTest, PerfectAndRandomAuc) {
  LogisticRegression model(1);
  model.params()[0] = 1.0;  // score = x
  std::vector<Tuple> tuples;
  // Perfectly separable by x.
  for (int i = 0; i < 50; ++i) {
    tuples.push_back(MakeDenseTuple(i, 1.0, {1.0f + i * 0.01f}));
    tuples.push_back(MakeDenseTuple(i, -1.0, {-1.0f - i * 0.01f}));
  }
  auto report = EvaluateBinaryDetailed(model, tuples);
  EXPECT_EQ(report.tp, 50u);
  EXPECT_EQ(report.tn, 50u);
  EXPECT_DOUBLE_EQ(report.auc, 1.0);
  EXPECT_DOUBLE_EQ(report.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(report.f1(), 1.0);

  // All-equal scores → AUC 0.5 by tie averaging.
  LogisticRegression zero(1);
  auto tied = EvaluateBinaryDetailed(zero, tuples);
  EXPECT_NEAR(tied.auc, 0.5, 1e-12);
}

TEST(BinaryReportTest, ConfusionCountsAndDegenerate) {
  LogisticRegression model(1);
  model.params()[0] = 1.0;
  std::vector<Tuple> tuples{
      MakeDenseTuple(0, 1.0, {1.0f}),    // tp
      MakeDenseTuple(1, 1.0, {-1.0f}),   // fn
      MakeDenseTuple(2, -1.0, {1.0f}),   // fp
      MakeDenseTuple(3, -1.0, {-1.0f}),  // tn
  };
  auto r = EvaluateBinaryDetailed(model, tuples);
  EXPECT_EQ(r.tp, 1u);
  EXPECT_EQ(r.fn, 1u);
  EXPECT_EQ(r.fp, 1u);
  EXPECT_EQ(r.tn, 1u);
  EXPECT_DOUBLE_EQ(r.precision(), 0.5);
  EXPECT_DOUBLE_EQ(r.recall(), 0.5);

  // Single-class input: AUC undefined → 0.
  std::vector<Tuple> one_class{MakeDenseTuple(0, 1.0, {1.0f})};
  EXPECT_EQ(EvaluateBinaryDetailed(model, one_class).auc, 0.0);
}

TEST(StreamAdapterTest, DrivesEpochsThroughVolcanoProtocol) {
  auto tuples = std::make_shared<std::vector<Tuple>>();
  for (size_t i = 0; i < 200; ++i) {
    tuples->push_back(MakeDenseTuple(i, 1.0, {0.0f}));
  }
  auto source = std::make_unique<InMemoryBlockSource>(
      Schema{"a", 1, false, LabelType::kBinary, 2}, tuples, 20);
  ShuffleOptions opts;
  opts.buffer_fraction = 0.2;
  auto stream =
      MakeTupleStream(ShuffleStrategy::kCorgiPile, source.get(), opts);
  ASSERT_TRUE(stream.ok());
  StreamAdapterOp op(std::move(*stream), std::move(source));
  ASSERT_TRUE(op.Init().ok());
  std::vector<uint64_t> e0, e1;
  while (const Tuple* t = op.Next()) e0.push_back(t->id);
  ASSERT_TRUE(op.ReScan().ok());
  while (const Tuple* t = op.Next()) e1.push_back(t->id);
  ASSERT_TRUE(op.status().ok());
  EXPECT_EQ(e0.size(), 200u);
  EXPECT_EQ(e1.size(), 200u);
  EXPECT_NE(e0, e1);  // fresh shuffle per re-scan
  op.Close();
}

}  // namespace
}  // namespace corgipile
