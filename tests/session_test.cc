// Session layer and multi-session concurrency (DESIGN.md §14): per-session
// stats and seed defaults, SHOW SESSIONS, snapshot isolation of in-flight
// merge scans against concurrent Insert, shard-count invariance of scan
// order, and bit-identical per-session results across seeded reruns of a
// concurrent TRAIN + PREDICT + INSERT workload. The concurrency tests are
// the tsan targets for the sharded engine.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "db/database.h"
#include "db/query.h"
#include "dataset/catalog.h"
#include "dataset/loader.h"
#include "exec/shard_scan.h"
#include "session/session.h"
#include "session/workload.h"
#include "util/threadpool.h"

namespace corgipile {
namespace {

std::string MakeTempDir(const std::string& name) {
  std::string dir = testing::TempDir() + name;
  std::filesystem::create_directories(dir);
  return dir;
}

Dataset SmallSusy(double scale = 0.05) {
  auto spec = CatalogLookup("susy", scale).ValueOrDie();
  return GenerateDataset(spec, DataOrder::kClustered);
}

std::vector<Tuple> StreamBatch(const Schema& schema, uint64_t first_id,
                               uint64_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::vector<float> values(schema.dim);
    for (uint32_t d = 0; d < schema.dim; ++d) {
      values[d] = static_cast<float>((first_id + i + d) % 7) * 0.25f;
    }
    out.push_back(MakeDenseTuple(first_id + i, (first_id + i) % 2 ? 1.0 : -1.0,
                                 std::move(values)));
  }
  return out;
}

TEST(SessionSeedTest, DerivedSeedsDeterministicAndDistinct) {
  EXPECT_EQ(SessionSeedFor(42, 0), SessionSeedFor(42, 0));
  EXPECT_NE(SessionSeedFor(42, 0), SessionSeedFor(42, 1));
  EXPECT_NE(SessionSeedFor(42, 0), SessionSeedFor(43, 0));
  EXPECT_NE(SessionSeedFor(42, 1), SessionSeedFor(42, 2));
}

TEST(SessionTest, CreateSessionAssignsOrderedIds) {
  const std::string dir = MakeTempDir("sess_ids");
  Database db(dir, DeviceProfile::Ssd());
  // Id 1 is the implicit default session.
  EXPECT_EQ(db.default_session().id(), 1u);
  SessionOptions a;
  a.label = "alpha";
  auto sa = db.CreateSession(a);
  SessionOptions b;
  b.label = "beta";
  auto sb = db.CreateSession(b);
  EXPECT_EQ(sa->id(), 2u);
  EXPECT_EQ(sb->id(), 3u);

  auto infos = db.DescribeSessions();
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_EQ(infos[0].id, 1u);
  EXPECT_EQ(infos[0].label, "default");
  EXPECT_EQ(infos[1].label, "alpha");
  EXPECT_EQ(infos[2].label, "beta");

  // Destruction unregisters.
  sa.reset();
  EXPECT_EQ(db.DescribeSessions().size(), 2u);
}

TEST(SessionTest, StatsCountStatementsAndFailures) {
  const std::string dir = MakeTempDir("sess_stats");
  Database db(dir, DeviceProfile::Ssd());
  ASSERT_TRUE(db.RegisterDataset("susy", SmallSusy()).ok());
  auto s = db.CreateSession();

  auto trained = s->Execute(
      "SELECT * FROM susy TRAIN BY lr WITH learning_rate=0.005, "
      "max_epoch_num=2, block_size=64KB, buffer_fraction=0.1");
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  ASSERT_TRUE(s->Execute("SELECT * FROM susy PREDICT BY lr_0").ok());
  // Executable-but-failing statement counts as failed.
  EXPECT_TRUE(s->Execute("SELECT * FROM nope TRAIN BY lr")
                  .status()
                  .IsNotFound());

  SessionStats st = s->stats();
  EXPECT_EQ(st.statements, 3u);
  EXPECT_EQ(st.trains, 2u);
  EXPECT_EQ(st.predicts, 1u);
  EXPECT_EQ(st.failed, 1u);
  EXPECT_GT(st.sim_seconds, 0.0);

  // SHOW SESSIONS is introspection, not workload: stats unchanged.
  auto show = s->Execute("SHOW SESSIONS");
  ASSERT_TRUE(show.ok()) << show.status().ToString();
  EXPECT_EQ(s->stats().statements, 3u);
  EXPECT_NE(show->find("2 session(s)"), std::string::npos) << *show;
  EXPECT_NE(show->find("session 1 [default]"), std::string::npos) << *show;
  EXPECT_NE(show->find("trains=2"), std::string::npos) << *show;
}

TEST(SessionTest, StatementSeedDefaultsToSessionSeed) {
  const std::string dir = MakeTempDir("sess_seed");
  Database db(dir, DeviceProfile::Ssd());
  ASSERT_TRUE(db.RegisterDataset("susy", SmallSusy()).ok());

  auto train_on = [&](Session* s, const std::string& publish) {
    auto r = s->Execute(
        "SELECT * FROM susy TRAIN BY lr WITH learning_rate=0.005, "
        "max_epoch_num=3, block_size=64KB, buffer_fraction=0.1, publish=" +
        publish);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  };

  SessionOptions seven;
  seven.seed = 7;
  auto s1 = db.CreateSession(seven);
  auto s2 = db.CreateSession(seven);
  SessionOptions eight;
  eight.seed = 8;
  auto s3 = db.CreateSession(eight);

  train_on(s1.get(), "m7a");
  train_on(s2.get(), "m7b");
  train_on(s3.get(), "m8");

  const auto p7a = db.models().Get("m7a").ValueOrDie()->params();
  const auto p7b = db.models().Get("m7b").ValueOrDie()->params();
  const auto p8 = db.models().Get("m8").ValueOrDie()->params();
  EXPECT_EQ(p7a, p7b);  // same session seed, no seed= → identical run
  EXPECT_NE(p7a, p8);   // different session seed → different shuffles
}

TEST(SessionTest, CancelledSessionRefusesStatements) {
  const std::string dir = MakeTempDir("sess_cancel");
  Database db(dir, DeviceProfile::Ssd());
  ASSERT_TRUE(db.RegisterDataset("susy", SmallSusy()).ok());
  auto s = db.CreateSession();
  s->Cancel();
  EXPECT_TRUE(s->Execute("SELECT * FROM susy TRAIN BY lr")
                  .status()
                  .IsCancelled());
  // Cancellation gates before accounting: nothing counted.
  EXPECT_EQ(s->stats().statements, 0u);
}

TEST(SessionTest, DeadlineExpiresOnSimulatedClock) {
  const std::string dir = MakeTempDir("sess_deadline");
  Database db(dir, DeviceProfile::Hdd());
  ASSERT_TRUE(db.RegisterDataset("susy", SmallSusy()).ok());
  SessionOptions opts;
  opts.deadline_seconds = 1e-9;
  auto s = db.CreateSession(opts);
  // First statement admits (no simulated time consumed yet) and bills I/O
  // well past the budget; the next statement must be rejected.
  ASSERT_TRUE(s->Execute("SELECT * FROM susy TRAIN BY lr WITH "
                         "max_epoch_num=1, block_size=64KB")
                  .ok());
  EXPECT_TRUE(s->Execute("SELECT * FROM susy PREDICT BY lr_0")
                  .status()
                  .IsDeadlineExceeded());
}

// --- snapshot isolation ----------------------------------------------------

TEST(SessionSnapshotTest, InFlightMergeScanHoldsSnapshotAcrossInsert) {
  const std::string dir = MakeTempDir("sess_snap_iso");
  Database db(dir, DeviceProfile::Ssd());
  Dataset ds = SmallSusy();
  ASSERT_TRUE(db.RegisterDataset("susy", ds, /*num_shards=*/4).ok());
  ShardedTable* table = db.GetShardedTable("susy").ValueOrDie();

  const ShardedSnapshot snap = table->Snapshot();
  const uint64_t n0 = snap.num_tuples();
  ASSERT_GT(n0, 0u);

  // Merge-scan through the channel/pool path; halfway in, a *concurrent*
  // session appends to the table. The in-flight scan must neither see the
  // new tuples nor block the insert.
  ThreadPool pool(3);
  ShardScanOptions opts;
  opts.pool = &pool;
  opts.batch_tuples = 16;
  auto inserter = db.CreateSession();
  uint64_t seen = 0;
  bool inserted = false;
  Status st = MergeScanSnapshot(snap, opts, [&](const Tuple&) {
    if (++seen == n0 / 2 && !inserted) {
      inserted = true;
      Status ins =
          inserter->Insert("susy", StreamBatch(ds.MakeSchema(), 1u << 20, 33));
      EXPECT_TRUE(ins.ok()) << ins.ToString();
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(inserted);
  EXPECT_EQ(seen, n0);                // old snapshot: old count, exactly
  EXPECT_EQ(snap.num_tuples(), n0);   // snapshot is immutable

  // A fresh snapshot observes the published append.
  EXPECT_EQ(table->Snapshot().num_tuples(), n0 + 33);
}

TEST(SessionSnapshotTest, MergeScanOrderIndependentOfPool) {
  const std::string dir = MakeTempDir("sess_scan_order");
  Database db(dir, DeviceProfile::Ssd());
  ASSERT_TRUE(db.RegisterDataset("susy", SmallSusy(), /*num_shards=*/3).ok());
  const ShardedSnapshot snap =
      db.GetShardedTable("susy").ValueOrDie()->Snapshot();

  std::vector<Tuple> inline_order;
  ASSERT_TRUE(CollectSnapshot(snap, ShardScanOptions{}, &inline_order).ok());

  ThreadPool pool(3);
  ShardScanOptions opts;
  opts.pool = &pool;
  opts.batch_tuples = 7;  // ragged batches must not perturb the merge
  std::vector<Tuple> pooled_order;
  ASSERT_TRUE(CollectSnapshot(snap, opts, &pooled_order).ok());

  ASSERT_EQ(inline_order.size(), pooled_order.size());
  for (size_t i = 0; i < inline_order.size(); ++i) {
    ASSERT_EQ(inline_order[i].id, pooled_order[i].id) << "at " << i;
    ASSERT_EQ(inline_order[i].label, pooled_order[i].label) << "at " << i;
  }
}

// --- shard-count invariance ------------------------------------------------

TEST(ShardInvarianceTest, PredictIsExactlyShardCountInvariant) {
  const std::string dir = MakeTempDir("sess_shard_inv");
  Database db(dir, DeviceProfile::Ssd());
  Dataset ds = SmallSusy();
  ASSERT_TRUE(db.RegisterDataset("susy1", ds, /*num_shards=*/1).ok());
  ASSERT_TRUE(db.RegisterDataset("susy4", ds, /*num_shards=*/4).ok());

  auto trained = db.Execute(
      "SELECT * FROM susy1 TRAIN BY lr WITH learning_rate=0.005, "
      "max_epoch_num=3, block_size=64KB, buffer_fraction=0.1, seed=5, "
      "publish=m");
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();

  auto p1 = db.Predict(PredictStatement{"susy1", "m"});
  auto p4 = db.Predict(PredictStatement{"susy4", "m"});
  ASSERT_TRUE(p1.ok() && p4.ok());
  EXPECT_EQ(p1->count, p4->count);
  // The cyclic merge reconstructs insertion order exactly, so the scan
  // feeds the same tuple sequence either way: metrics match bit-for-bit.
  EXPECT_EQ(p1->metric, p4->metric);
  EXPECT_EQ(p1->mean_loss, p4->mean_loss);
}

TEST(ShardInvarianceTest, ShardedTrainIsRerunDeterministic) {
  const std::string dir = MakeTempDir("sess_shard_rerun");
  Database db(dir, DeviceProfile::Ssd());
  ASSERT_TRUE(db.RegisterDataset("susy", SmallSusy(), /*num_shards=*/4).ok());
  const std::string stmt =
      "SELECT * FROM susy TRAIN BY lr WITH learning_rate=0.005, "
      "max_epoch_num=3, block_size=32KB, buffer_fraction=0.1, seed=11, "
      "publish=";
  ASSERT_TRUE(db.Execute(stmt + "ra").ok());
  ASSERT_TRUE(db.Execute(stmt + "rb").ok());
  EXPECT_EQ(db.models().Get("ra").ValueOrDie()->params(),
            db.models().Get("rb").ValueOrDie()->params());
}

// --- concurrent multi-session workloads ------------------------------------

struct ConcurrentRunResult {
  std::vector<double> params_a;
  std::vector<double> params_b;
  double metric_a = 0.0, loss_a = 0.0;
  double metric_b = 0.0, loss_b = 0.0;
  uint64_t stream_count = 0;
  uint64_t stream_checksum = 0;
};

// TRAIN + PREDICT on two sessions while a third streams inserts into a
// separate table. Everything returned is timing-free, so a rerun with the
// same seed must compare equal field-for-field.
ConcurrentRunResult RunConcurrentWorkload(const std::string& dir,
                                          const Dataset& ds, uint64_t seed) {
  Database db(dir, DeviceProfile::Ssd());
  EXPECT_TRUE(db.RegisterDataset("susy", ds, /*num_shards=*/2).ok());
  EXPECT_TRUE(
      db.CreateTable("stream", ds.MakeSchema(), {}, false, Page::kDefaultSize,
                     /*num_shards=*/3)
          .ok());

  SessionOptions oa, ob, oc;
  oa.seed = SessionSeedFor(seed, 0);
  oa.label = "trainer";
  ob.seed = SessionSeedFor(seed, 1);
  ob.label = "predictor";
  oc.seed = SessionSeedFor(seed, 2);
  oc.label = "ingest";
  auto sa = db.CreateSession(oa);
  auto sb = db.CreateSession(ob);
  auto sc = db.CreateSession(oc);

  ConcurrentRunResult out;
  auto train = [&](Session* s, const std::string& publish, double lr) {
    TrainStatement t;
    t.table_name = "susy";
    t.model_kind = "lr";
    t.params = Params::Parse("max_epoch_num=3, block_size=64KB, "
                             "buffer_fraction=0.1, publish=" +
                             publish)
                   .ValueOrDie();
    t.params.Set("learning_rate", std::to_string(lr));
    auto r = s->Train(t);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  };

  std::thread ta([&] {
    train(sa.get(), "ma", 0.005);
    auto p = sa->Predict(PredictStatement{"susy", "ma"});
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    out.metric_a = p->metric;
    out.loss_a = p->mean_loss;
  });
  std::thread tb([&] {
    train(sb.get(), "mb", 0.01);
    auto p = sb->Predict(PredictStatement{"susy", "mb"});
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    out.metric_b = p->metric;
    out.loss_b = p->mean_loss;
  });
  std::thread tc([&] {
    const Schema schema = ds.MakeSchema();
    for (uint64_t batch = 0; batch < 8; ++batch) {
      Status st = sc->Insert("stream", StreamBatch(schema, batch * 32, 32));
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  });
  ta.join();
  tb.join();
  tc.join();

  out.params_a = db.models().Get("ma").ValueOrDie()->params();
  out.params_b = db.models().Get("mb").ValueOrDie()->params();

  ShardedTable* stream = db.GetShardedTable("stream").ValueOrDie();
  const ShardedSnapshot snap = stream->Snapshot();
  out.stream_count = snap.num_tuples();
  std::vector<Tuple> tuples;
  EXPECT_TRUE(CollectSnapshot(snap, ShardScanOptions{}, &tuples).ok());
  // Order-sensitive checksum: insertion order must be reconstructed
  // identically on every rerun.
  for (size_t i = 0; i < tuples.size(); ++i) {
    out.stream_checksum = out.stream_checksum * 1315423911u +
                          tuples[i].id * (i + 1);
  }
  return out;
}

TEST(MultiSessionTest, ConcurrentTrainPredictInsertBitIdenticalReruns) {
  Dataset ds = SmallSusy();
  ConcurrentRunResult r1 =
      RunConcurrentWorkload(MakeTempDir("sess_conc_1"), ds, 42);
  ConcurrentRunResult r2 =
      RunConcurrentWorkload(MakeTempDir("sess_conc_2"), ds, 42);

  EXPECT_EQ(r1.params_a, r2.params_a);
  EXPECT_EQ(r1.params_b, r2.params_b);
  EXPECT_EQ(r1.metric_a, r2.metric_a);
  EXPECT_EQ(r1.loss_a, r2.loss_a);
  EXPECT_EQ(r1.metric_b, r2.metric_b);
  EXPECT_EQ(r1.loss_b, r2.loss_b);
  EXPECT_EQ(r1.stream_count, r2.stream_count);
  EXPECT_EQ(r1.stream_count, 8u * 32u);
  EXPECT_EQ(r1.stream_checksum, r2.stream_checksum);

  // Zero cross-session interference: the concurrent run's models match a
  // single-session reference with the same per-session seed.
  const std::string dir = MakeTempDir("sess_conc_ref");
  Database ref(dir, DeviceProfile::Ssd());
  ASSERT_TRUE(ref.RegisterDataset("susy", ds, /*num_shards=*/2).ok());
  SessionOptions oa;
  oa.seed = SessionSeedFor(42, 0);
  auto s = ref.CreateSession(oa);
  TrainStatement t;
  t.table_name = "susy";
  t.model_kind = "lr";
  t.params = Params::Parse("learning_rate=0.005, max_epoch_num=3, "
                           "block_size=64KB, buffer_fraction=0.1, publish=ma")
                 .ValueOrDie();
  ASSERT_TRUE(s->Train(t).ok());
  EXPECT_EQ(ref.models().Get("ma").ValueOrDie()->params(), r1.params_a);
}

TEST(MultiSessionTest, WorkloadDriverIsDeterministicAcrossRuns) {
  Dataset ds = SmallSusy();
  auto run = [&](const std::string& dir) {
    Database db(dir, DeviceProfile::Ssd());
    EXPECT_TRUE(db.RegisterDataset("susy", ds, /*num_shards=*/2).ok());
    std::vector<SessionScript> scripts;
    for (int k = 0; k < 3; ++k) {
      SessionScript script;
      script.label = "worker" + std::to_string(k);
      const std::string model = "w" + std::to_string(k);
      script.statements = {
          "SELECT * FROM susy TRAIN BY lr WITH learning_rate=0.005, "
          "max_epoch_num=2, block_size=64KB, buffer_fraction=0.1, publish=" +
              model,
          // EVALUATE output carries metrics only (no simulated timing), so
          // the whole line must reproduce bit-for-bit.
          "SELECT * FROM susy EVALUATE BY " + model,
      };
      scripts.push_back(std::move(script));
    }
    MultiSessionOptions opts;
    opts.seed = 42;
    return RunMultiSessionWorkload(&db, scripts, opts);
  };

  auto r1 = run(MakeTempDir("sess_driver_1"));
  auto r2 = run(MakeTempDir("sess_driver_2"));
  ASSERT_EQ(r1.size(), 3u);
  ASSERT_EQ(r2.size(), 3u);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_TRUE(r1[k].status.ok()) << r1[k].status.ToString();
    EXPECT_EQ(r1[k].session_id, r2[k].session_id);
    EXPECT_EQ(r1[k].session_seed, SessionSeedFor(42, k));
    EXPECT_EQ(r1[k].arrivals, r2[k].arrivals);
    ASSERT_EQ(r1[k].outputs.size(), 2u);
    EXPECT_EQ(r1[k].outputs[1], r2[k].outputs[1]) << "session " << k;
    EXPECT_NE(r1[k].outputs[0].find("trained model w" + std::to_string(k)),
              std::string::npos)
        << r1[k].outputs[0];
  }
  // Arrival schedules are per-session streams: distinct seeds, distinct
  // stamps.
  EXPECT_NE(r1[0].arrivals, r1[1].arrivals);
}

}  // namespace
}  // namespace corgipile
