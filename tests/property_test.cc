// Property-based sweeps (TEST_P) over the library's core invariants:
//  * permutation property of shuffling strategies across buffer sizes,
//  * storage round-trips across page sizes / compression / sparsity,
//  * gradient correctness across model families,
//  * device-model monotonicity across block sizes,
//  * CorgiPileDataset sharding across worker counts.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "dataset/catalog.h"
#include "dataset/loader.h"
#include "dataloader/dataset_api.h"
#include "iosim/device.h"
#include "iosim/fault_injector.h"
#include "iosim/sim_clock.h"
#include "storage/heapfile.h"
#include "storage/page.h"
#include "ml/linear_models.h"
#include "ml/mlp.h"
#include "shuffle/tuple_stream.h"
#include "util/rng.h"

namespace corgipile {
namespace {

// ---------------------------------------------------------------------
// Property 1: every strategy that claims to visit each tuple exactly once
// per epoch does so, for any buffer fraction and block size.
// ---------------------------------------------------------------------

using StrategyBufferParam = std::tuple<ShuffleStrategy, double, uint64_t>;

class PermutationProperty
    : public ::testing::TestWithParam<StrategyBufferParam> {};

TEST_P(PermutationProperty, EpochIsPermutation) {
  const auto [strategy, buffer_fraction, block] = GetParam();
  const size_t n = 600;
  auto tuples = std::make_shared<std::vector<Tuple>>();
  for (size_t i = 0; i < n; ++i) {
    tuples->push_back(
        MakeDenseTuple(i, i < n / 2 ? -1.0 : 1.0, {static_cast<float>(i)}));
  }
  InMemoryBlockSource src(Schema{"p", 1, false, LabelType::kBinary, 2},
                          tuples, block);
  ShuffleOptions opts;
  opts.buffer_fraction = buffer_fraction;
  auto stream = MakeTupleStream(strategy, &src, opts);
  ASSERT_TRUE(stream.ok());
  for (uint64_t epoch = 0; epoch < 2; ++epoch) {
    ASSERT_TRUE((*stream)->StartEpoch(epoch).ok());
    std::set<uint64_t> seen;
    while (const Tuple* t = (*stream)->Next()) {
      EXPECT_TRUE(seen.insert(t->id).second) << "duplicate id " << t->id;
    }
    ASSERT_TRUE((*stream)->status().ok());
    EXPECT_EQ(seen.size(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PermutationProperty,
    ::testing::Combine(
        ::testing::Values(ShuffleStrategy::kNoShuffle,
                          ShuffleStrategy::kShuffleOnce,
                          ShuffleStrategy::kEpochShuffle,
                          ShuffleStrategy::kSlidingWindow,
                          ShuffleStrategy::kBlockOnly,
                          ShuffleStrategy::kCorgiPile),
        ::testing::Values(0.02, 0.1, 0.5, 1.0),
        ::testing::Values(uint64_t{7}, uint64_t{50}, uint64_t{600})),
    [](const auto& info) {
      return std::string(ShuffleStrategyToString(std::get<0>(info.param))) +
             "_buf" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_blk" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Property 2: table storage round-trips for every (page size, compression,
// sparsity) combination.
// ---------------------------------------------------------------------

using StorageParam = std::tuple<uint32_t, bool, bool>;  // page, compress, sparse

class StorageRoundTripProperty
    : public ::testing::TestWithParam<StorageParam> {};

TEST_P(StorageRoundTripProperty, TuplesSurvive) {
  const auto [page_size, compress, sparse] = GetParam();
  Rng rng(page_size ^ (compress ? 1 : 0) ^ (sparse ? 2 : 0));
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < 200; ++i) {
    if (sparse) {
      auto keys = rng.SampleWithoutReplacement(500, 12);
      std::sort(keys.begin(), keys.end());
      std::vector<float> vals(12);
      for (auto& v : vals) v = static_cast<float>(rng.NextGaussian());
      tuples.push_back(
          MakeSparseTuple(i, rng.NextBool() ? 1.0 : -1.0, std::move(keys),
                          std::move(vals)));
    } else {
      std::vector<float> vals(48);
      for (auto& v : vals) {
        v = rng.NextBool(0.5) ? 0.0f : static_cast<float>(rng.NextGaussian());
      }
      tuples.push_back(
          MakeDenseTuple(i, rng.NextBool() ? 1.0 : -1.0, std::move(vals)));
    }
  }
  Schema schema{"prop", sparse ? 500u : 48u, sparse, LabelType::kBinary, 2};
  const std::string path = testing::TempDir() + "prop_storage.tbl";
  TableOptions options;
  options.page_size = page_size;
  options.compress_tuples = compress;
  auto table = MaterializeTable(schema, tuples, path, options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_tuples(), tuples.size());
  std::vector<Tuple> read;
  ASSERT_TRUE(
      (*table)->ReadTuplesFromPages(0, (*table)->num_pages(), &read).ok());
  ASSERT_EQ(read.size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    ASSERT_EQ(read[i], tuples[i]) << i;
  }
  // Random point lookups agree too.
  for (int k = 0; k < 20; ++k) {
    const auto idx = rng.Uniform(tuples.size());
    auto t = (*table)->ReadTupleAt(idx);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(*t, tuples[idx]);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StorageRoundTripProperty,
    ::testing::Combine(::testing::Values(1024u, 4096u, 8192u, 65535u),
                       ::testing::Bool(), ::testing::Bool()),
    [](const auto& info) {
      return "page" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_comp" : "_raw") +
             (std::get<2>(info.param) ? "_sparse" : "_dense");
    });

// ---------------------------------------------------------------------
// Property 3: SgdStep == params - lr * AccumulateGrad for every model
// family, on dense and sparse tuples.
// ---------------------------------------------------------------------

class ModelStepProperty : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Model> MakeModel() const {
    const std::string& kind = GetParam();
    if (kind == "lr") return std::make_unique<LogisticRegression>(12);
    if (kind == "svm") return std::make_unique<SvmModel>(12);
    if (kind == "linreg") return std::make_unique<LinearRegressionModel>(12);
    if (kind == "softmax") return std::make_unique<SoftmaxRegression>(12, 4);
    return std::make_unique<MlpModel>(12, 6, 4);
  }
  double LabelFor(const std::string& kind, Rng* rng) const {
    if (kind == "softmax" || kind == "mlp") {
      return static_cast<double>(rng->Uniform(4));
    }
    if (kind == "linreg") return rng->NextGaussian();
    return rng->NextBool() ? 1.0 : -1.0;
  }
};

TEST_P(ModelStepProperty, StepMatchesGradient) {
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    auto model = MakeModel();
    model->InitParams(trial);
    for (auto& p : model->params()) p += 0.1 * rng.NextGaussian();

    Tuple t;
    if (trial % 2 == 0) {
      std::vector<float> vals(12);
      for (auto& v : vals) v = static_cast<float>(rng.NextGaussian());
      t = MakeDenseTuple(0, LabelFor(GetParam(), &rng), std::move(vals));
    } else {
      t = MakeSparseTuple(0, LabelFor(GetParam(), &rng), {1, 5, 9},
                          {0.5f, -1.0f, 2.0f});
    }
    std::vector<double> grad(model->num_params(), 0.0);
    auto copy = model->Clone();
    const double loss_grad = copy->AccumulateGrad(t, &grad);
    const double lr = 0.03;
    const double loss_step = model->SgdStep(t, lr);
    EXPECT_NEAR(loss_grad, loss_step, 1e-12);
    for (size_t i = 0; i < grad.size(); ++i) {
      ASSERT_NEAR(model->params()[i], copy->params()[i] - lr * grad[i], 1e-12)
          << GetParam() << " trial " << trial << " param " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ModelStepProperty,
                         ::testing::Values("lr", "svm", "linreg", "softmax",
                                           "mlp"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------
// Property 4: device cost model monotonicity — random throughput increases
// with block size and never exceeds sequential bandwidth.
// ---------------------------------------------------------------------

class DeviceMonotonicityProperty
    : public ::testing::TestWithParam<DeviceKind> {};

TEST_P(DeviceMonotonicityProperty, RandomThroughputMonotone) {
  const DeviceProfile dev = DeviceProfile::ForKind(GetParam());
  double prev = 0.0;
  for (uint64_t kb = 4; kb <= 64 * 1024; kb *= 4) {
    const double tp = dev.RandomChunkThroughput(kb * 1024);
    EXPECT_GT(tp, prev);
    EXPECT_LE(tp, dev.bandwidth_bytes_per_s);
    prev = tp;
  }
  // Scaled devices preserve the fraction-of-sequential at block sizes
  // scaled by exactly the same factor.
  const double factor = 1e-3;
  const DeviceProfile scaled = dev.Scaled(factor);
  const uint64_t full_block = 10 * 1024 * 1024;
  const auto scaled_block = static_cast<uint64_t>(full_block * factor);
  const double frac_full =
      dev.RandomChunkThroughput(full_block) / dev.bandwidth_bytes_per_s;
  const double frac_scaled = scaled.RandomChunkThroughput(scaled_block) /
                             scaled.bandwidth_bytes_per_s;
  EXPECT_NEAR(frac_full, frac_scaled, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeviceMonotonicityProperty,
                         ::testing::Values(DeviceKind::kHdd, DeviceKind::kSsd),
                         [](const auto& info) {
                           return std::string(DeviceKindToString(info.param));
                         });

// ---------------------------------------------------------------------
// Property 5: CorgiPileDataset shards partition the blocks for any worker
// count, and the union of emissions covers the dataset exactly once.
// ---------------------------------------------------------------------

class ShardingProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ShardingProperty, ShardsPartitionAndCover) {
  const uint32_t P = GetParam();
  const size_t n = 990;  // deliberately not divisible by most P
  auto tuples = std::make_shared<std::vector<Tuple>>();
  for (size_t i = 0; i < n; ++i) {
    tuples->push_back(MakeDenseTuple(i, 1.0, {0.0f}));
  }
  InMemoryBlockSource src(Schema{"s", 1, false, LabelType::kBinary, 2},
                          tuples, 30);  // 33 blocks
  std::multiset<uint64_t> all_ids;
  std::set<uint32_t> all_blocks;
  for (uint32_t w = 0; w < P; ++w) {
    CorgiPileDataset ds(&src, {/*buffer_tuples=*/64, /*seed=*/5});
    ASSERT_TRUE(ds.StartEpoch(3, w, P).ok());
    for (uint32_t b : ds.assigned_blocks()) {
      EXPECT_TRUE(all_blocks.insert(b).second);
    }
    while (const Tuple* t = ds.Next()) all_ids.insert(t->id);
    ASSERT_TRUE(ds.status().ok());
  }
  EXPECT_EQ(all_blocks.size(), src.num_blocks());
  EXPECT_EQ(all_ids.size(), n);
  EXPECT_EQ(*all_ids.begin(), 0u);
  EXPECT_EQ(*all_ids.rbegin(), n - 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardingProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u, 16u),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Property 6: bounded retry never charges more simulated backoff to one
// read than the policy cap (RetryPolicy::MaxTotalBackoffSeconds), for any
// randomized fault schedule — transient, permanent, or mixed.
// ---------------------------------------------------------------------

using BackoffCapParam =
    std::tuple<uint64_t /*seed*/, double /*transient_rate*/,
               double /*permanent_rate*/, uint32_t /*max_retries*/>;

class RetryBackoffCapProperty
    : public ::testing::TestWithParam<BackoffCapParam> {};

TEST_P(RetryBackoffCapProperty, PerReadChargeNeverExceedsPolicyCap) {
  const auto [seed, transient_rate, permanent_rate, max_retries] = GetParam();
  SCOPED_TRACE("scenario=RetryBackoffCap seed=" + std::to_string(seed) +
               " transient=" + std::to_string(transient_rate) +
               " permanent=" + std::to_string(permanent_rate) +
               " retries=" + std::to_string(max_retries));

  const std::string path = testing::TempDir() + "prop_backoff_" +
                           std::to_string(seed) + ".tbl";
  const uint32_t kPageSize = 512;
  const uint64_t kPages = 48;
  auto file = HeapFile::Create(path, kPageSize).ValueOrDie();
  for (uint64_t i = 0; i < kPages; ++i) {
    Page p(kPageSize);
    const uint8_t rec[] = {static_cast<uint8_t>(i), 1, 2, 3};
    ASSERT_TRUE(p.AddRecord(rec, sizeof(rec)));
    ASSERT_TRUE(file->AppendPage(p).ok());
  }
  ASSERT_TRUE(file->Sync().ok());

  FaultConfig cfg;
  cfg.seed = seed;
  cfg.transient_read_error_rate = transient_rate;
  cfg.max_transient_failures = max_retries + 2;  // some sites never recover
  cfg.permanent_read_error_rate = permanent_rate;
  FaultInjector inj(cfg);
  SimClock clock;
  IoStats io;
  file->SetIoAccounting(DeviceProfile::Memory(), &clock, &io);
  file->SetFaultInjection(&inj);
  RetryPolicy policy;
  policy.max_retries = max_retries;
  file->SetRetryPolicy(policy);
  const double cap = policy.MaxTotalBackoffSeconds();

  Page out;
  for (uint64_t p = 0; p < kPages; ++p) {
    const double before = clock.Elapsed(TimeCategory::kRetryBackoff);
    const Status st = file->ReadPage(p, &out);  // ok or not — both legal
    const double charged =
        clock.Elapsed(TimeCategory::kRetryBackoff) - before;
    EXPECT_LE(charged, cap + 1e-12)
        << "page " << p << " (" << st.ToString() << ") charged " << charged
        << "s of backoff against a policy cap of " << cap << "s";
    EXPECT_GE(charged, 0.0) << "page " << p;
  }
  EXPECT_LE(clock.Elapsed(TimeCategory::kRetryBackoff),
            static_cast<double>(kPages) * cap + 1e-9);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RetryBackoffCapProperty,
    ::testing::Values(
        BackoffCapParam{1, 0.5, 0.0, 3},   // transient-heavy
        BackoffCapParam{2, 1.0, 0.0, 2},   // every site flaky
        BackoffCapParam{3, 0.0, 0.3, 3},   // permanent-only
        BackoffCapParam{4, 0.4, 0.2, 1},   // mixed, tight budget
        BackoffCapParam{5, 0.8, 0.1, 4},   // mixed, generous budget
        BackoffCapParam{77, 1.0, 1.0, 0}), // no retries at all
    [](const auto& info) {
      return "Seed" + std::to_string(std::get<0>(info.param)) + "R" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace corgipile
