// Cross-module integration tests: offline table shuffling, Volcano
// pipelines under error and mini-batch regimes, database parameter plumbing,
// epoch-shuffle I/O billing, theory end-to-end, and UDA convergence.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "core/theory.h"
#include "dataloader/dataset_api.h"
#include "db/block_shuffle_op.h"
#include "db/database.h"
#include "db/sgd_op.h"
#include "db/tuple_shuffle_op.h"
#include "db/uda_baseline.h"
#include "dataset/catalog.h"
#include "dataset/loader.h"
#include "ml/linear_models.h"
#include "ml/mlp.h"
#include "shuffle/full_shuffle.h"
#include "shuffle/hierarchical.h"
#include "storage/table_shuffle.h"

namespace corgipile {
namespace {

std::string MakeTempDir(const std::string& name) {
  std::string dir = testing::TempDir() + name;
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(TableShuffleTest, CopyIsPermutationOfSource) {
  auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  auto table =
      MaterializeTrainTable(ds, testing::TempDir() + "ts_src.tbl").ValueOrDie();
  SimClock clock;
  IoStats io;
  table->SetIoAccounting(DeviceProfile::Ssd(), &clock, &io);
  auto copy = BuildShuffledCopy(table.get(), testing::TempDir() + "ts_copy.tbl",
                                7, DeviceProfile::Ssd(), &clock, &io);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->table->num_tuples(), table->num_tuples());
  EXPECT_GT(copy->sim_seconds, 0.0);
  EXPECT_EQ(copy->extra_disk_bytes, copy->table->size_bytes());
  EXPECT_GT(io.bytes_written, 0u);

  std::multiset<uint64_t> src_ids, copy_ids;
  std::vector<uint64_t> copy_order;
  CORGI_CHECK_OK(table->Scan([&](const Tuple& t) {
    src_ids.insert(t.id);
    return Status::OK();
  }));
  CORGI_CHECK_OK(copy->table->Scan([&](const Tuple& t) {
    copy_ids.insert(t.id);
    copy_order.push_back(t.id);
    return Status::OK();
  }));
  EXPECT_EQ(src_ids, copy_ids);
  EXPECT_FALSE(std::is_sorted(copy_order.begin(), copy_order.end()));
}

TEST(TableShuffleTest, PreservesCompressionOption) {
  auto spec = CatalogLookup("yfcc", 0.005).ValueOrDie();
  ASSERT_TRUE(spec.compress_in_db);
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  auto table =
      MaterializeTrainTable(ds, testing::TempDir() + "tsc_src.tbl").ValueOrDie();
  auto copy = BuildShuffledCopy(table.get(),
                                testing::TempDir() + "tsc_copy.tbl", 7,
                                DeviceProfile::Memory(), nullptr, nullptr);
  ASSERT_TRUE(copy.ok());
  EXPECT_TRUE(copy->table->options().compress_tuples);
  // Compressed footprints should be comparable (same tuples).
  EXPECT_NEAR(static_cast<double>(copy->table->size_bytes()),
              static_cast<double>(table->size_bytes()),
              0.2 * table->size_bytes());
}

TEST(TableShuffleTest, NullSourceRejected) {
  EXPECT_TRUE(BuildShuffledCopy(nullptr, "/tmp/x", 1, DeviceProfile::Memory(),
                                nullptr, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST(TableShuffleTest, InPlaceShufflePermutesWithoutExtraDisk) {
  auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  const std::string path = testing::TempDir() + "inplace.tbl";
  auto table = MaterializeTrainTable(ds, path).ValueOrDie();
  const uint64_t bytes_before = table->size_bytes();
  SimClock clock;
  IoStats io;
  table->SetIoAccounting(DeviceProfile::Hdd(), &clock, &io);

  auto shuffled = ShuffleTableInPlace(std::move(table), 9,
                                      DeviceProfile::Hdd(), &clock, &io);
  ASSERT_TRUE(shuffled.ok());
  EXPECT_EQ(shuffled->table->file()->path(), path);  // same file, no copy
  EXPECT_EQ(shuffled->table->num_tuples(), ds.train->size());
  EXPECT_NEAR(static_cast<double>(shuffled->table->size_bytes()),
              static_cast<double>(bytes_before), 0.05 * bytes_before);
  EXPECT_GT(shuffled->sim_seconds, 0.0);

  std::multiset<uint64_t> ids;
  std::vector<uint64_t> order;
  CORGI_CHECK_OK(shuffled->table->Scan([&](const Tuple& t) {
    ids.insert(t.id);
    order.push_back(t.id);
    return Status::OK();
  }));
  EXPECT_EQ(ids.size(), ds.train->size());
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
  std::remove(path.c_str());
}

TEST(DatabaseParamsTest, ShuffleOnceInPlaceStrategy) {
  const std::string dir = MakeTempDir("db_inplace");
  Database db(dir, DeviceProfile::Ssd());
  auto spec = CatalogLookup("susy", 0.1).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());
  TrainStatement stmt;
  stmt.table_name = "susy";
  stmt.model_kind = "svm";
  stmt.params = Params::Parse(
                    "learning_rate=0.005, max_epoch_num=6, block_size=16KB, "
                    "strategy=shuffle_once_inplace")
                    .ValueOrDie();
  auto r = db.Train(stmt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->prep_seconds, 0.0);
  EXPECT_EQ(r->extra_disk_bytes, 0u);  // the point of in-place
  EXPECT_GT(r->final_metric, 0.72);    // converges like shuffle_once
  // The base table is now physically shuffled; even a no_shuffle scan
  // converges (the destructive side effect the paper warns about).
  stmt.params =
      Params::Parse("learning_rate=0.005, max_epoch_num=6, "
                    "block_size=16KB, strategy=no_shuffle")
          .ValueOrDie();
  auto r2 = db.Train(stmt);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->final_metric, 0.72);
}

TEST(EpochShuffleTableTest, BillsRandomReadsEveryEpoch) {
  auto spec = CatalogLookup("susy", 0.01).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  auto table =
      MaterializeTrainTable(ds, testing::TempDir() + "es_tbl.tbl").ValueOrDie();
  SimClock clock;
  IoStats io;
  table->SetIoAccounting(DeviceProfile::Hdd(), &clock, &io);
  TableBlockSource src(table.get(), 8 * Page::kDefaultSize);
  ShuffleOptions opts;
  EpochShuffleStream stream(&src, opts);

  ASSERT_TRUE(stream.StartEpoch(0).ok());
  const uint64_t rand_after_e0 = io.random_reads;
  EXPECT_GT(rand_after_e0, ds.train->size() / 4);  // per-tuple random pages
  while (stream.Next() != nullptr) {
  }
  ASSERT_TRUE(stream.StartEpoch(1).ok());
  EXPECT_GT(io.random_reads, 3 * rand_after_e0 / 2);  // pays again
}

TEST(PipelineTest, TupleShufflePropagatesChildErrors) {
  // A BlockShuffleOp over a table whose file has been truncated fails; the
  // TupleShuffleOp must surface the error instead of hanging.
  auto spec = CatalogLookup("susy", 0.01).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  const std::string path = testing::TempDir() + "pipe_err.tbl";
  auto table = MaterializeTrainTable(ds, path).ValueOrDie();
  BlockShuffleOp::Options bopts;
  bopts.block_size_bytes = 4 * Page::kDefaultSize;
  BlockShuffleOp block_op(table.get(), bopts);
  TupleShuffleOp::Options topts;
  topts.buffer_tuples = 100;
  TupleShuffleOp op(&block_op, topts);
  ASSERT_TRUE(op.Init().ok());
  // Truncate the backing file out from under the operator.
  ASSERT_EQ(::truncate(path.c_str(), Page::kDefaultSize), 0);
  while (op.Next() != nullptr) {
  }
  EXPECT_FALSE(op.status().ok());
}

TEST(PipelineTest, SgdOpMiniBatchAdam) {
  auto spec = CatalogLookup("cifar10", 0.1).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  auto table =
      MaterializeTrainTable(ds, testing::TempDir() + "adam_tbl.tbl").ValueOrDie();
  BlockShuffleOp::Options bopts;
  bopts.block_size_bytes = 4 * Page::kDefaultSize;
  BlockShuffleOp block_op(table.get(), bopts);
  TupleShuffleOp::Options topts;
  topts.buffer_tuples = ds.train->size() / 10;
  TupleShuffleOp tuple_op(&block_op, topts);
  MlpModel model(spec.dim, 24, spec.num_classes);
  SgdOp::Options sopts;
  sopts.max_epochs = 5;
  sopts.batch_size = 64;
  sopts.optimizer = OptimizerKind::kAdam;
  sopts.lr.initial = 0.003;
  sopts.test_set = ds.test.get();
  sopts.label_type = LabelType::kMulticlass;
  SgdOp sgd(&model, &tuple_op, sopts);
  ASSERT_TRUE(sgd.Init().ok());
  auto logs = sgd.RunToCompletion();
  ASSERT_TRUE(logs.ok());
  EXPECT_GT(logs->back().test_metric, 0.45);
  sgd.Close();
}

TEST(PipelineTest, SingleEpochNoReScanNeeded) {
  auto spec = CatalogLookup("susy", 0.01).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  auto table =
      MaterializeTrainTable(ds, testing::TempDir() + "one_ep.tbl").ValueOrDie();
  BlockShuffleOp::Options bopts;
  BlockShuffleOp block_op(table.get(), bopts);
  LogisticRegression model(spec.dim);
  SgdOp::Options sopts;
  sopts.max_epochs = 1;
  SgdOp sgd(&model, &block_op, sopts);
  ASSERT_TRUE(sgd.Init().ok());
  EpochLog log;
  auto more = sgd.NextEpoch(&log);
  ASSERT_TRUE(more.ok());
  EXPECT_TRUE(*more);
  EXPECT_EQ(log.tuples_seen, ds.train->size());
  auto done = sgd.NextEpoch(&log);
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(*done);
}

TEST(DatabaseParamsTest, SingleBufferAndAdamAndHidden) {
  const std::string dir = MakeTempDir("dbp");
  Database db(dir, DeviceProfile::Ssd());
  auto spec = CatalogLookup("cifar10", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("cifar", ds).ok());
  TrainStatement stmt;
  stmt.table_name = "cifar";
  stmt.model_kind = "mlp";
  stmt.params = Params::Parse(
                    "learning_rate=0.003, max_epoch_num=3, block_size=32KB, "
                    "optimizer=adam, batch_size=64, hidden=16, "
                    "double_buffer=false")
                    .ValueOrDie();
  auto r = db.Train(stmt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->epochs.size(), 3u);
  // Model stored with mlp id and usable for prediction.
  auto pred = db.Predict(PredictStatement{"cifar", r->model_id});
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(pred->metric, 0.1);
}

TEST(DatabaseParamsTest, BadParamValueSurfaces) {
  const std::string dir = MakeTempDir("dbp2");
  Database db(dir, DeviceProfile::Ssd());
  auto spec = CatalogLookup("susy", 0.01).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  ASSERT_TRUE(db.RegisterDataset("susy", ds).ok());
  EXPECT_FALSE(
      db.Execute("SELECT * FROM susy TRAIN BY lr WITH learning_rate=fast")
          .ok());
  EXPECT_FALSE(
      db.Execute("SELECT * FROM susy TRAIN BY lr WITH block_size=10XB").ok());
}

TEST(DatabaseParamsTest, RegressionPredictReportsR2) {
  const std::string dir = MakeTempDir("dbp3");
  Database db(dir, DeviceProfile::Ssd());
  auto spec = CatalogLookup("yearpred", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kShuffled);
  ASSERT_TRUE(db.RegisterDataset("year", ds).ok());
  TrainStatement stmt;
  stmt.table_name = "year";
  stmt.model_kind = "linreg";
  stmt.params =
      Params::Parse("learning_rate=0.01, max_epoch_num=5, block_size=16KB")
          .ValueOrDie();
  auto r = db.Train(stmt);
  ASSERT_TRUE(r.ok());
  auto pred = db.Predict(PredictStatement{"year", r->model_id});
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(pred->metric, 0.8);  // R² on the training table
}

TEST(TopKTest, SemanticsAcrossModels) {
  SoftmaxRegression softmax(4, 5);
  MlpModel mlp(4, 8, 5);
  mlp.InitParams(3);
  Rng rng(5);
  for (auto& p : softmax.params()) p = rng.NextGaussian();
  for (int i = 0; i < 20; ++i) {
    std::vector<float> vals(4);
    for (auto& v : vals) v = static_cast<float>(rng.NextGaussian());
    Tuple t = MakeDenseTuple(0, static_cast<double>(rng.Uniform(5)), vals);
    for (Model* m : {static_cast<Model*>(&softmax), static_cast<Model*>(&mlp)}) {
      // k = C always hits; k = 1 equals Correct(); monotone in k.
      EXPECT_TRUE(m->TopKCorrect(t, 5));
      EXPECT_EQ(m->TopKCorrect(t, 1), m->Correct(t));
      bool prev = false;
      for (uint32_t k = 1; k <= 5; ++k) {
        const bool now = m->TopKCorrect(t, k);
        EXPECT_TRUE(!prev || now);  // once correct, stays correct
        prev = now;
      }
    }
  }
  // Binary models fall back to Correct().
  LogisticRegression lr(4);
  Tuple t = MakeDenseTuple(0, 1.0, {1.0f, 0.0f, 0.0f, 0.0f});
  EXPECT_EQ(lr.TopKCorrect(t, 3), lr.Correct(t));
}

TEST(TheoryIntegrationTest, HdTracksClusteredFraction) {
  auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
  Dataset shuffled = GenerateDataset(spec, DataOrder::kShuffled);
  // Cluster progressively larger prefixes and confirm h_D is monotone.
  double prev_hd = -1.0;
  for (double fraction : {0.0, 0.5, 1.0}) {
    auto tuples = std::make_shared<std::vector<Tuple>>(*shuffled.train);
    const auto split = static_cast<size_t>(fraction * tuples->size());
    std::stable_sort(tuples->begin(),
                     tuples->begin() + static_cast<long>(split),
                     [](const Tuple& a, const Tuple& b) {
                       return a.label < b.label;
                     });
    InMemoryBlockSource src(shuffled.MakeSchema(), tuples, 50);
    LogisticRegression model(spec.dim);
    model.InitParams(0);
    auto gv = MeasureGradientVariance(model, &src).ValueOrDie();
    EXPECT_GT(gv.h_d, prev_hd);
    prev_hd = gv.h_d;
  }
}

TEST(UdaIntegrationTest, MadlibShuffleOnceConverges) {
  auto spec = CatalogLookup("susy", 0.1).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  auto table = MaterializeTrainTable(ds, testing::TempDir() + "uda_int.tbl")
                   .ValueOrDie();
  UdaEngineOptions opts;
  opts.flavor = UdaFlavor::kMadlib;
  opts.shuffle_once = true;
  opts.max_epochs = 6;
  opts.lr.initial = 0.005;
  opts.test_set = ds.test.get();
  opts.scratch_dir = testing::TempDir();
  SvmModel model(spec.dim);
  auto r = RunUdaBaseline(table.get(), &model, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->final_metric, 0.74);
  EXPECT_EQ(r->epochs.size(), 6u);
  EXPECT_GT(r->extra_disk_bytes, 0u);
}

TEST(ShuffleOnceStreamTest, PeakBufferStaysBlockSized) {
  // After the offline shuffle, epochs stream one block at a time — no
  // dataset-sized buffer like Epoch Shuffle needs.
  auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  InMemoryBlockSource src(ds.MakeSchema(), ds.train, 50);
  ShuffleOptions opts;
  auto stream = MakeTupleStream(ShuffleStrategy::kShuffleOnce, &src, opts);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE((*stream)->StartEpoch(0).ok());
  while ((*stream)->Next() != nullptr) {
  }
  EXPECT_LE((*stream)->PeakBufferTuples(), 60u);
}

TEST(MrsLoopRatioTest, HigherRatioEmitsMoreBufferedTuples) {
  auto tuples = std::make_shared<std::vector<Tuple>>();
  for (size_t i = 0; i < 1000; ++i) {
    tuples->push_back(MakeDenseTuple(i, 1.0, {0.0f}));
  }
  InMemoryBlockSource src(Schema{"m", 1, false, LabelType::kBinary, 2},
                          tuples, 50);
  auto count = [&](double ratio) {
    ShuffleOptions opts;
    opts.buffer_tuples = 100;
    opts.mrs_loop_ratio = ratio;
    auto stream = MakeTupleStream(ShuffleStrategy::kMrs, &src, opts);
    EXPECT_TRUE(stream.ok());
    EXPECT_TRUE((*stream)->StartEpoch(0).ok());
    uint64_t n = 0;
    while ((*stream)->Next() != nullptr) ++n;
    return n;
  };
  const uint64_t r0 = count(0.0);
  const uint64_t r1 = count(1.0);
  const uint64_t r2 = count(2.0);
  EXPECT_LT(r0, r1);
  EXPECT_LT(r1, r2);
  EXPECT_EQ(r0, 900u);            // dropped only
  EXPECT_NEAR(r1, 1800.0, 5.0);   // + one looped per dropped
}

TEST(CorgiPileDatasetTogglesTest, UnshuffledModeIsStorageOrder) {
  auto tuples = std::make_shared<std::vector<Tuple>>();
  for (size_t i = 0; i < 300; ++i) {
    tuples->push_back(MakeDenseTuple(i, 1.0, {0.0f}));
  }
  InMemoryBlockSource src(Schema{"t", 1, false, LabelType::kBinary, 2},
                          tuples, 30);
  CorgiPileDataset::Options opts;
  opts.buffer_tuples = 60;
  opts.shuffle_blocks = false;
  opts.shuffle_tuples = false;
  CorgiPileDataset ds(&src, opts);
  ASSERT_TRUE(ds.StartEpoch(0, 0, 1).ok());
  uint64_t expect = 0;
  while (const Tuple* t = ds.Next()) {
    EXPECT_EQ(t->id, expect++);
  }
  EXPECT_EQ(expect, 300u);
}

}  // namespace
}  // namespace corgipile
