// Unit tests for the supervised-execution primitives: CancellationToken,
// Deadline, Channel, and ThreadPool::ParallelFor's error/cancellation
// semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "iosim/sim_clock.h"
#include "util/cancellation.h"
#include "util/channel.h"
#include "util/status.h"
#include "util/threadpool.h"

namespace corgipile {
namespace {

// ---------------------------------------------------------------------------
// CancellationToken
// ---------------------------------------------------------------------------

TEST(CancellationTokenTest, StartsAlive) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.status().ok());
}

TEST(CancellationTokenTest, FirstCancelWins) {
  CancellationToken token;
  token.Cancel(Status::IoError("first"));
  token.Cancel(Status::Corruption("second"));
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.status().IsIoError());
  EXPECT_EQ(token.status().message(), "first");
}

TEST(CancellationTokenTest, CopiesShareState) {
  CancellationToken token;
  CancellationToken copy = token;
  copy.Cancel(Status::Cancelled("via copy"));
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.status().IsCancelled());
}

TEST(CancellationTokenTest, OkReasonCoercedToCancelled) {
  CancellationToken token;
  token.Cancel(Status::OK());
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.status().IsCancelled());
}

TEST(CancellationTokenTest, ConcurrentCancelKeepsOneReason) {
  CancellationToken token;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&token, t] {
      token.Cancel(Status::IoError("racer " + std::to_string(t)));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(token.cancelled());
  // Exactly one racer's reason survives, and it stays stable.
  Status first = token.status();
  EXPECT_TRUE(first.IsIoError());
  EXPECT_EQ(token.status().message(), first.message());
}

// ---------------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------------

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(d.Check("anything").ok());
}

TEST(DeadlineTest, ExpiresWithSimulatedTime) {
  SimClock clock;
  clock.Advance(TimeCategory::kIoRead, 1.0);
  Deadline d(&clock, 2.0);  // budget starts at the current 1.0s mark
  EXPECT_FALSE(d.Expired());
  clock.Advance(TimeCategory::kIoRead, 2.0);  // total 3.0, delta 2.0 == budget
  EXPECT_FALSE(d.Expired());
  clock.Advance(TimeCategory::kCompute, 0.5);  // delta 2.5 > budget
  EXPECT_TRUE(d.Expired());
  Status st = d.Check("epoch");
  EXPECT_TRUE(st.IsDeadlineExceeded());
  EXPECT_NE(st.message().find("epoch"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Channel
// ---------------------------------------------------------------------------

TEST(ChannelTest, FifoWithinCapacity) {
  Channel<int> ch(4);
  EXPECT_EQ(ch.capacity(), 4u);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ch.Push(i).ok());
  EXPECT_EQ(ch.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    int v = -1;
    auto got = ch.Pop(&v);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(*got);
    EXPECT_EQ(v, i);
  }
}

TEST(ChannelTest, CapacityClampedToOne) {
  Channel<int> ch(0);
  EXPECT_EQ(ch.capacity(), 1u);
}

TEST(ChannelTest, CleanCloseDrainsThenEndOfStream) {
  Channel<int> ch(4);
  ASSERT_TRUE(ch.Push(1).ok());
  ASSERT_TRUE(ch.Push(2).ok());
  ch.Close();
  int v = 0;
  auto got = ch.Pop(&v);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got);
  got = ch.Pop(&v);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got);
  got = ch.Pop(&v);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);  // clean end of stream
  EXPECT_TRUE(ch.status().ok());
}

TEST(ChannelTest, ErrorCloseDrainsThenSurfacesError) {
  Channel<int> ch(4);
  ASSERT_TRUE(ch.Push(7).ok());
  ch.Close(Status::Corruption("block 3 checksum"));
  int v = 0;
  auto got = ch.Pop(&v);
  ASSERT_TRUE(got.ok());  // buffered item delivered first
  EXPECT_TRUE(*got);
  EXPECT_EQ(v, 7);
  got = ch.Pop(&v);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption());
}

TEST(ChannelTest, PushAfterCloseIsInternalError) {
  Channel<int> ch(2);
  ch.Close();
  EXPECT_TRUE(ch.Push(1).IsInternal());
  EXPECT_TRUE(ch.WaitWritable().IsInternal());
}

TEST(ChannelTest, CancelDropsBufferAndFailsBothSides) {
  Channel<int> ch(4);
  ASSERT_TRUE(ch.Push(1).ok());
  ch.Cancel(Status::Cancelled("consumer gone"));
  int v = 0;
  EXPECT_TRUE(ch.Pop(&v).status().IsCancelled());  // buffer dropped
  EXPECT_TRUE(ch.Push(2).IsCancelled());
  EXPECT_TRUE(ch.status().IsCancelled());
}

TEST(ChannelTest, CancelOverridesCleanClose) {
  Channel<int> ch(2);
  ASSERT_TRUE(ch.Push(1).ok());
  ch.Close();
  ch.Cancel(Status::Cancelled("abandoned"));
  int v = 0;
  EXPECT_TRUE(ch.Pop(&v).status().IsCancelled());
}

TEST(ChannelTest, CancelWakesBlockedPush) {
  Channel<int> ch(1);
  ASSERT_TRUE(ch.Push(0).ok());  // fill to capacity
  Status pushed = Status::OK();
  std::thread producer([&] { pushed = ch.Push(1); });
  // Give the producer time to block on the full channel, then cancel.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.Cancel(Status::Cancelled("shutdown"));
  producer.join();
  EXPECT_TRUE(pushed.IsCancelled());
}

TEST(ChannelTest, CloseWakesBlockedPop) {
  Channel<int> ch(1);
  Status pop_status = Status::OK();
  bool got_item = true;
  std::thread consumer([&] {
    int v = 0;
    auto got = ch.Pop(&v);
    pop_status = got.status();
    got_item = got.ok() ? *got : false;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.Close();
  consumer.join();
  EXPECT_TRUE(pop_status.ok());
  EXPECT_FALSE(got_item);
}

TEST(ChannelTest, MpmcStressDeliversEveryItemOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  Channel<int> ch(8);
  std::atomic<int> producers_left{kProducers};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.Push(p * kPerProducer + i).ok());
      }
      if (producers_left.fetch_sub(1) == 1) ch.Close();
    });
  }
  std::atomic<int> received{0};
  std::atomic<long long> sum{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        int v = -1;
        auto got = ch.Pop(&v);
        ASSERT_TRUE(got.ok());
        if (!*got) return;
        received.fetch_add(1);
        sum.fetch_add(v);
      }
    });
  }
  for (auto& th : threads) th.join();
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  EXPECT_EQ(sum.load(), 1LL * total * (total - 1) / 2);
}

// ---------------------------------------------------------------------------
// ThreadPool::ParallelFor supervision
// ---------------------------------------------------------------------------

TEST(ParallelForTest, VoidBodyRunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  Status st = pool.ParallelFor(64, [&](size_t i) { hits[i].fetch_add(1); });
  EXPECT_TRUE(st.ok());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ReturnsLowestIndexError) {
  ThreadPool pool(4);
  Status st = pool.ParallelFor(32, [&](size_t i) -> Status {
    if (i == 5 || i == 17) {
      return Status::IoError("task " + std::to_string(i));
    }
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIoError());
  EXPECT_EQ(st.message(), "task 5");
}

// Regression for the unwind bug: with a single-threaded pool the indices run
// strictly in order, so an error at index 2 must deterministically skip every
// later index — previously the caller unwound while queued tasks still held a
// dangling reference to the loop body.
TEST(ParallelForTest, ErrorSkipsNotYetStartedIndices) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  Status st = pool.ParallelFor(100, [&](size_t i) -> Status {
    ran.fetch_add(1);
    if (i == 2) return Status::Corruption("poison");
    return Status::OK();
  });
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_EQ(ran.load(), 3);  // 0, 1, 2 — nothing after the failure
}

TEST(ParallelForTest, ExceptionBecomesInternalStatus) {
  ThreadPool pool(2);
  Status st = pool.ParallelFor(8, [&](size_t i) {
    if (i == 3) throw std::runtime_error("boom");
  });
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInternal());
  EXPECT_NE(st.message().find("boom"), std::string::npos);
}

TEST(ParallelForTest, PreCancelledTokenSkipsEverything) {
  ThreadPool pool(2);
  CancellationToken token;
  token.Cancel(Status::Cancelled("already dead"));
  std::atomic<int> ran{0};
  Status st = pool.ParallelFor(
      50, [&](size_t) { ran.fetch_add(1); }, &token);
  EXPECT_TRUE(st.IsCancelled());
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelForTest, MidFlightCancellationStopsDistribution) {
  ThreadPool pool(1);  // serial execution makes the cutoff deterministic
  CancellationToken token;
  std::atomic<int> ran{0};
  Status st = pool.ParallelFor(
      100,
      [&](size_t i) {
        ran.fetch_add(1);
        if (i == 4) token.Cancel(Status::Cancelled("enough"));
      },
      &token);
  EXPECT_TRUE(st.IsCancelled());
  EXPECT_EQ(ran.load(), 5);  // 0..4, nothing after the cancel
}

TEST(ParallelForTest, ZeroIterationsIsOk) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.ParallelFor(0, [](size_t) {}).ok());
}

TEST(ParallelForTest, SubmitPreservesReturnValue) {
  ThreadPool pool(2);
  auto fut_int = pool.Submit([] { return 41 + 1; });
  auto fut_status = pool.Submit([] { return Status::NotFound("gone"); });
  EXPECT_EQ(fut_int.get(), 42);
  EXPECT_TRUE(fut_status.get().IsNotFound());
}

}  // namespace
}  // namespace corgipile
