// Unit tests for iosim/: device cost model, SimClock, PipelineTimeline.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "iosim/device.h"
#include "iosim/sim_clock.h"

namespace corgipile {
namespace {

TEST(DeviceTest, SequentialCheaperThanRandom) {
  for (DeviceKind kind : {DeviceKind::kHdd, DeviceKind::kSsd}) {
    const DeviceProfile dev = DeviceProfile::ForKind(kind);
    EXPECT_LT(dev.SequentialCost(8192), dev.RandomCost(8192))
        << DeviceKindToString(kind);
  }
}

TEST(DeviceTest, HddSeekDominatesSmallReads) {
  const DeviceProfile hdd = DeviceProfile::Hdd();
  // An 8 KiB random read is dominated by the ~8 ms seek.
  EXPECT_GT(hdd.RandomCost(8192), 100 * hdd.SequentialCost(8192));
}

TEST(DeviceTest, RandomThroughputApproachesSequentialWithLargeBlocks) {
  // Fig. 20's core claim: as block size grows to ~10 MB, random block reads
  // match sequential bandwidth.
  for (DeviceKind kind : {DeviceKind::kHdd, DeviceKind::kSsd}) {
    const DeviceProfile dev = DeviceProfile::ForKind(kind);
    const double seq_bw = dev.bandwidth_bytes_per_s;
    const double rand_bw_small = dev.RandomChunkThroughput(4 * 1024);
    const double rand_bw_large = dev.RandomChunkThroughput(10 * 1024 * 1024);
    EXPECT_LT(rand_bw_small, 0.5 * seq_bw) << DeviceKindToString(kind);
    EXPECT_GT(rand_bw_large, 0.85 * seq_bw) << DeviceKindToString(kind);
  }
}

TEST(DeviceTest, SsdFasterThanHdd) {
  const DeviceProfile hdd = DeviceProfile::Hdd();
  const DeviceProfile ssd = DeviceProfile::Ssd();
  EXPECT_LT(ssd.RandomCost(8192), hdd.RandomCost(8192));
  EXPECT_LT(ssd.SequentialCost(1 << 20), hdd.SequentialCost(1 << 20));
}

TEST(IoStatsTest, AccumulateAndToString) {
  IoStats a, b;
  a.sequential_reads = 2;
  a.bytes_read = 100;
  b.random_reads = 3;
  b.bytes_read = 50;
  a += b;
  EXPECT_EQ(a.sequential_reads, 2u);
  EXPECT_EQ(a.random_reads, 3u);
  EXPECT_EQ(a.bytes_read, 150u);
  EXPECT_NE(a.ToString().find("rand_reads=3"), std::string::npos);
  a.Clear();
  EXPECT_EQ(a.bytes_read, 0u);
}

TEST(SimClockTest, AdvanceAndTotal) {
  SimClock clock;
  clock.Advance(TimeCategory::kIoRead, 1.5);
  clock.Advance(TimeCategory::kCompute, 0.5);
  clock.Advance(TimeCategory::kIoRead, 0.5);
  EXPECT_DOUBLE_EQ(clock.Elapsed(TimeCategory::kIoRead), 2.0);
  EXPECT_DOUBLE_EQ(clock.Elapsed(TimeCategory::kCompute), 0.5);
  EXPECT_DOUBLE_EQ(clock.TotalElapsed(), 2.5);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.TotalElapsed(), 0.0);
}

TEST(SimClockTest, ThreadSafety) {
  SimClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < 1000; ++i) {
        clock.Advance(TimeCategory::kCompute, 0.001);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_NEAR(clock.Elapsed(TimeCategory::kCompute), 8.0, 1e-9);
}

TEST(PipelineTimelineTest, SingleBufferIsSum) {
  PipelineTimeline tl;
  tl.AddBatch(1.0, 2.0);
  tl.AddBatch(3.0, 4.0);
  EXPECT_DOUBLE_EQ(tl.SingleBufferedDuration(), 10.0);
}

TEST(PipelineTimelineTest, DoubleBufferOverlaps) {
  PipelineTimeline tl;
  // fill: 1, 1, 1; consume: 2, 2, 2 — consumption dominates:
  // T = 1 + max(1,2) + max(1,2) + 2 = 7 (vs 9 single-buffered).
  tl.AddBatch(1.0, 2.0);
  tl.AddBatch(1.0, 2.0);
  tl.AddBatch(1.0, 2.0);
  EXPECT_DOUBLE_EQ(tl.DoubleBufferedDuration(), 7.0);
  EXPECT_DOUBLE_EQ(tl.SingleBufferedDuration(), 9.0);
}

TEST(PipelineTimelineTest, DoubleNeverSlowerThanSingle) {
  PipelineTimeline tl;
  tl.AddBatch(0.3, 1.2);
  tl.AddBatch(2.0, 0.1);
  tl.AddBatch(0.7, 0.7);
  EXPECT_LE(tl.DoubleBufferedDuration(), tl.SingleBufferedDuration());
}

TEST(PipelineTimelineTest, EmptyIsZero) {
  PipelineTimeline tl;
  EXPECT_DOUBLE_EQ(tl.DoubleBufferedDuration(), 0.0);
  EXPECT_DOUBLE_EQ(tl.SingleBufferedDuration(), 0.0);
}

}  // namespace
}  // namespace corgipile
