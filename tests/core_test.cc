// Unit tests for core/: distribution analysis, theory helpers, and the
// Algorithm 1 entry point.

#include <gtest/gtest.h>

#include <cmath>

#include "core/corgipile.h"
#include "core/distribution.h"
#include "core/theory.h"
#include "dataset/catalog.h"
#include "ml/linear_models.h"
#include "shuffle/hierarchical.h"

namespace corgipile {
namespace {

std::shared_ptr<std::vector<Tuple>> ClusteredToy(size_t n) {
  auto tuples = std::make_shared<std::vector<Tuple>>();
  for (size_t i = 0; i < n; ++i) {
    tuples->push_back(
        MakeDenseTuple(i, i < n / 2 ? -1.0 : 1.0, {static_cast<float>(i)}));
  }
  return tuples;
}

Schema ToySchema() { return Schema{"toy", 1, false, LabelType::kBinary, 2}; }

TEST(DistributionTest, TraceCapturesEverything) {
  auto tuples = ClusteredToy(100);
  InMemoryBlockSource src(ToySchema(), tuples, 10);
  auto stream = MakeNoShuffleStream(&src);
  auto trace = TraceEpoch(stream.get(), 0);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->ids.size(), 100u);
  EXPECT_EQ(trace->ids.front(), 0u);
  EXPECT_EQ(trace->ids.back(), 99u);
  EXPECT_EQ(trace->labels.front(), -1.0);
  EXPECT_EQ(trace->labels.back(), 1.0);
}

TEST(DistributionTest, WindowLabelCounts) {
  auto tuples = ClusteredToy(100);
  InMemoryBlockSource src(ToySchema(), tuples, 10);
  auto stream = MakeNoShuffleStream(&src);
  auto trace = TraceEpoch(stream.get(), 0);
  ASSERT_TRUE(trace.ok());
  auto counts = CountLabelsPerWindow(*trace, 20);
  ASSERT_EQ(counts.negatives.size(), 5u);
  // Clustered data unshuffled: first windows all negative, last all positive.
  EXPECT_EQ(counts.negatives[0], 20u);
  EXPECT_EQ(counts.positives[0], 0u);
  EXPECT_EQ(counts.negatives[4], 0u);
  EXPECT_EQ(counts.positives[4], 20u);
}

TEST(DistributionTest, RandomnessStatsSeparateStrategies) {
  // The quantitative core of Figures 3/4: CorgiPile's output looks like a
  // full shuffle; No Shuffle does not.
  const size_t n = 1000;
  auto tuples = ClusteredToy(n);
  InMemoryBlockSource src(ToySchema(), tuples, 20);

  auto no_shuffle = MakeNoShuffleStream(&src);
  auto ns_trace = TraceEpoch(no_shuffle.get(), 0);
  ASSERT_TRUE(ns_trace.ok());
  auto ns = ComputeRandomnessStats(*ns_trace, 20);
  EXPECT_GT(ns.position_id_correlation, 0.999);
  EXPECT_LT(ns.mean_normalized_displacement, 1e-9);
  EXPECT_GT(ns.mean_window_label_imbalance, 0.99);

  auto corgi = MakeCorgiPileStream(&src, 200, 7);
  auto cp_trace = TraceEpoch(corgi.get(), 0);
  ASSERT_TRUE(cp_trace.ok());
  auto cp = ComputeRandomnessStats(*cp_trace, 20);
  EXPECT_LT(std::abs(cp.position_id_correlation), 0.35);
  EXPECT_GT(cp.mean_normalized_displacement, 0.2);
  EXPECT_LT(cp.mean_window_label_imbalance, 0.45);
}

TEST(TheoryTest, HdIsOneForIidBlocksAndLargeForPureBlocks) {
  // Clustered blocks (pure labels) must show much larger h_D than shuffled
  // blocks at the same model point.
  auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
  Dataset clustered = GenerateDataset(spec, DataOrder::kClustered);
  Dataset shuffled = GenerateDataset(spec, DataOrder::kShuffled);
  const uint64_t block = 50;
  InMemoryBlockSource cl_src(clustered.MakeSchema(), clustered.train, block);
  InMemoryBlockSource sh_src(shuffled.MakeSchema(), shuffled.train, block);
  LogisticRegression model(spec.dim);
  model.InitParams(0);
  auto cl = MeasureGradientVariance(model, &cl_src);
  auto sh = MeasureGradientVariance(model, &sh_src);
  ASSERT_TRUE(cl.ok() && sh.ok());
  // Gaussian feature noise dilutes the per-label signal, so h_D stays far
  // from its ceiling b, but clustered blocks are still several times more
  // "clustered" than iid blocks.
  EXPECT_GT(cl->h_d, 3.0 * sh->h_d);
  EXPECT_LT(sh->h_d, 1.5);  // ≈ 1 for iid blocks
  EXPECT_GT(cl->h_d, 2.0);
  EXPECT_LE(cl->h_d, static_cast<double>(block) + 1.0);
  EXPECT_EQ(cl->num_tuples, clustered.train->size());
}

TEST(TheoryTest, FactorsAtLimits) {
  // α = 1 when the buffer holds every block (full-shuffle SGD limit).
  auto full = ComputeTheoremFactors(10, 10, 100);
  EXPECT_DOUBLE_EQ(full.alpha, 1.0);
  EXPECT_DOUBLE_EQ(full.beta, 1.0);
  EXPECT_DOUBLE_EQ(full.gamma, 1.0);
  // α = 0 when a single block is sampled (mini-batch-like limit).
  auto one = ComputeTheoremFactors(1, 10, 100);
  EXPECT_DOUBLE_EQ(one.alpha, 0.0);
  EXPECT_DOUBLE_EQ(one.beta, 99.0 * 99.0);
}

TEST(TheoryTest, BoundDecreasesWithT) {
  auto f = ComputeTheoremFactors(5, 50, 100);
  const double at_1k = TheoremOneBound(f, 10.0, 1.0, 5000, 1000);
  const double at_100k = TheoremOneBound(f, 10.0, 1.0, 5000, 100000);
  EXPECT_GT(at_1k, at_100k);
  EXPECT_GT(at_100k, 0.0);
}

TEST(TheoryTest, BoundLeadingTermVanishesAtFullBuffer) {
  // With α = 1 the (1−α)h_Dσ²/T term disappears — the full-shuffle rate.
  auto f = ComputeTheoremFactors(50, 50, 100);
  const double b1 = TheoremOneBound(f, 100.0, 1.0, 5000, 10000);
  const double b2 = TheoremOneBound(f, 1.0, 1.0, 5000, 10000);
  EXPECT_DOUBLE_EQ(b1, b2);  // h_D no longer matters
}

TEST(TheoryTest, TheoremTwoBoundBehaviour) {
  // Decreases with T; at alpha = 1 the h_D dependence disappears.
  const double at_10k =
      TheoremTwoBound(5, 50, 100, 10.0, 1.0, 5000, 10000);
  const double at_1m =
      TheoremTwoBound(5, 50, 100, 10.0, 1.0, 5000, 1000000);
  EXPECT_GT(at_10k, at_1m);
  EXPECT_GT(at_1m, 0.0);
  const double full_a = TheoremTwoBound(50, 50, 100, 100.0, 1.0, 5000, 10000);
  const double full_b = TheoremTwoBound(50, 50, 100, 1.0, 1.0, 5000, 10000);
  EXPECT_DOUBLE_EQ(full_a, full_b);
  // Larger h_D → larger bound once T is big enough that the √(h_D)σ/√T
  // leading term dominates the 1/(h_Dσ²) lower-order term.
  const double big_t_high =
      TheoremTwoBound(5, 50, 100, 10.0, 1.0, 5000, 1000000000);
  const double big_t_low =
      TheoremTwoBound(5, 50, 100, 1.0, 1.0, 5000, 1000000000);
  EXPECT_GT(big_t_high, big_t_low);
}

TEST(TheoryTest, CorgiPileBeatsVanillaOnHddLatency) {
  // §4.2: because (1−α)h_D/b < 1, CorgiPile always wins on the latency
  // term; on HDD (latency-dominated) the speedup is large.
  auto f = ComputeTheoremFactors(5, 50, 1000);
  auto cmp = CompareToVanillaSgd(f, /*h_d=*/20.0, /*sigma_sq=*/1.0,
                                 /*epsilon=*/1e-3, /*tuple_bytes=*/200,
                                 /*block_tuples=*/1000, DeviceProfile::Hdd());
  EXPECT_GT(cmp.speedup, 5.0);
  EXPECT_GT(cmp.vanilla_seconds, cmp.corgipile_seconds);
}

TEST(AlgorithmTest, RunCorgiPileAlgorithmConverges) {
  auto spec = CatalogLookup("susy", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  InMemoryBlockSource src(ds.MakeSchema(), ds.train, 100);
  LogisticRegression model(spec.dim);
  CorgiPileAlgorithmOptions opts;
  opts.epochs = 8;
  opts.lr.initial = 0.005;
  opts.test_set = ds.test.get();
  auto result = RunCorgiPileAlgorithm(&model, &src, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_test_metric, 0.72);
}

TEST(AlgorithmTest, SampledEpochsSeeFewerTuples) {
  auto spec = CatalogLookup("susy", 0.05).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  InMemoryBlockSource src(ds.MakeSchema(), ds.train, 100);
  LogisticRegression model(spec.dim);
  CorgiPileAlgorithmOptions opts;
  opts.epochs = 3;
  opts.blocks_per_epoch = 4;  // n = 4 of N blocks per epoch
  opts.test_set = ds.test.get();
  auto result = RunCorgiPileAlgorithm(&model, &src, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->epochs[0].tuples_seen, 400u);
}

TEST(AlgorithmTest, TrainWithStrategyWrapper) {
  auto spec = CatalogLookup("susy", 0.02).ValueOrDie();
  Dataset ds = GenerateDataset(spec, DataOrder::kClustered);
  InMemoryBlockSource src(ds.MakeSchema(), ds.train, 100);
  SvmModel model(spec.dim);
  ShuffleOptions sopts;
  TrainerOptions topts;
  topts.epochs = 3;
  topts.lr.initial = 0.01;
  topts.test_set = ds.test.get();
  auto result = TrainWithStrategy(&model, &src, ShuffleStrategy::kCorgiPile,
                                  sopts, topts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->epochs.size(), 3u);
}

}  // namespace
}  // namespace corgipile
